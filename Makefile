# Convenience targets; everything is plain dune underneath.
# `make help` lists them.

.PHONY: all build check ci test test-props bench examples smoke chaos \
  trace-check health-check tail-check dir-check reconfig-check \
  profile-check determinism clean help

all: build

help:
	@echo "make build        - dune build @all"
	@echo "make test         - run every alcotest suite"
	@echo "make test-props   - seeded property tests only (codecs, plans, laws)"
	@echo "make check        - build + tests + metrics smoke + chaos determinism"
	@echo "make ci           - the full gate: build, tests, chaos cmp, props x3 seeds"
	@echo "make bench        - run the full experiment suite (E1..E25, M)"
	@echo "make examples     - run the example programs"
	@echo "make smoke        - exercise the edenctl CLI end to end"
	@echo "make chaos        - fault-injection suite + same-seed snapshot cmp"
	@echo "make trace-check  - chaos trace invariants (all eight) + same-seed timeline cmp"
	@echo "make health-check - same-seed health reports must be byte-identical"
	@echo "make tail-check   - speculation smoke: E22 tails + clone trace invariant"
	@echo "make dir-check    - directory smoke: E23 scaling + dir trace invariant"
	@echo "make reconfig-check - membership smoke: E24 join/drain/leave + reconfig chaos cmp"
	@echo "make profile-check - profiler smoke: E25 attribution + same-seed profile cmp"
	@echo "make determinism  - experiment output must be bit-reproducible"
	@echo "make clean        - dune clean"

build:
	dune build @all

test:
	dune runtest --force

# Just the seeded property tests: round-trips for the Name / Capability /
# Message codecs and the Fault.Plan text format, plus the reliability
# and capability-restriction laws (100 seeds each, greedy shrinking).
test-props:
	dune exec test/test_props.exe

# Build, run the test suites, and smoke the metrics pipeline: a synth
# run must export a snapshot that parses and carries the core
# instruments (edenctl metrics-check exits non-zero otherwise).
check:
	dune build @all
	dune runtest --force
	$(MAKE) test-props
	dune exec bin/edenctl.exe -- synth --nodes 3 --requests 50 \
	  --metrics-out /tmp/eden_metrics_smoke.json
	dune exec bin/edenctl.exe -- metrics-check /tmp/eden_metrics_smoke.json
	$(MAKE) chaos
	@echo "check: OK"

# The full local gate, mirroring what a hosted pipeline would run:
# build, every unit suite, the chaos determinism comparison, and the
# property suites under three distinct seed universes (the offset
# shifts every property's base stream; see test/prop.ml).
ci:
	dune build @all
	dune runtest --force
	$(MAKE) chaos
	$(MAKE) trace-check
	$(MAKE) health-check
	$(MAKE) tail-check
	$(MAKE) dir-check
	$(MAKE) reconfig-check
	$(MAKE) profile-check
	for off in 0 271828 3141592; do \
	  echo "props @ seed offset $$off"; \
	  EDEN_PROP_SEED_OFFSET=$$off dune exec test/test_props.exe || exit 1; \
	done
	@echo "ci: OK"

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/mail_system.exe
	dune exec examples/file_server.exe
	dune exec examples/object_editor.exe
	dune exec examples/load_balancer.exe
	dune exec examples/cluster_monitor.exe

# Exercise the CLI end to end.
smoke:
	dune exec bin/edenctl.exe -- info
	dune exec bin/edenctl.exe -- demo --nodes 4
	dune exec bin/edenctl.exe -- heartbeat --nodes 3 --kill 1
	dune exec bin/edenctl.exe -- efs --txns 6 --optimistic
	printf 'mk doc d\nappend d hello\nshow d\nquit\n' | \
	  dune exec bin/edenctl.exe -- edit --nodes 2

# Fault injection: the chaos suite, then same-seed chaos runs twice —
# the exported metrics snapshots must be byte-identical, both with the
# hot-path features off and with the replica cache + coalescer on.
chaos:
	dune exec test/test_fault.exe
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 \
	  --metrics-out /tmp/eden_chaos_a.json
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 \
	  --metrics-out /tmp/eden_chaos_b.json
	cmp /tmp/eden_chaos_a.json /tmp/eden_chaos_b.json
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 \
	  --replica-cache --coalesce --metrics-out /tmp/eden_chaos_hot_a.json
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 \
	  --replica-cache --coalesce --metrics-out /tmp/eden_chaos_hot_b.json
	cmp /tmp/eden_chaos_hot_a.json /tmp/eden_chaos_hot_b.json
	@echo "chaos: OK (deterministic)"

# Causal tracing: run the chaos workload with the trace checker armed
# (non-zero exit on any cross-node invariant violation), twice with
# the same seed — the assembled timelines (Chrome JSON and text) must
# be byte-identical.
trace-check:
	dune exec bin/edenctl.exe -- trace --nodes 5 --seed 11 --check \
	  --out /tmp/eden_trace_a.json --text /tmp/eden_trace_a.txt
	dune exec bin/edenctl.exe -- trace --nodes 5 --seed 11 --check \
	  --out /tmp/eden_trace_b.json --text /tmp/eden_trace_b.txt
	cmp /tmp/eden_trace_a.json /tmp/eden_trace_b.json
	cmp /tmp/eden_trace_a.txt /tmp/eden_trace_b.txt
	@echo "trace-check: OK (invariants hold, timelines deterministic)"

# The health plane: run the chaos workload with SLO watchdogs and the
# hot-object sketch armed, twice with the same seed — the full report
# (dashboard, alert transitions, top-k rollup) must be byte-identical.
health-check:
	dune exec bin/edenctl.exe -- health --nodes 5 --seed 11 \
	  --out /tmp/eden_health_a.txt
	dune exec bin/edenctl.exe -- health --nodes 5 --seed 11 \
	  --out /tmp/eden_health_b.txt
	cmp /tmp/eden_health_a.txt /tmp/eden_health_b.txt
	@echo "health-check: OK (alerts and hot objects deterministic)"

# Speculation: the E22 smoke (cloning + hedging must cut p999 under
# slow-node chaos without taxing p50 — asserted inside the
# experiment), then the chaos workload with speculation on: the
# clone-resolution trace invariant must hold and same-seed timelines
# stay byte-identical.
tail-check:
	dune exec bench/main.exe -- E22 --smoke
	dune exec bin/edenctl.exe -- trace --nodes 5 --seed 11 --clone --hedge \
	  --check --text /tmp/eden_tail_a.txt
	dune exec bin/edenctl.exe -- trace --nodes 5 --seed 11 --clone --hedge \
	  --check --text /tmp/eden_tail_b.txt
	cmp /tmp/eden_tail_a.txt /tmp/eden_tail_b.txt
	@echo "tail-check: OK (tails cut, clone invariant holds, deterministic)"

# The sharded locate directory: the E23 smoke (O(1) hit-path cost and
# the >= 10x message win over broadcast at 32 nodes — asserted inside
# the experiment), then the chaos workload with the directory on: the
# dir-resolves-or-falls-back trace invariant must hold, and same-seed
# runs must produce byte-identical snapshots and timelines.
dir-check:
	dune exec bench/main.exe -- E23 --smoke
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 --directory \
	  --metrics-out /tmp/eden_dir_a.json
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 --directory \
	  --metrics-out /tmp/eden_dir_b.json
	cmp /tmp/eden_dir_a.json /tmp/eden_dir_b.json
	dune exec bin/edenctl.exe -- trace --nodes 5 --seed 11 --directory \
	  --check --text /tmp/eden_dir_a.txt
	dune exec bin/edenctl.exe -- trace --nodes 5 --seed 11 --directory \
	  --check --text /tmp/eden_dir_b.txt
	cmp /tmp/eden_dir_a.txt /tmp/eden_dir_b.txt
	@echo "dir-check: OK (O(1) locate, dir invariant holds, deterministic)"

# Online reconfiguration: the E24 smoke (join + drain + leave under
# load within 1.5x of the static locate cost, all seven trace
# invariants clean — asserted inside the experiment), then the same
# reconfig run twice — byte-identical snapshots — and the chaos
# workload under a plan that mixes crash/link faults with a join and a
# decommission: trace invariants (epoch monotonicity included) must
# hold and same-seed snapshots and timelines stay byte-identical.
reconfig-check:
	dune exec bench/main.exe -- E24 --smoke
	dune exec bin/edenctl.exe -- reconfig --nodes 4 --spares 1 --seed 11 \
	  --metrics-out /tmp/eden_reconfig_a.json
	dune exec bin/edenctl.exe -- reconfig --nodes 4 --spares 1 --seed 11 \
	  --metrics-out /tmp/eden_reconfig_b.json
	cmp /tmp/eden_reconfig_a.json /tmp/eden_reconfig_b.json
	printf 'at 100ms  crash 3\nat 400ms  restart 3 rebuild\nat 200ms  drop 0->2 p=0.3\nat 700ms  heal-link 0->2\nat 500ms  join 5\nat 1200ms decommission 2\n' \
	  > /tmp/eden_reconfig.plan
	dune exec bin/edenctl.exe -- chaos --nodes 5 --spares 1 --seed 11 \
	  --directory --fault-plan /tmp/eden_reconfig.plan \
	  --metrics-out /tmp/eden_reconfig_chaos_a.json
	dune exec bin/edenctl.exe -- chaos --nodes 5 --spares 1 --seed 11 \
	  --directory --fault-plan /tmp/eden_reconfig.plan \
	  --metrics-out /tmp/eden_reconfig_chaos_b.json
	cmp /tmp/eden_reconfig_chaos_a.json /tmp/eden_reconfig_chaos_b.json
	dune exec bin/edenctl.exe -- trace --nodes 5 --spares 1 --seed 11 \
	  --directory --fault-plan /tmp/eden_reconfig.plan \
	  --check --text /tmp/eden_reconfig_a.txt
	dune exec bin/edenctl.exe -- trace --nodes 5 --spares 1 --seed 11 \
	  --directory --fault-plan /tmp/eden_reconfig.plan \
	  --check --text /tmp/eden_reconfig_b.txt
	cmp /tmp/eden_reconfig_a.txt /tmp/eden_reconfig_b.txt
	@echo "reconfig-check: OK (join/drain/leave live, invariants hold, deterministic)"

# The critical-path profiler: the E25 smoke (three injected
# bottlenecks — slow node, saturated wire, hot directory shard — each
# attributed to the right category, < 5% overhead — asserted inside
# the experiment), then the profile subcommand twice with the same
# seed — report, flame stacks and JSON must all be byte-identical —
# and once more under a chaotic fault plan with the checker armed, so
# the attribution-complete invariant (every request's categories sum
# exactly to its end-to-end latency) gates the run.
profile-check:
	dune exec bench/main.exe -- E25 --smoke
	dune exec bin/edenctl.exe -- profile --nodes 5 --seed 11 \
	  --out /tmp/eden_profile_a.txt --folded /tmp/eden_profile_a.folded \
	  --json /tmp/eden_profile_a.json
	dune exec bin/edenctl.exe -- profile --nodes 5 --seed 11 \
	  --out /tmp/eden_profile_b.txt --folded /tmp/eden_profile_b.folded \
	  --json /tmp/eden_profile_b.json
	cmp /tmp/eden_profile_a.txt /tmp/eden_profile_b.txt
	cmp /tmp/eden_profile_a.folded /tmp/eden_profile_b.folded
	cmp /tmp/eden_profile_a.json /tmp/eden_profile_b.json
	dune exec bin/edenctl.exe -- profile --nodes 5 --seed 11 --directory \
	  --clone --hedge --check > /dev/null
	@echo "profile-check: OK (bottlenecks named, attribution exact, deterministic)"

# The whole experiment suite must be bit-reproducible.
determinism:
	dune exec bench/main.exe -- E1 E9 > /tmp/eden_bench_a.txt 2>&1
	dune exec bench/main.exe -- E1 E9 > /tmp/eden_bench_b.txt 2>&1
	diff /tmp/eden_bench_a.txt /tmp/eden_bench_b.txt
	@echo "deterministic: OK"

clean:
	dune clean
