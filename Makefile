# Convenience targets; everything is plain dune underneath.

.PHONY: all build check test bench examples smoke chaos determinism clean

all: build

build:
	dune build @all

test:
	dune runtest --force

# Build, run the test suites, and smoke the metrics pipeline: a synth
# run must export a snapshot that parses and carries the core
# instruments (edenctl metrics-check exits non-zero otherwise).
check:
	dune build @all
	dune runtest --force
	dune exec bin/edenctl.exe -- synth --nodes 3 --requests 50 \
	  --metrics-out /tmp/eden_metrics_smoke.json
	dune exec bin/edenctl.exe -- metrics-check /tmp/eden_metrics_smoke.json
	$(MAKE) chaos
	@echo "check: OK"

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/mail_system.exe
	dune exec examples/file_server.exe
	dune exec examples/object_editor.exe
	dune exec examples/load_balancer.exe
	dune exec examples/cluster_monitor.exe

# Exercise the CLI end to end.
smoke:
	dune exec bin/edenctl.exe -- info
	dune exec bin/edenctl.exe -- demo --nodes 4
	dune exec bin/edenctl.exe -- heartbeat --nodes 3 --kill 1
	dune exec bin/edenctl.exe -- efs --txns 6 --optimistic
	printf 'mk doc d\nappend d hello\nshow d\nquit\n' | \
	  dune exec bin/edenctl.exe -- edit --nodes 2

# Fault injection: the chaos suite, then a same-seed chaos run twice —
# the exported metrics snapshots must be byte-identical.
chaos:
	dune exec test/test_fault.exe
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 \
	  --metrics-out /tmp/eden_chaos_a.json
	dune exec bin/edenctl.exe -- chaos --nodes 5 --seed 11 \
	  --metrics-out /tmp/eden_chaos_b.json
	cmp /tmp/eden_chaos_a.json /tmp/eden_chaos_b.json
	@echo "chaos: OK (deterministic)"

# The whole experiment suite must be bit-reproducible.
determinism:
	dune exec bench/main.exe -- E1 E9 > /tmp/eden_bench_a.txt 2>&1
	dune exec bench/main.exe -- E1 E9 > /tmp/eden_bench_b.txt 2>&1
	diff /tmp/eden_bench_a.txt /tmp/eden_bench_b.txt
	@echo "deterministic: OK"

clean:
	dune clean
