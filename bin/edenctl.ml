(* edenctl — drive Eden scenarios from the command line.

     edenctl demo      [--nodes N] [--seed S] [--trace] [--metrics-out FILE]
     edenctl mail      [--nodes N] [--users K] [--messages M] [--trace] [--metrics-out FILE]
     edenctl synth     [--nodes N] [--locality F] [--requests R] [--fault-plan FILE]
                       [--replica-cache] [--coalesce] [--ckpt-delta] [--ckpt-async]
                       [--trace] [--metrics-out FILE]
     edenctl efs       [--nodes N] [--txns T] [--optimistic] [--trace] [--metrics-out FILE]
     edenctl heartbeat [--nodes N] [--kill I] [--trace] [--metrics-out FILE]
     edenctl chaos     [--nodes N] [--seed S] [--fault-plan FILE] [--requests R]
                       [--replica-cache] [--coalesce] [--ckpt-delta] [--ckpt-async]
                       [--spares K] [--trace] [--metrics-out FILE]
     edenctl reconfig  [--nodes N] [--spares K] [--seed S] [--requests R]
                       [--fault-plan FILE] [--trace] [--metrics-out FILE]
                       (join + drain + leave while a counter stream runs)
     edenctl trace     [--nodes N] [--seed S] [--fault-plan FILE] [--requests R]
                       [--out FILE] [--text FILE] [--check]
                       (chaos workload + assembled cross-node causal timeline)
     edenctl health    [--nodes N] [--seed S] [--fault-plan FILE] [--requests R]
                       [--out FILE] [--json FILE]
                       (chaos workload + SLO dashboard, alert transitions, hot objects)
     edenctl top       [--nodes N] [--seed S] [--fault-plan FILE] [--requests R]
                       [--k K] [--json FILE]
                       (chaos workload + per-node / cluster hot-object tables)
     edenctl stats     [--nodes N] [--requests R]   (metrics tables after a synth run)
     edenctl metrics-check FILE                     (validate an exported snapshot)
     edenctl edit      [--nodes N]      (interactive object editor)
     edenctl info *)

open Cmdliner
open Eden_util
open Eden_sim
open Eden_kernel

(* ------------------------------------------------------------------ *)
(* Common options *)

let nodes_t =
  Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")

let trace_t =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Dump the kernel trace tail after the run.")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the final metrics snapshot (counters, gauges, histograms \
           and invocation spans) to $(docv) as JSON.")

let fault_plan_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "fault-plan" ] ~docv:"FILE"
        ~doc:
          "Arm the fault plan in $(docv) (one 'at TIME ACTION' per \
           line; see lib/fault/plan.mli for the grammar).")

let replica_cache_t =
  Arg.(
    value & flag
    & info [ "replica-cache" ]
        ~doc:
          "Enable the frozen-replica cache: nodes cache the \
           representation of remote frozen objects on first use and \
           serve later invocations locally.")

let directory_t =
  Arg.(
    value & flag
    & info [ "directory" ]
        ~doc:
          "Enable the sharded locate directory: a consistent-hash \
           ring assigns every object name a registry shard, and a \
           requester with no hint asks the shard with one unicast \
           instead of broadcasting a locate.  Misses, dead shards \
           and stale answers fall back to the broadcast path.")

let coalesce_t =
  Arg.(
    value & flag
    & info [ "coalesce" ]
        ~doc:
          "Enable unicast message coalescing on the kernel transport: \
           small same-destination messages batch into one wire \
           transfer under size/count/delay budgets.")

let ckpt_delta_t =
  Arg.(
    value & flag
    & info [ "ckpt-delta" ]
        ~doc:
          "Enable delta checkpoints: a checkpoint ships only the \
           representation chunks that changed since the version each \
           checksite last acknowledged, falling back to a full write \
           on version mismatch.")

let ckpt_async_t =
  Arg.(
    value & flag
    & info [ "ckpt-async" ]
        ~doc:
          "Checkpoint through the asynchronous pipeline: objects that \
           persist their updates use $(b,checkpoint_async), so the \
           writes overlap the request stream instead of blocking it.")

let clone_t =
  Arg.(
    value & flag
    & info [ "clone" ]
        ~doc:
          "Speculatively clone read-only invocations on frozen objects \
           to every known replica site; the first response wins and \
           the losing sites receive an urgent cancel.")

let hedge_t =
  Arg.(
    value & flag
    & info [ "hedge" ]
        ~doc:
          "Hedge straggling requests: when a reply takes longer than \
           the windowed latency quantile, re-send the same request \
           once (the server suppresses the duplicate).")

let spares_t =
  Arg.(
    value & opt int 0
    & info [ "spares" ] ~docv:"K"
        ~doc:
          "Rack $(docv) spare nodes after the configured ones: powered \
           and reachable but outside the boot membership, so a fault \
           plan's 'join' action can admit them mid-run.")

let cluster_options ?(clone = false) ?(hedge = false) ?(directory = false)
    ?(profiling = false) ~replica_cache ~ckpt_delta () =
  {
    Cluster.default_options with
    Cluster.use_replica_cache = replica_cache;
    Cluster.use_ckpt_delta = ckpt_delta;
    Cluster.speculate =
      { Api.no_speculation with Api.sp_clone = clone; sp_hedge = hedge };
    Cluster.use_directory = directory;
    Cluster.use_profiling = profiling;
  }

let cluster_coalesce coalesce =
  if coalesce then Some Transport.default_coalesce else None

(* Parse + validate a plan file, or derive a random plan from the seed
   when none was given (chaos does the latter; synth runs fault-free
   without --fault-plan). *)
let load_plan ~file ~seed ~nodes ~segments ~horizon ~default_random =
  let plan =
    match file with
    | Some f -> (
      match Eden_fault.Plan.of_file f with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf "fault plan %s: %s\n" f msg;
        exit 1)
    | None ->
      if default_random then
        Eden_fault.Plan.random ~seed:(Int64.of_int seed) ~nodes ~segments
          ~horizon
      else Eden_fault.Plan.empty
  in
  (match Eden_fault.Plan.validate plan ~nodes ~segments with
  | Ok () -> ()
  | Error msg ->
    Printf.eprintf "fault plan: %s\n" msg;
    exit 1);
  plan

let write_metrics cl = function
  | None -> ()
  | Some file -> (
    let snap = Cluster.metrics_snapshot cl in
    try
      (* Creates missing parent directories, so --metrics-out can point
         into a results tree that does not exist yet. *)
      Eden_obs.Snapshot.write_file snap ~path:file;
      Printf.printf "metrics snapshot written to %s\n" file
    with Sys_error msg ->
      Printf.eprintf "cannot write metrics snapshot: %s\n" msg;
      exit 1)

let setup_trace cl enabled =
  if enabled then Trace.enable (Cluster.trace cl)

let dump_trace cl enabled =
  if enabled then begin
    print_endline "--- trace tail ---";
    List.iter
      (fun r -> print_endline (Format.asprintf "%a" Trace.pp_record r))
      (Trace.recent (Cluster.trace cl))
  end

let summary cl =
  Printf.printf
    "\nsimulated time %s; %d invocations (%d remote); %d events\n"
    (Time.to_string (Engine.now (Cluster.engine cl)))
    (Cluster.stats_invocations cl)
    (Cluster.stats_remote_invocations cl)
    (Engine.events_processed (Cluster.engine cl))

(* ------------------------------------------------------------------ *)
(* demo: counters shared across the cluster *)

let counter_type =
  let open Api in
  Typemgr.make_exn ~name:"ctl_counter"
    [
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
    ]

let run_demo nodes seed trace metrics_out =
  let cl = Cluster.default ~seed:(Int64.of_int seed) ~n_nodes:nodes () in
  Cluster.register_type cl counter_type;
  setup_trace cl trace;
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Cluster.create_object cl ~node:0 ~type_name:"ctl_counter"
            (Value.Int 0)
        with
        | Error e -> Printf.printf "create failed: %s\n" (Error.to_string e)
        | Ok cap ->
          for from = 0 to nodes - 1 do
            match Cluster.invoke cl ~from cap ~op:"incr" [] with
            | Ok [ Value.Int n ] ->
              Printf.printf "node %d incremented the shared counter to %d\n"
                from n
            | Ok _ | Error _ -> Printf.printf "node %d: invocation failed\n" from
          done)
  in
  Cluster.run cl;
  dump_trace cl trace;
  write_metrics cl metrics_out;
  summary cl

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Shared counter incremented from every node.")
    Term.(const run_demo $ nodes_t $ seed_t $ trace_t $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* mail *)

let run_mail nodes seed users messages trace metrics_out =
  let cl = Cluster.default ~seed:(Int64.of_int seed) ~n_nodes:nodes () in
  Eden_workload.Mail.register_types cl;
  setup_trace cl trace;
  let setup = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match
          Eden_workload.Mail.build cl ~registry_node:0 ~users_per_node:users
        with
        | Ok s -> setup := Some s
        | Error e -> Printf.printf "build failed: %s\n" (Error.to_string e))
  in
  Cluster.run cl;
  (match !setup with
  | None -> ()
  | Some s ->
    let r =
      Eden_workload.Mail.run cl s ~messages_per_user:messages
        ~think_mean_s:0.02
    in
    Printf.printf "sent=%d failures=%d delivered=%d\nsend latency: %s\n"
      r.Eden_workload.Mail.sent r.Eden_workload.Mail.send_failures
      r.Eden_workload.Mail.fetched
      (Format.asprintf "%a" Stats.pp_summary r.Eden_workload.Mail.send_latency));
  dump_trace cl trace;
  write_metrics cl metrics_out;
  summary cl

let mail_cmd =
  let users_t =
    Arg.(value & opt int 2 & info [ "users" ] ~docv:"K" ~doc:"Users per node.")
  in
  let messages_t =
    Arg.(
      value & opt int 8
      & info [ "messages" ] ~docv:"M" ~doc:"Messages per user.")
  in
  Cmd.v
    (Cmd.info "mail" ~doc:"Multi-user mail workload.")
    Term.(
      const run_mail $ nodes_t $ seed_t $ users_t $ messages_t $ trace_t
      $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* synth *)

let run_synth nodes seed locality requests fault_plan replica_cache coalesce
    ckpt_delta _ckpt_async directory trace metrics_out =
  (* Synth itself runs checkpoint-free, so --ckpt-async has nothing to
     route through the pipeline here; the flag is accepted for a
     uniform CLI and --ckpt-delta still configures the protocol for
     any checkpoint traffic (e.g. a fault plan forcing recovery). *)
  let cl =
    Cluster.default ~seed:(Int64.of_int seed)
      ~options:(cluster_options ~directory ~replica_cache ~ckpt_delta ())
      ?coalesce:(cluster_coalesce coalesce) ~n_nodes:nodes ()
  in
  setup_trace cl trace;
  let ctl =
    match fault_plan with
    | None -> None
    | Some _ ->
      let plan =
        load_plan ~file:fault_plan ~seed ~nodes ~segments:1
          ~horizon:(Time.s 2) ~default_random:false
      in
      Some (Eden_fault.Controller.arm cl plan)
  in
  let spec =
    {
      Eden_workload.Synthetic.default_spec with
      Eden_workload.Synthetic.locality;
      requests_per_user = requests;
      (* Under a fault plan the users need a recovery policy, or a
         crashed target strands them waiting for a reply forever. *)
      timeout = (if ctl = None then None else Some (Time.ms 300));
      retry = (if ctl = None then Api.no_retry else Api.default_retry);
    }
  in
  (* Synth arms the plan at t=0, so its setup phase runs under the
     plan too; a schedule that kills a node while the population is
     still being created aborts the workload. *)
  let r =
    try Eden_workload.Synthetic.run_eden cl spec
    with Invalid_argument msg ->
      Printf.eprintf
        "synth failed under the fault plan (%s); delay the first fault \
         past workload setup\n"
        msg;
      exit 1
  in
  Format.printf "%a@." Eden_workload.Synthetic.pp_results r;
  (match ctl with
  | None -> ()
  | Some ctl ->
    Printf.printf "faults injected: %d\n" (Eden_fault.Controller.injected ctl));
  dump_trace cl trace;
  write_metrics cl metrics_out;
  summary cl

let synth_cmd =
  let locality_t =
    Arg.(
      value & opt float 0.8
      & info [ "locality" ] ~docv:"F" ~doc:"Fraction of local requests.")
  in
  let requests_t =
    Arg.(
      value & opt int 25
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per user.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthetic invocation workload.")
    Term.(
      const run_synth $ nodes_t $ seed_t $ locality_t $ requests_t
      $ fault_plan_t $ replica_cache_t $ coalesce_t $ ckpt_delta_t
      $ ckpt_async_t $ directory_t $ trace_t $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* efs *)

let run_efs nodes seed txns optimistic trace metrics_out =
  let cl = Cluster.default ~seed:(Int64.of_int seed) ~n_nodes:nodes () in
  Eden_efs.Schema.register cl;
  setup_trace cl trace;
  let mode = if optimistic then Eden_efs.Txn.Optimistic else Eden_efs.Txn.Locking in
  let committed = ref 0 and conflicts = ref 0 in
  let file = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let root =
          match Eden_efs.Client.make_root cl ~node:0 with
          | Ok r -> r
          | Error e -> failwith (Error.to_string e)
        in
        match
          Eden_efs.Client.create_file cl ~from:0 ~dir:root ~name:"shared"
            ~content:(Value.Int 0) ()
        with
        | Error e -> failwith (Error.to_string e)
        | Ok f ->
          file := Some f;
          for i = 0 to txns - 1 do
            ignore
              (Cluster.in_process cl (fun () ->
                   let rec attempt k =
                     if k > 10 then ()
                     else begin
                       let t =
                         Eden_efs.Txn.begin_txn cl ~from:(i mod nodes) ~mode
                       in
                       let read =
                         match mode with
                         | Eden_efs.Txn.Locking ->
                           Eden_efs.Txn.read_for_update t f
                         | Eden_efs.Txn.Optimistic | Eden_efs.Txn.Snapshot ->
                           Eden_efs.Txn.read t f
                       in
                       match read with
                       | Ok (Value.Int v) -> (
                         ignore
                           (Eden_efs.Txn.write t f (Value.Int (v + 1)));
                         match Eden_efs.Txn.commit t with
                         | Eden_efs.Txn.Committed -> incr committed
                         | Eden_efs.Txn.Conflict | Eden_efs.Txn.Failed _ ->
                           incr conflicts;
                           attempt (k + 1))
                       | Ok _ | Error _ ->
                         Eden_efs.Txn.abort t;
                         attempt (k + 1)
                     end
                   in
                   attempt 0))
          done)
  in
  Cluster.run cl;
  let final = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match !file with
        | Some f -> final := Some (Eden_efs.Client.read_file cl ~from:0 f)
        | None -> ())
  in
  Cluster.run cl;
  Printf.printf "%s: committed=%d conflicts=%d final=%s\n"
    (match mode with
    | Eden_efs.Txn.Locking -> "2PL"
    | Eden_efs.Txn.Optimistic -> "optimistic"
    | Eden_efs.Txn.Snapshot -> "snapshot")
    !committed !conflicts
    (match !final with
    | Some (Ok (Value.Int n)) -> string_of_int n
    | _ -> "?");
  dump_trace cl trace;
  write_metrics cl metrics_out;
  summary cl

let efs_cmd =
  let txns_t =
    Arg.(
      value & opt int 10
      & info [ "txns" ] ~docv:"T" ~doc:"Concurrent transactions.")
  in
  let optimistic_t =
    Arg.(
      value & flag
      & info [ "optimistic" ] ~doc:"Optimistic concurrency control (default 2PL).")
  in
  Cmd.v
    (Cmd.info "efs" ~doc:"EFS transaction workload on one shared file.")
    Term.(
      const run_efs $ nodes_t $ seed_t $ txns_t $ optimistic_t $ trace_t
      $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* heartbeat: poll the node objects *)

let run_heartbeat nodes seed kill trace metrics_out =
  let cl = Cluster.default ~seed:(Int64.of_int seed) ~n_nodes:nodes () in
  setup_trace cl trace;
  (match kill with
  | Some victim when victim >= 0 && victim < nodes ->
    Engine.schedule (Cluster.engine cl) ~after:(Time.ms 400) (fun () ->
        Cluster.crash_node cl victim)
  | Some _ | None -> ());
  let _ =
    Cluster.in_process cl (fun () ->
        for round = 1 to 3 do
          Engine.delay (Time.ms 300);
          Printf.printf "round %d:" round;
          for i = 0 to nodes - 1 do
            let status =
              match
                Cluster.invoke cl ~from:0 ~timeout:(Time.ms 150)
                  (Cluster.node_object cl i) ~op:"info" []
              with
              | Ok [ Value.Int gdps; _; Value.Int avail; Value.Int active ] ->
                Printf.sprintf "UP gdps=%d free=%dK objs=%d" gdps
                  (avail / 1000) active
              | Ok _ -> "odd reply"
              | Error e -> "DOWN (" ^ Error.to_string e ^ ")"
            in
            Printf.printf "  node%d: %s" i status
          done;
          print_newline ()
        done)
  in
  Cluster.run cl;
  dump_trace cl trace;
  write_metrics cl metrics_out;
  summary cl

let heartbeat_cmd =
  let kill_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill" ] ~docv:"I" ~doc:"Crash node $(docv) mid-run.")
  in
  Cmd.v
    (Cmd.info "heartbeat" ~doc:"Poll every node object; detect failures.")
    Term.(
      const run_heartbeat $ nodes_t $ seed_t $ kill_t $ trace_t
      $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* chaos: a request stream against mirrored counters while a fault
   plan crashes nodes, fails disks, partitions segments and degrades
   links.  Everything is driven by the virtual clock and the seed, so
   two identical invocations produce byte-identical --metrics-out
   files. *)

let chaos_type ~async =
  let open Api in
  Typemgr.make_exn ~name:"chaos_counter"
    [
      Typemgr.operation "config" (fun ctx args ->
          (* [List sites]: mirror the checkpoint over the given nodes
             and take the first one. *)
          let* v = arg1 args in
          let* sites =
            Value.to_list v
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let sites =
            List.filter_map (fun s -> Result.to_option (Value.to_int s)) sites
          in
          let* () = ctx.set_reliability (Reliability.Mirrored sites) in
          let* () = ctx.checkpoint () in
          reply_unit);
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          (* Persist every update.  A partial checkpoint (some mirror
             site down or disk-failed) still stored the copies it
             could; the update itself succeeded, so reply Ok.  Under
             --ckpt-async the write overlaps the request stream
             instead of blocking the reply. *)
          (match
             if async then ctx.checkpoint_async () else ctx.checkpoint ()
           with
          | Ok () | Error _ -> ());
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
    ]

let chaos_horizon = Time.s 2

(* The chaos workload proper, shared by [chaos] (metrics-oriented) and
   [trace] (journal/timeline-oriented): mirrored counters under a
   deterministic fault plan, driven entirely by the virtual clock and
   the seed.  Returns the finished cluster for post-run inspection. *)
let chaos_workload ?health ?(clone = false) ?(hedge = false)
    ?(directory = false) ?(profiling = false) ?(spares = 0) ~nodes ~seed
    ~fault_plan ~requests ~replica_cache ~coalesce ~ckpt_delta ~ckpt_async
    ~trace () =
  if nodes < 2 then begin
    Printf.eprintf "chaos needs --nodes >= 2\n";
    exit 1
  end;
  (* Two bridged segments once the cluster is big enough, so partition
     events have something to cut. *)
  let segments =
    if nodes >= 4 then [ nodes - (nodes / 2); nodes / 2 ] else [ nodes ]
  in
  let configs =
    List.init nodes (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "node%d" i))
  in
  let cl =
    Cluster.create ~seed:(Int64.of_int seed) ~segments ~spares
      ~options:
        (cluster_options ~clone ~hedge ~directory ~profiling ~replica_cache
           ~ckpt_delta ())
      ?coalesce:(cluster_coalesce coalesce) ?health ~configs ()
  in
  Cluster.register_type cl (chaos_type ~async:ckpt_async);
  setup_trace cl trace;
  (* Spares are valid fault-plan targets (join admits them), so the
     plan validates against the full rack, not just the members. *)
  let plan =
    load_plan ~file:fault_plan ~seed ~nodes:(nodes + spares)
      ~segments:(List.length segments) ~horizon:chaos_horizon
      ~default_random:true
  in
  print_string "--- fault plan ---\n";
  print_string (Eden_fault.Plan.to_string plan);
  (* Setup phase, fault-free: one counter per node, mirrored on its
     home and successor.  The plan is armed only once the objects
     exist (its times are relative to that instant). *)
  let caps = ref [||] in
  let _ =
    Cluster.in_process cl (fun () ->
        caps :=
          Array.init nodes (fun i ->
              let cap =
                match
                  Cluster.create_object cl ~node:i ~type_name:"chaos_counter"
                    (Value.Int 0)
                with
                | Ok c -> c
                | Error e -> failwith ("create: " ^ Error.to_string e)
              in
              let sites =
                [ Value.Int i; Value.Int ((i + 1) mod nodes) ]
              in
              (match
                 Cluster.invoke cl ~from:i cap ~op:"config"
                   [ Value.List sites ]
               with
              | Ok _ -> ()
              | Error e -> failwith ("config: " ^ Error.to_string e));
              cap))
  in
  Cluster.run cl;
  (* A frozen, replicated object gives speculation something to fan
     out on: reads from a replica-less node clone to home + replicas,
     and hedged retries re-send the stragglers.  Built fault-free like
     the counters. *)
  let frozen = ref None in
  if clone || hedge then begin
    let _ =
      Cluster.in_process cl (fun () ->
          match
            Cluster.create_object cl ~node:(nodes - 1)
              ~type_name:"chaos_counter" (Value.Int 7)
          with
          | Error e -> failwith ("create frozen: " ^ Error.to_string e)
          | Ok cap ->
            (match Cluster.freeze cl cap with
            | Ok () -> ()
            | Error e -> failwith ("freeze: " ^ Error.to_string e));
            List.iter
              (fun n ->
                match Cluster.replicate cl cap ~to_node:n with
                | Ok () -> ()
                | Error e -> failwith ("replicate: " ^ Error.to_string e))
              (if nodes >= 4 then [ 1; 2 ] else []);
            frozen := Some cap)
    in
    Cluster.run cl
  end;
  let ctl = Eden_fault.Controller.arm ~seed:(Int64.of_int seed) cl plan in
  let ok = ref 0 and failed = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        (* The request stream outlives the plan horizon, so the tail
           of the run shows post-heal recovery. *)
        for r = 0 to requests - 1 do
          Engine.delay (Time.ms 10);
          let cap = (!caps).(r mod nodes) in
          (match
             Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
               ~retry:Api.default_retry cap ~op:"incr" []
           with
          | Ok _ -> incr ok
          | Error _ -> incr failed);
          match !frozen with
          | Some fcap -> (
            (* Interleave reads of the frozen object so the clone /
               hedge path sees the same chaos the counters do. *)
            match
              Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
                ~retry:Api.default_retry fcap ~op:"get" []
            with
            | Ok _ -> incr ok
            | Error _ -> incr failed)
          | None -> ()
        done)
  in
  Cluster.run cl;
  let attempts = !ok + !failed in
  Printf.printf
    "chaos: %d/%d invocations completed (%.1f%% available), %d faults \
     injected\n"
    !ok attempts
    (100.0 *. Float.of_int !ok /. Float.of_int (max 1 attempts))
    (Eden_fault.Controller.injected ctl);
  dump_trace cl trace;
  cl

let run_chaos nodes seed fault_plan requests replica_cache coalesce
    ckpt_delta ckpt_async clone hedge directory spares trace metrics_out =
  let cl =
    chaos_workload ~clone ~hedge ~directory ~spares ~nodes ~seed ~fault_plan
      ~requests ~replica_cache ~coalesce ~ckpt_delta ~ckpt_async ~trace ()
  in
  write_metrics cl metrics_out;
  summary cl

let chaos_cmd =
  let requests_t =
    Arg.(
      value & opt int 220
      & info [ "requests" ] ~docv:"R"
          ~doc:"Requests in the stream (one every 10ms of virtual time).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Mirrored counters under a deterministic fault plan (random \
          from --seed unless --fault-plan is given).")
    Term.(
      const run_chaos $ nodes_t $ seed_t $ fault_plan_t $ requests_t
      $ replica_cache_t $ coalesce_t $ ckpt_delta_t $ ckpt_async_t
      $ clone_t $ hedge_t $ directory_t $ spares_t $ trace_t $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* reconfig: online membership change under load.  A paced counter
   stream runs while a spare joins and a member is drained and
   retired; the run reports what the epoch machinery did and the
   request stream's availability through it.  Driven by the virtual
   clock and the seed, so same-seed --metrics-out files are
   byte-identical. *)

let sum_node_counter cl name =
  let snap = Cluster.metrics_snapshot cl in
  List.fold_left
    (fun acc i ->
      match
        Eden_obs.Snapshot.find snap
          ~labels:[ ("node", string_of_int i) ]
          name
      with
      | Some (Eden_obs.Metrics.Counter c) -> acc + c
      | _ -> acc)
    0
    (List.init (Cluster.node_count cl) Fun.id)

let run_reconfig nodes spares seed requests fault_plan trace metrics_out =
  if nodes < 2 then begin
    Printf.eprintf "reconfig needs --nodes >= 2\n";
    exit 1
  end;
  if spares < 1 && fault_plan = None then begin
    Printf.eprintf
      "reconfig needs --spares >= 1 (the default plan joins a spare); \
       give --fault-plan to script something else\n";
    exit 1
  end;
  (* The locate directory is always on here: the epoch-stamped ring it
     resolves through is the machinery under test. *)
  let cl =
    Cluster.default ~seed:(Int64.of_int seed)
      ~options:
        (cluster_options ~directory:true ~replica_cache:false
           ~ckpt_delta:true ())
      ~spares ~n_nodes:nodes ()
  in
  Cluster.register_type cl counter_type;
  setup_trace cl trace;
  let horizon = Time.ms (10 * requests) in
  let plan =
    match fault_plan with
    | Some _ ->
      load_plan ~file:fault_plan ~seed ~nodes:(nodes + spares) ~segments:1
        ~horizon ~default_random:false
    | None ->
      (* Join the first spare a third of the way in, retire node 1 at
         two thirds: both membership steps land mid-stream. *)
      Eden_fault.Plan.make
        [
          {
            Eden_fault.Plan.at = Time.divide horizon 3;
            action = Eden_fault.Plan.Join_node nodes;
          };
          {
            Eden_fault.Plan.at = Time.divide (Time.scale horizon 2) 3;
            action = Eden_fault.Plan.Decommission_node 1;
          };
        ]
  in
  print_string "--- reconfiguration plan ---\n";
  print_string (Eden_fault.Plan.to_string plan);
  let caps = ref [||] in
  let _ =
    Cluster.in_process cl (fun () ->
        caps :=
          Array.init nodes (fun i ->
              match
                Cluster.create_object cl ~node:i ~type_name:"ctl_counter"
                  (Value.Int 0)
              with
              | Ok c -> c
              | Error e -> failwith ("create: " ^ Error.to_string e)))
  in
  Cluster.run cl;
  let ctl = Eden_fault.Controller.arm ~seed:(Int64.of_int seed) cl plan in
  let ok = ref 0 and failed = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        for r = 0 to requests - 1 do
          Engine.delay (Time.ms 10);
          match
            Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
              ~retry:Api.default_retry
              (!caps).(r mod nodes)
              ~op:"incr" []
          with
          | Ok _ -> incr ok
          | Error _ -> incr failed
        done)
  in
  Cluster.run cl;
  let attempts = !ok + !failed in
  Printf.printf
    "reconfig: %d/%d invocations completed (%.1f%% available), %d faults \
     injected\n"
    !ok attempts
    (100.0 *. Float.of_int !ok /. Float.of_int (max 1 attempts))
    (Eden_fault.Controller.injected ctl);
  Printf.printf "epoch %d; members [%s]; drain moves %d; epoch bumps %d\n"
    (Cluster.epoch cl)
    (String.concat "; " (List.map string_of_int (Cluster.members cl)))
    (sum_node_counter cl "eden.drain.moves")
    (sum_node_counter cl "eden.epoch.bumps");
  Array.iteri
    (fun i cap ->
      match Cluster.where_is cl cap with
      | Some home when Cluster.is_member cl home -> ()
      | Some home ->
        Printf.eprintf "counter %d homed on non-member %d\n" i home;
        exit 1
      | None ->
        Printf.eprintf "counter %d lost by the reconfiguration\n" i;
        exit 1)
    !caps;
  print_endline "census: every object homed exactly once on a member";
  dump_trace cl trace;
  write_metrics cl metrics_out;
  summary cl

let reconfig_cmd =
  let requests_t =
    Arg.(
      value & opt int 180
      & info [ "requests" ] ~docv:"R"
          ~doc:"Requests in the stream (one every 10ms of virtual time).")
  in
  let spares_default_t =
    Arg.(
      value & opt int 1
      & info [ "spares" ] ~docv:"K"
          ~doc:
            "Spare nodes racked beyond the boot membership, available \
             for the plan's 'join' actions.")
  in
  Cmd.v
    (Cmd.info "reconfig"
       ~doc:
         "Join a spare and decommission a member while a counter \
          stream runs: online membership change over the epoch-stamped \
          directory ring (plan overridable with --fault-plan).")
    Term.(
      const run_reconfig $ nodes_t $ spares_default_t $ seed_t $ requests_t
      $ fault_plan_t $ trace_t $ metrics_out_t)

(* ------------------------------------------------------------------ *)
(* trace: run the chaos workload, assemble the per-node journals into
   one causal timeline, export it, and audit the cross-node
   invariants. *)

let write_file ~path content =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content)
  with Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" path msg;
    exit 1

let run_trace nodes seed fault_plan requests replica_cache coalesce ckpt_delta
    ckpt_async clone hedge directory spares out text check =
  let cl =
    chaos_workload ~clone ~hedge ~directory ~spares ~nodes ~seed ~fault_plan
      ~requests ~replica_cache ~coalesce ~ckpt_delta ~ckpt_async ~trace:false
      ()
  in
  let tl = Cluster.timeline cl in
  let dropped = Cluster.journal_dropped cl in
  Printf.printf "timeline: %d events in %d traces across %d nodes%s\n"
    (Eden_obs.Timeline.length tl)
    (List.length (Eden_obs.Timeline.traces tl))
    (List.length (Eden_obs.Timeline.nodes tl))
    (if dropped > 0 then
       Printf.sprintf " (%d events dropped: traces incomplete)" dropped
     else "");
  (match out with
  | None -> ()
  | Some file ->
    write_file ~path:file (Eden_obs.Timeline.to_chrome_string tl);
    Printf.printf
      "chrome trace written to %s (load in chrome://tracing or Perfetto)\n"
      file);
  (match text with
  | None -> ()
  | Some file ->
    write_file ~path:file (Eden_obs.Timeline.to_text tl);
    Printf.printf "text timeline written to %s\n" file);
  if check then begin
    match Eden_obs.Check.run ~complete:(dropped = 0) tl with
    | [] -> print_endline "trace-check: all invariants hold"
    | violations ->
      List.iter
        (fun v ->
          Printf.eprintf "%s\n"
            (Format.asprintf "%a" Eden_obs.Check.pp_violation v))
        violations;
      Printf.eprintf "trace-check: %d violation(s)\n"
        (List.length violations);
      exit 1
  end;
  summary cl

let trace_cmd =
  let requests_t =
    Arg.(
      value & opt int 220
      & info [ "requests" ] ~docv:"R"
          ~doc:"Requests in the stream (one every 10ms of virtual time).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the assembled timeline as Chrome trace_event JSON to \
             $(docv) (open in chrome://tracing or ui.perfetto.dev).")
  in
  let text_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "text" ] ~docv:"FILE"
          ~doc:"Write the timeline as human-readable causal trees to $(docv).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Audit the assembled trace against the cross-node invariants \
             (matched send/recv, causal time order, retry termination, \
             cache install epochs); exit non-zero on any violation.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the chaos workload with causal tracing and export the \
          merged cross-node timeline.")
    Term.(
      const run_trace $ nodes_t $ seed_t $ fault_plan_t $ requests_t
      $ replica_cache_t $ coalesce_t $ ckpt_delta_t $ ckpt_async_t
      $ clone_t $ hedge_t $ directory_t $ spares_t $ out_t $ text_out_t
      $ check_t)

(* ------------------------------------------------------------------ *)
(* health / top: run the chaos workload with the health plane enabled
   and report what the SLO watchdogs and hot-object sketches saw.  The
   whole report is a function of the seed, so `make health-check` can
   cmp two same-seed runs byte for byte. *)

module Health = Eden_obs.Health
module Topk = Eden_obs.Topk
module Json = Eden_obs.Json

let hot_table ~indent entries =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i e ->
      Printf.bprintf buf "%s%2d. %-24s count %-8d err <= %d\n" indent (i + 1)
        e.Topk.e_key e.Topk.e_count e.Topk.e_err)
    entries;
  Buffer.contents buf

let health_workload ~nodes ~seed ~fault_plan ~requests ~replica_cache
    ~coalesce ~ckpt_delta ~ckpt_async () =
  chaos_workload ~health:Health.default_config ~nodes ~seed ~fault_plan
    ~requests ~replica_cache ~coalesce ~ckpt_delta ~ckpt_async ~trace:false ()

let health_report cl =
  let h =
    match Cluster.health cl with Some h -> h | None -> assert false
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Health.report h);
  (* The causal record of every state change, from node 0's journal
     (where the cluster records Alert events). *)
  let alerts =
    List.filter
      (fun ev ->
        match ev.Eden_obs.Journal.ev_kind with
        | Eden_obs.Journal.Alert _ -> true
        | _ -> false)
      (Eden_obs.Journal.events (Cluster.journal cl 0))
  in
  Printf.bprintf buf "alert transitions (%d retained):\n"
    (List.length alerts);
  List.iter
    (fun ev ->
      Printf.bprintf buf "  %s\n"
        (Format.asprintf "%a" Eden_obs.Journal.pp_event ev))
    alerts;
  let hot = Cluster.hot_objects_rollup cl ~k:10 () in
  Printf.bprintf buf "hottest objects (cluster rollup, top %d):\n"
    (List.length hot);
  Buffer.add_string buf (hot_table ~indent:"  " hot);
  Buffer.contents buf

let hot_json entries =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("object", Json.Str e.Topk.e_key);
             ("count", Json.Int e.Topk.e_count);
             ("err", Json.Int e.Topk.e_err);
           ])
       entries)

let run_health nodes seed fault_plan requests replica_cache coalesce
    ckpt_delta ckpt_async out json_out =
  let cl =
    health_workload ~nodes ~seed ~fault_plan ~requests ~replica_cache
      ~coalesce ~ckpt_delta ~ckpt_async ()
  in
  let report = health_report cl in
  print_string report;
  (match out with
  | None -> ()
  | Some file ->
    write_file ~path:file report;
    Printf.printf "health report written to %s\n" file);
  (match json_out with
  | None -> ()
  | Some file ->
    let h = Option.get (Cluster.health cl) in
    let doc =
      Json.Obj
        [
          ("health", Health.to_json h);
          ("hot_objects", hot_json (Cluster.hot_objects_rollup cl ~k:10 ()));
        ]
    in
    write_file ~path:file (Json.to_string ~compact:false doc);
    Printf.printf "health JSON written to %s\n" file);
  summary cl

let health_cmd =
  let requests_t =
    Arg.(
      value & opt int 220
      & info [ "requests" ] ~docv:"R"
          ~doc:"Requests in the stream (one every 10ms of virtual time).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the health report (SLO dashboard, alert transitions, \
             hot objects) to $(docv); byte-identical across same-seed \
             runs.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the health state and hot-object rollup as JSON.")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run the chaos workload with the health plane enabled and \
          report SLO rule states, alert transitions and the hottest \
          objects.")
    Term.(
      const run_health $ nodes_t $ seed_t $ fault_plan_t $ requests_t
      $ replica_cache_t $ coalesce_t $ ckpt_delta_t $ ckpt_async_t $ out_t
      $ json_t)

let run_top nodes seed fault_plan requests replica_cache coalesce ckpt_delta
    ckpt_async k json_out =
  let cl =
    health_workload ~nodes ~seed ~fault_plan ~requests ~replica_cache
      ~coalesce ~ckpt_delta ~ckpt_async ()
  in
  for i = 0 to Cluster.node_count cl - 1 do
    let entries = Cluster.hot_objects cl ~k i in
    Printf.printf "node %d (top %d):\n%s" i (List.length entries)
      (hot_table ~indent:"  " entries)
  done;
  let hot = Cluster.hot_objects_rollup cl ~k () in
  Printf.printf "cluster rollup (top %d):\n%s" (List.length hot)
    (hot_table ~indent:"  " hot);
  (match json_out with
  | None -> ()
  | Some file ->
    write_file ~path:file (Json.to_string ~compact:false (hot_json hot));
    Printf.printf "hot-object JSON written to %s\n" file);
  summary cl

let top_cmd =
  let requests_t =
    Arg.(
      value & opt int 220
      & info [ "requests" ] ~docv:"R"
          ~doc:"Requests in the stream (one every 10ms of virtual time).")
  in
  let k_t =
    Arg.(
      value & opt int 10
      & info [ "k"; "top" ] ~docv:"K" ~doc:"Entries per hot-object table.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the cluster hot-object rollup as JSON.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the chaos workload with the health plane enabled and show \
          the hottest objects per node and cluster-wide.")
    Term.(
      const run_top $ nodes_t $ seed_t $ fault_plan_t $ requests_t
      $ replica_cache_t $ coalesce_t $ ckpt_delta_t $ ckpt_async_t $ k_t
      $ json_t)

(* ------------------------------------------------------------------ *)
(* profile: run the chaos workload with critical-path profiling armed
   and attribute every request's end-to-end latency over its causal
   trace.  The whole report is a function of the seed, so `make
   profile-check` can cmp two same-seed runs byte for byte. *)

let run_profile nodes seed fault_plan requests replica_cache coalesce
    ckpt_delta ckpt_async clone hedge directory spares out json_out folded
    chrome check =
  let cl =
    chaos_workload ~clone ~hedge ~directory ~profiling:true ~spares ~nodes
      ~seed ~fault_plan ~requests ~replica_cache ~coalesce ~ckpt_delta
      ~ckpt_async ~trace:false ()
  in
  let tl = Cluster.timeline cl in
  let dropped = Cluster.journal_dropped cl in
  let pf = Eden_obs.Profile.of_timeline tl in
  print_string (Eden_obs.Profile.to_text pf);
  if dropped > 0 then
    Printf.printf
      "(journal dropped %d events; %d request(s) skipped as incomplete)\n"
      dropped
      (Eden_obs.Profile.skipped pf);
  (match out with
  | None -> ()
  | Some file ->
    write_file ~path:file (Eden_obs.Profile.to_text pf);
    Printf.printf "profile written to %s\n" file);
  (match json_out with
  | None -> ()
  | Some file ->
    write_file ~path:file
      (Json.to_string ~compact:false (Eden_obs.Profile.to_json pf));
    Printf.printf "profile JSON written to %s\n" file);
  (match folded with
  | None -> ()
  | Some file ->
    write_file ~path:file (Eden_obs.Profile.to_folded pf);
    Printf.printf "folded stacks written to %s (flamegraph.pl input)\n" file);
  (match chrome with
  | None -> ()
  | Some file ->
    write_file ~path:file
      (Eden_obs.Timeline.to_chrome_string
         ~extra:(Eden_obs.Profile.chrome_extra pf)
         tl);
    Printf.printf
      "chrome trace with attribution bars written to %s (load in \
       chrome://tracing or Perfetto)\n"
      file);
  if check then begin
    match Eden_obs.Check.run ~complete:(dropped = 0) tl with
    | [] -> print_endline "profile-check: all invariants hold"
    | violations ->
      List.iter
        (fun v ->
          Printf.eprintf "%s\n"
            (Format.asprintf "%a" Eden_obs.Check.pp_violation v))
        violations;
      Printf.eprintf "%s\n"
        (Json.to_string ~compact:true
           (Eden_obs.Check.violations_to_json violations));
      Printf.eprintf "profile-check: %d violation(s)\n"
        (List.length violations);
      exit 1
  end;
  summary cl

let profile_cmd =
  let requests_t =
    Arg.(
      value & opt int 220
      & info [ "requests" ] ~docv:"R"
          ~doc:"Requests in the stream (one every 10ms of virtual time).")
  in
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the profile report (the same text as stdout) to $(docv); \
             byte-identical across same-seed runs.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the profile as JSON to $(docv).")
  in
  let folded_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write folded flame-graph stacks \
             (target.op;category count-in-ns per line) to $(docv), ready \
             for flamegraph.pl or speedscope.")
  in
  let chrome_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the causal timeline as Chrome trace_event JSON with one \
             attribution bar per request to $(docv).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Audit the trace against all eight invariants, including \
             attribution-complete (every request's category breakdown must \
             sum exactly to its end-to-end latency); exit non-zero on any \
             violation.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the chaos workload with critical-path profiling and \
          attribute each request's latency across \
          service/queue/wire/directory/backoff categories.")
    Term.(
      const run_profile $ nodes_t $ seed_t $ fault_plan_t $ requests_t
      $ replica_cache_t $ coalesce_t $ ckpt_delta_t $ ckpt_async_t
      $ clone_t $ hedge_t $ directory_t $ spares_t $ out_t $ json_t
      $ folded_t $ chrome_t $ check_t)

(* ------------------------------------------------------------------ *)
(* edit: the interactive object editor (the paper's editing paradigm:
   every interaction is an edit of an object's structured visual
   representation) *)

let editor_hierarchy () =
  let open Api in
  let h = Eden_typesys.Hierarchy.create () in
  Eden_typesys.Hierarchy.declare_exn h
    (Eden_typesys.Hierarchy.decl ~name:"editable"
       ~attributes:[ ("display", Value.Str "record") ]
       [
         Typemgr.operation "view" ~mutates:false (fun ctx args ->
             let* () = no_args args in
             reply [ ctx.get_repr () ]);
         Typemgr.operation "fail" (fun ctx args ->
             let* () = no_args args in
             ctx.crash ();
             reply_unit);
       ]);
  Eden_typesys.Hierarchy.declare_exn h
    (Eden_typesys.Hierarchy.decl ~name:"document" ~parent:"editable"
       ~attributes:[ ("display", Value.Str "text") ]
       [
         Typemgr.operation "append_line" (fun ctx args ->
             let* v = arg1 args in
             let* line = str_arg v in
             let* old = str_arg (ctx.get_repr ()) in
             let* () = ctx.set_repr (Value.Str (old ^ "\n" ^ line)) in
             reply_unit);
         Typemgr.operation "replace_text" (fun ctx args ->
             let* v = arg1 args in
             let* _ = str_arg v in
             let* () = ctx.set_repr v in
             reply_unit);
       ]);
  Eden_typesys.Hierarchy.declare_exn h
    (Eden_typesys.Hierarchy.decl ~name:"queue" ~parent:"editable"
       ~attributes:[ ("display", Value.Str "list") ]
       [
         Typemgr.operation "push" (fun ctx args ->
             let* v = arg1 args in
             let* items =
               Value.to_list (ctx.get_repr ())
               |> Result.map_error (fun m -> Error.Bad_arguments m)
             in
             let* () = ctx.set_repr (Value.List (items @ [ v ])) in
             reply_unit);
         Typemgr.operation "pop" (fun ctx args ->
             let* () = no_args args in
             let* items =
               Value.to_list (ctx.get_repr ())
               |> Result.map_error (fun m -> Error.Bad_arguments m)
             in
             match items with
             | [] -> user_error "queue is empty"
             | x :: rest ->
               let* () = ctx.set_repr (Value.List rest) in
               reply [ x ]);
       ]);
  h

let editor_help () =
  print_string
    "commands:\n\
    \  mk doc|queue <name>        create an object (round-robin placement)\n\
    \  ls                         list objects\n\
    \  show <name>                render the structured representation\n\
    \  append <name> <text...>    document: add a line\n\
    \  push <name> <text>         queue: enqueue\n\
    \  pop <name>                 queue: dequeue\n\
    \  move <name> <node>         migrate the object\n\
    \  checkpoint <name>          save long-term state\n\
    \  crash <name>               simulate a failure (reincarnates on use)\n\
    \  nodes                      node heartbeats\n\
    \  help | quit\n"

let run_edit nodes seed =
  let cl = Cluster.default ~seed:(Int64.of_int seed) ~n_nodes:nodes () in
  let h = editor_hierarchy () in
  (match Eden_typesys.Hierarchy.register_all h cl with
  | Ok () -> ()
  | Error e -> failwith e);
  let objects : (string, string * Capability.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let next_node = ref 0 in
  (* Run one blocking action against the cluster and drain the sim. *)
  let step f =
    let out = ref None in
    let _ = Cluster.in_process cl (fun () -> out := Some (f ())) in
    Cluster.run cl;
    !out
  in
  let find name =
    match Hashtbl.find_opt objects name with
    | Some x -> Some x
    | None ->
      Printf.printf "no object %S (try ls)\n" name;
      None
  in
  let show name =
    match find name with
    | None -> ()
    | Some (tname, cap) -> (
      match step (fun () -> Cluster.invoke cl ~from:0 cap ~op:"view" []) with
      | Some (Ok [ repr ]) ->
        print_endline
          (Eden_typesys.Display.render h ~type_name:tname ~title:name repr)
      | Some (Error e) -> Printf.printf "error: %s\n" (Error.to_string e)
      | Some (Ok _) | None -> print_endline "unviewable")
  in
  let invoke_and_show name op args =
    match find name with
    | None -> ()
    | Some (_, cap) -> (
      match step (fun () -> Cluster.invoke cl ~from:0 cap ~op args) with
      | Some (Ok _) -> show name
      | Some (Error e) -> Printf.printf "error: %s\n" (Error.to_string e)
      | None -> ())
  in
  editor_help ();
  let quit = ref false in
  while not !quit do
    print_string "edit> ";
    match In_channel.input_line stdin with
    | None -> quit := true
    | Some line -> (
      match String.split_on_char ' ' (String.trim line) with
      | [ "" ] -> ()
      | [ "quit" ] | [ "exit" ] -> quit := true
      | [ "help" ] -> editor_help ()
      | [ "ls" ] ->
        Hashtbl.iter
          (fun name (tname, cap) ->
            let where =
              match Cluster.where_is cl cap with
              | Some n -> Printf.sprintf "node %d" n
              | None -> "passive"
            in
            Printf.printf "  %-12s %-10s %s\n" name tname where)
          objects
      | [ "nodes" ] ->
        for i = 0 to nodes - 1 do
          let status =
            match
              step (fun () ->
                  Cluster.invoke cl ~from:0 ~timeout:(Time.ms 150)
                    (Cluster.node_object cl i) ~op:"ping" [])
            with
            | Some (Ok _) -> "UP"
            | Some (Error _) | None -> "DOWN"
          in
          Printf.printf "  node%d: %s\n" i status
        done
      | [ "mk"; kind; name ] when kind = "doc" || kind = "queue" ->
        if Hashtbl.mem objects name then
          Printf.printf "%S already exists\n" name
        else begin
          let tname, init =
            if kind = "doc" then ("document", Value.Str (name ^ ":"))
            else ("queue", Value.List [])
          in
          let node = !next_node mod nodes in
          incr next_node;
          match
            step (fun () ->
                Cluster.create_object cl ~node ~type_name:tname init)
          with
          | Some (Ok cap) ->
            Hashtbl.replace objects name (tname, cap);
            Printf.printf "created %s %S on node %d\n" tname name node
          | Some (Error e) -> Printf.printf "error: %s\n" (Error.to_string e)
          | None -> ()
        end
      | [ "show"; name ] -> show name
      | "append" :: name :: rest ->
        invoke_and_show name "append_line"
          [ Value.Str (String.concat " " rest) ]
      | "push" :: name :: rest ->
        invoke_and_show name "push" [ Value.Str (String.concat " " rest) ]
      | [ "pop"; name ] -> invoke_and_show name "pop" []
      | [ "move"; name; node ] -> (
        match (find name, int_of_string_opt node) with
        | Some (_, cap), Some n when n >= 0 && n < nodes -> (
          match step (fun () -> Cluster.move cl cap ~to_node:n) with
          | Some (Ok ()) -> Printf.printf "moved %S to node %d\n" name n
          | Some (Error e) -> Printf.printf "error: %s\n" (Error.to_string e)
          | None -> ())
        | Some _, _ -> print_endline "bad node"
        | None, _ -> ())
      | [ "checkpoint"; name ] -> (
        match find name with
        | None -> ()
        | Some (_, cap) -> (
          match step (fun () -> Cluster.checkpoint_of cl cap) with
          | Some (Ok ()) -> Printf.printf "%S checkpointed\n" name
          | Some (Error e) -> Printf.printf "error: %s\n" (Error.to_string e)
          | None -> ()))
      | [ "crash"; name ] -> (
        match find name with
        | None -> ()
        | Some (_, cap) -> (
          match
            step (fun () -> Cluster.invoke cl ~from:0 cap ~op:"fail" [])
          with
          | Some (Error Error.Object_crashed) ->
            Printf.printf
              "%S crashed; it will reincarnate from its last checkpoint \
               on next use (if it has one)\n"
              name
          | Some (Error e) -> Printf.printf "error: %s\n" (Error.to_string e)
          | Some (Ok _) | None -> print_endline "crash did not happen"))
      | _ -> print_endline "unrecognised (try help)")
  done;
  Printf.printf "bye: %d invocations (%d remote), %s simulated\n"
    (Cluster.stats_invocations cl)
    (Cluster.stats_remote_invocations cl)
    (Time.to_string (Engine.now (Cluster.engine cl)))

let edit_cmd =
  Cmd.v
    (Cmd.info "edit" ~doc:"Interactive object editor (the editing paradigm).")
    Term.(const run_edit $ nodes_t $ seed_t)

(* ------------------------------------------------------------------ *)
(* stats *)

let run_stats nodes seed locality requests =
  let cl = Cluster.default ~seed:(Int64.of_int seed) ~n_nodes:nodes () in
  let spec =
    {
      Eden_workload.Synthetic.default_spec with
      Eden_workload.Synthetic.locality;
      requests_per_user = requests;
    }
  in
  let r = Eden_workload.Synthetic.run_eden cl spec in
  Format.printf "%a@.@." Eden_workload.Synthetic.pp_results r;
  print_string (Eden_obs.Snapshot.pp_table (Cluster.metrics_snapshot cl))

let stats_cmd =
  let locality_t =
    Arg.(
      value & opt float 0.8
      & info [ "locality" ] ~docv:"F" ~doc:"Fraction of local requests.")
  in
  let requests_t =
    Arg.(
      value & opt int 25
      & info [ "requests" ] ~docv:"R" ~doc:"Requests per user.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a synthetic workload and print the metrics registry as \
          per-node, per-segment and cluster-wide tables.")
    Term.(const run_stats $ nodes_t $ seed_t $ locality_t $ requests_t)

(* ------------------------------------------------------------------ *)
(* metrics-check *)

(* Core instruments every cluster run must export; [make check] uses
   this to validate the smoke run's --metrics-out file. *)
let required_metrics =
  [
    ("eden.invocations", Some [ ("node", "0") ]);
    ("eden.hint_hits", Some [ ("node", "0") ]);
    ("eden.hint_misses", Some [ ("node", "0") ]);
    ("eden.invocation_latency_s", None);
    ("eden.journal.events", Some [ ("node", "0") ]);
    ("net.frames_sent", Some [ ("segment", "0") ]);
    ("net.collisions", Some [ ("segment", "0") ]);
    ("sim.events", None);
  ]

let run_metrics_check file =
  let contents = In_channel.with_open_text file In_channel.input_all in
  match Eden_obs.Snapshot.of_string contents with
  | Error e ->
    Printf.eprintf "metrics-check: %s: parse error: %s\n" file e;
    exit 1
  | Ok snap ->
    let missing =
      List.filter
        (fun (name, labels) ->
          Eden_obs.Snapshot.find snap ?labels name = None)
        required_metrics
    in
    (match missing with
    | [] ->
      Printf.printf "metrics-check: OK (%d samples, %d spans, t=%s)\n"
        (List.length snap.Eden_obs.Snapshot.metrics)
        (List.length snap.Eden_obs.Snapshot.spans)
        (Time.to_string snap.Eden_obs.Snapshot.at)
    | _ ->
      List.iter
        (fun (name, labels) ->
          Printf.eprintf "metrics-check: missing %s%s\n" name
            (match labels with
            | None -> ""
            | Some l ->
              "{"
              ^ String.concat ","
                  (List.map (fun (k, v) -> k ^ "=" ^ v) l)
              ^ "}"))
        missing;
      exit 1)

let metrics_check_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot JSON written by --metrics-out.")
  in
  Cmd.v
    (Cmd.info "metrics-check"
       ~doc:
         "Validate an exported metrics snapshot: parse the JSON and \
          verify the core instruments are present.")
    Term.(const run_metrics_check $ file_t)

(* ------------------------------------------------------------------ *)
(* info *)

let run_info () =
  print_endline "Eden reproduction (SOSP 1981, Lazowska et al.)";
  print_endline "";
  print_endline "libraries: eden_util eden_sim eden_net eden_hw eden_kernel";
  print_endline "           eden_typesys eden_efs eden_baseline eden_workload";
  print_endline "examples : dune exec examples/quickstart.exe (and 4 more)";
  print_endline "benches  : dune exec bench/main.exe -- --list";
  print_endline "";
  Printf.printf "default node machine: %d GDPs, %d bytes memory\n"
    (Eden_hw.Machine.default_config ~name:"x").Eden_hw.Machine.gdps
    (Eden_hw.Machine.default_config ~name:"x").Eden_hw.Machine.memory_bytes;
  let p = Eden_net.Params.default in
  Printf.printf "network: %d Mb/s Ethernet, slot %s, max frame %dB\n"
    (p.Eden_net.Params.bandwidth_bps / 1_000_000)
    (Time.to_string p.Eden_net.Params.slot)
    p.Eden_net.Params.max_frame_bytes

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Show build configuration.")
    Term.(const run_info $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "edenctl" ~version:"1.0"
             ~doc:"Drive scenarios on the Eden reproduction.")
          [
            demo_cmd;
            mail_cmd;
            synth_cmd;
            efs_cmd;
            heartbeat_cmd;
            chaos_cmd;
            reconfig_cmd;
            trace_cmd;
            profile_cmd;
            health_cmd;
            top_cmd;
            stats_cmd;
            metrics_check_cmd;
            edit_cmd;
            info_cmd;
          ]))
