(* E25 — critical-path profiler: attribution under injected bottlenecks.

   The profiler's claim is not that it times requests — the span
   machinery already does — but that it *names the bottleneck*: walk
   each request's causal trace, attribute every nanosecond of its
   end-to-end latency to a category, and the dominant category points
   at the subsystem to fix.  This experiment injects three bottlenecks
   whose ground truth is known by construction and checks the profiler
   blames the right one each time:

   - part A: a slow node.  Every unicast touching the object's home is
     held back mid-flight; the hold is endpoint degradation, so the
     profiler must charge it to [service] — the node is slow, not the
     wire.
   - part B: a near-saturation Ethernet.  Two blob pumps push the
     shared segment toward its knee; the measured reads queue in the
     collision domain, so [wire] (or [queue], once the target's port
     backs up behind delayed departures) must dominate.
   - part C: a hot directory shard.  With the hint cache off every
     cold touch resolves through the sharded directory, and all the
     touched names are filtered (via [Cluster.directory_shard]) to
     hash to the *same* shard, which the whole cluster then hammers
     concurrently — [directory] must dominate.

   Two more properties ride along:

   - determinism: the profile is a pure function of the trace, so two
     same-seed runs must render byte-identical reports (asserted on
     part A).
   - overhead: profiling adds journal kinds on the invocation path and
     five counters at span finish.  Re-run E20's paired-ratio
     methodology (compacted heap, off/on interleaved, median of
     per-pair ratios) on E18's locality-free invocation stream with
     [use_profiling] toggled.  Acceptance: < 5% host time.

   `make profile-check` runs the smoke variant: shorter streams, the
   same three dominance assertions, overhead reported but not the
   point. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common
module Profile = Eden_obs.Profile
module Critical = Eden_obs.Critical

let smoke = ref false

let profile pf = (Profile.dominant pf, Profile.share pf (Profile.dominant pf))

let report label pf =
  let dom, share = profile pf in
  Printf.printf "  %-22s %4d requests  dominant %-9s %5.1f%%  (%s total)\n"
    label (Profile.requests pf)
    (Critical.category_name dom)
    (100.0 *. share)
    (Time.to_string (Time.ns (Profile.total_ns pf)));
  let key = String.map (function ' ' -> '_' | c -> c) label in
  summary_str (key ^ "_dominant") (Critical.category_name dom);
  summary_float (key ^ "_share") share

let assert_dominant label pf expected =
  let dom, _ = profile pf in
  if not (List.mem dom expected) then
    failwith
      (Printf.sprintf "E25 %s: dominant category %s, expected %s" label
         (Critical.category_name dom)
         (String.concat "|" (List.map Critical.category_name expected)))

(* ------------------------------------------------------------------ *)
(* Part A: slow node -> service *)

let a_nodes = 4
let a_home = 3
let a_slow_by = Time.ms 25
let read_gap = Time.ms 5

let profiled = { Cluster.default_options with Cluster.use_profiling = true }

let slow_node_run ~seed ~reads =
  let cl = fresh_cluster ~seed ~options:profiled ~n:a_nodes () in
  let cap =
    drive cl (fun () ->
        must "create"
          (Cluster.create_object cl ~node:a_home ~type_name:"bench_obj"
             (Value.Int 7)))
  in
  (* Degrade the home for the whole measured stream: the holds land on
     both the request and the reply legs, and the profiler must fold
     them into service time, not wire time. *)
  let plan =
    Eden_fault.Plan.make
      [
        {
          Eden_fault.Plan.at = Time.ms 1;
          action = Eden_fault.Plan.Slow_node { node = a_home; by = a_slow_by };
        };
      ]
  in
  let _ctl = Eden_fault.Controller.arm cl plan in
  drive cl (fun () ->
      for _ = 1 to reads do
        Engine.delay read_gap;
        ignore
          (must "get"
             (Cluster.invoke cl ~from:0 ~timeout:(Time.s 5) cap ~op:"get" []))
      done);
  Profile.of_timeline (Cluster.timeline cl)

let part_a ~reads =
  note "part A: home node held back by %s on every unicast"
    (Time.to_string a_slow_by);
  let pf = slow_node_run ~seed:25L ~reads in
  report "slow node" pf;
  assert_dominant "part A" pf [ Critical.Service ];
  (* Same seed, same trace, same bytes: the report is a pure function
     of the causal trace, so a rerun must render identically. *)
  let pf' = slow_node_run ~seed:25L ~reads in
  if not (String.equal (Profile.to_text pf) (Profile.to_text pf')) then
    failwith "E25 part A: same-seed profiles differ";
  note "same-seed reruns render byte-identical profiles"

(* ------------------------------------------------------------------ *)
(* Part B: near-saturation Ethernet -> wire/queue *)

let b_nodes = 6

let saturated_run ~reads =
  let cl = fresh_cluster ~seed:25L ~options:profiled ~n:b_nodes () in
  let cap, noise =
    drive cl (fun () ->
        let cap =
          must "create"
            (Cluster.create_object cl ~node:5 ~type_name:"bench_obj"
               (Value.Int 7))
        in
        let noise =
          must "create noise"
            (Cluster.create_object cl ~node:4 ~type_name:"bench_obj"
               Value.Unit)
        in
        (cap, noise))
  in
  let span = Time.scale read_gap (reads + 4) in
  (* Same calibration as E22 part B: the two cadences together put the
     10 Mb/s segment around 70% utilisation — past the knee of the
     collision curve, short of collapse. *)
  List.iter
    (fun (src, gap) ->
      ignore
        (Cluster.in_process cl (fun () ->
             let eng = Cluster.engine cl in
             let stop = Time.add (Engine.now eng) span in
             while Time.compare (Engine.now eng) stop < 0 do
               Engine.delay gap;
               ignore
                 (Cluster.invoke_async cl ~from:src noise ~op:"work"
                    [ Value.Blob 900; Value.Int 5 ])
             done)))
    [ (2, Time.us 6100); (3, Time.us 7300) ];
  drive cl (fun () ->
      for _ = 1 to reads do
        Engine.delay read_gap;
        ignore
          (must "get"
             (Cluster.invoke cl ~from:0 ~timeout:(Time.s 5) cap ~op:"get" []))
      done);
  Profile.of_timeline (Cluster.timeline cl)

let part_b ~reads =
  note "part B: two blob pumps hold the shared segment near saturation";
  let pf = saturated_run ~reads in
  report "saturated wire" pf;
  assert_dominant "part B" pf [ Critical.Wire; Critical.Queue ]

(* ------------------------------------------------------------------ *)
(* Part C: hot directory shard -> directory *)

let c_nodes = 8

let c_options =
  {
    Cluster.default_options with
    Cluster.use_hint_cache = false;
    use_forwarding = false;
    use_directory = true;
    use_profiling = true;
  }

(* Create candidate objects round-robin across the cluster and keep
   only those whose name the directory assigns to [shard] — every
   measured touch then resolves through that one shard, whatever node
   the object actually lives on. *)
let sharded_caps cl ~shard ~want =
  let caps = ref [] and made = ref 0 in
  while List.length !caps < want do
    let node = !made mod c_nodes in
    incr made;
    let cap =
      must "create"
        (Cluster.create_object cl ~node ~type_name:"bench_obj"
           (Value.Int !made))
    in
    if Cluster.directory_shard cl (Capability.name cap) = shard then
      caps := cap :: !caps
  done;
  List.rev !caps

let hot_shard_run ~touches =
  let configs =
    List.init c_nodes (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i))
  in
  let cl =
    Cluster.create ~seed:25L ~options:c_options ~segments:[ 4; 4 ]
      ~journal_cap:16384 ~configs ()
  in
  Cluster.register_type cl bench_type;
  current_cluster := Some cl;
  let caps =
    drive cl (fun () ->
        let caps = sharded_caps cl ~shard:0 ~want:touches in
        Engine.delay (Time.ms 5);
        caps)
  in
  (* The cold touches fire in concurrent waves of 16, awaiting each
     wave before the next: every wave piles 16 simultaneous
     resolutions onto the one shard, so its port backs up and
     resolution — not the invocation itself — is where the latency
     goes.  Bounding the wave keeps the volley inside the locate
     machinery's envelope (a big enough all-at-once burst outruns
     locate reply windows entirely, which fails requests instead of
     slowing them). *)
  let wave = 16 in
  drive cl (fun () ->
      let rec waves i caps =
        match caps with
        | [] -> ()
        | _ ->
          let now, later =
            List.filteri (fun k _ -> k < wave) caps,
            List.filteri (fun k _ -> k >= wave) caps
          in
          let promises =
            List.mapi
              (fun k cap ->
                Cluster.invoke_async cl
                  ~from:((i + k) mod c_nodes)
                  ~timeout:(Time.s 5) cap ~op:"ping" [])
              now
          in
          List.iter
            (fun p ->
              match Promise.await p with
              | Some r -> ignore (must "ping" r)
              | None -> failwith "E25 part C: touch did not complete")
            promises;
          waves (i + List.length now) later
      in
      waves 0 caps);
  Profile.of_timeline (Cluster.timeline cl)

let part_c ~touches =
  note "part C: %d cold names, all hashed to shard 0, touched in waves of 16"
    touches;
  let pf = hot_shard_run ~touches in
  report "hot directory shard" pf;
  assert_dominant "part C" pf [ Critical.Directory ]

(* ------------------------------------------------------------------ *)
(* Overhead: E20's paired-ratio methodology on E18's stream *)

let o_nodes = 4
let o_repeats = 7

let overhead_workload ~profiling ~iters =
  let options = if profiling then profiled else Cluster.default_options in
  let cl = fresh_cluster ~options ~n:o_nodes () in
  let virt =
    drive cl (fun () ->
        let cap =
          must "create"
            (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
               Value.Unit)
        in
        let args = [ Value.Blob 256; Value.Int 10 ] in
        for i = 1 to iters do
          ignore
            (must "work"
               (Cluster.invoke cl ~from:(i mod o_nodes) cap ~op:"work" args))
        done;
        Engine.now (Cluster.engine cl))
  in
  ignore cl;
  virt

let timed_run ~profiling ~iters =
  Gc.compact ();
  let t0 = Sys.time () in
  let virt = overhead_workload ~profiling ~iters in
  (virt, Sys.time () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let overhead ~iters =
  let ratios = ref [] in
  let virts = ref None in
  for _ = 1 to o_repeats do
    let virt_off, e_off = timed_run ~profiling:false ~iters in
    let virt_on, e_on = timed_run ~profiling:true ~iters in
    ratios := (e_on /. e_off) :: !ratios;
    virts := Some (virt_off, virt_on)
  done;
  let virt_off, virt_on = Option.get !virts in
  if not (Time.equal virt_off virt_on) then
    note
      "WARNING: virtual end times differ (%s vs %s) — profiling leaked into \
       simulated behaviour"
      (Time.to_string virt_off) (Time.to_string virt_on);
  let pct = 100.0 *. (median !ratios -. 1.0) in
  note
    "profiling overhead: %.1f%% host time (median of %d paired off/on \
     ratios over %d invocations; acceptance: < 5%%); virtual time is \
     identical by construction (holds and flushes are journaled, never \
     rescheduled)."
    pct o_repeats iters

let run () =
  heading "E25" "critical-path profiler: attribution under injected \
                 bottlenecks";
  let reads = if !smoke then 60 else 150 in
  let touches = if !smoke then 24 else 48 in
  let iters = if !smoke then 6_000 else 24_000 in
  part_a ~reads;
  part_b ~reads;
  part_c ~touches;
  overhead ~iters;
  note "E25 acceptance holds: three injected bottlenecks, three correct \
        attributions"
