(* E1 — Figure 1 / section 4.2: the cost of location-independent
   invocation, and how aggregate capacity scales with node count. *)

open Eden_util
open Eden_kernel
open Eden_workload
open Common

let latency_table () =
  let payloads = [ 0; 256; 1_024; 4_096 ] in
  let t =
    Table.create ~title:"E1a  invocation latency: local vs remote (null work)"
      ~columns:
        [
          ("payload", Table.Right);
          ("local", Table.Right);
          ("remote cold", Table.Right);
          ("remote warm", Table.Right);
          ("warm/local", Table.Right);
        ]
  in
  List.iter
    (fun payload ->
      let cl = fresh_cluster ~n:3 () in
      let row =
        drive cl (fun () ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
                   Value.Unit)
            in
            let args = [ Value.Blob payload; Value.Int 0 ] in
            let invoke from () =
              must "work" (Cluster.invoke cl ~from cap ~op:"work" args)
            in
            (* Warm the local path once (type already loaded). *)
            ignore (invoke 0 ());
            let local = mean_over cl ~warmup:2 ~iters:10 (invoke 0) in
            (* Node 1 has no hint yet: the first remote call pays the
               broadcast locate. *)
            let cold, _ = timed cl (invoke 1) in
            let warm = mean_over cl ~warmup:2 ~iters:10 (invoke 1) in
            ( Stats.mean local,
              Time.to_sec cold,
              Stats.mean warm ))
      in
      let local, cold, warm = row in
      Table.add_row t
        [
          Printf.sprintf "%dB" payload;
          Printf.sprintf "%.2fms" (local *. 1e3);
          Printf.sprintf "%.2fms" (cold *. 1e3);
          Printf.sprintf "%.2fms" (warm *. 1e3);
          Printf.sprintf "%.1fx" (warm /. local);
        ])
    payloads;
  Table.print t

let scaling_table () =
  let t =
    Table.create
      ~title:"E1b  aggregate throughput vs cluster size (local-heavy work)"
      ~columns:
        [
          ("nodes", Table.Right);
          ("completed", Table.Right);
          ("throughput", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let spec =
    {
      Synthetic.default_spec with
      Synthetic.objects_per_node = 2;
      users_per_node = 3;
      requests_per_user = 30;
      locality = 1.0;
      payload_bytes = 128;
      compute_per_request = Time.ms 5;
      think_mean_s = 0.002;
    }
  in
  let base = ref None in
  List.iter
    (fun n ->
      let cl = fresh_cluster ~n () in
      let r = Synthetic.run_eden cl spec in
      let tput = r.Synthetic.throughput in
      let speedup =
        match !base with
        | None ->
          base := Some tput;
          1.0
        | Some b -> tput /. b
      in
      Table.add_row t
        [
          Table.cell_int n;
          Table.cell_int r.Synthetic.completed;
          Printf.sprintf "%.0f/s" tput;
          Printf.sprintf "%.2fx" speedup;
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print t

let run () =
  heading "E1" "invocation cost and cluster scaling (Fig. 1, sec. 4.2)";
  latency_table ();
  scaling_table ();
  note
    "expected shape: remote >> local; cold pays the locate broadcast; \
     throughput scales near-linearly when work is local."
