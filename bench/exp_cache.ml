(* E18 — the invocation hot path: the frozen-replica cache and unicast
   message coalescing.

   Part A is the paper's caching claim made concrete: a frozen 32KB
   object read remotely drags its whole representation across a 10Mb/s
   Ethernet on every invocation; with the cache, the first read pays
   the fetch and every later read is a local dispatch.

   Part B batches a burst of small kernel messages to one destination
   into shared wire transfers and measures what that buys in frames
   and makespan. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let nodes = 3
let blob_bytes = 32_768

let cache_options =
  { Cluster.default_options with Cluster.use_replica_cache = true }

(* Mean simulated latency of [iters] reads of a frozen 32KB object on
   node 0, issued from node 1, with the replica cache on or off. *)
let read_experiment ~use_cache ~iters =
  let options = if use_cache then Some cache_options else None in
  let cl = fresh_cluster ?options ~n:nodes () in
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
             (Value.Blob blob_bytes))
      in
      ignore (must "freeze" (Cluster.freeze cl cap));
      (* First read: always remote.  With the cache on it also plants
         the frozen hint; give the background fetch (including the
         one-off type-code load on node 1) time to install the copy. *)
      let first, _ =
        timed cl (fun () ->
            must "get" (Cluster.invoke cl ~from:1 cap ~op:"get" []))
      in
      Engine.delay (Time.ms 300);
      let s = Stats.create () in
      for _ = 1 to iters do
        let d, _ =
          timed cl (fun () ->
              must "get" (Cluster.invoke cl ~from:1 cap ~op:"get" []))
        in
        Stats.add_time s d
      done;
      (Time.to_sec first, Stats.mean s))

(* A burst of small pings from node 0 to an object on node 1, with and
   without coalescing: the requests queue faster than the wire drains
   them, so with batching many ride one frame. *)
let burst_experiment ~coalesce ~burst =
  let coalesce = if coalesce then Some Transport.default_coalesce else None in
  let cl = fresh_cluster ?coalesce ~n:nodes () in
  let net = Cluster.network cl in
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:1 ~type_name:"bench_obj"
             (Value.Int 0))
      in
      (* Warm the location hint so the burst is pure request traffic. *)
      ignore (must "ping" (Cluster.invoke cl ~from:0 cap ~op:"ping" []));
      let d, () =
        timed cl (fun () ->
            let ps =
              List.init burst (fun _ ->
                  Cluster.invoke_async cl ~from:0 cap ~op:"ping" [])
            in
            List.iter (fun p -> ignore (Promise.await p)) ps)
      in
      ( d,
        Transport.frames_delivered net,
        Transport.coalesced_batches net,
        Transport.coalesced_messages net ))

(* [--trace-out FILE] (set by main.ml): export the cache-on run's
   assembled cross-node timeline as a Chrome trace. *)
let trace_out : string option ref = ref None

let emit_trace () =
  match (!trace_out, !Common.current_cluster) with
  | None, _ | _, None -> ()
  | Some file, Some cl ->
    let tl = Cluster.timeline cl in
    let oc = open_out_bin file in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Eden_obs.Timeline.to_chrome_string tl));
    note "chrome trace of the cache-on run written to %s (%d events)" file
      (Eden_obs.Timeline.length tl)

let run () =
  heading "E18" "replica cache + message coalescing (the hot path)";
  let iters = 20 in
  let first_off, mean_off = read_experiment ~use_cache:false ~iters in
  let first_on, mean_on = read_experiment ~use_cache:true ~iters in
  emit_trace ();
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E18a  reading a frozen %dKB object from another node"
           (blob_bytes / 1024))
      ~columns:
        [
          ("replica cache", Table.Left);
          ("first read", Table.Right);
          ("later reads (mean)", Table.Right);
        ]
  in
  Table.add_row t
    [
      "off";
      Printf.sprintf "%.2fms" (first_off *. 1e3);
      Printf.sprintf "%.2fms" (mean_off *. 1e3);
    ];
  Table.add_row t
    [
      "on";
      Printf.sprintf "%.2fms" (first_on *. 1e3);
      Printf.sprintf "%.2fms" (mean_on *. 1e3);
    ];
  Table.print t;
  note "cache hit vs remote read: %.1fx cheaper (acceptance: >= 5x)"
    (mean_off /. mean_on);
  let burst = 200 in
  let mk_off, frames_off, _, _ = burst_experiment ~coalesce:false ~burst in
  let mk_on, frames_on, batches, members =
    burst_experiment ~coalesce:true ~burst
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E18b  %d-ping burst to one destination" burst)
      ~columns:
        [
          ("coalescing", Table.Left);
          ("makespan", Table.Right);
          ("wire frames", Table.Right);
          ("batches", Table.Right);
          ("batched msgs", Table.Right);
        ]
  in
  Table.add_row t
    [
      "off";
      Table.cell_time mk_off;
      Table.cell_int frames_off;
      Table.cell_int 0;
      Table.cell_int 0;
    ];
  Table.add_row t
    [
      "on";
      Table.cell_time mk_on;
      Table.cell_int frames_on;
      Table.cell_int batches;
      Table.cell_int members;
    ];
  Table.print t;
  note
    "expected shape: with coalescing the burst crosses in fewer, fuller \
     frames (batches amortise per-frame preamble); the makespan stays \
     roughly flat because serialised wire bytes, not frame count, bound \
     this burst.  Replies stay unbatched (one per request, paced by the \
     server)."
