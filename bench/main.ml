(* The experiment harness: one entry per experiment in EXPERIMENTS.md.

     dune exec bench/main.exe              # run everything
     dune exec bench/main.exe -- E5 E7     # run a subset
     dune exec bench/main.exe -- --list    # enumerate experiments *)

let experiments =
  [
    ("E1", "invocation cost and cluster scaling", Exp_invocation.run);
    ("E2", "node machine provisioning (GDPs, memory)", Exp_node.run);
    ("E3", "Ethernet behaviour under load", Exp_ethernet.run);
    ("E4", "invocation-class concurrency bounds", Exp_classes.run);
    ("E5", "checkpoint cost vs size and reliability", Exp_checkpoint.run);
    ("E6", "crash and reincarnation latency", Exp_recovery.run);
    ("E7", "object mobility", Exp_mobility.run);
    ("E8", "frozen-object replication", Exp_replication.run);
    ("E9", "integration vs distribution (thesis)", Exp_spectrum.run);
    ("E10", "EFS concurrency control and replication", Exp_efs.run);
    ("E11", "sync vs async invocation", Exp_async.run);
    ("E12", "timeout behaviour", Exp_timeout.run);
    ("E13", "location-machinery ablation", Exp_ablation.run);
    ("E14", "edit/compile development workload", Exp_devel.run);
    ("E15", "two-segment Eden: bridge cost", Exp_segments.run);
    ("E16", "availability under node churn", Exp_availability.run);
    ("E17", "availability under fault injection (checksites)", Exp_faults.run);
    ("E18", "replica cache + message coalescing (hot path)", Exp_cache.run);
    ("E19", "delta + async checkpoints vs full sync", Exp_delta.run);
    ("E20", "event-journal overhead on invocation", Exp_journal.run);
    ("E21", "health-plane overhead and hot-object recovery", Exp_health.run);
    ("E22", "tail latency: request cloning and hedged retries", Exp_tail.run);
    ("E23", "sharded locate directory vs broadcast scaling", Exp_directory.run);
    ("E24", "online reconfiguration: join, drain, leave under load", Exp_reconfig.run);
    ("E25", "critical-path profiler: attribution under injected bottlenecks", Exp_profile.run);
    ("M", "substrate microbenchmarks (Bechamel)", Micro.run);
  ]

let list_experiments () =
  List.iter
    (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title)
    experiments

(* Each experiment's output ends with a METRICS line (the registry
   snapshot of the last cluster it built) and a BENCH_<id>.json
   summary file (its headline results and counter totals). *)
let run_one (id, title, run) =
  Common.reset_metrics ();
  run ();
  Common.attach_metrics ~id ();
  Common.write_summary ~id ~title ()

(* Pull [--trace-out FILE] and [--smoke] out of the argument list
   (they modify how E18 / E22 run rather than selecting an
   experiment). *)
let rec extract_trace_out = function
  | [] -> []
  | "--trace-out" :: file :: rest ->
    Exp_cache.trace_out := Some file;
    extract_trace_out rest
  | [ "--trace-out" ] ->
    Printf.eprintf "--trace-out needs a file argument\n";
    exit 1
  | "--smoke" :: rest ->
    Exp_tail.smoke := true;
    Exp_directory.smoke := true;
    Exp_reconfig.smoke := true;
    Exp_profile.smoke := true;
    extract_trace_out rest
  | a :: rest -> a :: extract_trace_out rest

let () =
  let args = extract_trace_out (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [ "--list" ] -> list_experiments ()
  | [] ->
    Printf.printf
      "Eden reproduction experiment suite (all experiments; pass ids to \
       select, --list to enumerate)\n";
    List.iter run_one experiments
  | ids ->
    List.iter
      (fun id ->
        match
          List.find_opt
            (fun (eid, _, _) -> String.lowercase_ascii eid = String.lowercase_ascii id)
            experiments
        with
        | Some exp -> run_one exp
        | None ->
          Printf.eprintf "unknown experiment %S; try --list\n" id;
          exit 1)
      ids
