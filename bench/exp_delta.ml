(* E19 — delta checkpoints and the async checkpoint pipeline, against
   E5's full synchronous baseline (same seed-42 protocol).

   The object lays its ~1MB representation out as 16 chunks; each
   round dirties exactly one chunk before checkpointing, so a delta
   round ships ~1/16 of the bytes a full round does. *)

open Eden_util
open Eden_kernel
open Common

let chunks = 16
let chunk_bytes = 62_500 (* 16 x 62500 = 1MB *)

(* A chunked counterpart of [bench_obj]: the representation is a
   [Value.List] of (serial, blob) chunks, so one [touch] dirties one
   delta unit. *)
let delta_type =
  let open Api in
  Typemgr.make_exn ~name:"delta_obj"
    [
      Typemgr.operation "touch" (fun ctx args ->
          (* Bump chunk [i]'s serial: same size, different value. *)
          let* v = arg1 args in
          let* i = int_arg v in
          let* cs =
            Value.to_list (ctx.get_repr ())
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let* () =
            ctx.set_repr
              (Value.List
                 (List.mapi
                    (fun j c ->
                      match c with
                      | Value.Pair (Value.Int serial, blob) when j = i ->
                        Value.Pair (Value.Int (serial + 1), blob)
                      | c -> c)
                    cs))
          in
          reply_unit);
      Typemgr.operation "save" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint () in
          reply_unit);
      Typemgr.operation "save_async" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint_async () in
          reply_unit);
      Typemgr.operation "set_rel_mirrored" (fun ctx args ->
          let* v = arg1 args in
          let* sites =
            Value.to_list v
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let sites =
            List.filter_map (fun s -> Result.to_option (Value.to_int s)) sites
          in
          let* () = ctx.set_reliability (Reliability.Mirrored sites) in
          reply_unit);
    ]

let init_repr =
  Value.List
    (List.init chunks (fun _ ->
         Value.Pair (Value.Int 0, Value.Blob chunk_bytes)))

(* Build a mirrored-x2 chunked object, checkpoint once to establish
   the version base, then return it. *)
let setup cl =
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:0 ~type_name:"delta_obj" init_repr)
      in
      ignore
        (must "set_rel"
           (Cluster.invoke cl ~from:0 cap ~op:"set_rel_mirrored"
              [ Value.List [ Value.Int 1; Value.Int 2 ] ]));
      ignore (must "base save" (Cluster.invoke cl ~from:0 cap ~op:"save" []));
      cap)

(* Mean time of [op] over rounds that each dirty one chunk first. *)
let measure cl cap op ~iters =
  drive cl (fun () ->
      let s = Stats.create () in
      for i = 1 to iters do
        ignore
          (must "touch"
             (Cluster.invoke cl ~from:0 cap ~op:"touch"
                [ Value.Int (i mod chunks) ]));
        let d, _ =
          timed cl (fun () ->
              must op (Cluster.invoke cl ~from:0 cap ~op []))
        in
        Stats.add_time s d;
        (* Let an async round drain before the next sample, so each
           sample measures caller latency of a fresh round. *)
        if op = "save_async" then Eden_sim.Engine.delay (Time.s 30)
      done;
      Stats.mean s)

let cluster ~delta () =
  let options = { Cluster.default_options with Cluster.use_ckpt_delta = delta } in
  let cl = big_cluster ~options ~n:3 () in
  Cluster.register_type cl delta_type;
  cl

let run () =
  heading "E19" "delta + async checkpoints vs full-sync baseline (E5 protocol)";
  let iters = 4 in
  let full =
    let cl = cluster ~delta:false () in
    measure cl (setup cl) "save" ~iters
  in
  let delta =
    let cl = cluster ~delta:true () in
    measure cl (setup cl) "save" ~iters
  in
  let async_caller =
    let cl = cluster ~delta:true () in
    measure cl (setup cl) "save_async" ~iters
  in
  let t =
    Table.create ~title:"E19  checkpoint of a 1MB repr, 1/16 dirty per round"
      ~columns:[ ("mode", Table.Left); ("mean latency", Table.Right) ]
  in
  Table.add_row t [ "full sync (E5 baseline)"; Printf.sprintf "%.1fms" (full *. 1e3) ];
  Table.add_row t [ "delta sync"; Printf.sprintf "%.1fms" (delta *. 1e3) ];
  Table.add_row t
    [ "async (caller latency)"; Printf.sprintf "%.3fms" (async_caller *. 1e3) ];
  Table.print t;
  note "delta speedup over full: %.1fx (>=5x expected at 1/16 dirty)"
    (full /. delta);
  note
    "expected shape: delta ships only the dirty chunk, so its cost \
     tracks dirty bytes, not repr size; the async call returns before \
     any write, so caller latency is microseconds regardless of size."
