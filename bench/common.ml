(* Shared plumbing for the experiment harness. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Api

let heading id title =
  Printf.printf "\n%s\n%s  %s\n%s\n"
    (String.make 72 '=') id title (String.make 72 '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "-- %s\n" s) fmt

(* A self-describing served object used across experiments: a counter
   with a CPU-burning op and reliability controls. *)
let bench_type =
  Typemgr.make_exn ~name:"bench_obj"
    ~classes:
      (Opclass.one_class ~name:"all"
         ~operations:
           [ "ping"; "work"; "grow"; "save"; "die"; "get"; "set_rel" ]
         ~limit:16)
    [
      Typemgr.operation "ping" ~mutates:false (fun _ args ->
          let* _ = Ok args in
          reply []);
      Typemgr.operation "work" ~mutates:false (fun ctx args ->
          let* a, b = arg2 args in
          let* us = int_arg b in
          ctx.compute (Time.us us);
          reply [ a ]);
      Typemgr.operation "grow" (fun ctx args ->
          (* Replace the representation with a blob of the given size. *)
          let* v = arg1 args in
          let* bytes = int_arg v in
          let* () = ctx.set_repr (Value.Blob bytes) in
          reply_unit);
      Typemgr.operation "save" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint () in
          reply_unit);
      Typemgr.operation "die" (fun ctx args ->
          let* () = no_args args in
          ctx.crash ();
          reply_unit);
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "set_rel" (fun ctx args ->
          (* Int -1 = local; Int n = remote at n; List = mirrored. *)
          let* v = arg1 args in
          let* rel =
            match v with
            | Value.Int -1 -> Ok Reliability.Local
            | Value.Int n -> Ok (Reliability.Remote n)
            | Value.List sites ->
              Ok
                (Reliability.Mirrored
                   (List.filter_map
                      (fun s -> Result.to_option (Value.to_int s))
                      sites))
            | _ -> Error (Error.Bad_arguments "set_rel: int or list")
          in
          let* () = ctx.set_reliability rel in
          reply_unit);
    ]

(* The harness attaches a metrics snapshot of each experiment's most
   recently built cluster to its output (see main.ml), so every
   experiment's numbers come with the kernel/network counters that
   produced them. *)
let current_cluster : Cluster.t option ref = ref None

(* Headline results an experiment publishes into its BENCH_<id>.json
   summary (below); cleared between experiments by the harness. *)
let summary_results : (string * Eden_obs.Json.t) list ref = ref []

let reset_metrics () =
  current_cluster := None;
  summary_results := []

let attach_metrics ~id () =
  match !current_cluster with
  | None -> ()
  | Some cl ->
    let snap = Cluster.metrics_snapshot cl in
    (* Spans omitted: experiment logs stay one greppable line each. *)
    let snap = { snap with Eden_obs.Snapshot.spans = [] } in
    Printf.printf "METRICS %s %s\n" id
      (Eden_obs.Snapshot.to_string ~compact:true snap)

(* ------------------------------------------------------------------ *)
(* Machine-readable run summaries: every experiment run ends with a
   BENCH_<id>.json in the working directory — the experiment's id and
   title, whatever headline results it published, and the cluster-wide
   counter totals of the last cluster it built.  Field order is fixed
   and counters arrive pre-sorted from the registry, so as long as an
   experiment publishes virtual-time quantities (not host timings) a
   same-seed rerun writes byte-identical files and downstream tooling
   can diff two checkouts' results directly. *)

let summary_note key v = summary_results := (key, v) :: !summary_results
let summary_int key n = summary_note key (Eden_obs.Json.Int n)
let summary_float key f = summary_note key (Eden_obs.Json.Float f)
let summary_str key s = summary_note key (Eden_obs.Json.Str s)

(* Counters summed across label sets (per-node counters roll up
   cluster-wide); gauges and histograms are point-in-time or
   host-dependent detail that belongs to the METRICS line, not the
   summary. *)
let counter_totals cl =
  let snap = Cluster.metrics_snapshot cl in
  let totals = Hashtbl.create 64 and order = ref [] in
  List.iter
    (fun s ->
      match s.Eden_obs.Metrics.s_value with
      | Eden_obs.Metrics.Counter n ->
        let name = s.Eden_obs.Metrics.s_name in
        if not (Hashtbl.mem totals name) then order := name :: !order;
        Hashtbl.replace totals name
          (n + Option.value ~default:0 (Hashtbl.find_opt totals name))
      | _ -> ())
    snap.Eden_obs.Snapshot.metrics;
  List.rev_map
    (fun name -> (name, Eden_obs.Json.Int (Hashtbl.find totals name)))
    !order

let write_summary ~id ~title () =
  let json =
    Eden_obs.Json.Obj
      [
        ("schema", Eden_obs.Json.Str "eden-bench/1");
        ("id", Eden_obs.Json.Str id);
        ("title", Eden_obs.Json.Str title);
        ("results", Eden_obs.Json.Obj (List.rev !summary_results));
        ( "counters",
          Eden_obs.Json.Obj
            (match !current_cluster with
            | Some cl -> counter_totals cl
            | None -> []) );
      ]
  in
  let path = Printf.sprintf "BENCH_%s.json" id in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Eden_obs.Json.to_string ~compact:false json);
      output_char oc '\n')

let fresh_cluster ?(seed = 42L) ?options ?coalesce ?journal_cap ?health ~n ()
    =
  let cl =
    Cluster.default ~seed ?options ?coalesce ?journal_cap ?health ~n_nodes:n
      ()
  in
  Cluster.register_type cl bench_type;
  current_cluster := Some cl;
  cl

(* Nodes with enough memory to host megabyte representations (the
   checkpoint and mobility sweeps need headroom beyond 1 MB). *)
let big_cluster ?(seed = 42L) ?options ~n () =
  let configs =
    List.init n (fun i ->
        {
          (Eden_hw.Machine.default_config ~name:(Printf.sprintf "node%d" i)) with
          Eden_hw.Machine.memory_bytes = 4_000_000;
        })
  in
  let cl = Cluster.create ~seed ?options ~configs () in
  Cluster.register_type cl bench_type;
  current_cluster := Some cl;
  cl

(* Run [body] as a driver and return its value once the sim drains. *)
let drive cl body =
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body ())) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> failwith "bench driver did not complete"

let must label = function
  | Ok v -> v
  | Error e -> failwith (label ^ ": " ^ Error.to_string e)

(* Simulated duration of [thunk], which must be called in-process. *)
let timed cl thunk =
  let eng = Cluster.engine cl in
  let t0 = Engine.now eng in
  let r = thunk () in
  (Time.diff (Engine.now eng) t0, r)

let mean_over cl ~warmup ~iters thunk =
  for _ = 1 to warmup do
    ignore (thunk ())
  done;
  let s = Stats.create () in
  for _ = 1 to iters do
    let d, _ = timed cl thunk in
    Stats.add_time s d
  done;
  s
