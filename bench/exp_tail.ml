(* E22 — tail latency under speculation: request cloning + hedging.

   The hot path's defence against stragglers is speculative: read-only
   invocations on a frozen object fan out to the home site and every
   known replica (first response wins, losers get an urgent cancel),
   and non-cloned requests are re-sent once when a reply takes longer
   than the windowed latency quantile.  Neither changes what a request
   computes, only who answers it — so the payoff must show up purely
   in the latency distribution.

   Part A: slow-node chaos.  A frozen object lives on [home] with
   replicas on two other nodes; node 0 reads it on a fixed cadence
   while a fault plan degrades [home] mid-run (every unicast touching
   it held back — latency tails, not absence).  Baseline reads keep
   going to the hinted home and eat the delay; with speculation on,
   the fan-out reaches an undegraded replica.  Acceptance: p999
   improves at least 3x with cloning + hedging, while p50 regresses
   under 5% (the speculation tax: extra copies and cancels).

   Part B: near-saturation Ethernet.  No faults; instead two
   background processes pump blob-carrying invocations through the
   shared segment while node 0 runs the same read cadence.  Queueing
   in the collision domain, not any single node, makes the stragglers
   here, so this reports how speculation behaves when the network
   itself is the bottleneck (cloning adds traffic; the win is smaller
   and can invert — the numbers are reported, not gated).

   `make tail-check` runs the smoke variant: part A only, a shorter
   read stream, and the same acceptance thresholds. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let smoke = ref false

let nodes = 6
let home = 5
let replicas = [ 1; 2 ]
let read_gap = Time.ms 5
let slow_by = Time.ms 25

let options ~clone ~hedge =
  {
    Cluster.default_options with
    Cluster.speculate =
      { Api.no_speculation with Api.sp_clone = clone; sp_hedge = hedge };
  }

let counter cl name =
  match
    Eden_obs.Snapshot.find (Cluster.metrics_snapshot cl)
      ~labels:[ ("node", "0") ] name
  with
  | Some (Eden_obs.Metrics.Counter n) -> n
  | _ -> 0

(* Create the frozen object, replicate it, and warm the requester:
   a few unmeasured reads teach node 0 the replica sites (clone
   fan-out candidates) and seed the hedge window. *)
let build cl =
  drive cl (fun () ->
      let cap =
        must "create"
          (Cluster.create_object cl ~node:home ~type_name:"bench_obj"
             (Value.Int 7))
      in
      must "freeze" (Cluster.freeze cl cap);
      List.iter
        (fun n -> must "replicate" (Cluster.replicate cl cap ~to_node:n))
        replicas;
      for _ = 1 to 8 do
        Engine.delay read_gap;
        ignore
          (must "warm"
             (Cluster.invoke cl ~from:0 ~timeout:(Time.s 1) cap ~op:"get" []))
      done;
      cap)

let read_stream cl cap ~reads =
  let lat = Stats.create () in
  drive cl (fun () ->
      for _ = 1 to reads do
        Engine.delay read_gap;
        let d, _ =
          timed cl (fun () ->
              must "get"
                (Cluster.invoke cl ~from:0 ~timeout:(Time.s 1) cap ~op:"get"
                   []))
        in
        Stats.add_time lat d
      done);
  lat

let pms lat p = Stats.percentile lat p *. 1e3

let report label lat =
  Printf.printf "  %-18s p50 %7.3fms   p99 %7.3fms   p999 %7.3fms\n" label
    (pms lat 50.0) (pms lat 99.0) (pms lat 99.9)

(* ------------------------------------------------------------------ *)
(* Part A: slow-node chaos *)

(* The slow window sits in the middle of the stream and covers ~15% of
   it, so the tail percentiles land inside the degradation and the
   median outside it. *)
let chaos_run ~clone ~hedge ~reads =
  let cl =
    fresh_cluster ~seed:7L ~options:(options ~clone ~hedge) ~n:nodes ()
  in
  let cap = build cl in
  let span = Time.scale read_gap reads in
  let from = Time.divide span 2 in
  let until = Time.add from (Time.divide span 6) in
  let plan =
    Eden_fault.Plan.make
      [
        {
          Eden_fault.Plan.at = from;
          action = Eden_fault.Plan.Slow_node { node = home; by = slow_by };
        };
        { Eden_fault.Plan.at = until; action = Eden_fault.Plan.Heal_slow home };
      ]
  in
  let _ctl = Eden_fault.Controller.arm cl plan in
  let lat = read_stream cl cap ~reads in
  (cl, lat)

let part_a ~reads =
  note "part A: %d reads, home degraded by %s for ~1/6 of the stream" reads
    (Time.to_string slow_by);
  let _, base = chaos_run ~clone:false ~hedge:false ~reads in
  report "baseline" base;
  (* Hedge-only: one request as usual, a second copy to an alternate
     replica only once the reply outruns the windowed quantile.  Tail
     bounded by threshold + a fast round trip, at a fraction of
     cloning's traffic. *)
  let hcl, honly = chaos_run ~clone:false ~hedge:true ~reads in
  report "hedge-only" honly;
  let hedges_only = counter hcl "eden.hedge.sent" in
  let cl, spec = chaos_run ~clone:true ~hedge:true ~reads in
  report "clone+hedge" spec;
  let fanouts = counter cl "eden.clone.fanouts" in
  let cancels = counter cl "eden.clone.cancels" in
  note "speculation: %d fan-outs, %d cancels; %d hedges in hedge-only"
    fanouts cancels hedges_only;
  let p999_gain = pms base 99.9 /. pms spec 99.9 in
  let hedge_gain = pms base 99.9 /. pms honly 99.9 in
  let p50_tax = (pms spec 50.0 /. pms base 50.0) -. 1.0 in
  note "p999 %.1fx better (hedge-only %.1fx), p50 %+.2f%% (acceptance: >= \
        3x, < 5%%)"
    p999_gain hedge_gain (100.0 *. p50_tax);
  assert (fanouts > 0);
  assert (hedges_only > 0);
  assert (p999_gain >= 3.0);
  assert (p50_tax < 0.05)

(* ------------------------------------------------------------------ *)
(* Part B: near-saturation Ethernet *)

(* Blob-pumping background processes push the shared segment toward
   saturation; the measured reads queue behind them in the collision
   domain. *)
let saturated_run ~clone ~hedge ~reads =
  let cl =
    fresh_cluster ~seed:7L ~options:(options ~clone ~hedge) ~n:nodes ()
  in
  let cap = build cl in
  let noise =
    drive cl (fun () ->
        must "create noise"
          (Cluster.create_object cl ~node:4 ~type_name:"bench_obj" Value.Unit))
  in
  let span = Time.scale read_gap (reads + 4) in
  List.iter
    (fun (src, gap) ->
      ignore
        (Cluster.in_process cl (fun () ->
             let eng = Cluster.engine cl in
             let stop = Time.add (Engine.now eng) span in
             while Time.compare (Engine.now eng) stop < 0 do
               (* The blob comes back in the echo, so each pump loads
                  both directions; the two cadences together put the
                  10 Mb/s segment around 70% utilisation — and they
                  deliberately differ, or the pumps would collide in
                  lockstep forever.  Well past the knee of the
                  collision curve, short of queueing collapse. *)
               Engine.delay gap;
               ignore
                 (Cluster.invoke_async cl ~from:src noise ~op:"work"
                    [ Value.Blob 900; Value.Int 5 ])
             done)))
    [ (2, Time.us 6100); (3, Time.us 7300) ];
  let lat = read_stream cl cap ~reads in
  (cl, lat)

let part_b ~reads =
  note "part B: %d reads against two blob pumps on the shared segment"
    reads;
  let _, base = saturated_run ~clone:false ~hedge:false ~reads in
  report "baseline" base;
  let cl, spec = saturated_run ~clone:true ~hedge:true ~reads in
  report "clone+hedge" spec;
  note "speculation: %d fan-outs, %d cancels, %d hedges"
    (counter cl "eden.clone.fanouts")
    (counter cl "eden.clone.cancels")
    (counter cl "eden.hedge.sent")

let run () =
  heading "E22" "tail latency: request cloning and hedged retries";
  let reads = if !smoke then 150 else 400 in
  part_a ~reads;
  if not !smoke then part_b ~reads;
  note "E22 acceptance holds"
