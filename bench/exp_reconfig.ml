(* E24 — online reconfiguration: join, drain, and leave under load.

   PR 6's membership machinery claims that a cluster can grow and
   shrink while traffic flows: a spare joins mid-stream, a member is
   decommissioned (its objects bulk-evacuated over the checkpoint
   pipeline, each move republished to the registry), and the epoch
   bump rebuilds the directory ring with minimal remap — all without
   losing a request or an object.

   The experiment is a two-phase self-comparison on an identical
   workload (same seed, same touch stream, hint cache and forwarding
   off so every invocation re-resolves through the directory):

   - phase A: static ring, no membership changes — the E23-style
     baseline figure for locate cost per touch;
   - phase B: the same stream with a join at one third of the run and
     a decommission at two thirds — the epoch churn, drain traffic,
     and old-view detours all land in the middle of the workload.

   Locate cost per touch uses E23's conservative model: one Dir_get +
   one reply per resolution (2 x (hits + misses)), one Dir_nack per
   invalidation, one Dir_put per publish (estimated as one per create
   plus, in phase B, one per drain move — the only home-changing
   events here), and every broadcast fallback at full fan-out cost
   (broadcasts x (n-1)).

   Acceptance (the smoke variant runs the small size only):
   - phase B serves every request: zero failed invocations through
     join + drain + leave;
   - locate msgs/touch in phase B stays within 1.5x of the static
     figure — reconfiguration churn, not a return to broadcast;
   - census: every object survives exactly once, homed on a final
     member (none lost by the drain, none double-activated);
   - the journal passes all seven trace invariants, epoch
     monotonicity included. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let smoke = ref false

(* (member nodes, spares); workload scale rides the member count. *)
let sizes = [ (6, 1); (10, 2) ]
let rounds = 6

let options =
  {
    Cluster.default_options with
    Cluster.use_hint_cache = false;
    use_forwarding = false;
    use_directory = true;
  }

let build ~n ~spares =
  let cl = Cluster.default ~seed:24L ~options ~spares ~n_nodes:n () in
  Cluster.register_type cl bench_type;
  current_cluster := Some cl;
  cl

let sum_counter cl name =
  let snap = Cluster.metrics_snapshot cl in
  List.fold_left
    (fun acc i ->
      match
        Eden_obs.Snapshot.find snap
          ~labels:[ ("node", string_of_int i) ]
          name
      with
      | Some (Eden_obs.Metrics.Counter c) -> acc + c
      | _ -> acc)
    0
    (List.init (Cluster.node_count cl) Fun.id)

let must_s = function
  | Ok () -> ()
  | Error e -> failwith ("reconfig: " ^ e)

type run = {
  r_ok : int;
  r_failed : int;
  r_msgs_per_touch : float;
  r_rate : float;
  r_drained : int;
  r_violations : string list;
  r_census_ok : bool;
}

(* Two objects per initial member, then [rounds] sweeps in which every
   live node touches objects homed two and three places around the
   ring.  With [reconfig] set, a spare joins after a third of the
   sweeps and a member is decommissioned after two thirds — while the
   stream keeps running. *)
let run_mode ~n ~spares ~reconfig =
  let cl = build ~n ~spares in
  let eng = Cluster.engine cl in
  let ok = ref 0 and failed = ref 0 in
  let victim = 1 in
  let elapsed, caps =
    drive cl (fun () ->
        let caps =
          Array.init (2 * n) (fun i ->
              must "create"
                (Cluster.create_object cl ~node:(i mod n)
                   ~type_name:"bench_obj" (Value.Int i)))
        in
        Engine.delay (Time.ms 5);
        let t0 = Engine.now eng in
        for r = 1 to rounds do
          if reconfig && r = (rounds / 3) + 1 then
            must_s (Cluster.join_node cl n);
          if reconfig && r = (2 * rounds / 3) + 1 then
            must_s (Cluster.decommission_node cl victim);
          for from = 0 to Cluster.node_count cl - 1 do
            if Cluster.node_up cl from && Cluster.is_member cl from then
              for k = 2 to 3 do
                Engine.delay (Time.ms 1);
                match
                  Cluster.invoke cl ~from ~timeout:(Time.s 1)
                    ~retry:Api.default_retry
                    caps.((from + k) mod Array.length caps)
                    ~op:"ping" []
                with
                | Ok _ -> incr ok
                | Error _ -> incr failed
              done
          done
        done;
        (Time.diff (Engine.now eng) t0, caps))
  in
  let c = sum_counter cl in
  let nodes = Cluster.node_count cl in
  let publishes = (2 * n) + c "eden.drain.moves" in
  let msgs =
    (2 * (c "eden.dir.hits" + c "eden.dir.misses"))
    + c "eden.dir.nacks" + publishes
    + (c "eden.locate_broadcasts" * (nodes - 1))
  in
  let census_ok =
    Array.for_all
      (fun cap ->
        match Cluster.where_is cl cap with
        | Some home -> Cluster.is_member cl home
        | None -> false)
      caps
  in
  {
    r_ok = !ok;
    r_failed = !failed;
    r_msgs_per_touch = float_of_int msgs /. float_of_int (max 1 !ok);
    r_rate = float_of_int !ok /. Time.to_sec elapsed;
    r_drained = c "eden.drain.moves";
    r_violations =
      Eden_obs.Check.run
        ~complete:(Cluster.journal_dropped cl = 0)
        (Cluster.timeline cl)
      |> List.map (Format.asprintf "%a" Eden_obs.Check.pp_violation);
    r_census_ok = census_ok;
  }

let run () =
  heading "E24" "online reconfiguration: join, drain, and leave under load";
  let sizes = if !smoke then [ (6, 1) ] else sizes in
  let t =
    Table.create
      ~title:"E24  locate cost through join + drain + leave (vs static ring)"
      ~columns:
        [
          ("members+spares", Table.Right);
          ("touches", Table.Right);
          ("static msgs/touch", Table.Right);
          ("reconfig msgs/touch", Table.Right);
          ("ratio", Table.Right);
          ("drained", Table.Right);
          ("static inv/s", Table.Right);
          ("reconfig inv/s", Table.Right);
        ]
  in
  List.iter
    (fun (n, spares) ->
      let a = run_mode ~n ~spares ~reconfig:false in
      let b = run_mode ~n ~spares ~reconfig:true in
      let ratio = b.r_msgs_per_touch /. Float.max 0.01 a.r_msgs_per_touch in
      Table.add_row t
        [
          Printf.sprintf "%d+%d" n spares;
          string_of_int b.r_ok;
          Printf.sprintf "%.2f" a.r_msgs_per_touch;
          Printf.sprintf "%.2f" b.r_msgs_per_touch;
          Printf.sprintf "%.2fx" ratio;
          string_of_int b.r_drained;
          Printf.sprintf "%.0f" a.r_rate;
          Printf.sprintf "%.0f" b.r_rate;
        ];
      (* The static phase is fault-free: everything resolves. *)
      assert (a.r_failed = 0);
      (* Acceptance: no request lost to the reconfiguration... *)
      assert (b.r_failed = 0);
      (* ...the drain actually bulk-moved the leaver's objects... *)
      assert (b.r_drained >= 2);
      (* ...every object survives exactly once on a final member... *)
      assert (a.r_census_ok && b.r_census_ok);
      (* ...locate cost stays within 1.5x of the static ring... *)
      assert (ratio <= 1.5);
      (* ...and the journal stays clean under all seven invariants. *)
      (match b.r_violations with
      | [] -> ()
      | v :: _ ->
        Printf.eprintf "E24 invariant violation: %s\n" v;
        assert false);
      assert (a.r_violations = []))
    sizes;
  Table.print t;
  note "reconfig within 1.5x static locate cost; acceptance holds"
