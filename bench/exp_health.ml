(* E21 — health-plane overhead and hot-object recovery.

   Part A: the health plane samples the metrics registry on a virtual
   clock, so a run with it enabled executes the exact same event
   schedule as one without (asserted via end-of-run virtual times).
   What it costs is host time: a registry walk plus window pushes per
   tick, and a top-k sketch update per invocation.  Run E20's seeded
   invocation workload with the plane off and on and compare host CPU
   time with the same paired-ratio methodology (interleaved pairs from
   a compacted heap; median of per-pair ratios — see exp_journal.ml
   for why medians of absolutes don't cancel machine drift).
   Acceptance: < 5% overhead.

   Part B: accuracy of the space-saving hot-object sketch.  Drive a
   seeded Zipf(s=1.2) invocation stream over more distinct objects
   than the sketch holds, then compare the cluster rollup's top 10
   against the true top 10 counted exactly on the side.  Acceptance:
   at least 9 of the true top 10 recovered, and every reported error
   bound within total/capacity. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let nodes = 4
let iters = 48_000
let repeats = 7

(* E20's locality-free request stream, with the health plane optional. *)
let workload ?health () =
  let cl = fresh_cluster ?health ~n:nodes () in
  let virt =
    drive cl (fun () ->
        let cap =
          must "create"
            (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
               Value.Unit)
        in
        let args = [ Value.Blob 256; Value.Int 10 ] in
        for i = 1 to iters do
          ignore
            (must "work"
               (Cluster.invoke cl ~from:(i mod nodes) cap ~op:"work" args))
        done;
        Engine.now (Cluster.engine cl))
  in
  (cl, virt)

let timed_run ?health () =
  Gc.compact ();
  let t0 = Sys.time () in
  let cl, virt = workload ?health () in
  (cl, virt, Sys.time () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let measure () =
  let offs = ref [] and ons = ref [] and ratios = ref [] in
  let last = ref None in
  for _ = 1 to repeats do
    let _, virt_off, e_off = timed_run () in
    offs := e_off :: !offs;
    let cl, virt_on, e_on =
      timed_run ~health:Eden_obs.Health.default_config ()
    in
    ons := e_on :: !ons;
    ratios := (e_on /. e_off) :: !ratios;
    last := Some (cl, virt_off, virt_on)
  done;
  match !last with
  | Some (cl, virt_off, virt_on) ->
    (cl, virt_off, virt_on, median !offs, median !ons, median !ratios)
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Part B: Zipf stream against the top-k rollup. *)

let zipf_objects = 64
let zipf_invocations = 4_000
let zipf_s = 1.2

(* Sample ranks 1..n from Zipf(s) by inverting the CDF over a
   precomputed table — deterministic given the Splitmix stream. *)
let zipf_sampler rng ~n ~s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float (i + 1)) s) in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cdf.(i) <- !acc)
    weights;
  let total = !acc in
  fun () ->
    let u = Splitmix.float rng total in
    (* First index whose cumulative weight exceeds the draw. *)
    let rec find lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) > u then find lo mid else find (mid + 1) hi
    in
    find 0 (n - 1)

let zipf_accuracy () =
  let cl =
    fresh_cluster ~seed:91L ~health:Eden_obs.Health.default_config ~n:nodes
      ()
  in
  let true_counts = Array.make zipf_objects 0 in
  let keys =
    drive cl (fun () ->
        let caps =
          Array.init zipf_objects (fun i ->
              must "create"
                (Cluster.create_object cl ~node:(i mod nodes)
                   ~type_name:"bench_obj" Value.Unit))
        in
        let rng = Splitmix.create 0xE21L in
        let draw = zipf_sampler rng ~n:zipf_objects ~s:zipf_s in
        for i = 1 to zipf_invocations do
          let r = draw () in
          true_counts.(r) <- true_counts.(r) + 1;
          ignore
            (must "ping"
               (Cluster.invoke cl ~from:(i mod nodes) caps.(r) ~op:"ping" []))
        done;
        Array.map (fun c -> Name.to_string (Capability.name c)) caps)
  in
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> compare (b : int) a)
      (Array.to_list (Array.mapi (fun i c -> (keys.(i), c)) true_counts))
  in
  let true_top10 = List.filteri (fun i _ -> i < 10) ranked in
  let reported = Cluster.hot_objects_rollup cl ~k:10 () in
  let recovered =
    List.length
      (List.filter
         (fun (k, _) ->
           List.exists (fun e -> e.Eden_obs.Topk.e_key = k) reported)
         true_top10)
  in
  (cl, true_top10, reported, recovered)

let run () =
  heading "E21" "health-plane overhead and hot-object recovery";
  let cl_on, virt_off, virt_on, t_off, t_on, ratio = measure () in
  if not (Time.equal virt_off virt_on) then
    note "WARNING: virtual end times differ (%s vs %s) — the health plane \
          leaked into simulated behaviour"
      (Time.to_string virt_off) (Time.to_string virt_on);
  let ticks =
    match Cluster.health cl_on with
    | Some h -> Eden_obs.Health.ticks h
    | None -> 0
  in
  let overhead = 100.0 *. (ratio -. 1.0) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E21a %d invocations across %d nodes (median of %d)"
           iters nodes repeats)
      ~columns:
        [
          ("health plane", Table.Left);
          ("host time", Table.Right);
          ("virtual time", Table.Right);
          ("ticks", Table.Right);
        ]
  in
  Table.add_row t
    [
      "off";
      Printf.sprintf "%.3fs" t_off;
      Time.to_string virt_off;
      Table.cell_int 0;
    ];
  Table.add_row t
    [
      "on (default config)";
      Printf.sprintf "%.3fs" t_on;
      Time.to_string virt_on;
      Table.cell_int ticks;
    ];
  Table.print t;
  note
    "health-plane overhead: %.1f%% host time (median of %d paired off/on \
     ratios) for %d sampler ticks (acceptance: < 5%%); virtual time is \
     identical by construction (the sampler observes, never schedules)."
    overhead repeats ticks;
  (* Part B. *)
  let cl, true_top10, reported, recovered = zipf_accuracy () in
  ignore cl;
  let total =
    List.fold_left (fun acc e -> acc + e.Eden_obs.Topk.e_count) 0 reported
  in
  ignore total;
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E21b Zipf(s=%.1f) stream: %d invocations over %d objects"
           zipf_s zipf_invocations zipf_objects)
      ~columns:
        [
          ("rank", Table.Right);
          ("true object", Table.Left);
          ("true count", Table.Right);
          ("sketch object", Table.Left);
          ("sketch count", Table.Right);
          ("err", Table.Right);
        ]
  in
  List.iteri
    (fun i ((tk, tc), e) ->
      Table.add_row t
        [
          Table.cell_int (i + 1);
          tk;
          Table.cell_int tc;
          e.Eden_obs.Topk.e_key;
          Table.cell_int e.Eden_obs.Topk.e_count;
          Table.cell_int e.Eden_obs.Topk.e_err;
        ])
    (List.combine true_top10 reported);
  Table.print t;
  let worst_err =
    List.fold_left (fun acc e -> max acc e.Eden_obs.Topk.e_err) 0 reported
  in
  note
    "top-k recovery: %d/10 of the true top 10 in the rollup (acceptance: \
     >= 9); worst error bound %d (space-saving guarantee: <= \
     total/capacity = %d)."
    recovered worst_err
    (zipf_invocations / 64)
