(* E23 — sharded locate directory: O(1) name resolution past
   broadcast scale.

   The broadcast locate delivers every first touch of a name to every
   other kernel: cost grows linearly with the cluster whether or not a
   node has anything to say.  The directory replaces that with one
   unicast to the name's registry shard (consistent hash over names)
   and one reply — constant per touch, however many nodes listen.

   The sweep holds the per-node workload fixed (each node cold-touches
   [targets] objects homed elsewhere, hint cache and forwarding off so
   every invocation re-resolves) and grows the cluster across bridged
   segments.  Reported per size and mode:

   - locate messages, under an explicit cost model: a broadcast locate
     is delivered to and processed by the other n-1 kernels, so its
     cost is broadcasts x (n-1); the directory's cost is one Dir_get +
     one reply per resolution (2 x (hits + misses)) plus every
     Dir_put publish and Dir_nack invalidation.  Counting loopback
     hits and publishes at full price overstates the directory side,
     so the model is conservative in broadcast's favour.
   - throughput: invocations per virtual second over the touch stream
     (broadcast storms also queue in the collision domain, so the
     message win shows up in elapsed time too).

   Acceptance (the smoke variant runs the 32-node size only):
   - the directory's locate messages per touch stay O(1) — bounded by
     a constant (4) at every size while broadcast's grow with n;
   - at >= 32 nodes across >= 2 segments the directory resolves names
     with >= 10x fewer locate messages than broadcast. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let smoke = ref false

(* (nodes, segments); per-node workload is fixed, so the broadcast
   cost per touch grows with the node count and the directory's does
   not. *)
let sizes = [ (8, 1); (16, 2); (32, 2); (64, 4) ]
let targets = 4

let options ~directory =
  {
    Cluster.default_options with
    Cluster.use_hint_cache = false;
    use_forwarding = false;
    use_directory = directory;
  }

let build ~n ~segs ~directory =
  let configs =
    List.init n (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i))
  in
  let segments = List.init segs (fun _ -> n / segs) in
  let cl =
    Cluster.create ~seed:23L ~options:(options ~directory) ~segments ~configs
      ()
  in
  Cluster.register_type cl bench_type;
  current_cluster := Some cl;
  cl

let sum_counter cl name =
  let snap = Cluster.metrics_snapshot cl in
  List.fold_left
    (fun acc i ->
      match
        Eden_obs.Snapshot.find snap
          ~labels:[ ("node", string_of_int i) ]
          name
      with
      | Some (Eden_obs.Metrics.Counter c) -> acc + c
      | _ -> acc)
    0
    (List.init (Cluster.node_count cl) Fun.id)

type run = {
  r_invokes : int;
  r_msgs : int;  (* locate messages under the cost model above *)
  r_rate : float;  (* invocations per virtual second *)
  r_fallbacks : int;
}

(* One object per node, then every node cold-touches the objects homed
   on the next [targets] nodes.  With the hint cache off each touch
   pays the full resolution price, so the stream isolates exactly the
   machinery under test. *)
let run_mode ~n ~segs ~directory =
  let cl = build ~n ~segs ~directory in
  let eng = Cluster.engine cl in
  let invokes = ref 0 in
  let elapsed =
    drive cl (fun () ->
        let caps =
          Array.init n (fun i ->
              must "create"
                (Cluster.create_object cl ~node:i ~type_name:"bench_obj"
                   (Value.Int i)))
        in
        Engine.delay (Time.ms 5);
        let t0 = Engine.now eng in
        for from = 0 to n - 1 do
          for k = 1 to targets do
            Engine.delay (Time.ms 1);
            ignore
              (must "ping"
                 (Cluster.invoke cl ~from ~timeout:(Time.s 1)
                    caps.((from + k) mod n)
                    ~op:"ping" []));
            incr invokes
          done
        done;
        Time.diff (Engine.now eng) t0)
  in
  let c = sum_counter cl in
  let msgs =
    if directory then
      (* One Dir_get + one reply per resolution, one Dir_nack per
         invalidation, plus one Dir_put per create (the only
         home-changing events in this sweep) — counted even when the
         shard is the publisher or requester itself and no message
         goes on the wire. *)
      (2 * (c "eden.dir.hits" + c "eden.dir.misses"))
      + c "eden.dir.nacks" + n
    else c "eden.locate_broadcasts" * (n - 1)
  in
  {
    r_invokes = !invokes;
    r_msgs = msgs;
    r_rate = float_of_int !invokes /. Time.to_sec elapsed;
    r_fallbacks = c "eden.dir.fallbacks";
  }

let run () =
  heading "E23" "sharded locate directory vs broadcast scaling";
  let sizes = if !smoke then [ (32, 2) ] else sizes in
  let t =
    Table.create ~title:"E23  locate cost and throughput, broadcast vs directory"
      ~columns:
        [
          ("nodes x segs", Table.Right);
          ("touches", Table.Right);
          ("bcast msgs", Table.Right);
          ("dir msgs", Table.Right);
          ("ratio", Table.Right);
          ("dir msgs/touch", Table.Right);
          ("bcast inv/s", Table.Right);
          ("dir inv/s", Table.Right);
        ]
  in
  let worst_per_touch = ref 0.0 in
  List.iter
    (fun (n, segs) ->
      let bcast = run_mode ~n ~segs ~directory:false in
      let dir = run_mode ~n ~segs ~directory:true in
      assert (bcast.r_invokes = dir.r_invokes);
      let ratio = float_of_int bcast.r_msgs /. float_of_int (max 1 dir.r_msgs) in
      let per_touch =
        float_of_int dir.r_msgs /. float_of_int dir.r_invokes
      in
      if per_touch > !worst_per_touch then worst_per_touch := per_touch;
      Table.add_row t
        [
          Printf.sprintf "%d x %d" n segs;
          string_of_int dir.r_invokes;
          string_of_int bcast.r_msgs;
          string_of_int dir.r_msgs;
          Printf.sprintf "%.1fx" ratio;
          Printf.sprintf "%.2f" per_touch;
          Printf.sprintf "%.0f" bcast.r_rate;
          Printf.sprintf "%.0f" dir.r_rate;
        ];
      (* O(1) hit path: the directory's cost per touch is bounded by a
         small constant at every size... *)
      assert (per_touch <= 4.0);
      (* ...while at broadcast scale the ratio clears 10x. *)
      if n >= 32 then assert (ratio >= 10.0);
      (* No faults in this sweep: the shard answers every touch, so
         nothing should have needed the broadcast fallback. *)
      assert (dir.r_fallbacks = 0))
    sizes;
  Table.print t;
  note "dir msgs/touch worst case %.2f (bound 4.0); acceptance holds"
    !worst_per_touch
