(* E20 — journal overhead on the invocation benchmark (E1's hot path).

   Trace contexts ride in every message envelope whether or not the
   journal retains events, and event ids are allocated either way, so
   the virtual-time behaviour of a run is identical with journaling on
   or off (asserted below).  What the journal costs is host time on
   the invocation path: the kind construction and describe strings
   are built either way, so the measured delta is the ring itself —
   the intern lookups and the encoded stores.  Run the same seeded
   invocation workload with the default journal capacity and with
   retention disabled ([~journal_cap:0]) and compare host CPU time.
   Acceptance: < 5% overhead with journaling on.

   Methodology: off/on runs are interleaved in pairs, each run starts
   from a compacted heap, and the reported overhead is the *median of
   the per-pair ratios* over [repeats] pairs.  On a shared machine
   absolute run times drift by tens of percent over seconds; a
   back-to-back pair sees (nearly) the same machine, so its ratio
   cancels the drift, and the median discards the pairs a load spike
   or major collection lands inside.  Comparing a median of off times
   against a median of on times does neither. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let nodes = 4
let iters = 48_000
let repeats = 7

(* A locality-free request stream: every node invokes a node-0 object
   in turn, so most invocations pay the full remote path (the one the
   journal instruments hardest: send, recv, reply, hint traffic). *)
let workload ~journal_cap =
  let cl = fresh_cluster ~journal_cap ~n:nodes () in
  let virt =
    drive cl (fun () ->
        let cap =
          must "create"
            (Cluster.create_object cl ~node:0 ~type_name:"bench_obj"
               Value.Unit)
        in
        let args = [ Value.Blob 256; Value.Int 10 ] in
        for i = 1 to iters do
          ignore
            (must "work"
               (Cluster.invoke cl ~from:(i mod nodes) cap ~op:"work" args))
        done;
        Engine.now (Cluster.engine cl))
  in
  (cl, virt)

(* One timed run: compact first so each measurement starts from the
   same heap shape (earlier runs' garbage would otherwise charge its
   collection to whoever runs later). *)
let timed_run ~journal_cap =
  Gc.compact ();
  let t0 = Sys.time () in
  let cl, virt = workload ~journal_cap in
  (cl, virt, Sys.time () -. t0)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let measure () =
  let offs = ref [] and ons = ref [] and ratios = ref [] in
  let last = ref None in
  for _ = 1 to repeats do
    let _, virt_off, e_off = timed_run ~journal_cap:0 in
    offs := e_off :: !offs;
    let cl, virt_on, e_on = timed_run ~journal_cap:4096 in
    ons := e_on :: !ons;
    ratios := (e_on /. e_off) :: !ratios;
    last := Some (cl, virt_off, virt_on)
  done;
  match !last with
  | Some (cl, virt_off, virt_on) ->
    (cl, virt_off, virt_on, median !offs, median !ons, median !ratios)
  | None -> assert false

let run () =
  heading "E20" "journal overhead on the invocation benchmark";
  let cl_on, virt_off, virt_on, t_off, t_on, ratio = measure () in
  if not (Time.equal virt_off virt_on) then
    note "WARNING: virtual end times differ (%s vs %s) — journaling leaked \
          into simulated behaviour"
      (Time.to_string virt_off) (Time.to_string virt_on);
  let events =
    List.fold_left
      (fun acc j -> acc + Eden_obs.Journal.recorded j)
      0 (Cluster.journals cl_on)
  in
  let overhead = 100.0 *. (ratio -. 1.0) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "E20  %d invocations across %d nodes (median of %d)"
           iters nodes repeats)
      ~columns:
        [
          ("journal", Table.Left);
          ("host time", Table.Right);
          ("virtual time", Table.Right);
          ("events", Table.Right);
        ]
  in
  Table.add_row t
    [
      "off";
      Printf.sprintf "%.3fs" t_off;
      Time.to_string virt_off;
      Table.cell_int 0;
    ];
  Table.add_row t
    [
      "on (cap 4096, default)";
      Printf.sprintf "%.3fs" t_on;
      Time.to_string virt_on;
      Table.cell_int events;
    ];
  Table.print t;
  note
    "journal overhead: %.1f%% host time (median of %d paired on/off \
     ratios) for %d recorded events (acceptance: < 5%%); virtual time \
     is identical by construction (the envelope cost is paid whether \
     or not the ring retains)."
    overhead repeats events
