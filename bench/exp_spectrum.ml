(* E9 — section 1: the integration/distribution spectrum.  The same
   user population served by (a) Eden with distributed placement,
   (b) Eden with every object on a central server, and (c) the
   location-dependent RPC baseline, across a sweep of workload
   locality.  This is the paper's thesis experiment: distribution wins
   when work is personal, the central machine wins nothing but
   simplicity, and Eden's transparency costs little over raw RPC. *)

open Eden_util
open Eden_workload
open Common

let nodes = 6

let spec locality =
  {
    Synthetic.default_spec with
    Synthetic.objects_per_node = 3;
    users_per_node = 2;
    requests_per_user = 30;
    locality;
    payload_bytes = 256;
    compute_per_request = Time.ms 5;
    think_mean_s = 0.01;
  }

let eden_distributed locality =
  let cl = fresh_cluster ~n:nodes () in
  Synthetic.run_eden cl (spec locality)

let eden_central locality =
  let cl =
    Eden_baseline.Central.cluster ~terminals:(nodes - 1) ()
  in
  (* Users live at the terminals; all objects on the server. *)
  Synthetic.run_eden
    ~placement:(Synthetic.Central_on Eden_baseline.Central.server_node)
    ~users_on:(List.init (nodes - 1) (fun i -> i + 1))
    cl (spec locality)

let rpc locality =
  let fabric = Eden_baseline.Rpc.default ~n_nodes:nodes () in
  Synthetic.run_rpc fabric (spec locality)

let run () =
  heading "E9" "integration vs distribution (sec. 1, the thesis experiment)";
  let t =
    Table.create
      ~title:
        "E9  mean request latency (ms) / throughput (req/s) by locality"
      ~columns:
        [
          ("locality", Table.Right);
          ("Eden distributed", Table.Right);
          ("Eden centralized", Table.Right);
          ("RPC (loc.-dependent)", Table.Right);
          ("transparency cost", Table.Right);
        ]
  in
  List.iter
    (fun locality ->
      let d = eden_distributed locality in
      let c = eden_central locality in
      let r = rpc locality in
      let cell (res : Synthetic.results) =
        Printf.sprintf "%.1fms / %.0f"
          (1e3 *. Stats.mean res.Synthetic.latency)
          res.Synthetic.throughput
      in
      let transparency =
        Stats.mean d.Synthetic.latency /. Stats.mean r.Synthetic.latency
      in
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (locality *. 100.0);
          cell d;
          cell c;
          cell r;
          Printf.sprintf "%.2fx" transparency;
        ])
    [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ];
  Table.print t;
  note
    "expected shape: distributed Eden improves steadily with locality \
     while the centralized configuration stays flat (every request \
     crosses the network and queues at the server); Eden tracks RPC \
     within a small transparency factor."
