(* E17 — fault injection: availability and recovery latency vs the
   reliability level, under the default single-node-crash plan (crash
   the hosting node, restart it with a store rebuild half a second
   later).  The paper's claim (sec. 4.4): checksites let an object
   trade checkpoint cost for survival — a Mirrored object should ride
   out the crash of any single checksite behind the requester's
   timeout-and-retry, while a Local object is simply gone until its
   host returns. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Common

let victim = 1
let objects = 3
let crash_at = Time.ms 500
let restart_at = Time.ms 1000
let requests = 200
let gap = Time.ms 10
let request_timeout = Time.ms 250

let default_plan =
  Eden_fault.Plan.make
    [
      { Eden_fault.Plan.at = crash_at; action = Eden_fault.Plan.Crash_node victim };
      {
        Eden_fault.Plan.at = restart_at;
        action =
          Eden_fault.Plan.Restart_node { node = victim; rebuild = true };
      };
    ]

type outcome = {
  attempts : int;
  completed : int;
  recovery : Time.t option;  (* crash -> first completed request after *)
}

let rel_arg = function
  | Reliability.Local -> Value.Int (-1)
  | Reliability.Remote n -> Value.Int n
  | Reliability.Mirrored sites ->
    Value.List (List.map (fun s -> Value.Int s) sites)

let run_point rel =
  let cl = fresh_cluster ~n:4 () in
  let eng = Cluster.engine cl in
  (* Setup, fault-free: durable objects on the victim. *)
  let caps =
    drive cl (fun () ->
        Array.init objects (fun _ ->
            let cap =
              must "create"
                (Cluster.create_object cl ~node:victim ~type_name:"bench_obj"
                   Value.Unit)
            in
            ignore
              (must "set_rel"
                 (Cluster.invoke cl ~from:victim cap ~op:"set_rel"
                    [ rel_arg rel ]));
            ignore
              (must "save"
                 (Cluster.invoke cl ~from:victim cap ~op:"save" []));
            cap))
  in
  let armed_at = Engine.now eng in
  let t_crash = Time.add armed_at crash_at in
  let _ctl = Eden_fault.Controller.arm cl default_plan in
  let attempts = ref 0 and completed = ref 0 in
  let recovery = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        for r = 0 to requests - 1 do
          Engine.delay gap;
          incr attempts;
          match
            Cluster.invoke cl ~from:0 ~timeout:request_timeout
              ~retry:Api.default_retry
              caps.(r mod objects)
              ~op:"ping" []
          with
          | Ok _ ->
            incr completed;
            if !recovery = None && Time.(Engine.now eng > t_crash) then
              recovery := Some (Time.diff (Engine.now eng) t_crash)
          | Error _ -> ()
        done)
  in
  Cluster.run cl;
  { attempts = !attempts; completed = !completed; recovery = !recovery }

let run () =
  heading "E17" "availability under fault injection (checksites, sec. 4.4)";
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E17  ping stream vs one host crash (down %s, timeout %s, 3 \
            retries)"
           (Time.to_string (Time.diff restart_at crash_at))
           (Time.to_string request_timeout))
      ~columns:
        [
          ("reliability", Table.Left);
          ("attempts", Table.Right);
          ("completed", Table.Right);
          ("availability", Table.Right);
          ("recovery", Table.Right);
        ]
  in
  List.iter
    (fun (label, rel) ->
      let r = run_point rel in
      Table.add_row t
        [
          label;
          Table.cell_int r.attempts;
          Table.cell_int r.completed;
          Table.cell_pct
            (Float.of_int r.completed /. Float.of_int (max 1 r.attempts));
          (match r.recovery with
          | Some d -> Time.to_string d
          | None -> "never");
        ])
    [
      ("Local (victim disk)", Reliability.Local);
      ("Remote 2", Reliability.Remote 2);
      ("Mirrored [1;2]", Reliability.Mirrored [ victim; 2 ]);
    ];
  Table.print t;
  note
    "expected shape: Remote and Mirrored objects reincarnate at the \
     surviving checksite behind one timeout-and-retry, so they stay \
     >= 99%% available and recover in about one request timeout; a \
     Local object's only checkpoint is on the downed disk, so its \
     recovery waits for the restart itself and only the retry budget \
     (which happens to span the outage) keeps its completion rate up."
