(* Third kernel test wave: forwarding chains, stale knowledge after
   destruction, degraded mirrors, rights of capabilities passed as
   parameters, and remote creation against dead nodes. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

let expect_error label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" label (Error.to_string expected)
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: got %s" label (Error.to_string e))
      true
      (Error.equal e expected)

let counter_type =
  Typemgr.make_exn ~name:"counter3"
    [
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "slow_incr" (fun ctx args ->
          let* () = no_args args in
          Engine.delay (Time.ms 20);
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "poke_other" (fun ctx args ->
          (* Invoke "incr" on a capability received as a parameter,
             exactly as presented: rights travel with the capability. *)
          let* v = arg1 args in
          let* target = cap_arg v in
          let* r = ctx.invoke target ~op:"incr" [] in
          reply r);
      Typemgr.operation "read_other" ~mutates:false (fun ctx args ->
          let* v = arg1 args in
          let* target = cap_arg v in
          let* r = ctx.invoke target ~op:"get" [] in
          reply r);
      Typemgr.operation "set_rel_mirror" (fun ctx args ->
          let* v = arg1 args in
          let* l =
            Value.to_list v
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let sites =
            List.filter_map (fun x -> Result.to_option (Value.to_int x)) l
          in
          let* () = ctx.set_reliability (Reliability.Mirrored sites) in
          reply_unit);
      Typemgr.operation "checkpoint" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint () in
          reply_unit);
    ]

let with_cluster ?seed ?(n = 4) body =
  let cl = Cluster.default ?seed ~n_nodes:n () in
  Cluster.register_type cl counter_type;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver did not complete"

let new_counter cl ~node init =
  ok_or_fail "create"
    (Cluster.create_object cl ~node ~type_name:"counter3" (Value.Int init))

(* ------------------------------------------------------------------ *)

let test_forwarding_chain_of_moves () =
  (* Object moves 0 -> 1 -> 2; a caller whose hint still points at node
     0 is forwarded along the chain, and its hint is repaired. *)
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      (* Node 3 learns the object is at node 0. *)
      ignore (ok_or_fail "warm" (Cluster.invoke cl ~from:3 cap ~op:"get" []));
      ignore (ok_or_fail "move1" (Cluster.move cl cap ~to_node:1));
      ignore (ok_or_fail "move2" (Cluster.move cl cap ~to_node:2));
      check_bool "at node 2" true (Cluster.where_is cl cap = Some 2);
      (* Stale hint at node 3 -> node 0 forward -> node 1 forward -> 2. *)
      check_int "reached through the chain" 1
        (match Cluster.invoke cl ~from:3 cap ~op:"incr" [] with
        | Ok [ Value.Int n ] -> n
        | Ok _ | Error _ -> -1);
      (* Second call must be direct (hint repaired): compare times. *)
      let eng = Cluster.engine cl in
      let t0 = Engine.now eng in
      ignore (ok_or_fail "direct" (Cluster.invoke cl ~from:3 cap ~op:"get" []));
      let direct = Time.to_ns (Time.diff (Engine.now eng) t0) in
      check_bool "repaired to one hop" true (direct < 3_000_000))

let test_move_ping_pong () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      for _ = 1 to 3 do
        ignore (ok_or_fail "there" (Cluster.move cl cap ~to_node:1));
        ignore (ok_or_fail "back" (Cluster.move cl cap ~to_node:0))
      done;
      check_bool "home again" true (Cluster.where_is cl cap = Some 0);
      (* Forward pointers formed loops 0->1->0; hop caps and fresh
         pointers must still deliver. *)
      check_int "still serving" 1
        (match Cluster.invoke cl ~from:2 cap ~op:"incr" [] with
        | Ok [ Value.Int n ] -> n
        | Ok _ | Error _ -> -1))

let test_stale_hint_after_destroy () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore (ok_or_fail "warm" (Cluster.invoke cl ~from:1 cap ~op:"get" []));
      ignore (ok_or_fail "destroy" (Cluster.destroy cl cap));
      Engine.delay (Time.ms 5);
      (* Node 1's hint is gone (purged by the notice), and even if it
         weren't, the request must end in No_such_object, not hang. *)
      expect_error "gone" Error.No_such_object
        (Cluster.invoke cl ~from:1 cap ~op:"get" []))

let test_mirror_survives_dead_sibling () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      ignore
        (ok_or_fail "mirror"
           (Cluster.invoke cl ~from:0 cap ~op:"set_rel_mirror"
              [ Value.List [ Value.Int 1; Value.Int 2 ] ]));
      ignore (ok_or_fail "incr" (Cluster.invoke cl ~from:0 cap ~op:"incr" []));
      (* One mirror dies before the checkpoint: the checkpoint reports
         the failure but the surviving site still gets the snapshot. *)
      Cluster.crash_node cl 1;
      expect_error "degraded checkpoint" Error.Node_down
        (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []);
      check_bool "surviving mirror holds it" true
        (List.mem 2 (Cluster.checkpoint_sites cl cap));
      (* Recovery through the survivor works. *)
      Cluster.crash_node cl 0;
      check_int "recovered value" 1
        (match Cluster.invoke cl ~from:3 cap ~op:"get" [] with
        | Ok [ Value.Int n ] -> n
        | Ok _ | Error _ -> -1);
      check_bool "reincarnated at survivor" true
        (Cluster.where_is cl cap = Some 2))

let test_transferred_capability_keeps_own_rights () =
  (* An object invoking through a capability it RECEIVED uses that
     capability's rights, not its own standing. *)
  with_cluster (fun cl ->
      let target = new_counter cl ~node:1 0 in
      let relay = new_counter cl ~node:2 0 in
      (* Full-rights parameter: the relay can increment the target. *)
      (match
         Cluster.invoke cl ~from:0 relay ~op:"poke_other"
           [ Value.Cap target ]
       with
      | Ok [ Value.Int 1 ] -> ()
      | Ok _ | Error _ -> Alcotest.fail "full-rights poke failed");
      (* A read-only parameter: mutation through it must be refused,
         even though the SAME relay object just succeeded with a
         stronger capability for the SAME target. *)
      let read_only =
        Capability.restrict target (Rights.of_list [ Rights.Invoke ])
      in
      (* "incr" requires only Invoke; restrict further to nothing. *)
      let no_rights = Capability.restrict target Rights.none in
      expect_error "no-rights parameter refused"
        (Error.Rights_violation "incr")
        (Cluster.invoke cl ~from:0 relay ~op:"poke_other"
           [ Value.Cap no_rights ]);
      (match
         Cluster.invoke cl ~from:0 relay ~op:"read_other"
           [ Value.Cap read_only ]
       with
      | Ok [ Value.Int 1 ] -> ()
      | Ok _ | Error _ -> Alcotest.fail "read-only parameter should read"))

let test_failed_move_readmits_stashed_requests () =
  (* A move to a full node fails; a request that arrived during the
     drain must still be answered afterwards (regression: stashed work
     was dropped on the failure paths). *)
  let tiny =
    {
      (Eden_hw.Machine.default_config ~name:"tiny") with
      Eden_hw.Machine.memory_bytes = 2_000;
    }
  in
  let configs =
    [
      Eden_hw.Machine.default_config ~name:"n0";
      Eden_hw.Machine.default_config ~name:"n1";
      tiny;
    ]
  in
  let cl = Cluster.create ~configs () in
  Cluster.register_type cl counter_type;
  let slow_holder = ref None and during = ref None and move_r = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let cap = new_counter cl ~node:0 0 in
        (* Hold the object busy so the move has to drain. *)
        slow_holder :=
          Some (Cluster.invoke_async cl ~from:1 cap ~op:"slow_incr" []);
        Engine.delay (Time.ms 5);
        ignore
          (Cluster.in_process cl (fun () ->
               move_r := Some (Cluster.move cl cap ~to_node:2)));
        Engine.delay (Time.ms 1);
        (* This arrives while the object drains for the doomed move. *)
        during := Some (Cluster.invoke_async cl ~from:1 cap ~op:"incr" []))
  in
  Cluster.run cl;
  (match !move_r with
  | Some (Error Error.Out_of_memory) -> ()
  | Some (Ok ()) -> Alcotest.fail "move to a full node succeeded"
  | Some (Error e) -> Alcotest.failf "move: %s" (Error.to_string e)
  | None -> Alcotest.fail "move never resolved");
  (match !during with
  | Some p -> (
    match Eden_sim.Promise.peek p with
    | Some (Ok [ Value.Int 2 ]) -> ()
    | Some (Ok _) -> Alcotest.fail "wrong stashed result"
    | Some (Error e) ->
      Alcotest.failf "stashed request failed: %s" (Error.to_string e)
    | None -> Alcotest.fail "stashed request never answered")
  | None -> Alcotest.fail "no stashed request");
  ignore !slow_holder

let test_remote_create_on_dead_node () =
  let spawner =
    Typemgr.make_exn ~name:"spawner3"
      [
        Typemgr.operation "spawn_at" (fun ctx args ->
            let* v = arg1 args in
            let* node = int_arg v in
            match ctx.create_object ~type_name:"counter3" ~node (Value.Int 0) with
            | Ok cap -> reply [ Value.Cap cap ]
            | Error e -> fail e);
      ]
  in
  let cl = Cluster.default ~n_nodes:3 () in
  Cluster.register_type cl counter_type;
  Cluster.register_type cl spawner;
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let sp =
          ok_or_fail "create spawner"
            (Cluster.create_object cl ~node:0 ~type_name:"spawner3" Value.Unit)
        in
        Cluster.crash_node cl 2;
        outcome :=
          Some (Cluster.invoke cl ~from:0 sp ~op:"spawn_at" [ Value.Int 2 ]))
  in
  Cluster.run cl;
  match !outcome with
  | Some (Error Error.Node_down) -> ()
  | Some (Ok _) -> Alcotest.fail "created an object on a dead node"
  | Some (Error e) -> Alcotest.failf "unexpected: %s" (Error.to_string e)
  | None -> Alcotest.fail "driver did not run"

let test_freeze_then_move_keeps_replicas_valid () =
  (* Replicas are immutable snapshots of a frozen object; moving the
     primary afterwards must not disturb them. *)
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 5 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      ignore (ok_or_fail "replicate" (Cluster.replicate cl cap ~to_node:3));
      ignore (ok_or_fail "move" (Cluster.move cl cap ~to_node:1));
      check_bool "primary moved" true (Cluster.where_is cl cap = Some 1);
      Alcotest.(check (list int)) "replica still at 3" [ 3 ]
        (Cluster.replica_sites cl cap);
      let before = Cluster.stats_remote_invocations cl in
      check_int "replica serves locally" 5
        (match Cluster.invoke cl ~from:3 cap ~op:"get" [] with
        | Ok [ Value.Int n ] -> n
        | Ok _ | Error _ -> -1);
      check_int "without network" before (Cluster.stats_remote_invocations cl))

(* ------------------------------------------------------------------ *)
(* Multi-segment clusters (paper Fig. 1: other networks via a gateway) *)

let two_segment_cluster () =
  let configs =
    List.init 4 (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i))
  in
  let cl = Cluster.create ~segments:[ 2; 2 ] ~configs () in
  Cluster.register_type cl counter_type;
  cl

let test_cross_segment_invocation () =
  let cl = two_segment_cluster () in
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        check_int "node 1 on segment 0" 0 (Cluster.node_segment cl 1);
        check_int "node 2 on segment 1" 1 (Cluster.node_segment cl 2);
        let cap = new_counter cl ~node:0 0 in
        (* The locate broadcast must cross the bridge to find nothing
           beyond, and the invocation from segment 1 must reach segment
           0 transparently. *)
        outcome := Some (Cluster.invoke cl ~from:2 cap ~op:"incr" []))
  in
  Cluster.run cl;
  check_bool "cross-segment invoke" true (!outcome = Some (Ok [ Value.Int 1 ]));
  check_bool "bridge was used" true
    (Transport.bridge_forwards (Cluster.network cl) > 0)

let test_cross_segment_slower_than_intra () =
  let cl = two_segment_cluster () in
  let intra = ref Time.zero and cross = ref Time.zero in
  let _ =
    Cluster.in_process cl (fun () ->
        let eng = Cluster.engine cl in
        let cap = new_counter cl ~node:0 0 in
        let timed_from from =
          (* warm first *)
          ignore (ok_or_fail "warm" (Cluster.invoke cl ~from cap ~op:"get" []));
          let t0 = Engine.now eng in
          ignore (ok_or_fail "get" (Cluster.invoke cl ~from cap ~op:"get" []));
          Time.diff (Engine.now eng) t0
        in
        intra := timed_from 1;
        cross := timed_from 3)
  in
  Cluster.run cl;
  check_bool "bridge hop costs" true Time.(!cross > !intra);
  (* Two bridged hops (request + reply) at 500us each. *)
  check_bool "about a millisecond more" true
    (Time.to_ns !cross - Time.to_ns !intra > 900_000)

let test_cross_segment_move () =
  let cl = two_segment_cluster () in
  let _ =
    Cluster.in_process cl (fun () ->
        let cap = new_counter cl ~node:0 7 in
        ignore (ok_or_fail "move across" (Cluster.move cl cap ~to_node:3));
        check_bool "lives on segment 1" true
          (Cluster.where_is cl cap = Some 3);
        (* Forwarded invocation from the old segment still lands. *)
        check_int "state travelled" 7
          (match Cluster.invoke cl ~from:1 cap ~op:"get" [] with
          | Ok [ Value.Int n ] -> n
          | Ok _ | Error _ -> -1))
  in
  Cluster.run cl

let test_segment_validation () =
  let configs =
    List.init 3 (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "n%d" i))
  in
  Alcotest.check_raises "wrong sum"
    (Invalid_argument "Cluster.create: segment sizes must sum to node count")
    (fun () -> ignore (Cluster.create ~segments:[ 2; 2 ] ~configs ()));
  Alcotest.check_raises "empty segment"
    (Invalid_argument "Cluster.create: segment sizes must be positive")
    (fun () -> ignore (Cluster.create ~segments:[ 3; 0 ] ~configs ()))

(* ------------------------------------------------------------------ *)
(* Lifecycle fuzz: random interleavings of every kernel primitive.
   The point is not the outcomes (most are allowed to fail) but the
   invariants: no internal assertion, no Fatal, no deadlock, and every
   surviving object still answers coherently afterwards. *)

let legitimate = function
  | Ok _ -> true
  | Error
      ( Error.No_such_object | Error.Timeout | Error.Object_crashed
      | Error.Node_down | Error.Out_of_memory | Error.Frozen_immutable
      | Error.Rights_violation _ | Error.Move_refused _ | Error.Disk_failed )
    ->
    true
  | Error (Error.No_such_operation _ | Error.Bad_arguments _ | Error.User_error _)
    ->
    false

let prop_cluster_lifecycle_fuzz =
  QCheck.Test.make ~name:"random kernel lifecycle soup stays coherent"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let cl = Cluster.default ~seed:(Int64.of_int (seed + 13)) ~n_nodes:4 () in
      Cluster.register_type cl counter_type;
      let rng = Splitmix.create (Int64.of_int seed) in
      let caps = ref [||] in
      let bad = ref 0 in
      let record r = if not (legitimate r) then incr bad in
      let actor () =
        for _ = 1 to 30 do
          Engine.delay (Time.ms (1 + Splitmix.int rng 20));
          let arr = !caps in
          if Array.length arr > 0 then begin
            let cap = arr.(Splitmix.int rng (Array.length arr)) in
            match Splitmix.int rng 8 with
            | 0 | 1 | 2 ->
              record
                (Cluster.invoke cl ~from:0 ~timeout:(Time.s 1) cap ~op:"incr"
                   [])
            | 3 ->
              record
                (Result.map (fun () -> [])
                   (Cluster.checkpoint_of cl cap))
            | 4 ->
              record
                (Result.map
                   (fun () -> [])
                   (Cluster.move cl cap
                      ~to_node:(Splitmix.int rng 4)))
            | 5 ->
              record (Result.map (fun () -> []) (Cluster.freeze cl cap));
              record
                (Result.map
                   (fun () -> [])
                   (Cluster.replicate cl cap
                      ~to_node:(Splitmix.int rng 4)))
            | 6 ->
              record
                (Cluster.invoke cl ~from:0 ~timeout:(Time.s 1) cap
                   ~op:"checkpoint" []);
              record
                (Cluster.invoke cl ~from:0 ~timeout:(Time.s 1) cap ~op:"get"
                   [])
            | _ -> record (Result.map (fun () -> []) (Cluster.destroy cl cap))
          end
        done
      in
      let chaos () =
        for _ = 1 to 6 do
          Engine.delay (Time.ms (10 + Splitmix.int rng 60));
          (* Node 0 hosts the actors' viewpoint; never kill it. *)
          let victim = 1 + Splitmix.int rng 3 in
          Cluster.crash_node cl victim;
          Engine.delay (Time.ms (5 + Splitmix.int rng 40));
          Cluster.restart_node cl victim
        done
      in
      let _ =
        Cluster.in_process cl (fun () ->
            caps :=
              Array.init 6 (fun i ->
                  match
                    Cluster.create_object cl ~node:(i mod 4)
                      ~type_name:"counter3" (Value.Int 0)
                  with
                  | Ok c -> c
                  | Error e -> failwith (Error.to_string e));
            ignore (Cluster.in_process cl actor);
            ignore (Cluster.in_process cl actor);
            ignore (Cluster.in_process cl chaos))
      in
      (match Cluster.run cl with
      | () -> ()
      | exception Engine.Stalled_waiting -> incr bad);
      (* Every capability still resolves to a coherent outcome. *)
      let _ =
        Cluster.in_process cl (fun () ->
            Array.iter
              (fun cap ->
                record
                  (Cluster.invoke cl ~from:0 ~timeout:(Time.s 2) cap ~op:"get"
                     []))
              !caps)
      in
      (match Cluster.run cl with
      | () -> ()
      | exception Engine.Stalled_waiting -> incr bad);
      !bad = 0)

let () =
  Alcotest.run "eden_kernel3"
    [
      ( "location",
        [
          Alcotest.test_case "forwarding chain" `Quick
            test_forwarding_chain_of_moves;
          Alcotest.test_case "move ping-pong" `Quick test_move_ping_pong;
          Alcotest.test_case "stale hint after destroy" `Quick
            test_stale_hint_after_destroy;
          Alcotest.test_case "failed move re-admits stash" `Quick
            test_failed_move_readmits_stashed_requests;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "degraded mirror" `Quick
            test_mirror_survives_dead_sibling;
          Alcotest.test_case "remote create on dead node" `Quick
            test_remote_create_on_dead_node;
        ] );
      ( "capabilities",
        [
          Alcotest.test_case "transferred rights" `Quick
            test_transferred_capability_keeps_own_rights;
        ] );
      ( "replication",
        [
          Alcotest.test_case "freeze, replicate, move" `Quick
            test_freeze_then_move_keeps_replicas_valid;
        ] );
      ( "segments",
        [
          Alcotest.test_case "cross-segment invocation" `Quick
            test_cross_segment_invocation;
          Alcotest.test_case "bridge latency visible" `Quick
            test_cross_segment_slower_than_intra;
          Alcotest.test_case "cross-segment move" `Quick
            test_cross_segment_move;
          Alcotest.test_case "validation" `Quick test_segment_validation;
        ] );
      ( "fuzz",
        [ QCheck_alcotest.to_alcotest prop_cluster_lifecycle_fuzz ] );
    ]
