(* Tests for the discrete-event engine and its synchronisation
   primitives.  These pin down the semantics the Eden kernel relies on:
   deterministic ordering, hand-off wakeups, timeouts, kills. *)

open Eden_util
open Eden_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let t_ns n = Time.ns n
let t_ms n = Time.ms n

(* ------------------------------------------------------------------ *)
(* Engine basics *)

let test_clock_advances () =
  let eng = Engine.create () in
  let seen = ref [] in
  let _ =
    Engine.spawn eng (fun () ->
        Engine.delay (t_ms 5);
        seen := Time.to_ns (Engine.now eng) :: !seen;
        Engine.delay (t_ms 5);
        seen := Time.to_ns (Engine.now eng) :: !seen)
  in
  Engine.run eng;
  Alcotest.(check (list int))
    "times" [ 10_000_000; 5_000_000 ] !seen

let test_same_time_fifo () =
  (* Events scheduled for the same instant run in schedule order. *)
  let eng = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    Engine.schedule eng ~after:(t_ms 1) (fun () -> order := i :: !order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_interleaving_deterministic () =
  let run_once () =
    let eng = Engine.create ~seed:9L () in
    let log = Buffer.create 64 in
    let worker tag gap =
      ignore
        (Engine.spawn eng ~name:tag (fun () ->
             for _ = 1 to 3 do
               Engine.delay gap;
               Buffer.add_string log tag
             done))
    in
    worker "a" (t_ms 2);
    worker "b" (t_ms 3);
    Engine.run eng;
    Buffer.contents log
  in
  (* a ticks at 2,4,6 ms; b at 3,6,9 ms.  At t=6ms b's resume event was
     scheduled earlier (at t=3ms) than a's (at t=4ms), so b runs first. *)
  Alcotest.(check string) "deterministic" (run_once ()) (run_once ());
  Alcotest.(check string) "expected interleaving" "ababab" (run_once ())

let test_run_until_truncates () =
  let eng = Engine.create () in
  let count = ref 0 in
  let _ =
    Engine.spawn eng (fun () ->
        for _ = 1 to 100 do
          Engine.delay (t_ms 1);
          incr count
        done)
  in
  Engine.run ~until:(t_ms 10) eng;
  check_int "only 10 ticks" 10 !count;
  check_int "clock at limit" 10_000_000 (Time.to_ns (Engine.now eng));
  (* Resuming the run finishes the remaining work. *)
  Engine.run eng;
  check_int "completed" 100 !count

let test_spawn_at () =
  let eng = Engine.create () in
  let fired = ref Time.zero in
  let _ =
    Engine.spawn eng ~at:(t_ms 7) (fun () -> fired := Engine.now eng)
  in
  Engine.run eng;
  check_int "starts at 7ms" 7_000_000 (Time.to_ns !fired)

let test_yield_interleaves () =
  let eng = Engine.create () in
  let order = ref [] in
  let mk tag =
    ignore
      (Engine.spawn eng (fun () ->
           order := (tag ^ "1") :: !order;
           Engine.yield ();
           order := (tag ^ "2") :: !order))
  in
  mk "a";
  mk "b";
  Engine.run eng;
  Alcotest.(check (list string))
    "yield alternates" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !order)

let test_run_reentrancy_guarded () =
  let eng = Engine.create () in
  let caught = ref false in
  let _ =
    Engine.spawn eng (fun () ->
        match Engine.run eng with
        | () -> ()
        | exception Invalid_argument _ -> caught := true)
  in
  Engine.run eng;
  check_bool "nested run rejected" true !caught

let test_outside_process_errors () =
  Alcotest.check_raises "delay outside"
    (Invalid_argument "Engine.delay: called outside a process") (fun () ->
      Engine.delay (t_ms 1));
  Alcotest.check_raises "self outside"
    (Invalid_argument "Engine.self: called outside a process") (fun () ->
      ignore (Engine.self ()))

let test_self_and_alive () =
  let eng = Engine.create () in
  let inner = ref None in
  let pid =
    Engine.spawn eng ~name:"me" (fun () ->
        inner := Some (Engine.self ());
        Engine.delay (t_ms 1))
  in
  check_bool "alive before run" true (Engine.alive eng pid);
  Engine.run eng;
  (match !inner with
  | Some p -> check_bool "self is pid" true (Engine.Pid.equal p pid)
  | None -> Alcotest.fail "body did not run");
  check_bool "dead after" false (Engine.alive eng pid)

(* ------------------------------------------------------------------ *)
(* Kill *)

let test_kill_blocked_runs_finalisers () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let cleaned = ref false in
  let victim =
    Engine.spawn eng (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> ignore (Condition.await cond)))
  in
  Engine.schedule eng ~after:(t_ms 1) (fun () -> Engine.kill eng victim);
  Engine.run eng;
  check_bool "finaliser ran" true !cleaned;
  check_bool "dead" false (Engine.alive eng victim)

let test_kill_before_start () =
  let eng = Engine.create () in
  let ran = ref false in
  let victim = Engine.spawn eng ~at:(t_ms 5) (fun () -> ran := true) in
  Engine.schedule eng (fun () -> Engine.kill eng victim);
  Engine.run eng;
  check_bool "never ran" false !ran

let test_self_kill () =
  let eng = Engine.create () in
  let after = ref false in
  let reached_protect = ref false in
  let _ =
    Engine.spawn eng (fun () ->
        Fun.protect
          ~finally:(fun () -> reached_protect := true)
          (fun () ->
            Engine.kill eng (Engine.self ());
            after := true))
  in
  Engine.run eng;
  check_bool "code after self-kill skipped" false !after;
  check_bool "finaliser ran" true !reached_protect

let test_kill_idempotent () =
  let eng = Engine.create () in
  let victim = Engine.spawn eng (fun () -> Engine.delay (t_ms 10)) in
  Engine.schedule eng ~after:(t_ms 1) (fun () ->
      Engine.kill eng victim;
      Engine.kill eng victim);
  Engine.run eng;
  check_bool "dead" false (Engine.alive eng victim)

let test_kill_then_wake_is_noop () =
  (* A process killed while blocked must not be resumed by a later
     signal on the same condition. *)
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let resumed = ref false in
  let victim =
    Engine.spawn eng (fun () ->
        ignore (Condition.await cond);
        resumed := true)
  in
  Engine.schedule eng ~after:(t_ms 1) (fun () ->
      Engine.kill eng victim;
      Condition.signal cond);
  Engine.run eng;
  check_bool "not resumed" false !resumed

(* ------------------------------------------------------------------ *)
(* Deadlock detection and daemons *)

let test_stall_detected () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let stalled = ref false in
  let _ =
    Engine.spawn eng (fun () ->
        match Condition.await cond with
        | exception Engine.Stalled_waiting -> stalled := true
        | _ -> ())
  in
  Engine.run eng;
  check_bool "stall reported" true !stalled

let test_stall_raises_when_uncaught () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let _ = Engine.spawn eng (fun () -> ignore (Condition.await cond)) in
  check_bool "raises" true
    (match Engine.run eng with
    | () -> false
    | exception Engine.Stalled_waiting -> true)

let test_daemon_not_stalled () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let woken = ref false in
  let pid =
    Engine.spawn eng (fun () ->
        ignore (Condition.await cond);
        woken := true)
  in
  Engine.set_daemon eng pid;
  Engine.run eng;
  check_bool "daemon survives idle" true (Engine.alive eng pid);
  (* A later run can still wake it. *)
  Engine.schedule eng (fun () -> Condition.signal cond);
  Engine.run eng;
  check_bool "daemon resumed" true !woken

(* ------------------------------------------------------------------ *)
(* Condition *)

let test_condition_signal_wakes_one () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let woken = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Engine.spawn eng (fun () ->
           ignore (Condition.await cond);
           incr woken))
  done;
  Engine.schedule eng ~after:(t_ms 1) (fun () ->
      check_int "three waiting" 3 (Condition.waiters cond);
      Condition.signal cond);
  Engine.schedule eng ~after:(t_ms 2) (fun () -> Condition.broadcast cond);
  Engine.run eng;
  check_int "all eventually woken" 3 !woken

let test_condition_signal_order () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let order = ref [] in
  let waiter tag at =
    ignore
      (Engine.spawn eng ~at (fun () ->
           ignore (Condition.await cond);
           order := tag :: !order))
  in
  waiter "first" (t_ns 1);
  waiter "second" (t_ns 2);
  Engine.schedule eng ~after:(t_ms 1) (fun () -> Condition.signal cond);
  Engine.schedule eng ~after:(t_ms 2) (fun () -> Condition.signal cond);
  Engine.run eng;
  Alcotest.(check (list string))
    "fifo wake order" [ "first"; "second" ] (List.rev !order)

let test_condition_timeout () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let result = ref None in
  let _ =
    Engine.spawn eng (fun () ->
        result := Some (Condition.await ~timeout:(t_ms 5) cond))
  in
  Engine.run eng;
  (match !result with
  | Some Engine.Timed_out -> ()
  | Some Engine.Woken -> Alcotest.fail "woken without signal"
  | None -> Alcotest.fail "did not resume");
  check_int "resumed at timeout" 5_000_000 (Time.to_ns (Engine.now eng))

let test_condition_signal_beats_timeout () =
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let result = ref None in
  let _ =
    Engine.spawn eng (fun () ->
        result := Some (Condition.await ~timeout:(t_ms 5) cond))
  in
  Engine.schedule eng ~after:(t_ms 2) (fun () -> Condition.signal cond);
  Engine.run eng;
  (match !result with
  | Some Engine.Woken -> ()
  | Some Engine.Timed_out -> Alcotest.fail "timed out despite signal"
  | None -> Alcotest.fail "did not resume")

let test_condition_timeout_entry_skipped () =
  (* After a waiter times out, a later signal must pass to the next
     live waiter, not be absorbed by the stale queue entry. *)
  let eng = Engine.create () in
  let cond = Condition.create eng in
  let first = ref None and second = ref None in
  let _ =
    Engine.spawn eng (fun () ->
        first := Some (Condition.await ~timeout:(t_ms 1) cond))
  in
  let _ =
    Engine.spawn eng ~at:(t_ns 10) (fun () ->
        second := Some (Condition.await cond))
  in
  Engine.schedule eng ~after:(t_ms 3) (fun () -> Condition.signal cond);
  Engine.run eng;
  check_bool "first timed out" true (!first = Some Engine.Timed_out);
  check_bool "second woken" true (!second = Some Engine.Woken)

(* ------------------------------------------------------------------ *)
(* Semaphore *)

let test_semaphore_mutex () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng ~init:1 in
  let inside = ref 0 and max_inside = ref 0 and done_count = ref 0 in
  for _ = 1 to 5 do
    ignore
      (Engine.spawn eng (fun () ->
           ignore (Semaphore.acquire sem);
           incr inside;
           max_inside := Stdlib.max !max_inside !inside;
           Engine.delay (t_ms 1);
           decr inside;
           Semaphore.release sem;
           incr done_count))
  done;
  Engine.run eng;
  check_int "mutual exclusion" 1 !max_inside;
  check_int "all completed" 5 !done_count;
  check_int "serialised makespan" 5_000_000 (Time.to_ns (Engine.now eng))

let test_semaphore_counting () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng ~init:3 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 9 do
    ignore
      (Engine.spawn eng (fun () ->
           ignore (Semaphore.acquire sem);
           incr inside;
           max_inside := Stdlib.max !max_inside !inside;
           Engine.delay (t_ms 1);
           decr inside;
           Semaphore.release sem))
  done;
  Engine.run eng;
  check_int "three at a time" 3 !max_inside;
  check_int "makespan 3ms" 3_000_000 (Time.to_ns (Engine.now eng))

let test_semaphore_timeout () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng ~init:0 in
  let got = ref None in
  let _ =
    Engine.spawn eng (fun () ->
        got := Some (Semaphore.acquire ~timeout:(t_ms 2) sem))
  in
  Engine.run eng;
  check_bool "timed out" true (!got = Some false);
  check_int "no permit lost" 0 (Semaphore.permits sem)

let test_semaphore_handoff_no_steal () =
  (* A release while a process waits hands the permit over even if
     another process tries to acquire at the same instant. *)
  let eng = Engine.create () in
  let sem = Semaphore.create eng ~init:0 in
  let waiter_got = ref false and thief_got = ref None in
  let _ =
    Engine.spawn eng (fun () ->
        ignore (Semaphore.acquire sem);
        waiter_got := true)
  in
  Engine.schedule eng ~after:(t_ms 1) (fun () ->
      Semaphore.release sem;
      (* Same instant: the permit is already committed to the waiter. *)
      thief_got := Some (Semaphore.try_acquire sem));
  Engine.run eng;
  check_bool "waiter got permit" true !waiter_got;
  check_bool "thief refused" true (!thief_got = Some false)

let test_semaphore_try_acquire () =
  let eng = Engine.create () in
  let sem = Semaphore.create eng ~init:1 in
  check_bool "first" true (Semaphore.try_acquire sem);
  check_bool "second refused" false (Semaphore.try_acquire sem);
  Semaphore.release sem;
  check_int "back to one" 1 (Semaphore.permits sem)

let test_semaphore_invalid () =
  let eng = Engine.create () in
  Alcotest.check_raises "negative init"
    (Invalid_argument "Semaphore.create: negative init") (fun () ->
      ignore (Semaphore.create eng ~init:(-1)))

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_buffered () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let received = ref [] in
  let _ =
    Engine.spawn eng (fun () ->
        check_bool "send 1" true (Mailbox.send mb 1);
        check_bool "send 2" true (Mailbox.send mb 2);
        Engine.delay (t_ms 1);
        check_bool "send 3" true (Mailbox.send mb 3))
  in
  let _ =
    Engine.spawn eng ~at:(t_ns 10) (fun () ->
        for _ = 1 to 3 do
          match Mailbox.recv mb with
          | Some v -> received := v :: !received
          | None -> Alcotest.fail "unexpected timeout"
        done)
  in
  Engine.run eng;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !received)

let test_mailbox_blocking_recv () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref None and got_at = ref Time.zero in
  let _ =
    Engine.spawn eng (fun () ->
        got := Mailbox.recv mb;
        got_at := Engine.now eng)
  in
  let _ =
    Engine.spawn eng ~at:(t_ms 4) (fun () ->
        check_bool "sent" true (Mailbox.send mb 42))
  in
  Engine.run eng;
  check_bool "value" true (!got = Some 42);
  check_int "at send time" 4_000_000 (Time.to_ns !got_at)

let test_mailbox_recv_timeout () =
  let eng = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create eng in
  let got = ref (Some 0) in
  let _ =
    Engine.spawn eng (fun () -> got := Mailbox.recv ~timeout:(t_ms 2) mb)
  in
  Engine.run eng;
  check_bool "timeout none" true (!got = None)

let test_mailbox_capacity_blocks_sender () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:1 eng in
  let sent_second_at = ref Time.zero in
  let _ =
    Engine.spawn eng (fun () ->
        check_bool "first send" true (Mailbox.send mb 1);
        check_bool "second send" true (Mailbox.send mb 2);
        sent_second_at := Engine.now eng)
  in
  let _ =
    Engine.spawn eng ~at:(t_ms 5) (fun () ->
        check_bool "recv" true (Mailbox.recv mb = Some 1))
  in
  Engine.run eng;
  check_int "sender blocked until space" 5_000_000
    (Time.to_ns !sent_second_at);
  check_int "one left" 1 (Mailbox.length mb)

let test_mailbox_send_timeout () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:1 eng in
  let ok = ref true in
  let _ =
    Engine.spawn eng (fun () ->
        check_bool "fill" true (Mailbox.send mb 1);
        ok := Mailbox.send ~timeout:(t_ms 2) mb 2)
  in
  Engine.run eng;
  check_bool "send timed out" false !ok;
  check_int "only first buffered" 1 (Mailbox.length mb)

let test_mailbox_handoff_no_steal () =
  (* A message handed to a blocked receiver cannot be taken by a
     try_recv issued at the same instant. *)
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let waiter_got = ref None and thief_got = ref None in
  let _ = Engine.spawn eng (fun () -> waiter_got := Mailbox.recv mb) in
  Engine.schedule eng ~after:(t_ms 1) (fun () ->
      check_bool "sent" true (Mailbox.try_send mb 7);
      thief_got := Mailbox.try_recv mb);
  Engine.run eng;
  check_bool "waiter got it" true (!waiter_got = Some 7);
  check_bool "thief got nothing" true (!thief_got = None)

let test_mailbox_try_ops () =
  let eng = Engine.create () in
  let mb = Mailbox.create ~capacity:1 eng in
  check_bool "try_send ok" true (Mailbox.try_send mb 1);
  check_bool "try_send full" false (Mailbox.try_send mb 2);
  check_bool "try_recv" true (Mailbox.try_recv mb = Some 1);
  check_bool "try_recv empty" true (Mailbox.try_recv mb = None)

(* ------------------------------------------------------------------ *)
(* Promise *)

let test_promise_fill_then_await () =
  let eng = Engine.create () in
  let pr = Promise.create eng in
  check_bool "fill succeeds" true (Promise.fill pr 42);
  check_bool "second fill refused" false (Promise.fill pr 43);
  Alcotest.(check (option int)) "peek" (Some 42) (Promise.peek pr);
  let got = ref None in
  let _ = Engine.spawn eng (fun () -> got := Promise.await pr) in
  Engine.run eng;
  Alcotest.(check (option int)) "await filled" (Some 42) !got

let test_promise_await_then_fill () =
  let eng = Engine.create () in
  let pr = Promise.create eng in
  let got_a = ref None and got_b = ref None and filled_at = ref Time.zero in
  let _ = Engine.spawn eng (fun () -> got_a := Promise.await pr) in
  let _ = Engine.spawn eng (fun () -> got_b := Promise.await pr) in
  Engine.schedule eng ~after:(t_ms 3) (fun () ->
      ignore (Promise.fill pr 7);
      filled_at := Engine.now eng);
  Engine.run eng;
  check_bool "both waiters woken" true (!got_a = Some 7 && !got_b = Some 7);
  check_int "at fill time" 3_000_000 (Time.to_ns !filled_at)

let test_promise_timeout () =
  let eng = Engine.create () in
  let pr : int Promise.t = Promise.create eng in
  let got = ref (Some 0) in
  let _ =
    Engine.spawn eng (fun () -> got := Promise.await ~timeout:(t_ms 2) pr)
  in
  Engine.run eng;
  check_bool "timed out" true (!got = None);
  check_bool "still unfilled" false (Promise.is_filled pr)

(* ------------------------------------------------------------------ *)
(* Resource *)

let test_resource_serialises () =
  let eng = Engine.create () in
  let cpu = Resource.create eng ~servers:2 ~name:"cpu" in
  for _ = 1 to 6 do
    ignore (Engine.spawn eng (fun () -> Resource.use cpu (t_ms 10)))
  done;
  Engine.run eng;
  check_int "makespan = 3 batches" 30_000_000 (Time.to_ns (Engine.now eng));
  check_int "all jobs" 6 (Resource.jobs_completed cpu);
  check_int "busy time" 60_000_000 (Time.to_ns (Resource.busy_time cpu));
  Alcotest.(check (float 1e-9))
    "utilisation" 1.0
    (Resource.utilisation cpu ~over:(Engine.now eng))

let test_resource_wait_stats () =
  let eng = Engine.create () in
  let r = Resource.create eng ~servers:1 ~name:"disk" in
  for _ = 1 to 3 do
    ignore (Engine.spawn eng (fun () -> Resource.use r (t_ms 2)))
  done;
  Engine.run eng;
  let w = Resource.wait_stats r in
  check_int "three waits" 3 (Stats.count w);
  Alcotest.(check (float 1e-9)) "first waits 0" 0.0 (Stats.min_value w);
  Alcotest.(check (float 1e-9)) "last waits 4ms" 0.004 (Stats.max_value w)

let test_resource_invalid () =
  let eng = Engine.create () in
  Alcotest.check_raises "zero servers"
    (Invalid_argument "Resource.create: servers must be positive") (fun () ->
      ignore (Resource.create eng ~servers:0 ~name:"x"))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_disabled_by_default () =
  let tr = Trace.create () in
  Trace.emit tr Time.zero Trace.Kern "hidden";
  check_int "nothing recorded" 0 (Trace.total tr)

let test_trace_roundtrip () =
  let tr = Trace.create ~keep:2 () in
  Trace.enable tr;
  let seen = ref 0 in
  let sub = Trace.subscribe tr (fun _ -> incr seen) in
  Trace.emit tr (t_ms 1) Trace.Net "one";
  Trace.emit tr (t_ms 2) Trace.Net "two";
  Trace.emit tr (t_ms 3) Trace.Kern "three";
  check_int "subscriber saw all" 3 !seen;
  check_int "net count" 2 (Trace.count tr Trace.Net);
  check_int "kern count" 1 (Trace.count tr Trace.Kern);
  let tail = Trace.recent tr in
  Alcotest.(check (list string))
    "ring keeps last 2" [ "two"; "three" ]
    (List.map (fun r -> r.Trace.message) tail);
  (* Unsubscribing stops delivery; a second unsubscribe is a no-op. *)
  Trace.unsubscribe tr sub;
  Trace.emit tr (t_ms 4) Trace.Net "four";
  check_int "unsubscribed: no new deliveries" 3 !seen;
  Trace.unsubscribe tr sub;
  check_int "idempotent" 3 !seen

let test_trace_emitf_lazy () =
  let tr = Trace.create () in
  (* Disabled: the closure below must not run. *)
  let evaluated = ref false in
  Trace.emitf tr Time.zero Trace.Sim "%s"
    (if false then "" else if !evaluated then "x" else "y");
  (* The argument expression above ran (strict evaluation), but emitf
     must at least not record anything. *)
  check_int "not recorded" 0 (Trace.total tr);
  Trace.enable tr;
  Trace.emitf tr Time.zero Trace.Sim "n=%d" 42;
  Alcotest.(check (list string))
    "formatted" [ "n=42" ]
    (List.map (fun r -> r.Trace.message) (Trace.recent tr))

(* ------------------------------------------------------------------ *)
(* Engine stress / properties *)

let prop_many_processes_complete =
  QCheck.Test.make ~name:"n processes with random delays all complete"
    ~count:30
    QCheck.(pair (int_range 1 50) (int_range 1 1000))
    (fun (n, seed) ->
      let eng = Engine.create ~seed:(Int64.of_int seed) () in
      let rng = Engine.fork_rng eng in
      let completed = ref 0 in
      for _ = 1 to n do
        let steps = 1 + Splitmix.int rng 5 in
        ignore
          (Engine.spawn eng (fun () ->
               for _ = 1 to steps do
                 Engine.delay (Time.us (1 + Splitmix.int rng 1000))
               done;
               incr completed))
      done;
      Engine.run eng;
      !completed = n && Engine.live_processes eng = 0)

let prop_semaphore_never_oversubscribed =
  QCheck.Test.make ~name:"semaphore never oversubscribed" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 5 30))
    (fun (permits, jobs) ->
      let eng = Engine.create () in
      let sem = Semaphore.create eng ~init:permits in
      let inside = ref 0 and peak = ref 0 in
      for _ = 1 to jobs do
        ignore
          (Engine.spawn eng (fun () ->
               ignore (Semaphore.acquire sem);
               incr inside;
               peak := Stdlib.max !peak !inside;
               Engine.delay (Time.us 100);
               decr inside;
               Semaphore.release sem))
      done;
      Engine.run eng;
      !peak <= permits)

(* Fuzz the engine with a random mix of delays, semaphore traffic,
   mailbox traffic, child spawning and kills: the run must terminate
   with every non-daemon process finished and no stall. *)
let prop_engine_fuzz =
  QCheck.Test.make ~name:"random process soup terminates cleanly" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let eng = Engine.create ~seed:(Int64.of_int (seed + 1)) () in
      let rng = Splitmix.create (Int64.of_int seed) in
      let sem = Semaphore.create eng ~init:2 in
      let mb = Mailbox.create ~capacity:4 eng in
      let pids = ref [] in
      let rec body depth () =
        for _ = 1 to Splitmix.int rng 5 do
          match Splitmix.int rng 6 with
          | 0 -> Engine.delay (Time.us (Splitmix.int rng 500))
          | 1 ->
            if Semaphore.acquire ~timeout:(Time.ms 2) sem then begin
              Engine.delay (Time.us (Splitmix.int rng 100));
              Semaphore.release sem
            end
          | 2 -> ignore (Mailbox.send ~timeout:(Time.ms 1) mb (Splitmix.int rng 10))
          | 3 -> ignore (Mailbox.recv ~timeout:(Time.ms 1) mb)
          | 4 ->
            if depth < 2 then begin
              let pid = Engine.spawn eng (body (depth + 1)) in
              pids := pid :: !pids
            end
          | _ -> (
            match !pids with
            | [] -> ()
            | pid :: rest ->
              pids := rest;
              (* Never kill ourselves here: self-kill raises Killed,
                 which is exercised elsewhere. *)
              if not (Engine.Pid.equal pid (Engine.self ())) then
                Engine.kill eng pid)
        done
      in
      for _ = 1 to 10 do
        pids := Engine.spawn eng (body 0) :: !pids
      done;
      (match Engine.run eng with
      | () -> ()
      | exception Engine.Stalled_waiting -> ());
      Engine.live_processes eng = 0)

let prop_mailbox_fifo =
  QCheck.Test.make ~name:"mailbox delivers in order" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 30) small_int)
    (fun xs ->
      let eng = Engine.create () in
      let mb = Mailbox.create eng in
      let out = ref [] in
      let _ =
        Engine.spawn eng (fun () ->
            List.iter
              (fun x ->
                ignore (Mailbox.send mb x);
                Engine.delay (Time.us 1))
              xs)
      in
      let _ =
        Engine.spawn eng (fun () ->
            for _ = 1 to List.length xs do
              match Mailbox.recv mb with
              | Some v -> out := v :: !out
              | None -> ()
            done)
      in
      Engine.run eng;
      List.rev !out = xs)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eden_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "same-time fifo" `Quick test_same_time_fifo;
          Alcotest.test_case "deterministic" `Quick
            test_interleaving_deterministic;
          Alcotest.test_case "run until" `Quick test_run_until_truncates;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "yield" `Quick test_yield_interleaves;
          Alcotest.test_case "outside process" `Quick
            test_outside_process_errors;
          Alcotest.test_case "nested run rejected" `Quick
            test_run_reentrancy_guarded;
          Alcotest.test_case "self and alive" `Quick test_self_and_alive;
          qt prop_many_processes_complete;
          qt prop_engine_fuzz;
        ] );
      ( "kill",
        [
          Alcotest.test_case "blocked + finalisers" `Quick
            test_kill_blocked_runs_finalisers;
          Alcotest.test_case "before start" `Quick test_kill_before_start;
          Alcotest.test_case "self kill" `Quick test_self_kill;
          Alcotest.test_case "idempotent" `Quick test_kill_idempotent;
          Alcotest.test_case "kill then wake" `Quick
            test_kill_then_wake_is_noop;
        ] );
      ( "stall",
        [
          Alcotest.test_case "detected" `Quick test_stall_detected;
          Alcotest.test_case "raises uncaught" `Quick
            test_stall_raises_when_uncaught;
          Alcotest.test_case "daemons exempt" `Quick test_daemon_not_stalled;
        ] );
      ( "condition",
        [
          Alcotest.test_case "signal wakes one" `Quick
            test_condition_signal_wakes_one;
          Alcotest.test_case "fifo order" `Quick test_condition_signal_order;
          Alcotest.test_case "timeout" `Quick test_condition_timeout;
          Alcotest.test_case "signal beats timeout" `Quick
            test_condition_signal_beats_timeout;
          Alcotest.test_case "stale entries skipped" `Quick
            test_condition_timeout_entry_skipped;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutex" `Quick test_semaphore_mutex;
          Alcotest.test_case "counting" `Quick test_semaphore_counting;
          Alcotest.test_case "timeout" `Quick test_semaphore_timeout;
          Alcotest.test_case "handoff" `Quick test_semaphore_handoff_no_steal;
          Alcotest.test_case "try_acquire" `Quick test_semaphore_try_acquire;
          Alcotest.test_case "invalid" `Quick test_semaphore_invalid;
          qt prop_semaphore_never_oversubscribed;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "buffered" `Quick test_mailbox_buffered;
          Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "recv timeout" `Quick test_mailbox_recv_timeout;
          Alcotest.test_case "capacity blocks sender" `Quick
            test_mailbox_capacity_blocks_sender;
          Alcotest.test_case "send timeout" `Quick test_mailbox_send_timeout;
          Alcotest.test_case "handoff" `Quick test_mailbox_handoff_no_steal;
          Alcotest.test_case "try ops" `Quick test_mailbox_try_ops;
          qt prop_mailbox_fifo;
        ] );
      ( "promise",
        [
          Alcotest.test_case "fill then await" `Quick
            test_promise_fill_then_await;
          Alcotest.test_case "await then fill" `Quick
            test_promise_await_then_fill;
          Alcotest.test_case "timeout" `Quick test_promise_timeout;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serialises" `Quick test_resource_serialises;
          Alcotest.test_case "wait stats" `Quick test_resource_wait_stats;
          Alcotest.test_case "invalid" `Quick test_resource_invalid;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled by default" `Quick
            test_trace_disabled_by_default;
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "emitf" `Quick test_trace_emitf_lazy;
        ] );
    ]
