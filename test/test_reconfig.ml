(* Online reconfiguration: epoch-stamped membership (join, drain,
   leave) plus the regression sweep that rode along with it — dead
   registry shards pinned in the ring, dedup tombstone leaks under
   drop-heavy cancels, the clone×directory broadcast seam, and the
   balancer refilling nodes a drain is emptying. *)

open Eden_util
open Eden_sim
open Eden_kernel
module Plan = Eden_fault.Plan
module Controller = Eden_fault.Controller

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counter_type =
  let open Api in
  Typemgr.make_exn ~name:"reconfig_counter"
    [
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
    ]

(* Run [f] as a driver process to completion. *)
let phase cl f =
  let _ = Cluster.in_process cl f in
  Cluster.run cl

let must = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

let must_s = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let node_counter cl ~node name =
  match
    Eden_obs.Snapshot.find
      (Cluster.metrics_snapshot cl)
      ~labels:[ ("node", string_of_int node) ]
      name
  with
  | Some (Eden_obs.Metrics.Counter n) -> n
  | _ -> 0

let sum_counter cl name =
  List.fold_left
    (fun acc i -> acc + node_counter cl ~node:i name)
    0
    (List.init (Cluster.node_count cl) Fun.id)

let violations cl =
  Eden_obs.Check.run
    ~complete:(Cluster.journal_dropped cl = 0)
    (Cluster.timeline cl)
  |> List.map (Format.asprintf "%a" Eden_obs.Check.pp_violation)

(* ------------------------------------------------------------------ *)
(* Bugfix: dead registry shards are routed around, not pinned *)

let dir_options =
  {
    Cluster.default_options with
    Cluster.use_directory = true;
    use_hint_cache = false;
    use_forwarding = false;
  }

(* Before the detour, a crashed shard stayed pinned in the ring: every
   lookup of a name it owned burned the directory window against the
   dead node and fell back to broadcast — one fallback per touch,
   forever.  With [shard_skipping], publish and lookup agree on the
   next live ring point, so the stand-in serves from the first
   republish on: at most one fallback total after the crash. *)
let test_dead_shard_detour () =
  let cl = Cluster.default ~seed:11L ~options:dir_options ~n_nodes:5 () in
  Cluster.register_type cl counter_type;
  let found = ref None in
  phase cl (fun () ->
      (* An object homed on node 1 whose registry shard is neither the
         requester (0) nor the home (1), so crashing the shard leaves
         both endpoints alive. *)
      let rec mk () =
        let c =
          must
            (Cluster.create_object cl ~node:1 ~type_name:"reconfig_counter"
               (Value.Int 0))
        in
        let s = Cluster.directory_shard cl (Capability.name c) in
        if s = 0 || s = 1 then mk () else found := Some (c, s)
      in
      mk ());
  let cap, shard = Option.get !found in
  let touch () =
    match
      Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
        ~retry:Api.default_retry cap ~op:"get" []
    with
    | Ok [ Value.Int _ ] -> ()
    | Ok _ | Error _ -> Alcotest.fail "touch failed"
  in
  phase cl (fun () -> touch ());
  Cluster.crash_node cl shard;
  let before = node_counter cl ~node:0 "eden.dir.fallbacks" in
  phase cl (fun () ->
      touch ();
      touch ());
  let after = node_counter cl ~node:0 "eden.dir.fallbacks" in
  check_bool
    (Printf.sprintf
       "a dead shard costs at most one fallback, not one per touch (got %d)"
       (after - before))
    true
    (after - before <= 1)

(* ------------------------------------------------------------------ *)
(* Bugfix: cancelled-only dedup entries lease out instead of leaking *)

let test_dedup_tombstone_lease () =
  let rid seq = { Message.origin = 9; seq } in
  let live = { Message.origin = 3; seq = 1 } in
  (* The old behavior, for contrast: without leases, a drop-heavy run
     (cancels whose requests never arrive) fills the table with
     tombstones until cap eviction throws out live entries. *)
  let t0 = Dedup.create ~cap:64 () in
  Dedup.note_queued t0 live;
  for i = 0 to 499 do
    ignore (Dedup.cancel t0 (rid i))
  done;
  check_bool "without leases, tombstones evict live entries" true
    (Dedup.find t0 live = None);
  (* With a lease and a moving clock, the same storm stays bounded and
     the live entry survives. *)
  let now = ref Time.zero in
  let t =
    Dedup.create ~ttl:(Time.ms 10) ~now:(fun () -> !now) ~cap:64 ()
  in
  Dedup.note_queued t live;
  for i = 0 to 499 do
    now := Time.ms i;
    ignore (Dedup.cancel t (rid i))
  done;
  check_bool "leased tombstones are reclaimed before cap pressure" true
    (Dedup.size t <= 64);
  check_bool "live entry survives 500 orphaned cancels" true
    (Dedup.find t live = Some Dedup.Queued);
  (* Entries that progressed past Cancelled are never reclaimed. *)
  let started = { Message.origin = 4; seq = 2 } in
  Dedup.note_queued t started;
  check_bool "started before lease check" true (Dedup.start t started = `Run);
  now := Time.s 5;
  ignore (Dedup.cancel t (rid 1000));
  check_bool "expiry only touches Cancelled-only entries" true
    (Dedup.find t started = Some Dedup.Started)

(* ------------------------------------------------------------------ *)
(* Bugfix: the balancer must not refill spares or draining nodes *)

let test_policy_ignores_spares () =
  let cl = Cluster.default ~seed:5L ~spares:1 ~n_nodes:2 () in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  phase cl (fun () ->
      for _ = 1 to 4 do
        caps :=
          must
            (Cluster.create_object cl ~node:0 ~type_name:"reconfig_counter"
               (Value.Int 0))
          :: !caps
      done;
      caps :=
        must
          (Cluster.create_object cl ~node:1 ~type_name:"reconfig_counter"
             (Value.Int 0))
        :: !caps);
  let managed = !caps in
  phase cl (fun () -> ignore (Policy.balance_once cl ~managed));
  (* The spare (node 2) is up and empty — the most tempting cold
     target — but outside the membership: nothing may land there.
     Pre-fix, balance_once treated any up node as eligible and homed
     managed objects on it; a draining node would be refilled the same
     way, oscillating against the drain emptying it. *)
  List.iter
    (fun cap ->
      match Cluster.where_is cl cap with
      | Some n ->
        check_bool
          (Printf.sprintf "object balanced onto member (node %d)" n)
          true (n < 2)
      | None -> Alcotest.fail "managed object lost")
    managed;
  let counts = Policy.managed_load cl ~managed in
  check_bool "members balanced to spread <= 1" true
    (match counts with
    | [ (0, a); (1, b) ] -> abs (a - b) <= 1
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Tentpole: join + drain + leave under live traffic *)

let test_join_drain_leave () =
  let cl =
    Cluster.default ~seed:7L
      ~options:{ Cluster.default_options with Cluster.use_directory = true }
      ~spares:1 ~n_nodes:3 ()
  in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  phase cl (fun () ->
      for i = 0 to 2 do
        for _ = 1 to 2 do
          caps :=
            must
              (Cluster.create_object cl ~node:i ~type_name:"reconfig_counter"
                 (Value.Int 0))
            :: !caps
        done
      done);
  let caps = Array.of_list (List.rev !caps) in
  check_int "boot epoch" 0 (Cluster.epoch cl);
  check_bool "spare outside boot membership" false (Cluster.is_member cl 3);
  let ok = ref 0 and failed = ref 0 in
  let eng = Cluster.engine cl in
  (* A paced request stream keeps traffic in flight across both
     membership changes. *)
  let _ =
    Cluster.in_process cl ~name:"stream" (fun () ->
        for r = 0 to 79 do
          Engine.delay (Time.ms 2);
          match
            Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
              ~retry:Api.default_retry
              caps.(r mod Array.length caps)
              ~op:"incr" []
          with
          | Ok _ -> incr ok
          | Error _ -> incr failed
        done)
  in
  let _ =
    Cluster.in_process cl ~name:"reconfig" (fun () ->
        Engine.delay (Time.ms 30);
        must_s (Cluster.join_node cl 3);
        Engine.delay (Time.ms 30);
        must_s (Cluster.decommission_node cl 1);
        check_bool "drain cleared before power-off" false
          (Cluster.is_draining cl 1))
  in
  Cluster.run cl;
  ignore eng;
  check_int "two membership steps" 2 (Cluster.epoch cl);
  check_bool "decommissioned node left the membership" false
    (Cluster.is_member cl 1);
  check_bool "joined spare is a member" true (Cluster.is_member cl 3);
  check_bool "decommissioned node powered off" false (Cluster.node_up cl 1);
  check_int "no failed requests through join+drain+leave" 0 !failed;
  check_int "every request served" 80 !ok;
  (* Census: every object lives exactly once, on a member. *)
  Array.iter
    (fun cap ->
      match Cluster.where_is cl cap with
      | Some n ->
        check_bool
          (Printf.sprintf "object homed on a member (node %d)" n)
          true
          (Cluster.is_member cl n)
      | None -> Alcotest.fail "object lost by the drain")
    caps;
  check_bool "drain evacuated the leaver's objects" true
    (sum_counter cl "eden.drain.moves" >= 2);
  check_bool "epoch bumps journalled cluster-wide" true
    (sum_counter cl "eden.epoch.bumps" >= 4);
  let v = violations cl in
  check_bool
    (Printf.sprintf "all seven invariants hold (%s)" (String.concat "; " v))
    true (v = [])

(* ------------------------------------------------------------------ *)
(* Bugfix: cloned reads consult the directory instead of broadcasting *)

let clone_dir_options =
  {
    Cluster.default_options with
    Cluster.use_directory = true;
    speculate = { Api.no_speculation with Api.sp_clone = true };
  }

let test_clone_consults_directory () =
  let cl = Cluster.default ~seed:13L ~options:clone_dir_options ~n_nodes:4 () in
  Cluster.register_type cl counter_type;
  (* Everything runs in one phase so the virtual clock stays well
     inside the registry lease: any broadcast counted below is the
     clone machinery's own, not a lease-expiry fallback. *)
  let bcasts = ref (-1) and fanouts = ref (-1) in
  phase cl (fun () ->
      let cap =
        must
          (Cluster.create_object cl ~node:3 ~type_name:"reconfig_counter"
             (Value.Int 7))
      in
      must (Cluster.freeze cl cap);
      let read () =
        Engine.delay (Time.ms 1);
        match
          Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
            ~retry:Api.default_retry cap ~op:"get" []
        with
        | Ok [ Value.Int 7 ] -> ()
        | Ok _ | Error _ -> Alcotest.fail "frozen read failed"
      in
      let before = sum_counter cl "eden.locate_broadcasts" in
      (* Frozen but not yet replicated: the registry hit carries an
         empty replica set, so the frozen-hinted reply finds no clone
         entry to stand in for the asked-once marker.  Pre-fix this is
         exactly the window where the requester fired a clone-discovery
         broadcast despite the directory being on — counted over these
         reads, the delta must be zero. *)
      for _ = 1 to 5 do
        read ()
      done;
      bcasts := sum_counter cl "eden.locate_broadcasts" - before;
      List.iter (fun n -> must (Cluster.replicate cl cap ~to_node:n)) [ 1; 2 ];
      (* Replicated now: the registry entry names the replica set and
         every directory hit feeds it to the clone machinery — fan-outs
         fire without a discovery broadcast.  (Broadcasts are not
         re-counted over these reads: a shard congested by clone-cancel
         traffic can miss the directory window and legitimately fall
         back.) *)
      for _ = 1 to 20 do
        read ()
      done;
      fanouts := sum_counter cl "eden.clone.fanouts");
  check_int "cloned reads add no locate broadcasts" 0 !bcasts;
  check_bool "clone fan-outs still fire, fed by the directory" true
    (!fanouts > 0)

(* Same-seed determinism with both flags on AND reconfiguration in the
   plan: the whole run — chaos, joins, drains — must be
   byte-reproducible. *)
let chaos_reconfig_run seed =
  let cl =
    Cluster.default
      ~seed:(Int64.of_int seed)
      ~options:clone_dir_options ~spares:1 ~n_nodes:4 ()
  in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  phase cl (fun () ->
      for i = 0 to 3 do
        caps :=
          must
            (Cluster.create_object cl ~node:i ~type_name:"reconfig_counter"
               (Value.Int 0))
          :: !caps
      done);
  let caps = Array.of_list (List.rev !caps) in
  let horizon = Time.s 1 in
  let plan =
    Plan.make
      (Plan.events
         (Plan.random ~seed:(Int64.of_int seed) ~nodes:4 ~segments:1 ~horizon)
      @ [
          { Plan.at = Time.ms 200; action = Plan.Join_node 4 };
          { Plan.at = Time.ms 600; action = Plan.Decommission_node 2 };
        ])
  in
  let ctl = Controller.arm ~seed:(Int64.of_int seed) cl plan in
  let ok = ref 0 and failed = ref 0 in
  phase cl (fun () ->
      for r = 0 to 99 do
        Engine.delay (Time.ms 10);
        match
          Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
            ~retry:Api.default_retry
            caps.(r mod Array.length caps)
            ~op:"incr" []
        with
        | Ok _ -> incr ok
        | Error _ -> incr failed
      done);
  ( !ok,
    !failed,
    Controller.injected ctl,
    Eden_obs.Snapshot.to_string (Cluster.metrics_snapshot cl),
    Eden_obs.Timeline.to_text (Cluster.timeline cl) )

let test_chaos_reconfig_deterministic () =
  List.iter
    (fun seed ->
      let ok_a, failed_a, inj_a, snap_a, trace_a = chaos_reconfig_run seed in
      let ok_b, failed_b, inj_b, snap_b, trace_b = chaos_reconfig_run seed in
      check_int "identical completions" ok_a ok_b;
      check_int "identical failures" failed_a failed_b;
      check_int "identical fault counts" inj_a inj_b;
      check_bool "every request accounted for" true (ok_a + failed_a = 100);
      Alcotest.(check string)
        (Printf.sprintf
           "seed %d: byte-identical snapshots with clone+directory+reconfig"
           seed)
        snap_a snap_b;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: byte-identical timelines" seed)
        trace_a trace_b)
    [ 3; 17 ]

(* ------------------------------------------------------------------ *)
(* Property: epoch bumps over random join/leave sequences *)

(* Each membership step must remap at most ~1/n of the name space
   (2/n with constant slack, matching the Directory-level property),
   and a run interleaving random churn with live traffic must keep
   every invariant — rule 6's resolve-or-fall-back and rule 7's
   epoch monotonicity included. *)
let test_epoch_random_churn () =
  List.iter
    (fun seed ->
      let cl =
        Cluster.default
          ~seed:(Int64.of_int seed)
          ~options:{ Cluster.default_options with Cluster.use_directory = true }
          ~spares:2 ~n_nodes:4 ()
      in
      Cluster.register_type cl counter_type;
      let rng = Splitmix.create (Int64.of_int ((seed * 31) + 5)) in
      let caps = ref [] in
      phase cl (fun () ->
          for i = 0 to 3 do
            caps :=
              must
                (Cluster.create_object cl ~node:i
                   ~type_name:"reconfig_counter" (Value.Int 0))
              :: !caps
          done);
      let caps = !caps in
      let sample =
        List.init 256 (fun i ->
            Name.make ~birth_node:(i mod 6) ~serial:(1000 + i))
      in
      let shards () = List.map (Cluster.directory_shard cl) sample in
      let touch_all () =
        List.iter
          (fun cap ->
            match
              Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
                ~retry:Api.default_retry cap ~op:"incr" []
            with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "touch: %s" (Error.to_string e))
          caps
      in
      let step_bound = ref [] in
      phase cl (fun () ->
          touch_all ();
          for _step = 1 to 5 do
            let before = shards () in
            let n_before = List.length (Cluster.members cl) in
            (* A random valid membership step: join a powered
               non-member when one exists and the coin says grow,
               otherwise drain a random member (never node 0, the
               driver; never the last pair). *)
            let non_members =
              List.filter
                (fun i ->
                  (not (Cluster.is_member cl i)) && Cluster.node_up cl i)
                (List.init (Cluster.node_count cl) Fun.id)
            in
            let members_but_0 =
              List.filter (fun i -> i <> 0) (Cluster.members cl)
            in
            if
              non_members <> []
              && (List.length members_but_0 < 2 || Splitmix.coin rng 0.5)
            then begin
              let pick =
                List.nth non_members
                  (Splitmix.int rng (List.length non_members))
              in
              must_s (Cluster.join_node cl pick)
            end
            else begin
              let pick =
                List.nth members_but_0
                  (Splitmix.int rng (List.length members_but_0))
              in
              must_s (Cluster.decommission_node cl pick);
              (* Power the leaver back on as a rejoinable spare —
                 exercising the restart-time epoch resync. *)
              Cluster.restart_node cl pick
            end;
            let after = shards () in
            let moved =
              List.fold_left2
                (fun acc a b -> if a = b then acc else acc + 1)
                0 before after
            in
            let n = min n_before (List.length (Cluster.members cl)) in
            step_bound := (moved, (2 * 256 / n) + 8) :: !step_bound;
            Engine.delay (Time.ms 5);
            touch_all ()
          done);
      List.iter
        (fun (moved, bound) ->
          check_bool
            (Printf.sprintf "seed %d: step remapped %d <= %d names" seed
               moved bound)
            true (moved <= bound))
        !step_bound;
      check_int "five epochs" 5 (Cluster.epoch cl);
      let v = violations cl in
      check_bool
        (Printf.sprintf "seed %d: invariants hold under churn (%s)" seed
           (String.concat "; " v))
        true (v = []))
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Plan text format covers the new actions *)

let test_plan_reconfig_roundtrip () =
  let p =
    Plan.make
      [
        { Plan.at = Time.ms 250; action = Plan.Join_node 5 };
        { Plan.at = Time.ms 800; action = Plan.Decommission_node 2 };
      ]
  in
  (match Plan.of_string (Plan.to_string p) with
  | Ok q -> check_bool "round-trip" true (Plan.events p = Plan.events q)
  | Error e -> Alcotest.failf "re-parse failed: %s" e);
  (match Plan.validate p ~nodes:6 ~segments:1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  check_bool "out-of-range join rejected" true
    (Plan.validate p ~nodes:4 ~segments:1 <> Ok ())

let () =
  Alcotest.run "eden_reconfig"
    [
      ( "bugfixes",
        [
          Alcotest.test_case "dead shard is routed around" `Quick
            test_dead_shard_detour;
          Alcotest.test_case "dedup tombstones lease out" `Quick
            test_dedup_tombstone_lease;
          Alcotest.test_case "balancer ignores spares/draining" `Quick
            test_policy_ignores_spares;
          Alcotest.test_case "cloned reads consult the directory" `Quick
            test_clone_consults_directory;
        ] );
      ( "membership",
        [
          Alcotest.test_case "join + drain + leave under load" `Quick
            test_join_drain_leave;
          Alcotest.test_case "plan actions round-trip" `Quick
            test_plan_reconfig_roundtrip;
          Alcotest.test_case "deterministic chaos with reconfig" `Slow
            test_chaos_reconfig_deterministic;
          Alcotest.test_case "random churn: remap bound + invariants" `Slow
            test_epoch_random_churn;
        ] );
    ]
