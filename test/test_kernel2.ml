(* Second kernel test wave: destruction, concurrency corner cases,
   the locate-storm regression, memory pressure, and frozen-object
   lifecycle interactions. *)

open Eden_util
open Eden_sim
open Eden_kernel
open Api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

let expect_error label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" label (Error.to_string expected)
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: got %s" label (Error.to_string e))
      true
      (Error.equal e expected)

let counter_type =
  Typemgr.make_exn ~name:"counter2"
    [
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "grow" (fun ctx args ->
          let* v = arg1 args in
          let* bytes = int_arg v in
          let* () = ctx.set_repr (Value.Blob bytes) in
          reply_unit);
      Typemgr.operation "checkpoint" (fun ctx args ->
          let* () = no_args args in
          let* () = ctx.checkpoint () in
          reply_unit);
      Typemgr.operation "slow_get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          ignore ctx;
          Engine.delay (Time.ms 20);
          reply [ ctx.get_repr () ]);
      Typemgr.operation "spawn_and_wait" (fun ctx args ->
          let* () = no_args args in
          (* A subordinate process computes; the invocation waits for
             its signal through an object port. *)
          let port = ctx.port "sub_done" in
          ctx.spawn_subprocess (fun () ->
              ctx.compute (Time.ms 5);
              ignore (Eden_sim.Mailbox.try_send port (Value.Int 99)));
          match Eden_sim.Mailbox.recv ~timeout:(Time.s 1) port with
          | Some v -> reply [ v ]
          | None -> user_error "subprocess never signalled");
    ]

let with_cluster ?seed ?options ?(n = 3) body =
  let cl = Cluster.default ?seed ?options ~n_nodes:n () in
  Cluster.register_type cl counter_type;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver did not complete"

let new_counter cl ~node init =
  ok_or_fail "create"
    (Cluster.create_object cl ~node ~type_name:"counter2" (Value.Int init))

(* ------------------------------------------------------------------ *)
(* Destroy *)

let test_destroy_active () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 5 in
      ignore (ok_or_fail "destroy" (Cluster.destroy cl cap));
      check_bool "not active" false (Cluster.is_active cl cap);
      expect_error "gone" Error.No_such_object
        (Cluster.invoke cl ~from:1 cap ~op:"get" []))

let test_destroy_purges_checkpoints () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 5 in
      ignore (ok_or_fail "ckpt" (Cluster.invoke cl ~from:0 cap ~op:"checkpoint" []));
      check_bool "snapshot exists" true (Cluster.checkpoint_sites cl cap <> []);
      ignore (ok_or_fail "destroy" (Cluster.destroy cl cap));
      (* Give the broadcast notice time to arrive everywhere. *)
      Engine.delay (Time.ms 5);
      Alcotest.(check (list int)) "snapshots purged" []
        (Cluster.checkpoint_sites cl cap);
      expect_error "cannot reincarnate" Error.No_such_object
        (Cluster.invoke cl ~from:2 cap ~op:"get" []))

let test_destroy_requires_right () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      let weak = Capability.restrict cap Rights.invoke_only in
      expect_error "denied" (Error.Rights_violation "destroy")
        (Cluster.destroy cl weak);
      (* Still alive after the failed attempt. *)
      check_bool "alive" true (Cluster.is_active cl cap))

let test_destroy_missing_object () =
  with_cluster (fun cl ->
      let ghost =
        Capability.make (Name.make ~birth_node:0 ~serial:999_999) Rights.all
      in
      expect_error "nothing to destroy" Error.No_such_object
        (Cluster.destroy cl ghost))

let test_destroy_kills_replicas () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 1 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      ignore (ok_or_fail "replicate" (Cluster.replicate cl cap ~to_node:2));
      Alcotest.(check (list int)) "replica up" [ 2 ]
        (Cluster.replica_sites cl cap);
      ignore (ok_or_fail "destroy" (Cluster.destroy cl cap));
      Engine.delay (Time.ms 5);
      Alcotest.(check (list int)) "replica gone" []
        (Cluster.replica_sites cl cap);
      expect_error "unreachable from replica node" Error.No_such_object
        (Cluster.invoke cl ~from:2 cap ~op:"get" []))

(* ------------------------------------------------------------------ *)
(* Concurrency corners *)

let test_locate_storm_regression () =
  (* 70 simultaneous remote invocations from 7 nodes used to starve the
     locate window and fail with No_such_object (see DESIGN.md on
     locate coalescing). *)
  with_cluster ~n:8 (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      let ps =
        List.concat_map
          (fun from ->
            List.init 10 (fun _ ->
                Cluster.invoke_async cl ~from cap ~op:"incr" []))
          (List.init 8 Fun.id)
      in
      let failures =
        List.fold_left
          (fun acc p ->
            match Promise.await p with
            | Some (Ok _) -> acc
            | Some (Error _) | None -> acc + 1)
          0 ps
      in
      check_int "no failures under storm" 0 failures;
      check_int "all increments landed" 80
        (match Cluster.invoke cl ~from:0 cap ~op:"get" [] with
        | Ok [ Value.Int n ] -> n
        | Ok _ | Error _ -> -1))

let test_invoke_during_move_completes () =
  (* Requests that arrive while the object drains for a move are
     stashed and served after the transfer. *)
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      (* A slow invocation holds the object busy while we move it. *)
      let slow = Cluster.invoke_async cl ~from:1 cap ~op:"slow_get" [] in
      Engine.delay (Time.ms 2);
      let move_p =
        let pr = Promise.create (Cluster.engine cl) in
        ignore
          (Cluster.in_process cl (fun () ->
               ignore (Promise.fill pr (Cluster.move cl cap ~to_node:2))));
        pr
      in
      Engine.delay (Time.ms 2);
      (* This request lands mid-drain. *)
      let during = Cluster.invoke_async cl ~from:1 cap ~op:"incr" [] in
      (match Promise.await slow with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "slow invocation failed");
      (match Promise.await move_p with
      | Some (Ok ()) -> ()
      | Some (Error e) -> Alcotest.failf "move: %s" (Error.to_string e)
      | None -> Alcotest.fail "move never finished");
      (match Promise.await during with
      | Some (Ok [ Value.Int 1 ]) -> ()
      | Some (Ok _) -> Alcotest.fail "wrong increment result"
      | Some (Error e) -> Alcotest.failf "stashed request: %s" (Error.to_string e)
      | None -> Alcotest.fail "stashed request lost");
      check_bool "lives on node 2" true (Cluster.where_is cl cap = Some 2))

let test_subprocess () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      match Cluster.invoke cl ~from:0 cap ~op:"spawn_and_wait" [] with
      | Ok [ Value.Int 99 ] -> ()
      | Ok _ -> Alcotest.fail "wrong subprocess reply"
      | Error e -> Alcotest.failf "subprocess op: %s" (Error.to_string e))

let test_set_repr_out_of_memory () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 0 in
      expect_error "grow beyond node memory" Error.Out_of_memory
        (Cluster.invoke cl ~from:0 cap ~op:"grow" [ Value.Int 5_000_000 ]);
      (* The failed growth must not corrupt the object. *)
      check_bool "still serving" true
        (Cluster.invoke cl ~from:0 cap ~op:"get" [] = Ok [ Value.Int 0 ]))

let test_frozen_survives_reincarnation () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 7 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      ignore (ok_or_fail "ckpt" (Cluster.checkpoint_of cl cap));
      Cluster.crash_node cl 0;
      Cluster.restart_node cl 0;
      check_bool "readable again" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 7 ]);
      (* Frozenness is part of the long-term state. *)
      expect_error "still frozen" Error.Frozen_immutable
        (Cluster.invoke cl ~from:1 cap ~op:"incr" []))

let test_double_crash_restart_idempotent () =
  with_cluster (fun cl ->
      Cluster.crash_node cl 1;
      Cluster.crash_node cl 1;
      check_bool "down" false (Cluster.node_up cl 1);
      Cluster.restart_node cl 1;
      Cluster.restart_node cl 1;
      check_bool "up" true (Cluster.node_up cl 1);
      (* The node works after the cycle. *)
      let cap = new_counter cl ~node:1 3 in
      check_bool "creates and serves" true
        (Cluster.invoke cl ~from:0 cap ~op:"get" [] = Ok [ Value.Int 3 ]))

let test_many_objects_same_type_share_code () =
  (* Type code is loaded once per node: creating many small objects
     must cost far less memory than code-per-object would. *)
  with_cluster ~n:1 (fun cl ->
      let caps =
        List.init 20 (fun i -> new_counter cl ~node:0 i)
      in
      List.iteri
        (fun i cap ->
          check_bool
            (Printf.sprintf "counter %d intact" i)
            true
            (Cluster.invoke cl ~from:0 cap ~op:"get" [] = Ok [ Value.Int i ]))
        caps;
      (* 20 counters plus the kernel's own node object. *)
      check_int "all twenty active" 21 (Cluster.active_objects cl 0))

let test_stats_monotone () =
  with_cluster (fun cl ->
      let before = Cluster.stats_invocations cl in
      let cap = new_counter cl ~node:0 0 in
      ignore (ok_or_fail "a" (Cluster.invoke cl ~from:0 cap ~op:"incr" []));
      ignore (ok_or_fail "b" (Cluster.invoke cl ~from:1 cap ~op:"incr" []));
      check_bool "counted" true (Cluster.stats_invocations cl >= before + 2);
      check_bool "remote subset" true
        (Cluster.stats_remote_invocations cl <= Cluster.stats_invocations cl))

(* ------------------------------------------------------------------ *)
(* Node objects (paper sec. 4.3: "a node is an object") *)

let test_timeout_bounds_locate () =
  (* A tight budget is honoured even when the kernel would otherwise
     spend several widening locate windows finding nothing. *)
  with_cluster (fun cl ->
      let ghost =
        Capability.make (Name.make ~birth_node:0 ~serial:123_456) Rights.all
      in
      let eng = Cluster.engine cl in
      let t0 = Engine.now eng in
      expect_error "deadline wins" Error.Timeout
        (Cluster.invoke cl ~from:0 ~timeout:(Time.ms 5) ghost ~op:"get" []);
      let waited = Time.to_ns (Time.diff (Engine.now eng) t0) in
      check_bool "returned promptly" true (waited <= 6_000_000);
      (* Without a deadline the verdict is No_such_object. *)
      expect_error "untimed verdict" Error.No_such_object
        (Cluster.invoke cl ~from:0 ghost ~op:"get" []))

let test_node_object_info () =
  with_cluster (fun cl ->
      let node1 = Cluster.node_object cl 1 in
      match Cluster.invoke cl ~from:0 node1 ~op:"info" [] with
      | Ok [ Value.Int gdps; Value.Int cap; Value.Int avail; Value.Int active ]
        ->
        check_int "gdps" 2 gdps;
        check_int "capacity" 1_000_000 cap;
        check_bool "memory available" true (avail > 0 && avail <= cap);
        (* Just the node object itself is active there. *)
        check_int "active objects" 1 active
      | Ok _ -> Alcotest.fail "unexpected info shape"
      | Error e -> Alcotest.failf "info: %s" (Error.to_string e))

let test_node_object_reflects_population () =
  with_cluster (fun cl ->
      let _ = new_counter cl ~node:1 0 in
      let _ = new_counter cl ~node:1 0 in
      match Cluster.invoke cl ~from:1 (Cluster.node_object cl 1) ~op:"info" [] with
      | Ok [ _; _; _; Value.Int active ] ->
        check_int "node object + two counters" 3 active
      | Ok _ | Error _ -> Alcotest.fail "info failed")

let test_node_object_heartbeat () =
  with_cluster (fun cl ->
      let target = Cluster.node_object cl 1 in
      (* Healthy: ping succeeds (and warms the hint). *)
      (match Cluster.invoke cl ~from:0 target ~op:"ping" [] with
      | Ok [] -> ()
      | Ok _ | Error _ -> Alcotest.fail "healthy ping failed");
      Cluster.crash_node cl 1;
      (* Down: the heartbeat times out. *)
      expect_error "down node" Error.Timeout
        (Cluster.invoke cl ~from:0 ~timeout:(Time.ms 50) target ~op:"ping" []);
      Cluster.restart_node cl 1;
      (* The node object reboots under the same name. *)
      match Cluster.invoke cl ~from:0 target ~op:"ping" [] with
      | Ok [] -> ()
      | Ok _ | Error _ -> Alcotest.fail "rebooted ping failed")

(* A property: any sequence of incr operations issued from random nodes
   equals the counter value afterwards (per-object serial semantics
   with singleton classes). *)
let prop_counter_linearises =
  QCheck.Test.make ~name:"increments from random nodes all land" ~count:20
    QCheck.(pair (int_range 1 30) (int_range 0 1000))
    (fun (n_ops, seed) ->
      let cl = Cluster.default ~seed:(Int64.of_int (seed + 1)) ~n_nodes:3 () in
      Cluster.register_type cl counter_type;
      let rng = Splitmix.create (Int64.of_int seed) in
      let ok = ref false in
      let _ =
        Cluster.in_process cl (fun () ->
            match
              Cluster.create_object cl ~node:0 ~type_name:"counter2"
                (Value.Int 0)
            with
            | Error _ -> ()
            | Ok cap ->
              let ps =
                List.init n_ops (fun _ ->
                    Cluster.invoke_async cl ~from:(Splitmix.int rng 3) cap
                      ~op:"incr" [])
              in
              List.iter (fun p -> ignore (Promise.await p)) ps;
              ok :=
                Cluster.invoke cl ~from:0 cap ~op:"get" []
                = Ok [ Value.Int n_ops ])
      in
      Cluster.run cl;
      !ok)

(* ------------------------------------------------------------------ *)
(* Soak: sustained mixed traffic with node failures, restarts and
   migrations happening mid-flight.  The assertions are liveness and
   sanity, not exact counts: nothing may deadlock, every user finishes,
   and every surviving object remains reachable and consistent. *)

let test_soak_with_failures () =
  let cl = Cluster.default ~seed:2024L ~n_nodes:6 () in
  Cluster.register_type cl counter_type;
  let eng = Cluster.engine cl in
  let caps = ref [] in
  let successes = ref 0 and failures = ref 0 and finished_users = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        (* Twelve durable counters spread over the cluster. *)
        for i = 0 to 11 do
          let cap = new_counter cl ~node:(i mod 6) 0 in
          ignore
            (ok_or_fail "ckpt" (Cluster.invoke cl ~from:(i mod 6) cap ~op:"checkpoint" []));
          caps := cap :: !caps
        done;
        let caps_arr = Array.of_list !caps in
        (* One user per node issuing tolerant invocations. *)
        for u = 0 to 5 do
          let rng = Engine.fork_rng eng in
          ignore
            (Cluster.in_process cl ~name:(Printf.sprintf "soak%d" u)
               (fun () ->
                 for _ = 1 to 15 do
                   Engine.delay (Time.ms (10 + Splitmix.int rng 40));
                   let cap = caps_arr.(Splitmix.int rng 12) in
                   match
                     Cluster.invoke cl ~from:u ~timeout:(Time.ms 500) cap
                       ~op:"incr" []
                   with
                   | Ok _ -> incr successes
                   | Error _ -> incr failures
                 done;
                 incr finished_users))
        done;
        (* A meddler migrates objects while traffic flows. *)
        ignore
          (Cluster.in_process cl ~name:"meddler" (fun () ->
               for k = 0 to 5 do
                 Engine.delay (Time.ms 60);
                 ignore
                   (Cluster.move cl caps_arr.(k * 2) ~to_node:((k + 3) mod 6))
               done));
        (* Failure injection, scheduled relative to the end of setup so
           the population is in place when machines start dying. *)
        Engine.schedule eng ~after:(Time.ms 120) (fun () ->
            Cluster.crash_node cl 1);
        Engine.schedule eng ~after:(Time.ms 320) (fun () ->
            Cluster.restart_node cl 1);
        Engine.schedule eng ~after:(Time.ms 450) (fun () ->
            Cluster.crash_node cl 2);
        Engine.schedule eng ~after:(Time.ms 650) (fun () ->
            Cluster.restart_node cl 2))
  in
  Cluster.run cl;
  check_int "every user finished" 6 !finished_users;
  check_int "all attempts accounted" 90 (!successes + !failures);
  check_bool "most invocations succeeded" true (!successes >= 60);
  (* After the dust settles, every object must be reachable and hold a
     sane value. *)
  let sane = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        List.iter
          (fun cap ->
            match Cluster.invoke cl ~from:0 ~timeout:(Time.s 2) cap ~op:"get" [] with
            | Ok [ Value.Int n ] when n >= 0 && n <= 90 -> incr sane
            | Ok _ | Error _ -> ())
          !caps)
  in
  Cluster.run cl;
  check_int "all objects reachable and sane" 12 !sane

(* ------------------------------------------------------------------ *)
(* Frozen-replica cache *)

module Snapshot = Eden_obs.Snapshot
module Metrics = Eden_obs.Metrics

let cache_opts =
  { Cluster.default_options with Cluster.use_replica_cache = true }

let cache_counter cl name ~node =
  let snap = Cluster.metrics_snapshot cl in
  match Snapshot.find snap ~labels:[ ("node", string_of_int node) ] name with
  | Some (Metrics.Counter n) -> n
  | _ -> Alcotest.failf "missing counter %s" name

let test_cache_miss_then_hit () =
  with_cluster ~options:cache_opts (fun cl ->
      let cap = new_counter cl ~node:0 7 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      check_bool "first read is remote" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 7 ]);
      check_bool "miss recorded" true
        (cache_counter cl "eden.replica_cache.misses" ~node:1 >= 1);
      (* Let the background fetch install the local copy. *)
      Engine.delay (Time.ms 200);
      let remote_before = Cluster.stats_remote_invocations cl in
      check_bool "second read still correct" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 7 ]);
      check_int "served locally, no new remote invocation" remote_before
        (Cluster.stats_remote_invocations cl);
      check_int "hit recorded" 1
        (cache_counter cl "eden.replica_cache.hits" ~node:1))

let test_cache_off_by_default () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 3 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      for _ = 1 to 3 do
        check_bool "read" true
          (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 3 ])
      done;
      Engine.delay (Time.ms 200);
      check_int "no misses without the option" 0
        (cache_counter cl "eden.replica_cache.misses" ~node:1);
      check_int "no hits either" 0
        (cache_counter cl "eden.replica_cache.hits" ~node:1))

let test_cache_unfreeze_invalidates () =
  with_cluster ~options:cache_opts (fun cl ->
      let cap = new_counter cl ~node:0 1 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      check_bool "warm the cache" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 1 ]);
      Engine.delay (Time.ms 200);
      check_int "cache serving" 1
        (Cluster.invoke cl ~from:1 cap ~op:"get" []
         |> function Ok [ Value.Int n ] -> n | _ -> -1);
      (* The version bump: unfreeze broadcasts on the nack path and
         every cached copy of the old representation must go. *)
      ignore (ok_or_fail "unfreeze" (Cluster.unfreeze cl cap));
      Engine.delay (Time.ms 5);
      check_bool "invalidation recorded" true
        (cache_counter cl "eden.replica_cache.invalidations" ~node:1 >= 1);
      check_bool "mutable again" true
        (Cluster.invoke cl ~from:1 cap ~op:"incr" [] = Ok [ Value.Int 2 ]);
      (* A freeze-mutate cycle must never serve the stale cached 1. *)
      check_bool "fresh value read" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 2 ]))

let test_unfreeze_refused_with_replicas () =
  with_cluster (fun cl ->
      let cap = new_counter cl ~node:0 4 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      ignore (ok_or_fail "replicate" (Cluster.replicate cl cap ~to_node:2));
      (match Cluster.unfreeze cl cap with
      | Error (Error.Move_refused _) -> ()
      | Ok () -> Alcotest.fail "unfreeze succeeded with pinned replicas"
      | Error e ->
        Alcotest.failf "unexpected error: %s" (Error.to_string e));
      expect_error "still frozen" Error.Frozen_immutable
        (Cluster.invoke cl ~from:1 cap ~op:"incr" []);
      let weak = Capability.restrict cap Rights.invoke_only in
      expect_error "needs the checkpoint right"
        (Error.Rights_violation "unfreeze")
        (Cluster.unfreeze cl weak))

let test_stale_fetch_discarded () =
  (* A [Cache_data] delayed past the unfreeze version bump carries the
     pre-thaw representation and must be discarded on arrival, not
     installed: the invalidation broadcast bypasses the unicast fault
     injector and overtakes the delayed reply. *)
  with_cluster ~options:cache_opts (fun cl ->
      let cap = new_counter cl ~node:0 1 in
      (* A plain read before freezing plants a location hint on node 1
         so the later reads need no locate round (locate replies would
         be delayed too). *)
      check_bool "plant the hint" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 1 ]);
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      let plan =
        Eden_fault.Plan.make
          [
            {
              Eden_fault.Plan.at = Time.ms 0;
              action =
                Eden_fault.Plan.Break_link
                  {
                    src = 0;
                    dst = 1;
                    kind = Eden_fault.Plan.Delay (Time.ms 60);
                    p = 1.0;
                  };
            };
          ]
      in
      let ctl = Eden_fault.Controller.arm cl plan in
      (* The frozen-hinted reply starts a background fetch whose
         Cache_data will now trail ~60ms behind. *)
      check_bool "read the frozen value" true
        (Cluster.invoke cl ~from:1 ~timeout:(Time.s 2) cap ~op:"get" []
        = Ok [ Value.Int 1 ]);
      (* Give the Cache_fetch time to reach node 0 and be answered
         while the object is still frozen (the 60ms delay applies only
         to the 0->1 direction), then bump and mutate while the
         Cache_data reply is still in flight. *)
      Engine.delay (Time.ms 20);
      ignore (ok_or_fail "unfreeze" (Cluster.unfreeze cl cap));
      check_bool "mutate at home" true
        (Cluster.invoke cl ~from:0 cap ~op:"incr" [] = Ok [ Value.Int 2 ]);
      (* Let the stale payload arrive, then heal the link. *)
      Engine.delay (Time.ms 200);
      Eden_fault.Controller.disarm ctl;
      (* Were the stale replica installed, this read would be served
         locally from the pre-thaw representation (1). *)
      check_bool "no stale read after the bump" true
        (Cluster.invoke cl ~from:1 ~timeout:(Time.s 2) cap ~op:"get" []
        = Ok [ Value.Int 2 ]))

let test_unfreeze_spares_unrelated_inflight () =
  (* The version bump used to ride the nack path with a fresh request
     id from the home node's counter; sequence numbers are node-local,
     so on a receiving node it could collide with an unrelated pending
     request — spuriously nacking a live invocation or dying on a
     pending-kind mismatch.  It now travels as [Cache_invalidate] with
     no request id, so freeze/unfreeze cycles while another node holds
     pending request state must leave that state untouched. *)
  let cl = Cluster.default ~options:cache_opts ~n_nodes:3 () in
  Cluster.register_type cl counter_type;
  let inflight = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let frozen = new_counter cl ~node:0 7 in
        ignore (ok_or_fail "freeze" (Cluster.freeze cl frozen));
        let busy = new_counter cl ~node:2 5 in
        let _ =
          Cluster.in_process cl ~name:"slow-reader" (fun () ->
              inflight :=
                Some
                  (Cluster.invoke cl ~from:1 ~timeout:(Time.s 2) busy
                     ~op:"slow_get" []))
        in
        (* Let the reader finish its locate and park in the 20ms
           slow_get, then cycle so the home node's request-id counter
           sweeps the low sequence numbers node 1 is waiting on while
           its request is pending. *)
        Engine.delay (Time.ms 5);
        for _ = 1 to 5 do
          ignore (ok_or_fail "unfreeze" (Cluster.unfreeze cl frozen));
          ignore (ok_or_fail "freeze" (Cluster.freeze cl frozen));
          Engine.delay (Time.ms 2)
        done;
        Engine.delay (Time.ms 200))
  in
  Cluster.run cl;
  check_bool "in-flight invocation survived the version bumps" true
    (!inflight = Some (Ok [ Value.Int 5 ]));
  (* The bump must not be mistaken for a nack of the pending request
     (which would burn the retry budget and re-locate). *)
  check_int "no spurious nacks on the reading node" 0
    (cache_counter cl "eden.nacks" ~node:1)

let test_cache_cleared_on_crash () =
  with_cluster ~options:cache_opts (fun cl ->
      let cap = new_counter cl ~node:0 9 in
      ignore (ok_or_fail "freeze" (Cluster.freeze cl cap));
      ignore (ok_or_fail "warm" (Cluster.invoke cl ~from:1 cap ~op:"get" []));
      Engine.delay (Time.ms 200);
      Cluster.crash_node cl 1;
      Cluster.restart_node cl 1;
      (* The restarted node lost its volatile cache: the next read is
         remote again (a fresh miss), and still correct. *)
      let misses = cache_counter cl "eden.replica_cache.misses" ~node:1 in
      check_bool "read after restart" true
        (Cluster.invoke cl ~from:1 cap ~op:"get" [] = Ok [ Value.Int 9 ]);
      check_bool "fresh miss" true
        (cache_counter cl "eden.replica_cache.misses" ~node:1 > misses))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eden_kernel2"
    [
      ( "destroy",
        [
          Alcotest.test_case "active object" `Quick test_destroy_active;
          Alcotest.test_case "purges checkpoints" `Quick
            test_destroy_purges_checkpoints;
          Alcotest.test_case "requires right" `Quick
            test_destroy_requires_right;
          Alcotest.test_case "missing object" `Quick
            test_destroy_missing_object;
          Alcotest.test_case "kills replicas" `Quick
            test_destroy_kills_replicas;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "locate storm regression" `Quick
            test_locate_storm_regression;
          Alcotest.test_case "invoke during move" `Quick
            test_invoke_during_move_completes;
          Alcotest.test_case "subprocess" `Quick test_subprocess;
          Alcotest.test_case "set_repr OOM" `Quick
            test_set_repr_out_of_memory;
          Alcotest.test_case "frozen reincarnation" `Quick
            test_frozen_survives_reincarnation;
          Alcotest.test_case "crash/restart idempotent" `Quick
            test_double_crash_restart_idempotent;
          Alcotest.test_case "code sharing" `Quick
            test_many_objects_same_type_share_code;
          Alcotest.test_case "stats monotone" `Quick test_stats_monotone;
          qt prop_counter_linearises;
        ] );
      ( "node objects",
        [
          Alcotest.test_case "timeout bounds locate" `Quick
            test_timeout_bounds_locate;
          Alcotest.test_case "info" `Quick test_node_object_info;
          Alcotest.test_case "population" `Quick
            test_node_object_reflects_population;
          Alcotest.test_case "heartbeat" `Quick test_node_object_heartbeat;
        ] );
      ( "replica cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "off by default" `Quick test_cache_off_by_default;
          Alcotest.test_case "unfreeze invalidates" `Quick
            test_cache_unfreeze_invalidates;
          Alcotest.test_case "unfreeze refused with replicas" `Quick
            test_unfreeze_refused_with_replicas;
          Alcotest.test_case "stale in-flight fetch discarded" `Quick
            test_stale_fetch_discarded;
          Alcotest.test_case "unfreeze spares unrelated in-flight requests"
            `Quick test_unfreeze_spares_unrelated_inflight;
          Alcotest.test_case "cleared on crash" `Quick
            test_cache_cleared_on_crash;
        ] );
      ( "soak",
        [ Alcotest.test_case "failures + migration" `Quick test_soak_with_failures ]
      );
    ]
