(* Unit and property tests for Eden_util. *)

open Eden_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_constructors () =
  check_int "us" 1_000 (Time.to_ns (Time.us 1));
  check_int "ms" 1_000_000 (Time.to_ns (Time.ms 1));
  check_int "s" 1_000_000_000 (Time.to_ns (Time.s 1));
  check_int "of_sec" 1_500_000_000 (Time.to_ns (Time.of_sec 1.5));
  check_int "zero" 0 (Time.to_ns Time.zero)

let test_time_arith () =
  let a = Time.ms 3 and b = Time.ms 1 in
  check_int "add" 4_000_000 (Time.to_ns (Time.add a b));
  check_int "diff" 2_000_000 (Time.to_ns (Time.diff a b));
  check_int "scale" 9_000_000 (Time.to_ns (Time.scale a 3));
  check_int "divide" 1_500_000 (Time.to_ns (Time.divide a 2));
  check_int "mul_float" 4_500_000 (Time.to_ns (Time.mul_float a 1.5));
  check_bool "lt" true Time.(b < a);
  check_bool "ge" true Time.(a >= a);
  check_int "min" (Time.to_ns b) (Time.to_ns (Time.min a b));
  check_int "max" (Time.to_ns a) (Time.to_ns (Time.max a b))

let test_time_invalid () =
  Alcotest.check_raises "negative ns" (Invalid_argument "Time.ns: negative")
    (fun () -> ignore (Time.ns (-1)));
  Alcotest.check_raises "negative diff"
    (Invalid_argument "Time.diff: negative result") (fun () ->
      ignore (Time.diff (Time.ms 1) (Time.ms 2)))

let test_time_pp () =
  check_string "ns" "999ns" (Time.to_string (Time.ns 999));
  check_string "us" "1.500us" (Time.to_string (Time.ns 1_500));
  check_string "ms" "2.000ms" (Time.to_string (Time.ms 2));
  check_string "s" "1.000s" (Time.to_string (Time.s 1));
  check_string "zero" "0s" (Time.to_string Time.zero)

(* ------------------------------------------------------------------ *)
(* Splitmix *)

let test_splitmix_deterministic () =
  let a = Splitmix.create 42L and b = Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next64 a) (Splitmix.next64 b)
  done

let test_splitmix_copy_independent () =
  let a = Splitmix.create 7L in
  let b = Splitmix.copy a in
  let va = Splitmix.next64 a in
  let vb = Splitmix.next64 b in
  Alcotest.(check int64) "copy repeats" va vb;
  ignore (Splitmix.next64 a);
  (* b is one draw behind now; next draws differ in general *)
  check_bool "copies do not alias" true (Splitmix.next64 b = va || true)

let test_splitmix_split_differs () =
  let g = Splitmix.create 1L in
  let c1 = Splitmix.split g in
  let c2 = Splitmix.split g in
  check_bool "children differ" false (Splitmix.next64 c1 = Splitmix.next64 c2)

let test_splitmix_bounds () =
  let g = Splitmix.create 3L in
  for _ = 1 to 1_000 do
    let v = Splitmix.int g 7 in
    check_bool "int in range" true (v >= 0 && v < 7);
    let w = Splitmix.int_in g (-3) 3 in
    check_bool "int_in range" true (w >= -3 && w <= 3);
    let f = Splitmix.float g 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5);
    let e = Splitmix.exponential g 1.0 in
    check_bool "exp non-negative" true (e >= 0.0)
  done

let test_splitmix_invalid () =
  let g = Splitmix.create 1L in
  Alcotest.check_raises "int 0"
    (Invalid_argument "Splitmix.int: bound must be positive") (fun () ->
      ignore (Splitmix.int g 0));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Splitmix.int_in: empty range") (fun () ->
      ignore (Splitmix.int_in g 2 1));
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Splitmix.choose: empty array") (fun () ->
      ignore (Splitmix.choose g [||]))

let test_splitmix_coin () =
  let g = Splitmix.create 11L in
  check_bool "p=1" true (Splitmix.coin g 1.0);
  check_bool "p=0" false (Splitmix.coin g 0.0);
  let heads = ref 0 in
  for _ = 1 to 10_000 do
    if Splitmix.coin g 0.3 then incr heads
  done;
  check_bool "p=0.3 plausible" true (!heads > 2_500 && !heads < 3_500)

let test_splitmix_shuffle_permutes () =
  let g = Splitmix.create 5L in
  let a = Array.init 50 Fun.id in
  Splitmix.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pqueue_order () =
  let h = Pqueue.create ~cmp:Int.compare in
  List.iter (Pqueue.push h) [ 5; 1; 4; 1; 3 ];
  let out = ref [] in
  Pqueue.drain h (fun v -> out := v :: !out);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (List.rev !out)

let test_pqueue_fifo_ties () =
  (* Equal keys must pop in insertion order. *)
  let h = Pqueue.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Pqueue.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let labels = ref [] in
  Pqueue.drain h (fun (_, l) -> labels := l :: !labels);
  Alcotest.(check (list string))
    "fifo among equals"
    [ "z"; "a"; "b"; "c" ]
    (List.rev !labels)

let test_pqueue_basics () =
  let h = Pqueue.create ~cmp:Int.compare in
  check_bool "empty" true (Pqueue.is_empty h);
  Alcotest.(check (option int)) "peek empty" None (Pqueue.peek h);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop h);
  Pqueue.push h 9;
  Alcotest.(check (option int)) "peek" (Some 9) (Pqueue.peek h);
  check_int "length" 1 (Pqueue.length h);
  Pqueue.clear h;
  check_bool "cleared" true (Pqueue.is_empty h);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Pqueue.pop_exn: empty heap") (fun () ->
      ignore (Pqueue.pop_exn h))

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Pqueue.create ~cmp:Int.compare in
      List.iter (Pqueue.push h) xs;
      let out = ref [] in
      Pqueue.drain h (fun v -> out := v :: !out);
      List.rev !out = List.sort Int.compare xs)

(* ------------------------------------------------------------------ *)
(* Fifo *)

let test_fifo_order () =
  let q = Fifo.create () in
  for i = 1 to 100 do
    Fifo.push_exn q i
  done;
  Alcotest.(check (list int))
    "fifo order"
    (List.init 100 (fun i -> i + 1))
    (Fifo.to_list q);
  for i = 1 to 100 do
    check_int "pop order" i (Fifo.pop_exn q)
  done;
  check_bool "empty after" true (Fifo.is_empty q)

let test_fifo_wraparound () =
  let q = Fifo.create () in
  (* Force head to wander around the ring. *)
  for round = 0 to 20 do
    for i = 0 to 5 do
      Fifo.push_exn q ((round * 10) + i)
    done;
    for i = 0 to 5 do
      check_int "wrap pop" ((round * 10) + i) (Fifo.pop_exn q)
    done
  done

let test_fifo_capacity () =
  let q = Fifo.create ~capacity:2 () in
  check_bool "push 1" true (Fifo.push q 1);
  check_bool "push 2" true (Fifo.push q 2);
  check_bool "full" true (Fifo.is_full q);
  check_bool "push refused" false (Fifo.push q 3);
  Alcotest.(check (option int)) "capacity" (Some 2) (Fifo.capacity q);
  check_int "pop" 1 (Fifo.pop_exn q);
  check_bool "room again" true (Fifo.push q 3);
  Alcotest.(check (list int)) "contents" [ 2; 3 ] (Fifo.to_list q)

let test_fifo_invalid () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Fifo.create: capacity must be positive") (fun () ->
      ignore (Fifo.create ~capacity:0 () : int Fifo.t));
  let q = Fifo.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Fifo.pop_exn: empty")
    (fun () -> ignore (Fifo.pop_exn q : int))

let prop_fifo_preserves_order =
  QCheck.Test.make ~name:"fifo preserves order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Fifo.create () in
      List.iter (Fifo.push_exn q) xs;
      Fifo.to_list q = xs)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_int "count" 8 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "total" 40.0 (Stats.total s)

let test_stats_percentiles () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (Float.of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.0)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev empty" 0.0 (Stats.stddev s);
  Alcotest.check_raises "min empty"
    (Invalid_argument "Stats.min_value: empty sample") (fun () ->
      ignore (Stats.min_value s));
  (* An empty sample has no order statistics: percentile (and median,
     which is percentile 50) raise rather than invent a 0.0 or nan
     that would flow into comparisons unnoticed.  This is the
     documented boundary — callers with maybe-empty windows must
     check [count] first. *)
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile s 99.0));
  Alcotest.check_raises "median empty"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.median s));
  (* The raise happens before the range check: still the empty-sample
     error even for an out-of-range p. *)
  Alcotest.check_raises "empty beats out-of-range"
    (Invalid_argument "Stats.percentile: empty sample") (fun () ->
      ignore (Stats.percentile s 200.0))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.0;
  Stats.add b 3.0;
  let m = Stats.merge a b in
  check_int "merged count" 2 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.0 (Stats.mean m)

let test_stats_percentile_boundaries () =
  (* Nearest-rank on a single sample: every percentile is that sample. *)
  let s = Stats.create () in
  Stats.add s 7.5;
  Alcotest.(check (float 1e-9)) "p0 of one" 7.5 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50 of one" 7.5 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p100 of one" 7.5 (Stats.percentile s 100.0);
  (* p=0 is the minimum and p=100 the maximum, on any sample. *)
  let s2 = Stats.create () in
  List.iter (Stats.add s2) [ 9.0; 1.0; 4.0 ];
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Stats.percentile s2 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 9.0 (Stats.percentile s2 100.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: out of range") (fun () ->
      ignore (Stats.percentile s2 100.5))

let test_stats_merge_preserves_samples () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 5.0 ];
  List.iter (Stats.add b) [ 2.0; 8.0; 9.0 ];
  let m = Stats.merge a b in
  (* Every sample from both sides is present: the extremes come from
     different inputs and the exact percentiles walk the full union. *)
  check_int "union count" 5 (Stats.count m);
  Alcotest.(check (float 1e-9)) "union total" 25.0 (Stats.total m);
  Alcotest.(check (float 1e-9)) "min from a" 1.0 (Stats.min_value m);
  Alcotest.(check (float 1e-9)) "max from b" 9.0 (Stats.max_value m);
  Alcotest.(check (float 1e-9)) "median of union" 5.0 (Stats.median m);
  (* Merge is a fresh statistic: the inputs keep their own samples. *)
  check_int "a untouched" 2 (Stats.count a);
  check_int "b untouched" 3 (Stats.count b);
  let e = Stats.merge (Stats.create ()) a in
  check_int "merge with empty" 2 (Stats.count e);
  Alcotest.(check (float 1e-9)) "empty merge mean" 3.0 (Stats.mean e)

let test_histogram_edges () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  (* The range is half-open [lo, hi): lo itself is in-range, hi is
     overflow, and a bucket boundary belongs to the upper bucket. *)
  List.iter (Stats.Histogram.add h) [ 0.0; 1.0; 9.999; 10.0; -0.001 ];
  let counts = Stats.Histogram.bucket_counts h in
  check_int "lo lands in bucket 0" 1 counts.(0);
  check_int "boundary rounds up" 1 counts.(1);
  check_int "just below hi" 1 counts.(9);
  check_int "hi overflows" 1 (Stats.Histogram.overflow h);
  check_int "just below lo underflows" 1 (Stats.Histogram.underflow h);
  check_int "all accounted" 5 (Stats.Histogram.total h)

let test_stats_add_after_sort () =
  let s = Stats.create () in
  Stats.add s 5.0;
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Stats.add s 1.0;
  Alcotest.(check (float 1e-9)) "min after re-add" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max after re-add" 5.0 (Stats.max_value s)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.0; 10.0; 42.0 ];
  let counts = Stats.Histogram.bucket_counts h in
  check_int "bucket 0" 1 counts.(0);
  check_int "bucket 1" 2 counts.(1);
  check_int "bucket 9" 1 counts.(9);
  check_int "underflow" 1 (Stats.Histogram.underflow h);
  check_int "overflow" 2 (Stats.Histogram.overflow h);
  check_int "total" 7 (Stats.Histogram.total h)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean within min..max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-9 && m <= Stats.max_value s +. 1e-9)

let prop_stats_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.percentile s 25.0 <= Stats.percentile s 75.0)

(* ------------------------------------------------------------------ *)
(* Table *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_table_render () =
  let t =
    Table.create ~title:"demo"
      ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  check_bool "has title" true (contains out "== demo ==");
  check_bool "has header" true (contains out "name")

let test_table_alignment () =
  let t =
    Table.create ~title:"align"
      ~columns:[ ("ll", Table.Left); ("rr", Table.Right) ]
  in
  Table.add_row t [ "ab"; "1" ];
  Table.add_row t [ "c"; "22" ];
  let out = Table.render t in
  check_bool "left padded" true (contains out "| c  |");
  check_bool "right padded" true (contains out "|  1 |")

let test_table_invalid () =
  let t = Table.create ~title:"x" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  check_string "time cell" "1.000ms" (Table.cell_time (Time.ms 1));
  check_string "float cell" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check_string "pct cell" "12.5%" (Table.cell_pct 0.125);
  check_string "int cell" "42" (Table.cell_int 42)

(* ------------------------------------------------------------------ *)
(* Idgen *)

let test_idgen () =
  let g = Idgen.create () in
  check_int "first" 0 (Idgen.next g);
  check_int "second" 1 (Idgen.next g);
  check_int "peek" 2 (Idgen.peek g);
  check_int "issued" 2 (Idgen.issued g);
  let g2 = Idgen.create ~first:100 () in
  check_int "custom first" 100 (Idgen.next g2)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eden_util"
    [
      ( "time",
        [
          Alcotest.test_case "constructors" `Quick test_time_constructors;
          Alcotest.test_case "arithmetic" `Quick test_time_arith;
          Alcotest.test_case "invalid" `Quick test_time_invalid;
          Alcotest.test_case "pretty-printing" `Quick test_time_pp;
        ] );
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "copy" `Quick test_splitmix_copy_independent;
          Alcotest.test_case "split" `Quick test_splitmix_split_differs;
          Alcotest.test_case "bounds" `Quick test_splitmix_bounds;
          Alcotest.test_case "invalid" `Quick test_splitmix_invalid;
          Alcotest.test_case "coin" `Quick test_splitmix_coin;
          Alcotest.test_case "shuffle" `Quick test_splitmix_shuffle_permutes;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "basics" `Quick test_pqueue_basics;
          qt prop_pqueue_sorts;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "wraparound" `Quick test_fifo_wraparound;
          Alcotest.test_case "capacity" `Quick test_fifo_capacity;
          Alcotest.test_case "invalid" `Quick test_fifo_invalid;
          qt prop_fifo_preserves_order;
        ] );
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "percentile boundaries" `Quick
            test_stats_percentile_boundaries;
          Alcotest.test_case "merge preserves samples" `Quick
            test_stats_merge_preserves_samples;
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "add after sort" `Quick test_stats_add_after_sort;
          Alcotest.test_case "histogram" `Quick test_histogram;
          qt prop_stats_mean_bounded;
          qt prop_stats_percentile_monotone;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "invalid" `Quick test_table_invalid;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ("idgen", [ Alcotest.test_case "sequence" `Quick test_idgen ]);
    ]
