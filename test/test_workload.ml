(* Tests for the workload generators and the location policy. *)

open Eden_util
open Eden_kernel
open Eden_sim
open Eden_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_spec =
  {
    Synthetic.default_spec with
    Synthetic.objects_per_node = 2;
    users_per_node = 2;
    requests_per_user = 10;
    locality = 0.5;
    payload_bytes = 128;
    compute_per_request = Time.ms 2;
    think_mean_s = 0.01;
  }

let test_synthetic_eden_completes () =
  let cl = Cluster.default ~n_nodes:3 () in
  let r = Synthetic.run_eden cl small_spec in
  let expect = 3 * 2 * 10 in
  check_int "all requests" expect r.Synthetic.completed;
  check_int "no failures" 0 r.Synthetic.failed;
  check_int "latency samples" expect (Stats.count r.Synthetic.latency);
  check_bool "throughput positive" true (r.Synthetic.throughput > 0.0)

let test_synthetic_locality_helps () =
  let run locality =
    let cl = Cluster.default ~seed:7L ~n_nodes:4 () in
    let r = Synthetic.run_eden cl { small_spec with Synthetic.locality } in
    Stats.mean r.Synthetic.latency
  in
  let all_local = run 1.0 in
  let all_remote = run 0.0 in
  check_bool "local requests faster on average" true (all_local < all_remote)

let test_synthetic_central_placement () =
  let cl = Cluster.default ~n_nodes:3 () in
  let r =
    Synthetic.run_eden ~placement:(Synthetic.Central_on 0) cl small_spec
  in
  check_int "all requests" (3 * 2 * 10) r.Synthetic.completed;
  (* Users on nodes 1 and 2 always cross the network. *)
  check_bool "plenty of remote traffic" true
    (Cluster.stats_remote_invocations cl >= 2 * 2 * 10)

let test_synthetic_rpc_completes () =
  let fabric = Eden_baseline.Rpc.default ~n_nodes:3 () in
  let r = Synthetic.run_rpc fabric small_spec in
  check_int "all requests" (3 * 2 * 10) r.Synthetic.completed;
  check_int "no failures" 0 r.Synthetic.failed

let test_synthetic_validation () =
  let cl = Cluster.default ~n_nodes:2 () in
  Alcotest.check_raises "bad locality"
    (Invalid_argument "Synthetic: locality out of range") (fun () ->
      ignore
        (Synthetic.run_eden cl { small_spec with Synthetic.locality = 1.5 }))

(* ------------------------------------------------------------------ *)
(* Mail *)

let test_mail_roundtrip () =
  let cl = Cluster.default ~n_nodes:3 () in
  Mail.register_types cl;
  let setup = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match Mail.build cl ~registry_node:0 ~users_per_node:2 with
        | Ok s -> setup := Some s
        | Error e -> Alcotest.failf "build: %s" (Error.to_string e))
  in
  Cluster.run cl;
  let setup = Option.get !setup in
  check_int "six users" 6 (List.length setup.Mail.mailboxes);
  let r = Mail.run cl setup ~messages_per_user:5 ~think_mean_s:0.01 in
  check_int "all sent" 30 r.Mail.sent;
  check_int "no failures" 0 r.Mail.send_failures;
  check_int "all delivered" 30 r.Mail.fetched;
  check_bool "latency recorded" true (Stats.count r.Mail.send_latency = 30)

(* ------------------------------------------------------------------ *)
(* Compile (edit/compile development workload) *)

let test_compile_roundtrip () =
  let cl = Cluster.default ~n_nodes:3 () in
  Eden_efs.Schema.register cl;
  let compiler = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        match Compile.install cl ~node:0 ~replicate_to:[ 1; 2 ] () with
        | Ok c -> compiler := Some c
        | Error e -> Alcotest.failf "install: %s" (Error.to_string e))
  in
  Cluster.run cl;
  let compiler = Option.get !compiler in
  Alcotest.(check (list int)) "replicas installed" [ 1; 2 ]
    (List.sort Int.compare (Cluster.replica_sites cl compiler));
  let r =
    Compile.run cl ~compiler ~programmers:[ 1; 2 ] ~cycles:3
      ~source_bytes:2_048
  in
  check_int "edits" 6 r.Compile.edits;
  check_int "compiles" 6 r.Compile.compiles;
  check_int "no failures" 0 r.Compile.failures;
  check_bool "compile latency measured" true
    (Stats.count r.Compile.compile_latency = 6)

let test_compile_reads_latest_source () =
  (* The compiler compiles the CURRENT version: object-code size must
     track the source the last edit installed. *)
  let cl = Cluster.default ~n_nodes:2 () in
  Eden_efs.Schema.register cl;
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let compiler =
          match Compile.install cl ~node:0 () with
          | Ok c -> c
          | Error e -> Alcotest.failf "install: %s" (Error.to_string e)
        in
        let root = Result.get_ok (Eden_efs.Client.make_root cl ~node:1) in
        let file =
          Result.get_ok
            (Eden_efs.Client.create_file cl ~from:1 ~dir:root ~name:"s"
               ~node:1 ~content:(Value.Blob 3_000) ())
        in
        let compile () =
          match
            Cluster.invoke cl ~from:1 compiler ~op:"compile"
              [ Value.Cap file ]
          with
          | Ok [ Value.Int n ] -> n
          | Ok _ | Error _ -> -1
        in
        let small = compile () in
        let t = Eden_efs.Txn.begin_txn cl ~from:1 ~mode:Eden_efs.Txn.Locking in
        ignore (Eden_efs.Txn.write t file (Value.Blob 30_000));
        ignore (Eden_efs.Txn.commit t);
        let large = compile () in
        outcome := Some (small, large))
  in
  Cluster.run cl;
  match !outcome with
  | Some (small, large) ->
    check_int "small source" 1_000 small;
    check_int "large source" 10_000 large
  | None -> Alcotest.fail "driver did not run"

(* ------------------------------------------------------------------ *)
(* Gateway (foreign machines, paper sec. 2) *)

let upcase_service args =
  match args with
  | [ Value.Str s ] -> Ok [ Value.Str (String.uppercase_ascii s) ]
  | _ -> Error (Error.Bad_arguments "expected one string")

let test_gateway_roundtrip () =
  let cl = Cluster.default ~n_nodes:3 () in
  let outcome = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        let gw =
          match
            Gateway.install cl ~node:0 ~name:"mainframe"
              ~service:upcase_service ~round_trip:(Time.ms 30) ()
          with
          | Ok c -> c
          | Error e -> Alcotest.failf "install: %s" (Error.to_string e)
        in
        (* Invocable from any node: the object-like interface. *)
        let eng = Cluster.engine cl in
        let t0 = Engine.now eng in
        let r = Cluster.invoke cl ~from:2 gw ~op:"request" [ Value.Str "job" ] in
        outcome := Some (r, Time.to_ns (Time.diff (Engine.now eng) t0)))
  in
  Cluster.run cl;
  match !outcome with
  | Some (Ok [ Value.Str "JOB" ], elapsed) ->
    check_bool "line delay included" true (elapsed >= 30_000_000)
  | Some _ -> Alcotest.fail "wrong gateway reply"
  | None -> Alcotest.fail "driver did not run"

let test_gateway_serial_line () =
  (* A single line serialises concurrent requests; two lines overlap
     them. *)
  let run lines =
    let cl = Cluster.default ~n_nodes:2 () in
    let elapsed = ref 0 in
    let _ =
      Cluster.in_process cl (fun () ->
          let gw =
            Result.get_ok
              (Gateway.install cl ~node:0 ~name:"printer"
                 ~service:(fun _ -> Ok [])
                 ~round_trip:(Time.ms 50) ~lines ())
          in
          let eng = Cluster.engine cl in
          let t0 = Engine.now eng in
          let ps =
            List.init 2 (fun _ ->
                Cluster.invoke_async cl ~from:1 gw ~op:"request" [])
          in
          List.iter (fun p -> ignore (Eden_sim.Promise.await p)) ps;
          elapsed := Time.to_ns (Time.diff (Engine.now eng) t0))
    in
    Cluster.run cl;
    !elapsed
  in
  let serial = run 1 and parallel = run 2 in
  check_bool "one line serialises (>=100ms)" true (serial >= 100_000_000);
  check_bool "two lines overlap (<100ms)" true (parallel < 100_000_000)

let test_gateway_validation () =
  Alcotest.check_raises "zero lines"
    (Invalid_argument "Gateway: lines must be positive") (fun () ->
      ignore
        (Gateway.gateway_type ~name:"x" ~service:(fun _ -> Ok [])
           ~round_trip:Time.zero ~lines:0 ()))

(* ------------------------------------------------------------------ *)
(* Policy *)

let counter_type =
  let open Api in
  Typemgr.make_exn ~name:"p_counter"
    [
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
    ]

let test_balance_once () =
  let cl = Cluster.default ~n_nodes:3 () in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  let moved = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        for _ = 1 to 6 do
          match
            Cluster.create_object cl ~node:0 ~type_name:"p_counter"
              (Value.Int 0)
          with
          | Ok c -> caps := c :: !caps
          | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
        done;
        moved := Policy.balance_once cl ~managed:!caps)
  in
  Cluster.run cl;
  check_int "moved four objects" 4 !moved;
  let loads = Policy.managed_load cl ~managed:!caps in
  List.iter (fun (_, c) -> check_int "two each" 2 c) loads

(* Regression: a capability the balancer holds without [Kernel_move]
   cannot be migrated.  The old loop always retried the first managed
   object on the hot node and stopped at the first refusal, so one
   pinned object wedged the whole balancer. *)
let test_balance_skips_pinned () =
  let cl = Cluster.default ~n_nodes:3 () in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  let moved = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        for _ = 1 to 6 do
          match
            Cluster.create_object cl ~node:0 ~type_name:"p_counter"
              (Value.Int 0)
          with
          | Ok c -> caps := !caps @ [ c ]
          | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
        done;
        (* Pin the first managed object by dropping its move right. *)
        let managed =
          match !caps with
          | first :: rest -> Capability.restrict first Rights.invoke_only :: rest
          | [] -> assert false
        in
        moved := Policy.balance_once cl ~managed)
  in
  Cluster.run cl;
  check_bool "pinned object did not wedge the balancer" true (!moved >= 3);
  let loads = Policy.managed_load cl ~managed:!caps in
  List.iter
    (fun (n, c) ->
      check_bool
        (Printf.sprintf "node %d balanced (load %d)" n c)
        true
        (c >= 1 && c <= 3))
    loads

let test_balance_skips_downed_nodes () =
  let cl = Cluster.default ~n_nodes:3 () in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  let _ =
    Cluster.in_process cl (fun () ->
        for _ = 1 to 4 do
          match
            Cluster.create_object cl ~node:0 ~type_name:"p_counter"
              (Value.Int 0)
          with
          | Ok c -> caps := c :: !caps
          | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
        done)
  in
  Cluster.run cl;
  Cluster.crash_node cl 2;
  let _ =
    Cluster.in_process cl (fun () ->
        ignore (Policy.balance_once cl ~managed:!caps))
  in
  Cluster.run cl;
  let loads = Policy.managed_load cl ~managed:!caps in
  check_int "only two nodes considered" 2 (List.length loads);
  List.iter (fun (_, c) -> check_int "two each" 2 c) loads

let test_balancer_process () =
  let cl = Cluster.default ~n_nodes:2 () in
  Cluster.register_type cl counter_type;
  let caps = ref [] in
  let _ =
    Cluster.in_process cl (fun () ->
        for _ = 1 to 4 do
          match
            Cluster.create_object cl ~node:0 ~type_name:"p_counter"
              (Value.Int 0)
          with
          | Ok c -> caps := c :: !caps
          | Error e -> Alcotest.failf "create: %s" (Error.to_string e)
        done;
        ignore
          (Policy.spawn_balancer cl ~period:(Time.ms 50) ~rounds:2
             ~managed:!caps))
  in
  Cluster.run cl;
  let loads = Policy.managed_load cl ~managed:!caps in
  List.iter (fun (_, c) -> check_int "balanced" 2 c) loads

let () =
  Alcotest.run "eden_workload"
    [
      ( "synthetic",
        [
          Alcotest.test_case "eden completes" `Quick
            test_synthetic_eden_completes;
          Alcotest.test_case "locality helps" `Quick
            test_synthetic_locality_helps;
          Alcotest.test_case "central placement" `Quick
            test_synthetic_central_placement;
          Alcotest.test_case "rpc completes" `Quick
            test_synthetic_rpc_completes;
          Alcotest.test_case "validation" `Quick test_synthetic_validation;
        ] );
      ("mail", [ Alcotest.test_case "roundtrip" `Quick test_mail_roundtrip ]);
      ( "compile",
        [
          Alcotest.test_case "roundtrip" `Quick test_compile_roundtrip;
          Alcotest.test_case "reads latest source" `Quick
            test_compile_reads_latest_source;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "roundtrip" `Quick test_gateway_roundtrip;
          Alcotest.test_case "serial line" `Quick test_gateway_serial_line;
          Alcotest.test_case "validation" `Quick test_gateway_validation;
        ] );
      ( "policy",
        [
          Alcotest.test_case "balance once" `Quick test_balance_once;
          Alcotest.test_case "skips pinned objects" `Quick
            test_balance_skips_pinned;
          Alcotest.test_case "skips downed nodes" `Quick
            test_balance_skips_downed_nodes;
          Alcotest.test_case "balancer process" `Quick test_balancer_process;
        ] );
    ]
