(* Unit tests for the kernel's pure data modules: names, rights,
   capabilities, values, errors, reliability levels, invocation-class
   validation, type-manager construction, message sizing and the
   handler-side Api helpers. *)

open Eden_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Name *)

let test_name_basics () =
  let n = Name.make ~birth_node:3 ~serial:17 in
  check_int "birth node" 3 (Name.birth_node n);
  check_int "serial" 17 (Name.serial n);
  check_string "printed" "obj<3.17>" (Name.to_string n);
  check_bool "equal self" true (Name.equal n n);
  check_bool "differs by serial" false
    (Name.equal n (Name.make ~birth_node:3 ~serial:18));
  check_bool "differs by node" false
    (Name.equal n (Name.make ~birth_node:4 ~serial:17));
  Alcotest.check_raises "negative" (Invalid_argument "Name.make: negative field")
    (fun () -> ignore (Name.make ~birth_node:(-1) ~serial:0))

let test_name_ordering_and_table () =
  let a = Name.make ~birth_node:0 ~serial:5 in
  let b = Name.make ~birth_node:1 ~serial:0 in
  check_bool "node dominates" true (Name.compare a b < 0);
  let tbl = Name.Table.create 4 in
  Name.Table.replace tbl a "a";
  Name.Table.replace tbl b "b";
  Alcotest.(check (option string)) "lookup" (Some "a") (Name.Table.find_opt tbl a);
  Name.Table.remove tbl a;
  Alcotest.(check (option string)) "removed" None (Name.Table.find_opt tbl a)

(* ------------------------------------------------------------------ *)
(* Rights *)

let test_rights_sets () =
  let r = Rights.of_list [ Rights.Invoke; Rights.Aux 3; Rights.Kernel_move ] in
  check_bool "has invoke" true (Rights.mem Rights.Invoke r);
  check_bool "has aux3" true (Rights.mem (Rights.Aux 3) r);
  check_bool "lacks aux4" false (Rights.mem (Rights.Aux 4) r);
  check_bool "subset of all" true (Rights.subset r Rights.all);
  check_bool "all not subset" false (Rights.subset Rights.all r);
  check_bool "none subset of anything" true (Rights.subset Rights.none r);
  let without = Rights.remove (Rights.Aux 3) r in
  check_bool "removed" false (Rights.mem (Rights.Aux 3) without);
  check_bool "others kept" true (Rights.mem Rights.Invoke without)

let test_rights_algebra () =
  let a = Rights.of_list [ Rights.Invoke; Rights.Aux 0 ] in
  let b = Rights.of_list [ Rights.Aux 0; Rights.Kernel_grant ] in
  let u = Rights.union a b and i = Rights.inter a b in
  check_bool "union holds all three" true
    (Rights.mem Rights.Invoke u
    && Rights.mem (Rights.Aux 0) u
    && Rights.mem Rights.Kernel_grant u);
  check_bool "intersection is aux0 only" true
    (Rights.equal i (Rights.of_list [ Rights.Aux 0 ]));
  check_int "roundtrip via to_list" 3 (List.length (Rights.to_list u));
  Alcotest.check_raises "aux out of range"
    (Invalid_argument "Rights: Aux index out of range") (fun () ->
      ignore (Rights.of_list [ Rights.Aux 12 ]))

(* ------------------------------------------------------------------ *)
(* Capability *)

let test_capability_restrict () =
  let name = Name.make ~birth_node:0 ~serial:1 in
  let full = Capability.make name Rights.all in
  let weak = Capability.restrict full Rights.invoke_only in
  check_bool "same object" true (Capability.same_object full weak);
  check_bool "not equal" false (Capability.equal full weak);
  check_bool "weak permits invoke" true
    (Capability.permits weak Rights.invoke_only);
  check_bool "weak lacks move" false
    (Capability.permits weak (Rights.of_list [ Rights.Kernel_move ]));
  (* Restriction can only shrink: restricting the weak cap by ALL
     rights yields the weak cap again. *)
  check_bool "cannot amplify" true
    (Capability.equal weak (Capability.restrict weak Rights.all))

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_sizes () =
  check_int "unit" 1 (Value.size_bytes Value.Unit);
  check_int "int" 8 (Value.size_bytes (Value.Int 5));
  check_int "str" (4 + 5) (Value.size_bytes (Value.Str "hello"));
  check_int "cap" 16
    (Value.size_bytes
       (Value.Cap (Capability.make (Name.make ~birth_node:0 ~serial:0) Rights.none)));
  check_int "blob" 1024 (Value.size_bytes (Value.Blob 1024));
  check_int "pair" (2 + 8 + 1)
    (Value.size_bytes (Value.Pair (Value.Int 0, Value.Unit)));
  check_int "list framing" (4 + 8 + 8)
    (Value.size_bytes (Value.List [ Value.Int 1; Value.Int 2 ]));
  check_int "list_size_bytes" 16
    (Value.list_size_bytes [ Value.Int 1; Value.Int 2 ])

let test_value_accessors () =
  check_bool "to_int ok" true (Value.to_int (Value.Int 3) = Ok 3);
  check_bool "to_int err" true (Result.is_error (Value.to_int Value.Unit));
  check_bool "to_str ok" true (Value.to_str (Value.Str "x") = Ok "x");
  check_bool "to_bool ok" true (Value.to_bool (Value.Bool true) = Ok true);
  check_bool "to_pair ok" true
    (Value.to_pair (Value.Pair (Value.Int 1, Value.Int 2))
    = Ok (Value.Int 1, Value.Int 2));
  check_bool "to_list ok" true (Value.to_list (Value.List []) = Ok [])

let test_value_caps_extraction () =
  let cap i =
    Capability.make (Name.make ~birth_node:0 ~serial:i) Rights.all
  in
  let v =
    Value.List
      [
        Value.Cap (cap 1);
        Value.Pair (Value.Str "x", Value.Cap (cap 2));
        Value.Int 9;
        Value.List [ Value.Cap (cap 3) ];
      ]
  in
  check_int "three caps found" 3 (List.length (Value.caps v));
  check_int "none in plain data" 0 (List.length (Value.caps (Value.Str "s")))

let test_value_equal_and_pp () =
  let v = Value.Pair (Value.Str "k", Value.List [ Value.Int 1; Value.Bool false ]) in
  check_bool "structural equal" true (Value.equal v v);
  check_bool "unequal" false (Value.equal v Value.Unit);
  check_string "printed" "(\"k\", [1; false])"
    (Format.asprintf "%a" Value.pp v)

(* ------------------------------------------------------------------ *)
(* Error *)

let test_error_equal_and_strings () =
  check_bool "same" true (Error.equal Error.Timeout Error.Timeout);
  check_bool "payload matters" false
    (Error.equal (Error.User_error "a") (Error.User_error "b"));
  check_bool "different constructors" false
    (Error.equal Error.Timeout Error.No_such_object);
  check_string "timeout" "timeout" (Error.to_string Error.Timeout);
  check_string "rights" "insufficient rights for \"put\""
    (Error.to_string (Error.Rights_violation "put"))

(* ------------------------------------------------------------------ *)
(* Reliability *)

let test_reliability_validate () =
  let ok r = Reliability.validate r ~node_count:4 = Ok () in
  check_bool "local" true (ok Reliability.Local);
  check_bool "remote in range" true (ok (Reliability.Remote 3));
  check_bool "remote out of range" false (ok (Reliability.Remote 4));
  check_bool "mirrored" true (ok (Reliability.Mirrored [ 0; 2 ]));
  check_bool "mirrored empty" false (ok (Reliability.Mirrored []));
  check_bool "mirrored dup" false (ok (Reliability.Mirrored [ 1; 1 ]))

let test_reliability_checksites () =
  Alcotest.(check (list int)) "local is home" [ 2 ]
    (Reliability.checksites Reliability.Local ~home:2);
  Alcotest.(check (list int)) "remote" [ 0 ]
    (Reliability.checksites (Reliability.Remote 0) ~home:2);
  Alcotest.(check (list int)) "mirrored verbatim" [ 1; 3 ]
    (Reliability.checksites (Reliability.Mirrored [ 1; 3 ]) ~home:2)

(* ------------------------------------------------------------------ *)
(* Property tests, on the shared {!Prop} harness: 500 seeds per
   property (one structured draw each), fixed bases so failures replay
   exactly, with shrinking for the mirrored-site lists. *)

module Splitmix = Eden_util.Splitmix

let iters = 500

let rand_right rng =
  match Splitmix.int rng 17 with
  | 0 -> Rights.Invoke
  | n when n <= 12 -> Rights.Aux (n - 1)
  | 13 -> Rights.Kernel_move
  | 14 -> Rights.Kernel_checkpoint
  | 15 -> Rights.Kernel_destroy
  | _ -> Rights.Kernel_grant

let rand_rights rng =
  Rights.of_list (List.init (Splitmix.int rng 9) (fun _ -> rand_right rng))

(* Mix valid and deliberately-broken levels: node indices drawn from
   [-1 .. node_count], mirrored lists possibly empty or repeating. *)
let rand_reliability rng ~node_count =
  let rand_node () = Splitmix.int rng (node_count + 2) - 1 in
  match Splitmix.int rng 3 with
  | 0 -> Reliability.Local
  | 1 -> Reliability.Remote (rand_node ())
  | _ ->
    Reliability.Mirrored
      (List.init (Splitmix.int rng 4) (fun _ -> rand_node ()))

let reliability_ok_ref r ~node_count =
  let in_range n = n >= 0 && n < node_count in
  match r with
  | Reliability.Local -> true
  | Reliability.Remote n -> in_range n
  | Reliability.Mirrored sites ->
    sites <> []
    && List.for_all in_range sites
    && List.length (List.sort_uniq compare sites) = List.length sites

(* Drop one mirrored site at a time; other levels have no smaller
   form worth exploring. *)
let shrink_reliability (node_count, r) =
  match r with
  | Reliability.Mirrored sites when sites <> [] ->
    List.mapi
      (fun i _ ->
        ( node_count,
          Reliability.Mirrored (List.filteri (fun j _ -> j <> i) sites) ))
      sites
  | _ -> []

let show_reliability (node_count, r) =
  Format.asprintf "%a (node_count=%d)" Reliability.pp r node_count

let gen_count_and_reliability rng =
  let node_count = 1 + Splitmix.int rng 6 in
  (node_count, rand_reliability rng ~node_count)

let prop_reliability_validate =
  Prop.case ~seeds:iters ~base:0xBEEF01L ~name:"reliability validate"
    ~gen:gen_count_and_reliability ~shrink:shrink_reliability
    ~show:show_reliability (fun (node_count, r) ->
      let expected = reliability_ok_ref r ~node_count in
      let got = Reliability.validate r ~node_count = Ok () in
      if got = expected then Ok ()
      else Error (Printf.sprintf "validate: got %b, want %b" got expected))

let prop_reliability_checksites =
  Prop.case ~seeds:iters ~base:0xBEEF02L ~name:"reliability checksites"
    ~gen:(fun rng ->
      let node_count, r = gen_count_and_reliability rng in
      (node_count, r, Splitmix.int rng node_count))
    ~shrink:(fun (node_count, r, home) ->
      List.map
        (fun (nc, r') -> (nc, r', home))
        (shrink_reliability (node_count, r)))
    ~show:(fun (node_count, r, home) ->
      Format.asprintf "%a (node_count=%d, home=%d)" Reliability.pp r
        node_count home)
    (fun (node_count, r, home) ->
      if Reliability.validate r ~node_count <> Ok () then Ok ()
      else
        let sites = Reliability.checksites r ~home in
        (* Validated levels yield non-empty, in-range, duplicate-free
           checksite lists; Local checkpoints exactly at home. *)
        if sites = [] then Error "empty checksites"
        else if not (List.for_all (fun s -> s >= 0 && s < node_count) sites)
        then Error "checksite out of range"
        else if
          List.length (List.sort_uniq compare sites) <> List.length sites
        then Error "duplicate checksites"
        else if r = Reliability.Local && sites <> [ home ] then
          Error "Local must checkpoint at home"
        else Ok ())

let prop_capability_restrict =
  let name = Name.make ~birth_node:1 ~serial:9 in
  Prop.case ~seeds:iters ~base:0xBEEF03L ~name:"capability restrict"
    ~gen:(fun rng ->
      let base = rand_rights rng in
      let mask = rand_rights rng in
      let chain = rand_rights rng in
      let need = rand_rights rng in
      (base, mask, chain, need))
    ~show:(fun (base, mask, chain, need) ->
      Format.asprintf "base=%a mask=%a chain=%a need=%a" Rights.pp base
        Rights.pp mask Rights.pp chain Rights.pp need)
    (fun (base, mask, chain, need) ->
      let fail fmt = Printf.ksprintf Result.error fmt in
      let cap = Capability.make name base in
      let r = Capability.restrict cap mask in
      (* Monotone: never more rights than either the original or the
         mask — restriction is intersection, so also exactly that. *)
      if not (Rights.subset (Capability.rights r) base) then
        fail "not a subset of the original"
      else if not (Rights.subset (Capability.rights r) mask) then
        fail "not a subset of the mask"
      else if not (Rights.equal (Capability.rights r) (Rights.inter base mask))
      then fail "not the intersection"
      else if not (Capability.same_object cap r) then fail "object changed"
        (* Idempotent, and a full mask changes nothing. *)
      else if not (Capability.equal r (Capability.restrict r mask)) then
        fail "not idempotent"
      else if not (Capability.equal cap (Capability.restrict cap Rights.all))
      then fail "full mask not the identity"
      else
        (* No sequence of restrictions can amplify. *)
        let again = Capability.restrict r chain in
        if not (Rights.subset (Capability.rights again) base) then
          fail "chain amplified rights"
        else if
          Capability.permits r need
          <> Rights.subset need (Capability.rights r)
        then fail "permits disagrees with subset"
        else Ok ())

(* ------------------------------------------------------------------ *)
(* Dedup: serving-side idempotence bookkeeping *)

(* A random interleaving of arrivals (clones, hedges, fault-injected
   duplicates), dispatches and cancels over a tiny id space — sequence
   numbers collide across origins by construction — must never
   double-apply an invocation, and must agree with a four-state
   reference model about which ids executed at all.  Shrinking drops
   one event at a time, so a reported counterexample is a near-minimal
   message ordering. *)

type dedup_op =
  | Arrive of Message.request_id
  | Dispatch of Message.request_id
  | Cancel of Message.request_id

let show_dedup_op op =
  let f verb (id : Message.request_id) =
    Printf.sprintf "%s %d.%d" verb id.Message.origin id.Message.seq
  in
  match op with
  | Arrive id -> f "arrive" id
  | Dispatch id -> f "dispatch" id
  | Cancel id -> f "cancel" id

let gen_dedup_ops rng =
  List.init
    (1 + Splitmix.int rng 40)
    (fun _ ->
      let id =
        { Message.origin = Splitmix.int rng 3; seq = Splitmix.int rng 4 }
      in
      match Splitmix.int rng 4 with
      | 0 | 1 -> Arrive id (* arrivals weighted up: duplicates abound *)
      | 2 -> Dispatch id
      | _ -> Cancel id)

let shrink_dedup_ops ops =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) ops) ops

let prop_dedup_exactly_once =
  Prop.case ~seeds:iters ~base:0xBEEF04L ~name:"dedup exactly-once"
    ~gen:gen_dedup_ops ~shrink:shrink_dedup_ops
    ~show:(fun ops -> String.concat "; " (List.map show_dedup_op ops))
    (fun ops ->
      let t = Dedup.create ~cap:64 () in
      let key (id : Message.request_id) = (id.Message.origin, id.Message.seq) in
      let exec = Hashtbl.create 16 in (* executions through the table *)
      let model = Hashtbl.create 16 in (* reference id states *)
      let expect = Hashtbl.create 16 in (* executions the model allows *)
      let pending = ref [] in (* queued work not yet dispatched *)
      let bump h k =
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k))
      in
      List.iter
        (fun op ->
          match op with
          | Arrive id ->
            (* The serving node queues work only for unseen ids:
               anything already in the table is a duplicate or a
               pre-cancelled tombstone, and is dropped. *)
            (match Dedup.find t id with
            | Some _ -> ()
            | None ->
              Dedup.note_queued t id;
              pending := key id :: !pending);
            if not (Hashtbl.mem model (key id)) then
              Hashtbl.replace model (key id) `Queued
          | Dispatch id when List.mem (key id) !pending ->
            pending := List.filter (fun k -> k <> key id) !pending;
            (match Dedup.start t id with
            | `Run -> bump exec (key id)
            | `Retracted -> ());
            (match Hashtbl.find_opt model (key id) with
            | Some `Queued ->
              Hashtbl.replace model (key id) `Started;
              bump expect (key id)
            | _ -> ())
          | Dispatch _ -> ()
          | Cancel id -> (
            ignore (Dedup.cancel t id);
            match Hashtbl.find_opt model (key id) with
            | Some `Queued | None -> Hashtbl.replace model (key id) `Cancelled
            | Some _ -> ()))
        ops;
      let doubled =
        Hashtbl.fold (fun k c acc -> if c > 1 then k :: acc else acc) exec []
      in
      match doubled with
      | (o, s) :: _ -> Error (Printf.sprintf "id %d.%d executed twice" o s)
      | [] ->
        let mismatch = ref None in
        let compare_to other k c =
          if Option.value ~default:0 (Hashtbl.find_opt other k) <> c then
            mismatch := Some k
        in
        Hashtbl.iter (compare_to exec) expect;
        Hashtbl.iter (compare_to expect) exec;
        (match !mismatch with
        | Some (o, s) ->
          Error
            (Printf.sprintf "id %d.%d: table and reference model disagree" o s)
        | None -> Ok ()))

(* ------------------------------------------------------------------ *)
(* Opclass *)

let test_opclass_validate () =
  let ops = [ "a"; "b"; "c" ] in
  let ok specs = Opclass.validate specs ~operations:ops = Ok () in
  check_bool "singletons valid" true
    (ok (Opclass.singleton_classes ~operations:ops ~limit:1));
  check_bool "one class valid" true
    (ok (Opclass.one_class ~name:"all" ~operations:ops ~limit:4));
  check_bool "missing op" false
    (ok [ { Opclass.class_name = "x"; operations = [ "a"; "b" ]; limit = 1 } ]);
  check_bool "unknown op" false
    (ok [ { Opclass.class_name = "x"; operations = [ "a"; "b"; "c"; "d" ]; limit = 1 } ]);
  check_bool "duplicate across classes" false
    (ok
       [
         { Opclass.class_name = "x"; operations = [ "a"; "b" ]; limit = 1 };
         { Opclass.class_name = "y"; operations = [ "b"; "c" ]; limit = 1 };
       ]);
  check_bool "zero limit" false
    (ok [ { Opclass.class_name = "x"; operations = ops; limit = 0 } ]);
  check_bool "duplicate class names" false
    (ok
       [
         { Opclass.class_name = "x"; operations = [ "a" ]; limit = 1 };
         { Opclass.class_name = "x"; operations = [ "b"; "c" ]; limit = 1 };
       ])

let test_opclass_class_of () =
  let specs =
    [
      { Opclass.class_name = "rw"; operations = [ "get"; "put" ]; limit = 2 };
      { Opclass.class_name = "admin"; operations = [ "reset" ]; limit = 1 };
    ]
  in
  check_string "found" "rw" (Opclass.class_of specs ~op:"put").Opclass.class_name;
  Alcotest.check_raises "unclassified"
    (Invalid_argument "Opclass.class_of: \"gone\" unclassified") (fun () ->
      ignore (Opclass.class_of specs ~op:"gone"))

(* ------------------------------------------------------------------ *)
(* Typemgr *)

let noop_handler _ctx _args = Api.reply_unit

let test_typemgr_validation () =
  let op name = Typemgr.operation name noop_handler in
  (match Typemgr.make ~name:"" [ op "x" ] with
  | Error "type name is empty" -> ()
  | _ -> Alcotest.fail "empty name accepted");
  (match Typemgr.make ~name:"t" [] with
  | Error "type has no operations" -> ()
  | _ -> Alcotest.fail "empty ops accepted");
  (match Typemgr.make ~name:"t" [ op "x"; op "x" ] with
  | Error "duplicate operation names" -> ()
  | _ -> Alcotest.fail "duplicates accepted");
  match Typemgr.make ~name:"t" [ op "x" ] with
  | Ok tm ->
    check_string "name" "t" (Typemgr.name tm);
    check_bool "find" true (Typemgr.find_operation tm "x" <> None);
    check_bool "missing" true (Typemgr.find_operation tm "y" = None);
    (* Default classes: one singleton per op with limit 1. *)
    check_int "default classes" 1 (List.length (Typemgr.classes tm))
  | Error e -> Alcotest.failf "valid type refused: %s" e

let test_typemgr_operation_defaults () =
  let op = Typemgr.operation "op" noop_handler in
  check_bool "invoke required by default" true
    (Rights.mem Rights.Invoke op.Typemgr.required_rights);
  check_bool "mutates by default" true op.Typemgr.mutates;
  let ro = Typemgr.operation ~mutates:false ~required:[ Rights.Aux 1 ] "r" noop_handler in
  check_bool "aux added" true (Rights.mem (Rights.Aux 1) ro.Typemgr.required_rights);
  check_bool "invoke still required" true
    (Rights.mem Rights.Invoke ro.Typemgr.required_rights);
  check_bool "read only" false ro.Typemgr.mutates

(* ------------------------------------------------------------------ *)
(* Message *)

let test_message_sizes_scale () =
  let name = Name.make ~birth_node:0 ~serial:0 in
  let req args =
    Message.Inv_request
      {
        inv_id = { Message.origin = 0; seq = 1 };
        target = name;
        op = "put";
        args;
        presented = Rights.all;
        reply_to = 0;
        hops = 0;
        may_activate = false;
        span = None;
      }
  in
  let small = Message.size_bytes (req []) in
  let big = Message.size_bytes (req [ Value.Blob 10_000 ]) in
  check_bool "payload dominates" true (big >= small + 10_000);
  let reply =
    Message.Inv_reply
      {
        inv_id = { Message.origin = 0; seq = 1 };
        result = Ok [ Value.Blob 500 ];
        frozen_hint = false;
      }
  in
  check_bool "reply carries payload" true (Message.size_bytes reply >= 500);
  check_bool "describe mentions op" true
    (let d = Message.describe (req []) in
     String.length d > 0)

(* ------------------------------------------------------------------ *)
(* Api helpers *)

let test_api_arg_helpers () =
  check_bool "arg1 ok" true (Api.arg1 [ Value.Int 1 ] = Ok (Value.Int 1));
  check_bool "arg1 arity" true (Result.is_error (Api.arg1 []));
  check_bool "arg2 ok" true
    (Api.arg2 [ Value.Int 1; Value.Int 2 ] = Ok (Value.Int 1, Value.Int 2));
  check_bool "arg3 ok" true
    (Api.arg3 [ Value.Int 1; Value.Int 2; Value.Int 3 ]
    = Ok (Value.Int 1, Value.Int 2, Value.Int 3));
  check_bool "no_args ok" true (Api.no_args [] = Ok ());
  check_bool "no_args arity" true (Result.is_error (Api.no_args [ Value.Unit ]));
  (match Api.int_arg (Value.Str "x") with
  | Error (Error.Bad_arguments _) -> ()
  | _ -> Alcotest.fail "int_arg should lift conversion errors");
  check_bool "reply" true (Api.reply [ Value.Int 1 ] = Ok [ Value.Int 1 ]);
  check_bool "reply_unit" true (Api.reply_unit = Ok []);
  (match Api.user_error "boom" with
  | Error (Error.User_error "boom") -> ()
  | _ -> Alcotest.fail "user_error shape")

let () =
  Alcotest.run "eden_kernel_units"
    [
      ( "name",
        [
          Alcotest.test_case "basics" `Quick test_name_basics;
          Alcotest.test_case "ordering + table" `Quick
            test_name_ordering_and_table;
        ] );
      ( "rights",
        [
          Alcotest.test_case "sets" `Quick test_rights_sets;
          Alcotest.test_case "algebra" `Quick test_rights_algebra;
        ] );
      ( "capability",
        [ Alcotest.test_case "restrict" `Quick test_capability_restrict ] );
      ( "value",
        [
          Alcotest.test_case "sizes" `Quick test_value_sizes;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "caps extraction" `Quick
            test_value_caps_extraction;
          Alcotest.test_case "equal + pp" `Quick test_value_equal_and_pp;
        ] );
      ( "error",
        [ Alcotest.test_case "equality + strings" `Quick test_error_equal_and_strings ]
      );
      ( "reliability",
        [
          Alcotest.test_case "validate" `Quick test_reliability_validate;
          Alcotest.test_case "checksites" `Quick test_reliability_checksites;
        ] );
      ( "properties",
        [
          prop_reliability_validate;
          prop_reliability_checksites;
          prop_capability_restrict;
          prop_dedup_exactly_once;
        ] );
      ( "opclass",
        [
          Alcotest.test_case "validate" `Quick test_opclass_validate;
          Alcotest.test_case "class_of" `Quick test_opclass_class_of;
        ] );
      ( "typemgr",
        [
          Alcotest.test_case "validation" `Quick test_typemgr_validation;
          Alcotest.test_case "operation defaults" `Quick
            test_typemgr_operation_defaults;
        ] );
      ( "message",
        [ Alcotest.test_case "sizes" `Quick test_message_sizes_scale ] );
      ( "api",
        [ Alcotest.test_case "helpers" `Quick test_api_arg_helpers ] );
    ]
