(* Tests for the CSMA/CD LAN model. *)

open Eden_util
open Eden_sim
open Eden_net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let quiet_params = Params.default

(* A LAN with [n] stations; returns the lan and the stations. *)
let make_lan ?(params = quiet_params) ?(n = 2) eng =
  let lan = Lan.create ~params eng in
  let sts =
    Array.init n (fun i -> Lan.attach lan ~name:(Printf.sprintf "s%d" i))
  in
  (lan, sts)

(* ------------------------------------------------------------------ *)
(* Params *)

let test_frame_time () =
  (* 100-byte payload -> 126 bytes on the wire -> 100.8 us at 10 Mb/s. *)
  check_int "100B payload" 100_800
    (Time.to_ns (Params.frame_time Params.default ~payload_bytes:100));
  (* Sub-minimum payloads are padded to 64 bytes -> 90 bytes on wire. *)
  check_int "padding" 72_000
    (Time.to_ns (Params.frame_time Params.default ~payload_bytes:1));
  check_int "zero padded too" 72_000
    (Time.to_ns (Params.frame_time Params.default ~payload_bytes:0))

let test_frame_time_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Params.frame_time: negative payload") (fun () ->
      ignore (Params.frame_time Params.default ~payload_bytes:(-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Params.frame_time: payload exceeds max_frame_bytes")
    (fun () -> ignore (Params.frame_time Params.default ~payload_bytes:9_999))

let test_params_validate () =
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Params: bandwidth must be positive") (fun () ->
      Params.validate { Params.default with Params.bandwidth_bps = 0 })

(* ------------------------------------------------------------------ *)
(* Point-to-point delivery *)

let test_unloaded_latency () =
  let eng = Engine.create () in
  let lan, sts = make_lan eng in
  let arrived = ref Time.zero in
  Lan.on_receive sts.(1) (fun _ -> arrived := Engine.now eng);
  Lan.send sts.(0) ~dest:(Lan.Unicast 1) ~bytes:100 "hello";
  Engine.run eng;
  (* frame_time (100.8us) + propagation (5us) *)
  check_int "delivery time" 105_800 (Time.to_ns !arrived);
  let c = Lan.counters lan in
  check_int "sent" 1 c.Lan.frames_sent;
  check_int "delivered" 1 c.Lan.frames_delivered;
  check_int "no collisions" 0 c.Lan.collision_events;
  check_int "payload bytes" 100 c.Lan.payload_bytes_delivered

let test_payload_carried () =
  let eng = Engine.create () in
  let _, sts = make_lan eng in
  let got = ref None in
  Lan.on_receive sts.(1) (fun f -> got := Some f.Lan.payload);
  Lan.send sts.(0) ~dest:(Lan.Unicast 1) ~bytes:64 "payload-42";
  Engine.run eng;
  Alcotest.(check (option string)) "payload" (Some "payload-42") !got

let test_queued_frames_in_order () =
  let eng = Engine.create () in
  let _, sts = make_lan eng in
  let got = ref [] in
  Lan.on_receive sts.(1) (fun f -> got := f.Lan.payload :: !got);
  for i = 1 to 5 do
    Lan.send sts.(0) ~dest:(Lan.Unicast 1) ~bytes:64 i
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_broadcast () =
  let eng = Engine.create () in
  let _, sts = make_lan ~n:4 eng in
  let seen = Array.make 4 0 in
  Array.iter
    (fun st ->
      Lan.on_receive st (fun _ ->
          seen.(Lan.address st) <- seen.(Lan.address st) + 1))
    sts;
  Lan.send sts.(0) ~dest:Lan.Broadcast ~bytes:64 ();
  Engine.run eng;
  Alcotest.(check (array int)) "all but sender" [| 0; 1; 1; 1 |] seen

let test_send_validation () =
  let eng = Engine.create () in
  let _, sts = make_lan eng in
  Alcotest.check_raises "self" (Invalid_argument "Lan.send: destination is self")
    (fun () -> Lan.send sts.(0) ~dest:(Lan.Unicast 0) ~bytes:10 ());
  Alcotest.check_raises "no such" (Invalid_argument "Lan.send: no such station")
    (fun () -> Lan.send sts.(0) ~dest:(Lan.Unicast 9) ~bytes:10 ());
  Alcotest.check_raises "too big"
    (Invalid_argument "Lan.send: payload size out of range") (fun () ->
      Lan.send sts.(0) ~dest:(Lan.Unicast 1) ~bytes:100_000 ())

(* ------------------------------------------------------------------ *)
(* Contention *)

let test_collision_then_recovery () =
  let eng = Engine.create ~seed:7L () in
  let lan, sts = make_lan ~n:3 eng in
  let delivered = ref 0 in
  Lan.on_receive sts.(2) (fun _ -> incr delivered);
  (* Two stations transmit at the same instant: they must collide, back
     off, and both frames must still arrive. *)
  Lan.send sts.(0) ~dest:(Lan.Unicast 2) ~bytes:200 "a";
  Lan.send sts.(1) ~dest:(Lan.Unicast 2) ~bytes:200 "b";
  Engine.run eng;
  let c = Lan.counters lan in
  check_bool "collision happened" true (c.Lan.collision_events >= 1);
  check_int "both delivered" 2 !delivered;
  check_int "none dropped" 0 c.Lan.frames_dropped

let test_drop_after_max_attempts () =
  (* With max_attempts = 1, the first collision is fatal for both. *)
  let params = { Params.default with Params.max_attempts = 1 } in
  let eng = Engine.create () in
  let lan, sts = make_lan ~params ~n:3 eng in
  let delivered = ref 0 in
  Lan.on_receive sts.(2) (fun _ -> incr delivered);
  Lan.send sts.(0) ~dest:(Lan.Unicast 2) ~bytes:64 ();
  Lan.send sts.(1) ~dest:(Lan.Unicast 2) ~bytes:64 ();
  Engine.run eng;
  let c = Lan.counters lan in
  check_int "both dropped" 2 c.Lan.frames_dropped;
  check_int "none delivered" 0 !delivered

let test_carrier_sense_defers () =
  (* A station that starts while the medium is busy waits; no collision
     occurs and both frames arrive back to back. *)
  let eng = Engine.create () in
  let lan, sts = make_lan ~n:3 eng in
  let arrivals = ref [] in
  Lan.on_receive sts.(2) (fun f ->
      arrivals := (f.Lan.payload, Engine.now eng) :: !arrivals);
  Lan.send sts.(0) ~dest:(Lan.Unicast 2) ~bytes:1_000 "long";
  (* 1000B -> 1026B on wire -> 820.8us. Start the second frame mid-way. *)
  Engine.schedule eng ~after:(Time.us 400) (fun () ->
      Lan.send sts.(1) ~dest:(Lan.Unicast 2) ~bytes:64 "short");
  Engine.run eng;
  let c = Lan.counters lan in
  check_int "no collisions" 0 c.Lan.collision_events;
  match List.rev !arrivals with
  | [ ("long", t1); ("short", t2) ] ->
    check_int "long first" 825_800 (Time.to_ns t1);
    (* short starts when the medium goes idle at 820.8us, takes 72us. *)
    check_int "short after" (820_800 + 72_000 + 5_000) (Time.to_ns t2)
  | other ->
    Alcotest.failf "unexpected arrivals: %d" (List.length other)

let test_determinism () =
  let run_once () =
    let eng = Engine.create ~seed:99L () in
    let lan, sts = make_lan ~n:5 eng in
    let rng = Splitmix.create 5L in
    Array.iter (fun st -> Lan.on_receive st (fun _ -> ())) sts;
    for i = 0 to 199 do
      let src = i mod 5 in
      let dst = (src + 1 + Splitmix.int rng 4) mod 5 in
      Engine.schedule eng ~after:(Time.us (Splitmix.int rng 20_000)) (fun () ->
          Lan.send sts.(src) ~dest:(Lan.Unicast dst) ~bytes:200 ())
    done;
    Engine.run eng;
    let c = Lan.counters lan in
    (c.Lan.frames_delivered, c.Lan.collision_events, c.Lan.backoffs,
     Time.to_ns (Engine.now eng))
  in
  let a = run_once () and b = run_once () in
  check_bool "identical runs" true (a = b)

let test_saturation_throughput () =
  (* Offered load far above capacity: utilisation must stay below 1.0
     but above 0.5, and collisions must occur. *)
  let eng = Engine.create ~seed:3L () in
  let lan, sts = make_lan ~n:8 eng in
  Array.iter (fun st -> Lan.on_receive st (fun _ -> ())) sts;
  let horizon = Time.ms 200 in
  (* Each station queues frames continuously. *)
  Array.iteri
    (fun i st ->
      if i < 8 then
        for _ = 1 to 300 do
          Lan.send st ~dest:(Lan.Unicast ((i + 1) mod 8)) ~bytes:500 ()
        done)
    sts;
  Engine.run ~until:horizon eng;
  let u = Lan.utilisation lan ~over:horizon in
  check_bool "below capacity" true (u <= 1.0);
  check_bool "meaningful throughput" true (u > 0.5);
  let c = Lan.counters lan in
  check_bool "collisions under load" true (c.Lan.collision_events > 0)

let test_latency_stats_populated () =
  let eng = Engine.create () in
  let lan, sts = make_lan eng in
  Lan.on_receive sts.(1) (fun _ -> ());
  for _ = 1 to 10 do
    Lan.send sts.(0) ~dest:(Lan.Unicast 1) ~bytes:64 ()
  done;
  Engine.run eng;
  let s = Lan.latency_stats lan in
  check_int "ten samples" 10 (Stats.count s);
  (* The first frame sees no queueing: 72us + 5us. *)
  Alcotest.(check (float 1e-9)) "min latency" 77e-6 (Stats.min_value s)

let prop_all_frames_accounted =
  QCheck.Test.make ~name:"sent = delivered + dropped (unicast)" ~count:25
    QCheck.(pair (int_range 2 6) (int_range 1 60))
    (fun (n, frames) ->
      let eng = Engine.create ~seed:11L () in
      let lan, sts = make_lan ~n eng in
      Array.iter (fun st -> Lan.on_receive st (fun _ -> ())) sts;
      let rng = Splitmix.create (Int64.of_int frames) in
      for _ = 1 to frames do
        let src = Splitmix.int rng n in
        let dst = (src + 1 + Splitmix.int rng (n - 1)) mod n in
        Engine.schedule eng ~after:(Time.us (Splitmix.int rng 50_000))
          (fun () -> Lan.send sts.(src) ~dest:(Lan.Unicast dst) ~bytes:128 ())
      done;
      Engine.run eng;
      let c = Lan.counters lan in
      c.Lan.frames_sent = frames
      && c.Lan.frames_delivered + c.Lan.frames_dropped = frames)

(* ------------------------------------------------------------------ *)
(* Msglink: fragmenting message transport *)

let msg_size (s : string) = String.length s

let make_link ?(n = 2) eng =
  let lan = Msglink.create_lan eng in
  let links =
    Array.init n (fun i ->
        Msglink.attach lan ~name:(Printf.sprintf "m%d" i) ~size:msg_size)
  in
  (lan, links)

let test_msglink_small_message () =
  let eng = Engine.create () in
  let _, links = make_link eng in
  let got = ref None in
  Msglink.on_message links.(1) (fun ~src msg -> got := Some (src, msg));
  Msglink.send links.(0) ~dst:1 "hello";
  Engine.run eng;
  Alcotest.(check (option (pair int string)))
    "delivered" (Some (0, "hello")) !got;
  check_int "one sent" 1 (Msglink.messages_sent links.(0));
  check_int "one received" 1 (Msglink.messages_received links.(1))

let test_msglink_fragmentation () =
  (* A message over the max frame size crosses as several frames and is
     reassembled into a single delivery. *)
  let eng = Engine.create () in
  let lan, links = make_link eng in
  let big = String.make 5_000 'x' in
  let got = ref 0 in
  Msglink.on_message links.(1) (fun ~src:_ msg ->
      if msg = big then incr got);
  Msglink.send links.(0) ~dst:1 big;
  Engine.run eng;
  check_int "delivered once" 1 !got;
  let frames = (Lan.counters lan).Lan.frames_delivered in
  (* ceil(5000 / 1518) = 4 fragments *)
  check_int "four fragments" 4 frames

let test_msglink_down_endpoint_drops () =
  let eng = Engine.create () in
  let _, links = make_link eng in
  let got = ref 0 in
  Msglink.on_message links.(1) (fun ~src:_ _ -> incr got);
  Msglink.set_up links.(1) false;
  Msglink.send links.(0) ~dst:1 "lost";
  Engine.run eng;
  check_int "nothing delivered" 0 !got;
  check_bool "fragment discarded" true
    (Msglink.fragments_discarded links.(1) >= 1);
  (* Back up: new messages flow again; the lost one stays lost. *)
  Msglink.set_up links.(1) true;
  Msglink.send links.(0) ~dst:1 "after";
  Engine.run eng;
  check_int "recovered" 1 !got

let test_msglink_down_sender_sends_nothing () =
  let eng = Engine.create () in
  let lan, links = make_link eng in
  Msglink.set_up links.(0) false;
  Msglink.send links.(0) ~dst:1 "never";
  Engine.run eng;
  check_int "no frames on the wire" 0 (Lan.counters lan).Lan.frames_sent

let test_msglink_broadcast () =
  let eng = Engine.create () in
  let _, links = make_link ~n:4 eng in
  let seen = Array.make 4 0 in
  Array.iteri
    (fun i link -> Msglink.on_message link (fun ~src:_ _ -> seen.(i) <- seen.(i) + 1))
    links;
  Msglink.broadcast links.(2) "to all";
  Engine.run eng;
  Alcotest.(check (array int)) "all but sender" [| 1; 1; 0; 1 |] seen

let test_msglink_self_send_rejected () =
  let eng = Engine.create () in
  let _, links = make_link eng in
  Alcotest.check_raises "self" (Invalid_argument "Msglink.send: destination is self")
    (fun () -> Msglink.send links.(0) ~dst:0 "loop")

let prop_msglink_all_sizes_roundtrip =
  QCheck.Test.make ~name:"messages of any size roundtrip" ~count:50
    QCheck.(int_range 1 20_000)
    (fun size ->
      let eng = Engine.create () in
      let _, links = make_link eng in
      let payload = String.make size 'y' in
      let ok = ref false in
      Msglink.on_message links.(1) (fun ~src:_ msg -> ok := msg = payload);
      Msglink.send links.(0) ~dst:1 payload;
      Engine.run eng;
      !ok)

(* ------------------------------------------------------------------ *)
(* Internet: bridged segments *)

let make_inet ?(segments = 2) ?(per_segment = 2) eng =
  let inet =
    Internet.create eng ~segments ~size:String.length
  in
  let eps =
    Array.init (segments * per_segment) (fun i ->
        Internet.attach inet ~segment:(i / per_segment)
          ~name:(Printf.sprintf "h%d" i))
  in
  (inet, eps)

let test_inet_same_segment () =
  let eng = Engine.create () in
  let _, eps = make_inet eng in
  let got = ref None in
  Internet.on_message eps.(1) (fun ~src msg -> got := Some (src, msg));
  Internet.send eps.(0) ~dst:1 "local";
  Engine.run eng;
  Alcotest.(check (option (pair int string)))
    "delivered" (Some (0, "local")) !got

let test_inet_cross_segment () =
  let eng = Engine.create () in
  let inet, eps = make_inet eng in
  let got = ref None and at = ref Time.zero in
  Internet.on_message eps.(2) (fun ~src msg ->
      got := Some (src, msg);
      at := Engine.now eng);
  Internet.send eps.(0) ~dst:2 "far away";
  Engine.run eng;
  Alcotest.(check (option (pair int string)))
    "delivered across the bridge" (Some (0, "far away")) !got;
  check_int "one bridge hop" 1 (Internet.bridge_forwards inet);
  (* Two MAC transmissions plus 500us store-and-forward: well over a
     single-segment delivery (~80us). *)
  check_bool "bridge latency paid" true (Time.to_ns !at > 600_000)

let test_inet_broadcast_spans_segments () =
  let eng = Engine.create () in
  let inet, eps = make_inet ~segments:3 ~per_segment:2 eng in
  let seen = Array.make 6 0 in
  Array.iteri
    (fun i ep -> Internet.on_message ep (fun ~src:_ _ -> seen.(i) <- seen.(i) + 1))
    eps;
  Internet.broadcast eps.(0) "hear ye";
  Engine.run eng;
  Alcotest.(check (array int))
    "everyone but the sender, exactly once" [| 0; 1; 1; 1; 1; 1 |] seen;
  (* One broadcast forward fans out to the other two segments. *)
  check_int "bridge re-emission" 1 (Internet.bridge_forwards inet)

let test_inet_addressing () =
  let eng = Engine.create () in
  let inet, eps = make_inet eng in
  check_int "global addresses dense" 3 (Internet.address eps.(3));
  check_int "segment of address" 1 (Internet.segment_of_address inet 2);
  check_int "segment of endpoint" 0 (Internet.segment_of_endpoint eps.(1));
  Alcotest.check_raises "unknown dst"
    (Invalid_argument "Internet.send: unknown destination") (fun () ->
      Internet.send eps.(0) ~dst:99 "ghost")

(* Regression: self-send used to raise Invalid_argument, which let a
   retry loop crash a node whose target had relocated onto it.  It now
   loopback-delivers without touching the wire. *)
let test_inet_loopback_self_send () =
  let eng = Engine.create () in
  let inet, eps = make_inet eng in
  let got = ref None in
  Internet.on_message eps.(0) (fun ~src msg -> got := Some (src, msg));
  Internet.send eps.(0) ~dst:0 "loop";
  Engine.run eng;
  Alcotest.(check (option (pair int string)))
    "delivered to self" (Some (0, "loop")) !got;
  check_int "nothing on the wire" 0 (Internet.frames_delivered inet)

let test_inet_single_segment_no_bridge () =
  let eng = Engine.create () in
  let inet, eps = make_inet ~segments:1 ~per_segment:3 eng in
  let got = ref 0 in
  Internet.on_message eps.(2) (fun ~src:_ _ -> incr got);
  Internet.send eps.(0) ~dst:2 "plain";
  Internet.broadcast eps.(1) "all";
  Engine.run eng;
  check_int "deliveries" 2 !got;
  check_int "no bridge traffic" 0 (Internet.bridge_forwards inet)

let test_inet_down_endpoint () =
  let eng = Engine.create () in
  let _, eps = make_inet eng in
  let got = ref 0 in
  Internet.on_message eps.(2) (fun ~src:_ _ -> incr got);
  Internet.set_up eps.(2) false;
  Internet.send eps.(0) ~dst:2 "lost";
  Engine.run eng;
  check_int "nothing delivered" 0 !got;
  Internet.set_up eps.(2) true;
  Internet.send eps.(0) ~dst:2 "found";
  Engine.run eng;
  check_int "recovered" 1 !got

(* ------------------------------------------------------------------ *)
(* Partitions and fault injection *)

let test_partition_drops_cross_segment () =
  let eng = Engine.create () in
  let inet, eps = make_inet eng in
  let got = ref 0 in
  Internet.on_message eps.(2) (fun ~src:_ _ -> incr got);
  Internet.set_partitioned inet 1 true;
  check_bool "partitioned" true (Internet.partitioned inet 1);
  Internet.send eps.(0) ~dst:2 "into the void";
  Engine.run eng;
  check_int "nothing crossed" 0 !got;
  check_int "accounted as a bridge drop" 1 (Internet.bridge_drops inet);
  (* Healing later must not resurrect the dropped frame. *)
  Internet.set_partitioned inet 1 false;
  Engine.run eng;
  check_int "still nothing: dropped, not delayed" 0 !got;
  Internet.send eps.(0) ~dst:2 "after heal";
  Engine.run eng;
  check_int "healed path delivers" 1 !got

let test_partition_kills_frames_in_flight () =
  let eng = Engine.create () in
  let inet, eps = make_inet eng in
  let got = ref 0 in
  Internet.on_message eps.(2) (fun ~src:_ _ -> incr got);
  Internet.send eps.(0) ~dst:2 "in flight";
  (* The frame reaches the bridge after ~80us of MAC time and sits in
     the 500us store-and-forward queue; cutting the destination segment
     at 300us must kill it there. *)
  Engine.schedule eng ~after:(Time.us 300) (fun () ->
      Internet.set_partitioned inet 1 true);
  Engine.run eng;
  check_int "queued frame dropped at the bridge" 0 !got;
  check_int "drop counted" 1 (Internet.bridge_drops inet);
  check_int "forward was claimed before the cut" 1
    (Internet.bridge_forwards inet)

let test_partition_leaves_local_traffic_alone () =
  let eng = Engine.create () in
  let inet, eps = make_inet eng in
  let got = ref 0 in
  Internet.on_message eps.(3) (fun ~src:_ _ -> incr got);
  Internet.set_partitioned inet 1 true;
  Internet.send eps.(2) ~dst:3 "next door";
  Engine.run eng;
  check_int "same-segment delivery unaffected" 1 !got;
  check_int "no bridge drops for local traffic" 0 (Internet.bridge_drops inet)

let test_partition_blocks_broadcast () =
  let eng = Engine.create () in
  let inet, eps = make_inet ~segments:3 ~per_segment:2 eng in
  let seen = Array.make 6 0 in
  Array.iteri
    (fun i ep -> Internet.on_message ep (fun ~src:_ _ -> seen.(i) <- seen.(i) + 1))
    eps;
  Internet.set_partitioned inet 2 true;
  Internet.broadcast eps.(0) "partial reach";
  Engine.run eng;
  Alcotest.(check (array int))
    "own segment and segment 1 only" [| 0; 1; 1; 1; 0; 0 |] seen;
  check_int "cut segment counted" 1 (Internet.bridge_drops inet)

let test_injector_drop () =
  let eng = Engine.create () in
  let inet, eps = make_inet ~segments:1 ~per_segment:3 eng in
  let got = ref 0 in
  Internet.on_message eps.(1) (fun ~src:_ _ -> incr got);
  Internet.set_fault_injector inet
    (Some
       (fun ~src ~dst ->
         if src = 0 && dst = Some 1 then Internet.Drop else Internet.Pass));
  Internet.send eps.(0) ~dst:1 "eaten";
  Internet.send eps.(2) ~dst:1 "spared";
  Engine.run eng;
  check_int "only the unfaulted link delivered" 1 !got;
  Internet.set_fault_injector inet None;
  Internet.send eps.(0) ~dst:1 "healed";
  Engine.run eng;
  check_int "hook removed" 2 !got

let test_injector_duplicate () =
  let eng = Engine.create () in
  let inet, eps = make_inet ~segments:1 ~per_segment:2 eng in
  let got = ref 0 in
  Internet.on_message eps.(1) (fun ~src:_ _ -> incr got);
  Internet.set_fault_injector inet
    (Some (fun ~src:_ ~dst:_ -> Internet.Duplicate));
  Internet.send eps.(0) ~dst:1 "twice";
  Engine.run eng;
  check_int "delivered twice" 2 !got

let test_injector_delay () =
  let eng = Engine.create () in
  let inet, eps = make_inet ~segments:1 ~per_segment:2 eng in
  let at = ref Time.zero in
  Internet.on_message eps.(1) (fun ~src:_ _ -> at := Engine.now eng);
  Internet.set_fault_injector inet
    (Some (fun ~src:_ ~dst:_ -> Internet.Delay (Time.ms 5)));
  Internet.send eps.(0) ~dst:1 "held back";
  Engine.run eng;
  check_bool "held for at least the injected delay" true
    (Time.to_ns !at >= 5_000_000)

(* ------------------------------------------------------------------ *)
(* Unicast coalescing *)

let make_inet_co ?(segments = 1) ?(per_segment = 3) ~coalesce eng =
  let inet = Internet.create eng ~segments ~size:String.length ~coalesce in
  let eps =
    Array.init (segments * per_segment) (fun i ->
        Internet.attach inet ~segment:(i / per_segment)
          ~name:(Printf.sprintf "h%d" i))
  in
  (inet, eps)

let co ?(bytes = 1024) ?(msgs = 8) ?(delay = Time.us 300) () =
  { Internet.co_max_bytes = bytes; co_max_msgs = msgs; co_max_delay = delay }

let test_co_flush_on_count () =
  let eng = Engine.create () in
  let inet, eps = make_inet_co ~coalesce:(co ~msgs:3 ()) eng in
  let got = ref [] in
  Internet.on_message eps.(1) (fun ~src:_ msg -> got := msg :: !got);
  List.iter (fun m -> Internet.send eps.(0) ~dst:1 m) [ "a"; "b"; "c" ];
  Engine.run eng;
  Alcotest.(check (list string)) "members in order" [ "a"; "b"; "c" ]
    (List.rev !got);
  check_int "one batched transfer" 1 (Internet.coalesced_batches inet);
  check_int "three members" 3 (Internet.coalesced_messages inet);
  (* The whole batch crossed as a single (padded) LAN frame. *)
  check_int "one frame on the wire" 1 (Internet.frames_delivered inet)

let test_co_flush_on_timeout () =
  (* A lone small message sits in the queue until the delay budget
     expires, then travels as a plain transfer (no batch counted). *)
  let eng = Engine.create () in
  let inet, eps = make_inet_co ~coalesce:(co ()) eng in
  let at = ref Time.zero in
  Internet.on_message eps.(1) (fun ~src:_ _ -> at := Engine.now eng);
  Internet.send eps.(0) ~dst:1 "lonely";
  Engine.run eng;
  (* 300us hold + 72us padded frame + 5us propagation. *)
  check_int "held for the delay budget" 377_000 (Time.to_ns !at);
  check_int "single message is not a batch" 0
    (Internet.coalesced_batches inet)

let test_co_budget_vs_timeout_ordering () =
  (* A count-budget flush at t=0 and a later timer flush must preserve
     per-destination FIFO order across both transfers. *)
  let eng = Engine.create () in
  let _, eps = make_inet_co ~coalesce:(co ~msgs:3 ()) eng in
  let got = ref [] in
  Internet.on_message eps.(1) (fun ~src:_ msg -> got := msg :: !got);
  List.iter (fun m -> Internet.send eps.(0) ~dst:1 m) [ "a"; "b"; "c" ];
  Engine.schedule eng ~after:(Time.us 100) (fun () ->
      Internet.send eps.(0) ~dst:1 "d";
      Internet.send eps.(0) ~dst:1 "e");
  Engine.run eng;
  Alcotest.(check (list string))
    "budget flush first, timer flush after" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !got)

let test_co_oversize_flushes_then_travels_alone () =
  (* An oversize message acts as its own barrier: the queue flushes
     first so FIFO order holds, then the big message goes unbatched. *)
  let eng = Engine.create () in
  let inet, eps = make_inet_co ~coalesce:(co ~bytes:64 ~delay:(Time.ms 10) ()) eng in
  let got = ref [] in
  Internet.on_message eps.(1) (fun ~src:_ msg ->
      got := String.length msg :: !got);
  Internet.send eps.(0) ~dst:1 "aa";
  Internet.send eps.(0) ~dst:1 "bb";
  Internet.send eps.(0) ~dst:1 (String.make 70 'X');
  Engine.run eng;
  Alcotest.(check (list int)) "queue first, oversize after" [ 2; 2; 70 ]
    (List.rev !got);
  check_int "only the small pair batched" 1 (Internet.coalesced_batches inet);
  check_int "two members" 2 (Internet.coalesced_messages inet)

let test_co_broadcast_barrier () =
  (* Queued unicasts cannot be overtaken by a later broadcast. *)
  let eng = Engine.create () in
  let _, eps = make_inet_co ~coalesce:(co ~delay:(Time.ms 10) ()) eng in
  let got = ref [] in
  Internet.on_message eps.(1) (fun ~src:_ msg -> got := msg :: !got);
  Internet.send eps.(0) ~dst:1 "queued";
  Internet.broadcast eps.(0) "all stations";
  Engine.run eng;
  Alcotest.(check (list string))
    "unicast flushed ahead of the broadcast" [ "queued"; "all stations" ]
    (List.rev !got)

let test_co_loopback_bypasses_queue () =
  let eng = Engine.create () in
  let inet, eps = make_inet_co ~coalesce:(co ~delay:(Time.ms 10) ()) eng in
  let got = ref 0 in
  Internet.on_message eps.(0) (fun ~src:_ _ -> incr got);
  Internet.send eps.(0) ~dst:0 "to self";
  Engine.run eng;
  check_int "delivered immediately" 1 !got;
  check_int "nothing on the wire" 0 (Internet.frames_delivered inet);
  check_int "not counted as coalesced" 0 (Internet.coalesced_messages inet)

let test_co_partition_cuts_whole_batch () =
  (* A batch crossing the bridge when a partition lands loses every
     member, and the bridge counts one envelope, not one per member. *)
  let eng = Engine.create () in
  let inet, eps =
    make_inet_co ~segments:2 ~per_segment:2 ~coalesce:(co ~msgs:2 ()) eng
  in
  let got = ref 0 in
  Internet.on_message eps.(2) (fun ~src:_ _ -> incr got);
  Internet.send eps.(0) ~dst:2 "one";
  Internet.send eps.(0) ~dst:2 "two";
  (* Budget flush at t=0; the envelope reaches the bridge after ~80us
     of MAC time and sits in the 500us store-and-forward queue. *)
  Engine.schedule eng ~after:(Time.us 300) (fun () ->
      Internet.set_partitioned inet 1 true);
  Engine.run eng;
  check_int "no member survived" 0 !got;
  check_int "one envelope dropped" 1 (Internet.bridge_drops inet);
  check_int "batch was counted at flush" 1 (Internet.coalesced_batches inet)

let test_co_injector_drops_whole_batch () =
  (* The fault injector sees one decision per wire transfer; Drop on a
     batch loses all of its members. *)
  let eng = Engine.create () in
  let inet, eps = make_inet_co ~coalesce:(co ~msgs:3 ()) eng in
  let got = ref 0 in
  Internet.on_message eps.(1) (fun ~src:_ _ -> incr got);
  let decisions = ref 0 in
  Internet.set_fault_injector inet
    (Some
       (fun ~src:_ ~dst:_ ->
         incr decisions;
         Internet.Drop));
  List.iter (fun m -> Internet.send eps.(0) ~dst:1 m) [ "a"; "b"; "c" ];
  Engine.run eng;
  check_int "all members lost" 0 !got;
  check_int "one verdict for the whole batch" 1 !decisions

let test_co_down_sender_discards_queue () =
  let eng = Engine.create () in
  let inet, eps = make_inet_co ~coalesce:(co ~delay:(Time.ms 1) ()) eng in
  let got = ref 0 in
  Internet.on_message eps.(1) (fun ~src:_ _ -> incr got);
  Internet.send eps.(0) ~dst:1 "doomed";
  Internet.send eps.(0) ~dst:1 "also doomed";
  Internet.set_up eps.(0) false;
  Engine.run eng;
  check_int "queued messages discarded" 0 !got;
  check_int "nothing on the wire" 0 (Internet.frames_delivered inet);
  (* Back up: later traffic flows; the discarded queue stays lost. *)
  Internet.set_up eps.(0) true;
  Internet.send eps.(0) ~dst:1 "fresh";
  Engine.run eng;
  check_int "recovered" 1 !got

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "eden_net"
    [
      ( "params",
        [
          Alcotest.test_case "frame time" `Quick test_frame_time;
          Alcotest.test_case "frame time invalid" `Quick
            test_frame_time_invalid;
          Alcotest.test_case "validate" `Quick test_params_validate;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "unloaded latency" `Quick test_unloaded_latency;
          Alcotest.test_case "payload carried" `Quick test_payload_carried;
          Alcotest.test_case "queue order" `Quick test_queued_frames_in_order;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "validation" `Quick test_send_validation;
        ] );
      ( "contention",
        [
          Alcotest.test_case "collision recovery" `Quick
            test_collision_then_recovery;
          Alcotest.test_case "drop after max attempts" `Quick
            test_drop_after_max_attempts;
          Alcotest.test_case "carrier sense" `Quick test_carrier_sense_defers;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "saturation" `Quick test_saturation_throughput;
          Alcotest.test_case "latency stats" `Quick
            test_latency_stats_populated;
          qt prop_all_frames_accounted;
        ] );
      ( "msglink",
        [
          Alcotest.test_case "small message" `Quick test_msglink_small_message;
          Alcotest.test_case "fragmentation" `Quick test_msglink_fragmentation;
          Alcotest.test_case "down endpoint" `Quick
            test_msglink_down_endpoint_drops;
          Alcotest.test_case "down sender" `Quick
            test_msglink_down_sender_sends_nothing;
          Alcotest.test_case "broadcast" `Quick test_msglink_broadcast;
          Alcotest.test_case "self send" `Quick test_msglink_self_send_rejected;
          qt prop_msglink_all_sizes_roundtrip;
        ] );
      ( "internet",
        [
          Alcotest.test_case "same segment" `Quick test_inet_same_segment;
          Alcotest.test_case "cross segment" `Quick test_inet_cross_segment;
          Alcotest.test_case "broadcast spans segments" `Quick
            test_inet_broadcast_spans_segments;
          Alcotest.test_case "addressing" `Quick test_inet_addressing;
          Alcotest.test_case "loopback self send" `Quick
            test_inet_loopback_self_send;
          Alcotest.test_case "single segment" `Quick
            test_inet_single_segment_no_bridge;
          Alcotest.test_case "down endpoint" `Quick test_inet_down_endpoint;
        ] );
      ( "faults",
        [
          Alcotest.test_case "partition drops cross-segment" `Quick
            test_partition_drops_cross_segment;
          Alcotest.test_case "partition kills frames in flight" `Quick
            test_partition_kills_frames_in_flight;
          Alcotest.test_case "partition spares local traffic" `Quick
            test_partition_leaves_local_traffic_alone;
          Alcotest.test_case "partition blocks broadcast" `Quick
            test_partition_blocks_broadcast;
          Alcotest.test_case "injector drop" `Quick test_injector_drop;
          Alcotest.test_case "injector duplicate" `Quick
            test_injector_duplicate;
          Alcotest.test_case "injector delay" `Quick test_injector_delay;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "flush on count budget" `Quick
            test_co_flush_on_count;
          Alcotest.test_case "flush on timeout" `Quick
            test_co_flush_on_timeout;
          Alcotest.test_case "budget vs timeout ordering" `Quick
            test_co_budget_vs_timeout_ordering;
          Alcotest.test_case "oversize bypass" `Quick
            test_co_oversize_flushes_then_travels_alone;
          Alcotest.test_case "broadcast barrier" `Quick
            test_co_broadcast_barrier;
          Alcotest.test_case "loopback bypasses queue" `Quick
            test_co_loopback_bypasses_queue;
          Alcotest.test_case "partition cuts whole batch" `Quick
            test_co_partition_cuts_whole_batch;
          Alcotest.test_case "injector drops whole batch" `Quick
            test_co_injector_drops_whole_batch;
          Alcotest.test_case "down sender discards queue" `Quick
            test_co_down_sender_discards_queue;
        ] );
    ]
