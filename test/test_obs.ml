(* Tests for the observability library: metrics registry, invocation
   spans, JSON snapshots, and the kernel's instrumentation of the
   invocation path. *)

open Eden_util
open Eden_sim
open Eden_obs
open Eden_kernel
open Api

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_registry_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~labels:[ ("node", "0") ] "inv" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter value" 5 (Metrics.counter_value c);
  (* Same (name, labels) returns the same instrument. *)
  let c' = Metrics.counter reg ~labels:[ ("node", "0") ] "inv" in
  Metrics.incr c';
  check_int "shared by name" 6 (Metrics.counter_value c);
  (* Labels are order-insensitive. *)
  let g = Metrics.gauge reg ~labels:[ ("a", "1"); ("b", "2") ] "depth" in
  Metrics.set g 3.5;
  let g' = Metrics.gauge reg ~labels:[ ("b", "2"); ("a", "1") ] "depth" in
  check_bool "label order irrelevant" true (Metrics.gauge_value g' = 3.5);
  (* Kind mismatch on an existing name is rejected. *)
  check_bool "kind mismatch raises" true
    (try
       ignore (Metrics.gauge reg ~labels:[ ("node", "0") ] "inv");
       false
     with Invalid_argument _ -> true);
  (* Counters are monotonic. *)
  check_bool "negative add raises" true
    (try
       Metrics.add c (-1);
       false
     with Invalid_argument _ -> true)

let test_sample_determinism () =
  let reg = Metrics.create () in
  (* Register out of order; samples must come back sorted and stable. *)
  Metrics.incr (Metrics.counter reg ~labels:[ ("node", "1") ] "inv");
  Metrics.incr (Metrics.counter reg ~labels:[ ("node", "0") ] "inv");
  Metrics.register_gauge_fn reg "live" (fun () -> 7.0);
  let s1 = Metrics.sample reg in
  let s2 = Metrics.sample reg in
  check_bool "two samples identical" true (s1 = s2);
  check_int "three samples" 3 (List.length s1);
  (match List.map (fun s -> (s.Metrics.s_name, s.Metrics.s_labels)) s1 with
  | [ ("inv", [ ("node", "0") ]); ("inv", [ ("node", "1") ]); ("live", []) ]
    ->
    ()
  | other ->
    Alcotest.failf "unexpected sample order: %s"
      (String.concat "; " (List.map (fun (n, _) -> n) other)));
  check_bool "sampled closure read" true
    (Metrics.find s1 "live" = Some (Metrics.Gauge 7.0))

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[| 1.0; 2.0; 5.0 |] "lat" in
  List.iter (Metrics.observe h) [ 1.0; 1.5; 2.0; 5.0; 7.0; 0.5 ];
  match Metrics.find (Metrics.sample reg) "lat" with
  | Some (Metrics.Histogram v) ->
    (* v <= bound lands in the first such bucket; beyond the last bound
       counts as overflow. *)
    check_bool "bucket counts" true (v.Metrics.counts = [| 2; 2; 1 |]);
    check_int "overflow" 1 v.Metrics.overflow;
    check_int "total count" 6 v.Metrics.count;
    check_bool "sum" true (abs_float (v.Metrics.sum -. 17.0) < 1e-9);
    check_bool "non-increasing bounds rejected" true
      (try
         ignore (Metrics.histogram reg ~buckets:[| 2.0; 2.0 |] "bad");
         false
       with Invalid_argument _ -> true)
  | _ -> Alcotest.fail "histogram sample missing"

(* Measurement-bug inputs must be dropped, not recorded: a NaN gauge
   store would poison every later comparison, and a NaN/negative/
   infinite observation would corrupt bucket counts or the sum. *)
let test_metrics_guards () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "depth" in
  Metrics.set g 2.0;
  Metrics.set g nan;
  check_bool "NaN set dropped" true (Metrics.gauge_value g = 2.0);
  Metrics.set g (-3.0);
  check_bool "negative gauge is a level, kept" true
    (Metrics.gauge_value g = -3.0);
  let h = Metrics.histogram reg ~buckets:[| 1.0; 2.0 |] "lat" in
  Metrics.observe h 1.5;
  (* Virtual time cannot go negative, so the duration guard lives at
     the float level: negative, NaN and infinite observations drop. *)
  List.iter (Metrics.observe h) [ nan; -0.5; infinity ];
  (match Metrics.find (Metrics.sample reg) "lat" with
  | Some (Metrics.Histogram v) ->
    check_int "only the valid observation counted" 1 v.Metrics.count;
    check_bool "sum untouched by dropped inputs" true
      (v.Metrics.sum = 1.5);
    check_int "nothing in overflow" 0 v.Metrics.overflow
  | _ -> Alcotest.fail "histogram sample missing");
  (* The iter filter skips rejected instruments before reading them:
     an expensive (here: exploding) collector must not run. *)
  Metrics.register_gauge_fn reg "expensive" (fun () ->
      Alcotest.fail "filtered-out collector was evaluated");
  let seen = ref [] in
  Metrics.iter
    ~filter:(fun name -> name <> "expensive")
    reg
    (fun name _ _ -> seen := name :: !seen);
  check_bool "filtered walk saw the others" true
    (List.sort compare !seen = [ "depth"; "lat" ])

(* ------------------------------------------------------------------ *)
(* Sliding windows *)

let test_window_basics () =
  let w = Window.create ~ticks:4 in
  check_bool "empty sum" true (Window.sum_last w 4 = 0.0);
  check_bool "empty mean is nan" true (Float.is_nan (Window.mean_last w 4));
  check_bool "empty max is nan" true (Float.is_nan (Window.max_last w 4));
  List.iter (Window.push w) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  (* Ring of 4: the 1.0 has been evicted. *)
  check_bool "sum over full window" true (Window.sum_last w 4 = 14.0);
  check_bool "sum over last 2" true (Window.sum_last w 2 = 9.0);
  check_bool "deeper query clamps to filled" true
    (Window.sum_last w 100 = 14.0);
  check_bool "max over last 3" true (Window.max_last w 3 = 5.0);
  check_bool "mean over last 2" true (Window.mean_last w 2 = 4.5);
  check_bool "rate: sum / elapsed" true
    (Window.rate_last w 2 ~tick:(Time.of_sec 0.5) = 9.0);
  check_bool "zero ticks rejected" true
    (try
       ignore (Window.create ~ticks:0);
       false
     with Invalid_argument _ -> true);
  (* Merge sums slot-wise across windows of the same shape. *)
  let a = Window.create ~ticks:3 and b = Window.create ~ticks:3 in
  List.iter (Window.push a) [ 1.0; 2.0; 3.0 ];
  List.iter (Window.push b) [ 10.0; 20.0; 30.0 ];
  let m = Window.merge a b in
  check_bool "merged newest slot" true (Window.sum_last m 1 = 33.0);
  check_bool "merged full window" true (Window.sum_last m 3 = 66.0);
  check_bool "merge rejects shape mismatch" true
    (try
       ignore (Window.merge a (Window.create ~ticks:4));
       false
     with Invalid_argument _ -> true)

let test_window_hist_quantile () =
  let bounds = [| 0.01; 0.1; 1.0 |] in
  let h = Window.Hist.create ~ticks:3 ~bounds in
  check_bool "empty quantile is nan" true
    (Float.is_nan (Window.Hist.quantile_last h 3 0.5));
  (* Tick 1: 10 fast, tick 2: 10 slow. *)
  Window.Hist.push h ~counts:[| 10; 0; 0 |] ~overflow:0;
  Window.Hist.push h ~counts:[| 0; 0; 10 |] ~overflow:0;
  check_int "counts accumulate over the window" 20
    (Window.Hist.count_last h 3);
  check_bool "p25 stays in the fast bucket" true
    (Window.Hist.quantile_last h 3 0.25 <= 0.01);
  check_bool "p99 reaches the slow bucket" true
    (Window.Hist.quantile_last h 3 0.99 > 0.1);
  (* Depth 1 sees only the slow tick. *)
  check_bool "shallow query is all slow" true
    (Window.Hist.quantile_last h 1 0.25 > 0.1);
  (* Overflow mass reports the last bound (we know nothing beyond it). *)
  Window.Hist.push h ~counts:[| 0; 0; 0 |] ~overflow:5;
  check_bool "overflow quantile clamps to last bound" true
    (Window.Hist.quantile_last h 1 0.99 = 1.0);
  check_bool "quantile out of range rejected" true
    (try
       ignore (Window.Hist.quantile_last h 1 1.5);
       false
     with Invalid_argument _ -> true)

let test_window_hist_quantile_edges () =
  (* The hedge threshold on the invocation hot path derives from
     these quantiles, so the edges must be airtight: a single-bucket
     histogram, a window whose observations have all aged out, and
     the nan that threshold consumers must guard. *)
  let h = Window.Hist.create ~ticks:2 ~bounds:[| 0.5 |] in
  Window.Hist.push h ~counts:[| 4 |] ~overflow:0;
  check_bool "q=0 stays inside the only bucket" true
    (let v = Window.Hist.quantile_last h 2 0.0 in
     v >= 0.0 && v <= 0.5);
  check_bool "q=1 stays inside the only bucket" true
    (let v = Window.Hist.quantile_last h 2 1.0 in
     v >= 0.0 && v <= 0.5);
  (* Zero-count ticks age the observations out of the window. *)
  Window.Hist.push h ~counts:[| 0 |] ~overflow:0;
  Window.Hist.push h ~counts:[| 0 |] ~overflow:0;
  check_int "no observations left in the window" 0
    (Window.Hist.count_last h 2);
  let v = Window.Hist.quantile_last h 2 0.5 in
  check_bool "aged-out window reports nan" true (Float.is_nan v);
  (* The nan is a disarm signal, not a number: a threshold comparison
     against it must be false both ways, so a consumer that hedges on
     [elapsed > threshold] goes quiet instead of hedging everything. *)
  check_bool "nan never exceeds a latency" true (not (1.0 > v));
  check_bool "nan never undercuts a latency" true (not (1.0 < v));
  (* A window holding only overflow mass clamps to the only bound. *)
  Window.Hist.push h ~counts:[| 0 |] ~overflow:3;
  check_bool "overflow-only window clamps to the bound" true
    (Window.Hist.quantile_last h 1 0.5 = 0.5)

(* ------------------------------------------------------------------ *)
(* Top-k sketch *)

let test_topk_sketch () =
  (* Under capacity the sketch is exact with zero error. *)
  let t = Topk.create ~capacity:4 in
  Topk.add t "a" ~count:3;
  Topk.add t "b";
  Topk.add t "b";
  Topk.add t "c";
  check_int "total" 6 (Topk.total t);
  (match Topk.top t 2 with
  | [ x; y ] ->
    check_string "heaviest" "a" x.Topk.e_key;
    check_int "heaviest count" 3 x.Topk.e_count;
    check_string "runner-up" "b" y.Topk.e_key;
    check_int "exact err below capacity" 0 (x.Topk.e_err + y.Topk.e_err)
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  (* Ties order by key, so reports are deterministic. *)
  (match Topk.top t 3 with
  | [ _; b'; c' ] ->
    check_bool "tie broken by key" true
      (b'.Topk.e_count = c'.Topk.e_count || b'.Topk.e_key = "b");
    check_string "c after b on tie" "c" c'.Topk.e_key
  | _ -> Alcotest.fail "expected 3 entries");
  (* At capacity a newcomer evicts the minimum and inherits its count
     as error; estimates never undercount. *)
  Topk.add t "d";
  Topk.add t "e";
  let e =
    match List.find_opt (fun e -> e.Topk.e_key = "e") (Topk.entries t) with
    | Some e -> e
    | None -> Alcotest.fail "newcomer missing after eviction"
  in
  check_bool "overestimate, never under" true (e.Topk.e_count >= 1);
  check_bool "error bounds the inheritance" true
    (e.Topk.e_count - e.Topk.e_err <= 1);
  check_bool "negative count rejected" true
    (try
       Topk.add t "x" ~count:(-1);
       false
     with Invalid_argument _ -> true);
  (* Merge: exact sketches combine exactly. *)
  let a = Topk.create ~capacity:8 and b = Topk.create ~capacity:8 in
  Topk.add a "x" ~count:5;
  Topk.add a "y" ~count:2;
  Topk.add b "x" ~count:1;
  Topk.add b "z" ~count:4;
  let m = Topk.merge ~capacity:8 [ a; b ] in
  check_int "merged total" 12 (Topk.total m);
  (match Topk.top m 3 with
  | [ x; z; y ] ->
    check_bool "merged counts" true
      (x.Topk.e_key = "x" && x.Topk.e_count = 6
      && z.Topk.e_key = "z" && z.Topk.e_count = 4
      && y.Topk.e_key = "y" && y.Topk.e_count = 2)
  | _ -> Alcotest.fail "merge lost entries")

(* ------------------------------------------------------------------ *)
(* Health watchdogs (unit level, fresh registry, manual ticks) *)

let test_health_unit () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~labels:[ ("node", "0") ] "req" in
  let c1 = Metrics.counter reg ~labels:[ ("node", "1") ] "req" in
  let rule =
    {
      Health.r_name = "req-rate";
      r_signal = Health.Rate "req";
      r_cmp = Health.Above;
      r_threshold = 5.0;
    }
  in
  let cfg =
    {
      Health.hc_tick = Time.of_sec 1.0;
      hc_short = 1;
      hc_long = 2;
      hc_rules = [ rule ];
    }
  in
  let log = ref [] in
  let on_transition r ~firing ~value:_ =
    log := (r.Health.r_name, firing) :: !log
  in
  (* Pre-existing totals are baselined away: the first tick's delta
     measures the first tick only. *)
  Metrics.add c 1000;
  let h = Health.create ~on_transition cfg reg in
  Health.tick h;
  check_int "baselined: quiet first tick" 0 (Health.firing h);
  (* Labelled series sum across nodes: 8 + 7 = 15/s > 10. *)
  (* Labelled series sum across nodes: 8 + 7 = 15/s.  The short
     window (1 tick) sees 15/s and the long window (2 ticks) averages
     (0 + 15)/2 = 7.5/s — both above 5, so the rule fires. *)
  Metrics.add c 8;
  Metrics.add c1 7;
  Health.tick h;
  check_int "short and long breach together" 1 (Health.firing h);
  check_int "one transition" 1 (Health.transitions h);
  check_bool "callback saw the rise" true (!log = [ ("req-rate", true) ]);
  (* Hysteresis: the long window still remembers the burst, so one
     quiet tick does not clear. *)
  Health.tick h;
  check_int "still firing on the long window" 1 (Health.firing h);
  (* Second quiet tick ages the burst out of both windows. *)
  Health.tick h;
  check_int "cleared" 0 (Health.firing h);
  check_int "two transitions total" 2 (Health.transitions h);
  check_bool "callback saw the clear" true
    (List.hd !log = ("req-rate", false));
  check_int "ticks counted" 4 (Health.ticks h);
  (* The report renders every rule and is pure (same state, same
     bytes). *)
  check_bool "report mentions the rule" true
    (let r = Health.report h in
     let n = String.length r and m = String.length "req-rate" in
     let rec go i =
       i + m <= n && (String.sub r i m = "req-rate" || go (i + 1))
     in
     go 0);
  check_bool "report is pure" true (Health.report h = Health.report h);
  (* Config validation. *)
  let bad f =
    try
      ignore (Health.create (f cfg) reg);
      false
    with Invalid_argument _ -> true
  in
  check_bool "zero tick rejected" true
    (bad (fun c -> { c with Health.hc_tick = Time.zero }));
  check_bool "short < 1 rejected" true
    (bad (fun c -> { c with Health.hc_short = 0 }));
  check_bool "long < short rejected" true
    (bad (fun c -> { c with Health.hc_short = 3; hc_long = 2 }));
  check_bool "quantile out of range rejected" true
    (bad (fun c ->
         {
           c with
           Health.hc_rules =
             [
               {
                 rule with
                 Health.r_signal = Health.Quantile ("lat", 1.5);
               };
             ];
         }))

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_phases_sum () =
  let col = Span.create () in
  let sp = Span.start col ~op:"read" ~target:"obj" ~origin:1 ~at:Time.zero () in
  Span.enter sp Span.Transport ~at:(Time.us 10);
  Span.note_remote sp;
  Span.enter sp Span.Queue ~at:(Time.us 25);
  Span.enter sp Span.Dispatch ~at:(Time.us 30);
  Span.enter sp Span.Execute ~at:(Time.us 50);
  (* A nack retry re-enters Locate; the sum property must survive. *)
  Span.enter sp Span.Locate ~at:(Time.us 60);
  Span.enter sp Span.Execute ~at:(Time.us 75);
  Span.enter sp Span.Reply ~at:(Time.us 90);
  Span.finish sp ~outcome:"ok" ~at:(Time.us 100);
  check_int "duration" 100_000 (Time.to_ns (Span.duration sp));
  let info =
    match Span.last_finished col with
    | Some i -> i
    | None -> Alcotest.fail "no finished span"
  in
  let phase_sum =
    List.fold_left
      (fun acc (_, d) -> acc + Time.to_ns d)
      0 info.Span.i_phases
  in
  check_int "phases partition the lifetime" 100_000 phase_sum;
  check_int "locate re-entered" 25_000
    (Time.to_ns (Span.info_phase info Span.Locate));
  check_int "execute accumulated" 25_000
    (Time.to_ns (Span.info_phase info Span.Execute));
  check_bool "remote noted" true info.Span.i_remote;
  check_string "outcome" "ok" info.Span.i_outcome;
  (* finish is idempotent; enter on a finished span is a no-op. *)
  Span.finish sp ~outcome:"late" ~at:(Time.ms 5);
  Span.enter sp Span.Execute ~at:(Time.ms 5);
  check_int "still one retained" 1 (Span.finished_count col);
  check_string "first outcome wins" "ok"
    (match Span.last_finished col with
    | Some i -> i.Span.i_outcome
    | None -> "?")

let test_span_retention () =
  let col = Span.create ~keep:2 () in
  for i = 1 to 4 do
    let sp =
      Span.start col ~op:(string_of_int i) ~target:"t" ~origin:0
        ~at:Time.zero ()
    in
    Span.finish sp ~outcome:"ok" ~at:(Time.us i)
  done;
  check_int "all counted" 4 (Span.finished_count col);
  check_bool "only the last two retained" true
    (List.map (fun i -> i.Span.i_op) (Span.finished col) = [ "3"; "4" ])

(* ------------------------------------------------------------------ *)
(* Snapshot JSON *)

let test_snapshot_roundtrip () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg ~labels:[ ("node", "0") ] "inv") 3;
  Metrics.set (Metrics.gauge reg "util") 0.12345678901;
  let h = Metrics.histogram reg ~buckets:[| 0.001; 0.01 |] "lat" in
  Metrics.observe h 0.002;
  Metrics.observe h 0.5;
  let col = Span.create () in
  let parent =
    Span.start col ~op:"outer" ~target:"a" ~origin:0 ~at:Time.zero ()
  in
  let child =
    Span.start col ~parent ~op:"inner" ~target:"b" ~origin:1
      ~at:(Time.us 5) ()
  in
  Span.note_remote child;
  Span.finish child ~outcome:"ok" ~at:(Time.us 9);
  Span.finish parent ~outcome:"timeout" ~at:(Time.us 20);
  let snap = Snapshot.take ~at:(Time.ms 3) ~spans:col reg in
  (* Compact and indented renderings parse back to the same value. *)
  List.iter
    (fun compact ->
      match Snapshot.of_string (Snapshot.to_string ~compact snap) with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok snap' ->
        check_bool "roundtrip preserves everything" true (snap' = snap))
    [ true; false ];
  (* Parent links survive the trip. *)
  match Snapshot.of_string (Snapshot.to_string snap) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok snap' ->
    let inner =
      match Span.children snap'.Snapshot.spans (Span.id parent) with
      | [ i ] -> i
      | l -> Alcotest.failf "expected one child, got %d" (List.length l)
    in
    check_string "child op" "inner" inner.Span.i_op;
    check_bool "child remote" true inner.Span.i_remote

let test_snapshot_rejects_garbage () =
  check_bool "not json" true (Result.is_error (Snapshot.of_string "{"));
  check_bool "wrong schema" true
    (Result.is_error (Snapshot.of_string "{\"schema\":\"nope\"}"))

(* Regression: [edenctl chaos --metrics-out results/run1/snap.json]
   used to die with Sys_error when the directory tree did not exist.
   write_file must create the missing parents. *)
let test_snapshot_write_file_creates_parents () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "inv") 7;
  let snap = Snapshot.take ~at:(Time.ms 1) reg in
  let base = Filename.temp_file "eden_obs" "" in
  Sys.remove base;
  let path = Filename.concat (Filename.concat base "a/b") "snap.json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path ];
      List.iter
        (fun d -> try Sys.rmdir d with Sys_error _ -> ())
        [ Filename.dirname path; Filename.concat base "a"; base ])
    (fun () ->
      Snapshot.write_file snap ~path;
      match Snapshot.of_string (In_channel.with_open_text path In_channel.input_all) with
      | Ok snap' -> check_bool "file parses back" true (snap' = snap)
      | Error e -> Alcotest.failf "written file unreadable: %s" e);
  (* Writing to an existing directory still works (idempotent mkdir). *)
  check_bool "cleaned up" true (not (Sys.file_exists path))

(* ------------------------------------------------------------------ *)
(* Kernel instrumentation *)

let relay_type =
  Typemgr.make_exn ~name:"obs_relay"
    [
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
      Typemgr.operation "spin" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          ctx.compute (Time.us 50);
          reply []);
      Typemgr.operation "relay_get" ~mutates:false (fun ctx args ->
          let* v = arg1 args in
          let* target = cap_arg v in
          let* r = ctx.invoke target ~op:"get" [] in
          reply r);
    ]

let with_cluster ?seed ?(n = 3) body =
  let cl = Cluster.default ?seed ~n_nodes:n () in
  Cluster.register_type cl relay_type;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver did not complete"

let test_remote_span_matches_latency () =
  with_cluster (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
             (Value.Int 7))
      in
      let eng = Cluster.engine cl in
      let t0 = Engine.now eng in
      ignore
        (ok_or_fail "invoke" (Cluster.invoke cl ~from:0 cap ~op:"spin" []));
      let latency = Time.diff (Engine.now eng) t0 in
      let info =
        match Span.last_finished (Cluster.spans cl) with
        | Some i -> i
        | None -> Alcotest.fail "no span recorded"
      in
      check_string "span op" "spin" info.Span.i_op;
      check_int "origin node" 0 info.Span.i_origin;
      check_bool "crossed the wire" true info.Span.i_remote;
      check_string "outcome" "ok" info.Span.i_outcome;
      (* The span's end-to-end duration is the observed virtual-time
         latency, and the phase durations partition it exactly. *)
      check_int "span duration = observed latency" (Time.to_ns latency)
        (Time.to_ns (Span.info_duration info));
      let phase_sum =
        List.fold_left
          (fun acc (_, d) -> acc + Time.to_ns d)
          0 info.Span.i_phases
      in
      check_int "phase sum = latency" (Time.to_ns latency) phase_sum;
      check_bool "transport charged" true
        Time.(Span.info_phase info Span.Transport > zero);
      check_bool "execute charged the handler's compute" true
        Time.(Span.info_phase info Span.Execute >= us 50))

let test_local_span_skips_transport () =
  with_cluster (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:0 ~type_name:"obs_relay"
             (Value.Int 1))
      in
      ignore (ok_or_fail "invoke" (Cluster.invoke cl ~from:0 cap ~op:"get" []));
      let info =
        match Span.last_finished (Cluster.spans cl) with
        | Some i -> i
        | None -> Alcotest.fail "no span recorded"
      in
      check_bool "local" false info.Span.i_remote;
      check_int "no transport" 0
        (Time.to_ns (Span.info_phase info Span.Transport)))

let test_nested_invoke_parent_link () =
  with_cluster (fun cl ->
      let a =
        ok_or_fail "create a"
          (Cluster.create_object cl ~node:0 ~type_name:"obs_relay"
             (Value.Int 0))
      in
      let b =
        ok_or_fail "create b"
          (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
             (Value.Int 42))
      in
      (match
         Cluster.invoke cl ~from:2 a ~op:"relay_get" [ Value.Cap b ]
       with
      | Ok [ Value.Int 42 ] -> ()
      | Ok _ -> Alcotest.fail "unexpected relay result"
      | Error e -> Alcotest.failf "relay: %s" (Error.to_string e));
      let infos = Span.finished (Cluster.spans cl) in
      let outer =
        match
          List.find_opt (fun i -> i.Span.i_op = "relay_get") infos
        with
        | Some i -> i
        | None -> Alcotest.fail "outer span missing"
      in
      match Span.children infos outer.Span.i_id with
      | [ inner ] ->
        check_string "nested op" "get" inner.Span.i_op;
        (* ctx.invoke runs in A's handler on node 0. *)
        check_int "nested origin is the handler's node" 0
          inner.Span.i_origin;
        check_bool "nested finished inside the outer span" true
          Time.(inner.Span.i_finish <= outer.Span.i_finish)
      | l -> Alcotest.failf "expected one child span, got %d" (List.length l))

let test_cluster_snapshot_contents () =
  with_cluster (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
             (Value.Int 0))
      in
      for _ = 1 to 5 do
        ignore
          (ok_or_fail "invoke" (Cluster.invoke cl ~from:0 cap ~op:"get" []))
      done;
      let snap = Cluster.metrics_snapshot cl in
      let counter name labels =
        match Snapshot.find snap ~labels name with
        | Some (Metrics.Counter n) -> n
        | _ -> Alcotest.failf "missing counter %s" name
      in
      check_int "invocations from node 0" 5
        (counter "eden.invocations" [ ("node", "0") ]);
      check_int "all remote" 5
        (counter "eden.invocations_remote" [ ("node", "0") ]);
      check_int "dispatches on node 1" 5
        (counter "eden.dispatches" [ ("node", "1") ]);
      check_bool "first call misses the hint cache" true
        (counter "eden.hint_misses" [ ("node", "0") ] >= 1);
      check_bool "later calls hit it" true
        (counter "eden.hint_hits" [ ("node", "0") ] >= 4);
      check_bool "frames crossed segment 0" true
        (counter "net.frames_sent" [ ("segment", "0") ] > 0);
      check_bool "engine events sampled" true
        (match Snapshot.find snap "sim.events" with
        | Some (Metrics.Counter n) -> n > 0
        | _ -> false);
      (match Snapshot.find snap "eden.invocation_latency_s" with
      | Some (Metrics.Histogram v) ->
        check_int "every invocation observed" 5 v.Metrics.count
      | _ -> Alcotest.fail "latency histogram missing");
      check_int "spans retained" 5 (List.length snap.Snapshot.spans);
      (* The exported snapshot passes its own round trip. *)
      check_bool "export parses" true
        (Result.is_ok (Snapshot.of_string (Snapshot.to_string snap))))

(* ------------------------------------------------------------------ *)
(* Event journals, trace contexts, timelines, and the trace checker *)

let test_tracectx () =
  let r = Tracectx.root 7 in
  check_int "root trace" 7 (Tracectx.trace r);
  check_int "root parent" 7 (Tracectx.parent r);
  let c = Tracectx.with_parent r ~parent:9 in
  check_int "same trace" 7 (Tracectx.trace c);
  check_int "new parent" 9 (Tracectx.parent c);
  check_bool "equal" true (Tracectx.equal c (Tracectx.make ~trace:7 ~parent:9))

let test_journal_ring () =
  let sink = Journal.sink () in
  let j = Journal.create sink ~node:0 ~cap:4 in
  check_bool "enabled" true (Journal.enabled j);
  for i = 0 to 9 do
    ignore
      (Journal.record j ~at:(Time.ms i) (Journal.Retry { op = "x"; attempt = i }))
  done;
  check_int "recorded counts everything" 10 (Journal.recorded j);
  check_int "overflow counted as dropped" 6 (Journal.dropped j);
  let evs = Journal.events j in
  check_int "ring keeps cap events" 4 (List.length evs);
  check_bool "oldest evicted first, order kept" true
    (List.map (fun e -> e.Journal.ev_id) evs = [ 6; 7; 8; 9 ]);
  (* cap 0 disables retention but still allocates ids from the shared
     sink, so trace contexts stay meaningful. *)
  let j0 = Journal.create sink ~node:1 ~cap:0 in
  check_bool "disabled" false (Journal.enabled j0);
  let id = Journal.record j0 ~at:Time.zero (Journal.Send { msg = "m"; dst = None }) in
  check_int "sink ids keep advancing" 10 id;
  check_int "nothing retained" 0 (List.length (Journal.events j0));
  check_bool "negative cap rejected" true
    (try
       ignore (Journal.create sink ~node:2 ~cap:(-1));
       false
     with Invalid_argument _ -> true)

(* The ring stores kinds in an encoded form; every constructor must
   survive the round trip to [events] intact. *)
let test_journal_kind_roundtrip () =
  let kinds =
    [
      Journal.Send { msg = "inv_request obj#1.get"; dst = Some 2 };
      Journal.Send { msg = "locate? obj#1"; dst = None };
      Journal.Recv { msg = "inv_reply n0"; src = 3 };
      Journal.Drop { dst = Some 1; msgs = 2 };
      Journal.Drop { dst = None; msgs = 1 };
      Journal.Duplicate { dst = Some 0; msgs = 1 };
      Journal.Delay { dst = None; msgs = 4 };
      Journal.Coalesce { dst = 2; msgs = 6 };
      Journal.Retry { op = "get"; attempt = 2 };
      Journal.Inv_begin { op = "get"; target = "obj#1" };
      Journal.Inv_end { op = "get"; outcome = "ok" };
      Journal.Ckpt_round { target = "obj#1"; version = 3 };
      Journal.Cache_install { target = "obj#1"; epoch = 1 };
      Journal.Cache_invalidate { target = "obj#1"; epoch = 2 };
      Journal.Activate { target = "obj#1"; version = 4 };
      Journal.Alert { rule = "inv-latency-p99"; firing = true };
      Journal.Alert { rule = "retry-ratio"; firing = false };
      Journal.Work_start { op = "get" };
      Journal.Net_flush { dst = 2; msgs = 3 };
      Journal.Net_hold { dst = Some 1; by = Time.us 7 };
      Journal.Net_hold { dst = None; by = Time.ms 2 };
      Journal.Drain_stall { target = "obj#1" };
    ]
  in
  let j = Journal.create (Journal.sink ()) ~node:0 ~cap:64 in
  List.iteri
    (fun i k -> ignore (Journal.record j ~at:(Time.us i) k))
    kinds;
  let back = List.map (fun e -> e.Journal.ev_kind) (Journal.events j) in
  check_bool "all kinds round-trip the ring encoding" true (back = kinds)

(* Alert events obey the same retention accounting as every other
   kind: cap 0 allocates ids but retains and drops nothing; a full
   ring counts exactly the overwritten events as dropped. *)
let test_journal_alert_retention () =
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:0 in
  let first =
    Journal.record j0 ~at:Time.zero
      (Journal.Alert { rule = "r"; firing = true })
  in
  let second =
    Journal.record j0 ~at:(Time.ms 1)
      (Journal.Alert { rule = "r"; firing = false })
  in
  check_int "ids advance at cap 0" (first + 1) second;
  check_int "nothing retained" 0 (List.length (Journal.events j0));
  check_int "cap 0 never counts drops" 0 (Journal.dropped j0);
  check_int "cap 0 records nothing either" 0 (Journal.recorded j0);
  (* Mixed alert/other traffic through a cap-3 ring: 7 records leave
     the newest 3, and dropped = recorded - retained exactly. *)
  let j = Journal.create sink ~node:1 ~cap:3 in
  let kinds =
    [
      Journal.Alert { rule = "a"; firing = true };
      Journal.Retry { op = "get"; attempt = 1 };
      Journal.Alert { rule = "b"; firing = true };
      Journal.Send { msg = "m"; dst = Some 0 };
      Journal.Alert { rule = "a"; firing = false };
      Journal.Recv { msg = "m"; src = 0 };
      Journal.Alert { rule = "b"; firing = false };
    ]
  in
  List.iteri (fun i k -> ignore (Journal.record j ~at:(Time.ms i) k)) kinds;
  check_int "recorded counts everything" 7 (Journal.recorded j);
  check_int "dropped = recorded - retained" 4 (Journal.dropped j);
  let back = List.map (fun e -> e.Journal.ev_kind) (Journal.events j) in
  check_bool "newest three survive, kinds intact" true
    (back
    = [
        Journal.Alert { rule = "a"; firing = false };
        Journal.Recv { msg = "m"; src = 0 };
        Journal.Alert { rule = "b"; firing = false };
      ])

(* A hand-built two-node exchange: send on node 0, causally linked
   recv on node 1.  The assembled timeline is id-sorted, spans both
   nodes, satisfies the checker, and exports a matched s/f flow pair
   in the Chrome trace. *)
let make_exchange () =
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:16 in
  let j1 = Journal.create sink ~node:1 ~cap:16 in
  let s =
    Journal.record j0 ~at:(Time.us 1) (Journal.Send { msg = "m"; dst = Some 1 })
  in
  let ctx = Tracectx.root s in
  let _r =
    Journal.record j1 ~at:(Time.us 3) ~ctx (Journal.Recv { msg = "m"; src = 0 })
  in
  (* Assembly takes journals in any order and sorts by id. *)
  (sink, j0, j1, Timeline.assemble [ j1; j0 ])

let test_timeline_assemble () =
  let _, _, _, tl = make_exchange () in
  check_int "two events" 2 (Timeline.length tl);
  check_bool "id-sorted" true
    (List.map (fun e -> e.Journal.ev_id) (Timeline.events tl) = [ 0; 1 ]);
  check_bool "both nodes present" true (Timeline.nodes tl = [ 0; 1 ]);
  check_int "one trace" 1 (List.length (Timeline.traces tl));
  let chrome = Timeline.to_chrome_string tl in
  let has sub =
    let n = String.length chrome and m = String.length sub in
    let rec go i = i + m <= n && (String.sub chrome i m = sub || go (i + 1)) in
    go 0
  in
  check_bool "flow start exported" true (has {|"ph":"s"|});
  check_bool "flow finish exported" true (has {|"ph":"f"|});
  check_bool "text render non-empty" true (String.length (Timeline.to_text tl) > 0)

let test_checker () =
  let _, _, _, tl = make_exchange () in
  check_int "well-formed exchange passes" 0 (List.length (Check.run tl));
  (* A recv whose parent is not a send on the named source node. *)
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:16 in
  let j1 = Journal.create sink ~node:1 ~cap:16 in
  let p =
    Journal.record j0 ~at:(Time.us 1) (Journal.Retry { op = "x"; attempt = 1 })
  in
  ignore
    (Journal.record j1 ~at:(Time.us 2) ~ctx:(Tracectx.root p)
       (Journal.Recv { msg = "m"; src = 0 }));
  let vs = Check.run (Timeline.assemble [ j0; j1 ]) in
  check_bool "recv-matches-send fires" true
    (List.exists (fun v -> v.Check.v_rule = "recv-matches-send") vs);
  (* An event earlier in virtual time than its causal parent. *)
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:16 in
  let s =
    Journal.record j0 ~at:(Time.us 5) (Journal.Send { msg = "m"; dst = Some 0 })
  in
  ignore
    (Journal.record j0 ~at:(Time.us 2) ~ctx:(Tracectx.root s)
       (Journal.Recv { msg = "m"; src = 0 }));
  let vs = Check.run (Timeline.assemble [ j0 ]) in
  check_bool "causal-time-order fires" true
    (List.exists (fun v -> v.Check.v_rule = "causal-time-order") vs);
  (* Incomplete journals skip the completeness-dependent rules: the
     same broken recv is ignored when [complete:false]. *)
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:16 in
  ignore
    (Journal.record j0 ~at:(Time.us 1)
       ~ctx:(Tracectx.make ~trace:999 ~parent:999)
       (Journal.Recv { msg = "m"; src = 0 }));
  check_int "dangling parent tolerated when incomplete" 0
    (List.length (Check.run ~complete:false (Timeline.assemble [ j0 ])))

(* The kernel's own journals: a short cluster run yields a non-empty,
   checker-clean, multi-node timeline through the public accessors. *)
let test_cluster_journal () =
  with_cluster (fun cl ->
      let cap =
        ok_or_fail "create"
          (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
             (Value.Int 7))
      in
      for _ = 1 to 4 do
        ignore (ok_or_fail "get" (Cluster.invoke cl ~from:0 cap ~op:"get" []))
      done;
      ignore (ok_or_fail "get" (Cluster.invoke cl ~from:2 cap ~op:"get" []));
      let tl = Cluster.timeline cl in
      check_bool "events recorded" true (Timeline.length tl > 0);
      check_int "no drops at default cap" 0 (Cluster.journal_dropped cl);
      check_bool "spans all three nodes" true
        (List.length (Timeline.nodes tl) = 3);
      check_int "invariants hold" 0 (List.length (Check.run tl)));
  (* journal_cap:0 disables retention cluster-wide. *)
  let cl0 = Cluster.default ~journal_cap:0 ~n_nodes:2 () in
  Cluster.register_type cl0 relay_type;
  let _ =
    Cluster.in_process cl0 (fun () ->
        let cap =
          ok_or_fail "create"
            (Cluster.create_object cl0 ~node:0 ~type_name:"obs_relay"
               (Value.Int 0))
        in
        ignore (ok_or_fail "get" (Cluster.invoke cl0 ~from:1 cap ~op:"get" [])))
  in
  Cluster.run cl0;
  check_int "cap 0 retains nothing" 0 (Timeline.length (Cluster.timeline cl0))

(* ------------------------------------------------------------------ *)
(* Critical-path attribution: hand-built traces where every gap's
   category is known in advance, then the profiler over real cluster
   runs. *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* One remote request with a mid-flight injected hold: begin, request
   out (held 3us of its flight), served, reply back, end.  The hold is
   endpoint degradation, so those 3us belong to [service]; the rest of
   both flights is [wire]; and the per-category sums must telescope to
   the 31us end-to-end latency exactly. *)
let test_attribution () =
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:64 in
  let j1 = Journal.create sink ~node:1 ~cap:64 in
  let b =
    Journal.record j0 ~at:Time.zero
      (Journal.Inv_begin { op = "get"; target = "obj<1.1>" })
  in
  let ctx = Tracectx.root b in
  let s =
    Journal.record j0 ~at:(Time.us 10) ~ctx
      (Journal.Send { msg = "inv_request obj<1.1>.get"; dst = Some 1 })
  in
  let sctx = Tracectx.with_parent ctx ~parent:s in
  ignore
    (Journal.record j0 ~at:(Time.us 12) ~ctx:sctx
       (Journal.Net_hold { dst = Some 1; by = Time.us 3 }));
  let r =
    Journal.record j1 ~at:(Time.us 20) ~ctx:sctx
      (Journal.Recv { msg = "inv_request obj<1.1>.get"; src = 0 })
  in
  let q =
    Journal.record j1 ~at:(Time.us 26)
      ~ctx:(Tracectx.with_parent ctx ~parent:r)
      (Journal.Send { msg = "inv_reply obj<1.1>"; dst = Some 0 })
  in
  let r2 =
    Journal.record j0 ~at:(Time.us 30)
      ~ctx:(Tracectx.with_parent ctx ~parent:q)
      (Journal.Recv { msg = "inv_reply obj<1.1>"; src = 1 })
  in
  ignore
    (Journal.record j0 ~at:(Time.us 31)
       ~ctx:(Tracectx.with_parent ctx ~parent:r2)
       (Journal.Inv_end { op = "get"; outcome = "ok" }));
  let tl = Timeline.assemble [ j1; j0 ] in
  let bds = Critical.breakdowns (Timeline.events tl) in
  check_int "one complete request" 1 (List.length bds);
  let bd = List.hd bds in
  check_string "op" "get" bd.Critical.bd_op;
  check_string "target" "obj<1.1>" bd.Critical.bd_target;
  check_string "outcome" "ok" bd.Critical.bd_outcome;
  check_int "origin node" 0 bd.Critical.bd_node;
  check_int "end-to-end total" 31_000 bd.Critical.bd_total_ns;
  check_int "parts telescope to the total" bd.Critical.bd_total_ns
    (Critical.sum_parts bd);
  (* service: send prep 10 + injected hold 3 + server 6 + delivery 1 *)
  check_int "service" 20_000 (Critical.part bd Critical.Service);
  (* wire: pre-hold 2 + request flight 5 + reply flight 4 *)
  check_int "wire" 11_000 (Critical.part bd Critical.Wire);
  check_bool "dominant is service" true
    (Critical.dominant bd = Critical.Service);
  (* All eight invariants hold on this trace — in particular rule 8
     (attribution-complete) evaluated the breakdown above and agreed. *)
  check_int "checker-clean incl. attribution-complete" 0
    (List.length (Check.run tl))

(* Directory-class messages, retry backoff, and the timed-out tail:
   each gap lands in its documented category.  (Kept off the checker:
   the events are fabricated on one journal, not a real exchange.) *)
let test_attribution_categories () =
  let sink = Journal.sink () in
  let j = Journal.create sink ~node:0 ~cap:64 in
  let b =
    Journal.record j ~at:Time.zero
      (Journal.Inv_begin { op = "get"; target = "obj<1.9>" })
  in
  let ctx = Tracectx.root b in
  let d =
    Journal.record j ~at:(Time.us 2) ~ctx
      (Journal.Send { msg = "dir? obj<1.9>"; dst = Some 2 })
  in
  let dr =
    Journal.record j ~at:(Time.us 5)
      ~ctx:(Tracectx.with_parent ctx ~parent:d)
      (Journal.Recv { msg = "dir! obj<1.9>@1"; src = 2 })
  in
  let t =
    Journal.record j ~at:(Time.us 6)
      ~ctx:(Tracectx.with_parent ctx ~parent:dr)
      (Journal.Retry { op = "get"; attempt = 1 })
  in
  let s2 =
    Journal.record j ~at:(Time.us 9)
      ~ctx:(Tracectx.with_parent ctx ~parent:t)
      (Journal.Send { msg = "inv_request obj<1.9>.get"; dst = Some 1 })
  in
  ignore
    (Journal.record j ~at:(Time.us 10)
       ~ctx:(Tracectx.with_parent ctx ~parent:s2)
       (Journal.Inv_end { op = "get"; outcome = "timeout" }));
  let bd =
    match Critical.attribute (Journal.events j) with
    | Some bd -> bd
    | None -> Alcotest.fail "trace did not attribute"
  in
  check_int "locate question + answer -> directory" 5_000
    (Critical.part bd Critical.Directory);
  check_int "post-retry sleep -> backoff" 3_000
    (Critical.part bd Critical.Backoff);
  check_int "retry decision + timed-out tail -> wait" 2_000
    (Critical.part bd Critical.Wait);
  check_int "still telescopes" bd.Critical.bd_total_ns
    (Critical.sum_parts bd);
  check_int "total" 10_000 bd.Critical.bd_total_ns;
  check_bool "dominant is directory" true
    (Critical.dominant bd = Critical.Directory)

(* Profile aggregation over several traces: counts, nearest-rank
   quantiles, folded stacks, and the skipped tally for a request that
   never completed. *)
let test_profile_unit () =
  let sink = Journal.sink () in
  let j = Journal.create sink ~node:0 ~cap:64 in
  let request ~start ~dur =
    let b =
      Journal.record j ~at:start
        (Journal.Inv_begin { op = "get"; target = "obj<0.1>" })
    in
    ignore
      (Journal.record j
         ~at:(Time.add start dur)
         ~ctx:(Tracectx.root b)
         (Journal.Inv_end { op = "get"; outcome = "ok" }))
  in
  request ~start:Time.zero ~dur:(Time.us 10);
  request ~start:(Time.us 100) ~dur:(Time.us 20);
  request ~start:(Time.us 200) ~dur:(Time.us 30);
  (* A begun-but-never-finished request is skipped, not guessed at. *)
  ignore
    (Journal.record j ~at:(Time.us 300)
       (Journal.Inv_begin { op = "get"; target = "obj<0.1>" }));
  let pf = Profile.of_events (Journal.events j) in
  check_int "requests" 3 (Profile.requests pf);
  check_int "skipped" 1 (Profile.skipped pf);
  check_int "total" 60_000 (Profile.total_ns pf);
  check_bool "all service" true (Profile.share pf Critical.Service = 1.0);
  check_bool "dominant" true (Profile.dominant pf = Critical.Service);
  let total_at q =
    match Profile.quantile pf q with
    | Some bd -> bd.Critical.bd_total_ns
    | None -> Alcotest.fail "quantile empty"
  in
  (* Nearest-rank over {10, 20, 30}us: a selection, never an
     interpolation. *)
  check_int "p50 selects the middle request" 20_000 (total_at 0.5);
  check_int "p95 selects the slowest" 30_000 (total_at 0.95);
  check_int "p999 too" 30_000 (total_at 0.999);
  check_string "folded stacks aggregate per target.op and category"
    "eden;obj<0.1>.get;service 60000"
    (String.trim (Profile.to_folded pf));
  let json = Json.to_string ~compact:true (Profile.to_json pf) in
  check_bool "json carries the counts" true (contains json "\"requests\":3");
  (* Same events, same bytes. *)
  check_string "rendering is deterministic" (Profile.to_text pf)
    (Profile.to_text (Profile.of_events (Journal.events j)))

(* A profiled cluster run: the gated kinds appear in the journals, the
   profiler attributes real requests, and all eight invariants —
   attribution-complete included — hold over the kernel's own trace. *)
let test_profiled_cluster_invariants () =
  let options = { Cluster.default_options with Cluster.use_profiling = true } in
  let cl = Cluster.default ~seed:7L ~options ~n_nodes:3 () in
  Cluster.register_type cl relay_type;
  let _ =
    Cluster.in_process cl (fun () ->
        let cap =
          ok_or_fail "create"
            (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
               (Value.Int 7))
        in
        for i = 1 to 6 do
          ignore
            (ok_or_fail "get"
               (Cluster.invoke cl ~from:(i mod 3) cap ~op:"get" []))
        done)
  in
  Cluster.run cl;
  let tl = Cluster.timeline cl in
  check_int "nothing dropped" 0 (Cluster.journal_dropped cl);
  check_bool "profiling kinds recorded" true
    (List.exists
       (fun e ->
         match e.Journal.ev_kind with
         | Journal.Work_start _ | Journal.Net_flush _ -> true
         | _ -> false)
       (Timeline.events tl));
  let bds = Critical.breakdowns (Timeline.events tl) in
  check_bool "requests attributed" true (bds <> []);
  check_int "all eight invariants hold" 0 (List.length (Check.run tl))

(* Cap pressure: wrap the ring mid-run and the machinery degrades
   honestly — completeness gating skips the dependent rules (so
   nothing false-fires on the truncated record), truncated requests
   are skipped rather than misattributed, and whatever survives whole
   still attributes exactly. *)
let test_journal_cap_pressure () =
  let options = { Cluster.default_options with Cluster.use_profiling = true } in
  let cl =
    Cluster.default ~seed:11L ~options ~journal_cap:24 ~n_nodes:3 ()
  in
  Cluster.register_type cl relay_type;
  let _ =
    Cluster.in_process cl (fun () ->
        let cap =
          ok_or_fail "create"
            (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
               (Value.Int 7))
        in
        for _ = 1 to 12 do
          ignore (ok_or_fail "get" (Cluster.invoke cl ~from:0 cap ~op:"get" []))
        done)
  in
  Cluster.run cl;
  let tl = Cluster.timeline cl in
  check_bool "ring wrapped" true (Cluster.journal_dropped cl > 0);
  check_int "no false positives on a truncated record" 0
    (List.length (Check.run ~complete:false tl));
  let pf = Profile.of_timeline tl in
  check_bool "profile still renders" true
    (String.length (Profile.to_text pf) > 0);
  List.iter
    (fun bd ->
      check_int "survivors attribute exactly" bd.Critical.bd_total_ns
        (Critical.sum_parts bd))
    (Critical.breakdowns (Timeline.events tl))

(* Failed invariants are reported by name, in both renderings — a CI
   log or a JSON consumer can tell *which* rule broke without counting
   lines against the documentation. *)
let test_check_violation_names () =
  let sink = Journal.sink () in
  let j0 = Journal.create sink ~node:0 ~cap:16 in
  let j1 = Journal.create sink ~node:1 ~cap:16 in
  let p =
    Journal.record j0 ~at:(Time.us 1) (Journal.Retry { op = "x"; attempt = 1 })
  in
  ignore
    (Journal.record j1 ~at:(Time.us 2) ~ctx:(Tracectx.root p)
       (Journal.Recv { msg = "m"; src = 0 }));
  let vs = Check.run (Timeline.assemble [ j0; j1 ]) in
  check_bool "violations found" true (vs <> []);
  List.iter
    (fun v ->
      let txt = Format.asprintf "%a" Check.pp_violation v in
      check_bool "text names the rule" true
        (contains txt ("[" ^ v.Check.v_rule ^ "]")))
    vs;
  let json = Json.to_string ~compact:true (Check.violations_to_json vs) in
  check_bool "json names the rule" true
    (contains json "\"rule\":\"recv-matches-send\"")

(* ------------------------------------------------------------------ *)
(* The health plane wired through a cluster: sampler ticks on virtual
   time, transitions journalled on node 0, hot objects tracked, and
   the whole report a pure function of the seed. *)

let health_test_config =
  {
    Health.hc_tick = Time.ms 1;
    hc_short = 1;
    hc_long = 2;
    hc_rules =
      [
        {
          Health.r_name = "inv-rate";
          r_signal = Health.Rate "eden.invocations";
          r_cmp = Health.Above;
          r_threshold = 0.0;
        };
      ];
  }

let run_health_cluster seed =
  let cl =
    Cluster.default ~seed ~health:health_test_config ~n_nodes:3 ()
  in
  Cluster.register_type cl relay_type;
  let target = ref "" in
  let _ =
    Cluster.in_process cl (fun () ->
        let cap =
          ok_or_fail "create"
            (Cluster.create_object cl ~node:1 ~type_name:"obs_relay"
               (Value.Int 7))
        in
        target := Eden_kernel.Name.to_string (Eden_kernel.Capability.name cap);
        for _ = 1 to 5 do
          ignore
            (ok_or_fail "get" (Cluster.invoke cl ~from:0 cap ~op:"get" []));
          Engine.delay (Time.ms 2)
        done;
        (* Quiet tail: both windows drain and the rule clears. *)
        Engine.delay (Time.ms 10))
  in
  Cluster.run cl;
  (cl, !target)

let test_cluster_health () =
  let cl, target = run_health_cluster 7L in
  let h =
    match Cluster.health cl with
    | Some h -> h
    | None -> Alcotest.fail "health plane not enabled"
  in
  check_bool "sampler ticked" true (Health.ticks h > 10);
  check_bool "fired and cleared" true (Health.transitions h >= 2);
  check_int "quiet at the end" 0 (Health.firing h);
  (* Transitions surface as metrics alongside everything else. *)
  let samples = Metrics.sample (Cluster.metrics cl) in
  (match Metrics.find samples "eden.health.transitions" with
  | Some (Metrics.Counter n) ->
    check_int "transitions counter matches" (Health.transitions h) n
  | _ -> Alcotest.fail "eden.health.transitions not exported");
  (match Metrics.find samples "eden.health.ticks" with
  | Some (Metrics.Counter n) ->
    check_int "ticks counter matches" (Health.ticks h) n
  | _ -> Alcotest.fail "eden.health.ticks not exported");
  (* Every transition is a causally traceable journal event on node 0,
     visible in the merged timeline. *)
  let alerts =
    List.filter
      (fun e ->
        match e.Journal.ev_kind with Journal.Alert _ -> true | _ -> false)
      (Timeline.events (Cluster.timeline cl))
  in
  check_int "journalled transitions" (Health.transitions h)
    (List.length alerts);
  check_bool "alerts recorded on node 0" true
    (List.for_all (fun e -> e.Journal.ev_node = 0) alerts);
  check_bool "first transition is a rise" true
    (match (List.hd alerts).Journal.ev_kind with
    | Journal.Alert { rule = "inv-rate"; firing } -> firing
    | _ -> false);
  check_int "timeline still checker-clean" 0
    (List.length (Check.run (Cluster.timeline cl)));
  (* The requester's sketch saw the invoked object. *)
  check_bool "hot object tracked at the requester" true
    (List.exists
       (fun e -> e.Topk.e_key = target)
       (Cluster.hot_objects cl 0));
  check_bool "rollup sees it too" true
    (List.exists
       (fun e -> e.Topk.e_key = target)
       (Cluster.hot_objects_rollup cl ()));
  (* Same seed, same bytes: report and alert stream are deterministic. *)
  let cl2, _ = run_health_cluster 7L in
  let h2 = Option.get (Cluster.health cl2) in
  check_string "report byte-identical across same-seed runs"
    (Health.report h) (Health.report h2);
  check_string "health JSON byte-identical"
    (Json.to_string (Health.to_json h))
    (Json.to_string (Health.to_json h2))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "registry basics" `Quick test_registry_basics;
          Alcotest.test_case "sample determinism" `Quick
            test_sample_determinism;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_buckets;
          Alcotest.test_case "guards and filtered iter" `Quick
            test_metrics_guards;
        ] );
      ( "health",
        [
          Alcotest.test_case "window basics" `Quick test_window_basics;
          Alcotest.test_case "windowed quantile" `Quick
            test_window_hist_quantile;
          Alcotest.test_case "windowed quantile edges" `Quick
            test_window_hist_quantile_edges;
          Alcotest.test_case "top-k sketch" `Quick test_topk_sketch;
          Alcotest.test_case "watchdog rules" `Quick test_health_unit;
          Alcotest.test_case "cluster health plane" `Quick
            test_cluster_health;
        ] );
      ( "spans",
        [
          Alcotest.test_case "phases sum" `Quick test_span_phases_sum;
          Alcotest.test_case "retention" `Quick test_span_retention;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "json roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_snapshot_rejects_garbage;
          Alcotest.test_case "write_file creates parents" `Quick
            test_snapshot_write_file_creates_parents;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "remote span = latency" `Quick
            test_remote_span_matches_latency;
          Alcotest.test_case "local span" `Quick
            test_local_span_skips_transport;
          Alcotest.test_case "parent links" `Quick
            test_nested_invoke_parent_link;
          Alcotest.test_case "snapshot contents" `Quick
            test_cluster_snapshot_contents;
        ] );
      ( "journal",
        [
          Alcotest.test_case "trace contexts" `Quick test_tracectx;
          Alcotest.test_case "ring semantics" `Quick test_journal_ring;
          Alcotest.test_case "kind round-trip" `Quick
            test_journal_kind_roundtrip;
          Alcotest.test_case "alert retention accounting" `Quick
            test_journal_alert_retention;
          Alcotest.test_case "timeline assembly" `Quick
            test_timeline_assemble;
          Alcotest.test_case "checker verdicts" `Quick test_checker;
          Alcotest.test_case "violations named in text and JSON" `Quick
            test_check_violation_names;
          Alcotest.test_case "cluster journals" `Quick test_cluster_journal;
        ] );
      ( "profile",
        [
          Alcotest.test_case "attribution telescopes" `Quick
            test_attribution;
          Alcotest.test_case "category classification" `Quick
            test_attribution_categories;
          Alcotest.test_case "profile aggregation" `Quick test_profile_unit;
          Alcotest.test_case "profiled cluster invariants" `Quick
            test_profiled_cluster_invariants;
          Alcotest.test_case "cap pressure degrades honestly" `Quick
            test_journal_cap_pressure;
        ] );
    ]
