(* Seeded property-test harness shared by the test suites.

   Each property runs over [seeds] independent Splitmix streams derived
   from a fixed base, so a failure report names the exact seed and the
   run replays bit-for-bit.  On failure a greedy shrink pass walks the
   candidate counterexamples from [shrink] (smallest first is the
   caller's job) and keeps any that still fail, bounded by a small step
   budget — enough to strip list elements or zero fields without a full
   QuickCheck engine. *)

module Splitmix = Eden_util.Splitmix

type 'a gen = Splitmix.t -> 'a

module Gen = struct
  let return x : _ gen = fun _ -> x
  let int lo hi : int gen = fun rng -> Splitmix.int_in rng lo hi
  let bool : bool gen = Splitmix.bool

  let oneof (gens : 'a gen list) : 'a gen =
    let arr = Array.of_list gens in
    fun rng -> (Splitmix.choose rng arr) rng

  let choose (xs : 'a list) : 'a gen =
    let arr = Array.of_list xs in
    fun rng -> Splitmix.choose rng arr

  (* Printable ASCII, so counterexamples read back cleanly. *)
  let string ?(max_len = 12) : string gen =
   fun rng ->
    let n = Splitmix.int rng (max_len + 1) in
    String.init n (fun _ -> Char.chr (Splitmix.int_in rng 0x20 0x7e))

  let list ?(max_len = 8) (g : 'a gen) : 'a list gen =
   fun rng ->
    let n = Splitmix.int rng (max_len + 1) in
    List.init n (fun _ -> g rng)

  let pair (a : 'a gen) (b : 'b gen) : ('a * 'b) gen =
   fun rng ->
    let x = a rng in
    let y = b rng in
    (x, y)

  let map f (g : 'a gen) : 'b gen = fun rng -> f (g rng)
end

(* Greedy descent: repeatedly replace the counterexample with the first
   shrink candidate that still fails, up to [budget] candidate checks. *)
let shrink_search ~shrink ~fails x0 =
  let budget = ref 200 in
  let rec go x =
    if !budget <= 0 then x
    else
      let rec try_candidates = function
        | [] -> x
        | c :: rest ->
          decr budget;
          if !budget >= 0 && fails c then go c else try_candidates rest
      in
      try_candidates (shrink x)
  in
  go x0

(* CI runs the property suites under several distinct seed universes:
   EDEN_PROP_SEED_OFFSET shifts every base (including explicit ones),
   so `make ci` exercises fresh streams while any reported seed still
   replays under the same offset. *)
let seed_offset =
  match Sys.getenv_opt "EDEN_PROP_SEED_OFFSET" with
  | None -> 0L
  | Some s -> Option.value (Int64.of_string_opt s) ~default:0L

let run ?(seeds = 100) ?(base = 0x5EED_0001L) ~name ~(gen : 'a gen)
    ?(shrink = fun _ -> []) ~show (prop : 'a -> (unit, string) result) =
  let base = Int64.add base seed_offset in
  for i = 0 to seeds - 1 do
    let rng = Splitmix.create (Int64.add base (Int64.of_int i)) in
    let x = gen rng in
    match prop x with
    | Ok () -> ()
    | Error msg ->
      let fails c = Result.is_error (prop c) in
      let x' = shrink_search ~shrink ~fails x in
      let msg' =
        match prop x' with Error m -> m | Ok () -> msg
      in
      Alcotest.failf "%s: seed %d (base 0x%Lx): %s\n  counterexample: %s"
        name i base msg' (show x')
  done

let case ?seeds ?base ~name ~gen ?shrink ~show prop =
  Alcotest.test_case name `Quick (fun () ->
      run ?seeds ?base ~name ~gen ?shrink ~show prop)
