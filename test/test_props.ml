(* Round-trip property tests over the kernel wire codecs and the fault
   plan text format, on the {!Prop} harness: 100 seeds per property,
   each seed generating one structured value, encoding it and decoding
   it back.  Everything here is pure — no engine, no cluster. *)

open Eden_kernel
module Splitmix = Eden_util.Splitmix
module Time = Eden_util.Time
module Plan = Eden_fault.Plan

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_name rng =
  Name.make ~birth_node:(Splitmix.int rng 64) ~serial:(Splitmix.int rng 100_000)

let gen_rights rng =
  match Rights.of_bits (Splitmix.int rng (Rights.to_bits Rights.all + 1)) with
  | Some r -> r
  | None -> assert false (* every value below the mask is valid *)

let gen_cap rng = Capability.make (gen_name rng) (gen_rights rng)
let gen_string = Prop.Gen.string ~max_len:10

let rec gen_value depth rng =
  match Splitmix.int rng (if depth <= 0 then 6 else 8) with
  | 0 -> Value.Unit
  | 1 -> Value.Bool (Splitmix.bool rng)
  | 2 -> Value.Int (Splitmix.int_in rng (-100_000) 100_000)
  | 3 -> Value.Str (gen_string rng)
  | 4 -> Value.Cap (gen_cap rng)
  | 5 -> Value.Blob (Splitmix.int rng 65_536)
  | 6 ->
    Value.List
      (List.init (Splitmix.int rng 4) (fun _ -> gen_value (depth - 1) rng))
  | _ -> Value.Pair (gen_value (depth - 1) rng, gen_value (depth - 1) rng)

let gen_error rng =
  match Splitmix.int rng 12 with
  | 0 -> Error.No_such_object
  | 1 -> Error.No_such_operation (gen_string rng)
  | 2 -> Error.Rights_violation (gen_string rng)
  | 3 -> Error.Timeout
  | 4 -> Error.Object_crashed
  | 5 -> Error.Node_down
  | 6 -> Error.Out_of_memory
  | 7 -> Error.Frozen_immutable
  | 8 -> Error.Bad_arguments (gen_string rng)
  | 9 -> Error.User_error (gen_string rng)
  | 10 -> Error.Move_refused (gen_string rng)
  | _ -> Error.Disk_failed

let gen_req rng =
  { Message.origin = Splitmix.int rng 16; seq = Splitmix.int rng 10_000 }

let gen_result rng : Api.invoke_result =
  if Splitmix.bool rng then
    Ok (List.init (Splitmix.int rng 3) (fun _ -> gen_value 2 rng))
  else Error (gen_error rng)

let gen_reliability rng =
  match Splitmix.int rng 3 with
  | 0 -> Reliability.Local
  | 1 -> Reliability.Remote (Splitmix.int rng 8)
  | _ ->
    Reliability.Mirrored
      (List.init (1 + Splitmix.int rng 3) (fun _ -> Splitmix.int rng 8))

let gen_residence rng =
  match Splitmix.int rng 3 with
  | 0 -> Message.Res_active
  | 1 -> Message.Res_passive
  | _ -> Message.Res_replica

let gen_node rng = Splitmix.int rng 16
let gen_version rng = Splitmix.int rng 1_000

let gen_delta rng =
  match Splitmix.int rng 3 with
  | 0 -> Delta.Unchanged
  | 1 ->
    let len = Splitmix.int rng 6 in
    let edits =
      List.init (Splitmix.int rng (len + 1)) (fun _ ->
          (Splitmix.int rng (max len 1), gen_value 2 rng))
    in
    Delta.Edits { len; edits }
  | _ -> Delta.Whole (gen_value 2 rng)

let gen_message rng : Message.t =
  match Splitmix.int rng 26 with
  | 0 ->
    Message.Inv_request
      {
        inv_id = gen_req rng;
        target = gen_name rng;
        op = gen_string rng;
        args = List.init (Splitmix.int rng 3) (fun _ -> gen_value 2 rng);
        presented = gen_rights rng;
        reply_to = gen_node rng;
        hops = Splitmix.int rng 4;
        may_activate = Splitmix.bool rng;
        span = None;
      }
  | 1 ->
    Message.Inv_reply
      {
        inv_id = gen_req rng;
        result = gen_result rng;
        frozen_hint = Splitmix.bool rng;
      }
  | 2 -> Message.Inv_nack { inv_id = gen_req rng; target = gen_name rng }
  | 3 -> Message.Hint_update { target = gen_name rng; at_node = gen_node rng }
  | 4 ->
    Message.Locate_request
      { req_id = gen_req rng; target = gen_name rng; reply_to = gen_node rng }
  | 5 ->
    Message.Locate_reply
      {
        req_id = gen_req rng;
        target = gen_name rng;
        at_node = gen_node rng;
        residence = gen_residence rng;
        version = gen_version rng;
      }
  | 6 ->
    Message.Create_request
      {
        req_id = gen_req rng;
        type_name = gen_string rng;
        init = gen_value 2 rng;
        reply_to = gen_node rng;
      }
  | 7 ->
    Message.Create_reply
      {
        req_id = gen_req rng;
        result =
          (if Splitmix.bool rng then Ok (gen_cap rng)
           else Error (gen_error rng));
      }
  | 8 ->
    Message.Move_transfer
      {
        target = gen_name rng;
        type_name = gen_string rng;
        repr = gen_value 2 rng;
        frozen = Splitmix.bool rng;
        reliability = gen_reliability rng;
        from_node = gen_node rng;
        transfer_id = gen_req rng;
      }
  | 9 ->
    Message.Move_ack
      { transfer_id = gen_req rng; accepted = Splitmix.bool rng }
  | 10 ->
    Message.Ckpt_write
      {
        req_id = gen_req rng;
        target = gen_name rng;
        type_name = gen_string rng;
        repr = gen_value 2 rng;
        version = gen_version rng;
        reliability = gen_reliability rng;
        frozen = Splitmix.bool rng;
        reply_to = gen_node rng;
      }
  | 11 -> Message.Ckpt_ack { req_id = gen_req rng; ok = Splitmix.bool rng }
  | 12 -> Message.Ckpt_delete { target = gen_name rng }
  | 13 ->
    Message.Ckpt_mark
      {
        target = gen_name rng;
        passive = Splitmix.bool rng;
        version = gen_version rng;
      }
  | 14 ->
    Message.Replica_install
      {
        target = gen_name rng;
        type_name = gen_string rng;
        repr = gen_value 2 rng;
        transfer_id = gen_req rng;
        from_node = gen_node rng;
      }
  | 15 ->
    Message.Replica_ack
      { transfer_id = gen_req rng; accepted = Splitmix.bool rng }
  | 16 -> Message.Destroy_notice { target = gen_name rng }
  | 17 ->
    Message.Cache_fetch
      { req_id = gen_req rng; target = gen_name rng; reply_to = gen_node rng }
  | 18 ->
    Message.Cache_data
      {
        req_id = gen_req rng;
        target = gen_name rng;
        payload =
          (if Splitmix.bool rng then Some (gen_string rng, gen_value 2 rng)
           else None);
      }
  | 19 -> Message.Cache_invalidate { target = gen_name rng }
  | 20 -> Message.Cancel { inv_id = gen_req rng; target = gen_name rng }
  | 22 ->
    Message.Dir_put
      {
        req_id = gen_req rng;
        target = gen_name rng;
        home = gen_node rng;
        replicas = List.init (Splitmix.int rng 4) (fun _ -> gen_node rng);
        lease = Splitmix.int rng 1_000_000_000;
      }
  | 23 ->
    Message.Dir_get
      { req_id = gen_req rng; target = gen_name rng; reply_to = gen_node rng }
  | 24 ->
    (* home = -1 is the shard-miss reply, a live wire shape. *)
    Message.Dir_nack
      {
        req_id = gen_req rng;
        target = gen_name rng;
        home = (if Splitmix.bool rng then gen_node rng else -1);
      }
  | 25 ->
    Message.Epoch_announce
      {
        epoch = Splitmix.int rng 1_000;
        members = List.init (Splitmix.int rng 6) (fun _ -> gen_node rng);
      }
  | _ ->
    Message.Ckpt_delta
      {
        req_id = gen_req rng;
        target = gen_name rng;
        type_name = gen_string rng;
        delta = gen_delta rng;
        base_version = gen_version rng;
        version = gen_version rng;
        reliability = gen_reliability rng;
        frozen = Splitmix.bool rng;
        reply_to = gen_node rng;
      }

(* ------------------------------------------------------------------ *)
(* Properties *)

let name_roundtrip =
  Prop.case ~name:"Name.of_string (to_string n) = n" ~base:0xA110_0001L
    ~gen:gen_name ~show:Name.to_string (fun n ->
      match Name.of_string (Name.to_string n) with
      | Some n' when Name.equal n n' -> Ok ()
      | Some n' -> Error (Printf.sprintf "decoded to %s" (Name.to_string n'))
      | None -> Error "failed to parse")

let cap_roundtrip =
  Prop.case ~name:"Capability.decode (encode c) = c" ~base:0xA110_0002L
    ~gen:gen_cap ~show:Capability.encode (fun c ->
      match Capability.decode (Capability.encode c) with
      | Some c' when Capability.equal c c' -> Ok ()
      | Some c' ->
        Error (Printf.sprintf "decoded to %s" (Capability.encode c'))
      | None -> Error "failed to parse")

let message_roundtrip =
  (* Generated messages carry [span = None], so structural equality is
     exact — the codec drops spans by design. *)
  Prop.case ~name:"Message.decode (encode m) = Ok m" ~base:0xA110_0003L
    ~gen:gen_message ~show:Message.describe (fun m ->
      match Message.decode (Message.encode m) with
      | Ok m' when m' = m -> Ok ()
      | Ok m' -> Error (Printf.sprintf "decoded to %s" (Message.describe m'))
      | Error e -> Error e)

let message_rejects_truncation =
  (* Chopping the last byte off a non-empty encoding must never decode
     successfully — the wire form is self-delimiting and checks for
     trailing garbage, so a prefix is always malformed. *)
  Prop.case ~name:"Message.decode rejects truncated input"
    ~base:0xA110_0004L ~gen:gen_message ~show:Message.describe (fun m ->
      let s = Message.encode m in
      match Message.decode (String.sub s 0 (String.length s - 1)) with
      | Error _ -> Ok ()
      | Ok m' ->
        Error
          (Printf.sprintf "truncated input decoded as %s"
             (Message.describe m')))

let test_decode_bounds_nesting () =
  (* The reader recurses on Pair/List, so without a depth bound a
     deeply nested input would kill the process with [Stack_overflow]
     instead of returning [Error] — the codec must stay total on
     hostile input.  Depth 300 sits just past the documented bound of
     256; encoding is iterative enough at this size to be safe. *)
  let rec deep n acc = if n = 0 then acc else deep (n - 1) (Value.Pair (acc, Value.Unit)) in
  let m =
    Message.Create_request
      {
        req_id = { Message.origin = 0; seq = 0 };
        type_name = "t";
        init = deep 300 Value.Unit;
        reply_to = 1;
      }
  in
  (match Message.decode (Message.encode m) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "over-deep nesting decoded successfully");
  (* A value within the bound still round-trips. *)
  let shallow =
    Message.Create_request
      {
        req_id = { Message.origin = 0; seq = 0 };
        type_name = "t";
        init = deep 40 Value.Unit;
        reply_to = 1;
      }
  in
  match Message.decode (Message.encode shallow) with
  | Ok m' -> Alcotest.(check bool) "round-trips" true (m' = shallow)
  | Error e -> Alcotest.failf "shallow nesting rejected: %s" e

let test_cancel_codec_hostile () =
  (* The Cancel envelope rides the urgent path past the coalescer, so
     its codec gets the same hostile-input treatment as the nested
     value decoding above: every proper prefix is rejected, trailing
     garbage is rejected, and corrupting any single byte returns
     [Error] (or an honestly decoded other message) rather than
     raising. *)
  let rng = Splitmix.create 0xCA9CE1L in
  for _ = 1 to 50 do
    let m = Message.Cancel { inv_id = gen_req rng; target = gen_name rng } in
    let s = Message.encode m in
    (match Message.decode s with
    | Ok m' -> Alcotest.(check bool) "cancel round-trips" true (m' = m)
    | Error e -> Alcotest.failf "cancel rejected: %s" e);
    for i = 0 to String.length s - 1 do
      match Message.decode (String.sub s 0 i) with
      | Error _ -> ()
      | Ok m' ->
        Alcotest.failf "prefix of length %d decoded as %s" i
          (Message.describe m')
    done;
    (match Message.decode (s ^ "\x00") with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "trailing garbage accepted");
    String.iteri
      (fun i _ ->
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        ignore (Message.decode (Bytes.to_string b)))
      s
  done

let test_dir_codec_hostile () =
  (* The directory messages carry the locate hot path once the ring is
     on, so their codecs get the same hostile-input treatment as
     Cancel: every proper prefix rejected, trailing garbage rejected,
     and any single corrupted byte returns [Error] (or an honestly
     decoded other message) rather than raising.  Dir_put's replica
     list exercises the bounded-count read; Dir_nack covers the
     negative-home miss reply. *)
  let rng = Splitmix.create 0xD19EC7L in
  let gen_dir rng : Message.t =
    match Splitmix.int rng 3 with
    | 0 ->
      Message.Dir_put
        {
          req_id = gen_req rng;
          target = gen_name rng;
          home = gen_node rng;
          replicas = List.init (Splitmix.int rng 5) (fun _ -> gen_node rng);
          lease = Splitmix.int rng 1_000_000_000;
        }
    | 1 ->
      Message.Dir_get
        { req_id = gen_req rng; target = gen_name rng; reply_to = gen_node rng }
    | _ ->
      Message.Dir_nack
        {
          req_id = gen_req rng;
          target = gen_name rng;
          home = (if Splitmix.bool rng then gen_node rng else -1);
        }
  in
  for _ = 1 to 60 do
    let m = gen_dir rng in
    let s = Message.encode m in
    (match Message.decode s with
    | Ok m' -> Alcotest.(check bool) "dir message round-trips" true (m' = m)
    | Error e -> Alcotest.failf "dir message rejected: %s" e);
    for i = 0 to String.length s - 1 do
      match Message.decode (String.sub s 0 i) with
      | Error _ -> ()
      | Ok m' ->
        Alcotest.failf "prefix of length %d decoded as %s" i
          (Message.describe m')
    done;
    (match Message.decode (s ^ "\x00") with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "trailing garbage accepted");
    String.iteri
      (fun i _ ->
        let b = Bytes.of_string s in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        ignore (Message.decode (Bytes.to_string b)))
      s
  done

(* Chunked representations (a top-level List) are the delta fast path;
   mix in arbitrary shapes so the [Whole] fallback is exercised too. *)
let gen_chunked rng =
  if Splitmix.int rng 4 = 0 then gen_value 3 rng
  else Value.List (List.init (Splitmix.int rng 8) (fun _ -> gen_value 2 rng))

let gen_delta_pair rng =
  let base = gen_chunked rng in
  let target =
    match Splitmix.int rng 4 with
    | 0 -> base
    | 1 -> gen_chunked rng
    | _ -> (
      (* Dirty a few chunks of the base — the realistic shape. *)
      match base with
      | Value.List chunks ->
        Value.List
          (List.map
             (fun c ->
               if Splitmix.int rng 4 = 0 then gen_value 2 rng else c)
             chunks)
      | v -> v)
  in
  (base, target)

let show_value_pair (b, t) =
  Format.asprintf "%a -> %a" Value.pp b Value.pp t

let delta_apply_roundtrip =
  Prop.case ~name:"Delta.apply (diff base target) base = Ok target"
    ~base:0xA110_0006L ~gen:gen_delta_pair ~show:show_value_pair
    (fun (base, target) ->
      let d = Delta.diff ~base ~target in
      match Delta.apply d ~base with
      | Ok v when Value.equal v target -> Ok ()
      | Ok v -> Error (Format.asprintf "applied to %a" Value.pp v)
      | Error e -> Error (Printf.sprintf "apply failed: %s" e))

let delta_never_larger =
  (* The wire motivation: [diff] guarantees its payload never exceeds
     shipping the whole representation (it degenerates to [Whole]
     when most chunks are dirty). *)
  Prop.case ~name:"Delta.size_bytes (diff base target) <= whole"
    ~base:0xA110_0007L ~gen:gen_delta_pair ~show:show_value_pair
    (fun (base, target) ->
      let d = Delta.diff ~base ~target in
      let ds = Delta.size_bytes d
      and fs = Delta.size_bytes (Delta.Whole target) in
      if ds <= fs then Ok ()
      else Error (Printf.sprintf "delta %dB vs full %dB" ds fs))

(* ------------------------------------------------------------------ *)
(* Span export JSON *)

module Span = Eden_obs.Span
module Json = Eden_obs.Json
module Tracectx = Eden_obs.Tracectx

let gen_span_info rng =
  let start = Splitmix.int rng 1_000_000 in
  {
    Span.i_id = Splitmix.int rng 100_000;
    i_parent =
      (if Splitmix.bool rng then Some (Splitmix.int rng 100_000) else None);
    i_op = gen_string rng;
    i_target = gen_string rng;
    i_origin = Splitmix.int rng 16;
    i_remote = Splitmix.bool rng;
    i_outcome = (if Splitmix.bool rng then "ok" else gen_string rng);
    i_start = Time.ns start;
    i_finish = Time.ns (start + Splitmix.int rng 1_000_000);
    (* Canonical order, every phase present — the shape the kernel
       exports. *)
    i_phases =
      List.map
        (fun p -> (p, Time.ns (Splitmix.int rng 500_000)))
        Span.phases;
  }

let show_span_info i = Json.to_string ~compact:true (Span.info_to_json i)

let span_info_roundtrip =
  Prop.case ~name:"Span.info_of_json (info_to_json i) = Ok i"
    ~base:0xA110_0008L ~gen:gen_span_info ~show:show_span_info (fun i ->
      match Span.info_of_json (Span.info_to_json i) with
      | Ok i' when i' = i -> Ok ()
      | Ok i' -> Error (Printf.sprintf "decoded to %s" (show_span_info i'))
      | Error e -> Error e)

let span_json_rejects_bad_phase =
  (* An unknown key inside [phases_ns] must fail the whole parse, not
     be dropped: a silently short phase list would break the
     phases-sum-to-latency invariant downstream. *)
  Prop.case ~name:"Span.info_of_json rejects unknown phase names"
    ~base:0xA110_0009L
    ~gen:(fun rng ->
      (* "p:" prefixes never collide with a real phase name. *)
      (gen_span_info rng, "p:" ^ gen_string rng))
    ~show:(fun (_, bad) -> bad)
    (fun (i, bad) ->
      let corrupted =
        match Span.info_to_json i with
        | Json.Obj fields ->
          Json.Obj
            (List.map
               (function
                 | "phases_ns", Json.Obj ph ->
                   ("phases_ns", Json.Obj ((bad, Json.Int 1) :: ph))
                 | f -> f)
               fields)
        | j -> j
      in
      match Span.info_of_json corrupted with
      | Error _ -> Ok ()
      | Ok _ -> Error "unknown phase name accepted")

let test_span_json_missing_phases () =
  (* Dropping phases_ns entirely is malformed, and phase durations
     must parse as integers. *)
  let strip = function
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "phases_ns") fields)
    | j -> j
  in
  let i =
    {
      Span.i_id = 1;
      i_parent = None;
      i_op = "get";
      i_target = "obj#1";
      i_origin = 0;
      i_remote = false;
      i_outcome = "ok";
      i_start = Time.zero;
      i_finish = Time.us 3;
      i_phases = List.map (fun p -> (p, Time.zero)) Span.phases;
    }
  in
  (match Span.info_of_json (strip (Span.info_to_json i)) with
  | Error e ->
    Alcotest.(check string) "missing phases_ns" "span: missing phases_ns" e
  | Ok _ -> Alcotest.fail "parsed without phases_ns");
  let bad_duration =
    match Span.info_to_json i with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "phases_ns", Json.Obj (( k, _) :: ph) ->
               ("phases_ns", Json.Obj ((k, Json.Str "fast") :: ph))
             | f -> f)
           fields)
    | j -> j
  in
  match Span.info_of_json bad_duration with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer phase duration accepted"

(* ------------------------------------------------------------------ *)
(* Traced envelopes *)

let gen_ctx rng =
  if Splitmix.bool rng then None
  else
    Some
      (Tracectx.make
         ~trace:(Splitmix.int rng 1_000_000)
         ~parent:(Splitmix.int rng 1_000_000))

let traced_roundtrip =
  (* The envelope codec: a message encoded with a trace context hands
     the same context back on decode, and one encoded without stays
     context-free (backward-compatible frames). *)
  Prop.case ~name:"Message.decode_traced (encode ?ctx m) = Ok (ctx, m)"
    ~base:0xA110_000AL
    ~gen:(fun rng -> (gen_ctx rng, gen_message rng))
    ~show:(fun (ctx, m) ->
      Printf.sprintf "%s [%s]" (Message.describe m)
        (match ctx with Some c -> Tracectx.to_string c | None -> "no ctx"))
    (fun (ctx, m) ->
      match Message.decode_traced (Message.encode ?ctx m) with
      | Ok (ctx', m') when m' = m && Option.equal Tracectx.equal ctx ctx' ->
        Ok ()
      | Ok _ -> Error "envelope round-trip mismatch"
      | Error e -> Error e)

let gen_plan_params rng =
  let seed = Splitmix.next64 rng in
  let nodes = Splitmix.int_in rng 2 8 in
  let segments = Splitmix.int_in rng 1 3 in
  (seed, nodes, segments)

let plan_roundtrip =
  Prop.case ~name:"Plan.of_string (to_string p) = p" ~base:0xA110_0005L
    ~gen:gen_plan_params
    ~show:(fun (seed, nodes, segments) ->
      Printf.sprintf "seed=0x%Lx nodes=%d segments=%d" seed nodes segments)
    (fun (seed, nodes, segments) ->
      let p = Plan.random ~seed ~nodes ~segments ~horizon:(Time.s 30) in
      let text = Plan.to_string p in
      match Plan.of_string text with
      | Error e -> Error (Printf.sprintf "parse failed: %s" e)
      | Ok p' ->
        if String.equal text (Plan.to_string p') then Ok ()
        else Error "re-rendered text differs")

(* ------------------------------------------------------------------ *)
(* Health-plane structures: window-merge algebra and the space-saving
   error bounds. *)

(* A per-tick stream of small integer-valued deltas (exact as floats,
   so equality checks need no epsilon), plus a coin per tick deciding
   which of two windows receives it. *)
let gen_window_stream rng =
  let ticks = Splitmix.int_in rng 1 12 in
  let len = Splitmix.int rng 30 in
  let stream =
    List.init len (fun _ ->
        (float_of_int (Splitmix.int rng 100), Splitmix.bool rng))
  in
  (ticks, stream)

let window_merge_algebra =
  Prop.case ~name:"Window.merge of a split stream = window of the whole"
    ~base:0xB1A0_0001L ~gen:gen_window_stream
    ~show:(fun (ticks, stream) ->
      Printf.sprintf "ticks=%d stream=[%s]" ticks
        (String.concat ";"
           (List.map
              (fun (v, left) -> Printf.sprintf "%g%s" v (if left then "l" else "r"))
              stream)))
    (fun (ticks, stream) ->
      let whole = Eden_obs.Window.create ~ticks in
      let left = Eden_obs.Window.create ~ticks in
      let right = Eden_obs.Window.create ~ticks in
      (* The two windows tick in lockstep: every tick lands in both,
         the value going to one side and zero to the other. *)
      List.iter
        (fun (v, goes_left) ->
          Eden_obs.Window.push whole v;
          Eden_obs.Window.push left (if goes_left then v else 0.0);
          Eden_obs.Window.push right (if goes_left then 0.0 else v))
        stream;
      let merged = Eden_obs.Window.merge left right in
      let depths = List.init (ticks + 2) (fun k -> k + 1) in
      let mismatch =
        List.find_opt
          (fun k ->
            Eden_obs.Window.sum_last merged k
            <> Eden_obs.Window.sum_last whole k
            || Eden_obs.Window.max_last merged k
               < Eden_obs.Window.max_last whole k)
          (List.filter (fun k -> stream <> [] || k = 1) depths)
      in
      match mismatch with
      | None ->
        if Eden_obs.Window.filled merged = Eden_obs.Window.filled whole then
          Ok ()
        else Error "filled differs after merge"
      | Some k -> Error (Printf.sprintf "sum_last %d differs" k))

(* A seeded Zipf-ish stream over more keys than the sketch holds. *)
let gen_topk_stream rng =
  let capacity = Splitmix.int_in rng 4 16 in
  let keys = capacity * 4 in
  let len = Splitmix.int_in rng 50 400 in
  let stream =
    List.init len (fun _ ->
        (* Skewed: low ranks dominate, like object invocation counts. *)
        let r = Splitmix.float rng 1.0 in
        let rank = int_of_float (float_of_int keys *. r *. r *. r) in
        Printf.sprintf "obj%d" (min rank (keys - 1)))
  in
  (capacity, stream)

let topk_error_bounds =
  Prop.case ~name:"Topk estimates never undercount and err <= n/capacity"
    ~base:0xB1A0_0002L ~gen:gen_topk_stream
    ~show:(fun (capacity, stream) ->
      Printf.sprintf "capacity=%d len=%d" capacity (List.length stream))
    (fun (capacity, stream) ->
      let t = Eden_obs.Topk.create ~capacity in
      let true_counts = Hashtbl.create 64 in
      List.iter
        (fun key ->
          Eden_obs.Topk.add t key;
          Hashtbl.replace true_counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt true_counts key)))
        stream;
      let n = List.length stream in
      if Eden_obs.Topk.total t <> n then Error "total miscounted"
      else
        let bad =
          List.find_opt
            (fun e ->
              let truth =
                Option.value ~default:0
                  (Hashtbl.find_opt true_counts e.Eden_obs.Topk.e_key)
              in
              e.Eden_obs.Topk.e_count < truth
              || e.Eden_obs.Topk.e_count - e.Eden_obs.Topk.e_err > truth
              || e.Eden_obs.Topk.e_err * capacity > n)
            (Eden_obs.Topk.entries t)
        in
        match bad with
        | None ->
          (* Any key heavier than n/capacity must be present. *)
          let missing_heavy =
            Hashtbl.fold
              (fun key c acc ->
                if
                  c * capacity > n
                  && not
                       (List.exists
                          (fun e -> e.Eden_obs.Topk.e_key = key)
                          (Eden_obs.Topk.entries t))
                then key :: acc
                else acc)
              true_counts []
          in
          if missing_heavy = [] then Ok ()
          else
            Error
              (Printf.sprintf "heavy hitter %s missing"
                 (List.hd missing_heavy))
        | Some e ->
          Error
            (Printf.sprintf "bounds violated for %s (count %d err %d)"
               e.Eden_obs.Topk.e_key e.Eden_obs.Topk.e_count
               e.Eden_obs.Topk.e_err))

(* ------------------------------------------------------------------ *)
(* Directory ring: placement balance and minimal remapping *)

(* A random membership: 2..16 distinct node ids drawn from 0..63 —
   ring quality must not depend on ids being dense or starting at 0. *)
let gen_node_set rng =
  let n = 2 + Splitmix.int rng 15 in
  let seen = Hashtbl.create 16 in
  let rec draw acc k =
    if k = 0 then acc
    else
      let id = Splitmix.int rng 64 in
      if Hashtbl.mem seen id then draw acc k
      else begin
        Hashtbl.add seen id ();
        draw (id :: acc) (k - 1)
      end
  in
  draw [] n

let show_nodes nodes = String.concat "," (List.map string_of_int nodes)

(* Distinct names, enough per node that placement noise is statistical
   rather than structural: with 512 vnodes per node the load spread is
   ~1/sqrt(512) = 4.4%, so 1.3x the mean is a >6-sigma bound — tight
   enough to catch a broken mixer, loose enough never to flake. *)
let ring_keys n =
  List.init (2048 * n) (fun i -> Name.make ~birth_node:(i mod 64) ~serial:i)

let shard_counts ring nodes keys =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let s = Directory.shard ring name in
      if not (List.mem s nodes) then
        failwith (Printf.sprintf "shard %d not in the node set" s);
      Hashtbl.replace counts s
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    keys;
  counts

let ring_balance =
  Prop.case ~name:"ring balance: max/mean load <= 1.3" ~base:0xD1A0_0001L
    ~gen:gen_node_set ~show:show_nodes (fun nodes ->
      let ring = Directory.make ~nodes () in
      let n = List.length nodes in
      let keys = ring_keys n in
      let counts = shard_counts ring nodes keys in
      let mean = float_of_int (List.length keys) /. float_of_int n in
      let worst =
        List.fold_left
          (fun w id ->
            max w (Option.value ~default:0 (Hashtbl.find_opt counts id)))
          0 nodes
      in
      if float_of_int worst <= 1.3 *. mean then Ok ()
      else Error (Printf.sprintf "max load %d vs mean %.0f" worst mean))

let test_ring_point_name_aliasing () =
  (* Regression: point positions and name positions must come from
     disjoint mixer domains.  With a shared domain, node 0's vnode [k]
     sits at [mix64 k] and a node-0-born name with serial [s] at
     [mix64 s] — every low-serial name lands exactly on a node-0 vnode
     point, and "first point at or after" hands node 0 the entire
     keyspace.  Low ids and low serials are precisely what a real
     cluster mints first, so this shape is the common case, not a
     corner. *)
  let nodes = [ 0; 1; 2; 3 ] in
  let ring = Directory.make ~nodes () in
  let keys =
    List.init 2048 (fun s -> Name.make ~birth_node:0 ~serial:(s + 1))
  in
  let counts = shard_counts ring nodes keys in
  let mean = float_of_int (List.length keys) /. float_of_int 4 in
  List.iter
    (fun id ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts id) in
      if float_of_int c > 1.3 *. mean then
        Alcotest.failf "node %d owns %d of %d node-0-born names" id c
          (List.length keys))
    nodes

(* Consistent hashing's point: membership changes remap only the keys
   the changed node owned.  A leave must not move any key the leaver
   did not own, a join may only move keys onto the joiner, and either
   way the moved fraction stays near 1/n (bounded at 2/n — again about
   6 sigma for these sizes). *)
let gen_membership rng =
  let nodes = gen_node_set rng in
  let rec fresh () =
    let id = Splitmix.int rng 64 in
    if List.mem id nodes then fresh () else id
  in
  (nodes, fresh ())

let ring_minimal_remap =
  Prop.case ~name:"ring remap: join/leave move <= 2/n of the keys"
    ~base:0xD1A0_0002L ~gen:gen_membership
    ~show:(fun (nodes, joiner) ->
      Printf.sprintf "[%s] joiner %d" (show_nodes nodes) joiner)
    (fun (nodes, joiner) ->
      let n = List.length nodes in
      let keys = ring_keys n in
      let k = List.length keys in
      let before = Directory.make ~nodes () in
      let leaver = List.hd nodes in
      let after_leave = Directory.make ~nodes:(List.tl nodes) () in
      let after_join = Directory.make ~nodes:(joiner :: nodes) () in
      let moved_leave = ref 0 and moved_join = ref 0 in
      let err = ref None in
      List.iter
        (fun key ->
          let s0 = Directory.shard before key in
          let sl = Directory.shard after_leave key in
          let sj = Directory.shard after_join key in
          if s0 = leaver then incr moved_leave
          else if sl <> s0 && !err = None then
            err :=
              Some
                (Printf.sprintf
                   "leave of %d moved %s from %d to %d" leaver
                   (Name.to_string key) s0 sl);
          if sj <> s0 then begin
            incr moved_join;
            if sj <> joiner && !err = None then
              err :=
                Some
                  (Printf.sprintf
                     "join of %d moved %s from %d to %d" joiner
                     (Name.to_string key) s0 sj)
          end)
        keys;
      match !err with
      | Some e -> Error e
      | None ->
        if !moved_leave * n > 2 * k then
          Error
            (Printf.sprintf "leave moved %d of %d keys (n = %d)"
               !moved_leave k n)
        else if !moved_join * (n + 1) > 2 * k then
          Error
            (Printf.sprintf "join moved %d of %d keys (n = %d)"
               !moved_join k n)
        else Ok ())

let () =
  Alcotest.run "eden_props"
    [
      ("name", [ name_roundtrip ]);
      ("capability", [ cap_roundtrip ]);
      ( "message",
        [
          message_roundtrip;
          message_rejects_truncation;
          Alcotest.test_case "decode bounds value nesting" `Quick
            test_decode_bounds_nesting;
          Alcotest.test_case "cancel codec survives hostile input" `Quick
            test_cancel_codec_hostile;
          Alcotest.test_case "dir codecs survive hostile input" `Quick
            test_dir_codec_hostile;
        ] );
      ("delta", [ delta_apply_roundtrip; delta_never_larger ]);
      ( "span_json",
        [
          span_info_roundtrip;
          span_json_rejects_bad_phase;
          Alcotest.test_case "malformed phases rejected" `Quick
            test_span_json_missing_phases;
        ] );
      ("traced", [ traced_roundtrip ]);
      ("fault_plan", [ plan_roundtrip ]);
      ("health", [ window_merge_algebra; topk_error_bounds ]);
      ( "directory",
        [
          ring_balance;
          ring_minimal_remap;
          Alcotest.test_case "point/name domains never alias" `Quick
            test_ring_point_name_aliasing;
        ] );
    ]
