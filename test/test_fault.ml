(* Chaos and property tests for Eden_fault: plan round-trips, random
   plan well-formedness, and whole-cluster runs under seeded fault
   schedules with recovery and determinism invariants. *)

open Eden_util
open Eden_sim
open Eden_kernel
module Plan = Eden_fault.Plan
module Controller = Eden_fault.Controller

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Plan: text format *)

let sample_plan =
  Plan.make
    [
      { Plan.at = Time.ms 100; action = Plan.Crash_node 1 };
      { Plan.at = Time.ms 600;
        action = Plan.Restart_node { node = 1; rebuild = true } };
      { Plan.at = Time.ms 150; action = Plan.Fail_disk 2 };
      { Plan.at = Time.ms 450; action = Plan.Heal_disk 2 };
      { Plan.at = Time.ms 200; action = Plan.Partition_segment 1 };
      { Plan.at = Time.ms 400; action = Plan.Heal_segment 1 };
      { Plan.at = Time.ms 50;
        action = Plan.Break_link { src = 0; dst = 2; kind = Plan.Drop; p = 0.5 } };
      { Plan.at = Time.us 60;
        action =
          Plan.Break_link { src = 0; dst = 2; kind = Plan.Duplicate; p = 0.25 } };
      { Plan.at = Time.ms 70;
        action =
          Plan.Break_link
            { src = 0; dst = 2; kind = Plan.Delay (Time.ms 2); p = 1.0 } };
      { Plan.at = Time.ms 300; action = Plan.Heal_link { src = 0; dst = 2 } };
    ]

let test_plan_roundtrip () =
  (* The hand-built plan and ten random ones all survive print/parse. *)
  let plans =
    sample_plan
    :: List.init 10 (fun i ->
           Plan.random ~seed:(Int64.of_int i) ~nodes:4 ~segments:2
             ~horizon:(Time.s 2))
  in
  List.iter
    (fun p ->
      match Plan.of_string (Plan.to_string p) with
      | Ok q ->
        check_bool "round-trip preserves events" true
          (Plan.events p = Plan.events q)
      | Error e -> Alcotest.failf "re-parse failed: %s\n%s" e (Plan.to_string p))
    plans

let test_plan_sorted () =
  let evs = Plan.events sample_plan in
  check_int "all events kept" 10 (List.length evs);
  let rec mono = function
    | a :: (b : Plan.event) :: rest ->
      check_bool "sorted by time" true Time.(a.Plan.at <= b.at);
      mono (b :: rest)
    | _ -> ()
  in
  mono evs

let test_plan_parse_errors () =
  let bad s =
    match Plan.of_string s with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "parsed garbage %S" s
  in
  check_bool "names the line" true
    (String.length (bad "at 1ms crash 0\nwibble") > 0
    && String.sub (bad "at 1ms crash 0\nwibble") 0 7 = "line 2:");
  ignore (bad "at 5parsecs crash 0");
  ignore (bad "at 5ms crash zero");
  ignore (bad "at 5ms drop 0->0x p=0.5");
  ignore (bad "at 5ms delay 0->1 p=0.5");
  (* Comments and blank lines are fine. *)
  match Plan.of_string "# a comment\n\nat 1ms crash 0  # trailing\n" with
  | Ok p -> check_int "one event" 1 (List.length (Plan.events p))
  | Error e -> Alcotest.failf "comment handling: %s" e

let test_plan_validate () =
  let one at action = Plan.make [ { Plan.at; action } ] in
  let ok p = Plan.validate p ~nodes:4 ~segments:2 = Ok () in
  check_bool "in range" true (ok (one (Time.ms 1) (Plan.Crash_node 3)));
  check_bool "node out of range" false (ok (one (Time.ms 1) (Plan.Crash_node 4)));
  check_bool "segment out of range" false
    (ok (one (Time.ms 1) (Plan.Partition_segment 2)));
  check_bool "negative probability" false
    (ok
       (one (Time.ms 1)
          (Plan.Break_link { src = 0; dst = 1; kind = Plan.Drop; p = -0.1 })));
  check_bool "probability above one" false
    (ok
       (one (Time.ms 1)
          (Plan.Break_link { src = 0; dst = 1; kind = Plan.Drop; p = 1.5 })));
  check_bool "self-loop link" false
    (ok
       (one (Time.ms 1)
          (Plan.Break_link { src = 2; dst = 2; kind = Plan.Drop; p = 0.5 })))

let test_plan_random_wellformed () =
  for seed = 0 to 9 do
    let horizon = Time.s 2 in
    let p =
      Plan.random ~seed:(Int64.of_int seed) ~nodes:4 ~segments:2 ~horizon
    in
    (match Plan.validate p ~nodes:4 ~segments:2 with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: invalid random plan: %s" seed e);
    List.iter
      (fun (ev : Plan.event) ->
        check_bool "within horizon" true Time.(ev.at < horizon);
        match ev.action with
        | Plan.Crash_node n | Plan.Fail_disk n ->
          check_bool "node 0 spared" true (n <> 0)
        | _ -> ())
      (Plan.events p);
    (* Same seed, same plan. *)
    let q =
      Plan.random ~seed:(Int64.of_int seed) ~nodes:4 ~segments:2 ~horizon
    in
    check_bool "reproducible" true (Plan.events p = Plan.events q)
  done

(* ------------------------------------------------------------------ *)
(* Chaos runs *)

let chaos_type =
  let open Api in
  Typemgr.make_exn ~name:"chaos_counter"
    [
      Typemgr.operation "config" (fun ctx args ->
          let* v = arg1 args in
          let* sites =
            Value.to_list v
            |> Result.map_error (fun m -> Error.Bad_arguments m)
          in
          let sites =
            List.filter_map (fun s -> Result.to_option (Value.to_int s)) sites
          in
          let* () = ctx.set_reliability (Reliability.Mirrored sites) in
          let* () = ctx.checkpoint () in
          reply_unit);
      Typemgr.operation "incr" (fun ctx args ->
          let* () = no_args args in
          let* n = int_arg (ctx.get_repr ()) in
          let* () = ctx.set_repr (Value.Int (n + 1)) in
          (match ctx.checkpoint () with Ok () | Error _ -> ());
          reply [ Value.Int (n + 1) ]);
      Typemgr.operation "get" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          reply [ ctx.get_repr () ]);
    ]

let nodes = 4
let requests = 220
let horizon = Time.s 2

type chaos_result = {
  ok : int;
  failed : int;
  probes_ok : bool;  (* post-heal, every counter answered *)
  injected : int;
  snapshot : string;
  trace : string;  (* assembled cross-node timeline, text form *)
  trace_nodes : int;
  violations : string list;  (* trace-checker verdicts, formatted *)
  reads : int option list;  (* frozen-read results, stream order *)
  fanouts : int;  (* clone fan-outs, summed over nodes *)
  cancels : int;  (* clone cancels sent, summed over nodes *)
  dedup_dropped : int;  (* duplicates the serving side refused *)
  dir_hits : int;  (* directory resolutions, summed over nodes *)
  dir_fallbacks : int;  (* attempts that fell back to broadcast *)
}

let sum_counter snap name =
  List.fold_left
    (fun acc i ->
      match
        Eden_obs.Snapshot.find snap
          ~labels:[ ("node", string_of_int i) ]
          name
      with
      | Some (Eden_obs.Metrics.Counter n) -> acc + n
      | _ -> acc)
    0
    (List.init nodes Fun.id)

(* A seeded chaos run: 4 nodes on 2 bridged segments, one Mirrored
   counter per node, a paced request stream from node 0 under the
   seed's random plan, then a post-heal probe of every counter.  With
   [frozen_reads] a frozen counter lives on node 3 with replicas on
   1 and 2, and every other stream iteration reads it from node 0 —
   the shape the speculation hot path (cloning + hedging) acts on. *)
let run_chaos ?plan ?options ?coalesce ?(frozen_reads = false) ~seed () =
  let configs =
    List.init nodes (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "node%d" i))
  in
  let cl =
    Cluster.create ~seed:(Int64.of_int seed) ~segments:[ 2; 2 ] ?options
      ?coalesce ~configs ()
  in
  Cluster.register_type cl chaos_type;
  let eng = Cluster.engine cl in
  let plan =
    match plan with
    | Some p -> p
    | None ->
      Plan.random ~seed:(Int64.of_int seed) ~nodes ~segments:2 ~horizon
  in
  let caps = ref [||] in
  let frozen = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        caps :=
          Array.init nodes (fun i ->
              let cap =
                match
                  Cluster.create_object cl ~node:i ~type_name:"chaos_counter"
                    (Value.Int 0)
                with
                | Ok c -> c
                | Error e -> failwith ("create: " ^ Error.to_string e)
              in
              match
                Cluster.invoke cl ~from:i cap ~op:"config"
                  [
                    Value.List
                      [ Value.Int i; Value.Int ((i + 1) mod nodes) ];
                  ]
              with
              | Ok _ -> cap
              | Error e -> failwith ("config: " ^ Error.to_string e));
        if frozen_reads then begin
          let cap =
            match
              Cluster.create_object cl ~node:(nodes - 1)
                ~type_name:"chaos_counter" (Value.Int 7)
            with
            | Ok c -> c
            | Error e -> failwith ("create frozen: " ^ Error.to_string e)
          in
          (match Cluster.freeze cl cap with
          | Ok () -> ()
          | Error e -> failwith ("freeze: " ^ Error.to_string e));
          List.iter
            (fun n ->
              match Cluster.replicate cl cap ~to_node:n with
              | Ok () -> ()
              | Error e -> failwith ("replicate: " ^ Error.to_string e))
            [ 1; 2 ];
          frozen := Some cap
        end)
  in
  Cluster.run cl;
  let ctl = Controller.arm ~seed:(Int64.of_int seed) cl plan in
  let ok = ref 0 and failed = ref 0 in
  let probes_ok = ref true in
  let reads = ref [] in
  let _ =
    Cluster.in_process cl (fun () ->
        let last = ref (Engine.now eng) in
        for r = 0 to requests - 1 do
          Engine.delay (Time.ms 10);
          (* The virtual clock never runs backwards, faults or not. *)
          if Time.(Engine.now eng < !last) then
            failwith "virtual clock went backwards";
          last := Engine.now eng;
          (match
             Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
               ~retry:Api.default_retry
               (!caps).(r mod nodes)
               ~op:"incr" []
           with
          | Ok _ -> incr ok
          | Error _ -> incr failed);
          match !frozen with
          | Some cap when r mod 2 = 0 -> (
            match
              Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
                ~retry:Api.default_retry cap ~op:"get" []
            with
            | Ok [ Value.Int v ] -> reads := Some v :: !reads
            | Ok _ | Error _ -> reads := None :: !reads)
          | _ -> ()
        done;
        (* Post-heal: every fault has healed (the stream outlives the
           plan horizon), so every Mirrored counter must answer. *)
        Array.iter
          (fun cap ->
            match
              Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300)
                ~retry:Api.default_retry cap ~op:"get" []
            with
            | Ok [ Value.Int _ ] -> ()
            | Ok _ | Error _ -> probes_ok := false)
          !caps)
  in
  Cluster.run cl;
  let tl = Cluster.timeline cl in
  let violations =
    Eden_obs.Check.run ~complete:(Cluster.journal_dropped cl = 0) tl
    |> List.map (Format.asprintf "%a" Eden_obs.Check.pp_violation)
  in
  let snap = Cluster.metrics_snapshot cl in
  {
    ok = !ok;
    failed = !failed;
    probes_ok = !probes_ok;
    injected = Controller.injected ctl;
    snapshot = Eden_obs.Snapshot.to_string snap;
    trace = Eden_obs.Timeline.to_text tl;
    trace_nodes = List.length (Eden_obs.Timeline.nodes tl);
    violations;
    reads = List.rev !reads;
    fanouts = sum_counter snap "eden.clone.fanouts";
    cancels = sum_counter snap "eden.clone.cancels";
    dedup_dropped = sum_counter snap "eden.dedup.dropped";
    dir_hits = sum_counter snap "eden.dir.hits";
    dir_fallbacks = sum_counter snap "eden.dir.fallbacks";
  }

let test_chaos_no_faults_no_failures () =
  let r = run_chaos ~plan:Plan.empty ~seed:3 () in
  check_int "no faults injected" 0 r.injected;
  check_int "no lost replies without faults" 0 r.failed;
  check_int "all requests completed" requests r.ok;
  check_bool "probes answer" true r.probes_ok

let test_chaos_invariants () =
  for seed = 0 to 9 do
    let r = run_chaos ~seed () in
    check_int
      (Printf.sprintf "seed %d: every request accounted for" seed)
      requests (r.ok + r.failed);
    check_bool
      (Printf.sprintf "seed %d: mirrored counters recover post-heal" seed)
      true r.probes_ok;
    (* The random plan always schedules at least a crash/restart pair. *)
    check_bool (Printf.sprintf "seed %d: faults fired" seed) true
      (r.injected >= 2)
  done

let test_chaos_deterministic () =
  List.iter
    (fun seed ->
      let a = run_chaos ~seed () and b = run_chaos ~seed () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: identical metrics snapshots" seed)
        a.snapshot b.snapshot;
      check_int "identical completions" a.ok b.ok;
      check_int "identical fault counts" a.injected b.injected;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: byte-identical assembled timelines" seed)
        a.trace b.trace)
    [ 0; 7 ]

(* The trace checker audits every chaos run end to end: journals on
   all nodes assemble into one timeline whose cross-node invariants
   (recv-matches-send, causal time order, retry termination, cache
   epochs) hold under drops, delays, duplicates, crashes and
   partitions. *)
let test_chaos_trace_invariants () =
  for seed = 0 to 4 do
    let r = run_chaos ~seed () in
    check_bool
      (Printf.sprintf "seed %d: trace invariants hold (%s)" seed
         (String.concat "; " r.violations))
      true (r.violations = []);
    check_bool (Printf.sprintf "seed %d: trace spans >= 3 nodes" seed) true
      (r.trace_nodes >= 3)
  done

(* The invocation hot path options must not break chaos invariants:
   with coalescing batching kernel messages (a dropped or delayed wire
   transfer now loses or holds back every member) and the replica
   cache armed, every request is still accounted for and the cluster
   still recovers post-heal. *)
let hot_path_options =
  { Cluster.default_options with Cluster.use_replica_cache = true }

let test_chaos_hot_path_invariants () =
  for seed = 0 to 4 do
    let r =
      run_chaos ~options:hot_path_options
        ~coalesce:Eden_kernel.Transport.default_coalesce ~seed ()
    in
    check_int
      (Printf.sprintf "seed %d: every request accounted for" seed)
      requests (r.ok + r.failed);
    check_bool
      (Printf.sprintf "seed %d: counters recover post-heal" seed)
      true r.probes_ok;
    check_bool (Printf.sprintf "seed %d: faults fired" seed) true
      (r.injected >= 2)
  done

let test_chaos_hot_path_deterministic () =
  (* The acceptance bar for the cache + coalescer: equal seeds give
     byte-identical metrics snapshots with both features enabled. *)
  List.iter
    (fun seed ->
      let once () =
        run_chaos ~options:hot_path_options
          ~coalesce:Eden_kernel.Transport.default_coalesce ~seed ()
      in
      let a = once () and b = once () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: identical snapshots with cache+coalescer"
           seed)
        a.snapshot b.snapshot;
      check_int "identical completions" a.ok b.ok;
      check_int "identical fault counts" a.injected b.injected)
    [ 2; 11 ]

(* ------------------------------------------------------------------ *)
(* Speculation under chaos: cloning + hedged retries *)

let spec_options =
  {
    Cluster.default_options with
    Cluster.speculate =
      { Api.no_speculation with Api.sp_clone = true; sp_hedge = true };
  }

(* A fixed plan shaped for the speculation hot path: a duplicating
   link into the frozen object's home (feeds the serving-side dedup
   table), two overlapping slow-node windows (the straggler pattern
   cloning and hedging exist for), and a replica crash + rebuild
   (clone fan-outs must resolve even when a fan-out site is down). *)
let spec_plan =
  Plan.make
    [
      { Plan.at = Time.ms 80;
        action =
          Plan.Break_link
            { src = 0; dst = 3; kind = Plan.Duplicate; p = 0.4 } };
      { Plan.at = Time.ms 1600; action = Plan.Heal_link { src = 0; dst = 3 } };
      { Plan.at = Time.ms 300;
        action = Plan.Slow_node { node = 3; by = Time.ms 4 } };
      { Plan.at = Time.ms 900; action = Plan.Heal_slow 3 };
      { Plan.at = Time.ms 500;
        action = Plan.Slow_node { node = 1; by = Time.ms 2 } };
      { Plan.at = Time.ms 1100; action = Plan.Heal_slow 1 };
      { Plan.at = Time.ms 700; action = Plan.Crash_node 2 };
      { Plan.at = Time.ms 1300;
        action = Plan.Restart_node { node = 2; rebuild = true } };
    ]

(* Speculation must change who answers a read, never what it answers:
   the frozen-read result stream is identical with cloning on and
   off, every loser is retracted, and the dedup table absorbs the
   duplicating link's extra copies. *)
let test_spec_chaos_results_match () =
  let base = run_chaos ~plan:spec_plan ~frozen_reads:true ~seed:5 () in
  let spec =
    run_chaos ~plan:spec_plan ~options:spec_options ~frozen_reads:true
      ~seed:5 ()
  in
  check_int "baseline never fans out" 0 base.fanouts;
  check_bool "speculation fans out" true (spec.fanouts > 0);
  check_bool "losers are cancelled" true (spec.cancels > 0);
  check_bool "dedup table drops duplicates" true (spec.dedup_dropped > 0);
  Alcotest.(check (list (option int)))
    "read results identical with cloning on and off" base.reads spec.reads;
  check_bool "every read answered with the frozen value" true
    (base.reads <> [] && List.for_all (( = ) (Some 7)) base.reads);
  check_bool "no trace violations with speculation on" true
    (spec.violations = [])

let test_spec_chaos_deterministic () =
  (* Same seed, same random plan, speculation on: byte-identical
     metrics snapshots and assembled timelines — first-response-wins
     races are resolved by virtual time, not wall-clock chance. *)
  List.iter
    (fun seed ->
      let once () =
        run_chaos ~options:spec_options ~frozen_reads:true ~seed ()
      in
      let a = once () and b = once () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: identical snapshots with speculation" seed)
        a.snapshot b.snapshot;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: byte-identical timelines with speculation"
           seed)
        a.trace b.trace;
      Alcotest.(check (list (option int)))
        "identical read results" a.reads b.reads;
      check_int "identical completions" a.ok b.ok)
    [ 1; 9 ]

let test_spec_chaos_trace_invariants () =
  (* Random plans (drops, delays, duplicates, crashes, partitions,
     slow nodes) with cloning + hedging armed: the clone-resolves-once
     invariant and all the older cross-node invariants must hold. *)
  for seed = 0 to 2 do
    let r = run_chaos ~options:spec_options ~frozen_reads:true ~seed () in
    check_bool
      (Printf.sprintf "seed %d: trace invariants hold (%s)" seed
         (String.concat "; " r.violations))
      true (r.violations = []);
    check_int
      (Printf.sprintf "seed %d: every request accounted for" seed)
      requests (r.ok + r.failed);
    check_bool
      (Printf.sprintf "seed %d: counters recover post-heal" seed)
      true r.probes_ok
  done

(* Regression: cancels are keyed by the full (origin, sequence) id.
   Per-origin sequence counters all start at zero, so sequence numbers
   collide across nodes constantly; bookkeeping keyed by sequence
   alone lets one requester's clone cancels retract another
   requester's queued work at a shared serving node — or a cancelled
   clone's tombstone silently drop an unrelated request that reused
   the number.  Node 0 clone-reads a frozen object whose losers
   (node 3 among them) get cancelled every iteration, while node 1
   drives a counter that lives on node 3; with its sequence counter
   pushed ahead, node 0's cancels name sequence numbers node 1 has
   yet to use.  Verified failing against a sequence-only key. *)
let test_cancel_cross_origin_isolation () =
  let configs =
    List.init nodes (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "node%d" i))
  in
  let cl =
    Cluster.create ~seed:42L ~segments:[ 2; 2 ] ~options:spec_options ~configs
      ()
  in
  Cluster.register_type cl chaos_type;
  let must what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)
  in
  let rounds = 40 in
  let _ =
    Cluster.in_process cl (fun () ->
        let frozen =
          must "create frozen"
            (Cluster.create_object cl ~node:3 ~type_name:"chaos_counter"
               (Value.Int 7))
        in
        must "freeze" (Cluster.freeze cl frozen);
        List.iter
          (fun n -> must "replicate" (Cluster.replicate cl frozen ~to_node:n))
          [ 1; 2 ];
        let counter =
          must "create counter"
            (Cluster.create_object cl ~node:3 ~type_name:"chaos_counter"
               (Value.Int 0))
        in
        (* Warm reads push node 0's sequence counter ahead of node
           1's, so every cancelled loser names a sequence number node
           1 is still approaching. *)
        for _ = 1 to 6 do
          ignore
            (must "warm"
               (Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300) frozen
                  ~op:"get" []))
        done;
        for r = 1 to rounds do
          Engine.delay (Time.ms 2);
          ignore
            (must "clone read"
               (Cluster.invoke cl ~from:0 ~timeout:(Time.ms 300) frozen
                  ~op:"get" []));
          match
            Cluster.invoke cl ~from:1 ~timeout:(Time.ms 300) counter
              ~op:"incr" []
          with
          | Ok [ Value.Int v ] -> check_int "monotonic count" r v
          | Ok _ -> Alcotest.fail "incr: unexpected reply shape"
          | Error e ->
            Alcotest.failf
              "incr %d retracted by a foreign cancel: %s" r
              (Error.to_string e)
        done;
        match
          Cluster.invoke cl ~from:1 ~timeout:(Time.ms 300) counter ~op:"get" []
        with
        | Ok [ Value.Int v ] -> check_int "no increment lost" rounds v
        | Ok _ | Error _ -> Alcotest.fail "final get failed")
  in
  Cluster.run cl;
  let snap = Cluster.metrics_snapshot cl in
  check_bool "the reads really cloned and cancelled" true
    (sum_counter snap "eden.clone.fanouts" > 0
    && sum_counter snap "eden.clone.cancels" > 0)

(* ------------------------------------------------------------------ *)
(* The sharded locate directory under chaos *)

let dir_options =
  { Cluster.default_options with Cluster.use_directory = true }

(* Hint cache and forwarding off: every invocation pays the full
   resolution price, so the directory (not a warm hint) is what finds
   the object — the configuration the directed regressions need. *)
let dir_cold_options =
  {
    Cluster.default_options with
    Cluster.use_directory = true;
    use_hint_cache = false;
    use_forwarding = false;
  }

let must what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Error.to_string e)

let dir_cluster ?(options = dir_cold_options) ~seed () =
  let configs =
    List.init nodes (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "node%d" i))
  in
  let cl =
    Cluster.create ~seed:(Int64.of_int seed) ~segments:[ 2; 2 ] ~options
      ~configs ()
  in
  Cluster.register_type cl chaos_type;
  cl

(* Object names are kernel-assigned, so tests that need a name whose
   registry shard lands on a particular node create until one does
   (shards spread evenly, so a handful of tries suffices; the spares
   are harmless). *)
let rec create_on_shard cl ~node ~shards ~tries init =
  if tries = 0 then Alcotest.fail "no name landed on the wanted shards"
  else
    let cap =
      must "create"
        (Cluster.create_object cl ~node ~type_name:"chaos_counter" init)
    in
    if List.mem (Cluster.directory_shard cl (Capability.name cap)) shards then
      cap
    else create_on_shard cl ~node ~shards ~tries:(tries - 1) init

let test_dir_chaos_deterministic () =
  (* Same seed, same random plan, directory on: byte-identical metrics
     snapshots and assembled timelines — ring placement, lease stamps
     and fallback races are all functions of virtual time and the
     seed, never of hash-table iteration or wall clock. *)
  List.iter
    (fun seed ->
      let once () = run_chaos ~options:dir_options ~seed () in
      let a = once () and b = once () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: identical snapshots with directory" seed)
        a.snapshot b.snapshot;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: byte-identical timelines with directory"
           seed)
        a.trace b.trace;
      check_int "identical completions" a.ok b.ok;
      check_int "identical fault counts" a.injected b.injected)
    [ 3; 8 ]

let test_dir_chaos_invariants () =
  (* Random plans (drops, delays, duplicates, crashes, partitions)
     with the directory armed: every request still accounted for, the
     cluster recovers post-heal, and all six cross-node invariants —
     dir-resolves-or-falls-back included — hold on the assembled
     timeline. *)
  let hits = ref 0 in
  for seed = 0 to 4 do
    let r = run_chaos ~options:dir_options ~seed () in
    check_bool
      (Printf.sprintf "seed %d: trace invariants hold (%s)" seed
         (String.concat "; " r.violations))
      true (r.violations = []);
    check_int
      (Printf.sprintf "seed %d: every request accounted for" seed)
      requests (r.ok + r.failed);
    check_bool
      (Printf.sprintf "seed %d: counters recover post-heal" seed)
      true r.probes_ok;
    hits := !hits + r.dir_hits
  done;
  (* With the hint cache on, a lucky seed can serve the whole stream
     from hints — but across the seeds, re-locates after crashes and
     partitions must have gone through the directory. *)
  check_bool "the directory resolved names across the seeds" true (!hits > 0)

let test_dir_shard_death_fallback () =
  (* A dead registry shard must cost one reply window, never the
     answer: the requester's Dir_get goes unanswered, the attempt
     falls back to the broadcast locate, and the invocation still
     completes. *)
  let cl = dir_cluster ~seed:21 () in
  let _ =
    Cluster.in_process cl (fun () ->
        (* Home the object on node 0; its shard must be elsewhere so
           crashing the shard leaves the object itself alive. *)
        let cap =
          create_on_shard cl ~node:0 ~shards:[ 2; 3 ] ~tries:50 (Value.Int 7)
        in
        let shard = Cluster.directory_shard cl (Capability.name cap) in
        Cluster.crash_node cl shard;
        Engine.delay (Time.ms 20);
        let from = 5 - shard in  (* the other seg-1 node: 2 <-> 3 *)
        match
          Cluster.invoke cl ~from ~timeout:(Time.ms 300) cap ~op:"get" []
        with
        | Ok [ Value.Int v ] -> check_int "value survives the dead shard" 7 v
        | Ok _ -> Alcotest.fail "unexpected reply shape"
        | Error e ->
          Alcotest.failf "invoke with dead shard: %s" (Error.to_string e))
  in
  Cluster.run cl;
  let snap = Cluster.metrics_snapshot cl in
  check_bool "fallback taken" true
    (sum_counter snap "eden.dir.fallbacks" > 0);
  check_bool "broadcast locate answered" true
    (sum_counter snap "eden.locate_broadcasts" > 0)

(* The stale-hint regression: a move whose Dir_put is lost to a
   partition leaves the shard naming the old home.  The next
   directory-routed request is nacked by that home; NACK-on-wrong-home
   must invalidate the shard entry and fall back to broadcast, or the
   stale answer wins every retry and the invocation fails.  Verified
   failing: with the fallback disabled the same run errors out. *)
let stale_hint_run ~fallback =
  let cl = dir_cluster ~seed:29 () in
  let eng = Cluster.engine cl in
  let cap = ref None in
  let _ =
    Cluster.in_process cl (fun () ->
        (* The shard must sit across the bridge (segment 1), so the
           partition drops the move's publish but not the move. *)
        cap :=
          Some
            (create_on_shard cl ~node:0 ~shards:[ 2; 3 ] ~tries:50
               (Value.Int 7)))
  in
  Cluster.run cl;
  let cap = Option.get !cap in
  let now = Engine.now eng in
  let plan =
    Plan.make
      [
        { Plan.at = Time.add now (Time.ms 50);
          action = Plan.Partition_segment 1 };
        { Plan.at = Time.add now (Time.ms 150);
          action = Plan.Heal_segment 1 };
      ]
  in
  let _ctl = Controller.arm cl plan in
  let result = ref (Error Eden_kernel.Error.Timeout) in
  let _ =
    Cluster.in_process cl (fun () ->
        Engine.delay (Time.ms 100);
        (* Partitioned: the move succeeds inside segment 0, its
           publish to the segment-1 shard is dropped at the bridge. *)
        must "move" (Cluster.move cl cap ~to_node:1);
        Engine.delay (Time.ms 100);
        (* Healed: the shard still names node 0. *)
        Cluster.set_dir_nack_fallback cl fallback;
        result :=
          Cluster.invoke cl ~from:3 ~timeout:(Time.ms 300) cap ~op:"get" [])
  in
  Cluster.run cl;
  let snap = Cluster.metrics_snapshot cl in
  (!result, sum_counter snap "eden.dir.nacks",
   sum_counter snap "eden.dir.fallbacks")

let test_dir_stale_hint_nack_fallback () =
  (match stale_hint_run ~fallback:true with
  | Ok [ Value.Int 7 ], nacks, fallbacks ->
    check_bool "the stale home nacked" true (nacks > 0);
    check_bool "the nack fell back to broadcast" true (fallbacks > 0)
  | Ok _, _, _ -> Alcotest.fail "unexpected reply shape"
  | Error e, _, _ ->
    Alcotest.failf "stale entry not recovered: %s"
      (Eden_kernel.Error.to_string e));
  (* Verified failing: same run, fallback disabled — the stale entry
     wins every retry and the invocation errors out. *)
  match stale_hint_run ~fallback:false with
  | Error _, nacks, _ ->
    check_bool "the stale home kept nacking" true (nacks > 0)
  | Ok _, _, _ ->
    Alcotest.fail
      "invocation succeeded with NACK fallback disabled — the regression \
       guard is not guarding"

let test_dir_balance_publishes () =
  (* Policy.balance_once moves objects through Cluster.move, whose
     success path publishes the new home to the shard — so a fresh
     requester finds a balanced-away object in one directory exchange,
     no broadcast.  Pins the move-path publish: drop it and the hits
     stay but the broadcasts climb. *)
  let cl = dir_cluster ~seed:31 () in
  let caps = ref [] in
  let _ =
    Cluster.in_process cl (fun () ->
        caps :=
          List.init 6 (fun i ->
              must "create"
                (Cluster.create_object cl ~node:0 ~type_name:"chaos_counter"
                   (Value.Int i))))
  in
  Cluster.run cl;
  let snap0 = Cluster.metrics_snapshot cl in
  let bcasts0 = sum_counter snap0 "eden.locate_broadcasts" in
  let hits0 = sum_counter snap0 "eden.dir.hits" in
  let moved = ref 0 in
  let _ =
    Cluster.in_process cl (fun () ->
        moved := Policy.balance_once cl ~managed:!caps;
        Engine.delay (Time.ms 20);
        List.iteri
          (fun i cap ->
            match
              Cluster.invoke cl ~from:3 ~timeout:(Time.ms 300) cap ~op:"get"
                []
            with
            | Ok [ Value.Int v ] ->
              check_int (Printf.sprintf "object %d keeps its state" i) i v
            | Ok _ -> Alcotest.fail "unexpected reply shape"
            | Error e ->
              Alcotest.failf "get %d after balance: %s" i
                (Eden_kernel.Error.to_string e))
          !caps)
  in
  Cluster.run cl;
  let snap = Cluster.metrics_snapshot cl in
  check_bool "the balancer moved something" true (!moved > 0);
  check_int "no broadcast needed after the balance pass" bcasts0
    (sum_counter snap "eden.locate_broadcasts");
  check_bool "the directory answered the post-balance locates" true
    (sum_counter snap "eden.dir.hits" > hits0)

let test_controller_links_and_disarm () =
  let cl = Cluster.default ~seed:1L ~n_nodes:2 () in
  let plan =
    Plan.make
      [
        { Plan.at = Time.ms 1;
          action =
            Plan.Break_link { src = 0; dst = 1; kind = Plan.Drop; p = 1.0 } };
        { Plan.at = Time.ms 50; action = Plan.Heal_link { src = 0; dst = 1 } };
      ]
  in
  let ctl = Controller.arm cl plan in
  Cluster.run ~until:(Time.ms 10) cl;
  Alcotest.(check (list (pair int int)))
    "link recorded while broken" [ (0, 1) ] (Controller.broken_links ctl);
  Cluster.run ~until:(Time.ms 100) cl;
  Alcotest.(check (list (pair int int)))
    "heal clears the link" [] (Controller.broken_links ctl);
  Controller.disarm ctl;
  Alcotest.(check (list (pair int int)))
    "disarm leaves no links" [] (Controller.broken_links ctl)

let () =
  Alcotest.run "eden_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "sorted" `Quick test_plan_sorted;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors;
          Alcotest.test_case "validate" `Quick test_plan_validate;
          Alcotest.test_case "random well-formed" `Quick
            test_plan_random_wellformed;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "no faults, no failures" `Quick
            test_chaos_no_faults_no_failures;
          Alcotest.test_case "invariants over seeds 0-9" `Slow
            test_chaos_invariants;
          Alcotest.test_case "same seed, same snapshot" `Slow
            test_chaos_deterministic;
          Alcotest.test_case "trace invariants over seeds 0-4" `Slow
            test_chaos_trace_invariants;
          Alcotest.test_case "hot-path options keep invariants" `Slow
            test_chaos_hot_path_invariants;
          Alcotest.test_case "hot-path options stay deterministic" `Slow
            test_chaos_hot_path_deterministic;
          Alcotest.test_case "controller links + disarm" `Quick
            test_controller_links_and_disarm;
        ] );
      ( "speculation",
        [
          Alcotest.test_case "cloning changes who answers, not what" `Slow
            test_spec_chaos_results_match;
          Alcotest.test_case "deterministic with speculation on" `Slow
            test_spec_chaos_deterministic;
          Alcotest.test_case "trace invariants with speculation on" `Slow
            test_spec_chaos_trace_invariants;
          Alcotest.test_case "cancels are origin-scoped" `Quick
            test_cancel_cross_origin_isolation;
        ] );
      ( "directory",
        [
          Alcotest.test_case "deterministic with directory on" `Slow
            test_dir_chaos_deterministic;
          Alcotest.test_case "six invariants under random plans" `Slow
            test_dir_chaos_invariants;
          Alcotest.test_case "dead shard falls back to broadcast" `Quick
            test_dir_shard_death_fallback;
          Alcotest.test_case "stale entry: NACK invalidates, or fails" `Quick
            test_dir_stale_hint_nack_fallback;
          Alcotest.test_case "balance pass publishes new homes" `Quick
            test_dir_balance_publishes;
        ] );
    ]
