(* The checkpoint write path: versioned snapshots, delta checkpoints,
   the shared acknowledgement deadline, and the asynchronous pipeline.

   The three regression tests here fail against the pre-delta
   checkpoint code:
   - [test_shared_deadline]: do_checkpoint used to await each remote
     ack with a full 15s timeout of its own, so two dead checksites
     cost 30s instead of one shared 15s window.
   - [test_stale_reincarnation]: reincarnation used to rebuild from
     the first able checksite in list order, even when a later site
     held a newer snapshot.
   - [test_delta_fallback]: depends on the Ckpt_delta machinery (the
     fallback counter does not exist before it). *)

open Eden_util
open Eden_sim
open Eden_kernel
open Api
module Snapshot = Eden_obs.Snapshot
module Metrics = Eden_obs.Metrics
module Plan = Eden_fault.Plan
module Controller = Eden_fault.Controller

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Error.to_string e)

(* A counter plus a chunked variant: the repr is a [Value.List] of
   integer chunks, so touching one chunk dirties exactly one delta
   unit. *)
let chunky_ops =
  [
    Typemgr.operation "get" ~mutates:false (fun ctx args ->
        let* () = no_args args in
        reply [ ctx.get_repr () ]);
    Typemgr.operation "touch" (fun ctx args ->
        (* set chunk [i] to [v] *)
        let* a, b = arg2 args in
        let* i = int_arg a in
        let* v = int_arg b in
        let* chunks =
          Value.to_list (ctx.get_repr ())
          |> Result.map_error (fun m -> Error.Bad_arguments m)
        in
        let* () =
          ctx.set_repr
            (Value.List
               (List.mapi
                  (fun j c -> if j = i then Value.Int v else c)
                  chunks))
        in
        reply_unit);
    Typemgr.operation "grow" (fun ctx args ->
        let* v = arg1 args in
        let* bytes = int_arg v in
        let* () = ctx.set_repr (Value.Blob bytes) in
        reply_unit);
    Typemgr.operation "mirror" (fun ctx args ->
        let* v = arg1 args in
        let* l =
          Value.to_list v |> Result.map_error (fun m -> Error.Bad_arguments m)
        in
        let sites =
          List.filter_map (fun x -> Result.to_option (Value.to_int x)) l
        in
        let* () = ctx.set_reliability (Reliability.Mirrored sites) in
        reply_unit);
  ]

let chunky_type = Typemgr.make_exn ~name:"chunky" chunky_ops

let with_cluster ?seed ?options ?segments ?(n = 3) body =
  let configs =
    List.init n (fun i ->
        Eden_hw.Machine.default_config ~name:(Printf.sprintf "node%d" i))
  in
  let cl = Cluster.create ?seed ?options ?segments ~configs () in
  Cluster.register_type cl chunky_type;
  let result = ref None in
  let _ = Cluster.in_process cl (fun () -> result := Some (body cl)) in
  Cluster.run cl;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "driver process did not complete"

let delta_opts = { Cluster.default_options with Cluster.use_ckpt_delta = true }

let new_chunky cl ~node chunks =
  ok_or_fail "create chunky"
    (Cluster.create_object cl ~node ~type_name:"chunky"
       (Value.List (List.map (fun i -> Value.Int i) chunks)))

let mirror cl cap sites =
  ignore
    (ok_or_fail "mirror"
       (Cluster.invoke cl ~from:0 cap ~op:"mirror"
          [ Value.List (List.map (fun s -> Value.Int s) sites) ]))

let touch cl ~from cap i v =
  ignore
    (ok_or_fail "touch"
       (Cluster.invoke cl ~from cap ~op:"touch" [ Value.Int i; Value.Int v ]))

let get_chunks cl ~from cap =
  match Cluster.invoke cl ~from cap ~op:"get" [] with
  | Ok [ Value.List vs ] ->
    List.map
      (fun v -> match v with Value.Int n -> n | _ -> Alcotest.fail "chunk")
      vs
  | Ok _ -> Alcotest.fail "get: unexpected shape"
  | Error e -> Alcotest.failf "get: %s" (Error.to_string e)

let node_counter cl name ~node =
  let snap = Cluster.metrics_snapshot cl in
  match Snapshot.find snap ~labels:[ ("node", string_of_int node) ] name with
  | Some (Metrics.Counter n) -> n
  | _ -> Alcotest.failf "missing counter %s" name

let total_counter cl name =
  let rec sum node acc =
    if node >= Cluster.node_count cl then acc
    else sum (node + 1) (acc + node_counter cl name ~node)
  in
  sum 0 0

let node_gauge cl name ~node =
  let snap = Cluster.metrics_snapshot cl in
  match Snapshot.find snap ~labels:[ ("node", string_of_int node) ] name with
  | Some (Metrics.Gauge g) -> g
  | _ -> Alcotest.failf "missing gauge %s" name

(* ------------------------------------------------------------------ *)
(* Shared acknowledgement deadline (regression) *)

let test_shared_deadline () =
  (* Both checksites live across a partitioned bridge: neither write
     is ever acknowledged.  The round must give up after ONE shared
     15s window, not one window per dead site (the old sequential
     await cost 30s here). *)
  with_cluster ~segments:[ 2; 2 ] ~n:4 (fun cl ->
      let cap = new_chunky cl ~node:0 [ 1; 2; 3 ] in
      mirror cl cap [ 2; 3 ];
      let plan =
        Plan.make [ { Plan.at = Time.ms 1; action = Plan.Partition_segment 1 } ]
      in
      let _ctl = Controller.arm cl plan in
      Engine.delay (Time.ms 5);
      let t0 = Engine.now (Cluster.engine cl) in
      (match Cluster.checkpoint_of cl cap with
      | Ok () -> Alcotest.fail "checkpoint across a partition succeeded"
      | Error _ -> ());
      let elapsed = Time.diff (Engine.now (Cluster.engine cl)) t0 in
      check_bool
        (Printf.sprintf "one shared window, not one per site (%s)"
           (Time.to_string elapsed))
        true
        (Time.(elapsed < s 16) && Time.(elapsed >= s 14)))

(* ------------------------------------------------------------------ *)
(* Versioned reincarnation (regression) *)

let test_stale_reincarnation () =
  (* Checkpoint v1 everywhere, v2 only where the disk still works,
     then crash the home node.  The survivor holding v2 must win the
     reincarnation even though the stale site is listed first in the
     checksite order (and proactively rebuilds on restart). *)
  with_cluster (fun cl ->
      let cap = new_chunky cl ~node:0 [ 0 ] in
      mirror cl cap [ 2; 1 ];
      touch cl ~from:0 cap 0 1;
      ignore (ok_or_fail "ckpt v1" (Cluster.checkpoint_of cl cap));
      Cluster.set_disk_failed cl 2 true;
      touch cl ~from:0 cap 0 2;
      (* Site 2 refuses this round; site 1 now holds the newer state. *)
      (match Cluster.checkpoint_of cl cap with
      | Ok () -> Alcotest.fail "checkpoint with a failed mirror succeeded"
      | Error _ -> ());
      Cluster.set_disk_failed cl 2 false;
      Cluster.crash_node cl 0;
      Cluster.crash_node cl 2;
      Cluster.restart_node ~rebuild:true cl 2;
      Engine.delay (Time.ms 100);
      (* Pre-versioning, node 2 (first in [2; 1]) rebuilt its stale v1
         snapshot here and this read returned 1. *)
      check_int "newest state wins" 2
        (List.hd
           (get_chunks cl ~from:1 cap)))

(* ------------------------------------------------------------------ *)
(* Delta checkpoints and the fallback path *)

let test_delta_then_fallback () =
  with_cluster ~options:delta_opts (fun cl ->
      let cap = new_chunky cl ~node:0 [ 10; 20; 30; 40 ] in
      mirror cl cap [ 1; 2 ];
      (* Round 1 has no diff base: full writes. *)
      ignore (ok_or_fail "ckpt v1" (Cluster.checkpoint_of cl cap));
      let full1 = node_counter cl "eden.ckpt.full_bytes" ~node:0 in
      check_bool "first round ships full payloads" true (full1 > 0);
      check_int "no deltas yet" 0
        (node_counter cl "eden.ckpt.delta_bytes" ~node:0);
      (* Round 2: both sites acked v1, so one dirty chunk travels as a
         delta. *)
      touch cl ~from:0 cap 2 33;
      ignore (ok_or_fail "ckpt v2" (Cluster.checkpoint_of cl cap));
      check_bool "second round ships deltas" true
        (node_counter cl "eden.ckpt.delta_bytes" ~node:0 > 0);
      check_int "no extra full payloads" full1
        (node_counter cl "eden.ckpt.full_bytes" ~node:0);
      check_int "no fallbacks on the happy path" 0
        (total_counter cl "eden.ckpt.fallbacks");
      (* A failed disk nacks its delta; the sender falls back to a
         full write (which the dead disk also refuses). *)
      Cluster.set_disk_failed cl 2 true;
      touch cl ~from:0 cap 0 11;
      (match Cluster.checkpoint_of cl cap with
      | Ok () -> Alcotest.fail "checkpoint with a failed mirror succeeded"
      | Error _ -> ());
      check_bool "nacked delta fell back" true
        (total_counter cl "eden.ckpt.fallbacks" >= 1);
      Cluster.set_disk_failed cl 2 false;
      let fallbacks_before = total_counter cl "eden.ckpt.fallbacks" in
      (* Crash the home: the object reincarnates from the newest
         snapshot (site 1, v3) and optimistically assumes both mirrors
         are at that version.  Site 2 is actually still at v2, so the
         next delta is nacked on a genuine version mismatch and the
         full representation is re-sent. *)
      Cluster.crash_node cl 0;
      check_int "reincarnated state is current" 11
        (List.hd (get_chunks cl ~from:1 cap));
      touch cl ~from:1 cap 3 44;
      ignore (ok_or_fail "ckpt after reincarnation" (Cluster.checkpoint_of cl cap));
      check_bool "version mismatch fell back to a full write" true
        (total_counter cl "eden.ckpt.fallbacks" > fallbacks_before);
      (* And the fallback repaired the stale mirror: another round is
         all-delta again. *)
      let fallbacks_after = total_counter cl "eden.ckpt.fallbacks" in
      touch cl ~from:1 cap 1 22;
      ignore (ok_or_fail "ckpt repaired" (Cluster.checkpoint_of cl cap));
      check_int "mirror repaired, no further fallback" fallbacks_after
        (total_counter cl "eden.ckpt.fallbacks");
      check_bool "state survives it all" true
        (get_chunks cl ~from:2 cap = [ 11; 22; 33; 44 ]))

let test_delta_off_by_default () =
  with_cluster (fun cl ->
      let cap = new_chunky cl ~node:0 [ 1; 2 ] in
      mirror cl cap [ 1; 2 ];
      ignore (ok_or_fail "ckpt" (Cluster.checkpoint_of cl cap));
      touch cl ~from:0 cap 0 9;
      ignore (ok_or_fail "ckpt" (Cluster.checkpoint_of cl cap));
      check_int "no deltas without the option" 0
        (total_counter cl "eden.ckpt.delta_bytes"))

(* ------------------------------------------------------------------ *)
(* The asynchronous pipeline *)

let test_async_returns_immediately () =
  with_cluster ~options:delta_opts (fun cl ->
      let cap = new_chunky cl ~node:0 [ 0 ] in
      mirror cl cap [ 1; 2 ];
      (* A half-megabyte representation takes around a second to reach
         two mirrors over an era disk and LAN: the synchronous path
         blocks for that long, the async call must not. *)
      ignore
        (ok_or_fail "grow"
           (Cluster.invoke cl ~from:0 cap ~op:"grow"
              [ Value.Int 500_000 ]));
      let t0 = Engine.now (Cluster.engine cl) in
      ignore (ok_or_fail "ckpt async" (Cluster.checkpoint_async_of cl cap));
      let elapsed = Time.diff (Engine.now (Cluster.engine cl)) t0 in
      check_bool
        (Printf.sprintf "returned immediately (%s)" (Time.to_string elapsed))
        true
        Time.(elapsed < ms 1);
      (* While the round is in flight the gauge reads 1 and further
         requests coalesce instead of stacking. *)
      Engine.delay (Time.ms 10);
      check_bool "pipeline in flight" true
        (node_gauge cl "eden.ckpt.async_inflight" ~node:0 >= 1.0);
      ignore (ok_or_fail "coalesce 1" (Cluster.checkpoint_async_of cl cap));
      ignore (ok_or_fail "coalesce 2" (Cluster.checkpoint_async_of cl cap));
      check_int "both requests coalesced" 2
        (node_counter cl "eden.ckpt.coalesced" ~node:0);
      Engine.delay (Time.s 20);
      check_bool "pipeline drained" true
        (node_gauge cl "eden.ckpt.async_inflight" ~node:0 = 0.0);
      Alcotest.(check (list int))
        "both mirrors hold the snapshot" [ 1; 2 ]
        (Cluster.checkpoint_sites cl cap))

let test_async_then_sync_serialise () =
  (* A synchronous checkpoint issued while an async round is in flight
     waits for the slot instead of interleaving two rounds. *)
  with_cluster (fun cl ->
      let cap = new_chunky cl ~node:0 [ 0 ] in
      mirror cl cap [ 1; 2 ];
      ignore
        (ok_or_fail "grow"
           (Cluster.invoke cl ~from:0 cap ~op:"grow" [ Value.Int 500_000 ]));
      ignore (ok_or_fail "ckpt async" (Cluster.checkpoint_async_of cl cap));
      Engine.delay (Time.ms 1);
      ignore (ok_or_fail "ckpt sync" (Cluster.checkpoint_of cl cap));
      Alcotest.(check (list int))
        "snapshot settled" [ 1; 2 ]
        (Cluster.checkpoint_sites cl cap))

let () =
  Alcotest.run "eden_ckpt"
    [
      ( "deadline",
        [ Alcotest.test_case "shared ack deadline" `Quick test_shared_deadline ]
      );
      ( "versioning",
        [
          Alcotest.test_case "stale reincarnation" `Quick
            test_stale_reincarnation;
        ] );
      ( "delta",
        [
          Alcotest.test_case "delta then fallback" `Quick
            test_delta_then_fallback;
          Alcotest.test_case "off by default" `Quick test_delta_off_by_default;
        ] );
      ( "async",
        [
          Alcotest.test_case "returns immediately" `Quick
            test_async_returns_immediately;
          Alcotest.test_case "serialises with sync" `Quick
            test_async_then_sync_serialise;
        ] );
    ]
