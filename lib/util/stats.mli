(** Sample statistics for experiment measurements.

    {!t} accumulates full samples (measurement counts here are small
    enough that retaining them is cheap) and reports mean, standard
    deviation and exact percentiles.  {!Histogram} buckets values for
    distribution-shaped output. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_time : t -> Time.t -> unit
(** Record a duration, in seconds. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 on an empty sample. *)

val stddev : t -> float
(** Population standard deviation; 0 on samples of size < 2. *)

val min_value : t -> float
(** Raises [Invalid_argument] on an empty sample. *)

val max_value : t -> float
(** Raises [Invalid_argument] on an empty sample. *)

val percentile : t -> float -> float
(** [percentile s p] with [p] in [\[0,100\]], nearest-rank on the sorted
    sample.  Raises [Invalid_argument] on an empty sample or [p] out of
    range — an empty sample has no order statistics, and a silent [0.0]
    or [nan] would flow into downstream comparisons unnoticed.  Callers
    sampling windows that may legitimately be empty should test
    {!count} first (the health plane's windowed estimators instead
    return [nan] for "no data", which its rule evaluation treats as
    never breaching). *)

val median : t -> float
(** [percentile s 50.0]: same empty-sample and ordering contract. *)

val merge : t -> t -> t
(** A fresh statistic over the union of both samples. *)

val pp_summary : Format.formatter -> t -> unit
(** ["n=.. mean=.. p50=.. p99=.. max=.."] *)

module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  (** Linear buckets spanning [\[lo, hi)]; out-of-range values land in
      underflow/overflow counters.  Requires [lo < hi] and
      [buckets > 0]. *)

  val add : h -> float -> unit
  val bucket_counts : h -> int array
  val underflow : h -> int
  val overflow : h -> int
  val total : h -> int
  val pp : Format.formatter -> h -> unit
end
