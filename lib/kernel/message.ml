type request_id = { origin : int; seq : int }

type residence = Res_active | Res_passive | Res_replica

type t =
  | Inv_request of {
      inv_id : request_id;
      target : Name.t;
      op : string;
      args : Value.t list;
      presented : Rights.t;
      reply_to : int;
      hops : int;
      may_activate : bool;
      span : Eden_obs.Span.t option;
    }
  | Inv_reply of {
      inv_id : request_id;
      result : Api.invoke_result;
      frozen_hint : bool;
    }
  | Inv_nack of { inv_id : request_id; target : Name.t }
  | Hint_update of { target : Name.t; at_node : int }
  | Locate_request of { req_id : request_id; target : Name.t; reply_to : int }
  | Locate_reply of {
      req_id : request_id;
      target : Name.t;
      at_node : int;
      residence : residence;
      version : int;
    }
  | Create_request of {
      req_id : request_id;
      type_name : string;
      init : Value.t;
      reply_to : int;
    }
  | Create_reply of {
      req_id : request_id;
      result : (Capability.t, Error.t) result;
    }
  | Move_transfer of {
      target : Name.t;
      type_name : string;
      repr : Value.t;
      frozen : bool;
      reliability : Reliability.t;
      from_node : int;
      transfer_id : request_id;
    }
  | Move_ack of { transfer_id : request_id; accepted : bool }
  | Ckpt_write of {
      req_id : request_id;
      target : Name.t;
      type_name : string;
      repr : Value.t;
      version : int;
      reliability : Reliability.t;
      frozen : bool;
      reply_to : int;
    }
  | Ckpt_delta of {
      req_id : request_id;
      target : Name.t;
      type_name : string;
      delta : Delta.t;
      base_version : int;
      version : int;
      reliability : Reliability.t;
      frozen : bool;
      reply_to : int;
    }
  | Ckpt_ack of { req_id : request_id; ok : bool }
  | Ckpt_delete of { target : Name.t }
  | Ckpt_mark of { target : Name.t; passive : bool; version : int }
  | Replica_install of {
      target : Name.t;
      type_name : string;
      repr : Value.t;
      transfer_id : request_id;
      from_node : int;
    }
  | Replica_ack of { transfer_id : request_id; accepted : bool }
  | Destroy_notice of { target : Name.t }
  | Cache_fetch of { req_id : request_id; target : Name.t; reply_to : int }
  | Cache_data of {
      req_id : request_id;
      target : Name.t;
      payload : (string * Value.t) option;
    }
  | Cache_invalidate of { target : Name.t }
  | Cancel of { inv_id : request_id; target : Name.t }
  | Dir_put of {
      req_id : request_id;
      target : Name.t;
      home : int;
      replicas : int list;
      lease : int;
    }
  | Dir_get of { req_id : request_id; target : Name.t; reply_to : int }
  | Dir_nack of { req_id : request_id; target : Name.t; home : int }
  | Epoch_announce of { epoch : int; members : int list }

let header_bytes = 32
let name_bytes = 12

let result_bytes = function
  | Ok vs -> Value.list_size_bytes vs
  | Error _ -> 8

let size_bytes m =
  header_bytes
  +
  match m with
  | Inv_request { op; args; _ } ->
    name_bytes + String.length op + Value.list_size_bytes args + 8
  | Inv_reply { result; _ } -> result_bytes result
  | Inv_nack _ -> name_bytes
  | Hint_update _ -> name_bytes + 4
  | Locate_request _ -> name_bytes + 4
  | Locate_reply _ -> name_bytes + 8
  | Create_request { type_name; init; _ } ->
    String.length type_name + Value.size_bytes init + 4
  | Create_reply _ -> 24
  | Move_transfer { type_name; repr; _ } ->
    name_bytes + String.length type_name + Value.size_bytes repr + 16
  | Move_ack _ -> 8
  | Ckpt_write { type_name; repr; _ } ->
    (* The version stamp rides in the fixed allowance. *)
    name_bytes + String.length type_name + Value.size_bytes repr + 16
  | Ckpt_delta { type_name; delta; _ } ->
    name_bytes + String.length type_name + Delta.size_bytes delta + 24
  | Ckpt_ack _ -> 8
  | Ckpt_delete _ -> name_bytes
  | Ckpt_mark _ -> name_bytes + 1
  | Replica_install { type_name; repr; _ } ->
    name_bytes + String.length type_name + Value.size_bytes repr + 8
  | Replica_ack _ -> 8
  | Destroy_notice _ -> name_bytes
  | Cache_fetch _ -> name_bytes + 4
  | Cache_data { payload; _ } -> (
    name_bytes + 1
    + match payload with
      | None -> 0
      | Some (type_name, repr) ->
        String.length type_name + Value.size_bytes repr)
  | Cache_invalidate _ -> name_bytes
  | Cancel _ -> name_bytes
  | Dir_put { replicas; _ } -> name_bytes + 12 + (4 * List.length replicas)
  | Dir_get _ -> name_bytes + 4
  | Dir_nack _ -> name_bytes + 4
  | Epoch_announce { members; _ } -> 8 + (4 * List.length members)

let describe = function
  | Inv_request { target; op; _ } ->
    Printf.sprintf "inv_request %s.%s" (Name.to_string target) op
  (* Deliberately omits [inv_id.seq]: journals intern these strings,
     and a per-invocation sequence number would make every reply
     distinct.  Traces correlate request and reply through event
     parent ids, not the description. *)
  | Inv_reply { inv_id; _ } -> Printf.sprintf "inv_reply n%d" inv_id.origin
  | Inv_nack { target; _ } -> "inv_nack " ^ Name.to_string target
  | Hint_update { target; at_node } ->
    Printf.sprintf "hint %s@%d" (Name.to_string target) at_node
  | Locate_request { target; _ } -> "locate? " ^ Name.to_string target
  | Locate_reply { target; at_node; _ } ->
    Printf.sprintf "locate! %s@%d" (Name.to_string target) at_node
  | Create_request { type_name; _ } -> "create " ^ type_name
  | Create_reply _ -> "create_reply"
  | Move_transfer { target; _ } -> "move " ^ Name.to_string target
  | Move_ack _ -> "move_ack"
  | Ckpt_write { target; version; _ } ->
    Printf.sprintf "ckpt_write %s v%d" (Name.to_string target) version
  | Ckpt_delta { target; base_version; version; delta; _ } ->
    Printf.sprintf "ckpt_delta %s v%d->v%d (%s)" (Name.to_string target)
      base_version version (Delta.describe delta)
  | Ckpt_ack _ -> "ckpt_ack"
  | Ckpt_delete { target } -> "ckpt_delete " ^ Name.to_string target
  | Ckpt_mark { target; passive; version } ->
    Printf.sprintf "ckpt_mark %s passive=%b v%d" (Name.to_string target)
      passive version
  | Replica_install { target; _ } -> "replica " ^ Name.to_string target
  | Replica_ack _ -> "replica_ack"
  | Destroy_notice { target } -> "destroy " ^ Name.to_string target
  | Cache_fetch { target; _ } -> "cache? " ^ Name.to_string target
  | Cache_data { target; payload; _ } ->
    Printf.sprintf "cache! %s %s" (Name.to_string target)
      (if payload = None then "miss" else "hit")
  | Cache_invalidate { target } -> "cache_inval " ^ Name.to_string target
  (* Like [Inv_reply], omits the sequence number so journal interning
     keeps one string per target rather than one per cancellation. *)
  | Cancel { target; _ } -> "cancel " ^ Name.to_string target
  (* Omits the lease stamp (virtual-time ns would defeat journal
     interning) and, like the replies above, any sequence number. *)
  | Dir_put { target; home; _ } ->
    Printf.sprintf "dir_put %s@%d" (Name.to_string target) home
  | Dir_get { target; _ } -> "dir? " ^ Name.to_string target
  | Dir_nack { target; _ } -> "dir_nack " ^ Name.to_string target
  (* One string per epoch: the member list would re-spell the epoch. *)
  | Epoch_announce { epoch; _ } -> Printf.sprintf "epoch e%d" epoch

(* ------------------------------------------------------------------ *)
(* Wire codec.

   A simple self-delimiting text format: integers are decimal followed
   by ';', strings are length-prefixed, variants carry a small tag.
   [span] is simulator-side metadata, not wire data, so [encode] omits
   it and [decode] always yields [span = None]. *)

exception Decode of string

type reader = { buf : string; mutable pos : int }

let r_fail r msg = raise (Decode (Printf.sprintf "%s at byte %d" msg r.pos))

let w_int b n =
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b ';'

let r_int r =
  let len = String.length r.buf in
  let rec scan i =
    if i >= len then r_fail r "unterminated integer"
    else if r.buf.[i] = ';' then i
    else scan (i + 1)
  in
  let stop = scan r.pos in
  let s = String.sub r.buf r.pos (stop - r.pos) in
  r.pos <- stop + 1;
  match int_of_string_opt s with
  | Some n -> n
  | None -> r_fail r (Printf.sprintf "bad integer %S" s)

let w_bool b v = w_int b (if v then 1 else 0)

let r_bool r =
  match r_int r with
  | 0 -> false
  | 1 -> true
  | n -> r_fail r (Printf.sprintf "bad boolean %d" n)

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let r_str r =
  let n = r_int r in
  if n < 0 || r.pos + n > String.length r.buf then r_fail r "bad string length"
  else begin
    let s = String.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    s
  end

let w_name b n =
  w_int b (Name.birth_node n);
  w_int b (Name.serial n)

let r_name r =
  let birth_node = r_int r in
  let serial = r_int r in
  match Name.make ~birth_node ~serial with
  | n -> n
  | exception Invalid_argument _ -> r_fail r "bad name"

let w_rights b s = w_int b (Rights.to_bits s)

let r_rights r =
  match Rights.of_bits (r_int r) with
  | Some s -> s
  | None -> r_fail r "bad rights bits"

let w_req b { origin; seq } =
  w_int b origin;
  w_int b seq

let r_req r =
  let origin = r_int r in
  let seq = r_int r in
  { origin; seq }

let rec w_value b = function
  | Value.Unit -> Buffer.add_char b 'u'
  | Value.Bool v ->
    Buffer.add_char b 'b';
    w_bool b v
  | Value.Int i ->
    Buffer.add_char b 'i';
    w_int b i
  | Value.Str s ->
    Buffer.add_char b 's';
    w_str b s
  | Value.Cap c ->
    Buffer.add_char b 'c';
    w_name b (Capability.name c);
    w_rights b (Capability.rights c)
  | Value.List vs ->
    Buffer.add_char b 'l';
    w_int b (List.length vs);
    List.iter (w_value b) vs
  | Value.Pair (x, y) ->
    Buffer.add_char b 'p';
    w_value b x;
    w_value b y
  | Value.Blob n ->
    Buffer.add_char b 'o';
    w_int b n

let r_char r =
  if r.pos >= String.length r.buf then r_fail r "unexpected end of input"
  else begin
    let c = r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    c
  end

(* Recursion in the reader is bounded so that a hostile or corrupt
   input cannot blow the stack: past [max_value_depth] the decoder
   fails with [Decode] like any other malformed input, keeping
   {!decode} a total function. *)
let max_value_depth = 256

let rec r_value_at depth r =
  if depth > max_value_depth then r_fail r "value nesting too deep"
  else
    match r_char r with
    | 'u' -> Value.Unit
    | 'b' -> Value.Bool (r_bool r)
    | 'i' -> Value.Int (r_int r)
    | 's' -> Value.Str (r_str r)
    | 'c' ->
      let name = r_name r in
      let rights = r_rights r in
      Value.Cap (Capability.make name rights)
    | 'l' ->
      let n = r_int r in
      if n < 0 then r_fail r "negative list length"
      else Value.List (List.init n (fun _ -> r_value_at (depth + 1) r))
    | 'p' ->
      let x = r_value_at (depth + 1) r in
      let y = r_value_at (depth + 1) r in
      Value.Pair (x, y)
    | 'o' ->
      let n = r_int r in
      if n < 0 then r_fail r "negative blob size" else Value.Blob n
    | c -> r_fail r (Printf.sprintf "bad value tag %C" c)

let r_value r = r_value_at 0 r

let w_values b vs =
  w_int b (List.length vs);
  List.iter (w_value b) vs

let r_values r =
  let n = r_int r in
  if n < 0 then r_fail r "negative value count"
  else List.init n (fun _ -> r_value r)

let w_error b = function
  | Error.No_such_object -> w_int b 0
  | Error.No_such_operation s ->
    w_int b 1;
    w_str b s
  | Error.Rights_violation s ->
    w_int b 2;
    w_str b s
  | Error.Timeout -> w_int b 3
  | Error.Object_crashed -> w_int b 4
  | Error.Node_down -> w_int b 5
  | Error.Out_of_memory -> w_int b 6
  | Error.Frozen_immutable -> w_int b 7
  | Error.Bad_arguments s ->
    w_int b 8;
    w_str b s
  | Error.User_error s ->
    w_int b 9;
    w_str b s
  | Error.Move_refused s ->
    w_int b 10;
    w_str b s
  | Error.Disk_failed -> w_int b 11

let r_error r =
  match r_int r with
  | 0 -> Error.No_such_object
  | 1 -> Error.No_such_operation (r_str r)
  | 2 -> Error.Rights_violation (r_str r)
  | 3 -> Error.Timeout
  | 4 -> Error.Object_crashed
  | 5 -> Error.Node_down
  | 6 -> Error.Out_of_memory
  | 7 -> Error.Frozen_immutable
  | 8 -> Error.Bad_arguments (r_str r)
  | 9 -> Error.User_error (r_str r)
  | 10 -> Error.Move_refused (r_str r)
  | 11 -> Error.Disk_failed
  | n -> r_fail r (Printf.sprintf "bad error tag %d" n)

let w_result b = function
  | Ok vs ->
    w_int b 0;
    w_values b vs
  | Error e ->
    w_int b 1;
    w_error b e

let r_result r =
  match r_int r with
  | 0 -> Ok (r_values r)
  | 1 -> Error (r_error r)
  | n -> r_fail r (Printf.sprintf "bad result tag %d" n)

let w_reliability b = function
  | Reliability.Local -> w_int b 0
  | Reliability.Remote n ->
    w_int b 1;
    w_int b n
  | Reliability.Mirrored ns ->
    w_int b 2;
    w_int b (List.length ns);
    List.iter (w_int b) ns

let r_reliability r =
  match r_int r with
  | 0 -> Reliability.Local
  | 1 -> Reliability.Remote (r_int r)
  | 2 ->
    let n = r_int r in
    if n < 0 then r_fail r "negative mirror count"
    else Reliability.Mirrored (List.init n (fun _ -> r_int r))
  | n -> r_fail r (Printf.sprintf "bad reliability tag %d" n)

let w_delta b = function
  | Delta.Unchanged -> w_int b 0
  | Delta.Edits { len; edits } ->
    w_int b 1;
    w_int b len;
    w_int b (List.length edits);
    List.iter
      (fun (i, v) ->
        w_int b i;
        w_value b v)
      edits
  | Delta.Whole v ->
    w_int b 2;
    w_value b v

let r_delta r =
  match r_int r with
  | 0 -> Delta.Unchanged
  | 1 ->
    let len = r_int r in
    if len < 0 then r_fail r "negative delta length"
    else begin
      let n = r_int r in
      if n < 0 || n > len then r_fail r "bad delta edit count"
      else
        let edits =
          List.init n (fun _ ->
              let i = r_int r in
              let v = r_value r in
              (i, v))
        in
        Delta.Edits { len; edits }
    end
  | 2 -> Delta.Whole (r_value r)
  | n -> r_fail r (Printf.sprintf "bad delta tag %d" n)

let w_residence b = function
  | Res_active -> w_int b 0
  | Res_passive -> w_int b 1
  | Res_replica -> w_int b 2

let r_residence r =
  match r_int r with
  | 0 -> Res_active
  | 1 -> Res_passive
  | 2 -> Res_replica
  | n -> r_fail r (Printf.sprintf "bad residence tag %d" n)

(* A trace context, when present, precedes the message tag as a 'T'
   marker plus two integers.  A tag never starts with 'T', so readers
   that predate the envelope still decode untraced frames and new
   readers accept both forms. *)
let encode ?ctx m =
  let b = Buffer.create 64 in
  (match ctx with
  | Some c ->
    Buffer.add_char b 'T';
    w_int b (Eden_obs.Tracectx.trace c);
    w_int b (Eden_obs.Tracectx.parent c)
  | None -> ());
  (match m with
  | Inv_request
      { inv_id; target; op; args; presented; reply_to; hops; may_activate;
        span = _ } ->
    w_int b 0;
    w_req b inv_id;
    w_name b target;
    w_str b op;
    w_values b args;
    w_rights b presented;
    w_int b reply_to;
    w_int b hops;
    w_bool b may_activate
  | Inv_reply { inv_id; result; frozen_hint } ->
    w_int b 1;
    w_req b inv_id;
    w_result b result;
    w_bool b frozen_hint
  | Inv_nack { inv_id; target } ->
    w_int b 2;
    w_req b inv_id;
    w_name b target
  | Hint_update { target; at_node } ->
    w_int b 3;
    w_name b target;
    w_int b at_node
  | Locate_request { req_id; target; reply_to } ->
    w_int b 4;
    w_req b req_id;
    w_name b target;
    w_int b reply_to
  | Locate_reply { req_id; target; at_node; residence; version } ->
    w_int b 5;
    w_req b req_id;
    w_name b target;
    w_int b at_node;
    w_residence b residence;
    w_int b version
  | Create_request { req_id; type_name; init; reply_to } ->
    w_int b 6;
    w_req b req_id;
    w_str b type_name;
    w_value b init;
    w_int b reply_to
  | Create_reply { req_id; result } ->
    w_int b 7;
    w_req b req_id;
    (match result with
    | Ok cap ->
      w_int b 0;
      w_name b (Capability.name cap);
      w_rights b (Capability.rights cap)
    | Error e ->
      w_int b 1;
      w_error b e)
  | Move_transfer
      { target; type_name; repr; frozen; reliability; from_node; transfer_id }
    ->
    w_int b 8;
    w_name b target;
    w_str b type_name;
    w_value b repr;
    w_bool b frozen;
    w_reliability b reliability;
    w_int b from_node;
    w_req b transfer_id
  | Move_ack { transfer_id; accepted } ->
    w_int b 9;
    w_req b transfer_id;
    w_bool b accepted
  | Ckpt_write
      { req_id; target; type_name; repr; version; reliability; frozen;
        reply_to } ->
    w_int b 10;
    w_req b req_id;
    w_name b target;
    w_str b type_name;
    w_value b repr;
    w_int b version;
    w_reliability b reliability;
    w_bool b frozen;
    w_int b reply_to
  | Ckpt_ack { req_id; ok } ->
    w_int b 11;
    w_req b req_id;
    w_bool b ok
  | Ckpt_delete { target } ->
    w_int b 12;
    w_name b target
  | Ckpt_mark { target; passive; version } ->
    w_int b 13;
    w_name b target;
    w_bool b passive;
    w_int b version
  | Replica_install { target; type_name; repr; transfer_id; from_node } ->
    w_int b 14;
    w_name b target;
    w_str b type_name;
    w_value b repr;
    w_req b transfer_id;
    w_int b from_node
  | Replica_ack { transfer_id; accepted } ->
    w_int b 15;
    w_req b transfer_id;
    w_bool b accepted
  | Destroy_notice { target } ->
    w_int b 16;
    w_name b target
  | Cache_fetch { req_id; target; reply_to } ->
    w_int b 17;
    w_req b req_id;
    w_name b target;
    w_int b reply_to
  | Cache_data { req_id; target; payload } ->
    w_int b 18;
    w_req b req_id;
    w_name b target;
    (match payload with
    | None -> w_int b 0
    | Some (type_name, repr) ->
      w_int b 1;
      w_str b type_name;
      w_value b repr)
  | Cache_invalidate { target } ->
    w_int b 19;
    w_name b target
  | Ckpt_delta
      { req_id; target; type_name; delta; base_version; version; reliability;
        frozen; reply_to } ->
    w_int b 20;
    w_req b req_id;
    w_name b target;
    w_str b type_name;
    w_delta b delta;
    w_int b base_version;
    w_int b version;
    w_reliability b reliability;
    w_bool b frozen;
    w_int b reply_to
  | Cancel { inv_id; target } ->
    w_int b 21;
    w_req b inv_id;
    w_name b target
  | Dir_put { req_id; target; home; replicas; lease } ->
    w_int b 22;
    w_req b req_id;
    w_name b target;
    w_int b home;
    w_int b (List.length replicas);
    List.iter (w_int b) replicas;
    w_int b lease
  | Dir_get { req_id; target; reply_to } ->
    w_int b 23;
    w_req b req_id;
    w_name b target;
    w_int b reply_to
  | Dir_nack { req_id; target; home } ->
    w_int b 24;
    w_req b req_id;
    w_name b target;
    w_int b home
  | Epoch_announce { epoch; members } ->
    w_int b 25;
    w_int b epoch;
    w_int b (List.length members);
    List.iter (w_int b) members);
  Buffer.contents b

let r_message r =
  match r_int r with
  | 0 ->
    let inv_id = r_req r in
    let target = r_name r in
    let op = r_str r in
    let args = r_values r in
    let presented = r_rights r in
    let reply_to = r_int r in
    let hops = r_int r in
    let may_activate = r_bool r in
    Inv_request
      { inv_id; target; op; args; presented; reply_to; hops; may_activate;
        span = None }
  | 1 ->
    let inv_id = r_req r in
    let result = r_result r in
    let frozen_hint = r_bool r in
    Inv_reply { inv_id; result; frozen_hint }
  | 2 ->
    let inv_id = r_req r in
    let target = r_name r in
    Inv_nack { inv_id; target }
  | 3 ->
    let target = r_name r in
    let at_node = r_int r in
    Hint_update { target; at_node }
  | 4 ->
    let req_id = r_req r in
    let target = r_name r in
    let reply_to = r_int r in
    Locate_request { req_id; target; reply_to }
  | 5 ->
    let req_id = r_req r in
    let target = r_name r in
    let at_node = r_int r in
    let residence = r_residence r in
    let version = r_int r in
    Locate_reply { req_id; target; at_node; residence; version }
  | 6 ->
    let req_id = r_req r in
    let type_name = r_str r in
    let init = r_value r in
    let reply_to = r_int r in
    Create_request { req_id; type_name; init; reply_to }
  | 7 ->
    let req_id = r_req r in
    let result =
      match r_int r with
      | 0 ->
        let name = r_name r in
        let rights = r_rights r in
        Ok (Capability.make name rights)
      | 1 -> Error (r_error r)
      | n -> r_fail r (Printf.sprintf "bad create result tag %d" n)
    in
    Create_reply { req_id; result }
  | 8 ->
    let target = r_name r in
    let type_name = r_str r in
    let repr = r_value r in
    let frozen = r_bool r in
    let reliability = r_reliability r in
    let from_node = r_int r in
    let transfer_id = r_req r in
    Move_transfer
      { target; type_name; repr; frozen; reliability; from_node; transfer_id }
  | 9 ->
    let transfer_id = r_req r in
    let accepted = r_bool r in
    Move_ack { transfer_id; accepted }
  | 10 ->
    let req_id = r_req r in
    let target = r_name r in
    let type_name = r_str r in
    let repr = r_value r in
    let version = r_int r in
    let reliability = r_reliability r in
    let frozen = r_bool r in
    let reply_to = r_int r in
    Ckpt_write
      { req_id; target; type_name; repr; version; reliability; frozen;
        reply_to }
  | 11 ->
    let req_id = r_req r in
    let ok = r_bool r in
    Ckpt_ack { req_id; ok }
  | 12 -> Ckpt_delete { target = r_name r }
  | 13 ->
    let target = r_name r in
    let passive = r_bool r in
    let version = r_int r in
    Ckpt_mark { target; passive; version }
  | 14 ->
    let target = r_name r in
    let type_name = r_str r in
    let repr = r_value r in
    let transfer_id = r_req r in
    let from_node = r_int r in
    Replica_install { target; type_name; repr; transfer_id; from_node }
  | 15 ->
    let transfer_id = r_req r in
    let accepted = r_bool r in
    Replica_ack { transfer_id; accepted }
  | 16 -> Destroy_notice { target = r_name r }
  | 17 ->
    let req_id = r_req r in
    let target = r_name r in
    let reply_to = r_int r in
    Cache_fetch { req_id; target; reply_to }
  | 18 ->
    let req_id = r_req r in
    let target = r_name r in
    let payload =
      match r_int r with
      | 0 -> None
      | 1 ->
        let type_name = r_str r in
        let repr = r_value r in
        Some (type_name, repr)
      | n -> r_fail r (Printf.sprintf "bad payload tag %d" n)
    in
    Cache_data { req_id; target; payload }
  | 19 -> Cache_invalidate { target = r_name r }
  | 20 ->
    let req_id = r_req r in
    let target = r_name r in
    let type_name = r_str r in
    let delta = r_delta r in
    let base_version = r_int r in
    let version = r_int r in
    let reliability = r_reliability r in
    let frozen = r_bool r in
    let reply_to = r_int r in
    Ckpt_delta
      { req_id; target; type_name; delta; base_version; version; reliability;
        frozen; reply_to }
  | 21 ->
    let inv_id = r_req r in
    let target = r_name r in
    Cancel { inv_id; target }
  | 22 ->
    let req_id = r_req r in
    let target = r_name r in
    let home = r_int r in
    let n = r_int r in
    if n < 0 || n > 4096 then r_fail r "bad replica count"
    else
      let replicas = List.init n (fun _ -> r_int r) in
      let lease = r_int r in
      Dir_put { req_id; target; home; replicas; lease }
  | 23 ->
    let req_id = r_req r in
    let target = r_name r in
    let reply_to = r_int r in
    Dir_get { req_id; target; reply_to }
  | 24 ->
    let req_id = r_req r in
    let target = r_name r in
    let home = r_int r in
    Dir_nack { req_id; target; home }
  | 25 ->
    let epoch = r_int r in
    let n = r_int r in
    if n < 0 || n > 4096 then r_fail r "bad member count"
    else
      let members = List.init n (fun _ -> r_int r) in
      Epoch_announce { epoch; members }
  | n -> r_fail r (Printf.sprintf "bad message tag %d" n)

let r_ctx r =
  if r.pos < String.length r.buf && r.buf.[r.pos] = 'T' then begin
    r.pos <- r.pos + 1;
    let trace = r_int r in
    let parent = r_int r in
    Some (Eden_obs.Tracectx.make ~trace ~parent)
  end
  else None

let decode_traced s =
  let r = { buf = s; pos = 0 } in
  match
    let ctx = r_ctx r in
    let m = r_message r in
    (ctx, m)
  with
  | pair -> if r.pos <> String.length s then Error "trailing bytes" else Ok pair
  | exception Decode msg -> Error msg

let decode s = Result.map snd (decode_traced s)

(* ------------------------------------------------------------------ *)
(* The simulated transport hands whole OCaml values between kernels, so
   in-sim frames carry their trace context in an envelope rather than
   re-encoding every message. *)

type traced = { tr_ctx : Eden_obs.Tracectx.t option; tr_msg : t }

let traced ?ctx m = { tr_ctx = ctx; tr_msg = m }

(* What the 'T' prefix costs on the wire; charged to the LAN timing
   model so traced and untraced frames are not timed identically. *)
let trace_ctx_bytes = 16

let traced_size { tr_ctx; tr_msg } =
  size_bytes tr_msg
  + (match tr_ctx with Some _ -> trace_ctx_bytes | None -> 0)
