type request_id = { origin : int; seq : int }

type residence = Res_active | Res_passive | Res_replica

type t =
  | Inv_request of {
      inv_id : request_id;
      target : Name.t;
      op : string;
      args : Value.t list;
      presented : Rights.t;
      reply_to : int;
      hops : int;
      may_activate : bool;
      span : Eden_obs.Span.t option;
    }
  | Inv_reply of { inv_id : request_id; result : Api.invoke_result }
  | Inv_nack of { inv_id : request_id; target : Name.t }
  | Hint_update of { target : Name.t; at_node : int }
  | Locate_request of { req_id : request_id; target : Name.t; reply_to : int }
  | Locate_reply of {
      req_id : request_id;
      target : Name.t;
      at_node : int;
      residence : residence;
    }
  | Create_request of {
      req_id : request_id;
      type_name : string;
      init : Value.t;
      reply_to : int;
    }
  | Create_reply of {
      req_id : request_id;
      result : (Capability.t, Error.t) result;
    }
  | Move_transfer of {
      target : Name.t;
      type_name : string;
      repr : Value.t;
      frozen : bool;
      reliability : Reliability.t;
      from_node : int;
      transfer_id : request_id;
    }
  | Move_ack of { transfer_id : request_id; accepted : bool }
  | Ckpt_write of {
      req_id : request_id;
      target : Name.t;
      type_name : string;
      repr : Value.t;
      reliability : Reliability.t;
      frozen : bool;
      reply_to : int;
    }
  | Ckpt_ack of { req_id : request_id; ok : bool }
  | Ckpt_delete of { target : Name.t }
  | Ckpt_mark of { target : Name.t; passive : bool }
  | Replica_install of {
      target : Name.t;
      type_name : string;
      repr : Value.t;
      transfer_id : request_id;
      from_node : int;
    }
  | Replica_ack of { transfer_id : request_id; accepted : bool }
  | Destroy_notice of { target : Name.t }

let header_bytes = 32
let name_bytes = 12

let result_bytes = function
  | Ok vs -> Value.list_size_bytes vs
  | Error _ -> 8

let size_bytes m =
  header_bytes
  +
  match m with
  | Inv_request { op; args; _ } ->
    name_bytes + String.length op + Value.list_size_bytes args + 8
  | Inv_reply { result; _ } -> result_bytes result
  | Inv_nack _ -> name_bytes
  | Hint_update _ -> name_bytes + 4
  | Locate_request _ -> name_bytes + 4
  | Locate_reply _ -> name_bytes + 8
  | Create_request { type_name; init; _ } ->
    String.length type_name + Value.size_bytes init + 4
  | Create_reply _ -> 24
  | Move_transfer { type_name; repr; _ } ->
    name_bytes + String.length type_name + Value.size_bytes repr + 16
  | Move_ack _ -> 8
  | Ckpt_write { type_name; repr; _ } ->
    name_bytes + String.length type_name + Value.size_bytes repr + 16
  | Ckpt_ack _ -> 8
  | Ckpt_delete _ -> name_bytes
  | Ckpt_mark _ -> name_bytes + 1
  | Replica_install { type_name; repr; _ } ->
    name_bytes + String.length type_name + Value.size_bytes repr + 8
  | Replica_ack _ -> 8
  | Destroy_notice _ -> name_bytes

let describe = function
  | Inv_request { target; op; _ } ->
    Printf.sprintf "inv_request %s.%s" (Name.to_string target) op
  | Inv_reply { inv_id; _ } ->
    Printf.sprintf "inv_reply %d.%d" inv_id.origin inv_id.seq
  | Inv_nack { target; _ } -> "inv_nack " ^ Name.to_string target
  | Hint_update { target; at_node } ->
    Printf.sprintf "hint %s@%d" (Name.to_string target) at_node
  | Locate_request { target; _ } -> "locate? " ^ Name.to_string target
  | Locate_reply { target; at_node; _ } ->
    Printf.sprintf "locate! %s@%d" (Name.to_string target) at_node
  | Create_request { type_name; _ } -> "create " ^ type_name
  | Create_reply _ -> "create_reply"
  | Move_transfer { target; _ } -> "move " ^ Name.to_string target
  | Move_ack _ -> "move_ack"
  | Ckpt_write { target; _ } -> "ckpt_write " ^ Name.to_string target
  | Ckpt_ack _ -> "ckpt_ack"
  | Ckpt_delete { target } -> "ckpt_delete " ^ Name.to_string target
  | Ckpt_mark { target; passive } ->
    Printf.sprintf "ckpt_mark %s passive=%b" (Name.to_string target) passive
  | Replica_install { target; _ } -> "replica " ^ Name.to_string target
  | Replica_ack _ -> "replica_ack"
  | Destroy_notice { target } -> "destroy " ^ Name.to_string target
