(* Incremental checkpoint payloads.

   The unit of dirty tracking is a chunk: one top-level element of a
   [Value.List] representation.  A delta against a base version carries
   only the chunks that changed (plus the new length, so appends and
   truncations reconstruct exactly); representations that are not
   chunked, or whose shape changed, degenerate to a [Whole] payload —
   never wrong, merely no cheaper than a full write. *)

type t =
  | Unchanged
  | Edits of { len : int; edits : (int * Value.t) list }
  | Whole of Value.t

(* Wire-size model: a tiny frame for [Unchanged], per-edit index plus
   chunk payload for [Edits], full payload for [Whole].  This is what a
   delta checkpoint saves: only dirty chunks cross the network and
   settle on disk. *)
let size_bytes = function
  | Unchanged -> 4
  | Whole v -> 8 + Value.size_bytes v
  | Edits { edits; _ } ->
    List.fold_left (fun acc (_, v) -> acc + 8 + Value.size_bytes v) 8 edits

let diff ~base ~target =
  if Value.equal base target then Unchanged
  else
    match (base, target) with
    | Value.List bs, Value.List ts ->
      let bs = Array.of_list bs in
      let lb = Array.length bs in
      let edits =
        List.mapi (fun i tv -> (i, tv)) ts
        |> List.filter (fun (i, tv) ->
               i >= lb || not (Value.equal bs.(i) tv))
      in
      let d = Edits { len = List.length ts; edits } in
      (* When most chunks are dirty the per-edit framing outweighs the
         savings: ship the whole value instead, so a delta is never the
         larger payload. *)
      if size_bytes d <= size_bytes (Whole target) then d else Whole target
    | _ -> Whole target

let apply d ~base =
  match d with
  | Unchanged -> Ok base
  | Whole v -> Ok v
  | Edits { len; edits } -> (
    if len < 0 || List.exists (fun (i, _) -> i < 0 || i >= len) edits then
      Error "delta edit index out of range"
    else
      match base with
      | Value.List bs ->
        let bs = Array.of_list bs in
        let missing = ref false in
        let out =
          List.init len (fun i ->
              match List.assoc_opt i edits with
              | Some v -> v
              | None ->
                if i < Array.length bs then bs.(i)
                else begin
                  missing := true;
                  Value.Unit
                end)
        in
        if !missing then Error "delta references chunks absent from the base"
        else Ok (Value.List out)
      | _ -> Error "base representation is not chunked")

let describe = function
  | Unchanged -> "unchanged"
  | Whole _ -> "whole"
  | Edits { len; edits } ->
    Printf.sprintf "edits %d/%d" (List.length edits) len
