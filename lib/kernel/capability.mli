(** Capabilities: unique names paired with access rights.

    Possession of a capability is the only way to reach an object.
    Capabilities may be passed freely as invocation parameters; rights
    can only be removed, never added, by anyone other than the kernel
    minting an owner capability at object creation. *)

type t = private { name : Name.t; rights : Rights.t }

val make : Name.t -> Rights.t -> t
val name : t -> Name.t
val rights : t -> Rights.t

val restrict : t -> Rights.t -> t
(** [restrict c r] keeps only the rights in both [c] and [r]; the
    result never has more rights than [c]. *)

val permits : t -> Rights.t -> bool
(** [permits c required] — does [c] carry every right in [required]? *)

val equal : t -> t -> bool
(** Same name and same rights. *)

val same_object : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encode : t -> string
(** Stable textual form ["obj<B.S>/BITS"], suitable for the wire or a
    command line. *)

val decode : string -> t option
(** Inverse of {!encode}; rejects malformed names and unknown rights
    bits. *)
