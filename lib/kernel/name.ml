type t = { birth_node : int; serial : int }

let make ~birth_node ~serial =
  if birth_node < 0 || serial < 0 then invalid_arg "Name.make: negative field";
  { birth_node; serial }

let birth_node n = n.birth_node
let serial n = n.serial
let equal a b = a.birth_node = b.birth_node && a.serial = b.serial
let compare a b =
  let c = Int.compare a.birth_node b.birth_node in
  if c <> 0 then c else Int.compare a.serial b.serial

let hash n = (n.birth_node * 1_000_003) lxor n.serial
let pp ppf n = Format.fprintf ppf "obj<%d.%d>" n.birth_node n.serial
let to_string n = Format.asprintf "%a" pp n

let of_string s =
  match Scanf.sscanf s "obj<%u.%u>%!" (fun b srl -> (b, srl)) with
  | b, srl -> Some { birth_node = b; serial = srl }
  | exception _ -> None

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
