type t = { name : Name.t; rights : Rights.t }

let make name rights = { name; rights }
let name c = c.name
let rights c = c.rights
let restrict c r = { c with rights = Rights.inter c.rights r }
let permits c required = Rights.subset required c.rights
let equal a b = Name.equal a.name b.name && Rights.equal a.rights b.rights
let same_object a b = Name.equal a.name b.name
let pp ppf c = Format.fprintf ppf "cap(%a, %a)" Name.pp c.name Rights.pp c.rights

let encode c =
  Printf.sprintf "%s/%d" (Name.to_string c.name) (Rights.to_bits c.rights)

let decode s =
  match String.rindex_opt s '/' with
  | None -> None
  | Some i -> (
    let name_part = String.sub s 0 i in
    let bits_part = String.sub s (i + 1) (String.length s - i - 1) in
    match (Name.of_string name_part, int_of_string_opt bits_part) with
    | Some name, Some bits -> (
      match Rights.of_bits bits with
      | Some rights -> Some { name; rights }
      | None -> None)
    | _ -> None)
