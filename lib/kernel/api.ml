type invoke_result = (Value.t list, Error.t) result

type retry = {
  r_max : int;
  r_base : Eden_util.Time.t;
  r_cap : Eden_util.Time.t;
}

let no_retry = { r_max = 0; r_base = Eden_util.Time.zero; r_cap = Eden_util.Time.zero }

let default_retry =
  { r_max = 3; r_base = Eden_util.Time.ms 50; r_cap = Eden_util.Time.s 2 }

(* Capped exponential backoff before attempt [i+1] (the first attempt
   is number 0 and waits nothing). *)
let backoff p i =
  let open Eden_util in
  if Time.is_zero p.r_base then Time.zero
  else Time.min p.r_cap (Time.scale p.r_base (1 lsl min i 20))

type speculate = {
  sp_clone : bool;
  sp_hedge : bool;
  sp_max_sites : int;
  sp_quantile : float;
}

let no_speculation =
  { sp_clone = false; sp_hedge = false; sp_max_sites = 3; sp_quantile = 0.95 }

let default_speculate = { no_speculation with sp_clone = true; sp_hedge = true }

let validate_speculate s =
  if s.sp_max_sites < 2 then
    Error "speculation needs at least two fan-out sites"
  else if Float.is_nan s.sp_quantile || s.sp_quantile <= 0.0 || s.sp_quantile >= 1.0
  then Error "hedge quantile must lie strictly inside (0,1)"
  else Ok ()

type ctx = {
  self : Capability.t;
  node_id : unit -> int;
  now : unit -> Eden_util.Time.t;
  random : Eden_util.Splitmix.t;
  compute : Eden_util.Time.t -> unit;
  log : string -> unit;
  get_repr : unit -> Value.t;
  set_repr : Value.t -> (unit, Error.t) result;
  invoke :
    ?timeout:Eden_util.Time.t ->
    ?retry:retry ->
    Capability.t ->
    op:string ->
    Value.t list ->
    invoke_result;
  invoke_async :
    ?timeout:Eden_util.Time.t ->
    ?retry:retry ->
    Capability.t ->
    op:string ->
    Value.t list ->
    invoke_result Eden_sim.Promise.t;
  create_object :
    type_name:string ->
    ?node:int ->
    Value.t ->
    (Capability.t, Error.t) result;
  checkpoint : unit -> (unit, Error.t) result;
  checkpoint_async : unit -> (unit, Error.t) result;
  set_reliability : Reliability.t -> (unit, Error.t) result;
  crash : unit -> unit;
  move_to : int -> (unit, Error.t) result;
  freeze : unit -> unit;
  replicate_to : int -> (unit, Error.t) result;
  semaphore : string -> init:int -> Eden_sim.Semaphore.t;
  port : string -> Value.t Eden_sim.Mailbox.t;
  spawn_subprocess : (unit -> unit) -> unit;
}

type handler = ctx -> Value.t list -> invoke_result

let reply vs = Ok vs
let fail e = Error e
let reply_unit = Ok []
let user_error msg = Error (Error.User_error msg)
let bad_arguments msg = Error (Error.Bad_arguments msg)

let arity_error n got =
  Error
    (Error.Bad_arguments
       (Printf.sprintf "expected %d argument(s), got %d" n got))

let arg1 = function [ a ] -> Ok a | l -> arity_error 1 (List.length l)
let arg2 = function [ a; b ] -> Ok (a, b) | l -> arity_error 2 (List.length l)

let arg3 = function
  | [ a; b; c ] -> Ok (a, b, c)
  | l -> arity_error 3 (List.length l)

let no_args = function [] -> Ok () | l -> arity_error 0 (List.length l)

let lift_conversion = function
  | Ok v -> Ok v
  | Error msg -> Error (Error.Bad_arguments msg)

let int_arg v = lift_conversion (Value.to_int v)
let str_arg v = lift_conversion (Value.to_str v)
let cap_arg v = lift_conversion (Value.to_cap v)
let bool_arg v = lift_conversion (Value.to_bool v)

let ( let* ) = Result.bind
