(** Kernel-to-kernel wire messages.

    Everything that crosses the Ethernet between Eden kernels is one of
    these.  {!size_bytes} feeds the transport's fragmentation and the
    LAN timing model. *)

type request_id = { origin : int; seq : int }
(** Unique per outstanding request: issuing node plus a node-local
    sequence number. *)

type residence = Res_active | Res_passive | Res_replica

type t =
  | Inv_request of {
      inv_id : request_id;
      target : Name.t;
      op : string;
      args : Value.t list;
      presented : Rights.t;  (** rights of the capability used *)
      reply_to : int;
      hops : int;  (** forwarding count; capped to break loops *)
      may_activate : bool;
          (** the requester located no active instance during a full
              broadcast window, so the receiving checksite may
              reincarnate from its snapshot even if it never saw a
              passivation notice (e.g. after a node power-off) *)
      span : Eden_obs.Span.t option;
          (** observability metadata riding along in the simulator's
              shared address space; does not contribute to
              {!size_bytes} *)
    }
  | Inv_reply of {
      inv_id : request_id;
      result : Api.invoke_result;
      frozen_hint : bool;
          (** the serving node saw the target frozen (immutable): the
              requester may cache a local replica and serve further
              invocations without the round trip *)
    }
  | Inv_nack of { inv_id : request_id; target : Name.t }
      (** "this node cannot serve or forward the request".  Always a
          unicast reply echoing the requester's own [inv_id]; the
          receiver also treats it as evidence its location knowledge
          (and any cached frozen replica) is stale.  Cache-only
          invalidation that is not a reply to anything travels as
          {!constructor:Cache_invalidate} instead. *)
  | Hint_update of { target : Name.t; at_node : int }
      (** sent to a requester whose request was forwarded *)
  | Locate_request of { req_id : request_id; target : Name.t; reply_to : int }
  | Locate_reply of {
      req_id : request_id;
      target : Name.t;
      at_node : int;
      residence : residence;
      version : int;
          (** for [Res_passive]: the answering checksite's stored
              snapshot version, so a requester reincarnating an object
              can prefer the freshest snapshot among the candidates
              instead of the first responder; 0 otherwise *)
    }
  | Create_request of {
      req_id : request_id;
      type_name : string;
      init : Value.t;
      reply_to : int;
    }
  | Create_reply of {
      req_id : request_id;
      result : (Capability.t, Error.t) result;
    }
  | Move_transfer of {
      target : Name.t;
      type_name : string;
      repr : Value.t;
      frozen : bool;
      reliability : Reliability.t;
      from_node : int;
      transfer_id : request_id;
    }
  | Move_ack of { transfer_id : request_id; accepted : bool }
  | Ckpt_write of {
      req_id : request_id;
      target : Name.t;
      type_name : string;
      repr : Value.t;
      version : int;
          (** monotonic snapshot version, stamped by the home node;
              lets reincarnation prefer the freshest checksite *)
      reliability : Reliability.t;
      frozen : bool;
      reply_to : int;
    }
  | Ckpt_delta of {
      req_id : request_id;
      target : Name.t;
      type_name : string;
      delta : Delta.t;  (** only the chunks that changed since the base *)
      base_version : int;
          (** the version the delta applies against; a checksite whose
              stored snapshot is at any other version acks [ok = false]
              and the home node falls back to a full {!Ckpt_write} *)
      version : int;  (** the version the snapshot holds after applying *)
      reliability : Reliability.t;
      frozen : bool;
      reply_to : int;
    }
  | Ckpt_ack of { req_id : request_id; ok : bool }
  | Ckpt_delete of { target : Name.t }
  | Ckpt_mark of { target : Name.t; passive : bool; version : int }
      (** best-effort notice to checksites that the object passivated
          (crash) or re-activated (reincarnation elsewhere), stamped
          with the sender's snapshot version; a mark older than the
          stored snapshot is ignored, so a delayed notice from a past
          incarnation cannot flip a newer snapshot's authority *)
  | Replica_install of {
      target : Name.t;
      type_name : string;
      repr : Value.t;
      transfer_id : request_id;
      from_node : int;
    }
  | Replica_ack of { transfer_id : request_id; accepted : bool }
  | Destroy_notice of { target : Name.t }
      (** the object is gone for good: drop snapshots, replicas and
          location knowledge *)
  | Cache_fetch of { req_id : request_id; target : Name.t; reply_to : int }
      (** "send me the frozen representation of [target] so I can
          cache it locally" *)
  | Cache_data of {
      req_id : request_id;
      target : Name.t;
      payload : (string * Value.t) option;
          (** [(type_name, repr)]; [None] when the serving node no
              longer holds a frozen copy *)
    }
  | Cache_invalidate of { target : Name.t }
      (** the version bump: [target]'s frozen representation changed
          (unfreeze), so drop location hints and any cached replica.
          Deliberately carries no [request_id] — it is broadcast, not a
          reply, and must never be confused with a pending request on
          the receiving node. *)
  | Cancel of { inv_id : request_id; target : Name.t }
      (** "withdraw my outstanding request [inv_id] for [target]": a
          clone fan-out resolved elsewhere (or the requester gave up),
          so a site still holding the cloned work may discard it.
          Purely advisory — a site that already started or finished
          executing ignores it; the requester's idempotence
          bookkeeping makes any late reply harmless.  Sent urgently
          (bypassing the coalescer) so the retraction is never queued
          behind the very work it cancels. *)
  | Dir_put of {
      req_id : request_id;
      target : Name.t;
      home : int;
      replicas : int list;
      lease : int;
          (** publish stamp in virtual-time nanoseconds; the shard
              keeps the highest stamp it has seen per name, so a
              delayed or duplicated update from before a move can
              never regress the registry — the same lazy-staleness
              discipline as the replica cache's invalidation epochs *)
    }
      (** a registry update for [target]'s shard: the current home
          and the publisher's known replica sites.  Doubles as the
          positive reply to {!constructor:Dir_get} — a receiver that
          holds a pending directory lookup under its own [req_id]
          treats it as the answer, anyone else as a publish. *)
  | Dir_get of { req_id : request_id; target : Name.t; reply_to : int }
      (** "where does [target] live?" — the unicast lookup sent to
          the name's registry shard instead of a broadcast locate *)
  | Dir_nack of { req_id : request_id; target : Name.t; home : int }
      (** miss reply from a shard ([home = -1]: no valid entry, fall
          back to broadcast), or — sent requester-to-shard with the
          stale [home] — the lazy NACK-on-wrong-home invalidation:
          the shard drops its entry only if it still names that
          home *)
  | Epoch_announce of { epoch : int; members : int list }
      (** membership changed: the cluster's view advanced to [epoch]
          with exactly [members] (ascending) in the ring.  Broadcast
          by the reconfiguration initiator; a receiver whose own view
          is older adopts it (and journals the bump), a newer or equal
          view ignores it — epochs are totally ordered, so the highest
          one wins regardless of delivery order. *)

val size_bytes : t -> int
(** Approximate marshalled size, including a fixed per-message
    header. *)

val describe : t -> string
(** Short human-readable tag for tracing. *)

val encode : ?ctx:Eden_obs.Tracectx.t -> t -> string
(** Marshal to a self-delimiting textual wire form.  The [span] field
    of an [Inv_request] is simulator-side metadata and is omitted.
    [ctx], when given, is written as an envelope prefix ahead of the
    message tag; frames without it are unchanged from the previous
    wire format. *)

val decode : string -> (t, string) result
(** Inverse of {!encode} up to [span] (always [None] after decoding)
    and the trace context (accepted and discarded — use
    {!decode_traced} to keep it).  Rejects malformed input, unknown
    tags, invalid rights bits and trailing bytes with a description of
    the first error.  Total even on hostile input: values nested
    deeper than 256 levels are rejected as malformed rather than
    overflowing the stack (no message the kernel builds comes near
    that bound). *)

val decode_traced :
  string -> (Eden_obs.Tracectx.t option * t, string) result
(** Like {!decode} but also returns the envelope's trace context
    ([None] for frames encoded without one). *)

(** {1 In-sim envelope}

    The simulated transport passes whole OCaml values between kernels;
    {!traced} wraps a message with its trace context for that path
    (the wire codec above is the serialised ground truth). *)

type traced = { tr_ctx : Eden_obs.Tracectx.t option; tr_msg : t }

val traced : ?ctx:Eden_obs.Tracectx.t -> t -> traced

val traced_size : traced -> int
(** {!size_bytes} of the payload plus the envelope prefix cost when a
    context is present; feeds the LAN timing model. *)
