type t = Local | Remote of int | Mirrored of int list

let validate r ~node_count =
  let check_node n =
    if n < 0 || n >= node_count then
      Error (Printf.sprintf "no such node %d" n)
    else Ok ()
  in
  match r with
  | Local -> Ok ()
  | Remote n -> check_node n
  | Mirrored [] -> Error "mirrored checksite list is empty"
  | Mirrored ns ->
    let sorted = List.sort_uniq Int.compare ns in
    if List.length sorted <> List.length ns then
      Error "duplicate nodes in mirrored checksite list"
    else
      List.fold_left
        (fun acc n -> match acc with Error _ -> acc | Ok () -> check_node n)
        (Ok ()) ns

let checksites r ~home =
  match r with Local -> [ home ] | Remote n -> [ n ] | Mirrored ns -> ns

(* Ascending order makes the fan-out set a pure function of the
   candidate *set*, so two requesters that learned the same replica
   sites in different orders clone identically. *)
let fanout ~primary ~candidates ~max_extra =
  if max_extra <= 0 then []
  else
    List.sort_uniq Int.compare candidates
    |> List.filter (fun s -> s <> primary)
    |> List.filteri (fun i _ -> i < max_extra)

let equal a b =
  match (a, b) with
  | Local, Local -> true
  | Remote x, Remote y -> Int.equal x y
  | Mirrored x, Mirrored y -> List.equal Int.equal x y
  | (Local | Remote _ | Mirrored _), _ -> false

let pp ppf = function
  | Local -> Format.pp_print_string ppf "local"
  | Remote n -> Format.fprintf ppf "remote(%d)" n
  | Mirrored ns ->
    Format.fprintf ppf "mirrored(%s)"
      (String.concat "," (List.map string_of_int ns))
