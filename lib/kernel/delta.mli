(** Incremental checkpoint payloads.

    A checkpoint need not re-ship the whole representation: when the
    home node knows which version a checksite last acknowledged, it can
    send only what changed since.  The unit of dirty tracking is a
    {e chunk} — one top-level element of a [Value.List] representation
    — so a type that lays its state out as a list of blocks (e.g.
    [List [Blob _; Blob _; ...]]) checkpoints in proportion to the
    blocks it touched.  Non-list representations, or shape changes,
    degenerate to a full payload: a delta is an optimisation, never a
    semantic change. *)

type t =
  | Unchanged  (** the representation is identical to the base *)
  | Edits of { len : int; edits : (int * Value.t) list }
      (** the target is a list of [len] chunks; [edits] carries the
          changed (index, chunk) pairs, sorted by index.  Chunks not
          listed are taken from the base, so appends and truncations
          reconstruct exactly. *)
  | Whole of Value.t
      (** shapes are incompatible: the full new representation rides
          along (no cheaper than a full write, but still correct) *)

val diff : base:Value.t -> target:Value.t -> t
(** [diff ~base ~target] is a delta [d] with
    [apply d ~base = Ok target] for {e any} two values, and
    [size_bytes d <= size_bytes (Whole target)] — when most chunks are
    dirty the diff degenerates to [Whole] rather than pay the per-edit
    framing. *)

val apply : t -> base:Value.t -> (Value.t, string) result
(** Reconstruct the target from the base.  Fails (without partial
    effect) when the delta does not fit the base — the caller should
    treat that exactly like a version mismatch and request a full
    write. *)

val size_bytes : t -> int
(** Approximate marshalled size: what a delta saves on the wire and on
    disk compared to the full representation. *)

val describe : t -> string
