(** System-wide, unique-for-all-time object names.

    A name records the node on which the object was created and a
    serial number drawn from that node's generator; as the paper notes,
    a name is location-independent although it may indicate where the
    object was created.  Names are never reused, even after the object
    is destroyed. *)

type t

val make : birth_node:int -> serial:int -> t
(** Raises [Invalid_argument] on negative components. *)

val birth_node : t -> int
val serial : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string}: parses exactly the ["obj<B.S>"] form with
    non-negative components; anything else is [None]. *)

module Table : Hashtbl.S with type key = t
