open Eden_util
open Eden_sim
open Eden_hw
module Metrics = Eden_obs.Metrics
module Span = Eden_obs.Span
module Journal = Eden_obs.Journal
module Tracectx = Eden_obs.Tracectx
module Timeline = Eden_obs.Timeline
module Health = Eden_obs.Health
module Topk = Eden_obs.Topk
module Window = Eden_obs.Window

type node_id = int

(* -------------------------------------------------------------------- *)
(* Internal structures *)

(* How to deliver an invocation's result back to its caller. *)
type reply_route =
  | Reply_local of Api.invoke_result Promise.t
  | Reply_remote of { requester : node_id; inv_id : Message.request_id }

type work = {
  w_op : string;
  w_args : Value.t list;
  w_presented : Rights.t;
  w_route : reply_route;
  w_span : Span.t option;
  mutable w_ctx : Tracectx.t option;
      (* the trace context the request arrived with, so the reply (and
         anything else this work causes) extends the same causal chain.
         Mutable only for profiling: Work_start / Drain_stall journal
         events re-parent the chain through themselves so queue and
         drain residency are visible as gaps on the causal path. *)
}

type obj_status = Running | Draining | Dead

type obj = {
  ob_name : Name.t;
  ob_type : Typemgr.t;
  mutable ob_repr : Value.t;
  mutable ob_frozen : bool;
  mutable ob_reliability : Reliability.t;
  mutable ob_home : node_id;
  mutable ob_status : obj_status;
  ob_is_replica : bool;
  ob_queue : work Mailbox.t;  (* the coordinator's port *)
  ob_stash : work Fifo.t;  (* held while draining for a move *)
  ob_class_running : (string, int ref) Hashtbl.t;
  ob_class_queue : (string, work Fifo.t) Hashtbl.t;
  ob_inflight : (int, work) Hashtbl.t;  (* pid -> work being served *)
  mutable ob_running_total : int;
  ob_drained : Condition.t;
  mutable ob_coordinator : Engine.Pid.t option;
  mutable ob_behaviour_pids : Engine.Pid.t list;
  mutable ob_proc_pids : Engine.Pid.t list;  (* invocation + subprocesses *)
  ob_sems : (string, Semaphore.t) Hashtbl.t;
  ob_ports : (string, Value.t Mailbox.t) Hashtbl.t;
  ob_rng : Splitmix.t;
  mutable ob_mem : int;  (* bytes reserved on the current home *)
  mutable ob_ckpt_sites : node_id list;
  mutable ob_ckpt_version : int;
      (* monotonic: bumped at the start of every checkpoint round and
         carried across reincarnations via the snapshot it restores *)
  mutable ob_ckpt_base : (int * Value.t) option;
      (* (version, repr) as of the last checkpoint round — the diff
         base for delta checkpoints.  Values are immutable, so holding
         the old representation is free (structure is shared). *)
  ob_ckpt_acked : (node_id, int) Hashtbl.t;
      (* highest version each checksite acknowledged; a site at the
         current base version gets a delta, anyone else a full write *)
  mutable ob_ckpt_inflight : bool;
      (* a checkpoint round is running; concurrent requests coalesce *)
  mutable ob_ckpt_queued : bool;
      (* a request arrived while in flight: run one follow-up round *)
  ob_ckpt_idle : Condition.t;  (* signalled when the round finishes *)
}

type snapshot = {
  ss_type : string;
  mutable ss_repr : Value.t;
  mutable ss_version : int;
      (* the checkpoint round that wrote this snapshot; reincarnation
         prefers the highest version among reachable checksites *)
  mutable ss_reliability : Reliability.t;
  mutable ss_frozen : bool;
  mutable ss_passive : bool;
      (* true when this snapshot is authoritative: the object is known
         not to be active anywhere *)
}

(* What a requester is waiting for, keyed by sequence number.  The
   boolean on [Inv_result] is the reply's frozen hint: the serving node
   saw the target immutable, so the requester may cache a replica. *)
type inv_outcome = Inv_result of Api.invoke_result * bool | Inv_nacked

type locate_state = {
  mutable loc_candidates : (node_id * Message.residence * int) list;
      (* (site, residence, snapshot version) — version is meaningful
         for passive answers and 0 otherwise *)
  loc_active : (node_id * Message.residence) Promise.t;
      (* filled as soon as an active/replica site answers *)
}

(* One speculative fan-out: the same request id sent to every site in
   the clone set.  The first real result wins (and names the site it
   came from, so losers can be told apart and cancelled); nacks are
   only an answer once every site has nacked. *)
type clone_state = {
  cp_pr : (inv_outcome * node_id) Promise.t;
  cp_count : int;  (* sites fanned out to *)
  mutable cp_nacks : int;
}

type pending =
  | P_invoke of inv_outcome Promise.t
  | P_clone of clone_state
  | P_locate of locate_state
  | P_create of (Capability.t, Error.t) result Promise.t
  | P_ack of bool Promise.t
  | P_cache of (string * Value.t) option Promise.t
      (* a frozen representation being fetched for the replica cache *)
  | P_dir of (node_id * node_id list) option Promise.t
      (* a directory lookup in flight: [Some (home, replicas)] from
         the shard's [Dir_put] reply, [None] from its [Dir_nack] *)

(* One name's record at its registry shard: the last published home,
   the replica sites accumulated across publishes, and the publish
   stamp (virtual-time ns).  Stamps are monotonic per name — a
   delayed or duplicated pre-move publish can never regress the entry
   — and double as the lease: an entry older than [dir_lease_ttl] is
   dropped rather than served. *)
type dir_entry = {
  mutable de_home : node_id;
  mutable de_replicas : node_id list;
  mutable de_lease : int;
}

type node = {
  nd_id : node_id;
  nd_machine : Machine.t;
  nd_tp : Transport.t;
  mutable nd_up : bool;
  mutable nd_disk_ok : bool;
      (* false while the checkpoint store is failed: snapshots can
         neither be written nor read, so this node refuses checkpoint
         writes, reincarnations and passive locate answers *)
  mutable nd_mem : Memory.t;
  nd_active : obj Name.Table.t;
  nd_replicas : obj Name.Table.t;
  nd_cache : obj Name.Table.t;
      (* node-local frozen-replica cache: representations fetched on a
         frozen-hinted reply and served locally from then on.  Entries
         are hints in Lampson's sense — capabilities still validate on
         every use, and the nack path invalidates. *)
  nd_fetching : unit Name.Table.t;  (* cache fetches in flight *)
  nd_cache_epoch : int Name.Table.t;
      (* per-name invalidation generation: bumped whenever the name's
         cached representation is invalidated (unfreeze, nack,
         destroy).  A fetch snapshots the epoch before it asks and
         discards its payload if the epoch moved while the reply was
         in flight, so a delayed [Cache_data] can never install a
         stale pre-invalidation replica. *)
  nd_store : snapshot Name.Table.t;  (* survives node crashes *)
  nd_hints : node_id Name.Table.t;
  nd_forward : node_id Name.Table.t;  (* objects that moved away *)
  nd_activating : (obj, Error.t) result Promise.t Name.Table.t;
  nd_locating : (node_id * Message.residence) option Promise.t Name.Table.t;
      (* coalesces concurrent locate broadcasts for one name *)
  nd_pending : (int, pending) Hashtbl.t;
  nd_seq : Idgen.t;
  nd_clone_sites : node_id list Name.Table.t;
      (* replica sites learned from locate answers and frozen-hinted
         replies: the clone set for speculative reads.  Hints in
         Lampson's sense — a stale site just nacks its clone, which
         also evicts the entry *)
  nd_recent : Dedup.t;
      (* serving-side idempotence bookkeeping: recently seen request
         ids and what became of them, so duplicated, hedged and
         cancelled clones never double-apply (volatile; reset on
         crash) *)
  nd_types_loaded : (string, unit) Hashtbl.t;
  mutable nd_kprocs : Engine.Pid.t list;
  mutable nd_ckpt_async : int;
      (* asynchronous checkpoint pipelines currently in flight from
         this node (the eden.ckpt.async_inflight gauge) *)
  nd_journal : Journal.t;
      (* this node's event journal; survives crashes (it is observer
         state, not node state) *)
  nd_dir : dir_entry Name.Table.t;
      (* the registry shard this node serves: entries for every name
         whose ring position lands here.  Volatile — a crash empties
         it, and requesters fall back to broadcast and republish. *)
  mutable nd_epoch : int;
      (* this node's membership view: the epoch of the newest
         [Epoch_announce] it has applied (or initiated).  May lag the
         cluster epoch while an announce is in flight; invariant 7
         checks it only ever moves forward. *)
  mutable nd_draining : bool;
      (* decommission in progress: the node still serves traffic, but
         drain evacuation and the migration policy must not choose it
         as a destination *)
}

type options = {
  use_hint_cache : bool;
  use_forwarding : bool;
  coalesce_locates : bool;
  use_replica_cache : bool;
  use_ckpt_delta : bool;
  speculate : Api.speculate;
  use_directory : bool;
  use_profiling : bool;
}

let default_options =
  {
    use_hint_cache = true;
    use_forwarding = true;
    coalesce_locates = true;
    use_replica_cache = false;
    use_ckpt_delta = false;
    speculate = Api.no_speculation;
    use_directory = false;
    use_profiling = false;
  }

(* Owned per-node counters on the invocation hot path (the sampled
   collectors for hardware and network live in [register_collectors]). *)
type node_metrics = {
  m_inv : Metrics.counter;  (* invocations issued from this node *)
  m_remote : Metrics.counter;  (* requests that crossed the wire *)
  m_dispatch : Metrics.counter;  (* works admitted by coordinators here *)
  m_hint_hit : Metrics.counter;
  m_hint_miss : Metrics.counter;
  m_locates : Metrics.counter;  (* locate broadcasts issued *)
  m_nacks : Metrics.counter;  (* nacked requests (stale location) *)
  m_ckpts : Metrics.counter;  (* snapshots written on this node's disk *)
  m_ckpt_bytes : Metrics.counter;
  m_retries : Metrics.counter;  (* timed-out attempts re-issued *)
  m_recoveries : Metrics.counter;  (* successful reincarnations here *)
  m_orphans : Metrics.counter;  (* replies that arrived after timeout *)
  m_cache_hit : Metrics.counter;  (* invocations served by the replica cache *)
  m_cache_miss : Metrics.counter;  (* frozen-hinted replies with no entry *)
  m_cache_inval : Metrics.counter;  (* cached replicas dropped *)
  m_ckpt_delta_bytes : Metrics.counter;
      (* checkpoint payload shipped as deltas from this home node *)
  m_ckpt_full_bytes : Metrics.counter;  (* ... as full representations *)
  m_ckpt_fallbacks : Metrics.counter;
      (* delta writes nacked (version mismatch / lost base) and
         re-sent as full writes *)
  m_ckpt_coalesced : Metrics.counter;
      (* checkpoint requests folded into an in-flight round *)
  m_clone_fanouts : Metrics.counter;
      (* speculative fan-outs issued from this node *)
  m_clone_cancels : Metrics.counter;  (* cancellations sent to losers *)
  m_hedges : Metrics.counter;  (* hedged retries fired from this node *)
  m_dedup : Metrics.counter;
      (* duplicate requests dropped by the idempotence table here *)
  m_retracted : Metrics.counter;
      (* queued work dropped unexecuted because a cancel arrived *)
  m_dir_hits : Metrics.counter;
      (* locates resolved by a directory answer from this requester *)
  m_dir_misses : Metrics.counter;
      (* lookups this shard answered with "no valid entry" *)
  m_dir_nacks : Metrics.counter;
      (* directory-routed sends nacked by a stale home (requester) *)
  m_dir_fallbacks : Metrics.counter;
      (* attempts that gave up on the directory and broadcast *)
  m_dir_leases : Metrics.counter;
      (* expired entries dropped by this shard at lookup time *)
  m_epoch_bumps : Metrics.counter;
      (* membership view advances applied on this node *)
  m_drain_moves : Metrics.counter;
      (* objects evacuated from this node by a decommission drain *)
}

(* The health plane, present only when [Cluster.create ~health] asked
   for it: the SLO evaluator plus one hot-object sketch per node, fed
   from the invocation and locate paths. *)
type health_plane = {
  hp_health : Health.t;
  hp_topk : Topk.t array;  (* indexed by node id *)
}

(* Per-node sketch size: large enough that every object of the bench
   and chaos workloads is tracked exactly, small enough that the
   eviction min-scan stays trivial.  The space-saving error bound is
   total/capacity, so doubling this halves the worst-case
   over-estimate. *)
let topk_capacity = 64

(* Cluster-wide remote round-trip telemetry for hedged retries: the
   requester path bumps a cumulative bucket count per observed RTT and
   an engine sampler closes one tick at a time into a sliding
   {!Window.Hist}, exactly the windowed-quantile machinery the health
   plane's burn-rate rules use.  The hedge threshold is then a live
   quantile of recent RTTs rather than a guessed constant. *)
type hedge_state = {
  hs_hist : Window.Hist.h;
  hs_cum : int array;  (* cumulative per-bucket observation counts *)
  mutable hs_cum_over : int;
  hs_prev : int array;  (* the counts at the last closed tick *)
  mutable hs_prev_over : int;
}

(* Cluster-level critical-path counters (profiling only): per-category
   nanoseconds from finished request spans, mapped phase-by-phase so
   [Health.Share_of_latency] watchdogs can fire online, without
   assembling a timeline. *)
type profile_counters = {
  pc_service : Metrics.counter;
  pc_queue : Metrics.counter;
  pc_wire : Metrics.counter;
  pc_directory : Metrics.counter;
  pc_total : Metrics.counter;
}

type t = {
  eng : Engine.t;
  tr : Trace.t;
  c_lan : Transport.net;
  nodes : node array;
  types : (string, Typemgr.t) Hashtbl.t;
  c_rng : Splitmix.t;
  opts : options;
  mutable c_node_objects : Capability.t array;
      (* one kernel-created node object per node, fixed names *)
  mutable n_inv : int;
  mutable n_remote : int;
  c_metrics : Metrics.t;
  c_spans : Span.collector;
  c_lat : Metrics.histogram;  (* end-to-end invocation latency, seconds *)
  c_nm : node_metrics array;
  c_span_ctx : (int, Span.t) Hashtbl.t;
      (* pid of a running invocation process -> the span it serves,
         giving nested [ctx.invoke] calls their parent link *)
  c_jsink : Journal.sink;  (* shared event-id allocator for all journals *)
  mutable c_health : health_plane option;
  c_hedge : hedge_state option;  (* present iff hedging is enabled *)
  c_profile : profile_counters option;  (* present iff profiling is on *)
  c_dir : Directory.t;
      (* the consistent-hash ring mapping names to registry shards at
         the boot membership (epoch 0); a pure function of the member
         set, shared by all nodes *)
  mutable c_dir_nack_fallback : bool;
      (* NACK-on-wrong-home invalidation armed (default).  Test
         scaffolding: disabling it lets the stale-hint regression show
         what the fallback exists to prevent. *)
  mutable c_epoch : int;
      (* the newest membership epoch any node has initiated; bumped by
         join and decommission.  Epoch 0 is the boot membership. *)
  mutable c_members : node_id list;
      (* ring members at [c_epoch], ascending.  Spares are powered
         nodes outside this list: reachable over the LAN, but owning
         no ring segment until a join admits them. *)
  c_rings : (int, Directory.t) Hashtbl.t;
      (* epoch -> the ring built for that membership, cached at bump
         time so a node serving through an old view keeps resolving
         against the exact ring its view names *)
}

let locate_window = Time.ms 3
let locate_retries = 3

(* Per-node journal ring size.  Generous enough that the chaos suite
   never wraps (wrapping only degrades trace completeness, it is not
   an error), small enough that the rings cycle within the cache: E20
   shows the journal's hot-path cost is dominated by the ring's cache
   footprint, and quadrupling this cap roughly doubles the overhead.
   [~journal_cap:0] disables retention entirely. *)
let default_journal_cap = 4096

(* Checkpoint/move/replica acknowledgements: generous enough for a
   megabyte representation to cross the wire and settle on an era disk
   (~1 MB/s at best), tight enough to detect a dead peer. *)
let ack_timeout = Time.s 15
let max_hops = 8

(* Invocation latencies span 10us local fast paths to multi-second
   locate-retry storms: log-spaced 1-3-10 bucket bounds, in seconds. *)
let latency_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0 |]

(* Hedge telemetry window: 1000 one-millisecond ticks.  The window
   must out-span a degradation episode, or the quantile chases the
   inflated latencies — each slow reply pushes the threshold past the
   next, and hedging disarms itself exactly when it is needed.  A
   second of history keeps the healthy baseline in the estimate. *)
let hedge_tick = Time.ms 1
let hedge_ticks = 1000

(* Serving-side idempotence table size.  Bounds memory, not
   correctness: sequence numbers are never reissued, so eviction can
   only let a duplicate re-execute, never drop a fresh request. *)
let dedup_cap = 8192

(* Lease on cancelled-only dedup entries.  A cancel that arrives for a
   request this node never saw leaves a tombstone whose only job is to
   swallow that request should it still show up; one virtual second
   out-lives any urgent-cancel / queued-request race by orders of
   magnitude.  Expiring them keeps a drop-heavy run from filling the
   table with dead keys and evicting entries that still guard real
   in-flight duplicates. *)
let dedup_ttl = Time.s 1

exception Fatal of string
(* Internal invariant violations surface loudly instead of corrupting
   the simulation. *)

(* -------------------------------------------------------------------- *)
(* Small helpers *)

let node_of cl i =
  if i < 0 || i >= Array.length cl.nodes then
    invalid_arg (Printf.sprintf "Cluster: no such node %d" i)
  else cl.nodes.(i)

let costs node = (Machine.config node.nd_machine).Machine.costs
let cpu node = Machine.cpu node.nd_machine
let consume node t = Cpu.consume (cpu node) t
let home cl obj = cl.nodes.(obj.ob_home)

let tracef cl cat fmt = Trace.emitf cl.tr (Engine.now cl.eng) cat fmt

let nm cl (node : node) = cl.c_nm.(node.nd_id)

let span_enter cl w phase =
  match w.w_span with
  | None -> ()
  | Some sp -> Span.enter sp phase ~at:(Engine.now cl.eng)

(* The span served by the calling process, if it is an invocation
   process (callable from anywhere; outside a process there is none). *)
let current_span cl =
  match Engine.self () with
  | pid -> Hashtbl.find_opt cl.c_span_ctx (Engine.Pid.to_int pid)
  | exception Invalid_argument _ -> None

let next_seq node = Idgen.next node.nd_seq

let new_request_id node =
  { Message.origin = node.nd_id; seq = next_seq node }

let add_pending node seq p = Hashtbl.replace node.nd_pending seq p

let take_pending node seq =
  match Hashtbl.find_opt node.nd_pending seq with
  | None -> None
  | Some p ->
    Hashtbl.remove node.nd_pending seq;
    Some p

let deadline_of ?timeout eng =
  Option.map (fun d -> Time.add (Engine.now eng) d) timeout

let remaining eng = function
  | None -> None
  | Some dl ->
    let now = Engine.now eng in
    Some (if Time.(dl > now) then Time.diff dl now else Time.zero)

let spawn_kproc cl node ~name f =
  let pid = Engine.spawn cl.eng ~name f in
  Engine.set_daemon cl.eng pid;
  node.nd_kprocs <- pid :: node.nd_kprocs;
  if List.length node.nd_kprocs > 256 then
    node.nd_kprocs <-
      List.filter (fun p -> Engine.alive cl.eng p) node.nd_kprocs;
  pid

let jrecord cl node ?ctx kind =
  Journal.record node.nd_journal ~at:(Engine.now cl.eng) ?ctx kind

(* Journal the send and derive the envelope context: the message's
   parent is the send event itself, and its trace is the caller's (or a
   fresh trace rooted at the send when the caller has none). *)
let send_ctx cl node ?ctx msg ~dst =
  let s = jrecord cl node ?ctx (Journal.Send { msg = Message.describe msg; dst }) in
  match ctx with
  | Some c -> Tracectx.with_parent c ~parent:s
  | None -> Tracectx.root s

let send_msg ?ctx cl node ~dst msg =
  if node.nd_up && dst <> node.nd_id then begin
    tracef cl Trace.Kern "%d->%d %s" node.nd_id dst (Message.describe msg);
    let ctx = send_ctx cl node ?ctx msg ~dst:(Some dst) in
    Transport.send node.nd_tp ~dst (Message.traced ~ctx msg)
  end

(* Urgent unicast: flushes any coalescing batch queued for [dst] ahead
   of itself, so a cancellation never rides behind — or worse, inside
   the same wire transfer as — the very work it retracts. *)
let send_msg_now ?ctx cl node ~dst msg =
  if node.nd_up && dst <> node.nd_id then begin
    tracef cl Trace.Kern "%d->%d! %s" node.nd_id dst (Message.describe msg);
    let ctx = send_ctx cl node ?ctx msg ~dst:(Some dst) in
    Transport.send_now node.nd_tp ~dst (Message.traced ~ctx msg)
  end

let bcast_msg ?ctx cl node msg =
  if node.nd_up then begin
    tracef cl Trace.Kern "%d->* %s" node.nd_id (Message.describe msg);
    let ctx = send_ctx cl node ?ctx msg ~dst:None in
    Transport.broadcast node.nd_tp (Message.traced ~ctx msg)
  end

(* ---- Hedge telemetry (see {!hedge_state}) ---- *)

let hedge_observe cl rtt =
  match cl.c_hedge with
  | None -> ()
  | Some hs ->
    let s = float_of_int (Time.to_ns rtt) /. 1e9 in
    let n = Array.length latency_buckets in
    let rec idx i =
      if i >= n || s <= latency_buckets.(i) then i else idx (i + 1)
    in
    let i = idx 0 in
    if i = n then hs.hs_cum_over <- hs.hs_cum_over + 1
    else hs.hs_cum.(i) <- hs.hs_cum.(i) + 1

let hedge_close_tick hs =
  let n = Array.length hs.hs_cum in
  let deltas = Array.make n 0 in
  for i = 0 to n - 1 do
    deltas.(i) <- hs.hs_cum.(i) - hs.hs_prev.(i);
    hs.hs_prev.(i) <- hs.hs_cum.(i)
  done;
  let overflow = hs.hs_cum_over - hs.hs_prev_over in
  hs.hs_prev_over <- hs.hs_cum_over;
  Window.Hist.push hs.hs_hist ~counts:deltas ~overflow

(* The wait after which a hedged retry fires, or [None] while the
   estimator has nothing to stand on.  An empty window estimates [nan]
   — hedging only starts once real round trips have been observed. *)
let hedge_threshold cl =
  match cl.c_hedge with
  | None -> None
  | Some hs ->
    let q = cl.opts.speculate.Api.sp_quantile in
    let v = Window.Hist.quantile_last hs.hs_hist hedge_ticks q in
    if Float.is_nan v || v <= 0.0 then None
    else Some (Time.ns (int_of_float (v *. 1e9)))

(* -------------------------------------------------------------------- *)
(* The sharded locate directory.

   A consistent-hash ring ({!Directory}) assigns every name a registry
   shard: the node recording the name's current home and known replica
   sites.  A requester with no hint asks the shard with one unicast
   instead of broadcasting; every event that changes an object's home
   — creation, reincarnation, move (and through it the migration
   policy) — publishes a lease-stamped update to the shard.  The
   registry is a hint layer, never an authority: a stale entry is
   detected by the home's own nack (NACK-on-wrong-home, the replica
   cache's lazy-invalidation discipline), and every failure of the
   directory — miss, expired lease, dead shard, stale answer — falls
   back to the broadcast locate, which remains the ground truth and
   repairs the registry as a side effect. *)

(* How long a requester waits for the shard's answer before falling
   back to broadcast; matches the broadcast locate's first window, so
   a dead shard costs one window, not a retry ladder. *)
let dir_window = Time.ms 3

(* An entry this much older than its last publish is dropped rather
   than served: a home that died without handing the object anywhere
   republishes on reincarnation, and anything it failed to republish
   ages out instead of misdirecting requesters forever. *)
let dir_lease_ttl = Time.s 10

let dir_enabled cl = cl.opts.use_directory

(* The ring a given membership view resolves against.  Rings are
   cached per epoch at bump time, so every view a node can hold has
   its exact ring on hand; the boot ring backs epoch 0. *)
let ring_of cl view =
  if view <= 0 then cl.c_dir
  else
    match Hashtbl.find_opt cl.c_rings view with
    | Some r -> r
    | None -> cl.c_dir

(* The registry shard [viewer] talks to for [name]: the owner under
   the viewer's membership view, detouring past powered-off owners to
   the next live ring point.  Publisher and requester compute the same
   detour, so entries published while a shard is down are findable at
   its stand-in.  Before the detour, a crashed shard stayed pinned in
   the ring: every lookup of a name it owned burned the full directory
   window against a dead node and fell back to broadcast — one wasted
   round trip per touch, forever.  Minimal-remap makes the detour and
   reconfiguration agree: a decommissioned node's ring points are
   exactly the ones removed at the next epoch, so an old view skipping
   the dead owner lands on the same shard the new ring names. *)
let dir_shard cl (viewer : node) name =
  Directory.shard_skipping
    (ring_of cl viewer.nd_epoch)
    ~down:(fun id -> not cl.nodes.(id).nd_up)
    name

let dir_lease_valid cl lease =
  Time.to_ns (Engine.now cl.eng) - lease <= Time.to_ns dir_lease_ttl

(* Store an update at the shard.  Publish stamps are monotonic per
   name; a same-home update unions replica knowledge (capped like the
   clone set), a home change restates it. *)
let dir_store node ~target ~home ~replicas ~lease =
  match Name.Table.find_opt node.nd_dir target with
  | Some e when lease < e.de_lease -> ()
  | Some e ->
    if e.de_home = home then
      List.iter
        (fun s ->
          if (not (List.mem s e.de_replicas)) && List.length e.de_replicas < 8
          then e.de_replicas <- s :: e.de_replicas)
        replicas
    else begin
      e.de_home <- home;
      e.de_replicas <- replicas
    end;
    e.de_lease <- lease
  | None ->
    Name.Table.replace node.nd_dir target
      { de_home = home; de_replicas = replicas; de_lease = lease }

(* Publish [target]'s location to its registry shard, stamped with the
   current virtual time.  Fire-and-forget: a lost publish only costs
   the next requester a broadcast. *)
let dir_publish ?ctx cl node target ~home ~replicas =
  if dir_enabled cl && node.nd_up then begin
    let pub =
      jrecord cl node ?ctx
        (Journal.Dir_publish { target = Name.to_string target; home })
    in
    let ctx =
      match ctx with
      | Some c -> Tracectx.with_parent c ~parent:pub
      | None -> Tracectx.root pub
    in
    let lease = Time.to_ns (Engine.now cl.eng) in
    let shard = dir_shard cl node target in
    if shard = node.nd_id then dir_store node ~target ~home ~replicas ~lease
    else
      send_msg ~ctx cl node ~dst:shard
        (Message.Dir_put
           { req_id = new_request_id node; target; home; replicas; lease })
  end

(* NACK-on-wrong-home: the home the shard named refused to serve, so
   tell the shard.  The shard drops the entry only if it still names
   [stale_home] — a newer publish that already repaired it wins. *)
let dir_invalidate ?ctx cl node target ~stale_home =
  let shard = dir_shard cl node target in
  if shard = node.nd_id then (
    match Name.Table.find_opt node.nd_dir target with
    | Some e when e.de_home = stale_home -> Name.Table.remove node.nd_dir target
    | Some _ | None -> ())
  else
    send_msg ?ctx cl node ~dst:shard
      (Message.Dir_nack
         { req_id = new_request_id node; target; home = stale_home })

(* Ask [target]'s registry shard where it lives.  A [`Hit] is a hint,
   not an authority — it is trusted for exactly one send, and the
   home's nack falls back to broadcast.  [`Dead] is a shard that never
   answered (down, partitioned, or just slow): same fallback. *)
let dir_resolve ?ctx cl node target ~deadline =
  let shard = dir_shard cl node target in
  if shard = node.nd_id then (
    (* This node is the shard: consult the registry in place. *)
    match Name.Table.find_opt node.nd_dir target with
    | Some e when dir_lease_valid cl e.de_lease -> `Hit (e.de_home, e.de_replicas)
    | Some _ ->
      Name.Table.remove node.nd_dir target;
      Metrics.incr (nm cl node).m_dir_leases;
      Metrics.incr (nm cl node).m_dir_misses;
      `Miss
    | None ->
      Metrics.incr (nm cl node).m_dir_misses;
      `Miss)
  else begin
    let req_id = new_request_id node in
    let pr = Promise.create cl.eng in
    add_pending node req_id.Message.seq (P_dir pr);
    send_msg ?ctx cl node ~dst:shard
      (Message.Dir_get { req_id; target; reply_to = node.nd_id });
    let window =
      match remaining cl.eng deadline with
      | Some left when Time.(left < dir_window) -> left
      | Some _ | None -> dir_window
    in
    let answer = Promise.await ~timeout:window pr in
    Hashtbl.remove node.nd_pending req_id.Message.seq;
    match answer with
    | Some (Some (home, replicas)) -> `Hit (home, replicas)
    | Some None -> `Miss
    | None -> `Dead
  end

(* -------------------------------------------------------------------- *)
(* Forward declarations via references (the invocation path, object
   crash and activation are mutually recursive through ctx closures). *)

let ref_do_invoke :
    (t ->
    from:node_id ->
    ?timeout:Time.t ->
    ?retry:Api.retry ->
    ?parent:Span.t ->
    Capability.t ->
    op:string ->
    Value.t list ->
    Api.invoke_result)
    ref =
  ref (fun _ ~from:_ ?timeout:_ ?retry:_ ?parent:_ _ ~op:_ _ ->
      raise (Fatal "not initialised"))

let ref_do_crash : (t -> obj -> unit) ref =
  ref (fun _ _ -> raise (Fatal "not initialised"))

let ref_do_checkpoint : (t -> obj -> (unit, Error.t) result) ref =
  ref (fun _ _ -> raise (Fatal "not initialised"))

let ref_do_checkpoint_async : (t -> obj -> (unit, Error.t) result) ref =
  ref (fun _ _ -> raise (Fatal "not initialised"))

let ref_do_move : (t -> obj -> to_node:node_id -> self_inflight:bool -> (unit, Error.t) result) ref =
  ref (fun _ _ ~to_node:_ ~self_inflight:_ -> raise (Fatal "not initialised"))

let ref_do_replicate : (t -> obj -> to_node:node_id -> (unit, Error.t) result) ref =
  ref (fun _ _ ~to_node:_ -> raise (Fatal "not initialised"))

let ref_do_create :
    (t -> from:node_id -> node:node_id -> type_name:string -> Value.t ->
    (Capability.t, Error.t) result)
    ref =
  ref (fun _ ~from:_ ~node:_ ~type_name:_ _ -> raise (Fatal "not initialised"))

(* -------------------------------------------------------------------- *)
(* The kernel interface handed to type code *)

let make_ctx cl obj =
  let find_or_add tbl key create =
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
      let v = create () in
      Hashtbl.replace tbl key v;
      v
  in
  {
    Api.self = Capability.make obj.ob_name Rights.all;
    node_id = (fun () -> obj.ob_home);
    now = (fun () -> Engine.now cl.eng);
    random = obj.ob_rng;
    compute = (fun t -> consume (home cl obj) t);
    log =
      (fun s ->
        tracef cl Trace.App "%s: %s" (Name.to_string obj.ob_name) s);
    get_repr = (fun () -> obj.ob_repr);
    set_repr =
      (fun v ->
        if obj.ob_frozen then Error Error.Frozen_immutable
        else begin
          let node = home cl obj in
          let old_size = Value.size_bytes obj.ob_repr in
          let new_size = Value.size_bytes v in
          if new_size > old_size then begin
            match Memory.reserve node.nd_mem (new_size - old_size) with
            | Error `Out_of_memory -> Error Error.Out_of_memory
            | Ok () ->
              obj.ob_mem <- obj.ob_mem + (new_size - old_size);
              obj.ob_repr <- v;
              Ok ()
          end
          else begin
            Memory.release node.nd_mem (old_size - new_size);
            obj.ob_mem <- obj.ob_mem - (old_size - new_size);
            obj.ob_repr <- v;
            Ok ()
          end
        end);
    invoke =
      (fun ?timeout ?retry cap ~op args ->
        !ref_do_invoke cl ~from:obj.ob_home ?timeout ?retry cap ~op args);
    invoke_async =
      (fun ?timeout ?retry cap ~op args ->
        (* Capture the parent span here: the spawned process has its
           own pid, so the per-pid lookup would miss it. *)
        let parent = current_span cl in
        let pr = Promise.create cl.eng in
        let pid =
          Engine.spawn cl.eng ~name:"invoke_async" (fun () ->
              let r =
                !ref_do_invoke cl ~from:obj.ob_home ?timeout ?retry ?parent
                  cap ~op args
              in
              ignore (Promise.fill pr r))
        in
        Engine.set_daemon cl.eng pid;
        pr);
    create_object =
      (fun ~type_name ?node init ->
        let target = Option.value ~default:obj.ob_home node in
        !ref_do_create cl ~from:obj.ob_home ~node:target ~type_name init);
    checkpoint = (fun () -> !ref_do_checkpoint cl obj);
    checkpoint_async = (fun () -> !ref_do_checkpoint_async cl obj);
    set_reliability =
      (fun r ->
        match Reliability.validate r ~node_count:(Array.length cl.nodes) with
        | Error e -> Error (Error.Bad_arguments e)
        | Ok () ->
          obj.ob_reliability <- r;
          Ok ());
    crash = (fun () -> !ref_do_crash cl obj);
    move_to =
      (fun n ->
        if n < 0 || n >= Array.length cl.nodes then
          Error (Error.Move_refused "no such node")
        else !ref_do_move cl obj ~to_node:n ~self_inflight:true);
    freeze = (fun () -> obj.ob_frozen <- true);
    replicate_to = (fun n -> !ref_do_replicate cl obj ~to_node:n);
    semaphore =
      (fun name ~init ->
        find_or_add obj.ob_sems name (fun () ->
            Semaphore.create cl.eng ~init));
    port =
      (fun name ->
        find_or_add obj.ob_ports name (fun () -> Mailbox.create cl.eng));
    spawn_subprocess =
      (fun f ->
        let pid =
          Engine.spawn cl.eng
            ~name:(Name.to_string obj.ob_name ^ ".sub")
            f
        in
        Engine.set_daemon cl.eng pid;
        obj.ob_proc_pids <- pid :: obj.ob_proc_pids);
  }

(* -------------------------------------------------------------------- *)
(* Delivering replies *)

let resolve_inv_pending cl node ~src seq outcome =
  match Hashtbl.find_opt node.nd_pending seq with
  | Some (P_invoke pr) ->
    Hashtbl.remove node.nd_pending seq;
    ignore (Promise.fill pr outcome)
  | Some (P_clone cs) -> (
    (* First real result wins the fan-out.  A nack is one site's
       refusal, not an answer — only unanimity resolves the race. *)
    match outcome with
    | Inv_result _ ->
      Hashtbl.remove node.nd_pending seq;
      ignore (Promise.fill cs.cp_pr (outcome, src))
    | Inv_nacked ->
      cs.cp_nacks <- cs.cp_nacks + 1;
      if cs.cp_nacks >= cs.cp_count then begin
        Hashtbl.remove node.nd_pending seq;
        ignore (Promise.fill cs.cp_pr (outcome, src))
      end)
  | Some (P_locate _ | P_create _ | P_ack _ | P_cache _ | P_dir _) ->
    raise (Fatal "pending kind mismatch for invocation reply")
  | None -> (
    (* Late reply after the requester gave up (or after a faster clone
       already won): the operation may have executed, but nobody is
       listening — the paper's orphan. *)
    match outcome with
    | Inv_result _ -> Metrics.incr (nm cl node).m_orphans
    | Inv_nacked -> ())

let deliver_reply ?ctx cl obj route result =
  let node = home cl obj in
  match route with
  | Reply_local pr -> ignore (Promise.fill pr result)
  | Reply_remote { requester; inv_id } ->
    if requester = node.nd_id then
      (* The object moved to the requester's node mid-request. *)
      resolve_inv_pending cl node ~src:node.nd_id inv_id.Message.seq
        (Inv_result (result, obj.ob_frozen))
    else
      send_msg ?ctx cl node ~dst:requester
        (Message.Inv_reply { inv_id; result; frozen_hint = obj.ob_frozen })

let fail_work cl obj w error =
  span_enter cl w Span.Reply;
  deliver_reply ?ctx:w.w_ctx cl obj w.w_route (Error error)

(* -------------------------------------------------------------------- *)
(* The coordinator: dispatching invocations inside an object *)

let class_state obj class_name =
  let running =
    match Hashtbl.find_opt obj.ob_class_running class_name with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace obj.ob_class_running class_name r;
      r
  in
  let queue =
    match Hashtbl.find_opt obj.ob_class_queue class_name with
    | Some q -> q
    | None ->
      let q = Fifo.create () in
      Hashtbl.replace obj.ob_class_queue class_name q;
      q
  in
  (running, queue)

(* Retraction point: the moment queued work would become an invocation
   process is the last chance for a cancellation to matter.  Local work
   is never speculative; remote work transitions its idempotence entry
   to Started here — or is dropped, if a cancel got there first. *)
let work_retracted node w =
  match w.w_route with
  | Reply_local _ -> false
  | Reply_remote { inv_id; _ } -> (
    match Dedup.start node.nd_recent inv_id with
    | `Run -> false
    | `Retracted -> true)

let rec start_invocation cl obj spec w =
  let node = home cl obj in
  if work_retracted node w then begin
    Metrics.incr (nm cl node).m_retracted;
    (* Dropped unexecuted; give the slot to the next queued work. *)
    let _, queue = class_state obj spec.Opclass.class_name in
    match Fifo.pop queue with
    | Some next -> start_invocation cl obj spec next
    | None -> ()
  end
  else start_invocation_admitted cl obj spec w

and start_invocation_admitted cl obj spec w =
  let node = home cl obj in
  let running, _ = class_state obj spec.Opclass.class_name in
  incr running;
  obj.ob_running_total <- obj.ob_running_total + 1;
  (* Creating the invocation process is the 432's expensive step. *)
  consume node (costs node).Costs.process_create_cpu;
  let op =
    match Typemgr.find_operation obj.ob_type w.w_op with
    | Some op -> op
    | None -> raise (Fatal "dispatched an unknown operation")
  in
  let pid =
    Engine.spawn cl.eng
      ~name:(Printf.sprintf "%s.%s" (Name.to_string obj.ob_name) w.w_op)
      (fun () ->
        let self = Engine.self () in
        Fun.protect
          ~finally:(fun () -> finish_invocation cl obj spec self)
          (fun () ->
            (* Profiling: mark the instant execution actually begins —
               the gap back to the triggering receive (or stall) is
               queue residency — and re-parent the work's causal chain
               through the mark so the reply extends it. *)
            (if cl.opts.use_profiling then
               match w.w_ctx with
               | Some c ->
                 let ws =
                   jrecord cl node ~ctx:c (Journal.Work_start { op = w.w_op })
                 in
                 w.w_ctx <- Some (Tracectx.with_parent c ~parent:ws)
               | None -> ());
            Hashtbl.replace obj.ob_inflight
              (Engine.Pid.to_int self)
              w;
            (match w.w_span with
            | Some sp ->
              Span.enter sp Span.Execute ~at:(Engine.now cl.eng);
              Hashtbl.replace cl.c_span_ctx (Engine.Pid.to_int self) sp
            | None -> ());
            let ctx = make_ctx cl obj in
            let result =
              try op.Typemgr.op_handler ctx w.w_args with
              | Engine.Killed as e -> raise e
              | Engine.Stalled_waiting as e -> raise e
              | exn -> Error (Error.User_error (Printexc.to_string exn))
            in
            Hashtbl.remove obj.ob_inflight (Engine.Pid.to_int self);
            span_enter cl w Span.Reply;
            deliver_reply ?ctx:w.w_ctx cl obj w.w_route result))
  in
  obj.ob_proc_pids <- pid :: obj.ob_proc_pids

and finish_invocation cl obj spec self =
  Hashtbl.remove obj.ob_inflight (Engine.Pid.to_int self);
  Hashtbl.remove cl.c_span_ctx (Engine.Pid.to_int self);
  let running, queue = class_state obj spec.Opclass.class_name in
  decr running;
  obj.ob_running_total <- obj.ob_running_total - 1;
  Condition.broadcast obj.ob_drained;
  match obj.ob_status with
  | Running -> (
    match Fifo.pop queue with
    | Some next -> start_invocation cl obj spec next
    | None -> ())
  | Draining | Dead -> ()

(* Validation and class admission for one incoming work item. *)
let coordinator_admit cl obj w =
  let node = home cl obj in
  span_enter cl w Span.Dispatch;
  Metrics.incr (nm cl node).m_dispatch;
  consume node (costs node).Costs.invoke_dispatch_cpu;
  match obj.ob_status with
  | Dead -> fail_work cl obj w Error.Object_crashed
  | Draining ->
    (* Profiling: the request is about to sit behind a draining
       object; mark the stall (and re-parent through it) so the wait
       until reactivation is attributed to drain, not plain queueing. *)
    (if cl.opts.use_profiling then
       match w.w_ctx with
       | Some c ->
         let ds =
           jrecord cl node ~ctx:c
             (Journal.Drain_stall { target = Name.to_string obj.ob_name })
         in
         w.w_ctx <- Some (Tracectx.with_parent c ~parent:ds)
       | None -> ());
    Fifo.push_exn obj.ob_stash w
  | Running -> (
    match Typemgr.find_operation obj.ob_type w.w_op with
    | None -> fail_work cl obj w (Error.No_such_operation w.w_op)
    | Some op ->
      if not (Rights.subset op.Typemgr.required_rights w.w_presented) then
        fail_work cl obj w (Error.Rights_violation w.w_op)
      else if obj.ob_frozen && op.Typemgr.mutates then
        fail_work cl obj w Error.Frozen_immutable
      else begin
        let spec = Opclass.class_of (Typemgr.classes obj.ob_type) ~op:w.w_op in
        let running, queue = class_state obj spec.Opclass.class_name in
        if !running < spec.Opclass.limit then start_invocation cl obj spec w
        else Fifo.push_exn queue w
      end)

let coordinator_loop cl obj () =
  let rec loop () =
    match Mailbox.recv obj.ob_queue with
    | None -> loop ()
    | Some w ->
      coordinator_admit cl obj w;
      loop ()
  in
  loop ()

let spawn_coordinator cl obj =
  let pid =
    Engine.spawn cl.eng
      ~name:("coord:" ^ Name.to_string obj.ob_name)
      (coordinator_loop cl obj)
  in
  Engine.set_daemon cl.eng pid;
  obj.ob_coordinator <- Some pid

let spawn_behaviours cl obj =
  if not obj.ob_is_replica then
    List.iter
      (fun b ->
        let pid =
          Engine.spawn cl.eng
            ~name:
              (Printf.sprintf "%s!%s" (Name.to_string obj.ob_name)
                 b.Typemgr.b_name)
            (fun () ->
              let ctx = make_ctx cl obj in
              b.Typemgr.b_body ctx)
        in
        Engine.set_daemon cl.eng pid;
        obj.ob_behaviour_pids <- pid :: obj.ob_behaviour_pids)
      (Typemgr.behaviours obj.ob_type)

(* -------------------------------------------------------------------- *)
(* Memory and type-code loading *)

let load_type_code cl node tm =
  let tname = Typemgr.name tm in
  if Hashtbl.mem node.nd_types_loaded tname then Ok ()
  else begin
    let bytes = Typemgr.code_bytes tm in
    match Memory.reserve node.nd_mem bytes with
    | Error `Out_of_memory -> Error Error.Out_of_memory
    | Ok () ->
      (* Code segments come off the local disk (or, on a diskless
         node, would come from a file server; we model a local read). *)
      Disk.read (Machine.disk node.nd_machine) ~bytes;
      Hashtbl.replace node.nd_types_loaded tname ();
      tracef cl Trace.Kern "node %d loaded type code %s" node.nd_id tname;
      Ok ()
  end

let object_footprint tm repr =
  Value.size_bytes repr + Typemgr.short_term_bytes tm

(* -------------------------------------------------------------------- *)
(* Object construction (shared by create / activate / replicate) *)

let build_obj cl ~name ~tm ~repr ~frozen ~reliability ~home ~is_replica ~mem =
  {
    ob_name = name;
    ob_type = tm;
    ob_repr = repr;
    ob_frozen = frozen;
    ob_reliability = reliability;
    ob_home = home;
    ob_status = Running;
    ob_is_replica = is_replica;
    ob_queue = Mailbox.create cl.eng;
    ob_stash = Fifo.create ();
    ob_class_running = Hashtbl.create 4;
    ob_class_queue = Hashtbl.create 4;
    ob_inflight = Hashtbl.create 4;
    ob_running_total = 0;
    ob_drained = Condition.create cl.eng;
    ob_coordinator = None;
    ob_behaviour_pids = [];
    ob_proc_pids = [];
    ob_sems = Hashtbl.create 4;
    ob_ports = Hashtbl.create 4;
    ob_rng = Splitmix.split cl.c_rng;
    ob_mem = mem;
    ob_ckpt_sites = [];
    ob_ckpt_version = 0;
    ob_ckpt_base = None;
    ob_ckpt_acked = Hashtbl.create 4;
    ob_ckpt_inflight = false;
    ob_ckpt_queued = false;
    ob_ckpt_idle = Condition.create cl.eng;
  }

(* Create a brand-new object on [node].  Blocking. *)
let do_create_local cl node type_name init =
  if not node.nd_up then Error Error.Node_down
  else
    match Hashtbl.find_opt cl.types type_name with
    | None -> Error (Error.Bad_arguments ("unknown type " ^ type_name))
    | Some tm -> (
      match load_type_code cl node tm with
      | Error e -> Error e
      | Ok () -> (
        let footprint = object_footprint tm init in
        match Memory.reserve node.nd_mem footprint with
        | Error `Out_of_memory -> Error Error.Out_of_memory
        | Ok () ->
          consume node (costs node).Costs.process_create_cpu;
          let name =
            Name.make ~birth_node:node.nd_id ~serial:(next_seq node)
          in
          let obj =
            build_obj cl ~name ~tm ~repr:init ~frozen:false
              ~reliability:Reliability.Local ~home:node.nd_id
              ~is_replica:false ~mem:footprint
          in
          spawn_coordinator cl obj;
          spawn_behaviours cl obj;
          Name.Table.replace node.nd_active name obj;
          dir_publish cl node name ~home:node.nd_id ~replicas:[];
          tracef cl Trace.Kern "created %s type=%s on node %d"
            (Name.to_string name) type_name node.nd_id;
          Ok (Capability.make name Rights.all)))

(* Reincarnate a passive object from its snapshot on [node].  Blocking.
   Concurrent activations of the same object on one node coalesce. *)
let activate cl node name =
  match Name.Table.find_opt node.nd_active name with
  | Some obj -> Ok obj
  | None -> (
    match Name.Table.find_opt node.nd_activating name with
    | Some pr -> (
      match Promise.await pr with
      | Some r -> r
      | None -> raise (Fatal "activation promise has no timeout"))
    | None -> (
      match Name.Table.find_opt node.nd_store name with
      | None -> Error Error.No_such_object
      | Some _ when not node.nd_disk_ok ->
        (* The snapshot exists but cannot be read back. *)
        Error Error.Disk_failed
      | Some snap -> (
        let pr = Promise.create cl.eng in
        Name.Table.replace node.nd_activating name pr;
        let finish r =
          Name.Table.remove node.nd_activating name;
          ignore (Promise.fill pr r);
          r
        in
        match Hashtbl.find_opt cl.types snap.ss_type with
        | None ->
          finish (Error (Error.Bad_arguments ("unknown type " ^ snap.ss_type)))
        | Some tm -> (
          match load_type_code cl node tm with
          | Error e -> finish (Error e)
          | Ok () -> (
            let footprint = object_footprint tm snap.ss_repr in
            match Memory.reserve node.nd_mem footprint with
            | Error `Out_of_memory -> finish (Error Error.Out_of_memory)
            | Ok () ->
              (* Read the long-term representation from disk. *)
              Disk.read (Machine.disk node.nd_machine)
                ~bytes:(Value.size_bytes snap.ss_repr);
              consume node (costs node).Costs.activation_fixed_cpu;
              let obj =
                build_obj cl ~name ~tm ~repr:snap.ss_repr
                  ~frozen:snap.ss_frozen ~reliability:snap.ss_reliability
                  ~home:node.nd_id ~is_replica:false ~mem:footprint
              in
              obj.ob_ckpt_sites <-
                Reliability.checksites snap.ss_reliability ~home:node.nd_id;
              obj.ob_ckpt_version <- snap.ss_version;
              obj.ob_ckpt_base <- Some (snap.ss_version, snap.ss_repr);
              (* Seed the acked table optimistically: checksites are
                 usually at the version we just restored.  A site that
                 is actually behind nacks its first delta, which falls
                 back to a full write and repairs the entry. *)
              List.iter
                (fun site ->
                  Hashtbl.replace obj.ob_ckpt_acked site snap.ss_version)
                obj.ob_ckpt_sites;
              snap.ss_passive <- false;
              let actx =
                Tracectx.root
                  (jrecord cl node
                     (Journal.Activate
                        {
                          target = Name.to_string name;
                          version = snap.ss_version;
                        }))
              in
              (* Tell sibling checksites the object lives again. *)
              List.iter
                (fun site ->
                  if site <> node.nd_id then
                    send_msg ~ctx:actx cl node ~dst:site
                      (Message.Ckpt_mark
                         {
                           target = name;
                           passive = false;
                           version = snap.ss_version;
                         }))
                obj.ob_ckpt_sites;
              (* The reincarnation condition handler runs before any
                 invocation is dispatched. *)
              (match Typemgr.reincarnate tm with
              | None -> ()
              | Some handler -> handler (make_ctx cl obj));
              if obj.ob_status = Dead then
                finish (Error Error.Object_crashed)
              else begin
                spawn_coordinator cl obj;
                spawn_behaviours cl obj;
                Name.Table.replace node.nd_active name obj;
                (* Reincarnation is a home change the shard must hear
                   about, or it keeps naming the dead home. *)
                dir_publish ~ctx:actx cl node name ~home:node.nd_id
                  ~replicas:[];
                Metrics.incr (nm cl node).m_recoveries;
                tracef cl Trace.Store "reincarnated %s on node %d"
                  (Name.to_string name) node.nd_id;
                finish (Ok obj)
              end)))))

(* -------------------------------------------------------------------- *)
(* Checkpointing, crash, reincarnation *)

(* Returns whether the snapshot reached stable storage; a failed disk
   accepts nothing (and writes no partial state). *)
let write_snapshot cl node ~target ~type_name ~repr ~version ~reliability
    ~frozen ~passive =
  if not node.nd_disk_ok then begin
    tracef cl Trace.Store "node %d refused snapshot of %s: disk failed"
      node.nd_id (Name.to_string target);
    false
  end
  else begin
    Metrics.incr (nm cl node).m_ckpts;
    Metrics.add (nm cl node).m_ckpt_bytes (Value.size_bytes repr);
    Disk.write (Machine.disk node.nd_machine) ~bytes:(Value.size_bytes repr);
    (match Name.Table.find_opt node.nd_store target with
    | Some snap ->
      snap.ss_repr <- repr;
      snap.ss_version <- version;
      snap.ss_reliability <- reliability;
      snap.ss_frozen <- frozen;
      snap.ss_passive <- passive
    | None ->
      Name.Table.replace node.nd_store target
        {
          ss_type = type_name;
          ss_repr = repr;
          ss_version = version;
          ss_reliability = reliability;
          ss_frozen = frozen;
          ss_passive = passive;
        });
    tracef cl Trace.Store "node %d stored snapshot of %s v%d (%dB)" node.nd_id
      (Name.to_string target) version (Value.size_bytes repr);
    true
  end

(* Apply a delta checkpoint against the stored snapshot.  Refusal is
   the nack that makes the sender fall back to a full write: disk
   failed, no snapshot to diff against, or the stored version is not
   the delta's base. *)
let apply_delta_snapshot cl node ~target ~base_version ~version ~delta
    ~reliability ~frozen =
  if not node.nd_disk_ok then begin
    tracef cl Trace.Store "node %d refused delta for %s: disk failed"
      node.nd_id (Name.to_string target);
    false
  end
  else
    match Name.Table.find_opt node.nd_store target with
    | None ->
      tracef cl Trace.Store "node %d nacked delta for %s: no base snapshot"
        node.nd_id (Name.to_string target);
      false
    | Some snap when snap.ss_version <> base_version ->
      tracef cl Trace.Store
        "node %d nacked delta for %s: base v%d but stored v%d" node.nd_id
        (Name.to_string target) base_version snap.ss_version;
      false
    | Some snap -> (
      match Delta.apply delta ~base:snap.ss_repr with
      | Error msg ->
        tracef cl Trace.Store "node %d nacked delta for %s: %s" node.nd_id
          (Name.to_string target) msg;
        false
      | Ok repr ->
        let bytes = Delta.size_bytes delta in
        Metrics.incr (nm cl node).m_ckpts;
        Metrics.add (nm cl node).m_ckpt_bytes bytes;
        Disk.write (Machine.disk node.nd_machine) ~bytes;
        snap.ss_repr <- repr;
        snap.ss_version <- version;
        snap.ss_reliability <- reliability;
        snap.ss_frozen <- frozen;
        snap.ss_passive <- false;
        tracef cl Trace.Store "node %d applied delta for %s v%d->v%d (%dB)"
          node.nd_id (Name.to_string target) base_version version bytes;
        true)

(* One checkpoint round: stamp a fresh version and write [repr] to
   every checksite — as a delta where the site is known to hold the
   current diff base, as a full representation otherwise.  All writes
   (the local disk one included) race one shared acknowledgement
   deadline instead of paying one [ack_timeout] per site. *)
let checkpoint_round cl obj ~repr =
  if obj.ob_status = Dead then Error Error.Object_crashed
  else begin
    let node = home cl obj in
    let metrics = nm cl node in
    consume node (costs node).Costs.checkpoint_fixed_cpu;
    obj.ob_ckpt_version <- obj.ob_ckpt_version + 1;
    let version = obj.ob_ckpt_version in
    let ctx =
      Tracectx.root
        (jrecord cl node
           (Journal.Ckpt_round
              { target = Name.to_string obj.ob_name; version }))
    in
    let type_name = Typemgr.name obj.ob_type in
    (* A checksite that has left the membership (decommissioned, not
       merely crashed) will never ack: drop it from the write set
       rather than stalling every round on a permanently dark mirror.
       Crashed members keep their write — the shared deadline covers
       transient outages. *)
    let sites =
      Reliability.checksites obj.ob_reliability ~home:node.nd_id
      |> List.filter (fun s -> s = node.nd_id || List.mem s cl.c_members)
    in
    let deadline = deadline_of ~timeout:ack_timeout cl.eng in
    let delta =
      if not cl.opts.use_ckpt_delta then None
      else
        match obj.ob_ckpt_base with
        | None -> None
        | Some (bv, base) ->
          (* Finding the dirty chunks is a read-only sweep of the
             representation. *)
          consume node
            (Costs.delta_scan_cost (costs node)
               ~bytes:(Value.size_bytes repr));
          Some (bv, Delta.diff ~base ~target:repr)
    in
    let site_at site v = Hashtbl.find_opt obj.ob_ckpt_acked site = Some v in
    let send_full site =
      let req_id = new_request_id node in
      let pr = Promise.create cl.eng in
      add_pending node req_id.Message.seq (P_ack pr);
      Metrics.add metrics.m_ckpt_full_bytes (Value.size_bytes repr);
      send_msg ~ctx cl node ~dst:site
        (Message.Ckpt_write
           {
             req_id;
             target = obj.ob_name;
             type_name;
             repr;
             version;
             reliability = obj.ob_reliability;
             frozen = obj.ob_frozen;
             reply_to = node.nd_id;
           });
      (req_id, pr)
    in
    let send_delta site ~base_version d =
      let req_id = new_request_id node in
      let pr = Promise.create cl.eng in
      add_pending node req_id.Message.seq (P_ack pr);
      Metrics.add metrics.m_ckpt_delta_bytes (Delta.size_bytes d);
      send_msg ~ctx cl node ~dst:site
        (Message.Ckpt_delta
           {
             req_id;
             target = obj.ob_name;
             type_name;
             delta = d;
             base_version;
             version;
             reliability = obj.ob_reliability;
             frozen = obj.ob_frozen;
             reply_to = node.nd_id;
           });
      (req_id, pr)
    in
    (* Launch every remote write first so they overlap each other and
       the local disk write. *)
    let remote_acks =
      List.filter_map
        (fun site ->
          if site = node.nd_id then None
          else
            match delta with
            | Some (bv, d) when site_at site bv ->
              let req_id, pr = send_delta site ~base_version:bv d in
              Some (site, req_id, pr, true)
            | _ ->
              let req_id, pr = send_full site in
              Some (site, req_id, pr, false))
        sites
    in
    let write_local_full () =
      Metrics.add metrics.m_ckpt_full_bytes (Value.size_bytes repr);
      write_snapshot cl node ~target:obj.ob_name ~type_name ~repr ~version
        ~reliability:obj.ob_reliability ~frozen:obj.ob_frozen ~passive:false
    in
    let write_local () =
      match delta with
      | Some (bv, d) when site_at node.nd_id bv ->
        if
          apply_delta_snapshot cl node ~target:obj.ob_name ~base_version:bv
            ~version ~delta:d ~reliability:obj.ob_reliability
            ~frozen:obj.ob_frozen
        then begin
          Metrics.add metrics.m_ckpt_delta_bytes (Delta.size_bytes d);
          true
        end
        else begin
          (* The local base is gone or stale: same fallback as a
             remote nack. *)
          Metrics.incr metrics.m_ckpt_fallbacks;
          write_local_full ()
        end
      | _ -> write_local_full ()
    in
    let local_in = List.mem node.nd_id sites in
    let local_ok = local_in && write_local () in
    let local_failed = local_in && not local_ok in
    (* Await the remote acknowledgements against the shared deadline;
       a nacked delta re-sends the full representation, still under
       the same deadline. *)
    let rec await_ack site req_id pr was_delta =
      match Promise.await ?timeout:(remaining cl.eng deadline) pr with
      | Some true -> true
      | Some false when was_delta ->
        Hashtbl.remove node.nd_pending req_id.Message.seq;
        Metrics.incr metrics.m_ckpt_fallbacks;
        let req_id', pr' = send_full site in
        await_ack site req_id' pr' false
      | Some false | None ->
        Hashtbl.remove node.nd_pending req_id.Message.seq;
        false
    in
    let ok_sites, failed =
      List.fold_left
        (fun (oks, failed) (site, req_id, pr, was_delta) ->
          if await_ack site req_id pr was_delta then (site :: oks, failed)
          else (oks, site :: failed))
        ( (if local_ok then [ node.nd_id ] else []),
          if local_failed then [ node.nd_id ] else [] )
        remote_acks
    in
    List.iter
      (fun site -> Hashtbl.replace obj.ob_ckpt_acked site version)
      ok_sites;
    List.iter (fun site -> Hashtbl.remove obj.ob_ckpt_acked site) failed;
    (* Remove snapshots at sites no longer in the checksite set. *)
    List.iter
      (fun old_site ->
        if not (List.mem old_site sites) then begin
          Hashtbl.remove obj.ob_ckpt_acked old_site;
          if old_site = node.nd_id then
            Name.Table.remove node.nd_store obj.ob_name
          else
            send_msg ~ctx cl node ~dst:old_site
              (Message.Ckpt_delete { target = obj.ob_name })
        end)
      obj.ob_ckpt_sites;
    obj.ob_ckpt_sites <- List.rev ok_sites;
    (* This round's representation is the next round's diff base. *)
    obj.ob_ckpt_base <- Some (version, repr);
    match failed with
    | [] -> Ok ()
    | _ :: _ ->
      if local_failed then Error Error.Disk_failed else Error Error.Node_down
  end

(* Checkpoint rounds for one object are serialised: a second request
   while one is in flight waits its turn (sync) or coalesces into a
   single follow-up round (async). *)
let acquire_ckpt_slot obj =
  while obj.ob_ckpt_inflight do
    ignore (Condition.await ~timeout:ack_timeout obj.ob_ckpt_idle)
  done;
  obj.ob_ckpt_inflight <- true

let release_ckpt_slot obj =
  obj.ob_ckpt_inflight <- false;
  Condition.broadcast obj.ob_ckpt_idle

let do_checkpoint cl obj =
  if obj.ob_is_replica then
    Error (Error.Bad_arguments "replicas do not checkpoint")
  else if obj.ob_status = Dead then Error Error.Object_crashed
  else begin
    acquire_ckpt_slot obj;
    Fun.protect
      ~finally:(fun () -> release_ckpt_slot obj)
      (fun () -> checkpoint_round cl obj ~repr:obj.ob_repr)
  end

(* Start a checkpoint and return immediately.  The round snapshots the
   representation at call time — values are immutable, so capturing
   the reference is a free copy-on-write — and runs in a kernel
   process.  [Ok ()] means launched (or coalesced), not succeeded. *)
let do_checkpoint_async cl obj =
  if obj.ob_is_replica then
    Error (Error.Bad_arguments "replicas do not checkpoint")
  else if obj.ob_status = Dead then Error Error.Object_crashed
  else begin
    let node = home cl obj in
    if obj.ob_ckpt_inflight then begin
      obj.ob_ckpt_queued <- true;
      Metrics.incr (nm cl node).m_ckpt_coalesced;
      Ok ()
    end
    else begin
      obj.ob_ckpt_inflight <- true;
      node.nd_ckpt_async <- node.nd_ckpt_async + 1;
      let repr = obj.ob_repr in
      ignore
        (spawn_kproc cl node
           ~name:("k:ckpt_async:" ^ Name.to_string obj.ob_name)
           (fun () ->
             Fun.protect
               ~finally:(fun () ->
                 node.nd_ckpt_async <- node.nd_ckpt_async - 1;
                 release_ckpt_slot obj)
               (fun () ->
                 let rec rounds repr =
                   ignore (checkpoint_round cl obj ~repr);
                   if obj.ob_ckpt_queued && obj.ob_status <> Dead then begin
                     obj.ob_ckpt_queued <- false;
                     rounds obj.ob_repr
                   end
                 in
                 rounds repr)));
      Ok ()
    end
  end

(* Collect every request the object is holding, in admission order. *)
let outstanding_works obj =
  let inflight = Hashtbl.fold (fun _ w acc -> w :: acc) obj.ob_inflight [] in
  let queued =
    Hashtbl.fold (fun _ q acc -> Fifo.to_list q @ acc) obj.ob_class_queue []
  in
  let stashed = Fifo.to_list obj.ob_stash in
  let buffered =
    let rec drain acc =
      match Mailbox.try_recv obj.ob_queue with
      | Some w -> drain (w :: acc)
      | None -> List.rev acc
    in
    drain []
  in
  inflight @ queued @ stashed @ buffered

let kill_object_procs cl obj =
  let self = [] in
  let pids =
    (match obj.ob_coordinator with Some p -> [ p ] | None -> [])
    @ obj.ob_behaviour_pids @ obj.ob_proc_pids
  in
  obj.ob_coordinator <- None;
  obj.ob_behaviour_pids <- [];
  obj.ob_proc_pids <- [];
  (* If the current process is one of the object's own (crash called
     from a handler or behaviour), kill it last so the rest of the
     dismantling completes. *)
  let here =
    match Engine.self () with
    | pid -> Some pid
    | exception Invalid_argument _ -> None
  in
  let mine, others =
    match here with
    | None -> (self, pids)
    | Some me ->
      List.partition (fun p -> Engine.Pid.equal p me) pids
  in
  List.iter (fun p -> Engine.kill cl.eng p) others;
  List.iter (fun p -> Engine.kill cl.eng p) mine

let unregister cl obj =
  let node = home cl obj in
  if obj.ob_is_replica then Name.Table.remove node.nd_replicas obj.ob_name
  else Name.Table.remove node.nd_active obj.ob_name;
  Memory.release node.nd_mem obj.ob_mem;
  obj.ob_mem <- 0

(* The crash primitive: destroy all active state.  If the object has a
   checkpoint it becomes passive; otherwise it is gone for good. *)
let do_crash cl obj =
  if obj.ob_status <> Dead then begin
    obj.ob_status <- Dead;
    let node = home cl obj in
    let works = outstanding_works obj in
    List.iter (fun w -> fail_work cl obj w Error.Object_crashed) works;
    (* Flip the stored snapshots to passive-authoritative. *)
    List.iter
      (fun site ->
        if site = node.nd_id then begin
          match Name.Table.find_opt node.nd_store obj.ob_name with
          | Some snap -> snap.ss_passive <- true
          | None -> ()
        end
        else
          send_msg cl node ~dst:site
            (Message.Ckpt_mark
               {
                 target = obj.ob_name;
                 passive = true;
                 version = obj.ob_ckpt_version;
               }))
      obj.ob_ckpt_sites;
    unregister cl obj;
    tracef cl Trace.Kern "%s crashed on node %d" (Name.to_string obj.ob_name)
      node.nd_id;
    kill_object_procs cl obj
  end

(* -------------------------------------------------------------------- *)
(* Mobility: move, freeze, replicate *)

let do_move cl obj ~to_node ~self_inflight =
  let source = home cl obj in
  if obj.ob_is_replica then Error (Error.Move_refused "replicas cannot move")
  else if to_node = obj.ob_home then Ok ()
  else if obj.ob_status <> Running then
    Error (Error.Move_refused "object is not quiescent")
  else begin
    let target = node_of cl to_node in
    obj.ob_status <- Draining;
    let floor = if self_inflight then 1 else 0 in
    let rec wait_drain () =
      if obj.ob_running_total > floor then begin
        ignore (Condition.await obj.ob_drained);
        wait_drain ()
      end
    in
    wait_drain ();
    (* Ship the representation; the Move_transfer message carries the
       object's long-term state across the wire. *)
    let transfer_id = new_request_id source in
    let pr = Promise.create cl.eng in
    add_pending source transfer_id.Message.seq (P_ack pr);
    send_msg cl source ~dst:to_node
      (Message.Move_transfer
         {
           target = obj.ob_name;
           type_name = Typemgr.name obj.ob_type;
           repr = obj.ob_repr;
           frozen = obj.ob_frozen;
           reliability = obj.ob_reliability;
           from_node = source.nd_id;
           transfer_id;
         });
    let accepted = Promise.await ~timeout:ack_timeout pr in
    Hashtbl.remove source.nd_pending transfer_id.Message.seq;
    (* Whatever the outcome, requests stashed while draining must be
       re-admitted once the object is running again. *)
    let resume_and_flush () =
      obj.ob_status <- Running;
      let rec flush () =
        match Fifo.pop obj.ob_stash with
        | Some w ->
          let ok = Mailbox.try_send obj.ob_queue w in
          assert ok;
          flush ()
        | None -> ()
      in
      flush ()
    in
    match accepted with
    | Some true ->
      (* Behaviours stop at the source and restart at the target. *)
      let behaviours = obj.ob_behaviour_pids in
      obj.ob_behaviour_pids <- [];
      List.iter (fun p -> Engine.kill cl.eng p) behaviours;
      Name.Table.remove source.nd_active obj.ob_name;
      Memory.release source.nd_mem obj.ob_mem;
      if cl.opts.use_forwarding then
        Name.Table.replace source.nd_forward obj.ob_name to_node;
      obj.ob_home <- to_node;
      obj.ob_mem <- object_footprint obj.ob_type obj.ob_repr;
      Name.Table.replace target.nd_active obj.ob_name obj;
      spawn_behaviours cl obj;
      resume_and_flush ();
      (* Every mover — the external [move], the migration policy's
         [balance_once], checkpoint-driven migration — publishes the
         new home here, so the registry never needs per-caller
         discipline.  Without this a balanced-away object costs every
         directory user a nack round before the fallback repairs it. *)
      dir_publish cl source obj.ob_name ~home:to_node ~replicas:[];
      tracef cl Trace.Move "moved %s: node %d -> node %d"
        (Name.to_string obj.ob_name) source.nd_id to_node;
      Ok ()
    | Some false ->
      resume_and_flush ();
      Error Error.Out_of_memory
    | None ->
      resume_and_flush ();
      Error Error.Node_down
  end

let do_replicate cl obj ~to_node =
  let node = home cl obj in
  if not obj.ob_frozen then
    Error (Error.Move_refused "only frozen objects can be replicated")
  else if to_node = obj.ob_home then Ok ()
  else begin
    let transfer_id = new_request_id node in
    let pr = Promise.create cl.eng in
    add_pending node transfer_id.Message.seq (P_ack pr);
    send_msg cl node ~dst:to_node
      (Message.Replica_install
         {
           target = obj.ob_name;
           type_name = Typemgr.name obj.ob_type;
           repr = obj.ob_repr;
           transfer_id;
           from_node = node.nd_id;
         });
    let accepted = Promise.await ~timeout:ack_timeout pr in
    Hashtbl.remove node.nd_pending transfer_id.Message.seq;
    match accepted with
    | Some true ->
      (* Same-home publish: the shard unions [to_node] into the
         entry's replica set, seeding requesters' clone sets. *)
      dir_publish cl node obj.ob_name ~home:obj.ob_home
        ~replicas:[ to_node ];
      tracef cl Trace.Move "replicated %s to node %d"
        (Name.to_string obj.ob_name) to_node;
      Ok ()
    | Some false -> Error Error.Out_of_memory
    | None -> Error Error.Node_down
  end

(* -------------------------------------------------------------------- *)
(* The frozen-replica cache.

   A remote reply can carry a [frozen_hint]: the serving node saw the
   target immutable.  The requester then fetches the representation
   once, in the background, and installs it in [nd_cache]; every later
   invocation from this node dispatches locally.  The entry is a hint
   in Lampson's sense: rights still validate on every dispatch, and
   staleness is handled by invalidation — [unfreeze] (the version
   bump) broadcasts on the existing nack path, which drops cached
   copies everywhere, and [Destroy_notice] / node crashes clear them
   too.  The cache never answers locates or remote requests: it is
   private to its node, so it can be discarded at any time. *)

let drop_cached cl node target =
  match Name.Table.find_opt node.nd_cache target with
  | None -> ()
  | Some obj ->
    obj.ob_status <- Dead;
    let works = outstanding_works obj in
    List.iter (fun w -> fail_work cl obj w Error.No_such_object) works;
    Name.Table.remove node.nd_cache target;
    Memory.release node.nd_mem obj.ob_mem;
    obj.ob_mem <- 0;
    Metrics.incr (nm cl node).m_cache_inval;
    tracef cl Trace.Kern "node %d dropped cached replica of %s" node.nd_id
      (Name.to_string target);
    kill_object_procs cl obj

let cache_epoch node name =
  match Name.Table.find_opt node.nd_cache_epoch name with
  | Some e -> e
  | None -> 0

(* Full invalidation: purge any installed copy and poison fetches in
   flight (their payload predates the bump, see [cache_fetch]). *)
let invalidate_cached cl node target =
  if Name.Table.mem node.nd_cache target || Name.Table.mem node.nd_fetching target
  then begin
    let epoch = cache_epoch node target + 1 in
    Name.Table.replace node.nd_cache_epoch target epoch;
    ignore
      (jrecord cl node
         (Journal.Cache_invalidate { target = Name.to_string target; epoch }))
  end;
  drop_cached cl node target

let install_cached cl node name ~type_name ~repr =
  if
    node.nd_up
    && (not (Name.Table.mem node.nd_cache name))
    && (not (Name.Table.mem node.nd_active name))
    && not (Name.Table.mem node.nd_replicas name)
  then
    match Hashtbl.find_opt cl.types type_name with
    | None -> ()
    | Some tm -> (
      match load_type_code cl node tm with
      | Error _ -> ()
      | Ok () -> (
        let footprint = object_footprint tm repr in
        match Memory.reserve node.nd_mem footprint with
        | Error `Out_of_memory -> ()
        | Ok () ->
          let obj =
            build_obj cl ~name ~tm ~repr ~frozen:true
              ~reliability:Reliability.Local ~home:node.nd_id
              ~is_replica:true ~mem:footprint
          in
          spawn_coordinator cl obj;
          Name.Table.replace node.nd_cache name obj;
          ignore
            (jrecord cl node
               (Journal.Cache_install
                  { target = Name.to_string name; epoch = cache_epoch node name }));
          tracef cl Trace.Kern "node %d cached frozen replica of %s"
            node.nd_id (Name.to_string name)))

(* Fetch [name]'s representation from [from_node] in the background.
   Failures are silent: the cache is an optimisation, and the next
   frozen-hinted reply will try again. *)
let cache_fetch ?ctx cl node name ~from_node =
  if
    cl.opts.use_replica_cache && node.nd_up && from_node <> node.nd_id
    && (not (Name.Table.mem node.nd_cache name))
    && (not (Name.Table.mem node.nd_fetching name))
    && (not (Name.Table.mem node.nd_active name))
    && not (Name.Table.mem node.nd_replicas name)
  then begin
    Name.Table.replace node.nd_fetching name ();
    ignore
      (spawn_kproc cl node ~name:"k:cache_fetch" (fun () ->
           Fun.protect
             ~finally:(fun () -> Name.Table.remove node.nd_fetching name)
             (fun () ->
               let epoch = cache_epoch node name in
               let req_id = new_request_id node in
               let pr = Promise.create cl.eng in
               add_pending node req_id.Message.seq (P_cache pr);
               send_msg ?ctx cl node ~dst:from_node
                 (Message.Cache_fetch
                    { req_id; target = name; reply_to = node.nd_id });
               let payload = Promise.await ~timeout:ack_timeout pr in
               Hashtbl.remove node.nd_pending req_id.Message.seq;
               match payload with
               | Some (Some (type_name, repr)) ->
                 (* A version bump that raced the reply (e.g. the
                    unfreeze invalidation overtaking a delayed
                    [Cache_data]) makes the payload pre-thaw garbage:
                    discard it rather than install a stale replica. *)
                 if cache_epoch node name = epoch then
                   install_cached cl node name ~type_name ~repr
               | Some None | None -> ())))
  end

(* -------------------------------------------------------------------- *)
(* Location and the invocation path *)

let enqueue_work cl obj w =
  if obj.ob_status = Dead then fail_work cl obj w Error.Object_crashed
  else begin
    cl.n_inv <- cl.n_inv + 1;
    span_enter cl w Span.Queue;
    let ok = Mailbox.try_send obj.ob_queue w in
    assert ok
  end

(* Broadcast locate; prefer an actively-hosting node, else a replica,
   else a passive checksite. *)
let locate_once ?ctx cl node name ~window =
  let req_id = new_request_id node in
  let st =
    { loc_candidates = []; loc_active = Promise.create cl.eng }
  in
  add_pending node req_id.Message.seq (P_locate st);
  Metrics.incr (nm cl node).m_locates;
  (* Locates count toward object heat too: an object that is hard to
     find generates locate traffic even when invocations stall. *)
  (match cl.c_health with
  | Some hp -> Topk.add hp.hp_topk.(node.nd_id) (Name.to_string name)
  | None -> ());
  bcast_msg ?ctx cl node
    (Message.Locate_request { req_id; target = name; reply_to = node.nd_id });
  let early = Promise.await ~timeout:window st.loc_active in
  Hashtbl.remove node.nd_pending req_id.Message.seq;
  match early with
  | Some hit -> Some hit
  | None ->
    (* The broadcast does not loop back, but this node may itself be a
       checksite: its own snapshot competes on version like any other
       (the home can crash without marking mirrors passive, so
       passivity of the local copy proves nothing either way). *)
    (if node.nd_disk_ok then
       match Name.Table.find_opt node.nd_store name with
       | Some snap ->
         st.loc_candidates <-
           (node.nd_id, Message.Res_passive, snap.ss_version)
           :: st.loc_candidates
       | None -> ());
    (* Among same-residence answers, take the highest snapshot version
       (the earliest responder on a tie).  Replicas all report version
       0, so for them this is plain arrival order; for passive sites
       it is what makes reincarnation prefer the newest state. *)
    let pick res =
      List.fold_left
        (fun best (n, r, v) ->
          if r <> res then best
          else
            match best with
            | Some (_, bv) when bv >= v -> best
            | _ -> Some (n, v))
        None
        (List.rev st.loc_candidates)
      |> Option.map (fun (n, _) -> (n, res))
    in
    (match pick Message.Res_replica with
    | Some hit -> Some hit
    | None -> pick Message.Res_passive)

(* Retries widen the reply window geometrically: under a burst of
   traffic the first window routinely expires while replies sit in
   collision backoff.  Windows are clamped to the caller's deadline so
   a tight invocation timeout is honoured even during location. *)
let rec locate_backoff ?ctx cl node name ~attempts ~window ~deadline =
  if attempts <= 0 then `Nowhere
  else
    let window =
      match remaining cl.eng deadline with
      | None -> window
      | Some left -> if Time.(left < window) then left else window
    in
    if Time.is_zero window then `Deadline
    else
      match locate_once ?ctx cl node name ~window with
      | Some hit -> `Found hit
      | None ->
        locate_backoff ?ctx cl node name ~attempts:(attempts - 1)
          ~window:(Time.scale window 3) ~deadline

(* Concurrent locates of the same name from one node share a single
   broadcast (and its answer). *)
let locate ?ctx cl node name ~deadline =
  if not cl.opts.coalesce_locates then
    locate_backoff ?ctx cl node name ~attempts:locate_retries
      ~window:locate_window ~deadline
  else
  match Name.Table.find_opt node.nd_locating name with
  | Some pr -> (
    (* Wait for the initiator's answer, but no longer than our own
       deadline allows. *)
    match Promise.await ?timeout:(remaining cl.eng deadline) pr with
    | Some (Some hit) -> `Found hit
    | Some None -> `Nowhere
    | None -> `Deadline)
  | None ->
    let pr = Promise.create cl.eng in
    Name.Table.replace node.nd_locating name pr;
    Fun.protect
      ~finally:(fun () ->
        Name.Table.remove node.nd_locating name;
        ignore (Promise.fill pr None))
      (fun () ->
        match
          locate_backoff ?ctx cl node name ~attempts:locate_retries
            ~window:locate_window ~deadline
        with
        | `Found hit ->
          ignore (Promise.fill pr (Some hit));
          `Found hit
        | (`Nowhere | `Deadline) as r -> r)

(* A frozen-hinted reply teaches us one more site able to serve reads
   of this name: remember it as a clone candidate.  The set is a hint —
   a stale member just nacks its clone, which evicts it.  Hedge-only
   mode learns too: a hedge that can re-send to an alternate replica
   dodges a degraded home, where re-sending to the same site only
   helps against loss. *)
let speculating cl =
  cl.opts.speculate.Api.sp_clone || cl.opts.speculate.Api.sp_hedge

let learn_clone_site cl node name site =
  if speculating cl && site <> node.nd_id then begin
    let prev =
      Option.value ~default:[] (Name.Table.find_opt node.nd_clone_sites name)
    in
    if (not (List.mem site prev)) && List.length prev < 8 then
      Name.Table.replace node.nd_clone_sites name (site :: prev)
  end

let forget_clone_site node name site =
  match Name.Table.find_opt node.nd_clone_sites name with
  | None -> ()
  | Some sites -> (
    match List.filter (fun s -> s <> site) sites with
    | [] -> Name.Table.remove node.nd_clone_sites name
    | rest -> Name.Table.replace node.nd_clone_sites name rest)

(* The home answers a locate before any replica does, and a plain read
   never leaves the hinted route at all, so a requester on the happy
   path would never discover the replica set.  The first time a node
   learns a target is frozen (with cloning on), it broadcasts one
   fire-and-forget locate: no pending entry resolves it, but every
   [Res_replica] answer teaches the clone set in [on_message].  The
   table entry — possibly still empty — doubles as the asked-once
   marker; [Cache_invalidate] and [forget_object] drop it, re-arming
   discovery after the frozen epoch changes.

   With the locate directory on, the discovery broadcast is skipped
   entirely: the registry answer already carries the shard's known
   replica set (every [`Hit] feeds [learn_clone_site]), so fanning out
   a broadcast here would re-introduce exactly the per-name broadcast
   the directory exists to avoid — cloned reads were costing E23-scale
   locate traffic whenever both flags were enabled. *)
let discover_clone_sites ?ctx cl node name =
  if
    speculating cl
    && (not (dir_enabled cl))
    && not (Name.Table.mem node.nd_clone_sites name)
  then begin
    Name.Table.replace node.nd_clone_sites name [];
    let req_id = new_request_id node in
    Metrics.incr (nm cl node).m_locates;
    (match cl.c_health with
    | Some hp -> Topk.add hp.hp_topk.(node.nd_id) (Name.to_string name)
    | None -> ());
    bcast_msg ?ctx cl node
      (Message.Locate_request { req_id; target = name; reply_to = node.nd_id })
  end

(* What a reply means for the requester's local bookkeeping: pay the
   unmarshalling cost, note the frozen hint, teach the clone set. *)
let absorb_reply ?ctx cl node ~from_node cap r frozen_hint =
  (match r with
  | Ok vs ->
    consume node (costs node).Costs.invoke_reply_cpu;
    consume node
      (Costs.copy_cost (costs node) ~bytes:(Value.list_size_bytes vs))
  | Error _ -> ());
  if frozen_hint then begin
    discover_clone_sites ?ctx cl node (Capability.name cap);
    learn_clone_site cl node (Capability.name cap) from_node;
    if
      cl.opts.use_replica_cache
      && not (Name.Table.mem node.nd_cache (Capability.name cap))
    then begin
      (* The target is immutable and we paid the round trip anyway:
         count the miss and fetch a local replica in the background. *)
      Metrics.incr (nm cl node).m_cache_miss;
      cache_fetch ?ctx cl node (Capability.name cap) ~from_node
    end
  end

(* Send the request to [dst] — and speculatively to every site in
   [clones] — and wait for the outcome.  A cloned request shares one
   id across its whole fan-out: the first real result wins and every
   other site is sent an urgent [Cancel].  A non-cloned request that
   outruns the windowed latency quantile is hedged: the same request
   is re-issued (urgently, same id) without abandoning the original,
   and the serving side's idempotence table drops whichever copy
   arrives second. *)
let send_request_and_wait ?ctx cl node ~dst ~clones ~deadline ~may_activate
    ~span cap ~op args =
  let inv_id = new_request_id node in
  let name = Capability.name cap in
  let request ~to_site =
    Message.Inv_request
      {
        inv_id;
        target = name;
        op;
        args;
        presented = Capability.rights cap;
        reply_to = node.nd_id;
        hops = 0;
        (* Only the primary may reincarnate a passive copy: a clone
           waking its own activation at every site would multiply the
           object. *)
        may_activate = may_activate && to_site = dst;
        span;
      }
  in
  cl.n_remote <- cl.n_remote + 1;
  Metrics.incr (nm cl node).m_remote;
  (match span with
  | Some sp ->
    Span.note_remote sp;
    (* Transport covers marshalling on both ends, MAC contention and
       forwarding hops; it ends when the target enqueues the work. *)
    Span.enter sp Span.Transport ~at:(Engine.now cl.eng)
  | None -> ());
  let t0 = Engine.now cl.eng in
  let finish ~from_node outcome =
    match outcome with
    | None ->
      (* The node we trusted never answered: distrust the cached
         location so the next attempt re-locates instead of sending
         into the void again. *)
      Name.Table.remove node.nd_hints name;
      Name.Table.remove node.nd_forward name;
      `Result (Error Error.Timeout)
    | Some (Inv_result (r, frozen_hint)) ->
      hedge_observe cl (Time.diff (Engine.now cl.eng) t0);
      absorb_reply ?ctx cl node ~from_node cap r frozen_hint;
      `Result r
    | Some Inv_nacked -> `Nacked
  in
  if clones = [] then begin
    let pr = Promise.create cl.eng in
    add_pending node inv_id.Message.seq (P_invoke pr);
    consume node
      (Costs.copy_cost (costs node) ~bytes:(Value.list_size_bytes args));
    send_msg ?ctx cl node ~dst (request ~to_site:dst);
    let hedge_after =
      if not cl.opts.speculate.Api.sp_hedge then None
      else
        match (hedge_threshold cl, remaining cl.eng deadline) with
        | None, _ -> None
        | Some h, Some left when Time.(left <= h) -> None
        | (Some _ as h), _ -> h
    in
    let outcome =
      match hedge_after with
      | None -> Promise.await ?timeout:(remaining cl.eng deadline) pr
      | Some h -> (
        match Promise.await ~timeout:h pr with
        | Some _ as o -> o
        | None ->
          (* The attempt has outrun the recent latency quantile.
             Prefer an alternative site known to serve this name;
             otherwise re-send to the same one (a second chance for a
             dropped or delayed transfer). *)
          let hedge_dst =
            match
              Reliability.fanout ~primary:dst
                ~candidates:
                  (List.filter
                     (fun s -> s <> node.nd_id)
                     (Option.value ~default:[]
                        (Name.Table.find_opt node.nd_clone_sites name)))
                ~max_extra:1
            with
            | alt :: _ -> alt
            | [] -> dst
          in
          Metrics.incr (nm cl node).m_hedges;
          ignore (jrecord cl node ?ctx (Journal.Hedge { op; dst = hedge_dst }));
          consume node
            (Costs.copy_cost (costs node) ~bytes:(Value.list_size_bytes args));
          send_msg_now ?ctx cl node ~dst:hedge_dst (request ~to_site:hedge_dst);
          Promise.await ?timeout:(remaining cl.eng deadline) pr)
    in
    Hashtbl.remove node.nd_pending inv_id.Message.seq;
    finish ~from_node:dst outcome
  end
  else begin
    (* Speculative fan-out: primary first, then the clone sites. *)
    let sites = dst :: clones in
    let count = List.length sites in
    let pr = Promise.create cl.eng in
    add_pending node inv_id.Message.seq
      (P_clone { cp_pr = pr; cp_count = count; cp_nacks = 0 });
    Metrics.incr (nm cl node).m_clone_fanouts;
    ignore (jrecord cl node ?ctx (Journal.Clone_fanout { op; sites = count }));
    List.iter
      (fun site ->
        consume node
          (Costs.copy_cost (costs node) ~bytes:(Value.list_size_bytes args));
        send_msg ?ctx cl node ~dst:site (request ~to_site:site))
      sites;
    let outcome = Promise.await ?timeout:(remaining cl.eng deadline) pr in
    Hashtbl.remove node.nd_pending inv_id.Message.seq;
    let winner =
      match outcome with
      | Some (Inv_result _, won) -> Some won
      | Some (Inv_nacked, _) | None -> None
    in
    (match winner with
    | Some won ->
      ignore (jrecord cl node ?ctx (Journal.Clone_win { op; winner = won }))
    | None -> ());
    (* Retract the losers — all sites, when nobody won.  Urgent sends,
       so a cancellation is never batched behind the work it cancels. *)
    List.iter
      (fun site ->
        if Some site <> winner then begin
          Metrics.incr (nm cl node).m_clone_cancels;
          ignore (jrecord cl node ?ctx (Journal.Clone_cancel { dst = site }));
          send_msg_now ?ctx cl node ~dst:site
            (Message.Cancel { inv_id; target = name })
        end)
      sites;
    finish
      ~from_node:(Option.value ~default:dst winner)
      (Option.map fst outcome)
  end

let dispatch_local_and_wait ?ctx cl obj ~deadline ~span cap ~op args =
  let pr = Promise.create cl.eng in
  enqueue_work cl obj
    {
      w_op = op;
      w_args = args;
      w_presented = Capability.rights cap;
      w_route = Reply_local pr;
      w_span = span;
      w_ctx = ctx;
    };
  match Promise.await ?timeout:(remaining cl.eng deadline) pr with
  | Some r -> r
  | None -> Error Error.Timeout

let do_invoke cl ~from ?timeout ?(retry = Api.no_retry) ?parent cap ~op args =
  let node = node_of cl from in
  if not node.nd_up then Error Error.Node_down
  else begin
    let name = Capability.name cap in
    let tname = Name.to_string name in
    Metrics.incr (nm cl node).m_inv;
    (* Feed the origin node's hot-object sketch; the rendered name is
       shared with the span and the journal event below, so the health
       plane adds no allocation of its own here. *)
    (match cl.c_health with
    | Some hp -> Topk.add hp.hp_topk.(from) tname
    | None -> ());
    let parent =
      match parent with Some _ as p -> p | None -> current_span cl
    in
    let sp =
      Span.start cl.c_spans ?parent ~op ~target:tname ~origin:from
        ~at:(Engine.now cl.eng) ()
    in
    let span = Some sp in
    (* The invocation's root journal event: every send, retry and
       downstream handler event hangs off this trace id. *)
    let ictx =
      Tracectx.root
        (jrecord cl node (Journal.Inv_begin { op; target = tname }))
    in
    consume node (costs node).Costs.invoke_request_cpu;
    (* Journalled at the moment an attempt abandons the directory for
       this name: invariant 6 requires every Dir_hit/Dir_miss to end in
       Inv_end or one of these. *)
    let dir_fallback () =
      Metrics.incr (nm cl node).m_dir_fallbacks;
      ignore
        (jrecord cl node ~ctx:ictx (Journal.Dir_fallback { target = tname }))
    in
    let rec attempt ~deadline ~nack_budget ~use_dir =
      (* A nack retry re-opens the Locate phase. *)
      Span.enter sp Span.Locate ~at:(Engine.now cl.eng);
      consume node (costs node).Costs.locate_lookup_cpu;
      (* Local fast paths: active object, replica, or authoritative
         passive snapshot on this very node. *)
      match Name.Table.find_opt node.nd_active name with
      | Some obj -> dispatch_local_and_wait ~ctx:ictx cl obj ~deadline ~span cap ~op args
      | None -> (
        match Name.Table.find_opt node.nd_replicas name with
        | Some obj ->
          dispatch_local_and_wait ~ctx:ictx cl obj ~deadline ~span cap ~op args
        | None -> (
        match
          if cl.opts.use_replica_cache then
            Name.Table.find_opt node.nd_cache name
          else None
        with
        | Some obj ->
          Metrics.incr (nm cl node).m_cache_hit;
          dispatch_local_and_wait ~ctx:ictx cl obj ~deadline ~span cap ~op args
        | None -> (
          let local_passive =
            match Name.Table.find_opt node.nd_store name with
            | Some snap when snap.ss_passive -> true
            | Some _ | None -> false
          in
          if local_passive then
            match activate cl node name with
            | Ok obj ->
              dispatch_local_and_wait ~ctx:ictx cl obj ~deadline ~span cap ~op args
            | Error e -> Error e
          else begin
            (* Remote: follow a hint if we have one, else locate. *)
            let hinted =
              if not cl.opts.use_hint_cache then None
              else
                match Name.Table.find_opt node.nd_hints name with
                | Some h when h <> node.nd_id -> Some h
                | Some _ | None -> (
                  match Name.Table.find_opt node.nd_forward name with
                  | Some h when h <> node.nd_id -> Some h
                  | Some _ | None -> None)
            in
            (match hinted with
            | Some _ -> Metrics.incr (nm cl node).m_hint_hit
            | None -> Metrics.incr (nm cl node).m_hint_miss);
            (* The broadcast locate: the authoritative path, and the
               directory's fallback.  Finding the active home here
               repairs the registry for the next requester. *)
            let broadcast_locate () =
              match locate ~ctx:ictx cl node name ~deadline with
              | `Found (at_node, residence) when at_node <> node.nd_id ->
                if cl.opts.use_hint_cache then
                  Name.Table.replace node.nd_hints name at_node;
                if residence = Message.Res_active then
                  dir_publish ~ctx:ictx cl node name ~home:at_node
                    ~replicas:[];
                (* Choosing a passive site after a full quiet window
                   authorises that site to reincarnate. *)
                `Send (at_node, residence = Message.Res_passive, false)
              | `Found (_, Message.Res_passive) ->
                (* Our own snapshot is the newest surviving state:
                   the quiet window authorises reincarnating it
                   right here. *)
                `Activate
              | `Found (_, _) ->
                (* We were told the object is on this very node: it
                   must have just (re)activated here; retry the local
                   fast paths. *)
                `Retry
              | `Nowhere -> `Nowhere
              | `Deadline -> `Deadline
            in
            let dst =
              match hinted with
              | Some h -> `Send (h, false, false)
              | None ->
                if not (use_dir && dir_enabled cl) then broadcast_locate ()
                else (
                  match dir_resolve ~ctx:ictx cl node name ~deadline with
                  | `Hit (dhome, replicas) when dhome <> node.nd_id ->
                    Metrics.incr (nm cl node).m_dir_hits;
                    ignore
                      (jrecord cl node ~ctx:ictx
                         (Journal.Dir_hit { target = tname; home = dhome }));
                    List.iter (learn_clone_site cl node name) replicas;
                    (* A directory answer is a hint, never activation
                       authority: only a full broadcast quiet window
                       may authorise reincarnation. *)
                    `Send (dhome, false, true)
                  | `Hit _ ->
                    (* The registry names this very node, but every
                       local fast path already missed: stale
                       self-entry, fall back. *)
                    dir_fallback ();
                    broadcast_locate ()
                  | `Miss ->
                    ignore
                      (jrecord cl node ~ctx:ictx
                         (Journal.Dir_miss { target = tname }));
                    dir_fallback ();
                    broadcast_locate ()
                  | `Dead ->
                    dir_fallback ();
                    broadcast_locate ())
            in
            match dst with
            | `Nowhere -> Error Error.No_such_object
            | `Deadline -> Error Error.Timeout
            | `Activate -> (
              match activate cl node name with
              | Ok obj ->
                dispatch_local_and_wait ~ctx:ictx cl obj ~deadline ~span cap ~op args
              | Error e -> Error e)
            | `Retry ->
              if nack_budget <= 0 then Error Error.No_such_object
              else attempt ~deadline ~nack_budget:(nack_budget - 1) ~use_dir
            | `Send (dst, may_activate, via_dir) -> (
              (* Clone set: every other site known to serve reads of
                 this (frozen, replicated) name.  Empty for ordinary
                 objects, so the single-destination path is untouched. *)
              let clones =
                if not cl.opts.speculate.Api.sp_clone then []
                else
                  match Name.Table.find_opt node.nd_clone_sites name with
                  | None -> []
                  | Some sites ->
                    Reliability.fanout ~primary:dst
                      ~candidates:
                        (List.filter (fun s -> s <> node.nd_id) sites)
                      ~max_extra:(cl.opts.speculate.Api.sp_max_sites - 1)
              in
              match
                send_request_and_wait ~ctx:ictx cl node ~dst ~clones ~deadline
                  ~may_activate ~span cap ~op args
              with
              | `Result r -> r
              | `Nacked ->
                Metrics.incr (nm cl node).m_nacks;
                Name.Table.remove node.nd_hints name;
                Name.Table.remove node.nd_forward name;
                if via_dir then begin
                  (* The shard pointed at a node that cannot serve.
                     Lazily invalidate its entry (it drops it only if
                     it still names this home) and retry on the
                     broadcast path.  With the invalidation disarmed
                     (test scaffolding) the stale entry keeps winning
                     until the nack budget runs out — the regression
                     this fallback exists to prevent. *)
                  Metrics.incr (nm cl node).m_dir_nacks;
                  if cl.c_dir_nack_fallback then begin
                    dir_invalidate ~ctx:ictx cl node name ~stale_home:dst;
                    dir_fallback ()
                  end
                end;
                if nack_budget <= 0 then Error Error.No_such_object
                else
                  attempt ~deadline ~nack_budget:(nack_budget - 1)
                    ~use_dir:
                      (use_dir && not (via_dir && cl.c_dir_nack_fallback)))
          end)))
    in
    (* [?timeout] bounds each attempt; a timed-out attempt may be
       re-issued under the caller's retry policy after a capped
       exponential backoff.  Only Timeout retries — any other error is
       a definitive answer. *)
    let rec tries i =
      let deadline = deadline_of ?timeout cl.eng in
      match attempt ~deadline ~nack_budget:2 ~use_dir:(dir_enabled cl) with
      | Error Error.Timeout when i < retry.Api.r_max ->
        Metrics.incr (nm cl node).m_retries;
        ignore
          (jrecord cl node ~ctx:ictx (Journal.Retry { op; attempt = i + 1 }));
        Engine.delay (Api.backoff retry i);
        tries (i + 1)
      | r -> r
    in
    let r = tries 0 in
    let outcome =
      match r with Ok _ -> "ok" | Error e -> Error.to_string e
    in
    ignore (jrecord cl node ~ctx:ictx (Journal.Inv_end { op; outcome }));
    Span.finish sp ~outcome ~at:(Engine.now cl.eng);
    Metrics.observe_time cl.c_lat (Span.duration sp);
    (* Online profile feed: fold the finished span's phase times into
       the cluster-wide category counters the latency-share watchdogs
       read.  Coarser than the journal walk (a span cannot split wire
       from coalesce) but available every tick. *)
    (match cl.c_profile with
    | None -> ()
    | Some pc ->
      let ns p = Time.to_ns (Span.phase_time sp p) in
      Metrics.add pc.pc_directory (ns Span.Locate);
      Metrics.add pc.pc_wire (ns Span.Transport + ns Span.Reply);
      Metrics.add pc.pc_queue (ns Span.Queue + ns Span.Dispatch);
      Metrics.add pc.pc_service (ns Span.Execute);
      Metrics.add pc.pc_total (Time.to_ns (Span.duration sp)));
    r
  end

(* Create an object on a possibly-remote node. *)
let do_create cl ~from ~node:target ~type_name init =
  let origin = node_of cl from in
  if not origin.nd_up then Error Error.Node_down
  else if target = from then do_create_local cl origin type_name init
  else begin
    let tnode = node_of cl target in
    ignore tnode;
    let req_id = new_request_id origin in
    let pr = Promise.create cl.eng in
    add_pending origin req_id.Message.seq (P_create pr);
    consume origin
      (Costs.copy_cost (costs origin) ~bytes:(Value.size_bytes init));
    send_msg cl origin ~dst:target
      (Message.Create_request { req_id; type_name; init; reply_to = from });
    let r = Promise.await ~timeout:ack_timeout pr in
    Hashtbl.remove origin.nd_pending req_id.Message.seq;
    match r with None -> Error Error.Node_down | Some result -> result
  end

(* -------------------------------------------------------------------- *)
(* Destruction: erase one node's knowledge of an object, killing any
   local replica.  (The primary, if any, is dismantled by the
   destroyer before the notices go out.) *)

let forget_object cl node target =
  (match Name.Table.find_opt node.nd_replicas target with
  | Some replica ->
    replica.ob_status <- Dead;
    let works = outstanding_works replica in
    List.iter (fun w -> fail_work cl replica w Error.No_such_object) works;
    unregister cl replica;
    kill_object_procs cl replica
  | None -> ());
  invalidate_cached cl node target;
  Name.Table.remove node.nd_store target;
  Name.Table.remove node.nd_hints target;
  Name.Table.remove node.nd_forward target;
  Name.Table.remove node.nd_clone_sites target;
  (* The destroy notice reaches the registry shard like everyone else:
     its entry dies with the object. *)
  Name.Table.remove node.nd_dir target

(* -------------------------------------------------------------------- *)
(* Message handling *)

(* Deliver an error reply for a request handled at this node when no
   object record exists to route through. *)
let deliver_reply_at cl node route result =
  match route with
  | Reply_local pr -> ignore (Promise.fill pr result)
  | Reply_remote { requester; inv_id } ->
    if requester = node.nd_id then
      resolve_inv_pending cl node ~src:node.nd_id inv_id.Message.seq
        (Inv_result (result, false))
    else
      send_msg cl node ~dst:requester
        (Message.Inv_reply { inv_id; result; frozen_hint = false })

let handle_inv_request ?ctx cl node ~src:_ r =
  match r with
  | Message.Inv_request
      { inv_id; target; op; args; presented; reply_to; hops; may_activate;
        span }
    -> (
    let route = Reply_remote { requester = reply_to; inv_id } in
    let w =
      { w_op = op; w_args = args; w_presented = presented; w_route = route;
        w_span = span; w_ctx = ctx }
    in
    let nack () =
      send_msg ?ctx cl node ~dst:reply_to
        (Message.Inv_nack { inv_id; target })
    in
    (* Exactly-once gate: cloning, hedging and the fault injector's
       duplicate verdict all deliver one logical request more than
       once.  A request we have already queued, started or had
       cancelled is dropped silently — the first copy answers (or its
       cancellation already told the requester's bookkeeping the
       answer does not matter). *)
    let fresh =
      match Dedup.find node.nd_recent inv_id with
      | Some (Dedup.Queued | Dedup.Started | Dedup.Cancelled) ->
        Metrics.incr (nm cl node).m_dedup;
        false
      | None -> true
    in
    let admit obj =
      Dedup.note_queued node.nd_recent inv_id;
      consume node
        (Costs.copy_cost (costs node) ~bytes:(Value.list_size_bytes args));
      enqueue_work cl obj w
    in
    if fresh then begin
    consume node (costs node).Costs.locate_lookup_cpu;
    match Name.Table.find_opt node.nd_active target with
    | Some obj -> admit obj
    | None -> (
      match Name.Table.find_opt node.nd_replicas target with
      | Some obj -> admit obj
      | None -> (
        let passive_here =
          match Name.Table.find_opt node.nd_store target with
          | Some snap -> snap.ss_passive || may_activate
          | None -> false
        in
        if passive_here then
          match activate cl node target with
          | Ok obj -> admit obj
          | Error Error.Disk_failed ->
            (* We cannot serve from a failed store; nack so the
               requester re-locates and finds a healthier checksite. *)
            nack ()
          | Error e -> deliver_reply_at cl node route (Error e)
        else begin
          let forward_to =
            match Name.Table.find_opt node.nd_forward target with
            | Some f -> Some f
            | None -> Name.Table.find_opt node.nd_hints target
          in
          match forward_to with
          | Some next when hops < max_hops && next <> node.nd_id ->
            send_msg ?ctx cl node ~dst:next
              (Message.Inv_request
                 {
                   inv_id;
                   target;
                   op;
                   args;
                   presented;
                   reply_to;
                   hops = hops + 1;
                   may_activate;
                   span;
                 });
            (* Repair the requester's knowledge of the new location. *)
            if reply_to <> node.nd_id then
              send_msg ?ctx cl node ~dst:reply_to
                (Message.Hint_update { target; at_node = next })
          | Some _ | None -> nack ()
        end))
    end)
  | _ -> raise (Fatal "handle_inv_request: not an invocation request")

let handle_locate_request ?ctx cl node req =
  match req with
  | Message.Locate_request { req_id; target; reply_to } ->
    let answer ?(version = 0) residence =
      send_msg ?ctx cl node ~dst:reply_to
        (Message.Locate_reply
           { req_id; target; at_node = node.nd_id; residence; version })
    in
    if Name.Table.mem node.nd_active target then answer Message.Res_active
    else if Name.Table.mem node.nd_replicas target then
      answer Message.Res_replica
    else if node.nd_disk_ok then (
      (* A failed disk cannot reincarnate: stay silent so the
         requester picks a checksite that can.  The answer carries the
         snapshot's version so the requester reincarnates from the
         newest surviving state, not the first responder. *)
      match Name.Table.find_opt node.nd_store target with
      | Some snap -> answer ~version:snap.ss_version Message.Res_passive
      | None -> ())
  | _ -> raise (Fatal "handle_locate_request: wrong message")

let on_message cl node ~src { Message.tr_ctx; tr_msg = msg } =
  if node.nd_up then begin
    (* Journal the arrival linked to the sender's Send event, then hand
       every follow-on send the same trace with this Recv as parent. *)
    let recv_id =
      jrecord cl node ?ctx:tr_ctx
        (Journal.Recv { msg = Message.describe msg; src })
    in
    let hctx =
      let trace =
        match tr_ctx with Some c -> Tracectx.trace c | None -> recv_id
      in
      Tracectx.make ~trace ~parent:recv_id
    in
    match msg with
    | Message.Inv_request _ ->
      ignore
        (spawn_kproc cl node ~name:"k:inv_req" (fun () ->
             handle_inv_request ~ctx:hctx cl node ~src msg))
    | Message.Inv_reply { inv_id; result; frozen_hint } ->
      (* Same origin discipline as the nack below: sequence numbers
         are node-local, so only a reply echoing one of OUR request
         ids may resolve pending state.  A foreign-origin reply —
         e.g. a cancelled clone's answer finally surfacing somewhere
         it was never addressed — must not resolve an unrelated
         request that happens to share the sequence number. *)
      if inv_id.Message.origin = node.nd_id then
        resolve_inv_pending cl node ~src inv_id.Message.seq
          (Inv_result (result, frozen_hint))
      else Metrics.incr (nm cl node).m_orphans
    | Message.Inv_nack { inv_id; target } ->
      (* Nack-after-crash: whatever routed us there is stale.  Purge
         the hint even when the pending entry already timed out, or a
         crashed-and-forgotten location would be re-trusted forever.
         The same evidence invalidates any cached frozen replica and
         evicts the nacking site from the clone set.
         Only a nack echoing one of OUR request ids may resolve
         pending state: sequence numbers are node-local, so a foreign
         origin's seq can collide with an unrelated in-flight request
         on this node. *)
      Name.Table.remove node.nd_hints target;
      Name.Table.remove node.nd_forward target;
      invalidate_cached cl node target;
      forget_clone_site node target src;
      if inv_id.Message.origin = node.nd_id then
        resolve_inv_pending cl node ~src inv_id.Message.seq Inv_nacked
    | Message.Cancel { inv_id; target = _ } -> (
      (* A requester withdrawing its clone (or its whole fan-out):
         queued work is dropped at dispatch, started work is left to
         finish — its reply lands in the requester's orphan
         accounting.  A cancel that overtook its own request (urgent
         sends bypass the coalescer) is remembered so the request is
         dropped on arrival. *)
      match Dedup.cancel node.nd_recent inv_id with
      | `Retracted | `Noted | `Too_late -> ())
    | Message.Hint_update { target; at_node } ->
      Name.Table.replace node.nd_hints target at_node
    | Message.Locate_request _ -> handle_locate_request ~ctx:hctx cl node msg
    | Message.Locate_reply { req_id; target; at_node; residence; version } -> (
      (* A replica answer teaches the clone set — even when the locate
         already resolved (the home usually answers first, and
         discovery broadcasts keep no pending entry at all): this site
         serves reads of the (frozen) name. *)
      if residence = Message.Res_replica then
        learn_clone_site cl node target at_node;
      match Hashtbl.find_opt node.nd_pending req_id.Message.seq with
      | Some (P_locate st) -> (
        match residence with
        | Message.Res_active ->
          ignore (Promise.fill st.loc_active (at_node, residence))
        | Message.Res_replica ->
          st.loc_candidates <-
            (at_node, residence, version) :: st.loc_candidates
        | Message.Res_passive ->
          st.loc_candidates <-
            (at_node, residence, version) :: st.loc_candidates)
      | Some _ | None -> ())
    | Message.Create_request { req_id; type_name; init; reply_to } ->
      ignore
        (spawn_kproc cl node ~name:"k:create" (fun () ->
             let result = do_create_local cl node type_name init in
             send_msg ~ctx:hctx cl node ~dst:reply_to
               (Message.Create_reply { req_id; result })))
    | Message.Create_reply { req_id; result } -> (
      match take_pending node req_id.Message.seq with
      | Some (P_create pr) -> ignore (Promise.fill pr result)
      | Some _ -> raise (Fatal "pending kind mismatch for create reply")
      | None -> ())
    | Message.Move_transfer
        { target; type_name; repr; frozen = _; reliability = _; from_node;
          transfer_id } ->
      ignore
        (spawn_kproc cl node ~name:"k:move_in" (fun () ->
             let accepted =
               match Hashtbl.find_opt cl.types type_name with
               | None -> false
               | Some tm -> (
                 match load_type_code cl node tm with
                 | Error _ -> false
                 | Ok () -> (
                   let footprint = object_footprint tm repr in
                   match Memory.reserve node.nd_mem footprint with
                   | Error `Out_of_memory -> false
                   | Ok () ->
                     consume node (costs node).Costs.activation_fixed_cpu;
                     true))
             in
             ignore target;
             send_msg ~ctx:hctx cl node ~dst:from_node
               (Message.Move_ack { transfer_id; accepted })))
    | Message.Move_ack { transfer_id; accepted } -> (
      match take_pending node transfer_id.Message.seq with
      | Some (P_ack pr) -> ignore (Promise.fill pr accepted)
      | Some _ -> raise (Fatal "pending kind mismatch for move ack")
      | None -> ())
    | Message.Ckpt_write
        { req_id; target; type_name; repr; version; reliability; frozen;
          reply_to } ->
      ignore
        (spawn_kproc cl node ~name:"k:ckpt" (fun () ->
             let ok =
               write_snapshot cl node ~target ~type_name ~repr ~version
                 ~reliability ~frozen ~passive:false
             in
             send_msg ~ctx:hctx cl node ~dst:reply_to
               (Message.Ckpt_ack { req_id; ok })))
    | Message.Ckpt_delta
        { req_id; target; type_name = _; delta; base_version; version;
          reliability; frozen; reply_to } ->
      ignore
        (spawn_kproc cl node ~name:"k:ckpt_delta" (fun () ->
             let ok =
               apply_delta_snapshot cl node ~target ~base_version ~version
                 ~delta ~reliability ~frozen
             in
             send_msg ~ctx:hctx cl node ~dst:reply_to
               (Message.Ckpt_ack { req_id; ok })))
    | Message.Ckpt_ack { req_id; ok } -> (
      match take_pending node req_id.Message.seq with
      | Some (P_ack pr) -> ignore (Promise.fill pr ok)
      | Some _ -> raise (Fatal "pending kind mismatch for ckpt ack")
      | None -> ())
    | Message.Ckpt_delete { target } -> Name.Table.remove node.nd_store target
    | Message.Ckpt_mark { target; passive; version } -> (
      (* A mark stamped below the stored snapshot's version is stale
         (reordered behind a later checkpoint): ignore it rather than
         flip the authority bit on newer state. *)
      match Name.Table.find_opt node.nd_store target with
      | Some snap when version >= snap.ss_version ->
        snap.ss_passive <- passive
      | Some _ | None -> ())
    | Message.Replica_install { target; type_name; repr; transfer_id; from_node }
      ->
      ignore
        (spawn_kproc cl node ~name:"k:replica" (fun () ->
             let accepted =
               match Hashtbl.find_opt cl.types type_name with
               | None -> false
               | Some tm -> (
                 match load_type_code cl node tm with
                 | Error _ -> false
                 | Ok () -> (
                   let footprint = object_footprint tm repr in
                   match Memory.reserve node.nd_mem footprint with
                   | Error `Out_of_memory -> false
                   | Ok () ->
                     if Name.Table.mem node.nd_replicas target then begin
                       (* Already replicated here; release the double
                          reservation and accept idempotently. *)
                       Memory.release node.nd_mem footprint;
                       true
                     end
                     else begin
                       let obj =
                         build_obj cl ~name:target ~tm ~repr ~frozen:true
                           ~reliability:Reliability.Local ~home:node.nd_id
                           ~is_replica:true ~mem:footprint
                       in
                       spawn_coordinator cl obj;
                       Name.Table.replace node.nd_replicas target obj;
                       true
                     end))
             in
             send_msg ~ctx:hctx cl node ~dst:from_node
               (Message.Replica_ack { transfer_id; accepted })))
    | Message.Replica_ack { transfer_id; accepted } -> (
      match take_pending node transfer_id.Message.seq with
      | Some (P_ack pr) -> ignore (Promise.fill pr accepted)
      | Some _ -> raise (Fatal "pending kind mismatch for replica ack")
      | None -> ())
    | Message.Destroy_notice { target } -> forget_object cl node target
    | Message.Cache_fetch { req_id; target; reply_to } ->
      (* Serve the frozen representation if we still hold one; [None]
         tells the requester its hint went stale and nothing is
         cached. *)
      let payload =
        match Name.Table.find_opt node.nd_active target with
        | Some obj when obj.ob_frozen && obj.ob_status = Running ->
          Some (Typemgr.name obj.ob_type, obj.ob_repr)
        | Some _ | None -> (
          match Name.Table.find_opt node.nd_replicas target with
          | Some obj when obj.ob_status = Running ->
            Some (Typemgr.name obj.ob_type, obj.ob_repr)
          | Some _ | None -> None)
      in
      send_msg ~ctx:hctx cl node ~dst:reply_to
        (Message.Cache_data { req_id; target; payload })
    | Message.Cache_data { req_id; target = _; payload } -> (
      match take_pending node req_id.Message.seq with
      | Some (P_cache pr) -> ignore (Promise.fill pr payload)
      | Some _ -> raise (Fatal "pending kind mismatch for cache data")
      | None -> ())
    | Message.Cache_invalidate { target } ->
      (* The version bump from unfreeze.  Purge location knowledge,
         the cached replica and the clone set (the object can mutate
         again, so speculative reads are over); carries no request id
         and never touches [nd_pending], so it cannot collide with an
         in-flight request. *)
      Name.Table.remove node.nd_hints target;
      Name.Table.remove node.nd_forward target;
      Name.Table.remove node.nd_clone_sites target;
      invalidate_cached cl node target
    | Message.Dir_put { req_id; target; home; replicas; lease } ->
      (* Our own request id coming back is the shard's positive reply
         to a [Dir_get]; anything else is a publish and this node is
         the shard.  The origin check is load-bearing: sequence
         numbers are node-local, so a foreign publish must never
         resolve an unrelated pending entry here. *)
      if req_id.Message.origin = node.nd_id then (
        match take_pending node req_id.Message.seq with
        | Some (P_dir pr) -> ignore (Promise.fill pr (Some (home, replicas)))
        | Some _ -> raise (Fatal "pending kind mismatch for dir reply")
        | None -> () (* answer outlived its window; the fallback ran *))
      else dir_store node ~target ~home ~replicas ~lease
    | Message.Dir_get { req_id; target; reply_to } -> (
      (* Serve the registry.  The reply echoes the requester's own
         request id, so it routes to the pending lookup and nothing
         else.  An expired entry is dropped, not served: better one
         broadcast than a misdirected send to a long-dead home. *)
      match Name.Table.find_opt node.nd_dir target with
      | Some e when dir_lease_valid cl e.de_lease ->
        send_msg ~ctx:hctx cl node ~dst:reply_to
          (Message.Dir_put
             {
               req_id;
               target;
               home = e.de_home;
               replicas = e.de_replicas;
               lease = e.de_lease;
             })
      | entry ->
        (match entry with
        | Some _ ->
          Name.Table.remove node.nd_dir target;
          Metrics.incr (nm cl node).m_dir_leases
        | None -> ());
        Metrics.incr (nm cl node).m_dir_misses;
        send_msg ~ctx:hctx cl node ~dst:reply_to
          (Message.Dir_nack { req_id; target; home = -1 }))
    | Message.Dir_nack { req_id; target; home } ->
      (* Same origin discipline as [Dir_put]: our own id is the
         shard's miss reply; a foreign id is a requester's lazy
         NACK-on-wrong-home invalidation, honoured only while the
         entry still names the home the requester found stale. *)
      if req_id.Message.origin = node.nd_id then (
        match take_pending node req_id.Message.seq with
        | Some (P_dir pr) -> ignore (Promise.fill pr None)
        | Some _ -> raise (Fatal "pending kind mismatch for dir nack")
        | None -> ())
      else (
        match Name.Table.find_opt node.nd_dir target with
        | Some e when e.de_home = home -> Name.Table.remove node.nd_dir target
        | Some _ | None -> ())
    | Message.Epoch_announce { epoch; members = _ } ->
      (* Adopt a newer membership view.  Epochs are totally ordered,
         so the highest one wins regardless of delivery order — a
         delayed or duplicated announce from a past reconfiguration is
         simply ignored.  The ring for the adopted epoch was cached
         cluster-side by the initiator; the member list on the wire is
         what a real kernel would rebuild it from. *)
      if epoch > node.nd_epoch then begin
        node.nd_epoch <- epoch;
        Metrics.incr (nm cl node).m_epoch_bumps;
        ignore (jrecord cl node ~ctx:hctx (Journal.Epoch_bump { epoch }))
      end
  end

(* -------------------------------------------------------------------- *)
(* Tying the recursive knot *)

let () = ref_do_invoke := do_invoke
let () = ref_do_crash := do_crash
let () = ref_do_checkpoint := do_checkpoint
let () = ref_do_checkpoint_async := do_checkpoint_async
let () = ref_do_move := do_move
let () = ref_do_replicate := do_replicate
let () = ref_do_create := do_create

(* -------------------------------------------------------------------- *)
(* Cluster construction and public operations *)

(* The paper's node abstraction (sec. 4.3): each node machine is itself
   reachable as an Eden object supplying resource information.  Node
   objects are kernel-resident: their code and structures live outside
   the object memory budget, and they are recreated under the same name
   when a machine restarts. *)
let node_type_for cl =
  let open Api in
  let ( let* ) = Result.bind in
  Typemgr.make_exn ~name:"eden_node" ~code_bytes:0 ~short_term_bytes:0
    [
      Typemgr.operation "info" ~mutates:false (fun ctx args ->
          let* () = no_args args in
          let node = cl.nodes.(ctx.node_id ()) in
          reply
            [
              Value.Int (Machine.config node.nd_machine).Machine.gdps;
              Value.Int (Memory.capacity node.nd_mem);
              Value.Int (Memory.available node.nd_mem);
              Value.Int (Name.Table.length node.nd_active);
            ]);
      Typemgr.operation "ping" ~mutates:false (fun _ args ->
          let* () = no_args args in
          reply []);
    ]

let install_node_object cl node name =
  match Hashtbl.find_opt cl.types "eden_node" with
  | None -> raise (Fatal "node type not registered")
  | Some tm ->
    Hashtbl.replace node.nd_types_loaded "eden_node" ();
    let obj =
      build_obj cl ~name ~tm ~repr:Value.Unit ~frozen:false
        ~reliability:Reliability.Local ~home:node.nd_id ~is_replica:false
        ~mem:0
    in
    spawn_coordinator cl obj;
    Name.Table.replace node.nd_active name obj

(* Sampled instruments: read pre-existing component counters (engine,
   MAC layer, hardware) at snapshot time instead of threading the
   registry through those layers. *)
let register_collectors cl =
  let reg = cl.c_metrics in
  Metrics.register_counter_fn reg "sim.events" (fun () ->
      Engine.events_processed cl.eng);
  Metrics.register_counter_fn reg "sim.processes_spawned" (fun () ->
      Engine.processes_spawned cl.eng);
  Metrics.register_gauge_fn reg "sim.processes_live" (fun () ->
      float_of_int (Engine.live_processes cl.eng));
  Metrics.register_gauge_fn reg "sim.runnable" (fun () ->
      float_of_int (Engine.runnable_processes cl.eng));
  Metrics.register_counter_fn reg "net.bridge_forwards" (fun () ->
      Transport.bridge_forwards cl.c_lan);
  Metrics.register_counter_fn reg "net.coalesced_batches" (fun () ->
      Transport.coalesced_batches cl.c_lan);
  Metrics.register_counter_fn reg "net.coalesced_messages" (fun () ->
      Transport.coalesced_messages cl.c_lan);
  for seg = 0 to Transport.segment_count cl.c_lan - 1 do
    let labels = [ ("segment", string_of_int seg) ] in
    let c name field =
      Metrics.register_counter_fn reg ~labels name (fun () ->
          field (Transport.segment_counters cl.c_lan).(seg))
    in
    let open Eden_net in
    c "net.frames_sent" (fun k -> k.Lan.frames_sent);
    c "net.frames_broadcast" (fun k -> k.Lan.frames_broadcast);
    c "net.frames_delivered" (fun k -> k.Lan.frames_delivered);
    c "net.frames_dropped" (fun k -> k.Lan.frames_dropped);
    c "net.bytes_delivered" (fun k -> k.Lan.payload_bytes_delivered);
    c "net.collisions" (fun k -> k.Lan.collision_events);
    c "net.backoffs" (fun k -> k.Lan.backoffs)
  done;
  Array.iter
    (fun node ->
      let labels = [ ("node", string_of_int node.nd_id) ] in
      let g name f = Metrics.register_gauge_fn reg ~labels name f in
      let c name f = Metrics.register_counter_fn reg ~labels name f in
      let machine = node.nd_machine in
      g "hw.cpu_utilisation" (fun () ->
          let over = Engine.now cl.eng in
          if Time.is_zero over then 0.0
          else Cpu.utilisation (Machine.cpu machine) ~over);
      c "hw.cpu_jobs" (fun () -> Cpu.jobs_completed (Machine.cpu machine));
      g "hw.disk_utilisation" (fun () ->
          let over = Engine.now cl.eng in
          if Time.is_zero over then 0.0
          else Disk.utilisation (Machine.disk machine) ~over);
      c "hw.disk_reads" (fun () -> Disk.reads (Machine.disk machine));
      c "hw.disk_writes" (fun () -> Disk.writes (Machine.disk machine));
      c "hw.disk_bytes_read" (fun () ->
          Disk.bytes_read (Machine.disk machine));
      c "hw.disk_bytes_written" (fun () ->
          Disk.bytes_written (Machine.disk machine));
      g "eden.active_objects" (fun () ->
          float_of_int (Name.Table.length node.nd_active));
      g "eden.mem_available_bytes" (fun () ->
          float_of_int (Memory.available node.nd_mem));
      g "eden.ckpt.async_inflight" (fun () ->
          float_of_int node.nd_ckpt_async);
      (* Depth gauges for the health plane: the deepest coordinator
         mailbox on this node, requests awaiting replies, and what the
         transport is holding (coalescing queues, partial
         reassemblies). *)
      g "eden.queue_depth" (fun () ->
          float_of_int
            (Name.Table.fold
               (fun _ obj acc -> max acc (Mailbox.length obj.ob_queue))
               node.nd_active 0));
      g "eden.pending_requests" (fun () ->
          float_of_int (Hashtbl.length node.nd_pending));
      g "net.queued_messages" (fun () ->
          float_of_int (Transport.queued_messages node.nd_tp));
      g "net.reassembly_pending" (fun () ->
          float_of_int (Transport.reassembly_pending node.nd_tp));
      c "eden.journal.events" (fun () -> Journal.recorded node.nd_journal);
      c "eden.journal.dropped" (fun () -> Journal.dropped node.nd_journal))
    cl.nodes;
  Metrics.register_counter_fn reg "eden.span.late_events" (fun () ->
      Span.late_events cl.c_spans)

let create ?(seed = 42L) ?net ?(options = default_options) ?segments ?coalesce
    ?(journal_cap = default_journal_cap) ?health ?(spares = 0) ~configs () =
  if configs = [] then invalid_arg "Cluster.create: no machine configs";
  if spares < 0 then invalid_arg "Cluster.create: spares must be >= 0";
  if journal_cap < 0 then
    invalid_arg "Cluster.create: journal_cap must be >= 0";
  (match Api.validate_speculate options.speculate with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
  let n_members = List.length configs in
  (* Spares are whole machines racked alongside the members: powered
     and attached to the LAN from boot, but outside the epoch-0 ring
     until [join_node] admits them. *)
  let configs =
    configs
    @ List.init spares (fun i ->
          Machine.default_config ~name:(Printf.sprintf "spare%d" i))
  in
  let n_nodes = List.length configs in
  let segment_sizes =
    match segments with
    | None -> [ n_nodes ]
    | Some sizes ->
      if List.exists (fun s -> s <= 0) sizes then
        invalid_arg "Cluster.create: segment sizes must be positive";
      if List.fold_left ( + ) 0 sizes <> n_members then
        invalid_arg "Cluster.create: segment sizes must sum to node count";
      if spares = 0 then sizes
      else (
        (* Spares share the last segment — an extension of the
           existing wing, not a new bridged one. *)
        let rec extend = function
          | [] -> assert false
          | [ last ] -> [ last + spares ]
          | s :: rest -> s :: extend rest
        in
        extend sizes)
  in
  (* Node id -> segment, in id order. *)
  let segment_of_index =
    let table = Array.make n_nodes 0 in
    let idx = ref 0 in
    List.iteri
      (fun seg size ->
        for _ = 1 to size do
          table.(!idx) <- seg;
          incr idx
        done)
      segment_sizes;
    table
  in
  let eng = Engine.create ~seed ()
  and tr = Trace.create () in
  let lan =
    Transport.create_net ?params:net ?coalesce eng
      ~segments:(List.length segment_sizes)
  in
  let jsink = Journal.sink () in
  let next_index = ref (-1) in
  let nodes =
    Array.of_list
      (List.map
         (fun cfg ->
           incr next_index;
           let machine = Machine.create eng cfg in
           let tp =
             Transport.attach lan
               ~segment:segment_of_index.(!next_index)
               ~name:cfg.Machine.name
           in
           {
             nd_id = Transport.address tp;
             nd_machine = machine;
             nd_tp = tp;
             nd_up = true;
             nd_disk_ok = true;
             nd_mem = Memory.create ~bytes:cfg.Machine.memory_bytes;
             nd_active = Name.Table.create 64;
             nd_replicas = Name.Table.create 16;
             nd_cache = Name.Table.create 16;
             nd_fetching = Name.Table.create 8;
             nd_cache_epoch = Name.Table.create 8;
             nd_store = Name.Table.create 64;
             nd_hints = Name.Table.create 64;
             nd_forward = Name.Table.create 16;
             nd_activating = Name.Table.create 8;
             nd_locating = Name.Table.create 8;
             nd_pending = Hashtbl.create 64;
             nd_seq = Idgen.create ();
             nd_clone_sites = Name.Table.create 8;
             nd_recent =
               Dedup.create ~ttl:dedup_ttl
                 ~now:(fun () -> Engine.now eng)
                 ~cap:dedup_cap ();
             nd_types_loaded = Hashtbl.create 16;
             nd_kprocs = [];
             nd_ckpt_async = 0;
             nd_journal =
               Journal.create jsink ~node:(Transport.address tp)
                 ~cap:journal_cap;
             nd_dir = Name.Table.create 64;
             nd_epoch = 0;
             nd_draining = false;
           })
         configs)
  in
  let reg = Metrics.create () in
  let cl =
    {
      eng;
      tr;
      c_lan = lan;
      nodes;
      types = Hashtbl.create 16;
      c_rng = Splitmix.create (Int64.add seed 0x51EDEAL);
      opts = options;
      c_node_objects = [||];
      n_inv = 0;
      n_remote = 0;
      c_metrics = reg;
      c_spans = Span.create ();
      c_lat =
        Metrics.histogram reg ~buckets:latency_buckets
          "eden.invocation_latency_s";
      c_nm =
        Array.init n_nodes (fun i ->
            let labels = [ ("node", string_of_int i) ] in
            {
              m_inv = Metrics.counter reg ~labels "eden.invocations";
              m_remote =
                Metrics.counter reg ~labels "eden.invocations_remote";
              m_dispatch = Metrics.counter reg ~labels "eden.dispatches";
              m_hint_hit = Metrics.counter reg ~labels "eden.hint_hits";
              m_hint_miss = Metrics.counter reg ~labels "eden.hint_misses";
              m_locates =
                Metrics.counter reg ~labels "eden.locate_broadcasts";
              m_nacks = Metrics.counter reg ~labels "eden.nacks";
              m_ckpts = Metrics.counter reg ~labels "eden.checkpoints";
              m_ckpt_bytes =
                Metrics.counter reg ~labels "eden.checkpoint_bytes";
              m_retries = Metrics.counter reg ~labels "eden.retries";
              m_recoveries = Metrics.counter reg ~labels "eden.recoveries";
              m_orphans =
                Metrics.counter reg ~labels "eden.orphaned_invocations";
              m_cache_hit =
                Metrics.counter reg ~labels "eden.replica_cache.hits";
              m_cache_miss =
                Metrics.counter reg ~labels "eden.replica_cache.misses";
              m_cache_inval =
                Metrics.counter reg ~labels "eden.replica_cache.invalidations";
              m_ckpt_delta_bytes =
                Metrics.counter reg ~labels "eden.ckpt.delta_bytes";
              m_ckpt_full_bytes =
                Metrics.counter reg ~labels "eden.ckpt.full_bytes";
              m_ckpt_fallbacks =
                Metrics.counter reg ~labels "eden.ckpt.fallbacks";
              m_ckpt_coalesced =
                Metrics.counter reg ~labels "eden.ckpt.coalesced";
              m_clone_fanouts =
                Metrics.counter reg ~labels "eden.clone.fanouts";
              m_clone_cancels =
                Metrics.counter reg ~labels "eden.clone.cancels";
              m_hedges = Metrics.counter reg ~labels "eden.hedge.sent";
              m_dedup = Metrics.counter reg ~labels "eden.dedup.dropped";
              m_retracted =
                Metrics.counter reg ~labels "eden.cancel.retracted";
              m_dir_hits = Metrics.counter reg ~labels "eden.dir.hits";
              m_dir_misses = Metrics.counter reg ~labels "eden.dir.misses";
              m_dir_nacks = Metrics.counter reg ~labels "eden.dir.nacks";
              m_dir_fallbacks =
                Metrics.counter reg ~labels "eden.dir.fallbacks";
              m_dir_leases =
                Metrics.counter reg ~labels "eden.dir.leases_expired";
              m_epoch_bumps =
                Metrics.counter reg ~labels "eden.epoch.bumps";
              m_drain_moves =
                Metrics.counter reg ~labels "eden.drain.moves";
            });
      c_span_ctx = Hashtbl.create 64;
      c_jsink = jsink;
      c_health = None;
      c_hedge =
        (if options.speculate.Api.sp_hedge then
           Some
             {
               hs_hist =
                 Window.Hist.create ~ticks:hedge_ticks
                   ~bounds:latency_buckets;
               hs_cum = Array.make (Array.length latency_buckets) 0;
               hs_cum_over = 0;
               hs_prev = Array.make (Array.length latency_buckets) 0;
               hs_prev_over = 0;
             }
         else None);
      c_profile =
        (if options.use_profiling then
           Some
             {
               pc_service = Metrics.counter reg "eden.profile.service_ns";
               pc_queue = Metrics.counter reg "eden.profile.queue_ns";
               pc_wire = Metrics.counter reg "eden.profile.wire_ns";
               pc_directory =
                 Metrics.counter reg "eden.profile.directory_ns";
               pc_total = Metrics.counter reg "eden.profile.total_ns";
             }
         else None);
      (* The shard map is a pure function of the member set: every
         node computes the same ring, no coordination.  Spares are
         excluded until a join bumps the epoch. *)
      c_dir = Directory.make ~nodes:(List.init n_members Fun.id) ();
      c_dir_nack_fallback = true;
      c_epoch = 0;
      c_members = List.init n_members Fun.id;
      c_rings = Hashtbl.create 8;
    }
  in
  (* The hedge estimator's tick, like the health sampler a daemon on
     the virtual clock; absent entirely when hedging is off, so the
     default cost (and event) profile is untouched. *)
  (match cl.c_hedge with
  | None -> ()
  | Some hs ->
    Engine.every eng ~interval:hedge_tick (fun () -> hedge_close_tick hs));
  register_collectors cl;
  Array.iter
    (fun node ->
      Transport.on_message node.nd_tp (fun ~src msg ->
          on_message cl node ~src msg))
    nodes;
  (* Wire-level verdicts (drops, duplicates, delays, coalesced
     batches) are journalled at the sending node.  They root their own
     trace: the injector fires below the layer that knows contexts. *)
  Transport.set_event_hook lan
    (Some
       (fun ev ->
         let record src kind =
           if src >= 0 && src < Array.length nodes then
             ignore (jrecord cl nodes.(src) kind)
         in
         match ev with
         | Transport.Ev_drop { src; dst; msgs } ->
           record src (Journal.Drop { dst; msgs })
         | Transport.Ev_duplicate { src; dst; msgs } ->
           record src (Journal.Duplicate { dst; msgs })
         | Transport.Ev_delay { src; dst; msgs; by = _ } ->
           record src (Journal.Delay { dst; msgs })
         | Transport.Ev_coalesce { src; dst; msgs } ->
           record src (Journal.Coalesce { dst; msgs })));
  (* Per-payload wire journaling for the profiler.  Unlike the hook
     above these events carry each payload's trace context, so the
     attribution walk can split coalescer hold and injected hold out
     of a request's wire time.  Strictly profiling-gated: unarmed, the
     net layer's only overhead is a [None] test. *)
  if options.use_profiling then
    Transport.set_wire_hook lan
      (Some
         (fun ev ->
           let record src ctx kind =
             if src >= 0 && src < Array.length nodes then
               ignore (jrecord cl nodes.(src) ?ctx kind)
           in
           match ev with
           | Transport.Wv_depart { src; dst; msgs; items } ->
             List.iter
               (fun (m : Message.traced) ->
                 record src m.Message.tr_ctx (Journal.Net_flush { dst; msgs }))
               items
           | Transport.Wv_hold { src; dst; by; items } ->
             List.iter
               (fun (m : Message.traced) ->
                 record src m.Message.tr_ctx (Journal.Net_hold { dst; by }))
               items));
  Hashtbl.replace cl.types "eden_node" (node_type_for cl);
  cl.c_node_objects <-
    Array.map
      (fun node ->
        let name =
          Name.make ~birth_node:node.nd_id ~serial:(next_seq node)
        in
        install_node_object cl node name;
        Capability.make name Rights.invoke_only)
      nodes;
  (* The health plane is strictly opt-in: without [~health] no sampler
     is installed and the hot paths skip the sketch feed, so existing
     runs keep their exact cost profile. *)
  (match health with
  | None -> ()
  | Some hcfg ->
    let hp_topk =
      Array.init n_nodes (fun _ -> Topk.create ~capacity:topk_capacity)
    in
    let transitions = Metrics.counter reg "eden.health.transitions" in
    (* Alert transitions are journalled at node 0 — the health plane is
       a cluster-level observer, and a fixed node keeps the stream
       totally ordered in the merged timeline. *)
    let on_transition rule ~firing ~value:_ =
      Metrics.incr transitions;
      ignore
        (jrecord cl cl.nodes.(0)
           (Journal.Alert { rule = rule.Health.r_name; firing }))
    in
    let h = Health.create ~on_transition hcfg reg in
    Metrics.register_gauge_fn reg "eden.health.alerts_firing" (fun () ->
        float_of_int (Health.firing h));
    Metrics.register_counter_fn reg "eden.health.ticks" (fun () ->
        Health.ticks h);
    cl.c_health <- Some { hp_health = h; hp_topk };
    Engine.every eng ~interval:hcfg.Health.hc_tick (fun () -> Health.tick h));
  cl

let default ?seed ?options ?coalesce ?journal_cap ?health ?spares ~n_nodes () =
  if n_nodes < 1 then invalid_arg "Cluster.default: need at least one node";
  let configs =
    List.init n_nodes (fun i ->
        Machine.default_config ~name:(Printf.sprintf "node%d" i))
  in
  create ?seed ?options ?coalesce ?journal_cap ?health ?spares ~configs ()

let engine cl = cl.eng
let trace cl = cl.tr
let network cl = cl.c_lan
let node_segment cl i = Transport.segment (node_of cl i).nd_tp
let node_count cl = Array.length cl.nodes
let journal cl i = (node_of cl i).nd_journal

let journals cl =
  Array.to_list (Array.map (fun node -> node.nd_journal) cl.nodes)

let timeline cl = Timeline.assemble (journals cl)

let journal_dropped cl =
  Array.fold_left
    (fun acc node -> acc + Journal.dropped node.nd_journal)
    0 cl.nodes

let health cl = Option.map (fun hp -> hp.hp_health) cl.c_health

(* The canonical owner at the current epoch — no liveness detour, so
   the answer is a pure function of the membership (for tests and
   tooling; the kernel's own routing detours past downed shards). *)
let directory_shard cl name = Directory.shard (ring_of cl cl.c_epoch) name
let set_dir_nack_fallback cl enabled = cl.c_dir_nack_fallback <- enabled

let hot_objects cl ?(k = 10) i =
  ignore (node_of cl i);
  match cl.c_health with
  | None -> []
  | Some hp -> Topk.top hp.hp_topk.(i) k

let hot_objects_rollup cl ?(k = 10) () =
  match cl.c_health with
  | None -> []
  | Some hp ->
    Topk.top
      (Topk.merge ~capacity:topk_capacity (Array.to_list hp.hp_topk))
      k
let machine cl i = (node_of cl i).nd_machine
let node_up cl i = (node_of cl i).nd_up

let node_object cl i =
  ignore (node_of cl i);
  cl.c_node_objects.(i)

let register_type cl tm =
  let tname = Typemgr.name tm in
  match Hashtbl.find_opt cl.types tname with
  | Some existing when existing == tm -> ()
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Cluster.register_type: %S already registered" tname)
  | None -> Hashtbl.replace cl.types tname tm

let find_type cl tname = Hashtbl.find_opt cl.types tname

let create_object cl ~node ~type_name init =
  do_create_local cl (node_of cl node) type_name init

let invoke cl ~from ?timeout ?retry cap ~op args =
  do_invoke cl ~from ?timeout ?retry cap ~op args

let invoke_async cl ~from ?timeout ?retry cap ~op args =
  let pr = Promise.create cl.eng in
  let pid =
    Engine.spawn cl.eng ~name:"invoke_async" (fun () ->
        let r = do_invoke cl ~from ?timeout ?retry cap ~op args in
        ignore (Promise.fill pr r))
  in
  Engine.set_daemon cl.eng pid;
  pr

(* Find the live primary of an object, scanning all nodes (an
   omniscient control-plane shortcut used by the external management
   operations and tests). *)
let find_primary cl name =
  let found = ref None in
  Array.iter
    (fun node ->
      if !found = None && node.nd_up then
        match Name.Table.find_opt node.nd_active name with
        | Some obj when obj.ob_status <> Dead -> found := Some obj
        | Some _ | None -> ())
    cl.nodes;
  !found

let require_right cap right opname =
  if Rights.mem right (Capability.rights cap) then Ok ()
  else Error (Error.Rights_violation opname)

let move cl cap ~to_node =
  match require_right cap Rights.Kernel_move "move" with
  | Error e -> Error e
  | Ok () -> (
    if to_node < 0 || to_node >= Array.length cl.nodes then
      Error (Error.Move_refused "no such node")
    else
      match find_primary cl (Capability.name cap) with
      | None -> Error Error.No_such_object
      | Some obj -> do_move cl obj ~to_node ~self_inflight:false)

let freeze cl cap =
  match require_right cap Rights.Kernel_checkpoint "freeze" with
  | Error e -> Error e
  | Ok () -> (
    match find_primary cl (Capability.name cap) with
    | None -> Error Error.No_such_object
    | Some obj ->
      obj.ob_frozen <- true;
      Ok ())

let unfreeze cl cap =
  match require_right cap Rights.Kernel_checkpoint "unfreeze" with
  | Error e -> Error e
  | Ok () -> (
    let name = Capability.name cap in
    match find_primary cl name with
    | None -> Error Error.No_such_object
    | Some obj ->
      if not obj.ob_frozen then Ok ()
      else if
        Array.exists
          (fun node -> node.nd_up && Name.Table.mem node.nd_replicas name)
          cl.nodes
      then Error (Error.Move_refused "object has pinned replicas")
      else begin
        obj.ob_frozen <- false;
        let node = home cl obj in
        (* The version bump: every cached copy of the pre-thaw
           representation is now stale.  [Cache_invalidate] purges
           hints and cached replicas cluster-wide (broadcasts bypass
           the unicast fault injector, so it is reliable under chaos
           too); it carries no request id, so it can never be mistaken
           for a reply to some unrelated request in flight on a
           receiving node.  The broadcast skips the sender, so the
           home node — which may itself hold a cached copy from before
           the object migrated here — is invalidated directly. *)
        invalidate_cached cl node name;
        bcast_msg cl node (Message.Cache_invalidate { target = name });
        tracef cl Trace.Kern "%s unfrozen on node %d" (Name.to_string name)
          obj.ob_home;
        Ok ()
      end)

let replicate cl cap ~to_node =
  match require_right cap Rights.Kernel_checkpoint "replicate" with
  | Error e -> Error e
  | Ok () -> (
    if to_node < 0 || to_node >= Array.length cl.nodes then
      Error (Error.Move_refused "no such node")
    else
      match find_primary cl (Capability.name cap) with
      | None -> Error Error.No_such_object
      | Some obj -> do_replicate cl obj ~to_node)

let checkpoint_of cl cap =
  match require_right cap Rights.Kernel_checkpoint "checkpoint" with
  | Error e -> Error e
  | Ok () -> (
    match find_primary cl (Capability.name cap) with
    | None -> Error Error.No_such_object
    | Some obj -> do_checkpoint cl obj)

let checkpoint_async_of cl cap =
  match require_right cap Rights.Kernel_checkpoint "checkpoint" with
  | Error e -> Error e
  | Ok () -> (
    match find_primary cl (Capability.name cap) with
    | None -> Error Error.No_such_object
    | Some obj -> do_checkpoint_async cl obj)

let destroy cl cap =
  match require_right cap Rights.Kernel_destroy "destroy" with
  | Error e -> Error e
  | Ok () ->
    let name = Capability.name cap in
    let existed = ref false in
    (* Dismantle the primary without marking anything passive: there
       will be nothing to reincarnate from. *)
    (match find_primary cl name with
    | Some obj ->
      existed := true;
      obj.ob_status <- Dead;
      let works = outstanding_works obj in
      List.iter (fun w -> fail_work cl obj w Error.No_such_object) works;
      unregister cl obj;
      tracef cl Trace.Kern "%s destroyed on node %d" (Name.to_string name)
        obj.ob_home;
      kill_object_procs cl obj
    | None -> ());
    (* Existence check is omniscient (control plane); the purge itself
       travels as a broadcast notice, so a powered-off node keeps its
       snapshot — a real 1981 limitation, noted in DESIGN.md. *)
    Array.iter
      (fun node ->
        if
          node.nd_up
          && (Name.Table.mem node.nd_store name
             || Name.Table.mem node.nd_replicas name)
        then existed := true)
      cl.nodes;
    (match
       Array.find_opt (fun node -> node.nd_up) cl.nodes
     with
    | None -> ()
    | Some origin ->
      forget_object cl origin name;
      bcast_msg cl origin (Message.Destroy_notice { target = name }));
    if !existed then Ok () else Error Error.No_such_object

(* -------------------------------------------------------------------- *)
(* Failure injection *)

let crash_node cl i =
  let node = node_of cl i in
  if node.nd_up then begin
    node.nd_up <- false;
    Transport.set_up node.nd_tp false;
    tracef cl Trace.Kern "node %d: power off" i;
    let objs =
      Name.Table.fold (fun _ o acc -> o :: acc) node.nd_active []
      @ Name.Table.fold (fun _ o acc -> o :: acc) node.nd_replicas []
      @ Name.Table.fold (fun _ o acc -> o :: acc) node.nd_cache []
    in
    List.iter
      (fun obj ->
        obj.ob_status <- Dead;
        (* Volatile state evaporates: no replies, no notifications. *)
        kill_object_procs cl obj)
      objs;
    Name.Table.reset node.nd_active;
    Name.Table.reset node.nd_replicas;
    Name.Table.reset node.nd_cache;
    Name.Table.reset node.nd_fetching;
    Name.Table.reset node.nd_cache_epoch;
    Name.Table.reset node.nd_hints;
    Name.Table.reset node.nd_forward;
    Name.Table.reset node.nd_activating;
    Name.Table.iter (fun _ pr -> ignore (Promise.fill pr None)) node.nd_locating;
    Name.Table.reset node.nd_locating;
    Name.Table.reset node.nd_clone_sites;
    (* The registry shard is volatile kernel memory: requesters meet
       misses after the restart, fall back to broadcast, and their
       republishes rebuild the shard on demand. *)
    Name.Table.reset node.nd_dir;
    (* Volatile like the rest — but [nd_seq] survives, so request ids
       issued after the restart can never collide with pre-crash ones
       still remembered elsewhere. *)
    Dedup.reset node.nd_recent;
    Hashtbl.reset node.nd_pending;
    Hashtbl.reset node.nd_types_loaded;
    node.nd_mem <-
      Memory.create
        ~bytes:(Machine.config node.nd_machine).Machine.memory_bytes;
    let kprocs = node.nd_kprocs in
    node.nd_kprocs <- [];
    List.iter (fun p -> Engine.kill cl.eng p) kprocs
  end

(* Reincarnate every object whose durable checkpoint lives on this
   freshly-restarted node and which is active nowhere.  Among the up
   checksites with a working disk and a stored snapshot, the one
   holding the highest snapshot version rebuilds (the earliest listed
   site on a tie), so a Mirrored object restarting on several sites at
   once reactivates exactly once — and from its newest state, not from
   whichever stale mirror happens to be listed first. *)
let rebuild_from_store cl node =
  let candidates =
    Name.Table.fold
      (fun name snap acc -> if snap.ss_passive then (name, snap) :: acc else acc)
      node.nd_store []
    |> List.sort (fun (a, _) (b, _) -> Name.compare a b)
  in
  List.iter
    (fun (name, snap) ->
      let sites =
        Reliability.checksites snap.ss_reliability ~home:node.nd_id
      in
      let best_able =
        List.fold_left
          (fun best s ->
            if
              s < 0
              || s >= Array.length cl.nodes
              || (not cl.nodes.(s).nd_up)
              || not cl.nodes.(s).nd_disk_ok
            then best
            else
              match Name.Table.find_opt cl.nodes.(s).nd_store name with
              | None -> best
              | Some ss -> (
                match best with
                | Some (_, bv) when bv >= ss.ss_version -> best
                | _ -> Some (s, ss.ss_version)))
          None sites
      in
      match best_able with
      | Some (s, _) when s = node.nd_id && find_primary cl name = None -> (
        match activate cl node name with
        | Ok _ -> ()
        | Error _ -> () (* object stays passive; invocation will retry *))
      | _ -> ())
    candidates

let restart_node ?(rebuild = false) cl i =
  let node = node_of cl i in
  if not node.nd_up then begin
    node.nd_up <- true;
    Transport.set_up node.nd_tp true;
    tracef cl Trace.Kern "node %d: power on" i;
    (* A node that slept through reconfigurations catches up at boot
       (a real kernel would learn the epoch from its first exchange).
       Journalled only when the view actually moves — invariant 7
       demands strict increase per node. *)
    if cl.c_epoch > node.nd_epoch then begin
      node.nd_epoch <- cl.c_epoch;
      Metrics.incr (nm cl node).m_epoch_bumps;
      ignore (jrecord cl node (Journal.Epoch_bump { epoch = cl.c_epoch }))
    end;
    (* Everything checkpointed to this node's disk is authoritatively
       passive if it was active here at the crash: conservatively mark
       all local snapshots passive unless some other node currently
       runs the object (it will answer locates first anyway). *)
    Name.Table.iter (fun _ snap -> snap.ss_passive <- true) node.nd_store;
    (* The kernel reboots its node object under its boot-time name. *)
    if Array.length cl.c_node_objects > i then
      install_node_object cl node
        (Capability.name cl.c_node_objects.(i));
    if rebuild && node.nd_disk_ok then
      ignore
        (spawn_kproc cl node ~name:"k:rebuild" (fun () ->
             rebuild_from_store cl node))
  end

let set_disk_failed cl i failed =
  let node = node_of cl i in
  if node.nd_disk_ok = failed then begin
    node.nd_disk_ok <- not failed;
    tracef cl Trace.Store "node %d: checkpoint store %s" i
      (if failed then "failed" else "restored")
  end

let disk_ok cl i = (node_of cl i).nd_disk_ok

(* -------------------------------------------------------------------- *)
(* Online reconfiguration: epoch-stamped membership.

   The membership table is a pair (epoch, member list).  Every change
   — a spare joining, a member decommissioning — bumps the epoch,
   caches the new epoch's ring, journals the initiator's [Epoch_bump]
   and broadcasts an [Epoch_announce]; other nodes adopt the view when
   the announce lands (or at their next power-on).  Nothing blocks on
   the announce: a node serving through an old view resolves against
   that view's cached ring, and the consistent ring's minimal-remap
   property bounds the churn — one membership step moves about 1/n of
   the name space, and invariant 7 pins that a lagging view can cost a
   detour or a broadcast, never a stranded locate. *)

let epoch cl = cl.c_epoch
let members cl = cl.c_members
let is_member cl i = List.mem (node_of cl i).nd_id cl.c_members
let is_draining cl i = (node_of cl i).nd_draining

let bump_epoch cl node ~members =
  cl.c_epoch <- cl.c_epoch + 1;
  cl.c_members <- members;
  Hashtbl.replace cl.c_rings cl.c_epoch (Directory.make ~nodes:members ());
  node.nd_epoch <- cl.c_epoch;
  Metrics.incr (nm cl node).m_epoch_bumps;
  let ev = jrecord cl node (Journal.Epoch_bump { epoch = cl.c_epoch }) in
  bcast_msg ~ctx:(Tracectx.root ev) cl node
    (Message.Epoch_announce { epoch = cl.c_epoch; members })

let join_node cl i =
  let node = node_of cl i in
  if List.mem i cl.c_members then
    Error (Printf.sprintf "node %d is already a member" i)
  else if not node.nd_up then
    Error (Printf.sprintf "node %d is powered off" i)
  else begin
    tracef cl Trace.Kern "node %d: joins at epoch %d" i (cl.c_epoch + 1);
    bump_epoch cl node ~members:(List.sort Int.compare (i :: cl.c_members));
    Ok ()
  end

(* The drain destination for one evacuated object: the least-loaded
   live member that is neither leaving nor itself draining, lowest id
   on ties — deterministic, so same-seed runs evacuate identically. *)
let drain_target cl ~leaving =
  List.fold_left
    (fun best m ->
      if m = leaving || (not cl.nodes.(m).nd_up) || cl.nodes.(m).nd_draining
      then best
      else
        let load = Name.Table.length cl.nodes.(m).nd_active in
        match best with
        | Some (_, bl) when bl <= load -> best
        | Some _ | None -> Some (m, load))
    None cl.c_members

(* Blocking.  Drain, then leave: checkpoint and move every object
   homed here to surviving members (each move republishes the new
   home to the name's registry shard), bump the epoch without this
   node, and only then power off.  Traffic keeps flowing throughout —
   requests during a move queue and forward as usual.  An object whose
   move fails stays put and relies on its fresh checkpoint for
   reincarnation after the power-off. *)
let decommission_node cl i =
  let node = node_of cl i in
  if not (List.mem i cl.c_members) then
    Error (Printf.sprintf "node %d is not a member" i)
  else if not node.nd_up then
    Error (Printf.sprintf "node %d is powered off" i)
  else if List.length cl.c_members <= 1 then
    Error "cannot decommission the last member"
  else begin
    node.nd_draining <- true;
    tracef cl Trace.Kern "node %d: draining for decommission" i;
    let victims =
      Name.Table.fold (fun _ o acc -> o :: acc) node.nd_active []
      |> List.filter (fun o ->
             o.ob_status <> Dead && Typemgr.name o.ob_type <> "eden_node")
      |> List.sort (fun a b -> Name.compare a.ob_name b.ob_name)
    in
    List.iter
      (fun obj ->
        (* Re-check per object: traffic is live, so an earlier victim
           may have died or been moved away while we drained. *)
        if obj.ob_status <> Dead && obj.ob_home = i then
          match drain_target cl ~leaving:i with
          | None -> () (* no live destination; the checkpoint covers us *)
          | Some (to_node, _) -> (
            (* Checkpoint first so the state is durable whatever the
               move does — and so the move's own post-transfer rounds
               ride the delta pipeline against a fresh base. *)
            ignore (do_checkpoint cl obj);
            match do_move cl obj ~to_node ~self_inflight:false with
            | Ok () ->
              Metrics.incr (nm cl node).m_drain_moves;
              ignore
                (jrecord cl node
                   (Journal.Drain_move
                      { target = Name.to_string obj.ob_name; to_node }))
            | Error _ -> ()))
      victims;
    bump_epoch cl node ~members:(List.filter (fun m -> m <> i) cl.c_members);
    node.nd_draining <- false;
    crash_node cl i;
    Ok ()
  end

(* -------------------------------------------------------------------- *)
(* Introspection *)

let where_is cl cap =
  match find_primary cl (Capability.name cap) with
  | Some obj -> Some obj.ob_home
  | None -> None

let is_active cl cap = where_is cl cap <> None

let replica_sites cl cap =
  let name = Capability.name cap in
  Array.to_list cl.nodes
  |> List.filter_map (fun node ->
         if node.nd_up && Name.Table.mem node.nd_replicas name then
           Some node.nd_id
         else None)

let checkpoint_sites cl cap =
  let name = Capability.name cap in
  Array.to_list cl.nodes
  |> List.filter_map (fun node ->
         if Name.Table.mem node.nd_store name then Some node.nd_id else None)

let active_objects cl i = Name.Table.length (node_of cl i).nd_active
let stats_invocations cl = cl.n_inv
let stats_remote_invocations cl = cl.n_remote
let metrics cl = cl.c_metrics
let spans cl = cl.c_spans

let metrics_snapshot cl =
  Eden_obs.Snapshot.take ~at:(Engine.now cl.eng) ~spans:cl.c_spans cl.c_metrics

(* -------------------------------------------------------------------- *)
(* Running *)

let in_process cl ?(name = "driver") f = Engine.spawn cl.eng ~name f
let run ?until cl = Engine.run ?until cl.eng
