open Eden_net

(* The payload is the traced envelope: every frame carries its message
   plus an optional trace context, so causal links survive the wire. *)
type net = Message.traced Internet.t
type t = Message.traced Internet.endpoint

type fault = Internet.fault =
  | Pass
  | Drop
  | Duplicate
  | Delay of Eden_util.Time.t

type coalesce = Internet.coalesce = {
  co_max_bytes : int;
  co_max_msgs : int;
  co_max_delay : Eden_util.Time.t;
}

let default_coalesce = Internet.default_coalesce

let create_net ?params ?bridge_latency ?coalesce eng ~segments =
  Internet.create ?params ?bridge_latency ?coalesce eng ~segments
    ~size:Message.traced_size

let segment_count = Internet.segment_count
let frames_delivered = Internet.frames_delivered
let bridge_forwards = Internet.bridge_forwards
let coalesced_batches = Internet.coalesced_batches
let coalesced_messages = Internet.coalesced_messages
let bridge_drops = Internet.bridge_drops
let segment_counters = Internet.segment_counters
let set_partitioned = Internet.set_partitioned
let partitioned = Internet.partitioned
let set_fault_injector = Internet.set_fault_injector

type event = Internet.event =
  | Ev_drop of { src : int; dst : int option; msgs : int }
  | Ev_duplicate of { src : int; dst : int option; msgs : int }
  | Ev_delay of { src : int; dst : int option; msgs : int; by : Eden_util.Time.t }
  | Ev_coalesce of { src : int; dst : int; msgs : int }

let set_event_hook = Internet.set_event_hook

type 'a wire_event = 'a Internet.wire_event =
  | Wv_depart of { src : int; dst : int; msgs : int; items : 'a list }
  | Wv_hold of {
      src : int;
      dst : int option;
      by : Eden_util.Time.t;
      items : 'a list;
    }

let set_wire_hook = Internet.set_wire_hook
let attach net ~segment ~name = Internet.attach net ~segment ~name
let address = Internet.address
let segment = Internet.segment_of_endpoint
let on_message = Internet.on_message
let send = Internet.send
let send_now = Internet.send_now
let broadcast = Internet.broadcast
let flush = Internet.flush
let set_up = Internet.set_up
let is_up = Internet.is_up
let queued_messages = Internet.queued_messages
let reassembly_pending = Internet.reassembly_pending
