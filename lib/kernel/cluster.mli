(** A running Eden system: node machines on a LAN, one kernel each.

    This module is the user-facing surface of the reproduction.  It
    implements the paper's kernel primitives — object and type
    creation, location-independent invocation, checkpoint/checksite/
    crash and reincarnation, move, freeze and replication — across a
    simulated cluster.

    Operations documented as {e blocking} must be called from a
    simulation process (use {!in_process} or {!Eden_sim.Engine.spawn});
    they advance virtual time. *)

type t
type node_id = int

type options = {
  use_hint_cache : bool;
      (** remember where remote objects were last seen (default true) *)
  use_forwarding : bool;
      (** moved objects leave forwarding pointers at their old host
          (default true); without them stale requests are nacked and
          the requester re-locates *)
  coalesce_locates : bool;
      (** concurrent locates of one name share a broadcast
          (default true) *)
  use_replica_cache : bool;
      (** cache the representation of remote frozen objects locally on
          first use and serve later invocations without the round trip
          (default false); entries are hints — rights validate on
          every dispatch, and {!unfreeze} or {!destroy} invalidates
          via the nack path *)
  use_ckpt_delta : bool;
      (** ship checkpoints as deltas (default false): the kernel diffs
          the representation against the last checkpointed version and
          sends only the changed chunks to checksites known to hold
          the current base; a site whose stored version does not match
          nacks, and the write falls back to a full representation
          (counted by [eden.ckpt.fallbacks]) *)
  speculate : Api.speculate;
      (** tail-latency speculation (default {!Api.no_speculation}).
          With [sp_clone], a request whose target is known to have
          read-serving replica sites fans out to the primary plus up
          to [sp_max_sites - 1] of them under one request id; the
          first result wins and every loser receives an urgent
          {!Message.Cancel}.  With [sp_hedge], a non-cloned request
          whose wait exceeds the [sp_quantile] of recently observed
          remote round trips (a sliding {!Eden_obs.Window.Hist} over
          the latency buckets, closed every millisecond) is re-issued
          once — urgently, same id — without abandoning the original.
          Serving nodes keep idempotence bookkeeping keyed by the full
          (origin, sequence) request id, so duplicated, delayed and
          cancelled copies never double-apply; cancelled queued work
          is dropped at dispatch ([eden.cancel.retracted]).  Counters:
          [eden.clone.fanouts], [eden.clone.cancels],
          [eden.hedge.sent], [eden.dedup.dropped]. *)
  use_directory : bool;
      (** the sharded locate directory (default false).  A
          consistent-hash ring over object names assigns each name a
          {e registry shard} — the node recording the name's current
          home and known replica sites — and a requester with no hint
          asks the shard with one unicast ({!Message.Dir_get}) instead
          of broadcasting: O(1) messages per first touch, independent
          of cluster size.  Creation, reincarnation and moves (the
          migration policy's included) publish lease-stamped
          {!Message.Dir_put} updates to the shard; staleness is
          handled lazily — a home that nacks a directory-routed
          request triggers a NACK-on-wrong-home invalidation at the
          shard, and the attempt falls back to the broadcast locate,
          which stays authoritative (reincarnation authority, version
          preference) and repairs the registry as a side effect.
          Misses, expired leases and dead or partitioned shards take
          the same fallback.  Counters:
          [eden.dir.{hits,misses,nacks,fallbacks,leases_expired}];
          journal kinds [Dir_hit]/[Dir_miss]/[Dir_fallback]/
          [Dir_publish]; checker rule 6 pins the
          resolve-or-fall-back discipline. *)
  use_profiling : bool;
      (** critical-path profiling (default false).  Arms the
          per-payload wire tap and the extra journal kinds the
          attribution walk sharpens its categories with —
          [Work_start] (queue residency), [Net_flush] (coalescer
          hold), [Net_hold] (injected sender-side hold),
          [Drain_stall] (parked behind a draining object) — and
          publishes per-category latency counters
          ([eden.profile.{service,queue,wire,directory,total}_ns],
          fed from finished spans) for
          {!Eden_obs.Health.Share_of_latency} watchdogs.  Off, the
          journal stream, cost profile and metric set are exactly
          those of earlier releases; {!Eden_obs.Critical} still
          attributes exactly, just with coarser categories. *)
}

val default_options : options

(** {1 Construction} *)

val create :
  ?seed:int64 ->
  ?net:Eden_net.Params.t ->
  ?options:options ->
  ?segments:int list ->
  ?coalesce:Transport.coalesce ->
  ?journal_cap:int ->
  ?health:Eden_obs.Health.config ->
  ?spares:int ->
  configs:Eden_hw.Machine.config list ->
  unit ->
  t
(** Build a cluster with one node per machine config (node ids follow
    list order).  Raises [Invalid_argument] on an empty list.
    [spares] (default 0) racks that many additional default-configured
    machines ("spare0"..) after the configured ones: powered and on
    the LAN from boot, but outside the membership (and the directory
    ring) until {!join_node} admits them; they share the last network
    segment.  [segments] sizes must sum to the {e configured} node
    count, spares excluded.
    [options] disable individual location mechanisms for ablation
    studies (experiment E13).  [segments] partitions the nodes over
    bridged Ethernet segments in id order (e.g. [[3; 2]] puts nodes
    0-2 on one segment and 3-4 on another, joined by a store-and-
    forward bridge); the sizes must sum to the node count.  Default:
    one segment.  [coalesce] enables unicast message coalescing on
    the kernel transport (default off): small messages to one
    destination batch into a single wire transfer under the given
    budgets (see {!Transport.coalesce}).  [journal_cap] bounds each
    node's event journal (default 4096 events; 0 disables retention
    — trace contexts still propagate, but nothing is kept).  Raises
    [Invalid_argument] if negative.  [health] (default off) enables
    the health plane: SLO rules evaluated at the config's virtual-time
    tick via the engine sampler, per-node hot-object sketches fed from
    the invocation and locate paths, alert transitions journalled as
    {!Eden_obs.Journal.Alert} events at node 0, and the
    [eden.health.{alerts_firing,transitions,ticks}] series registered
    in the metrics registry. *)

val default :
  ?seed:int64 ->
  ?options:options ->
  ?coalesce:Transport.coalesce ->
  ?journal_cap:int ->
  ?health:Eden_obs.Health.config ->
  ?spares:int ->
  n_nodes:int ->
  unit ->
  t
(** [n_nodes] default-configured nodes named "node0".."nodeN-1".
    Requires [n_nodes >= 1]. *)

val engine : t -> Eden_sim.Engine.t
val trace : t -> Eden_sim.Trace.t

val network : t -> Transport.net
(** The cluster's internetwork, for frame counters and topology
    introspection. *)

val node_segment : t -> node_id -> int
val node_count : t -> int
val machine : t -> node_id -> Eden_hw.Machine.t
val node_up : t -> node_id -> bool

(** {1 Types} *)

val node_object : t -> node_id -> Capability.t
(** The paper's node abstraction: "a node is an object that supplies
    virtual memory … and virtual processors".  Each kernel creates one
    [eden_node] object at boot (and again on restart, under the same
    name).  Operations: ["info"] [] -> [Int gdps; Int mem_capacity;
    Int mem_available; Int active_objects]; ["ping"] [] -> [].
    Invoking a downed node's object times out — a heartbeat. *)

val register_type : t -> Typemgr.t -> unit
(** Make a type available on every node.  Raises [Invalid_argument] if
    a different type of the same name is already registered
    (re-registering the identical manager is a no-op). *)

val find_type : t -> string -> Typemgr.t option

(** {1 Kernel primitives} *)

val create_object :
  t ->
  node:node_id ->
  type_name:string ->
  Value.t ->
  (Capability.t, Error.t) result
(** Blocking.  Create a fresh object on [node] with the given initial
    representation; returns a full-rights capability.  The new object
    exists only in the node's volatile memory until it checkpoints. *)

val invoke :
  t ->
  from:node_id ->
  ?timeout:Eden_util.Time.t ->
  ?retry:Api.retry ->
  Capability.t ->
  op:string ->
  Value.t list ->
  Api.invoke_result
(** Blocking.  The paper's synchronous invocation: locate the target
    wherever it lives, deliver the request, await the reply.
    [?timeout] bounds each attempt; [?retry] (default {!Api.no_retry})
    re-issues timed-out attempts with capped exponential backoff —
    recovery is the requester's timeout. *)

val invoke_async :
  t ->
  from:node_id ->
  ?timeout:Eden_util.Time.t ->
  ?retry:Api.retry ->
  Capability.t ->
  op:string ->
  Value.t list ->
  Api.invoke_result Eden_sim.Promise.t
(** Start an invocation without blocking; await the promise later. *)

val move : t -> Capability.t -> to_node:node_id -> (unit, Error.t) result
(** Blocking.  Transfer the object to another node (requires
    [Kernel_move]).  New invocations queue during the transfer and are
    forwarded afterwards; the old host keeps a forwarding pointer. *)

val freeze : t -> Capability.t -> (unit, Error.t) result
(** Blocking.  Make the representation immutable (requires
    [Kernel_checkpoint]); mutating operations subsequently fail with
    [Frozen_immutable], and the object becomes replicable. *)

val unfreeze : t -> Capability.t -> (unit, Error.t) result
(** Thaw a frozen object (requires [Kernel_checkpoint]) so it can
    mutate again.  Refused with [Move_refused] while explicit replicas
    exist (unpin them with {!destroy} or keep the object frozen).
    Unfreezing is the cache version bump: a [Cache_invalidate]
    broadcast drops every node's cached copy of the old representation
    (including a fetch still in flight, whose payload is discarded on
    arrival), so a freeze–mutate–refreeze cycle can never serve stale
    reads.  No-op [Ok] if the object was not frozen. *)

val replicate : t -> Capability.t -> to_node:node_id -> (unit, Error.t) result
(** Blocking.  Install a read-only replica of a frozen object on
    [to_node]; local invocations there are then served without network
    traffic. *)

val checkpoint_of : t -> Capability.t -> (unit, Error.t) result
(** Blocking.  Externally request a checkpoint (requires
    [Kernel_checkpoint]); equivalent to the object calling
    [ctx.checkpoint] at its next quiescent point.  Every checksite
    write — the local disk one included — races a single shared
    acknowledgement deadline, so k unreachable checksites cost one
    timeout, not k. *)

val checkpoint_async_of : t -> Capability.t -> (unit, Error.t) result
(** Start a checkpoint without blocking (requires
    [Kernel_checkpoint]); equivalent to the object calling
    [ctx.checkpoint_async].  The round snapshots the representation at
    call time and runs in a background kernel process; a request made
    while a round is in flight coalesces into one follow-up round.
    [Ok ()] means launched or coalesced, not succeeded — failures
    surface in the [eden.ckpt.*] counters and at reincarnation. *)

val destroy : t -> Capability.t -> (unit, Error.t) result
(** Destroy the object for good (requires [Kernel_destroy]): active
    state is dismantled without passivation, and a broadcast notice
    purges snapshots, replicas and location knowledge from every
    reachable node.  Outstanding requests fail with [No_such_object];
    a snapshot on a powered-off node survives the purge. *)

(** {1 Failure injection} *)

val crash_node : t -> node_id -> unit
(** Power off a machine: every active object and kernel process on it
    dies, volatile memory is lost.  Long-term store survives. *)

val restart_node : ?rebuild:bool -> t -> node_id -> unit
(** Power the machine back on with empty volatile state.  Passive
    objects checkpointed to its disk become reachable again.  With
    [~rebuild:true] (default false) the kernel additionally scans its
    store and proactively reincarnates every object that is active
    nowhere and whose best able checksite is this node — the able site
    (up, working disk, snapshot present) holding the highest snapshot
    version, breaking ties in {!Reliability.checksites} order — so a
    Mirrored object whose sites all restart reactivates exactly once,
    from its newest surviving state. *)

val set_disk_failed : t -> node_id -> bool -> unit
(** Fail (or restore) a node's checkpoint store.  While failed the
    node refuses [Ckpt_write]s, cannot reincarnate passive objects
    (invocation requests routed to it are nacked so the requester
    re-locates), and stays silent on passive locate answers.  Volatile
    state — objects already active there — is unaffected. *)

val disk_ok : t -> node_id -> bool

(** {1 Online reconfiguration}

    The membership table is an epoch-stamped member list.  {!join_node}
    and {!decommission_node} bump the epoch, cache the new epoch's
    directory ring and broadcast an [Epoch_announce]; other nodes adopt
    the view when the announce lands (or at their next power-on), and a
    node serving through an old view resolves against that view's
    cached ring.  The consistent ring's minimal-remap property bounds
    the churn to roughly 1/n of the name space per membership step, and
    checker rule 7 ({e epoch-monotonic}) pins that views only move
    forward and that a lagging view can cost a detour or a broadcast
    but never a stranded locate. *)

val epoch : t -> int
(** The newest membership epoch any node has initiated (0 at boot). *)

val members : t -> node_id list
(** Current ring members, ascending.  Spares (and decommissioned
    nodes) are powered but absent until {!join_node} admits them. *)

val is_member : t -> node_id -> bool

val is_draining : t -> node_id -> bool
(** True while {!decommission_node} is evacuating the node: it still
    serves traffic, but balancing must not pick it as a target. *)

val join_node : t -> node_id -> (unit, string) result
(** Admit a powered non-member (a spare, or a previously
    decommissioned node after {!restart_node}) into the membership:
    bumps the epoch, rebuilds the ring with the node in it and
    broadcasts the announce.  Non-blocking; traffic keeps flowing —
    names remapped to the newcomer miss at their old shard and are
    lazily republished via the broadcast fallback. *)

val decommission_node : t -> node_id -> (unit, string) result
(** Blocking.  Drain, then leave: every object homed on the node is
    checkpointed (the delta pipeline) and moved to the least-loaded
    surviving member — each move republishing the new home to the
    name's registry shard and journalled as [Drain_move] — then the
    epoch is bumped without the node and it powers off.  Refused for
    non-members, powered-off nodes and the last remaining member.  An
    object whose move fails stays put and reincarnates from its fresh
    checkpoint later. *)

(** {1 Introspection} *)

val where_is : t -> Capability.t -> node_id option
(** The node currently running the object actively (replicas and
    passive copies excluded).  Non-blocking, omniscient (for tests). *)

val is_active : t -> Capability.t -> bool

val directory_shard : t -> Name.t -> node_id
(** The registry shard the locate directory assigns to [name] at the
    current epoch — a pure function of the membership, meaningful
    whether or not [use_directory] is on.  Non-blocking (for tests and
    tooling).  The kernel's own routing additionally detours past
    powered-off shards to the next live ring point; this accessor
    reports the canonical owner. *)

val set_dir_nack_fallback : t -> bool -> unit
(** Test scaffolding: arm or disarm the NACK-on-wrong-home shard
    invalidation (armed by default).  Disarmed, a stale registry entry
    is never repaired and a directory-routed request to a moved object
    burns its whole nack budget — the regression the fallback
    prevents; see the chaos suite's stale-hint test. *)

val replica_sites : t -> Capability.t -> node_id list
val checkpoint_sites : t -> Capability.t -> node_id list
val active_objects : t -> node_id -> int
val stats_invocations : t -> int
(** Total invocations dispatched (local + remote) since creation. *)

val stats_remote_invocations : t -> int

(** {1 Observability}

    Every cluster owns a metrics registry and a span collector.  The
    kernel instruments the invocation path (per-node counters for
    invocations, hint-cache hits and misses, locate broadcasts, nacks
    and checkpoints, plus an end-to-end latency histogram), and
    registers sampled collectors over the network, engine and hardware
    counters.  Each invocation records an {!Eden_obs.Span} with its
    locate/transport/queue/dispatch/execute/reply phase breakdown;
    nested [ctx.invoke] calls carry parent links. *)

val metrics : t -> Eden_obs.Metrics.t
(** The registry; callers may add their own instruments. *)

val spans : t -> Eden_obs.Span.collector

val metrics_snapshot : t -> Eden_obs.Snapshot.t
(** Sample every instrument and the retained spans at the current
    virtual time. *)

(** {2 Event journals and causal traces}

    Each node keeps a bounded {!Eden_obs.Journal} of the distributed
    steps it takes: sends and receives (linked by the trace context
    that rides in every kernel message's envelope), wire-level fault
    and coalescing decisions, invocation begin/retry/end, checkpoint
    rounds, replica-cache installs/invalidations and reincarnations.
    Per-node [eden.journal.events] and [eden.journal.dropped] counters
    appear in {!metrics_snapshot}. *)

val journal : t -> node_id -> Eden_obs.Journal.t
(** A node's journal.  It survives {!crash_node} — the journal is
    observer state, not simulated volatile memory. *)

val journals : t -> Eden_obs.Journal.t list
(** All journals, in node-id order. *)

val timeline : t -> Eden_obs.Timeline.t
(** Merge every node's journal into one deterministic timeline (see
    {!Eden_obs.Timeline.assemble}); feed it to
    {!Eden_obs.Timeline.to_chrome_json} or {!Eden_obs.Check.run}. *)

val journal_dropped : t -> int
(** Total ring-overflow drops across all nodes.  Non-zero means
    assembled traces are incomplete; pass [~complete:false] to
    {!Eden_obs.Check.run}. *)

(** {2 Health plane}

    Present only when the cluster was built with [~health]; all three
    accessors are cheap and deterministic. *)

val health : t -> Eden_obs.Health.t option
(** The SLO evaluator (rule statuses, report, JSON export). *)

val hot_objects : t -> ?k:int -> node_id -> Eden_obs.Topk.entry list
(** The [k] (default 10) hottest objects as seen from one node's
    sketch — invocations issued there plus locate broadcasts for
    hard-to-find names.  Empty without the health plane. *)

val hot_objects_rollup : t -> ?k:int -> unit -> Eden_obs.Topk.entry list
(** Cluster-wide rollup: the per-node sketches merged under
    {!Eden_obs.Topk.merge}'s conservative error accounting.  This
    report is the input the migration policy consumes.  Empty without
    the health plane. *)

(** {1 Running} *)

val in_process :
  t -> ?name:string -> (unit -> unit) -> Eden_sim.Engine.Pid.t
(** Spawn a driver process (for tests and examples). *)

val run : ?until:Eden_util.Time.t -> t -> unit
(** Run the simulation (see {!Eden_sim.Engine.run}). *)
