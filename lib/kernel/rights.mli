(** Access rights carried in capabilities.

    A capability pairs an object name with a set of rights; an
    operation can only be invoked by a holder of every right the
    operation requires.  [Invoke] is the baseline right required by
    every operation; type designers can additionally demand auxiliary
    rights (e.g. [Aux 0] = "may write") and the kernel reserves rights
    for its own primitives (move, checkpoint, destroy, grant). *)

type right =
  | Invoke  (** baseline: may send invocations at all *)
  | Aux of int  (** type-defined rights, index 0..11 *)
  | Kernel_move
  | Kernel_checkpoint
  | Kernel_destroy
  | Kernel_grant  (** may mint restricted capabilities for others *)

type t
(** An immutable set of rights. *)

val none : t
val all : t
val invoke_only : t

val of_list : right list -> t
(** Raises [Invalid_argument] if an [Aux] index is outside 0..11. *)

val to_list : t -> right list
val mem : right -> t -> bool
val subset : t -> t -> bool
(** [subset a b] — every right in [a] is in [b]. *)

val union : t -> t -> t
val inter : t -> t -> t
val remove : right -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_bits : t -> int
(** Marshalled form: one bit per right, always non-negative. *)

val of_bits : int -> t option
(** Inverse of {!to_bits}; [None] if any unknown bit is set. *)
