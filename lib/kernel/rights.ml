type right =
  | Invoke
  | Aux of int
  | Kernel_move
  | Kernel_checkpoint
  | Kernel_destroy
  | Kernel_grant

type t = int (* bit set *)

let aux_count = 12

let bit = function
  | Invoke -> 0
  | Aux i ->
    if i < 0 || i >= aux_count then invalid_arg "Rights: Aux index out of range";
    1 + i
  | Kernel_move -> 13
  | Kernel_checkpoint -> 14
  | Kernel_destroy -> 15
  | Kernel_grant -> 16

let all_rights =
  [ Invoke ]
  @ List.init aux_count (fun i -> Aux i)
  @ [ Kernel_move; Kernel_checkpoint; Kernel_destroy; Kernel_grant ]

let none = 0
let of_list rs = List.fold_left (fun acc r -> acc lor (1 lsl bit r)) 0 rs
let all = of_list all_rights
let invoke_only = of_list [ Invoke ]
let mem r s = s land (1 lsl bit r) <> 0
let to_list s = List.filter (fun r -> mem r s) all_rights
let subset a b = a land lnot b = 0
let union = ( lor )
let inter = ( land )
let remove r s = s land lnot (1 lsl bit r)
let equal = Int.equal
let to_bits s = s
let of_bits b = if b >= 0 && b land lnot all = 0 then Some b else None

let right_name = function
  | Invoke -> "invoke"
  | Aux i -> Printf.sprintf "aux%d" i
  | Kernel_move -> "move"
  | Kernel_checkpoint -> "checkpoint"
  | Kernel_destroy -> "destroy"
  | Kernel_grant -> "grant"

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map right_name (to_list s)))
