type t =
  | No_such_object
  | No_such_operation of string
  | Rights_violation of string
  | Timeout
  | Object_crashed
  | Node_down
  | Out_of_memory
  | Frozen_immutable
  | Bad_arguments of string
  | User_error of string
  | Move_refused of string
  | Disk_failed

let equal a b =
  match (a, b) with
  | No_such_object, No_such_object
  | Timeout, Timeout
  | Object_crashed, Object_crashed
  | Node_down, Node_down
  | Out_of_memory, Out_of_memory
  | Frozen_immutable, Frozen_immutable
  | Disk_failed, Disk_failed ->
    true
  | No_such_operation x, No_such_operation y
  | Rights_violation x, Rights_violation y
  | Bad_arguments x, Bad_arguments y
  | User_error x, User_error y
  | Move_refused x, Move_refused y ->
    String.equal x y
  | ( ( No_such_object | No_such_operation _ | Rights_violation _ | Timeout
      | Object_crashed | Node_down | Out_of_memory | Frozen_immutable
      | Bad_arguments _ | User_error _ | Move_refused _ | Disk_failed ),
      _ ) ->
    false

let pp ppf = function
  | No_such_object -> Format.pp_print_string ppf "no such object"
  | No_such_operation op -> Format.fprintf ppf "no such operation %S" op
  | Rights_violation op -> Format.fprintf ppf "insufficient rights for %S" op
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Object_crashed -> Format.pp_print_string ppf "object crashed"
  | Node_down -> Format.pp_print_string ppf "node down"
  | Out_of_memory -> Format.pp_print_string ppf "out of memory"
  | Frozen_immutable -> Format.pp_print_string ppf "object is frozen"
  | Bad_arguments msg -> Format.fprintf ppf "bad arguments: %s" msg
  | User_error msg -> Format.fprintf ppf "user error: %s" msg
  | Move_refused msg -> Format.fprintf ppf "move refused: %s" msg
  | Disk_failed -> Format.pp_print_string ppf "checkpoint store failed"

let to_string e = Format.asprintf "%a" pp e
