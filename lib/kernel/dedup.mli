(** Serving-side idempotence bookkeeping for the invocation path.

    Speculative cloning, hedged retries and the fault injector's
    duplicate verdict all deliver one logical request more than once.
    A serving node remembers recently seen request ids — keyed by the
    {e full} (origin, sequence) pair, since per-origin sequence
    counters collide across nodes — and what became of each: queued,
    started, or cancelled.  The table is bounded with oldest-first
    eviction; because sequences are never reissued, eviction can only
    let a duplicate through, never drop a fresh request.

    Cancelled entries additionally carry a lease: a cancel that
    overtakes its own (possibly dropped) request would otherwise pin a
    tombstone slot until cap eviction, and drop-heavy fault plans fill
    the table with them.  With a [ttl], entries still [Cancelled] when
    their lease expires are reclaimed opportunistically; entries that
    progressed past [Cancelled] are never touched.

    One table per node, volatile: {!reset} on crash.  All operations
    are amortised O(1). *)

type t

type state =
  | Queued  (** work accepted and queued, retractable by a cancel *)
  | Started  (** execution began; cancels arriving now are too late *)
  | Cancelled  (** retracted (or cancelled in advance of arrival) *)

val create :
  ?ttl:Eden_util.Time.t -> ?now:(unit -> Eden_util.Time.t) -> cap:int -> unit -> t
(** [create ~cap ()] builds a bounded table.  [ttl] (default: no
    expiry) is the lease granted to [Cancelled]-only entries, measured
    against the monotonic clock [now] (default: constant zero — pass
    the engine clock to arm expiry).  Raises [Invalid_argument] if
    [cap <= 0] or [ttl] is negative. *)

val find : t -> Message.request_id -> state option

val note_queued : t -> Message.request_id -> unit
(** Record that this request's work was accepted and queued.  Call it
    only when work is actually enqueued locally — forwarded or nacked
    requests are not remembered, so a retransmission retries them. *)

val start : t -> Message.request_id -> [ `Run | `Retracted ]
(** Decide at dispatch time: [`Retracted] if a cancel arrived while
    the work was queued (drop it unexecuted), otherwise mark the
    request started — exactly once — and [`Run]. *)

val cancel : t -> Message.request_id -> [ `Retracted | `Too_late | `Noted ]
(** Apply a cancellation: [`Retracted] if the work was still queued
    (it will be dropped at dispatch), [`Too_late] if it already
    started or was already cancelled, [`Noted] if the cancel overtook
    its own request — remembered so the request is dropped on
    arrival. *)

val size : t -> int
val reset : t -> unit
