(** The invocation failure taxonomy.

    Every invocation returns [('a, Error.t) result]; these are the ways
    the kernel or the target's type code can refuse or fail. *)

type t =
  | No_such_object  (** the name resolves nowhere in the system *)
  | No_such_operation of string  (** the type defines no such operation *)
  | Rights_violation of string  (** capability lacks a required right *)
  | Timeout  (** the caller's deadline expired first *)
  | Object_crashed  (** the target crashed while the request was held *)
  | Node_down  (** the hosting node is not accepting work *)
  | Out_of_memory  (** activation or creation could not reserve memory *)
  | Frozen_immutable  (** a mutating operation reached a frozen object *)
  | Bad_arguments of string  (** type code rejected the parameter list *)
  | User_error of string  (** type code signalled an application error *)
  | Move_refused of string  (** mobility precondition failed *)
  | Disk_failed  (** a checksite's checkpoint store is unavailable *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
