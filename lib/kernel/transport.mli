(** Kernel message transport: {!Eden_net.Internet} specialised to
    {!Message.t}.

    A cluster's nodes live on one or more bridged Ethernet segments
    (paper Figure 1 reaches "other networks" through a gateway).
    Transport is best-effort: if the MAC layer drops any fragment of a
    message (collision exhaustion), the whole message is silently lost
    and recovery is the requester's timeout, exactly as in the paper's
    invocation model. *)

type net

type coalesce = Eden_net.Internet.coalesce = {
  co_max_bytes : int;
  co_max_msgs : int;
  co_max_delay : Eden_util.Time.t;
}
(** Unicast coalescing budgets; see {!Eden_net.Internet.coalesce}. *)

val default_coalesce : coalesce

val create_net :
  ?params:Eden_net.Params.t ->
  ?bridge_latency:Eden_util.Time.t ->
  ?coalesce:coalesce ->
  Eden_sim.Engine.t ->
  segments:int ->
  net
(** [segments = 1] (the usual case) builds a single Ethernet with no
    bridge.  Omitting [coalesce] sends every unicast as its own wire
    transfer. *)

val segment_count : net -> int
val frames_delivered : net -> int
val bridge_forwards : net -> int

val coalesced_batches : net -> int
(** Wire transfers that carried two or more coalesced messages. *)

val coalesced_messages : net -> int
(** Messages that travelled inside those batched transfers. *)

val segment_counters : net -> Eden_net.Lan.counters array
(** Per-segment MAC counters, indexed by segment. *)

val bridge_drops : net -> int
(** Messages the bridge discarded because a partition cut the path. *)

val set_partitioned : net -> int -> bool -> unit
(** Cut a segment off from the bridge (or heal it).  See
    {!Eden_net.Internet.set_partitioned}. *)

val partitioned : net -> int -> bool

type fault = Eden_net.Internet.fault =
  | Pass
  | Drop
  | Duplicate
  | Delay of Eden_util.Time.t

val set_fault_injector :
  net -> (src:int -> dst:int option -> fault) option -> unit
(** Install (or clear) a per-message fault decision hook; consulted on
    every unicast ([dst = Some addr]) and broadcast ([dst = None]).
    Must be deterministic given the virtual clock. *)

type event = Eden_net.Internet.event =
  | Ev_drop of { src : int; dst : int option; msgs : int }
  | Ev_duplicate of { src : int; dst : int option; msgs : int }
  | Ev_delay of { src : int; dst : int option; msgs : int; by : Eden_util.Time.t }
  | Ev_coalesce of { src : int; dst : int; msgs : int }

val set_event_hook : net -> (event -> unit) option -> unit
(** Wire-level observability tap; see
    {!Eden_net.Internet.set_event_hook}.  The cluster installs one to
    journal fault verdicts and coalesced flushes at the sending node. *)

type 'a wire_event = 'a Eden_net.Internet.wire_event =
  | Wv_depart of { src : int; dst : int; msgs : int; items : 'a list }
  | Wv_hold of {
      src : int;
      dst : int option;
      by : Eden_util.Time.t;
      items : 'a list;
    }

val set_wire_hook :
  net -> (Message.traced wire_event -> unit) option -> unit
(** Per-payload wire tap for the critical-path profiler; see
    {!Eden_net.Internet.set_wire_hook}.  The cluster installs one
    (only with profiling on) to journal coalescer departures and
    injected holds against each payload's trace. *)

type t
(** A node's transport endpoint. *)

val attach : net -> segment:int -> name:string -> t
val address : t -> int
val segment : t -> int

val on_message : t -> (src:int -> Message.traced -> unit) -> unit
(** The callback must not block. *)

val send : t -> dst:int -> Message.traced -> unit
(** Sending to oneself loopback-delivers asynchronously (never touches
    the wire), so retry loops survive an object relocating onto its own
    requester's node.  Raises [Invalid_argument] only for an unknown
    destination. *)

val send_now : t -> dst:int -> Message.traced -> unit
(** Urgent unicast: bypasses the coalescing queue (after flushing
    anything already queued for [dst], preserving FIFO order).  Used
    for {!Message.t.Cancel} so a retraction is never batched behind
    the work it cancels.  See {!Eden_net.Internet.send_now}. *)

val broadcast : t -> Message.traced -> unit
(** Reaches every node on every segment.  Acts as a coalescing
    barrier: queued unicasts are flushed first. *)

val flush : t -> unit
(** Flush this endpoint's coalescing queues immediately.  No-op when
    coalescing is disabled. *)

val set_up : t -> bool -> unit
(** A downed endpoint neither sends nor delivers. *)

val is_up : t -> bool

val queued_messages : t -> int
(** Messages parked in the endpoint's coalescing queues (zero with
    coalescing off); the [net.queued_messages] health gauge. *)

val reassembly_pending : t -> int
(** Partially received messages awaiting fragments; the
    [net.reassembly_pending] health gauge. *)
