(** Kernel message transport: {!Eden_net.Internet} specialised to
    {!Message.t}.

    A cluster's nodes live on one or more bridged Ethernet segments
    (paper Figure 1 reaches "other networks" through a gateway).
    Transport is best-effort: if the MAC layer drops any fragment of a
    message (collision exhaustion), the whole message is silently lost
    and recovery is the requester's timeout, exactly as in the paper's
    invocation model. *)

type net

val create_net :
  ?params:Eden_net.Params.t ->
  ?bridge_latency:Eden_util.Time.t ->
  Eden_sim.Engine.t ->
  segments:int ->
  net
(** [segments = 1] (the usual case) builds a single Ethernet with no
    bridge. *)

val segment_count : net -> int
val frames_delivered : net -> int
val bridge_forwards : net -> int

val segment_counters : net -> Eden_net.Lan.counters array
(** Per-segment MAC counters, indexed by segment. *)

type t
(** A node's transport endpoint. *)

val attach : net -> segment:int -> name:string -> t
val address : t -> int
val segment : t -> int

val on_message : t -> (src:int -> Message.t -> unit) -> unit
(** The callback must not block. *)

val send : t -> dst:int -> Message.t -> unit
(** Raises [Invalid_argument] when sending to self. *)

val broadcast : t -> Message.t -> unit
(** Reaches every node on every segment. *)

val set_up : t -> bool -> unit
(** A downed endpoint neither sends nor delivers. *)

val is_up : t -> bool
