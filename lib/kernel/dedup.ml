(* Serving-side idempotence bookkeeping for the invocation path.

   Speculative cloning, hedged retries and the fault injector's
   Duplicate verdict all deliver the same request more than once.  The
   requester allocates one request id per logical invocation (a clone
   fan-out shares its id across every site), so the serving node can
   recognise a duplicate by remembering the ids it has recently seen
   and what became of them.

   Keys are the FULL id — (origin node, per-origin sequence).  Every
   node's sequence counter starts at zero, so sequences collide across
   origins constantly; keying by sequence alone would let one
   requester's bookkeeping retract another requester's queued work.

   The table is bounded: keys are remembered in arrival order and the
   oldest is evicted once the cap is reached.  Sequences are monotonic
   per origin (the generator survives crashes precisely so ids are
   never reissued), so an evicted entry can only cause a duplicate to
   slip through — re-executing a read or re-queueing work the
   coordinator will serialise anyway — never a fresh request to be
   wrongly dropped. *)

type state =
  | Queued
  | Started
  | Cancelled

type key = int * int

type t = {
  cap : int;
  tbl : (key, state) Hashtbl.t;
  order : key Queue.t;
}

let create ~cap =
  if cap <= 0 then invalid_arg "Dedup.create: cap must be positive";
  { cap; tbl = Hashtbl.create (min cap 256); order = Queue.create () }

let key (id : Message.request_id) = (id.Message.origin, id.Message.seq)

(* [order] holds each live key exactly once, oldest first: keys are
   enqueued only on first insertion and leave the table only here. *)
let set t k st =
  if not (Hashtbl.mem t.tbl k) then begin
    if Hashtbl.length t.tbl >= t.cap then (
      match Queue.take_opt t.order with
      | Some oldest -> Hashtbl.remove t.tbl oldest
      | None -> ());
    Queue.push k t.order
  end;
  Hashtbl.replace t.tbl k st

let find t id = Hashtbl.find_opt t.tbl (key id)

let note_queued t id = set t (key id) Queued

let start t id =
  let k = key id in
  match Hashtbl.find_opt t.tbl k with
  | Some Cancelled -> `Retracted
  | Some (Queued | Started) | None ->
    set t k Started;
    `Run

let cancel t id =
  let k = key id in
  match Hashtbl.find_opt t.tbl k with
  | Some Queued ->
    set t k Cancelled;
    `Retracted
  | Some (Started | Cancelled) -> `Too_late
  | None ->
    (* The cancel overtook its own request (urgent sends bypass the
       coalescer); remember it so the request is dropped on arrival. *)
    set t k Cancelled;
    `Noted

let size t = Hashtbl.length t.tbl

let reset t =
  Hashtbl.reset t.tbl;
  Queue.clear t.order
