(* Serving-side idempotence bookkeeping for the invocation path.

   Speculative cloning, hedged retries and the fault injector's
   Duplicate verdict all deliver the same request more than once.  The
   requester allocates one request id per logical invocation (a clone
   fan-out shares its id across every site), so the serving node can
   recognise a duplicate by remembering the ids it has recently seen
   and what became of them.

   Keys are the FULL id — (origin node, per-origin sequence).  Every
   node's sequence counter starts at zero, so sequences collide across
   origins constantly; keying by sequence alone would let one
   requester's bookkeeping retract another requester's queued work.

   The table is bounded: keys are remembered in arrival order and the
   oldest is evicted once the cap is reached.  Sequences are monotonic
   per origin (the generator survives crashes precisely so ids are
   never reissued), so an evicted entry can only cause a duplicate to
   slip through — re-executing a read or re-queueing work the
   coordinator will serialise anyway — never a fresh request to be
   wrongly dropped.

   Cancelled entries additionally carry a lease: a cancel that
   overtakes its own request (urgent sends bypass the coalescer) notes
   a tombstone for a request that may never arrive at all — the fault
   injector can have dropped it.  Without expiry every such orphan
   pins a slot until cap eviction, and a drop-heavy plan fills the
   table with tombstones that crowd out live bookkeeping.  With a
   [ttl], a tombstone still in [Cancelled] once its lease runs out is
   reclaimed opportunistically on later operations; an entry that
   progressed past [Cancelled] is never touched.  Expiring a tombstone
   early is as harmless as cap eviction: the worst case is a very late
   duplicate executing once. *)

type state =
  | Queued
  | Started
  | Cancelled

type key = int * int

type t = {
  cap : int;
  ttl : int;  (* lease for Cancelled-only entries, ns; 0 = never expire *)
  now : unit -> Eden_util.Time.t;
  tbl : (key, state) Hashtbl.t;
  order : key Queue.t;
  (* Orphan-cancel leases, expiry order = push order (the clock is
     monotonic).  A key may appear here while its table entry has
     moved on; the state is re-checked at reclaim time. *)
  tombs : (int * key) Queue.t;
}

let create ?(ttl = Eden_util.Time.zero) ?(now = fun () -> Eden_util.Time.zero)
    ~cap () =
  if cap <= 0 then invalid_arg "Dedup.create: cap must be positive";
  if Eden_util.Time.to_ns ttl < 0 then
    invalid_arg "Dedup.create: negative ttl";
  {
    cap;
    ttl = Eden_util.Time.to_ns ttl;
    now;
    tbl = Hashtbl.create (min cap 256);
    order = Queue.create ();
    tombs = Queue.create ();
  }

let key (id : Message.request_id) = (id.Message.origin, id.Message.seq)

(* Reclaim expired tombstones.  Amortised O(1): each lease is pushed
   once and popped once, and the queue is expiry-ordered, so the loop
   stops at the first live lease. *)
let sweep t =
  if t.ttl > 0 then begin
    let now_ns = Eden_util.Time.to_ns (t.now ()) in
    let rec go () =
      match Queue.peek_opt t.tombs with
      | Some (expiry, k) when expiry <= now_ns ->
        ignore (Queue.pop t.tombs);
        (match Hashtbl.find_opt t.tbl k with
        | Some Cancelled -> Hashtbl.remove t.tbl k
        | Some (Queued | Started) | None -> ());
        go ()
      | Some _ | None -> ()
    in
    go ()
  end

let lease t k =
  if t.ttl > 0 then
    Queue.push (Eden_util.Time.to_ns (t.now ()) + t.ttl, k) t.tombs

(* Eviction pops until it removes a key still present: expired
   tombstones leave stale keys behind in [order], and treating a
   stale pop as the eviction would let the table creep past the
   cap. *)
let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some oldest ->
    if Hashtbl.mem t.tbl oldest then Hashtbl.remove t.tbl oldest
    else evict_one t

(* [order] holds each live key at least once, oldest first: keys are
   enqueued on insertion and leave the table via eviction, or via a
   tombstone lease running out. *)
let set t k st =
  if not (Hashtbl.mem t.tbl k) then begin
    if Hashtbl.length t.tbl >= t.cap then evict_one t;
    Queue.push k t.order
  end;
  Hashtbl.replace t.tbl k st

let find t id =
  sweep t;
  Hashtbl.find_opt t.tbl (key id)

let note_queued t id =
  sweep t;
  set t (key id) Queued

let start t id =
  sweep t;
  let k = key id in
  match Hashtbl.find_opt t.tbl k with
  | Some Cancelled -> `Retracted
  | Some (Queued | Started) | None ->
    set t k Started;
    `Run

let cancel t id =
  sweep t;
  let k = key id in
  match Hashtbl.find_opt t.tbl k with
  | Some Queued ->
    set t k Cancelled;
    lease t k;
    `Retracted
  | Some (Started | Cancelled) -> `Too_late
  | None ->
    (* The cancel overtook its own request (urgent sends bypass the
       coalescer); remember it so the request is dropped on arrival.
       The request may also never arrive — leased, not pinned. *)
    set t k Cancelled;
    lease t k;
    `Noted

let size t =
  sweep t;
  Hashtbl.length t.tbl

let reset t =
  Hashtbl.reset t.tbl;
  Queue.clear t.order;
  Queue.clear t.tombs
