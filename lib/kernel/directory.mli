(** The locate directory's shard map: a consistent-hash ring over
    object names.

    Each name deterministically maps to one {e registry shard} — the
    node recording the name's current home and known replica sites —
    via a consistent-hash ring with hundreds of virtual points per
    node.  The map is a pure function of the node set, so every node
    computes the same shard for every name without coordination, and
    a locate becomes a unicast to the shard instead of a broadcast.

    Guarantees (both pinned by the property suite):
    - {b balance}: max/mean shard load stays ≤ 1.3 over random node
      sets (relative arc spread ~1/√vnodes);
    - {b minimal remapping}: a node joining or leaving moves at most
      ~2/n of the keys, and a key not owned by a leaving node keeps
      its shard exactly.

    Hashing is a splitmix64-style finalizer — deterministic across
    runs, independent of [Hashtbl.hash] versioning. *)

type t

val make : ?vnodes:int -> nodes:int list -> unit -> t
(** [make ~nodes ()] builds the ring for the given node-id set.
    [vnodes] (default 512) is the number of virtual points per node.
    Raises [Invalid_argument] on an empty set, duplicate ids, or a
    non-positive [vnodes]. *)

val nodes : t -> int list
(** The node set the ring was built over, ascending. *)

val shard : t -> Name.t -> int
(** The registry shard owning [name]. *)

val shard_skipping : t -> down:(int -> bool) -> Name.t -> int
(** Like {!shard}, but skip ring points whose owner [down] reports
    unavailable and take the next live point on the circle (wrapping).
    With no down nodes this is exactly {!shard}; when the canonical
    shard is down, every caller that agrees on the down set computes
    the same detour shard, so publishes and lookups keep meeting
    without waiting for a membership change.  If {e every} node is
    down the canonical shard is returned (the caller is about to fail
    regardless, and the map stays total). *)

val shard_of_hash_skipping : t -> down:(int -> bool) -> int -> int
(** {!shard_skipping} from a pre-mixed ring position (for tests). *)

val shard_of_hash : t -> int -> int
(** Shard lookup from a pre-mixed ring position (exposed for tests). *)

val hash_name : Name.t -> int
(** The ring position of a name: [Name.hash] re-mixed through the
    64-bit finalizer (the raw table hash clusters badly). *)
