(** Location policy: load balancing over a managed set of objects.

    The paper allows "a policy object responsible for the location of
    objects in a particular subsystem".  This module is that policy
    logic: it watches where a managed set of objects live and migrates
    them from crowded nodes to idle ones using the kernel's [move]
    primitive.  The capabilities handed to the policy must carry
    [Kernel_move]. *)

val managed_load : Cluster.t -> managed:Capability.t list -> (int * int) list
(** Per-node counts of managed, currently-active objects, for every
    node that is up, a current member and not draining: [(node_id,
    count)] sorted by node id.  Spares and decommissioning nodes are
    excluded on both sides — the balancer must never refill a node a
    drain is emptying, nor treat an idle non-member as a cold
    target. *)

val balance_once : Cluster.t -> managed:Capability.t list -> int
(** Blocking.  Migrate objects one at a time from the most- to the
    least-loaded node until the spread is at most one.  Returns the
    number of objects moved.  Objects that refuse to move (busy,
    missing rights) are skipped. *)

val spawn_balancer :
  Cluster.t ->
  period:Eden_util.Time.t ->
  rounds:int ->
  managed:Capability.t list ->
  Eden_sim.Engine.Pid.t
(** A policy process that runs {!balance_once} every [period], [rounds]
    times, then exits. *)
