(** The kernel interface seen from inside an object.

    Every operation handler, reincarnation handler and behaviour
    receives a {!ctx}: the set of kernel-supplied facilities available
    to type code.  From the outside an object is just a capability; the
    two-level view the paper describes — single-level for the invoker,
    explicit location / concurrency / recovery for the type programmer
    — lives entirely in this record. *)

type invoke_result = (Value.t list, Error.t) result

type retry = {
  r_max : int;  (** additional attempts after the first (0 = try once) *)
  r_base : Eden_util.Time.t;  (** backoff before the first retry *)
  r_cap : Eden_util.Time.t;  (** ceiling on any single backoff *)
}
(** Invocation retry policy: recovery is the requester's timeout (paper
    Section 3.2), so a timed-out attempt may be re-issued after a
    capped exponential backoff ([r_base], [2*r_base], [4*r_base], ...
    never exceeding [r_cap]).  Only [Error.Timeout] is retried — every
    other failure is a definitive answer from the system. *)

val no_retry : retry
(** Try exactly once (the historical behaviour). *)

val default_retry : retry
(** 3 retries, 50ms base, 2s cap. *)

val backoff : retry -> int -> Eden_util.Time.t
(** [backoff p i] is the pause before re-issuing after failed attempt
    [i] (0-based): [min r_cap (r_base * 2^i)]. *)

type speculate = {
  sp_clone : bool;
      (** clone read requests on frozen objects to every known replica
          site, first response wins, losers are cancelled *)
  sp_hedge : bool;
      (** re-issue a non-cloned request that has outrun the windowed
          latency quantile below, without abandoning the original *)
  sp_max_sites : int;
      (** cap on the total fan-out of one cloned request, the primary
          destination included (at least 2) *)
  sp_quantile : float;
      (** the hedged retry fires when an attempt's wait exceeds this
          quantile of recently observed remote round trips — strictly
          inside (0,1); 0.95 hedges roughly the slowest 5% *)
}
(** Speculation policy for the invocation hot path.  Cloning and
    hedging both trade duplicate work for tail latency; the serving
    side's idempotence bookkeeping makes the duplicates harmless. *)

val no_speculation : speculate
(** Both mechanisms off (the historical behaviour). *)

val default_speculate : speculate
(** Cloning and hedging on: fan out to at most 3 sites, hedge at the
    0.95 quantile. *)

val validate_speculate : speculate -> (unit, string) result

type ctx = {
  self : Capability.t;  (** full-rights capability for this object *)
  node_id : unit -> int;  (** the node currently executing us *)
  now : unit -> Eden_util.Time.t;
  random : Eden_util.Splitmix.t;  (** per-object deterministic stream *)
  compute : Eden_util.Time.t -> unit;
      (** consume CPU service time on this node's processor pool *)
  log : string -> unit;  (** App-category trace *)
  (* representation *)
  get_repr : unit -> Value.t;
  set_repr : Value.t -> (unit, Error.t) result;
      (** fails with [Frozen_immutable] on frozen objects *)
  (* invocation of other objects; [?timeout] bounds each attempt and
     [?retry] (default {!no_retry}) re-issues timed-out attempts with
     capped exponential backoff *)
  invoke :
    ?timeout:Eden_util.Time.t ->
    ?retry:retry ->
    Capability.t ->
    op:string ->
    Value.t list ->
    invoke_result;
  invoke_async :
    ?timeout:Eden_util.Time.t ->
    ?retry:retry ->
    Capability.t ->
    op:string ->
    Value.t list ->
    invoke_result Eden_sim.Promise.t;
  create_object :
    type_name:string ->
    ?node:int ->
    Value.t ->
    (Capability.t, Error.t) result;
      (** create a sibling object (default: on this node) *)
  (* reliability *)
  checkpoint : unit -> (unit, Error.t) result;
      (** synchronous: returns once every checksite acknowledged (or
          the shared acknowledgement deadline expired) *)
  checkpoint_async : unit -> (unit, Error.t) result;
      (** start a checkpoint of the current representation and return
          immediately; the local-disk and remote-site writes proceed in
          the background against one shared deadline.  A request made
          while a round is already in flight coalesces into one
          follow-up round that snapshots the then-current
          representation.  [Ok ()] means the round was launched (or
          coalesced), not that it succeeded — failures surface in the
          [eden.ckpt.*] counters and, as ever, at reincarnation
          time. *)
  set_reliability : Reliability.t -> (unit, Error.t) result;
  crash : unit -> unit;
      (** destroy all active state; does not return (the invocation
          process is killed) *)
  (* location *)
  move_to : int -> (unit, Error.t) result;
  freeze : unit -> unit;
  replicate_to : int -> (unit, Error.t) result;
      (** install a read-only replica of this frozen object *)
  (* intra-object communication, the kernel's semaphore and message
     port primitives; names are scoped to this object and created on
     first use, shared across its invocations and behaviours *)
  semaphore : string -> init:int -> Eden_sim.Semaphore.t;
  port : string -> Value.t Eden_sim.Mailbox.t;
  (* concurrency *)
  spawn_subprocess : (unit -> unit) -> unit;
      (** a subordinate process of the current invocation; it is killed
          with the object on crash *)
}

type handler = ctx -> Value.t list -> invoke_result
(** An operation implementation. *)

val reply : Value.t list -> invoke_result
val fail : Error.t -> invoke_result
val reply_unit : invoke_result
val user_error : string -> invoke_result
val bad_arguments : string -> invoke_result

val arg1 : Value.t list -> (Value.t, Error.t) result
val arg2 : Value.t list -> (Value.t * Value.t, Error.t) result
val arg3 : Value.t list -> (Value.t * Value.t * Value.t, Error.t) result
val no_args : Value.t list -> (unit, Error.t) result

val int_arg : Value.t -> (int, Error.t) result
val str_arg : Value.t -> (string, Error.t) result
val cap_arg : Value.t -> (Capability.t, Error.t) result
val bool_arg : Value.t -> (bool, Error.t) result

val ( let* ) :
  ('a, Error.t) result -> ('a -> ('b, Error.t) result) -> ('b, Error.t) result
