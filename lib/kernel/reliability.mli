(** Reliability levels for long-term state.

    The paper's [checksite] primitive lets an object choose "which node
    is responsible for maintaining its long-term storage, and what
    level of reliability is required"; different levels cause different
    actions when a checkpoint is issued. *)

type t =
  | Local  (** checkpoint to the hosting node's own disk *)
  | Remote of int  (** checkpoint to the given node's disk *)
  | Mirrored of int list
      (** checkpoint to every listed node; the object survives any
          single checksite failure.  The list must be non-empty and
          duplicate-free. *)

val validate : t -> node_count:int -> (unit, string) result
val checksites : t -> home:int -> int list
(** The node ids holding the long-term state, given the hosting node. *)

val fanout : primary:int -> candidates:int list -> max_extra:int -> int list
(** Site hygiene for a speculative fan-out: the candidate sites with
    duplicates and the primary removed, in ascending id order, capped
    at [max_extra].  Empty when [max_extra <= 0]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
