open Eden_sim

(* Only live, non-draining members take part in balancing.  A spare
   (powered but outside the membership) must never look like an idle
   cold target, and a draining node is being emptied by decommission —
   treating it as cold sets up a cross-round oscillation where the
   balancer refills the very node the drain is evacuating. *)
let eligible cl i =
  Cluster.node_up cl i
  && Cluster.is_member cl i
  && not (Cluster.is_draining cl i)

let managed_load cl ~managed =
  let n = Cluster.node_count cl in
  let counts = Array.make n 0 in
  List.iter
    (fun cap ->
      match Cluster.where_is cl cap with
      | Some node -> counts.(node) <- counts.(node) + 1
      | None -> ())
    managed;
  List.filter_map
    (fun i -> if eligible cl i then Some (i, counts.(i)) else None)
    (List.init n Fun.id)

let extremes loads =
  match loads with
  | [] -> None
  | (n0, c0) :: rest ->
    let mx, mn =
      List.fold_left
        (fun ((mxn, mxc), (mnn, mnc)) (n, c) ->
          ( (if c > mxc then (n, c) else (mxn, mxc)),
            if c < mnc then (n, c) else (mnn, mnc) ))
        ((n0, c0), (n0, c0))
        rest
    in
    Some (mx, mn)

(* Moves ride [Cluster.move] -> [do_move], whose success path
   publishes the new home to the name's registry shard — so a
   balanced-away object is found in one directory message by the next
   requester instead of costing everyone a nack round (pinned by the
   balance regression in the chaos suite). *)
let balance_once cl ~managed =
  let rec step moved =
    match extremes (managed_load cl ~managed) with
    | None -> moved
    | Some ((hot, hot_count), (cold, cold_count)) ->
      if hot_count - cold_count <= 1 then moved
      else begin
        (* Candidates that refuse to move (busy or under-privileged)
           must not end the round: one pinned object on the hot node
           would wedge the balancer forever.  Try each in turn. *)
        let rec try_each = function
          | [] -> moved
          | cap :: rest ->
            if Cluster.where_is cl cap <> Some hot then try_each rest
            else (
              match Cluster.move cl cap ~to_node:cold with
              | Ok () -> step (moved + 1)
              | Error _ -> try_each rest)
        in
        try_each managed
      end
  in
  step 0

let spawn_balancer cl ~period ~rounds ~managed =
  Engine.spawn (Cluster.engine cl) ~name:"policy:balancer" (fun () ->
      for _ = 1 to rounds do
        Engine.delay period;
        ignore (balance_once cl ~managed)
      done)
