(* The locate directory's shard map: a consistent-hash ring over
   object names.

   Every name deterministically owns a position on a 62-bit hash
   circle; each node projects [vnodes] virtual points onto the same
   circle, and the name's registry shard is the node owning the first
   point at or after the name's position (wrapping).  Two properties
   make this the right shape for a location registry:

   - balance: with hundreds of points per node the arc a node owns
     concentrates tightly around 1/n of the circle (relative spread
     ~1/sqrt(vnodes)), so no shard becomes a hot spot — the property
     suite bounds max/mean shard load at 1.3 over random node sets;
   - minimal remapping: removing a node reassigns exactly the keys in
     its own arcs and no others, and adding one steals only the arcs
     the new points cover — at most ~1/n of the keys move, bounded at
     2/n in the property suite.  Every other name keeps its shard, so
     registry state survives membership almost entirely in place.

   The map is a pure function of the node set: no coordination, no
   state, and every node computes the same answer — which is what
   lets a requester unicast a lookup instead of broadcasting.  The
   quality of the spread rests on the mixer, not on [Name.hash]
   (which is a cheap table hash with visible structure), so positions
   are derived through a splitmix64-style finalizer. *)

let default_vnodes = 512

(* Splitmix64's finalizer: full-avalanche 64-bit mixing, folded to a
   non-negative OCaml int.  Deterministic across runs and platforms —
   shard placement must never depend on [Hashtbl.hash] versioning or
   wall-clock anything. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let fold_int z = Int64.to_int z land max_int

(* Points and names must draw from disjoint mixer input domains: with
   a shared domain, node 0's point [k] is [mix64 k] while a name born
   on node 0 with serial [s] hashes to [mix64 s] — every such name
   lands exactly on a node-0 vnode and the "first point at or after"
   search hands node 0 the whole keyspace.  Points mix even inputs,
   names odd, so a name's position can never coincide with a point by
   construction (rather than by constant-picking luck). *)

(* Position of virtual point [k] of [node] on the circle. *)
let point node k =
  fold_int
    (mix64
       (Int64.mul 2L
          (Int64.add
             (Int64.mul (Int64.of_int node) 0x9E3779B97F4A7C15L)
             (Int64.of_int k))))

(* Position of a name on the circle.  [Name.hash] alone clusters
   badly (it is built for bucket tables), so it is re-mixed. *)
let hash_name name =
  fold_int
    (mix64 (Int64.add (Int64.mul 2L (Int64.of_int (Name.hash name))) 1L))

type t = {
  dir_hashes : int array;  (* vnode positions, ascending *)
  dir_owners : int array;  (* owning node per position *)
  dir_nodes : int list;  (* the node set, ascending *)
}

let make ?(vnodes = default_vnodes) ~nodes () =
  if vnodes < 1 then invalid_arg "Directory.make: vnodes must be positive";
  if nodes = [] then invalid_arg "Directory.make: empty node set";
  let sorted = List.sort_uniq Int.compare nodes in
  if List.length sorted <> List.length nodes then
    invalid_arg "Directory.make: duplicate node ids";
  let nodes = sorted in
  let n = List.length nodes in
  let points = Array.make (n * vnodes) (0, 0) in
  List.iteri
    (fun i node ->
      for k = 0 to vnodes - 1 do
        points.((i * vnodes) + k) <- (point node k, node)
      done)
    nodes;
  (* Ties (astronomically rare 62-bit collisions) break on the lower
     node id, so the ring is a total function of the node set. *)
  Array.sort compare points;
  {
    dir_hashes = Array.map fst points;
    dir_owners = Array.map snd points;
    dir_nodes = nodes;
  }

let nodes t = t.dir_nodes

(* First point at or after [h], wrapping past the top of the circle
   back to the first point. *)
let shard_of_hash t h =
  let hashes = t.dir_hashes in
  let len = Array.length hashes in
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if hashes.(mid) < h then lo := mid + 1 else hi := mid
  done;
  t.dir_owners.(if !lo = len then 0 else !lo)

let shard t name = shard_of_hash t (hash_name name)

(* Like [shard_of_hash], but walk past ring points whose owner the
   caller reports down, wrapping round the circle.  The walk visits
   each point at most once; if every owner is down the plain owner is
   returned — the caller is about to fail anyway, and returning the
   canonical shard keeps the answer a total function of (ring, down).
   Publishers and readers that agree on the down set agree on the
   detour shard, so a name's registry survives its shard crashing
   without waiting for a membership change. *)
let shard_of_hash_skipping t ~down h =
  let hashes = t.dir_hashes in
  let len = Array.length hashes in
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if hashes.(mid) < h then lo := mid + 1 else hi := mid
  done;
  let start = if !lo = len then 0 else !lo in
  let rec walk i =
    if i >= len then t.dir_owners.(start)
    else
      let at = start + i in
      let at = if at >= len then at - len else at in
      let owner = t.dir_owners.(at) in
      if down owner then walk (i + 1) else owner
  in
  walk 0

let shard_skipping t ~down name =
  shard_of_hash_skipping t ~down (hash_name name)
