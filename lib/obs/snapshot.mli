(** A point-in-time export of the whole observability state.

    A snapshot pairs the registry's sampled metrics with the retained
    invocation spans at a given virtual time.  It serialises to a
    stable JSON schema ([eden-metrics/1]) and parses back, so external
    tooling — and the repo's own tests — can verify every exported
    number. *)

type t = {
  at : Eden_util.Time.t;  (** virtual time of the sample *)
  metrics : Metrics.sample list;
  spans : Span.info list;
}

val take : at:Eden_util.Time.t -> ?spans:Span.collector -> Metrics.t -> t
(** Sample the registry (and, when given, drain-read the collector's
    retained spans). *)

val find : t -> ?labels:Metrics.labels -> string -> Metrics.value option

val to_json : t -> Json.t
(** Schema:
    {v
    { "schema":  "eden-metrics/1",
      "at_ns":   <int>,
      "metrics": [ { "name": ..., "labels": {...}, "kind": "counter",
                     "value": <int> }
                 | { ..., "kind": "gauge", "value": <float> }
                 | { ..., "kind": "histogram", "bounds": [...],
                     "counts": [...], "overflow": <int>,
                     "count": <int>, "sum": <float> } ],
      "spans":   [ <Span.info_to_json> ... ] }
    v} *)

val of_json : Json.t -> (t, string) result

val to_string : ?compact:bool -> t -> string
val of_string : string -> (t, string) result

val write_file : ?compact:bool -> t -> path:string -> unit
(** Write the JSON export (plus a trailing newline) to [path],
    creating missing parent directories first.  Raises [Sys_error] if
    the path is unwritable. *)

val pp_table : t -> string
(** Render the metric samples as aligned ASCII tables: one table with
    node-labelled metrics as rows and nodes as columns, one for
    segment-labelled metrics, one for everything else (histograms show
    count / mean). *)
