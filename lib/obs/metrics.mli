(** The cluster-wide metrics registry.

    Components register named instruments — monotonic counters, gauges
    and fixed-bucket histograms — optionally distinguished by labels
    (per-node, per-segment, per-category).  The registry can be sampled
    at any virtual time into a deterministic, sorted list of samples;
    {!Snapshot} turns that list into JSON.

    Two registration styles coexist:

    - {e owned} instruments ({!counter}, {!gauge}, {!histogram}) return
      a handle the instrumented code updates on its hot path;
    - {e sampled} instruments ({!register_counter_fn},
      {!register_gauge_fn}) wrap a closure that is read at sample time,
      for components that already maintain their own cumulative
      counters (LAN frame counts, engine event counts, CPU busy time).

    Registering the same [(name, labels)] pair twice returns the
    existing instrument when the kind matches and raises
    [Invalid_argument] when it does not, so independent subsystems can
    share an instrument by name. *)

type t

type labels = (string * string) list
(** Order-insensitive; stored and exported sorted by key. *)

val create : unit -> t

(** {1 Owned instruments} *)

type counter

val counter : t -> ?labels:labels -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative amount (counters are
    monotonic). *)

val counter_value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
(** Stores [v]; a NaN is silently dropped (it would make every later
    threshold comparison against the gauge false). *)

val gauge_value : gauge -> float

type histogram

val histogram : t -> ?labels:labels -> buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an observation [v]
    lands in the first bucket with [v <= bound], or in the overflow
    count beyond the last bound.  Raises [Invalid_argument] on an empty
    or non-increasing bound array.  Re-registration requires identical
    bounds. *)

val observe : histogram -> float -> unit
(** Histograms record magnitudes: NaN, negative and infinite
    observations are silently dropped (a NaN would poison the running
    sum, a negative would land in the first bucket). *)

val observe_time : histogram -> Eden_util.Time.t -> unit
(** Record a duration in seconds, with the same guard as {!observe}. *)

(** {1 Sampled instruments} *)

val register_counter_fn : t -> ?labels:labels -> string -> (unit -> int) -> unit
val register_gauge_fn : t -> ?labels:labels -> string -> (unit -> float) -> unit

(** {1 Sampling} *)

type histogram_view = {
  bounds : float array;
  counts : int array;  (** per-bucket (not cumulative), same length *)
  overflow : int;
  count : int;  (** total observations *)
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of histogram_view

type sample = { s_name : string; s_labels : labels; s_value : value }

val sample : t -> sample list
(** Read every instrument (invoking sampled closures), sorted by name
    then labels — the same registry contents always yield the same
    list. *)

val find : sample list -> ?labels:labels -> string -> value option

val iter : ?filter:(string -> bool) -> t -> (string -> labels -> value -> unit) -> unit
(** Visit every instrument (invoking sampled closures) in unspecified
    order, without building or sorting a sample list — the cheap read
    path for periodic samplers.  Callers aggregating across label sets
    must use order-insensitive folds (sums, maxima) to stay
    deterministic.  When [filter] is given, instruments whose name it
    rejects are skipped {e before} being read, so their collector
    closures are never evaluated — a periodic sampler tracking a few
    names must not pay for expensive unrelated gauges. *)
