open Eden_util

type labels = (string * string) list

type counter = int ref
type gauge = float ref

type histogram = {
  h_bounds : float array;
  h_counts : int array;  (* one per bound, plus overflow at the end *)
  mutable h_sum : float;
  mutable h_n : int;
}

type instrument =
  | I_counter of counter
  | I_counter_fn of (unit -> int)
  | I_gauge of gauge
  | I_gauge_fn of (unit -> float)
  | I_histogram of histogram

type t = { tbl : (string * labels, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | I_counter _ | I_counter_fn _ -> "counter"
  | I_gauge _ | I_gauge_fn _ -> "gauge"
  | I_histogram _ -> "histogram"

(* Register [make ()] under [(name, labels)], or return the existing
   instrument when [reuse] accepts it. *)
let intern reg ?(labels = []) name ~reuse ~make =
  let key = (name, canon labels) in
  match Hashtbl.find_opt reg.tbl key with
  | Some existing -> (
    match reuse existing with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" name
           (kind_name existing)))
  | None ->
    let inst, v = make () in
    Hashtbl.replace reg.tbl key inst;
    v

let counter reg ?labels name =
  intern reg ?labels name
    ~reuse:(function I_counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = ref 0 in
      (I_counter c, c))

let incr c = Stdlib.incr c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c := !c + n

let counter_value c = !c

let gauge reg ?labels name =
  intern reg ?labels name
    ~reuse:(function I_gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = ref 0.0 in
      (I_gauge g, g))

(* NaN would poison every later comparison against the gauge (all
   orderings are false), so a NaN store is dropped rather than stored. *)
let set g v = if Float.is_nan v then () else g := v
let gauge_value g = !g

let histogram reg ?labels ~buckets name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  intern reg ?labels name
    ~reuse:(function
      | I_histogram h when h.h_bounds = buckets -> Some h
      | I_histogram _ ->
        invalid_arg
          (Printf.sprintf "Metrics: histogram %S bucket mismatch" name)
      | _ -> None)
    ~make:(fun () ->
      let h =
        {
          h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets + 1) 0;
          h_sum = 0.0;
          h_n = 0;
        }
      in
      (I_histogram h, h))

(* A NaN observation fails every [v <= bound] test and lands in
   overflow while turning [h_sum] into NaN for good; a negative one
   lands in the first bucket and drags the sum down.  Histograms here
   record magnitudes (durations, sizes), so both are measurement bugs:
   drop them instead of polluting the buckets. *)
let observe h v =
  if Float.is_nan v || v < 0.0 || v = infinity then ()
  else begin
    let n = Array.length h.h_bounds in
    let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
    let i = slot 0 in
    h.h_counts.(i) <- h.h_counts.(i) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_n <- h.h_n + 1
  end

let observe_time h t = observe h (Time.to_sec t)

let register_counter_fn reg ?labels name f =
  intern reg ?labels name
    ~reuse:(fun _ -> None)
    ~make:(fun () -> (I_counter_fn f, ()))

let register_gauge_fn reg ?labels name f =
  intern reg ?labels name
    ~reuse:(fun _ -> None)
    ~make:(fun () -> (I_gauge_fn f, ()))

(* -------------------------------------------------------------------- *)
(* Sampling *)

type histogram_view = {
  bounds : float array;
  counts : int array;
  overflow : int;
  count : int;
  sum : float;
}

type value = Counter of int | Gauge of float | Histogram of histogram_view

type sample = { s_name : string; s_labels : labels; s_value : value }

let read = function
  | I_counter c -> Counter !c
  | I_counter_fn f -> Counter (f ())
  | I_gauge g -> Gauge !g
  | I_gauge_fn f -> Gauge (f ())
  | I_histogram h ->
    let n = Array.length h.h_bounds in
    Histogram
      {
        bounds = Array.copy h.h_bounds;
        counts = Array.sub h.h_counts 0 n;
        overflow = h.h_counts.(n);
        count = h.h_n;
        sum = h.h_sum;
      }

let compare_labels a b =
  compare (a : labels) (b : labels)

let sample reg =
  Hashtbl.fold
    (fun (name, labels) inst acc ->
      { s_name = name; s_labels = labels; s_value = read inst } :: acc)
    reg.tbl []
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare_labels a.s_labels b.s_labels
         | c -> c)

(* [filter] is consulted before [read], so instruments it rejects never
   have their collector closures evaluated.  That matters for callers on
   a hot sampling path: registered gauge functions may walk large
   structures (e.g. the engine's process table), and a periodic sampler
   interested in a handful of names must not pay for the rest. *)
let iter ?filter reg f =
  let want =
    match filter with None -> fun _ -> true | Some p -> p
  in
  Hashtbl.iter
    (fun (name, labels) inst ->
      if want name then f name labels (read inst))
    reg.tbl

let find samples ?(labels = []) name =
  let labels = canon labels in
  List.find_map
    (fun s ->
      if String.equal s.s_name name && s.s_labels = labels then
        Some s.s_value
      else None)
    samples
