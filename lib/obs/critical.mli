(** Critical-path latency attribution over the causal trace.

    Reconstructs, for each request, where its end-to-end virtual time
    went: the journals already record the request's whole causal story
    (send/recv edges, queue residency, coalescer holds, retry backoff,
    clone waits, directory hops, drain stalls), and event ids are
    allocated in engine execution order — which never runs ahead of
    virtual time — so the id-sorted events of one trace have
    nondecreasing timestamps.  Walking consecutive events and
    classifying each inter-event gap by its bounding events therefore
    tiles the interval [Inv_begin, Inv_end] exactly: the per-category
    sums telescope to the end-to-end latency, nanosecond for
    nanosecond.  Checker rule 8 ({e attribution-complete}) re-verifies
    that identity on every complete trace.

    When several branches of one request are in flight at once (clone
    fan-out, broadcast locate), each instant is attributed to the
    branch that produces the {e next} event of the trace — a
    deterministic tie-break that keeps the sums exact.

    The profiling-gated kinds ({!Journal.Work_start},
    {!Journal.Net_flush}, {!Journal.Net_hold}, {!Journal.Drain_stall})
    sharpen the split — queue vs service, coalescer vs wire, injected
    hold vs transit; without them the attribution is coarser but still
    exact. *)

open Eden_util

(** Where a slice of a request's latency went. *)
type category =
  | Service  (** executing at an endpoint — including injected holds,
                 which model a slow endpoint rather than a slow wire *)
  | Queue  (** waiting for an invocation slot at the target *)
  | Wire  (** in transit: MAC contention, transfer, bridge hops *)
  | Coalesce  (** parked in a sender's coalescing queue *)
  | Directory  (** locate machinery: broadcasts, registry hops, hints,
                   stale-location nacks *)
  | Backoff  (** sleeping between retry attempts *)
  | Spec_wait  (** a clone fan-out waiting for its first response *)
  | Drain  (** stashed behind a draining object *)
  | Wait  (** requester-side waiting not otherwise classified, e.g.
              the tail of a timed-out attempt *)

val categories : category list
(** All categories, in display (and index) order. *)

val category_name : category -> string
val category_index : category -> int

val n_categories : int

type breakdown = {
  bd_trace : int;  (** trace id ([Inv_begin]'s event id) *)
  bd_node : int;  (** origin node *)
  bd_op : string;
  bd_target : string;
  bd_outcome : string;
  bd_begin : Time.t;  (** virtual time of [Inv_begin] *)
  bd_total_ns : int;  (** end-to-end latency, [Inv_end - Inv_begin] *)
  bd_parts : int array;
      (** nanoseconds per category, indexed by {!category_index};
          sums to [bd_total_ns] exactly *)
}

val part : breakdown -> category -> int
val sum_parts : breakdown -> int

val dominant : breakdown -> category
(** The category with the largest share (first in {!categories} order
    on ties). *)

val attribute : Journal.event list -> breakdown option
(** Attribute one trace.  The list must be a single trace's events
    sorted by id.  [None] unless the trace contains an [Inv_begin]
    and a later [Inv_end] (crashed, still-running, or truncated
    requests are not attributed). *)

val breakdowns : Journal.event list -> breakdown list
(** Group a merged event list (e.g. a {!Timeline.t}) by trace and
    attribute every complete request, ascending by trace id. *)
