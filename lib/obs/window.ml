(* Ring-of-deltas sliding windows (see window.mli).  One float array per
   window, one int array per histogram bucket row: pushes write a slot
   and bump the head, queries walk back from the head.  Nothing here
   allocates after [create] except [merge], which builds its result. *)

module Time = Eden_util.Time

type t = {
  w_cap : int;
  w_vals : float array;
  mutable w_head : int; (* next slot to write *)
  mutable w_filled : int;
}

let create ~ticks =
  if ticks <= 0 then invalid_arg "Window.create: ticks must be positive";
  { w_cap = ticks; w_vals = Array.make ticks 0.0; w_head = 0; w_filled = 0 }

let ticks w = w.w_cap
let filled w = w.w_filled

let push w v =
  w.w_vals.(w.w_head) <- v;
  w.w_head <- (w.w_head + 1) mod w.w_cap;
  if w.w_filled < w.w_cap then w.w_filled <- w.w_filled + 1

(* Newest-first: [age] 0 is the most recent tick.  Callers clamp [k]
   to [filled] first, so the index never wraps past live data. *)
let slot w age = (w.w_head - 1 - age + (2 * w.w_cap)) mod w.w_cap

let effective w k = min k w.w_filled

let sum_last w k =
  let k = effective w k in
  let acc = ref 0.0 in
  for age = 0 to k - 1 do
    acc := !acc +. w.w_vals.(slot w age)
  done;
  !acc

let max_last w k =
  let k = effective w k in
  if k = 0 then nan
  else begin
    let acc = ref w.w_vals.(slot w 0) in
    for age = 1 to k - 1 do
      let v = w.w_vals.(slot w age) in
      if v > !acc then acc := v
    done;
    !acc
  end

let mean_last w k =
  let k = effective w k in
  if k = 0 then nan else sum_last w k /. float_of_int k

let rate_last w k ~tick =
  let k = effective w k in
  if k = 0 then nan
  else sum_last w k /. (float_of_int k *. Time.to_sec tick)

let merge a b =
  if a.w_cap <> b.w_cap then invalid_arg "Window.merge: capacity mismatch";
  let m = create ~ticks:a.w_cap in
  let f = max a.w_filled b.w_filled in
  (* Build oldest-first so the result's head lands after the newest. *)
  for age = f - 1 downto 0 do
    let va = if age < a.w_filled then a.w_vals.(slot a age) else 0.0 in
    let vb = if age < b.w_filled then b.w_vals.(slot b age) else 0.0 in
    push m (va +. vb)
  done;
  m

module Hist = struct
  type h = {
    h_bounds : float array;
    h_buckets : int; (* bounds + overflow *)
    h_cap : int;
    h_rows : int array; (* h_cap rows of h_buckets per-tick deltas *)
    mutable h_head : int;
    mutable h_filled : int;
    h_acc : int array; (* query scratch, h_buckets wide *)
  }

  let create ~ticks ~bounds =
    if ticks <= 0 then invalid_arg "Window.Hist.create: ticks must be positive";
    if Array.length bounds = 0 then
      invalid_arg "Window.Hist.create: empty bounds";
    let nb = Array.length bounds + 1 in
    {
      h_bounds = Array.copy bounds;
      h_buckets = nb;
      h_cap = ticks;
      h_rows = Array.make (ticks * nb) 0;
      h_head = 0;
      h_filled = 0;
      h_acc = Array.make nb 0;
    }

  let push h ~counts ~overflow =
    if Array.length counts <> Array.length h.h_bounds then
      invalid_arg "Window.Hist.push: counts/bounds length mismatch";
    let row = h.h_head * h.h_buckets in
    Array.blit counts 0 h.h_rows row (Array.length counts);
    h.h_rows.(row + h.h_buckets - 1) <- overflow;
    h.h_head <- (h.h_head + 1) mod h.h_cap;
    if h.h_filled < h.h_cap then h.h_filled <- h.h_filled + 1

  let accumulate h k =
    let k = min k h.h_filled in
    Array.fill h.h_acc 0 h.h_buckets 0;
    for age = 0 to k - 1 do
      let r = (h.h_head - 1 - age + (2 * h.h_cap)) mod h.h_cap in
      let row = r * h.h_buckets in
      for i = 0 to h.h_buckets - 1 do
        h.h_acc.(i) <- h.h_acc.(i) + h.h_rows.(row + i)
      done
    done

  let count_last h k =
    accumulate h k;
    Array.fold_left ( + ) 0 h.h_acc

  let quantile_last h k q =
    if not (q >= 0.0 && q <= 1.0) then
      invalid_arg "Window.Hist.quantile_last: q out of [0,1]";
    accumulate h k;
    let total = Array.fold_left ( + ) 0 h.h_acc in
    if total = 0 then nan
    else begin
      (* Nearest rank, 1-based; q = 0 maps to the first observation. *)
      let rank =
        max 1 (int_of_float (ceil (q *. float_of_int total)))
      in
      let rank = min rank total in
      let cum = ref 0 in
      let result = ref h.h_bounds.(Array.length h.h_bounds - 1) in
      (try
         for i = 0 to h.h_buckets - 1 do
           let c = h.h_acc.(i) in
           if c > 0 && !cum + c >= rank then begin
             if i = h.h_buckets - 1 then
               (* Overflow: the estimator is blind past the last bound. *)
               result := h.h_bounds.(Array.length h.h_bounds - 1)
             else begin
               let lo = if i = 0 then 0.0 else h.h_bounds.(i - 1) in
               let hi = h.h_bounds.(i) in
               let within = float_of_int (rank - !cum) /. float_of_int c in
               result := lo +. ((hi -. lo) *. within)
             end;
             raise Exit
           end;
           cum := !cum + c
         done
       with Exit -> ());
      !result
    end
end
