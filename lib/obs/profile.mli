(** Per-workload critical-path profiles.

    Aggregates {!Critical}'s per-request breakdowns into a
    deterministic profile: exact aggregate shares per category, and
    exact per-request breakdowns at p50/p95/p999 (nearest-rank
    selection over the latency-sorted requests — a selection, never an
    interpolation, so same-seed runs render byte-identical output).

    Exports: human-readable text, JSON, folded flame-graph stacks
    ([flamegraph.pl] format), and Chrome trace_event duration bars to
    overlay on a {!Timeline} export. *)

type t

val of_timeline : Timeline.t -> t
val of_events : Journal.event list -> t

val requests : t -> int
(** Requests attributed (traces bracketing a complete invocation). *)

val skipped : t -> int
(** Traces with an [Inv_begin] but no attributable end — crashed,
    still in flight, or truncated by ring wrap-around. *)

val total_ns : t -> int
(** Attributed virtual nanoseconds, summed over requests. *)

val share : t -> Critical.category -> float
(** Aggregate share of a category in [0, 1]. *)

val dominant : t -> Critical.category
(** The category with the largest aggregate share. *)

val quantile : t -> float -> Critical.breakdown option
(** [quantile t 0.95] is the nearest-rank p95 request's exact
    breakdown; [None] when no requests were attributed. *)

val to_text : t -> string
val to_json : t -> Json.t

val to_folded : t -> string
(** Folded flame-graph stacks: one
    ["eden;<target>.<op>;<category> <ns>"] line per stack, sorted. *)

val chrome_extra : t -> Json.t list
(** One ["ph": "X"] duration event per attributed request (category
    breakdown in [args]); pass to {!Timeline.to_chrome_json} as
    [?extra]. *)
