open Eden_util

type kind =
  | Send of { msg : string; dst : int option }
  | Recv of { msg : string; src : int }
  | Drop of { dst : int option; msgs : int }
  | Duplicate of { dst : int option; msgs : int }
  | Delay of { dst : int option; msgs : int }
  | Coalesce of { dst : int; msgs : int }
  | Retry of { op : string; attempt : int }
  | Inv_begin of { op : string; target : string }
  | Inv_end of { op : string; outcome : string }
  | Ckpt_round of { target : string; version : int }
  | Cache_install of { target : string; epoch : int }
  | Cache_invalidate of { target : string; epoch : int }
  | Activate of { target : string; version : int }
  | Alert of { rule : string; firing : bool }
  | Clone_fanout of { op : string; sites : int }
  | Clone_win of { op : string; winner : int }
  | Clone_cancel of { dst : int }
  | Hedge of { op : string; dst : int }
  | Dir_hit of { target : string; home : int }
  | Dir_miss of { target : string }
  | Dir_fallback of { target : string }
  | Dir_publish of { target : string; home : int }
  | Epoch_bump of { epoch : int }
  | Drain_move of { target : string; to_node : int }
  | Work_start of { op : string }
  | Net_flush of { dst : int; msgs : int }
  | Net_hold of { dst : int option; by : Time.t }
  | Drain_stall of { target : string }

let kind_name = function
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Drop _ -> "drop"
  | Duplicate _ -> "duplicate"
  | Delay _ -> "delay"
  | Coalesce _ -> "coalesce"
  | Retry _ -> "retry"
  | Inv_begin _ -> "inv_begin"
  | Inv_end _ -> "inv_end"
  | Ckpt_round _ -> "ckpt_round"
  | Cache_install _ -> "cache_install"
  | Cache_invalidate _ -> "cache_invalidate"
  | Activate _ -> "activate"
  | Alert _ -> "alert"
  | Clone_fanout _ -> "clone_fanout"
  | Clone_win _ -> "clone_win"
  | Clone_cancel _ -> "clone_cancel"
  | Hedge _ -> "hedge"
  | Dir_hit _ -> "dir_hit"
  | Dir_miss _ -> "dir_miss"
  | Dir_fallback _ -> "dir_fallback"
  | Dir_publish _ -> "dir_publish"
  | Epoch_bump _ -> "epoch_bump"
  | Drain_move _ -> "drain_move"
  | Work_start _ -> "work_start"
  | Net_flush _ -> "net_flush"
  | Net_hold _ -> "net_hold"
  | Drain_stall _ -> "drain_stall"

let pp_dst = function Some d -> Printf.sprintf "n%d" d | None -> "*"

let describe_kind = function
  | Send { msg; dst } -> Printf.sprintf "send %s -> %s" msg (pp_dst dst)
  | Recv { msg; src } -> Printf.sprintf "recv %s <- n%d" msg src
  | Drop { dst; msgs } ->
    Printf.sprintf "drop %d msg(s) -> %s" msgs (pp_dst dst)
  | Duplicate { dst; msgs } ->
    Printf.sprintf "duplicate %d msg(s) -> %s" msgs (pp_dst dst)
  | Delay { dst; msgs } ->
    Printf.sprintf "delay %d msg(s) -> %s" msgs (pp_dst dst)
  | Coalesce { dst; msgs } ->
    Printf.sprintf "coalesce %d msg(s) -> n%d" msgs dst
  | Retry { op; attempt } -> Printf.sprintf "retry #%d %s" attempt op
  | Inv_begin { op; target } -> Printf.sprintf "invoke %s.%s" target op
  | Inv_end { op; outcome } -> Printf.sprintf "invoked %s: %s" op outcome
  | Ckpt_round { target; version } ->
    Printf.sprintf "ckpt round %s v%d" target version
  | Cache_install { target; epoch } ->
    Printf.sprintf "cache install %s @e%d" target epoch
  | Cache_invalidate { target; epoch } ->
    Printf.sprintf "cache invalidate %s @e%d" target epoch
  | Activate { target; version } ->
    Printf.sprintf "activate %s from v%d" target version
  | Alert { rule; firing } ->
    Printf.sprintf "alert %s %s" rule (if firing then "firing" else "resolved")
  | Clone_fanout { op; sites } ->
    Printf.sprintf "clone fanout %s to %d site(s)" op sites
  | Clone_win { op; winner } -> Printf.sprintf "clone win %s <- n%d" op winner
  | Clone_cancel { dst } -> Printf.sprintf "clone cancel -> n%d" dst
  | Hedge { op; dst } -> Printf.sprintf "hedge %s -> n%d" op dst
  | Dir_hit { target; home } -> Printf.sprintf "dir hit %s@%d" target home
  | Dir_miss { target } -> Printf.sprintf "dir miss %s" target
  | Dir_fallback { target } -> Printf.sprintf "dir fallback %s" target
  | Dir_publish { target; home } ->
    Printf.sprintf "dir publish %s@%d" target home
  | Epoch_bump { epoch } -> Printf.sprintf "epoch bump -> e%d" epoch
  | Drain_move { target; to_node } ->
    Printf.sprintf "drain move %s -> n%d" target to_node
  | Work_start { op } -> Printf.sprintf "work start %s" op
  | Net_flush { dst; msgs } ->
    Printf.sprintf "net flush %d msg(s) -> n%d" msgs dst
  | Net_hold { dst; by } ->
    Printf.sprintf "net hold %s by %s" (pp_dst dst) (Time.to_string by)
  | Drain_stall { target } -> Printf.sprintf "drain stall %s" target

type event = {
  ev_id : int;
  ev_node : int;
  ev_at : Time.t;
  ev_trace : int;
  ev_parent : int option;
  ev_kind : kind;
}

(* String-keyed hash table: the monomorphic [String.equal] keeps
   intern lookups off the polymorphic-compare C call. *)
module Strtbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

(* Event ids are allocated from one shared sink so they are unique
   across the whole cluster and allocation order follows the engine's
   (deterministic) execution order. *)
type sink = { mutable next_id : int }

let sink () = { next_id = 0 }

(* The ring retains no per-event heap allocation.  Recording is on
   the invocation hot path, and what a ring of [event] records (or of
   [kind]s) actually costs is not the stores but the GC: every
   retained record and every fresh [describe] string survives the
   minor heap, is promoted, and inflates major collections for as
   long as the ring holds it.  So each [kind] is encoded into a tag
   plus two int arguments (unboxed [int array]s the minor GC never
   scans) plus up to two string slots, and the strings are interned
   per journal so the ring only ever points at one shared copy — the
   caller's fresh string dies young, exactly as it does with
   journaling off.  The [kind] (and [event]) values are rebuilt at
   export.  [ev_at] is stored as raw nanoseconds ([Time.t] is
   [private int]); [ev_parent = None] and absent int arguments as
   [-1].

   The seven int fields of a slot live contiguously in one stride-7
   [Bigarray] (id, at, trace, parent, tag, a1, a2) and the two string
   slots in a stride-2 array, so a record touches two or three cache
   lines rather than nine parallel arrays, and the Bigarray keeps the
   bulk of the ring outside the OCaml heap where the major collector
   never re-marks it.  What remains of the cost is the ring's cache
   footprint — the write stream cycles through [cap * 72] bytes per
   node, and E20 shows overhead roughly doubling when the rings
   outgrow the cache — which is why [Cluster.default_journal_cap]
   stays modest.  Buffers grow geometrically up to [cap] rather than
   preallocating, so idle journals stay small. *)
let stride = 7

module Ints = Bigarray.Array1

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Ints.t

let make_ints n : ints = Ints.create Bigarray.int Bigarray.c_layout n

type t = {
  jn_sink : sink;
  jn_node : int;
  jn_cap : int;
  jn_intern : string Strtbl.t;
  jn_memo : string array;  (* last interned string per call site *)
  mutable jn_ints : ints;          (* stride 7 per slot *)
  mutable jn_strs : string array;  (* stride 2 per slot *)
  mutable jn_size : int;   (* slots currently allocated *)
  mutable jn_start : int;  (* slot of the oldest retained event *)
  mutable jn_len : int;
  mutable jn_recorded : int;
  mutable jn_dropped : int;
}

let create sink ~node ~cap =
  if cap < 0 then invalid_arg "Journal.create: negative capacity";
  {
    jn_sink = sink;
    jn_node = node;
    jn_cap = cap;
    jn_intern = Strtbl.create 64;
    jn_memo = Array.make 22 "";
    jn_ints = make_ints 0;
    jn_strs = [||];
    jn_size = 0;
    jn_start = 0;
    jn_len = 0;
    jn_recorded = 0;
    jn_dropped = 0;
  }

let enabled t = t.jn_cap > 0
let node t = t.jn_node

(* Cap the intern table so an adversarial stream of distinct strings
   (say, per-request payload descriptions) cannot grow it without
   bound; past the cap, strings are stored as-is and simply cost
   their promotion. *)
let intern_cap = 8192

(* [slot] is a static id for the call site in [encode].  Hot traffic
   repeats the same description at the same site over and over, so a
   single [String.equal] against the last interned string there
   usually answers without touching the hash table at all. *)
let intern t slot s =
  let m = Array.unsafe_get t.jn_memo slot in
  if String.equal s m then m
  else
    let c =
      match Strtbl.find_opt t.jn_intern s with
      | Some c -> c
      | None ->
        if Strtbl.length t.jn_intern < intern_cap then
          Strtbl.add t.jn_intern s s;
        s
    in
    Array.unsafe_set t.jn_memo slot c;
    c

let enc_opt = function Some d -> d | None -> -1
let dec_opt d = if d < 0 then None else Some d

(* [set] writes one encoded slot; [store] dispatches on the [kind]
   and calls it arm by arm rather than routing through an
   [encode : kind -> tuple]: the tuple would be a fresh 7-word minor
   allocation per event, and at hot-path rates those allocations (and
   the minor collections they force) cost more than the stores
   themselves. *)
let set t ~slot ~id ~(at : Time.t) ~trace ~parent ~tag ~a1 ~a2 ~s1 ~s2 =
  (* [slot < size] by construction, so the unsafe stores are in
     bounds. *)
  let b = slot * stride in
  let ints = t.jn_ints in
  Ints.unsafe_set ints b id;
  Ints.unsafe_set ints (b + 1) (at :> int);
  Ints.unsafe_set ints (b + 2) trace;
  Ints.unsafe_set ints (b + 3) parent;
  Ints.unsafe_set ints (b + 4) tag;
  Ints.unsafe_set ints (b + 5) a1;
  Ints.unsafe_set ints (b + 6) a2;
  let sb = slot * 2 in
  let strs = t.jn_strs in
  Array.unsafe_set strs sb s1;
  Array.unsafe_set strs (sb + 1) s2

let store t ~slot ~id ~at ~trace ~parent kind =
  match kind with
  | Send { msg; dst } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:0 ~a1:(enc_opt dst) ~a2:(-1)
      ~s1:(intern t 0 msg) ~s2:""
  | Recv { msg; src } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:1 ~a1:src ~a2:(-1)
      ~s1:(intern t 1 msg) ~s2:""
  | Drop { dst; msgs } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:2 ~a1:(enc_opt dst) ~a2:msgs
      ~s1:"" ~s2:""
  | Duplicate { dst; msgs } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:3 ~a1:(enc_opt dst) ~a2:msgs
      ~s1:"" ~s2:""
  | Delay { dst; msgs } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:4 ~a1:(enc_opt dst) ~a2:msgs
      ~s1:"" ~s2:""
  | Coalesce { dst; msgs } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:5 ~a1:dst ~a2:msgs ~s1:"" ~s2:""
  | Retry { op; attempt } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:6 ~a1:attempt ~a2:(-1)
      ~s1:(intern t 2 op) ~s2:""
  | Inv_begin { op; target } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:7 ~a1:(-1) ~a2:(-1)
      ~s1:(intern t 3 op) ~s2:(intern t 4 target)
  | Inv_end { op; outcome } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:8 ~a1:(-1) ~a2:(-1)
      ~s1:(intern t 5 op) ~s2:(intern t 6 outcome)
  | Ckpt_round { target; version } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:9 ~a1:version ~a2:(-1)
      ~s1:(intern t 7 target) ~s2:""
  | Cache_install { target; epoch } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:10 ~a1:epoch ~a2:(-1)
      ~s1:(intern t 8 target) ~s2:""
  | Cache_invalidate { target; epoch } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:11 ~a1:epoch ~a2:(-1)
      ~s1:(intern t 9 target) ~s2:""
  | Activate { target; version } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:12 ~a1:version ~a2:(-1)
      ~s1:(intern t 10 target) ~s2:""
  | Alert { rule; firing } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:13 ~a1:(if firing then 1 else 0)
      ~a2:(-1) ~s1:(intern t 11 rule) ~s2:""
  | Clone_fanout { op; sites } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:14 ~a1:sites ~a2:(-1)
      ~s1:(intern t 12 op) ~s2:""
  | Clone_win { op; winner } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:15 ~a1:winner ~a2:(-1)
      ~s1:(intern t 13 op) ~s2:""
  | Clone_cancel { dst } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:16 ~a1:dst ~a2:(-1) ~s1:"" ~s2:""
  | Hedge { op; dst } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:17 ~a1:dst ~a2:(-1)
      ~s1:(intern t 14 op) ~s2:""
  | Dir_hit { target; home } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:18 ~a1:home ~a2:(-1)
      ~s1:(intern t 15 target) ~s2:""
  | Dir_miss { target } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:19 ~a1:(-1) ~a2:(-1)
      ~s1:(intern t 16 target) ~s2:""
  | Dir_fallback { target } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:20 ~a1:(-1) ~a2:(-1)
      ~s1:(intern t 17 target) ~s2:""
  | Dir_publish { target; home } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:21 ~a1:home ~a2:(-1)
      ~s1:(intern t 18 target) ~s2:""
  | Epoch_bump { epoch } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:22 ~a1:epoch ~a2:(-1) ~s1:""
      ~s2:""
  | Drain_move { target; to_node } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:23 ~a1:to_node ~a2:(-1)
      ~s1:(intern t 19 target) ~s2:""
  | Work_start { op } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:24 ~a1:(-1) ~a2:(-1)
      ~s1:(intern t 20 op) ~s2:""
  | Net_flush { dst; msgs } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:25 ~a1:dst ~a2:msgs ~s1:"" ~s2:""
  | Net_hold { dst; by } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:26 ~a1:(enc_opt dst)
      ~a2:(Time.to_ns by) ~s1:"" ~s2:""
  | Drain_stall { target } ->
    set t ~slot ~id ~at ~trace ~parent ~tag:27 ~a1:(-1) ~a2:(-1)
      ~s1:(intern t 21 target) ~s2:""

let decode ~tag ~a1 ~a2 ~s1 ~s2 =
  match tag with
  | 0 -> Send { msg = s1; dst = dec_opt a1 }
  | 1 -> Recv { msg = s1; src = a1 }
  | 2 -> Drop { dst = dec_opt a1; msgs = a2 }
  | 3 -> Duplicate { dst = dec_opt a1; msgs = a2 }
  | 4 -> Delay { dst = dec_opt a1; msgs = a2 }
  | 5 -> Coalesce { dst = a1; msgs = a2 }
  | 6 -> Retry { op = s1; attempt = a1 }
  | 7 -> Inv_begin { op = s1; target = s2 }
  | 8 -> Inv_end { op = s1; outcome = s2 }
  | 9 -> Ckpt_round { target = s1; version = a1 }
  | 10 -> Cache_install { target = s1; epoch = a1 }
  | 11 -> Cache_invalidate { target = s1; epoch = a1 }
  | 12 -> Activate { target = s1; version = a1 }
  | 13 -> Alert { rule = s1; firing = a1 = 1 }
  | 14 -> Clone_fanout { op = s1; sites = a1 }
  | 15 -> Clone_win { op = s1; winner = a1 }
  | 16 -> Clone_cancel { dst = a1 }
  | 17 -> Hedge { op = s1; dst = a1 }
  | 18 -> Dir_hit { target = s1; home = a1 }
  | 19 -> Dir_miss { target = s1 }
  | 20 -> Dir_fallback { target = s1 }
  | 21 -> Dir_publish { target = s1; home = a1 }
  | 22 -> Epoch_bump { epoch = a1 }
  | 23 -> Drain_move { target = s1; to_node = a1 }
  | 24 -> Work_start { op = s1 }
  | 25 -> Net_flush { dst = a1; msgs = a2 }
  | 26 -> Net_hold { dst = dec_opt a1; by = Time.ns a2 }
  | 27 -> Drain_stall { target = s1 }
  | _ -> assert false

let grow t =
  let old = t.jn_size in
  let size = min t.jn_cap (max 64 (old * 2)) in
  let ints = make_ints (size * stride) in
  let strs = Array.make (size * 2) "" in
  for i = 0 to t.jn_len - 1 do
    let src = (t.jn_start + i) mod old in
    for k = 0 to stride - 1 do
      Ints.unsafe_set ints ((i * stride) + k)
        (Ints.unsafe_get t.jn_ints ((src * stride) + k))
    done;
    Array.blit t.jn_strs (src * 2) strs (i * 2) 2
  done;
  t.jn_ints <- ints;
  t.jn_strs <- strs;
  t.jn_size <- size;
  t.jn_start <- 0

(* Always allocates an id (so trace contexts stay meaningful with
   journaling off), but only stores the event when the ring is
   enabled.  When full, the oldest event is overwritten and counted as
   dropped. *)
let record t ~(at : Time.t) ?ctx kind =
  let id = t.jn_sink.next_id in
  t.jn_sink.next_id <- id + 1;
  if t.jn_cap > 0 then begin
    let trace, parent =
      match ctx with
      | Some c -> (Tracectx.trace c, Tracectx.parent c)
      | None -> (id, -1)
    in
    if t.jn_len = t.jn_size && t.jn_size < t.jn_cap then grow t;
    let size = t.jn_size in
    let slot =
      if t.jn_len < size then begin
        (* [start < size] and [len < size], so one conditional
           subtract replaces the (integer-division) [mod]. *)
        let s = t.jn_start + t.jn_len in
        let s = if s >= size then s - size else s in
        t.jn_len <- t.jn_len + 1;
        s
      end
      else begin
        (* Ring full at capacity: overwrite the oldest slot. *)
        let s = t.jn_start in
        let n = s + 1 in
        t.jn_start <- (if n >= size then 0 else n);
        t.jn_dropped <- t.jn_dropped + 1;
        s
      end
    in
    store t ~slot ~id ~at ~trace ~parent kind;
    t.jn_recorded <- t.jn_recorded + 1
  end;
  id

let events t =
  List.init t.jn_len (fun i ->
      let slot = (t.jn_start + i) mod t.jn_size in
      let b = slot * stride in
      let sb = slot * 2 in
      {
        ev_id = Ints.get t.jn_ints b;
        ev_node = t.jn_node;
        ev_at = Time.ns (Ints.get t.jn_ints (b + 1));
        ev_trace = Ints.get t.jn_ints (b + 2);
        ev_parent = dec_opt (Ints.get t.jn_ints (b + 3));
        ev_kind =
          decode ~tag:(Ints.get t.jn_ints (b + 4))
            ~a1:(Ints.get t.jn_ints (b + 5))
            ~a2:(Ints.get t.jn_ints (b + 6))
            ~s1:t.jn_strs.(sb) ~s2:t.jn_strs.(sb + 1);
      })

let recorded t = t.jn_recorded
let dropped t = t.jn_dropped

let pp_event fmt ev =
  Format.fprintf fmt "[%s] n%d #%d trace=%d%s %s" (Time.to_string ev.ev_at)
    ev.ev_node ev.ev_id ev.ev_trace
    (match ev.ev_parent with
    | Some p -> Printf.sprintf " parent=%d" p
    | None -> "")
    (describe_kind ev.ev_kind)
