open Eden_util

type phase = Locate | Transport | Queue | Dispatch | Execute | Reply

let phases = [ Locate; Transport; Queue; Dispatch; Execute; Reply ]

let phase_index = function
  | Locate -> 0
  | Transport -> 1
  | Queue -> 2
  | Dispatch -> 3
  | Execute -> 4
  | Reply -> 5

let n_phases = 6

let phase_name = function
  | Locate -> "locate"
  | Transport -> "transport"
  | Queue -> "queue"
  | Dispatch -> "dispatch"
  | Execute -> "execute"
  | Reply -> "reply"

let phase_of_name = function
  | "locate" -> Some Locate
  | "transport" -> Some Transport
  | "queue" -> Some Queue
  | "dispatch" -> Some Dispatch
  | "execute" -> Some Execute
  | "reply" -> Some Reply
  | _ -> None

type info = {
  i_id : int;
  i_parent : int option;
  i_op : string;
  i_target : string;
  i_origin : int;
  i_remote : bool;
  i_outcome : string;
  i_start : Time.t;
  i_finish : Time.t;
  i_phases : (phase * Time.t) list;
}

let info_duration i = Time.diff i.i_finish i.i_start

let info_phase i p =
  match List.assoc_opt p i.i_phases with Some t -> t | None -> Time.zero

let info_to_json i =
  Json.Obj
    [
      ("id", Json.Int i.i_id);
      ( "parent",
        match i.i_parent with Some p -> Json.Int p | None -> Json.Null );
      ("op", Json.Str i.i_op);
      ("target", Json.Str i.i_target);
      ("origin", Json.Int i.i_origin);
      ("remote", Json.Bool i.i_remote);
      ("outcome", Json.Str i.i_outcome);
      ("start_ns", Json.Int (Time.to_ns i.i_start));
      ("end_ns", Json.Int (Time.to_ns i.i_finish));
      ( "phases_ns",
        Json.Obj
          (List.map
             (fun (p, t) -> (phase_name p, Json.Int (Time.to_ns t)))
             i.i_phases) );
    ]

let info_of_json j =
  let ( let* ) r f = Result.bind r f in
  let req k conv =
    match Option.bind (Json.member k j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "span: missing or bad field %S" k)
  in
  let* i_id = req "id" Json.to_int in
  let i_parent =
    match Json.member "parent" j with
    | Some (Json.Int p) -> Some p
    | _ -> None
  in
  let* i_op = req "op" Json.to_str in
  let* i_target = req "target" Json.to_str in
  let* i_origin = req "origin" Json.to_int in
  let* i_remote = req "remote" Json.to_bool in
  let* i_outcome = req "outcome" Json.to_str in
  let* start_ns = req "start_ns" Json.to_int in
  let* end_ns = req "end_ns" Json.to_int in
  let* ph =
    match Json.member "phases_ns" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match (phase_of_name k, Json.to_int v) with
          | Some p, Some ns -> Ok ((p, Time.ns ns) :: acc)
          | _ -> Error (Printf.sprintf "span: bad phase entry %S" k))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "span: missing phases_ns"
  in
  Ok
    {
      i_id;
      i_parent;
      i_op;
      i_target;
      i_origin;
      i_remote;
      i_outcome;
      i_start = Time.ns start_ns;
      i_finish = Time.ns end_ns;
      i_phases = ph;
    }

(* ---------------------------------------------------------------- *)
(* Live spans *)

type collector = {
  mutable next_id : int;
  keep : int;
  retained : info Fifo.t;
  mutable n_started : int;
  mutable n_finished : int;
  mutable n_late : int;
      (* enter/finish calls that arrived after the span was sealed *)
}

type t = {
  sp_id : int;
  sp_parent : int option;
  sp_op : string;
  sp_target : string;
  sp_origin : int;
  mutable sp_remote : bool;
  sp_start : Time.t;
  mutable sp_cur : phase;
  mutable sp_since : Time.t;
  sp_acc : Time.t array;  (* indexed by phase_index *)
  mutable sp_done : (string * Time.t) option;  (* outcome, finish time *)
  sp_home : collector;
}

let create ?(keep = 4096) () =
  if keep <= 0 then invalid_arg "Span.create: keep must be positive";
  {
    next_id = 0;
    keep;
    retained = Fifo.create ();
    n_started = 0;
    n_finished = 0;
    n_late = 0;
  }

let start col ?parent ~op ~target ~origin ~at () =
  let id = col.next_id in
  col.next_id <- id + 1;
  col.n_started <- col.n_started + 1;
  {
    sp_id = id;
    sp_parent = Option.map (fun p -> p.sp_id) parent;
    sp_op = op;
    sp_target = target;
    sp_origin = origin;
    sp_remote = false;
    sp_start = at;
    sp_cur = Locate;
    sp_since = at;
    sp_acc = Array.make n_phases Time.zero;
    sp_done = None;
    sp_home = col;
  }

let id t = t.sp_id

(* Charge the open phase up to [at].  Virtual time never runs backwards
   within one invocation, but guard anyway: [Time.diff] raises on a
   negative difference. *)
let close_current t ~at =
  let elapsed = if Time.(at > t.sp_since) then Time.diff at t.sp_since else Time.zero in
  let i = phase_index t.sp_cur in
  t.sp_acc.(i) <- Time.add t.sp_acc.(i) elapsed;
  t.sp_since <- at

(* A phase change or finish on an already-sealed span is a late
   server-side step (e.g. the requester timed out first).  It cannot
   change the sealed record, but silently dropping it would hide the
   straggler entirely — count it instead. *)
let note_late t = t.sp_home.n_late <- t.sp_home.n_late + 1

let enter t phase ~at =
  match t.sp_done with
  | Some _ -> note_late t
  | None ->
    close_current t ~at;
    t.sp_cur <- phase

let note_remote t = t.sp_remote <- true

let to_info t ~outcome ~at =
  {
    i_id = t.sp_id;
    i_parent = t.sp_parent;
    i_op = t.sp_op;
    i_target = t.sp_target;
    i_origin = t.sp_origin;
    i_remote = t.sp_remote;
    i_outcome = outcome;
    i_start = t.sp_start;
    i_finish = at;
    i_phases = List.map (fun p -> (p, t.sp_acc.(phase_index p))) phases;
  }

let finish t ~outcome ~at =
  match t.sp_done with
  | Some _ -> note_late t
  | None ->
    close_current t ~at;
    t.sp_done <- Some (outcome, at);
    let col = t.sp_home in
    col.n_finished <- col.n_finished + 1;
    if Fifo.length col.retained >= col.keep then ignore (Fifo.pop col.retained);
    Fifo.push_exn col.retained (to_info t ~outcome ~at)

let duration t =
  match t.sp_done with
  | Some (_, at) -> Time.diff at t.sp_start
  | None -> invalid_arg "Span.duration: span not finished"

let phase_time t p = t.sp_acc.(phase_index p)

let started col = col.n_started
let finished_count col = col.n_finished
let late_events col = col.n_late
let finished col = Fifo.to_list col.retained

let last_finished col =
  match Fifo.to_list col.retained with
  | [] -> None
  | l -> Some (List.nth l (List.length l - 1))

let clear col = Fifo.clear col.retained

let children infos id =
  List.filter (fun i -> i.i_parent = Some id) infos
