open Eden_util

type category =
  | Service
  | Queue
  | Wire
  | Coalesce
  | Directory
  | Backoff
  | Spec_wait
  | Drain
  | Wait

let categories =
  [ Service; Queue; Wire; Coalesce; Directory; Backoff; Spec_wait; Drain;
    Wait ]

let category_name = function
  | Service -> "service"
  | Queue -> "queue"
  | Wire -> "wire"
  | Coalesce -> "coalesce"
  | Directory -> "directory"
  | Backoff -> "backoff"
  | Spec_wait -> "spec-wait"
  | Drain -> "drain"
  | Wait -> "wait"

let category_index = function
  | Service -> 0
  | Queue -> 1
  | Wire -> 2
  | Coalesce -> 3
  | Directory -> 4
  | Backoff -> 5
  | Spec_wait -> 6
  | Drain -> 7
  | Wait -> 8

let n_categories = 9

type breakdown = {
  bd_trace : int;
  bd_node : int;
  bd_op : string;
  bd_target : string;
  bd_outcome : string;
  bd_begin : Time.t;
  bd_total_ns : int;
  bd_parts : int array;
}

let part bd c = bd.bd_parts.(category_index c)

let dominant bd =
  let best = ref Service in
  List.iter (fun c -> if part bd c > part bd !best then best := c) categories;
  !best

(* Location-machinery traffic: locate broadcasts and replies, registry
   lookups/publishes/nacks, proactive hints, and the stale-location
   nacks that send a requester back to locate.  (Prefixes of
   [Message.describe] output; see message.ml.) *)
let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let directory_message msg =
  has_prefix "locate" msg || has_prefix "dir" msg || has_prefix "hint" msg
  || has_prefix "inv_nack" msg

(* One attributed span of a gap: every gap maps to spans whose
   nanoseconds sum to the gap exactly, so the per-trace category sums
   telescope to (end - begin) by construction. *)

(* Holds recorded against a Send (the hold event's parent is the send
   id) let the Recv gap be split: the held span is the sender sitting
   on the message — endpoint degradation, charged to service — and
   only the remainder is wire time. *)
let hold_overlap holds ~parent ~t0 ~t1 =
  match Hashtbl.find_opt holds parent with
  | None -> 0
  | Some spans ->
    List.fold_left
      (fun acc (h0, h1) ->
        let lo = max t0 h0 and hi = min t1 h1 in
        acc + max 0 (hi - lo))
      0 spans

let classify ~holds prev cur =
  let t0 = Time.to_ns prev.Journal.ev_at
  and t1 = Time.to_ns cur.Journal.ev_at in
  let gap = t1 - t0 in
  match prev.Journal.ev_kind with
  | Journal.Retry _ -> [ (Backoff, gap) ]
  | _ -> (
    match cur.Journal.ev_kind with
    | Journal.Net_flush _ -> [ (Coalesce, gap) ]
    | Journal.Net_hold _ -> [ (Wire, gap) ]
    | Journal.Recv { msg; _ } ->
      let held =
        match cur.Journal.ev_parent with
        | None -> 0
        | Some send_id -> min gap (hold_overlap holds ~parent:send_id ~t0 ~t1)
      in
      let carry = if directory_message msg then Directory else Wire in
      if held = 0 then [ (carry, gap) ]
      else [ (Service, held); (carry, gap - held) ]
    | Journal.Send { msg; _ } ->
      [ ((if directory_message msg then Directory else Service), gap) ]
    | Journal.Work_start _ ->
      let c =
        match prev.Journal.ev_kind with
        | Journal.Drain_stall _ -> Drain
        | _ -> Queue
      in
      [ (c, gap) ]
    | Journal.Drain_stall _ -> [ (Queue, gap) ]
    | Journal.Dir_hit _ | Journal.Dir_miss _ | Journal.Dir_fallback _
    | Journal.Dir_publish _ ->
      [ (Directory, gap) ]
    | Journal.Retry _ | Journal.Hedge _ -> [ (Wait, gap) ]
    | Journal.Clone_win _ -> [ (Spec_wait, gap) ]
    | Journal.Inv_end _ ->
      let c =
        match prev.Journal.ev_kind with
        | Journal.Recv _ | Journal.Inv_begin _ | Journal.Clone_win _ ->
          Service
        | _ -> Wait
      in
      [ (c, gap) ]
    | _ -> [ (Service, gap) ])

(* Attribute one trace.  [events] must be that trace's events sorted
   by id; returns [None] unless the trace brackets a whole request
   (an [Inv_begin] and a later [Inv_end]).  Event ids are allocated
   in engine execution order, which never runs ahead of virtual time,
   so the id-sorted walk visits events in nondecreasing [ev_at]: the
   consecutive gaps tile [begin, end] exactly and the category sums
   telescope to the end-to-end latency — the attribution-complete
   invariant (checker rule 8) re-verifies this on every trace. *)
let attribute events =
  let begin_ev =
    List.find_opt
      (fun e -> match e.Journal.ev_kind with Journal.Inv_begin _ -> true | _ -> false)
      events
  in
  match begin_ev with
  | None -> None
  | Some b -> (
    let end_ev =
      List.fold_left
        (fun acc e ->
          match e.Journal.ev_kind with
          | Journal.Inv_end _ when e.Journal.ev_id > b.Journal.ev_id -> Some e
          | _ -> acc)
        None events
    in
    match end_ev with
    | None -> None
    | Some e ->
      let window =
        List.filter
          (fun ev ->
            ev.Journal.ev_id >= b.Journal.ev_id
            && ev.Journal.ev_id <= e.Journal.ev_id)
          events
      in
      let holds = Hashtbl.create 7 in
      List.iter
        (fun ev ->
          match (ev.Journal.ev_kind, ev.Journal.ev_parent) with
          | Journal.Net_hold { by; _ }, Some parent ->
            let h0 = Time.to_ns ev.Journal.ev_at in
            let span = (h0, h0 + Time.to_ns by) in
            let prior =
              Option.value (Hashtbl.find_opt holds parent) ~default:[]
            in
            Hashtbl.replace holds parent (span :: prior)
          | _ -> ())
        window;
      let parts = Array.make n_categories 0 in
      let rec walk = function
        | prev :: (cur :: _ as rest) ->
          List.iter
            (fun (c, ns) ->
              parts.(category_index c) <- parts.(category_index c) + ns)
            (classify ~holds prev cur);
          walk rest
        | _ -> ()
      in
      walk window;
      let op, target =
        match b.Journal.ev_kind with
        | Journal.Inv_begin { op; target } -> (op, target)
        | _ -> assert false
      in
      let outcome =
        match e.Journal.ev_kind with
        | Journal.Inv_end { outcome; _ } -> outcome
        | _ -> assert false
      in
      Some
        {
          bd_trace = b.Journal.ev_trace;
          bd_node = b.Journal.ev_node;
          bd_op = op;
          bd_target = target;
          bd_outcome = outcome;
          bd_begin = b.Journal.ev_at;
          bd_total_ns =
            Time.to_ns e.Journal.ev_at - Time.to_ns b.Journal.ev_at;
          bd_parts = parts;
        })

(* Group a merged event list (a {!Timeline.t}) by trace and attribute
   every complete request, in ascending trace-id order. *)
let breakdowns events =
  let by_trace : (int, Journal.event list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      let tr = ev.Journal.ev_trace in
      let prior = Option.value (Hashtbl.find_opt by_trace tr) ~default:[] in
      Hashtbl.replace by_trace tr (ev :: prior))
    events;
  let traces = Hashtbl.fold (fun tr evs acc -> (tr, evs) :: acc) by_trace [] in
  let traces = List.sort (fun (a, _) (b, _) -> Int.compare a b) traces in
  List.filter_map
    (fun (_, evs) ->
      let evs =
        List.sort
          (fun a b -> Int.compare a.Journal.ev_id b.Journal.ev_id)
          evs
      in
      attribute evs)
    traces

let sum_parts bd = Array.fold_left ( + ) 0 bd.bd_parts
