(** Cross-node trace assembly and export.

    Merges the per-node {!Journal}s of one cluster run into a single
    deterministic timeline, and renders it either as a human-readable
    causal tree per trace or as Chrome [trace_event] JSON (load the
    file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto};
    nodes appear as processes, traces as tracks, and matched send/recv
    pairs as flow arrows). *)

type t = Journal.event list
(** Sorted by event id, which equals engine execution order and never
    runs ahead of virtual time. *)

val assemble : Journal.t list -> t
(** Merge; byte-deterministic for a fixed seed. *)

val events : t -> Journal.event list
val length : t -> int

val nodes : t -> int list
(** Distinct nodes contributing events, ascending. *)

val traces : t -> int list
(** Distinct trace roots, ascending. *)

val to_text : t -> string

val to_chrome_json : ?extra:Json.t list -> t -> Json.t
(** [extra] appends further trace_event objects (e.g. {!Profile}'s
    per-request duration bars) to the [traceEvents] array. *)

val to_chrome_string : ?extra:Json.t list -> t -> string
