open Eden_util

type violation = { v_rule : string; v_event : int option; v_detail : string }

let pp_violation fmt v =
  Format.fprintf fmt "[%s]%s %s" v.v_rule
    (match v.v_event with
    | Some id -> Printf.sprintf " event #%d:" id
    | None -> "")
    v.v_detail

(* Failures carry their rule *names* in machine-readable form too, so
   downstream tooling never has to map positional indexes back to
   rules. *)
let violation_json v =
  Json.Obj
    [
      ("rule", Json.Str v.v_rule);
      ( "event",
        match v.v_event with Some id -> Json.Int id | None -> Json.Null );
      ("detail", Json.Str v.v_detail);
    ]

let violations_to_json vs = Json.List (List.map violation_json vs)

(* The eight cross-node invariants.  [complete = false] (some journal
   ring wrapped) downgrades the rules that need every event to be
   present — a missing send or a missing trace tail would otherwise
   read as a violation. *)
let run ?(complete = true) (tl : Timeline.t) =
  let events = Timeline.events tl in
  let by_id = Hashtbl.create 1024 in
  List.iter
    (fun (e : Journal.event) -> Hashtbl.replace by_id e.ev_id e)
    events;
  let out = ref [] in
  let add v_rule v_event v_detail = out := { v_rule; v_event; v_detail } :: !out in

  (* 1. Every recv has a matching send: its parent event exists, is a
     send, and was recorded at the node the receiver names as source. *)
  if complete then
    List.iter
      (fun (e : Journal.event) ->
        match e.ev_kind with
        | Journal.Recv { src; msg } -> (
          match e.ev_parent with
          | None -> add "recv-matches-send" (Some e.ev_id)
              (Printf.sprintf "recv of %s has no parent" msg)
          | Some p -> (
            match Hashtbl.find_opt by_id p with
            | None ->
              add "recv-matches-send" (Some e.ev_id)
                (Printf.sprintf "parent #%d of recv %s is not in any journal"
                   p msg)
            | Some pe -> (
              match pe.ev_kind with
              | Journal.Send _ ->
                if pe.ev_node <> src then
                  add "recv-matches-send" (Some e.ev_id)
                    (Printf.sprintf
                       "recv names source n%d but send #%d is on n%d" src p
                       pe.ev_node)
              | k ->
                add "recv-matches-send" (Some e.ev_id)
                  (Printf.sprintf "parent #%d is a %s, not a send" p
                     (Journal.kind_name k)))))
        | _ -> ())
      events;

  (* 2. No event is ordered against virtual time relative to its
     causal parent. *)
  List.iter
    (fun (e : Journal.event) ->
      match e.ev_parent with
      | Some p when p <> e.ev_id -> (
        match Hashtbl.find_opt by_id p with
        | Some pe when Time.compare pe.ev_at e.ev_at > 0 ->
          add "causal-time-order" (Some e.ev_id)
            (Printf.sprintf "at %s but its parent #%d is at %s"
               (Time.to_string e.ev_at) p (Time.to_string pe.ev_at))
        | _ -> ())
      | _ -> ())
    events;

  (* 3. Every retry chain terminates: a trace containing a retry must
     also contain a later invocation end (ok or error). *)
  if complete then begin
    let ends = Hashtbl.create 64 in
    List.iter
      (fun (e : Journal.event) ->
        match e.ev_kind with
        | Journal.Inv_end _ ->
          let last =
            match Hashtbl.find_opt ends e.ev_trace with
            | Some id -> max id e.ev_id
            | None -> e.ev_id
          in
          Hashtbl.replace ends e.ev_trace last
        | _ -> ())
      events;
    List.iter
      (fun (e : Journal.event) ->
        match e.ev_kind with
        | Journal.Retry { op; attempt } -> (
          match Hashtbl.find_opt ends e.ev_trace with
          | Some id when id > e.ev_id -> ()
          | _ ->
            add "retry-terminates" (Some e.ev_id)
              (Printf.sprintf
                 "retry #%d of %s in trace %d has no later inv_end" attempt
                 op e.ev_trace))
        | _ -> ())
      events
  end;

  (* 4. A replica install never follows its invalidation: per
     (node, target), an install's epoch is at least every earlier
     invalidation epoch on that node. *)
  let epochs = Hashtbl.create 64 in
  List.iter
    (fun (e : Journal.event) ->
      match e.ev_kind with
      | Journal.Cache_invalidate { target; epoch } ->
        let key = (e.ev_node, target) in
        let cur =
          match Hashtbl.find_opt epochs key with Some x -> x | None -> 0
        in
        Hashtbl.replace epochs key (max cur epoch)
      | Journal.Cache_install { target; epoch } -> (
        match Hashtbl.find_opt epochs (e.ev_node, target) with
        | Some bumped when epoch < bumped ->
          add "install-epoch" (Some e.ev_id)
            (Printf.sprintf
               "install of %s at epoch %d on n%d after invalidation bumped \
                the epoch to %d"
               target epoch e.ev_node bumped)
        | _ -> ())
      | _ -> ())
    events;

  (* 5. Every clone fan-out resolves to exactly one win plus cancelled
     (or never-sent-to) losers.  Per trace: each fan-out to S sites
     must account for all S — either one win and S-1 cancels, or (no
     winner: timeout / every site nacked) S cancels.  So across a
     trace, wins <= fan-outs and wins + cancels = total sites.  Needs
     complete journals: a dropped cancel event would read as a leak. *)
  if complete then begin
    let acct = Hashtbl.create 64 in
    List.iter
      (fun (e : Journal.event) ->
        let bump dfan dsites dwin dcancel =
          let fans, sites, wins, cancels =
            match Hashtbl.find_opt acct e.ev_trace with
            | Some x -> x
            | None -> (0, 0, 0, 0)
          in
          Hashtbl.replace acct e.ev_trace
            (fans + dfan, sites + dsites, wins + dwin, cancels + dcancel)
        in
        match e.ev_kind with
        | Journal.Clone_fanout { sites; _ } -> bump 1 sites 0 0
        | Journal.Clone_win _ -> bump 0 0 1 0
        | Journal.Clone_cancel _ -> bump 0 0 0 1
        | _ -> ())
      events;
    Hashtbl.fold (fun trace acct l -> (trace, acct) :: l) acct []
    |> List.sort compare
    |> List.iter (fun (trace, (fans, sites, wins, cancels)) ->
           if fans = 0 then begin
             if wins > 0 || cancels > 0 then
               add "clone-resolves-once" None
                 (Printf.sprintf
                    "trace %d has %d win(s) and %d cancel(s) but no fan-out"
                    trace wins cancels)
           end
           else if wins > fans then
             add "clone-resolves-once" None
               (Printf.sprintf "trace %d: %d wins for %d fan-out(s)" trace
                  wins fans)
           else if wins + cancels <> sites then
             add "clone-resolves-once" None
               (Printf.sprintf
                  "trace %d: %d fan-out(s) to %d site(s) resolved as %d \
                   win(s) + %d cancel(s)"
                  trace fans sites wins cancels))
  end;

  (* 6. The directory resolves to the true home or falls back: per
     trace, a [Dir_hit] must be followed (later event, same trace) by
     the invocation's end or an explicit [Dir_fallback] — a hit may
     never strand an attempt on a stale answer with neither outcome —
     and a [Dir_miss] must always be followed by a [Dir_fallback] (a
     miss has no answer to act on, so broadcast is mandatory).  Needs
     complete journals: a dropped tail would read as a stranding. *)
  if complete then begin
    let last = Hashtbl.create 64 in
    List.iter
      (fun (e : Journal.event) ->
        match e.ev_kind with
        | Journal.Inv_end _ | Journal.Dir_fallback _ ->
          let fb, iv =
            match Hashtbl.find_opt last e.ev_trace with
            | Some x -> x
            | None -> (0, 0)
          in
          let entry =
            match e.ev_kind with
            | Journal.Dir_fallback _ -> (max fb e.ev_id, iv)
            | _ -> (fb, max iv e.ev_id)
          in
          Hashtbl.replace last e.ev_trace entry
        | _ -> ())
      events;
    List.iter
      (fun (e : Journal.event) ->
        let resolved ~fallback_only what target =
          let fb, iv =
            match Hashtbl.find_opt last e.ev_trace with
            | Some x -> x
            | None -> (0, 0)
          in
          let ok =
            fb > e.ev_id || ((not fallback_only) && iv > e.ev_id)
          in
          if not ok then
            add "dir-resolves-or-falls-back" (Some e.ev_id)
              (Printf.sprintf
                 "dir %s for %s in trace %d has no later %s" what target
                 e.ev_trace
                 (if fallback_only then "dir_fallback"
                  else "inv_end or dir_fallback"))
        in
        match e.ev_kind with
        | Journal.Dir_hit { target; _ } ->
          resolved ~fallback_only:false "hit" target
        | Journal.Dir_miss { target } ->
          resolved ~fallback_only:true "miss" target
        | _ -> ())
      events
  end;

  (* 7. Epoch-monotonic: membership views only move forward, and a
     stale view never strands a locate.  Per node, successive
     [Epoch_bump]s carry strictly increasing epochs (a view that went
     backwards would resurrect a retired ring).  And a [Dir_hit]
     consumed at a node whose view lags the newest epoch any node has
     reached must still resolve — a later invocation end or an
     explicit [Dir_fallback] in its trace — so serving through an old
     ring can cost a detour or a broadcast, never a stranded attempt.
     Vacuous on traces with no reconfiguration.  Needs complete
     journals: a dropped bump or trace tail would read as a
     violation. *)
  if complete then begin
    let last = Hashtbl.create 64 in
    List.iter
      (fun (e : Journal.event) ->
        match e.ev_kind with
        | Journal.Inv_end _ | Journal.Dir_fallback _ ->
          let fb, iv =
            match Hashtbl.find_opt last e.ev_trace with
            | Some x -> x
            | None -> (0, 0)
          in
          let entry =
            match e.ev_kind with
            | Journal.Dir_fallback _ -> (max fb e.ev_id, iv)
            | _ -> (fb, max iv e.ev_id)
          in
          Hashtbl.replace last e.ev_trace entry
        | _ -> ())
      events;
    (* Event ids are allocated in engine execution order, so walking
       by id replays the cluster's actual interleaving. *)
    let ordered =
      List.sort
        (fun (a : Journal.event) (b : Journal.event) ->
          Int.compare a.ev_id b.ev_id)
        events
    in
    let view = Hashtbl.create 16 in
    let newest = ref 0 in
    List.iter
      (fun (e : Journal.event) ->
        match e.ev_kind with
        | Journal.Epoch_bump { epoch } ->
          let prev =
            match Hashtbl.find_opt view e.ev_node with
            | Some p -> p
            | None -> 0
          in
          if epoch <= prev then
            add "epoch-monotonic" (Some e.ev_id)
              (Printf.sprintf
                 "n%d bumped to epoch %d after already reaching epoch %d"
                 e.ev_node epoch prev);
          Hashtbl.replace view e.ev_node (max epoch prev);
          if epoch > !newest then newest := epoch
        | Journal.Dir_hit { target; _ } ->
          let mine =
            match Hashtbl.find_opt view e.ev_node with
            | Some p -> p
            | None -> 0
          in
          if mine < !newest then begin
            let fb, iv =
              match Hashtbl.find_opt last e.ev_trace with
              | Some x -> x
              | None -> (0, 0)
            in
            if not (fb > e.ev_id || iv > e.ev_id) then
              add "epoch-monotonic" (Some e.ev_id)
                (Printf.sprintf
                   "dir hit for %s on n%d (view e%d, cluster at e%d) in \
                    trace %d has no later inv_end or dir_fallback"
                   target e.ev_node mine !newest e.ev_trace)
          end
        | _ -> ())
      ordered
  end;

  (* 8. Attribution-complete: for every trace bracketing a whole
     request, the critical-path profiler's per-category nanoseconds
     must sum to the request's end-to-end latency exactly.  The walk
     telescopes consecutive inter-event gaps, so this holds by
     construction when the classifier is sound — the rule is a
     tripwire for classifier drift (a hold-split that stops summing, a
     gap double-counted between branches).  Needs complete journals: a
     truncated trace has no well-defined end-to-end latency. *)
  if complete then
    List.iter
      (fun (bd : Critical.breakdown) ->
        let sum = Critical.sum_parts bd in
        if sum <> bd.bd_total_ns then
          add "attribution-complete" None
            (Printf.sprintf
               "trace %d (%s.%s): categories sum to %dns but end-to-end \
                latency is %dns"
               bd.bd_trace bd.bd_target bd.bd_op sum bd.bd_total_ns))
      (Critical.breakdowns events);
  List.rev !out
