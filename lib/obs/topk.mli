(** Space-saving top-k sketch (Metwally et al.): bounded memory, exact
    error accounting.  The sketch keeps at most [capacity] counters;
    a new key arriving at a full sketch evicts the current minimum and
    inherits its count, recording the inherited amount as the entry's
    error bound.  Guarantees, with [n = total t]:

    - every reported [e_count] over-estimates the key's true count by
      at most [e_err];
    - [e_err <= n / capacity] for every entry;
    - any key whose true count exceeds [n / capacity] is present.

    Eviction scans for the first minimum in slot order and reports are
    sorted by [(count desc, key asc)], so same-seed runs produce
    byte-identical output. *)

type t

type entry = {
  e_key : string;
  e_count : int;  (** estimated count (never an underestimate) *)
  e_err : int;  (** max over-estimation inherited through evictions *)
}

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int

val add : ?count:int -> t -> string -> unit
(** Record [count] (default 1) occurrences of a key.  Constant-time
    when the key is already tracked; a linear min-scan of the
    [capacity] slots when it must evict. *)

val total : t -> int
(** Sum of all counts ever added, tracked exactly. *)

val entries : t -> entry list
(** All tracked entries, sorted by count descending then key
    ascending. *)

val top : t -> int -> entry list
(** First [k] of {!entries}. *)

val merge : capacity:int -> t list -> t
(** Cluster rollup.  For each key in the union, sums counts and error
    bounds across sketches; a full sketch not tracking the key could
    have absorbed up to its minimum count of it, so that minimum is
    added to both the merged count and error (keeping the
    never-underestimate invariant).  The [capacity] largest entries
    under the report order survive. *)
