open Eden_util

type t = {
  pf_breakdowns : Critical.breakdown list;
      (* ascending by (total latency, trace id) *)
  pf_skipped : int;
  pf_total_ns : int;
  pf_parts : int array;  (* aggregate ns per category *)
}

(* Quantiles must be byte-reproducible, so they are selections, not
   interpolations: sort the per-request breakdowns by total latency
   (trace id as tie-break) and report the nearest-rank request's exact
   breakdown. *)
let compare_bd (a : Critical.breakdown) (b : Critical.breakdown) =
  match Int.compare a.bd_total_ns b.bd_total_ns with
  | 0 -> Int.compare a.bd_trace b.bd_trace
  | c -> c

let of_events events =
  let bds = Critical.breakdowns events in
  let began =
    List.length
      (List.sort_uniq Int.compare
         (List.filter_map
            (fun (e : Journal.event) ->
              match e.Journal.ev_kind with
              | Journal.Inv_begin _ -> Some e.Journal.ev_trace
              | _ -> None)
            events))
  in
  let parts = Array.make Critical.n_categories 0 in
  let total = ref 0 in
  List.iter
    (fun (bd : Critical.breakdown) ->
      total := !total + bd.bd_total_ns;
      Array.iteri (fun i ns -> parts.(i) <- parts.(i) + ns) bd.bd_parts)
    bds;
  {
    pf_breakdowns = List.sort compare_bd bds;
    pf_skipped = began - List.length bds;
    pf_total_ns = !total;
    pf_parts = parts;
  }

let of_timeline (tl : Timeline.t) = of_events tl
let requests t = List.length t.pf_breakdowns
let skipped t = t.pf_skipped
let total_ns t = t.pf_total_ns

let share t c =
  if t.pf_total_ns <= 0 then 0.
  else
    float_of_int t.pf_parts.(Critical.category_index c)
    /. float_of_int t.pf_total_ns

let dominant t =
  let best = ref Critical.Service in
  List.iter
    (fun c -> if share t c > share t !best then best := c)
    Critical.categories;
  !best

(* Nearest-rank selection on the (total, trace)-sorted breakdowns. *)
let quantile t q =
  let arr = Array.of_list t.pf_breakdowns in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    Some arr.(idx)
  end

let pct x = 100. *. x

let pp_ns ns = Time.to_string (Time.ns ns)

let to_text t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "critical-path profile\n";
  Buffer.add_string b
    (Printf.sprintf "  requests attributed: %d (skipped %d incomplete)\n"
       (requests t) t.pf_skipped);
  Buffer.add_string b
    (Printf.sprintf "  attributed virtual time: %s\n" (pp_ns t.pf_total_ns));
  Buffer.add_string b "  aggregate shares:\n";
  List.iter
    (fun c ->
      let ns = t.pf_parts.(Critical.category_index c) in
      if ns > 0 then
        Buffer.add_string b
          (Printf.sprintf "    %-9s %6.2f%%  %s\n" (Critical.category_name c)
             (pct (share t c)) (pp_ns ns)))
    Critical.categories;
  let quant name q =
    match quantile t q with
    | None -> ()
    | Some bd ->
      Buffer.add_string b
        (Printf.sprintf "  %s: %s %s.%s -> %s (trace %d)\n" name
           (pp_ns bd.bd_total_ns) bd.bd_target bd.bd_op bd.bd_outcome
           bd.bd_trace);
      List.iter
        (fun c ->
          let ns = Critical.part bd c in
          if ns > 0 then
            Buffer.add_string b
              (Printf.sprintf "    %-9s %6.2f%%  %s\n"
                 (Critical.category_name c)
                 (pct (float_of_int ns /. float_of_int (max 1 bd.bd_total_ns)))
                 (pp_ns ns)))
        Critical.categories
  in
  quant "p50" 0.50;
  quant "p95" 0.95;
  quant "p999" 0.999;
  Buffer.contents b

let breakdown_json (bd : Critical.breakdown) =
  Json.Obj
    [
      ("trace", Json.Int bd.bd_trace);
      ("node", Json.Int bd.bd_node);
      ("op", Json.Str bd.bd_op);
      ("target", Json.Str bd.bd_target);
      ("outcome", Json.Str bd.bd_outcome);
      ("total_ns", Json.Int bd.bd_total_ns);
      ( "parts",
        Json.Obj
          (List.map
             (fun c ->
               (Critical.category_name c, Json.Int (Critical.part bd c)))
             Critical.categories) );
    ]

let to_json t =
  let quant name q acc =
    match quantile t q with
    | None -> acc
    | Some bd -> (name, breakdown_json bd) :: acc
  in
  Json.Obj
    ([
       ("requests", Json.Int (requests t));
       ("skipped", Json.Int t.pf_skipped);
       ("total_ns", Json.Int t.pf_total_ns);
       ( "parts",
         Json.Obj
           (List.map
              (fun c ->
                ( Critical.category_name c,
                  Json.Int t.pf_parts.(Critical.category_index c) ))
              Critical.categories) );
       ("dominant", Json.Str (Critical.category_name (dominant t)));
     ]
    @ List.rev
        (quant "p999" 0.999 (quant "p95" 0.95 (quant "p50" 0.50 []))))

(* Folded flame-graph stacks (Brendan Gregg's flamegraph.pl format):
   one "frame;frame;frame value" line per stack, value in nanoseconds.
   Stack: root; operation; category.  Aggregated over all requests and
   sorted, so same-seed runs emit byte-identical files. *)
let to_folded t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (bd : Critical.breakdown) ->
      List.iter
        (fun c ->
          let ns = Critical.part bd c in
          if ns > 0 then begin
            let key =
              Printf.sprintf "eden;%s.%s;%s" bd.bd_target bd.bd_op
                (Critical.category_name c)
            in
            let prior = Option.value (Hashtbl.find_opt tbl key) ~default:0 in
            Hashtbl.replace tbl key (prior + ns)
          end)
        Critical.categories)
    t.pf_breakdowns;
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let lines = List.sort (fun (a, _) (b, _) -> String.compare a b) lines in
  String.concat ""
    (List.map (fun (k, v) -> Printf.sprintf "%s %d\n" k v) lines)

(* Per-request "X" (complete) trace_event entries: one duration bar
   per attributed request on its trace's track, with the category
   breakdown in [args].  Feed to {!Timeline.to_chrome_json} via
   [?extra] so the bars overlay the event instants and flow arrows. *)
let chrome_extra t =
  List.map
    (fun (bd : Critical.breakdown) ->
      Json.Obj
        [
          ( "name",
            Json.Str
              (Printf.sprintf "%s.%s (%s)" bd.bd_target bd.bd_op
                 (Critical.category_name (Critical.dominant bd))) );
          ("cat", Json.Str "critical-path");
          ("ph", Json.Str "X");
          ("ts", Json.Float (float_of_int (Time.to_ns bd.bd_begin) /. 1000.));
          ("dur", Json.Float (float_of_int bd.bd_total_ns /. 1000.));
          ("pid", Json.Int bd.bd_node);
          ("tid", Json.Int bd.bd_trace);
          ( "args",
            Json.Obj
              (("outcome", Json.Str bd.bd_outcome)
              :: List.map
                   (fun c ->
                     ( Critical.category_name c ^ "_ns",
                       Json.Int (Critical.part bd c) ))
                   Critical.categories) );
        ])
    (List.sort
       (fun (a : Critical.breakdown) b -> Int.compare a.bd_trace b.bd_trace)
       t.pf_breakdowns)
