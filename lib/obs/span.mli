(** Invocation spans: the phase breakdown of one kernel invocation.

    Every invocation gets a span when it enters the kernel.  A span is
    a small state machine over virtual time: exactly one {!phase} is
    open at any moment, and {!enter} closes the current phase (charging
    it the elapsed virtual time) while opening the next.  Because the
    phases partition the span's lifetime, their durations always sum
    exactly to the end-to-end latency — even across retries, nacks and
    forwarding, which simply re-enter earlier phases.

    Phases, in the order a clean remote invocation passes through them:

    - [Locate] — requester-side setup: hint-cache lookup, locate
      broadcasts and their reply windows, nack-driven re-location.
    - [Transport] — the request on the wire, including marshalling on
      both ends, MAC contention and any forwarding hops.
    - [Queue] — waiting in the target object's port for the
      coordinator.
    - [Dispatch] — admission: rights and class checks, class-queue
      waits, invocation-process creation.
    - [Execute] — the operation handler itself.
    - [Reply] — result delivery back to the requester, including the
      wire and reply-side processing.

    A local invocation skips [Transport] (it stays at zero).  Spans
    carry a parent link when the invocation was made from inside
    another invocation's handler ([ctx.invoke]), so cross-node call
    trees are reconstructable from the exported records. *)

type phase = Locate | Transport | Queue | Dispatch | Execute | Reply

val phases : phase list
(** In canonical order. *)

val phase_name : phase -> string
val phase_of_name : string -> phase option

type info = {
  i_id : int;
  i_parent : int option;
  i_op : string;
  i_target : string;  (** printed object name *)
  i_origin : int;  (** requesting node *)
  i_remote : bool;  (** the request crossed the wire *)
  i_outcome : string;  (** ["ok"] or an error tag *)
  i_start : Eden_util.Time.t;
  i_finish : Eden_util.Time.t;
  i_phases : (phase * Eden_util.Time.t) list;  (** canonical order *)
}
(** The immutable record of a finished span. *)

val info_duration : info -> Eden_util.Time.t
val info_phase : info -> phase -> Eden_util.Time.t

val info_to_json : info -> Json.t
val info_of_json : Json.t -> (info, string) result

(** {1 Live spans} *)

type t
type collector

val create : ?keep:int -> unit -> collector
(** Retain the last [keep] finished spans (default 4096); earlier ones
    are dropped oldest-first but still counted. *)

val start :
  collector ->
  ?parent:t ->
  op:string ->
  target:string ->
  origin:int ->
  at:Eden_util.Time.t ->
  unit ->
  t
(** A fresh span with the [Locate] phase open. *)

val id : t -> int
val enter : t -> phase -> at:Eden_util.Time.t -> unit
(** Close the open phase and open [phase].  On a finished span (e.g. a
    server-side step arriving after the requester timed out) the sealed
    record is left untouched and the call is counted in the
    collector's {!late_events}. *)

val note_remote : t -> unit
val finish : t -> outcome:string -> at:Eden_util.Time.t -> unit
(** Close the open phase, seal the span and retain its {!info}.
    Idempotent; a repeat finish is counted in {!late_events}. *)

val duration : t -> Eden_util.Time.t
(** Elapsed from start to finish; requires a finished span (raises
    [Invalid_argument] otherwise). *)

val phase_time : t -> phase -> Eden_util.Time.t
(** Accumulated time in [phase] so far (all visits summed); valid on
    live and finished spans.  The cluster's online profile counters
    are fed from this at span finish. *)

(** {1 Reading a collector} *)

val started : collector -> int
val finished_count : collector -> int

val late_events : collector -> int
(** Phase changes or finishes that arrived after their span was
    sealed — late server-side work the sealed records cannot show
    (exported as the [eden.span.late_events] counter). *)

val finished : collector -> info list
(** Retained finished spans, oldest first. *)

val last_finished : collector -> info option
val clear : collector -> unit
(** Drop retained records (live spans and totals are unaffected). *)

val children : info list -> int -> info list
(** [children infos id] are the spans whose parent is [id], in
    finish order. *)
