(** Per-node event journal: a bounded ring of typed kernel events.

    Every node keeps a journal of the distributed steps it takes —
    message sends and receives, net-level fault and coalescing
    decisions, invocation begin/retry/end, checkpoint rounds,
    replica-cache installs and invalidations, reincarnations.  Each
    event is stamped with the node, the virtual time and a trace
    context ({!Tracectx}), so {!Timeline.assemble} can later merge the
    journals of all nodes into cross-node causal trees.

    Journals in one cluster share a {!sink} so event ids are globally
    unique and allocated in engine execution order: under a fixed seed
    the whole journal (and anything exported from it) is
    byte-reproducible. *)

open Eden_util

type kind =
  | Send of { msg : string; dst : int option }
      (** [dst = None] means broadcast. *)
  | Recv of { msg : string; src : int }
  | Drop of { dst : int option; msgs : int }
      (** fault injection ate a transfer; [dst = None] means broadcast *)
  | Duplicate of { dst : int option; msgs : int }
  | Delay of { dst : int option; msgs : int }
  | Coalesce of { dst : int; msgs : int }
      (** a coalesced batch of [msgs] messages left for [dst] *)
  | Retry of { op : string; attempt : int }
  | Inv_begin of { op : string; target : string }
  | Inv_end of { op : string; outcome : string }
  | Ckpt_round of { target : string; version : int }
  | Cache_install of { target : string; epoch : int }
  | Cache_invalidate of { target : string; epoch : int }
  | Activate of { target : string; version : int }
  | Alert of { rule : string; firing : bool }
      (** a {!Health} SLO rule changed state; recorded at the virtual
          time of the sampler tick that evaluated it *)
  | Clone_fanout of { op : string; sites : int }
      (** a read-only invocation left for [sites] (>= 2) sites at
          once, first response wins *)
  | Clone_win of { op : string; winner : int }
      (** the fan-out resolved; [winner] served it *)
  | Clone_cancel of { dst : int }
      (** a [Cancel] retraction left for losing site [dst] *)
  | Hedge of { op : string; dst : int }
      (** a hedged duplicate of a still-pending request left for
          [dst] after the latency-quantile threshold expired *)
  | Dir_hit of { target : string; home : int }
      (** the locate directory resolved [target] to [home] without a
          broadcast; the hint is unverified until the home replies *)
  | Dir_miss of { target : string }
      (** the registry shard had no (valid) entry for [target] *)
  | Dir_fallback of { target : string }
      (** the requester gave up on the directory for this attempt and
          fell back to a broadcast locate *)
  | Dir_publish of { target : string; home : int }
      (** a lease-stamped location update for [target] left for its
          registry shard *)
  | Epoch_bump of { epoch : int }
      (** this node's membership view advanced to [epoch]; recorded by
          the reconfiguration initiator and by every node applying an
          [Epoch_announce].  Per node, epochs must strictly increase —
          invariant 7 checks it. *)
  | Drain_move of { target : string; to_node : int }
      (** decommission drain evacuated [target] to [to_node] (and
          republished the move to the registry shard) before the
          draining node went dark *)
  | Work_start of { op : string }
      (** the invocation process for [op] began executing at the
          target; the gap from the triggering receive to this event is
          queue residency.  Only recorded with
          [Cluster.options.use_profiling] on. *)
  | Net_flush of { dst : int; msgs : int }
      (** this message left the per-destination coalescing queue in a
          batch of [msgs]; the gap from its send to this event is
          coalescer hold.  Profiling-gated like {!Work_start}. *)
  | Net_hold of { dst : int option; by : Time.t }
      (** fault injection held this message at the sender for [by]
          before transmitting; the profiler attributes the held span
          to the service category (a slow endpoint, not a slow wire).
          Profiling-gated. *)
  | Drain_stall of { target : string }
      (** the work item arrived while [target] was draining and was
          stashed until reactivation elsewhere; subsequent queue time
          is attributed to the drain category.  Profiling-gated. *)

val kind_name : kind -> string
val describe_kind : kind -> string

type event = {
  ev_id : int;  (** cluster-unique, allocated in execution order *)
  ev_node : int;
  ev_at : Time.t;  (** virtual time *)
  ev_trace : int;  (** id of the event that rooted this trace *)
  ev_parent : int option;  (** immediate causal predecessor, if any *)
  ev_kind : kind;
}

type sink
(** Shared id allocator; one per cluster. *)

val sink : unit -> sink

type t

val create : sink -> node:int -> cap:int -> t
(** A journal retaining at most [cap] events (oldest dropped first).
    [cap = 0] disables storage entirely: {!record} still allocates ids
    (trace contexts keep working) but nothing is retained and the
    counters stay at zero. *)

val enabled : t -> bool
val node : t -> int

val record : t -> at:Time.t -> ?ctx:Tracectx.t -> kind -> int
(** Append an event and return its id.  Without [ctx] the event roots
    a new trace (its trace id is its own id). *)

val events : t -> event list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (the [eden.journal.events] counter). *)

val dropped : t -> int
(** Events overwritten by ring wrap-around (the [eden.journal.dropped]
    counter).  When non-zero, assembled traces are incomplete and the
    completeness-sensitive checker rules are skipped. *)

val pp_event : Format.formatter -> event -> unit
