open Eden_util

type t = Journal.event list

(* Event ids are allocated from the cluster-shared sink in engine
   execution order, which never runs ahead of virtual time — so a plain
   id sort yields one deterministic, time-ordered, cross-node merge. *)
let assemble journals =
  List.concat_map Journal.events journals
  |> List.sort (fun a b -> compare a.Journal.ev_id b.Journal.ev_id)

let events t = t
let length = List.length

let nodes t =
  List.sort_uniq compare (List.map (fun e -> e.Journal.ev_node) t)

let traces t =
  List.sort_uniq compare (List.map (fun e -> e.Journal.ev_trace) t)

(* ---------------------------------------------------------------- *)
(* Text timeline: one causal tree per trace. *)

let to_text t =
  let b = Buffer.create 4096 in
  let by_trace = Hashtbl.create 64 in
  List.iter
    (fun (e : Journal.event) ->
      let tl = try Hashtbl.find by_trace e.ev_trace with Not_found -> [] in
      Hashtbl.replace by_trace e.ev_trace (e :: tl))
    t;
  let depth = Hashtbl.create 256 in
  let depth_of (e : Journal.event) =
    match e.ev_parent with
    | None -> 0
    | Some p when p = e.ev_id -> 0
    | Some p -> (
      match Hashtbl.find_opt depth p with Some d -> d + 1 | None -> 0)
  in
  List.iter
    (fun trace ->
      let evs = List.rev (Hashtbl.find by_trace trace) in
      Buffer.add_string b (Printf.sprintf "trace %d (%d events)\n" trace
           (List.length evs));
      List.iter
        (fun (e : Journal.event) ->
          let d = depth_of e in
          Hashtbl.replace depth e.ev_id d;
          Buffer.add_string b
            (Printf.sprintf "%*s[%s] n%d #%d%s %s\n" (2 + (2 * d)) ""
               (Time.to_string e.ev_at) e.ev_node e.ev_id
               (match e.ev_parent with
               | Some p when p <> e.ev_id -> Printf.sprintf " <#%d" p
               | _ -> "")
               (Journal.describe_kind e.ev_kind)))
        evs)
    (traces t);
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* Chrome trace_event JSON (load in chrome://tracing or Perfetto).

   Every journal event becomes an instant event (ph "i") with
   pid = node and tid = trace id, so each node renders as a process and
   each causal trace as a track.  Matched send/recv pairs additionally
   emit a flow (ph "s" -> ph "f"), which the viewers draw as an arrow
   across nodes. *)

let ts_us (e : Journal.event) =
  Json.Float (float_of_int (Time.to_ns e.ev_at) /. 1000.)

let instant (e : Journal.event) =
  Json.Obj
    [
      ("name", Json.Str (Journal.kind_name e.ev_kind));
      ("cat", Json.Str "eden");
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("pid", Json.Int e.ev_node);
      ("tid", Json.Int e.ev_trace);
      ("ts", ts_us e);
      ( "args",
        Json.Obj
          [
            ("id", Json.Int e.ev_id);
            ( "parent",
              match e.ev_parent with
              | Some p -> Json.Int p
              | None -> Json.Null );
            ("detail", Json.Str (Journal.describe_kind e.ev_kind));
          ] );
    ]

let flow ~phase ?(extra = []) (e : Journal.event) ~id =
  Json.Obj
    ([
       ("name", Json.Str "msg");
       ("cat", Json.Str "eden");
       ("ph", Json.Str phase);
     ]
    @ extra
    @ [
        ("id", Json.Int id);
        ("pid", Json.Int e.ev_node);
        ("tid", Json.Int e.ev_trace);
        ("ts", ts_us e);
      ])

let process_name node =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int node);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "node %d" node)) ]);
    ]

let to_chrome_json ?(extra = []) t =
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun (e : Journal.event) -> Hashtbl.replace by_id e.ev_id e)
    t;
  let meta = List.map process_name (nodes t) in
  let instants = List.map instant t in
  let flows =
    List.concat_map
      (fun (e : Journal.event) ->
        match (e.ev_kind, e.ev_parent) with
        | Journal.Recv _, Some p -> (
          match Hashtbl.find_opt by_id p with
          | Some ({ Journal.ev_kind = Journal.Send _; _ } as s) ->
            [
              flow ~phase:"s" s ~id:p;
              flow ~phase:"f" ~extra:[ ("bp", Json.Str "e") ] e ~id:p;
            ]
          | _ -> [])
        | _ -> [])
      t
  in
  Json.Obj [ ("traceEvents", Json.List (meta @ instants @ flows @ extra)) ]

let to_chrome_string ?extra t =
  Json.to_string ~compact:true (to_chrome_json ?extra t)
