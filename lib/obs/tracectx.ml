type t = { trace : int; parent : int }

let make ~trace ~parent = { trace; parent }
let root id = { trace = id; parent = id }
let trace t = t.trace
let parent t = t.parent
let with_parent t ~parent = { t with parent }
let equal a b = a.trace = b.trace && a.parent = b.parent
let pp fmt t = Format.fprintf fmt "trace=%d parent=%d" t.trace t.parent
let to_string t = Format.asprintf "%a" pp t
