(* Space-saving sketch (see topk.mli).  Slots live in parallel arrays
   so the hot path — bumping an already-tracked key — is one hashtable
   hit and one array store.  Eviction takes the first minimum in slot
   order, which keeps same-seed runs byte-identical. *)

type entry = { e_key : string; e_count : int; e_err : int }

type t = {
  k_cap : int;
  k_slot : (string, int) Hashtbl.t; (* key -> slot index *)
  k_keys : string array;
  k_counts : int array;
  k_errs : int array;
  mutable k_size : int;
  mutable k_total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Topk.create: capacity must be positive";
  {
    k_cap = capacity;
    k_slot = Hashtbl.create (2 * capacity);
    k_keys = Array.make capacity "";
    k_counts = Array.make capacity 0;
    k_errs = Array.make capacity 0;
    k_size = 0;
    k_total = 0;
  }

let capacity t = t.k_cap
let total t = t.k_total

let add ?(count = 1) t key =
  if count < 0 then invalid_arg "Topk.add: negative count";
  t.k_total <- t.k_total + count;
  match Hashtbl.find_opt t.k_slot key with
  | Some i -> t.k_counts.(i) <- t.k_counts.(i) + count
  | None ->
    if t.k_size < t.k_cap then begin
      let i = t.k_size in
      t.k_size <- i + 1;
      t.k_keys.(i) <- key;
      t.k_counts.(i) <- count;
      t.k_errs.(i) <- 0;
      Hashtbl.replace t.k_slot key i
    end
    else begin
      (* Evict the first minimum in slot order; the newcomer inherits
         its count as the worst-case over-estimate. *)
      let mi = ref 0 in
      for i = 1 to t.k_cap - 1 do
        if t.k_counts.(i) < t.k_counts.(!mi) then mi := i
      done;
      let i = !mi in
      Hashtbl.remove t.k_slot t.k_keys.(i);
      t.k_errs.(i) <- t.k_counts.(i);
      t.k_counts.(i) <- t.k_counts.(i) + count;
      t.k_keys.(i) <- key;
      Hashtbl.replace t.k_slot key i
    end

let min_count t = if t.k_size < t.k_cap then 0 else Array.fold_left min max_int t.k_counts

let compare_entries a b =
  match compare b.e_count a.e_count with
  | 0 -> compare a.e_key b.e_key
  | c -> c

let entries t =
  let es =
    List.init t.k_size (fun i ->
        { e_key = t.k_keys.(i); e_count = t.k_counts.(i); e_err = t.k_errs.(i) })
  in
  List.sort compare_entries es

let top t k =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  take k (entries t)

let merge ~capacity ts =
  let acc : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let union_keys = ref [] in
  List.iter
    (fun t ->
      for i = 0 to t.k_size - 1 do
        let key = t.k_keys.(i) in
        if not (Hashtbl.mem acc key) then begin
          Hashtbl.replace acc key (0, 0);
          union_keys := key :: !union_keys
        end
      done)
    ts;
  (* A full sketch not tracking [key] could have absorbed up to its
     minimum count of it: charge that to both count and error so the
     merged count still never underestimates. *)
  List.iter
    (fun t ->
      let m = min_count t in
      List.iter
        (fun key ->
          let c, e = Hashtbl.find acc key in
          match Hashtbl.find_opt t.k_slot key with
          | Some i ->
            Hashtbl.replace acc key (c + t.k_counts.(i), e + t.k_errs.(i))
          | None -> Hashtbl.replace acc key (c + m, e + m))
        !union_keys)
    ts;
  let es =
    List.map
      (fun key ->
        let c, e = Hashtbl.find acc key in
        { e_key = key; e_count = c; e_err = e })
      !union_keys
  in
  let es = List.sort compare_entries es in
  let out = create ~capacity in
  List.iteri
    (fun rank e ->
      if rank < capacity then begin
        let i = out.k_size in
        out.k_size <- i + 1;
        out.k_keys.(i) <- e.e_key;
        out.k_counts.(i) <- e.e_count;
        out.k_errs.(i) <- e.e_err;
        Hashtbl.replace out.k_slot e.e_key i
      end)
    es;
  out.k_total <- List.fold_left (fun a t -> a + t.k_total) 0 ts;
  out
