open Eden_util

type t = {
  at : Time.t;
  metrics : Metrics.sample list;
  spans : Span.info list;
}

let take ~at ?spans reg =
  {
    at;
    metrics = Metrics.sample reg;
    spans = (match spans with Some c -> Span.finished c | None -> []);
  }

let find t ?labels name = Metrics.find t.metrics ?labels name

(* ---------------------------------------------------------------- *)
(* JSON *)

let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let sample_to_json (s : Metrics.sample) =
  let common =
    [ ("name", Json.Str s.s_name); ("labels", labels_to_json s.s_labels) ]
  in
  match s.s_value with
  | Metrics.Counter n ->
    Json.Obj (common @ [ ("kind", Json.Str "counter"); ("value", Json.Int n) ])
  | Metrics.Gauge g ->
    Json.Obj (common @ [ ("kind", Json.Str "gauge"); ("value", Json.Float g) ])
  | Metrics.Histogram h ->
    Json.Obj
      (common
      @ [
          ("kind", Json.Str "histogram");
          ( "bounds",
            Json.List
              (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)) );
          ( "counts",
            Json.List (Array.to_list (Array.map (fun c -> Json.Int c) h.counts))
          );
          ("overflow", Json.Int h.overflow);
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
        ])

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "eden-metrics/1");
      ("at_ns", Json.Int (Time.to_ns t.at));
      ("metrics", Json.List (List.map sample_to_json t.metrics));
      ("spans", Json.List (List.map Span.info_to_json t.spans));
    ]

let ( let* ) r f = Result.bind r f

let labels_of_json j : (Metrics.labels, string) result =
  match j with
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match Json.to_str v with
        | Some s -> Ok ((k, s) :: acc)
        | None -> Error (Printf.sprintf "snapshot: non-string label %S" k))
      (Ok []) fields
    |> Result.map List.rev
  | _ -> Error "snapshot: labels must be an object"

let sample_of_json j : (Metrics.sample, string) result =
  let req k conv =
    match Option.bind (Json.member k j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "snapshot: missing or bad field %S" k)
  in
  let* s_name = req "name" Json.to_str in
  let* s_labels =
    match Json.member "labels" j with
    | Some l -> labels_of_json l
    | None -> Ok []
  in
  let* kind = req "kind" Json.to_str in
  let* s_value =
    match kind with
    | "counter" ->
      let* v = req "value" Json.to_int in
      Ok (Metrics.Counter v)
    | "gauge" ->
      let* v = req "value" Json.to_float in
      Ok (Metrics.Gauge v)
    | "histogram" ->
      let floats k =
        let* l = req k Json.to_list in
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match Json.to_float x with
            | Some f -> Ok (f :: acc)
            | None -> Error (Printf.sprintf "snapshot: bad %s entry" k))
          (Ok []) l
        |> Result.map (fun l -> Array.of_list (List.rev l))
      in
      let ints k =
        let* l = req k Json.to_list in
        List.fold_left
          (fun acc x ->
            let* acc = acc in
            match Json.to_int x with
            | Some i -> Ok (i :: acc)
            | None -> Error (Printf.sprintf "snapshot: bad %s entry" k))
          (Ok []) l
        |> Result.map (fun l -> Array.of_list (List.rev l))
      in
      let* bounds = floats "bounds" in
      let* counts = ints "counts" in
      let* overflow = req "overflow" Json.to_int in
      let* count = req "count" Json.to_int in
      let* sum = req "sum" Json.to_float in
      Ok (Metrics.Histogram { Metrics.bounds; counts; overflow; count; sum })
    | k -> Error (Printf.sprintf "snapshot: unknown sample kind %S" k)
  in
  Ok { Metrics.s_name; s_labels; s_value }

let of_json j =
  let req k conv =
    match Option.bind (Json.member k j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "snapshot: missing or bad field %S" k)
  in
  let* schema = req "schema" Json.to_str in
  let* () =
    if String.equal schema "eden-metrics/1" then Ok ()
    else Error (Printf.sprintf "snapshot: unknown schema %S" schema)
  in
  let* at_ns = req "at_ns" Json.to_int in
  let* metrics =
    let* l = req "metrics" Json.to_list in
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* s = sample_of_json x in
        Ok (s :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let* spans =
    match Json.member "spans" j with
    | None -> Ok []
    | Some (Json.List l) ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* s = Span.info_of_json x in
          Ok (s :: acc))
        (Ok []) l
      |> Result.map List.rev
    | Some _ -> Error "snapshot: spans must be a list"
  in
  Ok { at = Time.ns at_ns; metrics; spans }

let to_string ?compact t = Json.to_string ?compact (to_json t)

let of_string s =
  let* j = Json.of_string s in
  of_json j

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

(* Write-then-rename so a reader polling [path] never observes a torn
   file: the temp file lives in the same directory, making the rename
   atomic on POSIX filesystems. *)
let write_file ?compact t ~path =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  (try
     Out_channel.with_open_text tmp (fun oc ->
         Out_channel.output_string oc (to_string ?compact t);
         Out_channel.output_char oc '\n')
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ---------------------------------------------------------------- *)
(* Pretty table *)

let value_cell = function
  | Metrics.Counter n -> Table.cell_int n
  | Metrics.Gauge g -> Table.cell_float ~decimals:3 g
  | Metrics.Histogram h ->
    if h.Metrics.count = 0 then "n=0"
    else
      Printf.sprintf "n=%d mean=%s" h.Metrics.count
        (Table.cell_float ~decimals:6
           (h.Metrics.sum /. float_of_int h.Metrics.count))

(* Group samples that carry exactly one label of key [key] into a
   (metric row) x (label value column) grid. *)
let grid_table ~title ~key samples =
  let cells =
    List.filter_map
      (fun (s : Metrics.sample) ->
        match s.s_labels with
        | [ (k, v) ] when String.equal k key -> Some (s.s_name, v, s.s_value)
        | _ -> None)
      samples
  in
  if cells = [] then None
  else begin
    let cols =
      List.sort_uniq compare (List.map (fun (_, v, _) -> v) cells)
    in
    let rows =
      (* keep first-seen sample order, which is name-sorted already *)
      List.fold_left
        (fun acc (n, _, _) -> if List.mem n acc then acc else acc @ [ n ])
        [] cells
    in
    let tbl =
      Table.create ~title
        ~columns:
          (("metric", Table.Left)
          :: List.map (fun c -> (key ^ " " ^ c, Table.Right)) cols)
    in
    List.iter
      (fun name ->
        let row =
          List.map
            (fun c ->
              match
                List.find_opt
                  (fun (n, v, _) -> String.equal n name && String.equal v c)
                  cells
              with
              | Some (_, _, value) -> value_cell value
              | None -> "-")
            cols
        in
        Table.add_row tbl (name :: row))
      rows;
    Some (Table.render tbl)
  end

let pp_table t =
  let b = Buffer.create 1024 in
  let add = function
    | Some s ->
      Buffer.add_string b s;
      Buffer.add_char b '\n'
    | None -> ()
  in
  add (grid_table ~title:"Per-node metrics" ~key:"node" t.metrics);
  add (grid_table ~title:"Per-segment metrics" ~key:"segment" t.metrics);
  let rest =
    List.filter
      (fun (s : Metrics.sample) ->
        match s.s_labels with
        | [ (k, _) ] -> not (String.equal k "node" || String.equal k "segment")
        | [] -> true
        | _ -> true)
      t.metrics
  in
  if rest <> [] then begin
    let tbl =
      Table.create ~title:"Cluster metrics"
        ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
    in
    List.iter
      (fun (s : Metrics.sample) ->
        let name =
          if s.s_labels = [] then s.s_name
          else
            s.s_name ^ "{"
            ^ String.concat ","
                (List.map (fun (k, v) -> k ^ "=" ^ v) s.s_labels)
            ^ "}"
        in
        Table.add_row tbl [ name; value_cell s.s_value ])
      rest;
    Buffer.add_string b (Table.render tbl);
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b
    (Printf.sprintf "spans retained: %d (virtual time %s)\n"
       (List.length t.spans) (Time.to_string t.at));
  Buffer.contents b
