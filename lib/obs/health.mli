(** Declarative SLO watchdogs over windowed metrics.

    A {!t} owns a set of {!Window} rings fed from a {!Metrics} registry
    at a fixed virtual-time tick (the cluster wires {!tick} to
    [Engine.every]), and evaluates each {!rule} with the multi-window
    burn-rate discipline: a rule starts {e firing} only when both the
    short and the long window breach its threshold (a brief spike with
    a healthy long window stays quiet), and returns to {e ok} only when
    neither breaches (the long window's memory gives the hysteresis).
    Signals with no data yet — an empty window, a zero denominator —
    evaluate to [nan], which never breaches.

    Evaluation is driven entirely by virtual time over deterministic
    aggregates, so same-seed runs produce byte-identical reports and
    the identical sequence of alert transitions. *)

type signal =
  | Rate of string
      (** Per-second rate of a counter over the window, summed across
          its label sets (per-node counters roll up cluster-wide). *)
  | Ratio of string * string
      (** Windowed delta of the first counter divided by the windowed
          delta of the second ([nan] when the denominator is zero) —
          e.g. retries per invocation. *)
  | Share of string * string
      (** [a / (a + b)] over windowed counter deltas — e.g. cache hits
          against misses. *)
  | Quantile of string * float
      (** Windowed quantile (in [0,1]) of a histogram, bucket deltas
          summed across label sets, estimated per
          {!Window.Hist.quantile_last}. *)
  | Gauge_max of string
      (** Maximum of the gauge across label sets and across the ticks
          of the window — depth-style signals (queues, in-flight
          checkpoints) alert on their recent worst case. *)
  | Share_of_latency of string
      (** A critical-path category's share of attributed latency over
          the window: the windowed delta of
          [eden.profile.<category>_ns] divided by that of
          [eden.profile.total_ns] (the counters the cluster feeds from
          finished spans with [use_profiling] on; [nan] while no
          requests finish).  Lets a watchdog fire on attribution
          shifts — wire time suddenly dominating, directory hops
          blowing up — rather than on raw latency alone. *)

type cmp = Above | Below

type rule = {
  r_name : string;
  r_signal : signal;
  r_cmp : cmp;
  r_threshold : float;  (** breach when the value is strictly beyond *)
}

type config = {
  hc_tick : Eden_util.Time.t;  (** sampling interval (virtual time) *)
  hc_short : int;  (** short-window length in ticks *)
  hc_long : int;  (** long-window length in ticks; also ring size *)
  hc_rules : rule list;
}

val default_rules : rule list
(** Watchdogs over the standard cluster metrics: p99 invocation
    latency, retry ratio, replica-cache hit share, async-checkpoint
    lag, object queue depth and pending remote requests. *)

val profile_rules : rule list
(** Watchdogs over the profiler's latency attribution: wire or queue
    share above one half, directory share above 0.4, backoff share
    above 0.3.  Separate from {!default_rules} because the
    [eden.profile.*] counters exist only with
    [Cluster.options.use_profiling]; append to [hc_rules] when
    profiling is on. *)

val default_config : config
(** [default_rules] sampled every 250 virtual ms, short window 4 ticks
    (1 s), long window 24 ticks (6 s). *)

type t

val create :
  ?on_transition:(rule -> firing:bool -> value:float -> unit) ->
  config ->
  Metrics.t ->
  t
(** Builds the windows and reads the registry once to baseline every
    tracked counter, so pre-existing totals do not appear as a burst in
    the first tick.  [on_transition] fires on every state change with
    the rule and its short-window value.  Raises [Invalid_argument] on
    a zero tick, [hc_short < 1] or [hc_long < hc_short]. *)

val tick : t -> unit
(** Close one tick: read the registry, push per-tick deltas into every
    window, re-evaluate all rules and report transitions. *)

val config : t -> config

val ticks : t -> int
(** Ticks closed so far. *)

val firing : t -> int
(** Rules currently firing. *)

val transitions : t -> int
(** Total state changes since creation. *)

type status = {
  st_rule : rule;
  st_firing : bool;
  st_short : float;  (** latest short-window value ([nan] = no data) *)
  st_long : float;
}

val statuses : t -> status list
(** One status per rule, in [hc_rules] order. *)

val report : t -> string
(** Deterministic fixed-width text dashboard (the [edenctl health]
    body). *)

val to_json : t -> Json.t
(** Schema [eden-health/1]; [nan] values export as [null]. *)

val signal_to_string : signal -> string
