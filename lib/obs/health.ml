(* SLO watchdogs (see health.mli).  Per-tick reads go through
   Metrics.iter — one unordered table walk, no sample-list sort — and
   aggregate with order-insensitive folds (integer sums, float maxima),
   so the result is deterministic despite the walk order.  Windows hold
   per-tick deltas of the aggregated series; rules then query the same
   ring at two depths. *)

module Time = Eden_util.Time

type signal =
  | Rate of string
  | Ratio of string * string
  | Share of string * string
  | Quantile of string * float
  | Gauge_max of string
  | Share_of_latency of string

type cmp = Above | Below

type rule = {
  r_name : string;
  r_signal : signal;
  r_cmp : cmp;
  r_threshold : float;
}

type config = {
  hc_tick : Time.t;
  hc_short : int;
  hc_long : int;
  hc_rules : rule list;
}

let default_rules =
  [
    {
      r_name = "inv-latency-p99";
      r_signal = Quantile ("eden.invocation_latency_s", 0.99);
      r_cmp = Above;
      r_threshold = 1.0;
    };
    {
      r_name = "retry-ratio";
      r_signal = Ratio ("eden.retries", "eden.invocations");
      r_cmp = Above;
      r_threshold = 0.10;
    };
    {
      r_name = "cache-hit-share";
      r_signal = Share ("eden.replica_cache.hits", "eden.replica_cache.misses");
      r_cmp = Below;
      r_threshold = 0.5;
    };
    {
      r_name = "ckpt-lag";
      r_signal = Gauge_max "eden.ckpt.async_inflight";
      r_cmp = Above;
      r_threshold = 4.0;
    };
    {
      r_name = "queue-depth";
      r_signal = Gauge_max "eden.queue_depth";
      r_cmp = Above;
      r_threshold = 64.0;
    };
    {
      r_name = "pending-requests";
      r_signal = Gauge_max "eden.pending_requests";
      r_cmp = Above;
      r_threshold = 256.0;
    };
  ]

(* Profiler-fed rules: the cluster publishes per-category critical
   path nanoseconds as [eden.profile.<category>_ns] counters (with
   profiling on), so a watchdog can fire when a category's share of
   attributed latency shifts.  Not in [default_rules]: the counters
   exist only with [use_profiling], and the default health report must
   stay byte-identical with profiling off. *)
let profile_rules =
  [
    {
      r_name = "latency-share-wire";
      r_signal = Share_of_latency "wire";
      r_cmp = Above;
      r_threshold = 0.5;
    };
    {
      r_name = "latency-share-queue";
      r_signal = Share_of_latency "queue";
      r_cmp = Above;
      r_threshold = 0.5;
    };
    {
      r_name = "latency-share-directory";
      r_signal = Share_of_latency "directory";
      r_cmp = Above;
      r_threshold = 0.4;
    };
    {
      r_name = "latency-share-backoff";
      r_signal = Share_of_latency "backoff";
      r_cmp = Above;
      r_threshold = 0.3;
    };
  ]

let profile_counter c = "eden.profile." ^ c ^ "_ns"
let profile_total = "eden.profile.total_ns"

let default_config =
  {
    hc_tick = Time.of_sec 0.25;
    hc_short = 4;
    hc_long = 24;
    hc_rules = default_rules;
  }

(* Trackers: one per distinct metric name a rule mentions.  [cur]
   fields accumulate during the Metrics.iter walk; finalize turns them
   into the tick's delta (counters, histograms) or level (gauges). *)

type ctrack = {
  mutable ct_prev : int;
  mutable ct_cur : int;
  ct_win : Window.t;
}

type gtrack = {
  mutable gt_cur : float; (* neg_infinity = not seen this tick *)
  gt_win : Window.t;
}

type htrack = {
  mutable ht_nb : int; (* bucket-bound count; 0 until first sighting *)
  mutable ht_prev : int array;
  mutable ht_prev_over : int;
  mutable ht_cur : int array;
  mutable ht_cur_over : int;
  mutable ht_delta : int array;
  mutable ht_win : Window.Hist.h option;
  ht_ticks : int;
}

type rstate = {
  rs_rule : rule;
  mutable rs_firing : bool;
  mutable rs_short : float;
  mutable rs_long : float;
}

type status = {
  st_rule : rule;
  st_firing : bool;
  st_short : float;
  st_long : float;
}

type t = {
  hs_cfg : config;
  hs_reg : Metrics.t;
  hs_counters : (string, ctrack) Hashtbl.t;
  hs_gauges : (string, gtrack) Hashtbl.t;
  hs_hists : (string, htrack) Hashtbl.t;
  hs_rules : rstate array;
  hs_on_transition : rule -> firing:bool -> value:float -> unit;
  mutable hs_ticks : int;
  mutable hs_transitions : int;
}

let track_counter t name =
  if not (Hashtbl.mem t.hs_counters name) then
    Hashtbl.replace t.hs_counters name
      { ct_prev = 0; ct_cur = 0; ct_win = Window.create ~ticks:t.hs_cfg.hc_long }

let track_gauge t name =
  if not (Hashtbl.mem t.hs_gauges name) then
    Hashtbl.replace t.hs_gauges name
      { gt_cur = neg_infinity; gt_win = Window.create ~ticks:t.hs_cfg.hc_long }

let track_hist t name =
  if not (Hashtbl.mem t.hs_hists name) then
    Hashtbl.replace t.hs_hists name
      {
        ht_nb = 0;
        ht_prev = [||];
        ht_prev_over = 0;
        ht_cur = [||];
        ht_cur_over = 0;
        ht_delta = [||];
        ht_win = None;
        ht_ticks = t.hs_cfg.hc_long;
      }

(* One registry walk: accumulate every tracked series into its [cur]
   fields.  Sums and maxima only, so walk order cannot matter. *)
let accumulate t =
  Hashtbl.iter (fun _ ct -> ct.ct_cur <- 0) t.hs_counters;
  Hashtbl.iter (fun _ gt -> gt.gt_cur <- neg_infinity) t.hs_gauges;
  Hashtbl.iter
    (fun _ ht ->
      if ht.ht_nb > 0 then begin
        Array.fill ht.ht_cur 0 ht.ht_nb 0;
        ht.ht_cur_over <- 0
      end)
    t.hs_hists;
  let tracked name =
    Hashtbl.mem t.hs_counters name
    || Hashtbl.mem t.hs_gauges name
    || Hashtbl.mem t.hs_hists name
  in
  Metrics.iter ~filter:tracked t.hs_reg (fun name _labels v ->
      match v with
      | Metrics.Counter n -> (
        match Hashtbl.find_opt t.hs_counters name with
        | Some ct -> ct.ct_cur <- ct.ct_cur + n
        | None -> ())
      | Metrics.Gauge g -> (
        match Hashtbl.find_opt t.hs_gauges name with
        | Some gt -> if not (Float.is_nan g) && g > gt.gt_cur then gt.gt_cur <- g
        | None -> ())
      | Metrics.Histogram hv -> (
        match Hashtbl.find_opt t.hs_hists name with
        | None -> ()
        | Some ht ->
          let nb = Array.length hv.Metrics.bounds in
          if ht.ht_nb = 0 then begin
            ht.ht_nb <- nb;
            ht.ht_prev <- Array.make nb 0;
            ht.ht_cur <- Array.make nb 0;
            ht.ht_delta <- Array.make nb 0;
            ht.ht_win <-
              Some (Window.Hist.create ~ticks:ht.ht_ticks ~bounds:hv.Metrics.bounds)
          end;
          if nb = ht.ht_nb then begin
            for i = 0 to nb - 1 do
              ht.ht_cur.(i) <- ht.ht_cur.(i) + hv.Metrics.counts.(i)
            done;
            ht.ht_cur_over <- ht.ht_cur_over + hv.Metrics.overflow
          end))

(* Move [cur] into the windows as this tick's delta/level. *)
let push_tick t =
  Hashtbl.iter
    (fun _ ct ->
      let d = ct.ct_cur - ct.ct_prev in
      ct.ct_prev <- ct.ct_cur;
      Window.push ct.ct_win (float_of_int (max 0 d)))
    t.hs_counters;
  Hashtbl.iter (fun _ gt -> Window.push gt.gt_win gt.gt_cur) t.hs_gauges;
  Hashtbl.iter
    (fun _ ht ->
      match ht.ht_win with
      | None -> ()
      | Some hw ->
        for i = 0 to ht.ht_nb - 1 do
          ht.ht_delta.(i) <- max 0 (ht.ht_cur.(i) - ht.ht_prev.(i));
          ht.ht_prev.(i) <- ht.ht_cur.(i)
        done;
        let dover = max 0 (ht.ht_cur_over - ht.ht_prev_over) in
        ht.ht_prev_over <- ht.ht_cur_over;
        Window.Hist.push hw ~counts:ht.ht_delta ~overflow:dover)
    t.hs_hists

let eval_signal t s k =
  match s with
  | Rate name ->
    Window.rate_last (Hashtbl.find t.hs_counters name).ct_win k
      ~tick:t.hs_cfg.hc_tick
  | Ratio (num, den) ->
    let n = Window.sum_last (Hashtbl.find t.hs_counters num).ct_win k in
    let d = Window.sum_last (Hashtbl.find t.hs_counters den).ct_win k in
    if d <= 0.0 then nan else n /. d
  | Share (a, b) ->
    let x = Window.sum_last (Hashtbl.find t.hs_counters a).ct_win k in
    let y = Window.sum_last (Hashtbl.find t.hs_counters b).ct_win k in
    if x +. y <= 0.0 then nan else x /. (x +. y)
  | Quantile (name, q) -> (
    match (Hashtbl.find t.hs_hists name).ht_win with
    | None -> nan
    | Some hw -> Window.Hist.quantile_last hw k q)
  | Gauge_max name ->
    let m = Window.max_last (Hashtbl.find t.hs_gauges name).gt_win k in
    if m = neg_infinity then nan else m
  | Share_of_latency c ->
    let n =
      Window.sum_last (Hashtbl.find t.hs_counters (profile_counter c)).ct_win k
    in
    let d = Window.sum_last (Hashtbl.find t.hs_counters profile_total).ct_win k in
    if d <= 0.0 then nan else n /. d

let breaches rule v =
  (not (Float.is_nan v))
  && (match rule.r_cmp with Above -> v > rule.r_threshold | Below -> v < rule.r_threshold)

let create ?(on_transition = fun _ ~firing:_ ~value:_ -> ()) cfg reg =
  if Time.is_zero cfg.hc_tick then invalid_arg "Health.create: zero tick";
  if cfg.hc_short < 1 then invalid_arg "Health.create: hc_short < 1";
  if cfg.hc_long < cfg.hc_short then
    invalid_arg "Health.create: hc_long < hc_short";
  List.iter
    (fun r ->
      match r.r_signal with
      | Quantile (_, q) when not (q >= 0.0 && q <= 1.0) ->
        invalid_arg "Health.create: quantile out of [0,1]"
      | _ -> ())
    cfg.hc_rules;
  let t =
    {
      hs_cfg = cfg;
      hs_reg = reg;
      hs_counters = Hashtbl.create 8;
      hs_gauges = Hashtbl.create 8;
      hs_hists = Hashtbl.create 4;
      hs_rules =
        Array.of_list
          (List.map
             (fun r ->
               { rs_rule = r; rs_firing = false; rs_short = nan; rs_long = nan })
             cfg.hc_rules);
      hs_on_transition = on_transition;
      hs_ticks = 0;
      hs_transitions = 0;
    }
  in
  List.iter
    (fun r ->
      match r.r_signal with
      | Rate n -> track_counter t n
      | Ratio (a, b) | Share (a, b) ->
        track_counter t a;
        track_counter t b
      | Quantile (n, _) -> track_hist t n
      | Gauge_max n -> track_gauge t n
      | Share_of_latency c ->
        track_counter t (profile_counter c);
        track_counter t profile_total)
    cfg.hc_rules;
  (* Baseline: absorb pre-existing totals so the first tick's deltas
     measure the first tick only. *)
  accumulate t;
  Hashtbl.iter (fun _ ct -> ct.ct_prev <- ct.ct_cur) t.hs_counters;
  Hashtbl.iter
    (fun _ ht ->
      if ht.ht_nb > 0 then begin
        Array.blit ht.ht_cur 0 ht.ht_prev 0 ht.ht_nb;
        ht.ht_prev_over <- ht.ht_cur_over
      end)
    t.hs_hists;
  t

let tick t =
  accumulate t;
  push_tick t;
  t.hs_ticks <- t.hs_ticks + 1;
  Array.iter
    (fun rs ->
      let short = eval_signal t rs.rs_rule.r_signal t.hs_cfg.hc_short in
      let long = eval_signal t rs.rs_rule.r_signal t.hs_cfg.hc_long in
      rs.rs_short <- short;
      rs.rs_long <- long;
      let bs = breaches rs.rs_rule short and bl = breaches rs.rs_rule long in
      let firing' = if rs.rs_firing then bs || bl else bs && bl in
      if firing' <> rs.rs_firing then begin
        rs.rs_firing <- firing';
        t.hs_transitions <- t.hs_transitions + 1;
        t.hs_on_transition rs.rs_rule ~firing:firing' ~value:short
      end)
    t.hs_rules

let config t = t.hs_cfg
let ticks t = t.hs_ticks

let firing t =
  Array.fold_left (fun n rs -> if rs.rs_firing then n + 1 else n) 0 t.hs_rules

let transitions t = t.hs_transitions

let statuses t =
  Array.to_list
    (Array.map
       (fun rs ->
         {
           st_rule = rs.rs_rule;
           st_firing = rs.rs_firing;
           st_short = rs.rs_short;
           st_long = rs.rs_long;
         })
       t.hs_rules)

let signal_to_string = function
  | Rate n -> Printf.sprintf "rate(%s)/s" n
  | Ratio (a, b) -> Printf.sprintf "ratio(%s,%s)" a b
  | Share (a, b) -> Printf.sprintf "share(%s,%s)" a b
  | Quantile (n, q) -> Printf.sprintf "p%g(%s)" (q *. 100.0) n
  | Gauge_max n -> Printf.sprintf "max(%s)" n
  | Share_of_latency c -> Printf.sprintf "latency-share(%s)" c

let cmp_to_string = function Above -> ">" | Below -> "<"

let fmt_value v = if Float.is_nan v then "-" else Printf.sprintf "%.6g" v

let report t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf
    "health: %d/%d firing | transitions %d | ticks %d (tick %.6gs, windows %d/%d)\n"
    (firing t)
    (Array.length t.hs_rules)
    t.hs_transitions t.hs_ticks
    (Time.to_sec t.hs_cfg.hc_tick)
    t.hs_cfg.hc_short t.hs_cfg.hc_long;
  Printf.bprintf buf "  %-18s %-52s %-10s %-10s %-10s %s\n" "rule" "signal"
    "threshold" "short" "long" "state";
  Array.iter
    (fun rs ->
      let r = rs.rs_rule in
      Printf.bprintf buf "  %-18s %-52s %-10s %-10s %-10s %s\n" r.r_name
        (signal_to_string r.r_signal)
        (Printf.sprintf "%s %.6g" (cmp_to_string r.r_cmp) r.r_threshold)
        (fmt_value rs.rs_short) (fmt_value rs.rs_long)
        (if rs.rs_firing then "FIRING" else "ok"))
    t.hs_rules;
  Buffer.contents buf

let json_of_value v = if Float.is_nan v then Json.Null else Json.Float v

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "eden-health/1");
      ("tick_s", Json.Float (Time.to_sec t.hs_cfg.hc_tick));
      ("short_ticks", Json.Int t.hs_cfg.hc_short);
      ("long_ticks", Json.Int t.hs_cfg.hc_long);
      ("ticks", Json.Int t.hs_ticks);
      ("transitions", Json.Int t.hs_transitions);
      ("alerts_firing", Json.Int (firing t));
      ( "rules",
        Json.List
          (Array.to_list
             (Array.map
                (fun rs ->
                  let r = rs.rs_rule in
                  Json.Obj
                    [
                      ("name", Json.Str r.r_name);
                      ("signal", Json.Str (signal_to_string r.r_signal));
                      ("cmp", Json.Str (cmp_to_string r.r_cmp));
                      ("threshold", Json.Float r.r_threshold);
                      ("short", json_of_value rs.rs_short);
                      ("long", json_of_value rs.rs_long);
                      ("firing", Json.Bool rs.rs_firing);
                    ])
                t.hs_rules)) );
    ]
