type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -------------------------------------------------------------------- *)
(* Printing *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest representation that parses back to the same float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let to_string ?(compact = true) v =
  let b = Buffer.create 256 in
  let nl indent =
    if not compact then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_nan f || Float.is_integer (f /. 0.) then
        (* JSON has no NaN/inf; null is the conventional stand-in. *)
        Buffer.add_string b "null"
      else Buffer.add_string b (float_repr f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          go (indent + 2) x)
        xs;
      nl indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          escape_string b k;
          Buffer.add_char b ':';
          if not compact then Buffer.add_char b ' ';
          go (indent + 2) x)
        fields;
      nl indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* -------------------------------------------------------------------- *)
(* Parsing: plain recursive descent over a string. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let utf8_add b c =
    (* Encode one scalar value; surrogate pairs were combined by the
       caller. *)
    if c < 0x80 then Buffer.add_char b (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
    end
    else if c < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (c lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          let c = hex4 () in
          let c =
            if c >= 0xD800 && c <= 0xDBFF
               && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + ((c - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else c
          in
          utf8_add b c
        | _ -> fail "bad escape");
        loop ())
      | Some c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at %d: %s" at msg)

(* -------------------------------------------------------------------- *)
(* Accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         xs ys
  | _ -> false
