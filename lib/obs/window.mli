(** Sliding windows over cumulative telemetry.

    A window is a ring of per-tick deltas: the sampler closes one tick
    per virtual-time interval and pushes the amount the underlying
    series moved during it.  Keeping deltas (rather than raw samples)
    makes windows additive — two windows fed a split of one stream
    merge, slot by slot, into the window of the whole stream — and
    keeps storage flat: a window of [ticks] slots is one float array
    written round-robin, following the journal's allocation-light
    idiom (PR 5).  Queries aggregate over the most recent [k] ticks,
    so one ring serves both the short and the long window of a
    multi-window burn-rate rule.

    {!Hist} is the same ring over histogram buckets: per-tick bucket
    deltas, queried as windowed percentile estimates by linear
    interpolation inside the bucket that crosses the rank (the
    fixed-bucket estimator {!Eden_util.Stats.Histogram} uses for its
    distribution output). *)

type t

val create : ticks:int -> t
(** A window retaining the last [ticks] per-tick deltas.  Raises
    [Invalid_argument] if [ticks <= 0]. *)

val ticks : t -> int
(** Ring capacity, as given to {!create}. *)

val filled : t -> int
(** Ticks recorded so far, saturating at {!ticks}.  Queries over
    [k > filled t] see only the recorded ticks (warm-up reads are
    over a shorter effective window, never padded with zeros). *)

val push : t -> float -> unit
(** Close one tick: append its delta, evicting the oldest retained
    tick once the ring is full. *)

val sum_last : t -> int -> float
(** [sum_last w k] sums the newest [min k (filled w)] deltas; [0.0]
    before the first tick. *)

val max_last : t -> int -> float
(** Maximum over the newest [min k (filled w)] deltas; [nan] before
    the first tick. *)

val mean_last : t -> int -> float
(** Mean over the newest [min k (filled w)] deltas; [nan] before the
    first tick. *)

val rate_last : t -> int -> tick:Eden_util.Time.t -> float
(** [rate_last w k ~tick] is the per-second rate over the newest
    [min k (filled w)] ticks of duration [tick] each; [nan] before
    the first tick. *)

val merge : t -> t -> t
(** Slot-aligned sum, newest tick first: merging two windows that
    each saw part of one split stream (ticked in lockstep) yields the
    window of the whole stream.  The result's [filled] is the larger
    of the two; the shorter side contributes zero to the ticks it
    never saw.  Raises [Invalid_argument] when capacities differ. *)

(** Windowed histograms: per-tick bucket deltas over the fixed bounds
    of a {!Metrics.histogram}. *)
module Hist : sig
  type h

  val create : ticks:int -> bounds:float array -> h
  (** Bounds follow {!Metrics.histogram}: strictly increasing upper
      bounds plus an implicit overflow bucket.  Raises
      [Invalid_argument] if [ticks <= 0] or [bounds] is empty. *)

  val push : h -> counts:int array -> overflow:int -> unit
  (** Close one tick with the per-bucket observation deltas recorded
      during it.  [counts] must match the bounds length. *)

  val count_last : h -> int -> int
  (** Observations in the newest [min k filled] ticks. *)

  val quantile_last : h -> int -> float -> float
  (** [quantile_last h k q] with [q] in [\[0,1\]] estimates the
      [q]-quantile of the observations in the newest [k] ticks:
      nearest rank to the bucket, linear interpolation within it.
      Ranks landing in the overflow bucket report the last bound (the
      estimator cannot see past it).  [nan] when the window holds no
      observations; raises [Invalid_argument] when [q] is out of
      range. *)
end
