(** A minimal self-contained JSON value type, printer and parser.

    The observability layer exports metric snapshots and invocation
    spans as JSON so that external tooling can re-check every number
    an experiment reports.  The repository deliberately avoids an
    external JSON dependency; this module implements the subset of RFC
    8259 the exporter needs (and its parser accepts any standard JSON
    document, so round-tripping a snapshot is testable). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Serialise.  [compact] (default true) omits all whitespace;
    otherwise the output is indented two spaces per level.  Floats are
    printed with enough digits to round-trip exactly. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.  The
    error string carries a character offset. *)

(** {1 Accessors}  All return [None] on a kind mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]. *)

val to_int : t -> int option
(** [Int] only (no silent float truncation). *)

val to_float : t -> float option
(** [Float] or [Int]. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

val equal : t -> t -> bool
(** Structural equality; object fields compare in order. *)
