(** Trace context: the causal coordinates a kernel message carries.

    A context names the trace it belongs to ([trace]: the id of the
    journal event that rooted the trace, e.g. an invocation's begin
    event) and the journal event that immediately caused this step
    ([parent]).  Contexts ride in the envelope of every kernel message
    (see [Eden_kernel.Message]) and thread through multi-step kernel
    work, so the per-node {!Journal}s can later be assembled into one
    cross-node causal tree per trace. *)

type t = private { trace : int; parent : int }

val make : trace:int -> parent:int -> t

val root : int -> t
(** [root id] is the context of a trace-rooting event: the event is its
    own trace and its own parent. *)

val trace : t -> int
val parent : t -> int

val with_parent : t -> parent:int -> t
(** Same trace, new causal predecessor. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
