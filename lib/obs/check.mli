(** Trace checker: cross-node invariants over an assembled timeline.

    Eight rules, each a causality audit the simulator's own unit tests
    cannot express because no single node sees the whole story:

    - {b recv-matches-send}: every receive's causal parent exists, is
      a send, and lives on the node the receiver names as its source.
    - {b causal-time-order}: no event happens before its causal
      parent in virtual time.
    - {b retry-terminates}: a trace that retried also reports an
      invocation end (ok or error) after the retry.
    - {b install-epoch}: a replica-cache install never carries an
      epoch older than an invalidation already seen on that node.
    - {b clone-resolves-once}: every clone fan-out resolves to exactly
      one win plus cancelled losers (or, with no winner, a cancel for
      every site) — per trace, wins never exceed fan-outs and
      wins + cancels equals the total sites fanned out to.
    - {b dir-resolves-or-falls-back}: the locate directory resolves to
      the true home or falls back — per trace, a [Dir_hit] is followed
      by the invocation's end or an explicit [Dir_fallback] (a stale
      answer may cost a nack round, never strand the attempt), and a
      [Dir_miss] is always followed by a [Dir_fallback] (a miss
      mandates the broadcast path).
    - {b epoch-monotonic}: membership views only move forward — per
      node, successive [Epoch_bump]s carry strictly increasing epochs
      — and a [Dir_hit] consumed at a node whose view lags the newest
      epoch any node has reached is still followed by the invocation's
      end or an explicit [Dir_fallback]: a stale ring can cost a
      detour, never a stranded attempt.
    - {b attribution-complete}: for every trace bracketing a whole
      request, the critical-path profiler's per-category nanoseconds
      ({!Critical.breakdowns}) sum to the request's end-to-end
      latency, exactly — attribution never loses or double-counts a
      nanosecond.

    The first, third, fifth, sixth, seventh and eighth rules need the
    journals to be complete; pass [complete:false] when any journal
    dropped events and they are skipped. *)

type violation = { v_rule : string; v_event : int option; v_detail : string }
(** [v_rule] is the invariant's {e name} (e.g. ["attribution-complete"]),
    in both the text rendering and the JSON export — downstream
    tooling never sees a bare positional index. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_json : violation -> Json.t
val violations_to_json : violation list -> Json.t

val run : ?complete:bool -> Timeline.t -> violation list
(** Empty list = all invariants hold. *)
