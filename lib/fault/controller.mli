(** Arms a {!Plan} against a running cluster.

    The controller schedules every plan event as a daemon process at
    its virtual time, maintains the set of currently-broken links, and
    installs a fault injector on the cluster's transport that consults
    that set on every unicast.  Broadcasts always pass: the locate
    protocol stays reliable, as the paper's best-effort datagram layer
    assumed of its short control messages.

    Everything the controller does is driven by the virtual clock and
    a splittable PRNG seeded at {!arm}, so a given (cluster seed, plan,
    controller seed) triple replays identically.

    Counters registered in the cluster's metrics registry:
    [fault.injected] (every fault the controller actually applied) and
    the per-kind breakdown [fault.node_crashes], [fault.node_restarts],
    [fault.disk_failures], [fault.partitions], [fault.link_drops],
    [fault.link_dups], [fault.link_delays], [fault.slow_nodes],
    [fault.joins], [fault.decommissions].  A {!Plan.action.Join_node}
    or {!Plan.action.Decommission_node} the cluster refuses (node
    already a member, last member, powered off by an earlier fault) is
    skipped and not counted — a refusal is a legitimate interleaving
    under chaos, not a plan error.

    A {!Plan.action.Slow_node} degrades a node rather than a link:
    every unicast the node sends {e or} receives is held by the given
    delay (stacking with any link-fault delay; coin-free, so it never
    perturbs the link PRNG stream).  This makes latency {e tails}
    rather than absence — the degradation mode the cloning and hedging
    machinery is built to survive. *)

type t

val arm : ?seed:int64 -> Eden_kernel.Cluster.t -> Plan.t -> t
(** Schedule the plan's events and install the link-fault injector.
    Event times are relative to the virtual instant of arming, so a
    plan armed after a setup phase still means what it says.  [seed]
    feeds the per-message coin flips only. *)

val injected : t -> int
(** Faults applied so far (same value as the [fault.injected]
    counter). *)

val broken_links : t -> (int * int) list
(** Currently-broken (src, dst) pairs, sorted — for tests. *)

val slow_nodes : t -> (int * Eden_util.Time.t) list
(** Currently-degraded nodes with their hold delay, sorted — for
    tests. *)

val disarm : t -> unit
(** Remove the transport hook and heal all link faults.  Scheduled
    plan events that have not fired yet still fire (they are engine
    processes), but link coins no longer apply. *)
