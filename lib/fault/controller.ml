open Eden_util
open Eden_sim
open Eden_kernel
module Metrics = Eden_obs.Metrics

type t = {
  cl : Cluster.t;
  rng : Splitmix.t;
  links : (int * int, Plan.link_kind * float) Hashtbl.t;
  mutable armed : bool;
  mutable n_injected : int;
  c_injected : Metrics.counter;
  c_crashes : Metrics.counter;
  c_restarts : Metrics.counter;
  c_disk : Metrics.counter;
  c_partitions : Metrics.counter;
  c_drops : Metrics.counter;
  c_dups : Metrics.counter;
  c_delays : Metrics.counter;
}

let count ctl c =
  ctl.n_injected <- ctl.n_injected + 1;
  Metrics.incr ctl.c_injected;
  Metrics.incr c

let apply ctl ev =
  let cl = ctl.cl in
  let net = Cluster.network cl in
  match (ev : Plan.event).action with
  | Plan.Crash_node n ->
    Cluster.crash_node cl n;
    count ctl ctl.c_crashes
  | Plan.Restart_node { node; rebuild } ->
    Cluster.restart_node ~rebuild cl node;
    count ctl ctl.c_restarts
  | Plan.Fail_disk n ->
    Cluster.set_disk_failed cl n true;
    count ctl ctl.c_disk
  | Plan.Heal_disk n -> Cluster.set_disk_failed cl n false
  | Plan.Partition_segment s ->
    Transport.set_partitioned net s true;
    count ctl ctl.c_partitions
  | Plan.Heal_segment s -> Transport.set_partitioned net s false
  | Plan.Break_link { src; dst; kind; p } ->
    Hashtbl.replace ctl.links (src, dst) (kind, p)
  | Plan.Heal_link { src; dst } -> Hashtbl.remove ctl.links (src, dst)

(* The per-message decision consulted by the transport.  Unicast only:
   locate broadcasts and destroy notices stay reliable. *)
let decide ctl ~src ~dst =
  if not ctl.armed then Transport.Pass
  else
    match dst with
    | None -> Transport.Pass
    | Some g -> (
      match Hashtbl.find_opt ctl.links (src, g) with
      | None -> Transport.Pass
      | Some (kind, p) ->
        if not (Splitmix.coin ctl.rng p) then Transport.Pass
        else (
          match kind with
          | Plan.Drop ->
            count ctl ctl.c_drops;
            Transport.Drop
          | Plan.Duplicate ->
            count ctl ctl.c_dups;
            Transport.Duplicate
          | Plan.Delay d ->
            count ctl ctl.c_delays;
            Transport.Delay d))

let arm ?(seed = 0xFA17L) cl plan =
  let reg = Cluster.metrics cl in
  (* Instruments are created up front, in a fixed order, so the
     registry's sample set does not depend on which faults happen to
     fire — identical seeds then yield identical snapshots. *)
  let ctl =
    {
      cl;
      rng = Splitmix.create seed;
      links = Hashtbl.create 8;
      armed = true;
      n_injected = 0;
      c_injected = Metrics.counter reg "fault.injected";
      c_crashes = Metrics.counter reg "fault.node_crashes";
      c_restarts = Metrics.counter reg "fault.node_restarts";
      c_disk = Metrics.counter reg "fault.disk_failures";
      c_partitions = Metrics.counter reg "fault.partitions";
      c_drops = Metrics.counter reg "fault.link_drops";
      c_dups = Metrics.counter reg "fault.link_dups";
      c_delays = Metrics.counter reg "fault.link_delays";
    }
  in
  Transport.set_fault_injector (Cluster.network cl)
    (Some (fun ~src ~dst -> decide ctl ~src ~dst));
  let eng = Cluster.engine cl in
  (* Plan times are relative to the instant of arming, so a plan can be
     armed after a setup phase has consumed virtual time and still mean
     what it says. *)
  let now = Engine.now eng in
  List.iter
    (fun (ev : Plan.event) ->
      let pid =
        Engine.spawn eng ~name:"fault" ~at:(Time.add now ev.at) (fun () ->
            apply ctl ev)
      in
      Engine.set_daemon eng pid)
    (Plan.events plan);
  ctl

let injected ctl = ctl.n_injected

let broken_links ctl =
  Hashtbl.fold (fun k _ acc -> k :: acc) ctl.links []
  |> List.sort compare

let disarm ctl =
  ctl.armed <- false;
  Hashtbl.reset ctl.links;
  Transport.set_fault_injector (Cluster.network ctl.cl) None
