open Eden_util
open Eden_sim
open Eden_kernel
module Metrics = Eden_obs.Metrics

type t = {
  cl : Cluster.t;
  rng : Splitmix.t;
  links : (int * int, Plan.link_kind * float) Hashtbl.t;
  (* nodes currently degraded: every unicast touching one is held *)
  slow : (int, Time.t) Hashtbl.t;
  mutable armed : bool;
  mutable n_injected : int;
  c_injected : Metrics.counter;
  c_crashes : Metrics.counter;
  c_restarts : Metrics.counter;
  c_disk : Metrics.counter;
  c_partitions : Metrics.counter;
  c_drops : Metrics.counter;
  c_dups : Metrics.counter;
  c_delays : Metrics.counter;
  c_slow : Metrics.counter;
  c_joins : Metrics.counter;
  c_decommissions : Metrics.counter;
}

let count ctl c =
  ctl.n_injected <- ctl.n_injected + 1;
  Metrics.incr ctl.c_injected;
  Metrics.incr c

let apply ctl ev =
  let cl = ctl.cl in
  let net = Cluster.network cl in
  match (ev : Plan.event).action with
  | Plan.Crash_node n ->
    Cluster.crash_node cl n;
    count ctl ctl.c_crashes
  | Plan.Restart_node { node; rebuild } ->
    Cluster.restart_node ~rebuild cl node;
    count ctl ctl.c_restarts
  | Plan.Fail_disk n ->
    Cluster.set_disk_failed cl n true;
    count ctl ctl.c_disk
  | Plan.Heal_disk n -> Cluster.set_disk_failed cl n false
  | Plan.Partition_segment s ->
    Transport.set_partitioned net s true;
    count ctl ctl.c_partitions
  | Plan.Heal_segment s -> Transport.set_partitioned net s false
  | Plan.Break_link { src; dst; kind; p } ->
    Hashtbl.replace ctl.links (src, dst) (kind, p)
  | Plan.Heal_link { src; dst } -> Hashtbl.remove ctl.links (src, dst)
  | Plan.Slow_node { node; by } ->
    Hashtbl.replace ctl.slow node by;
    count ctl ctl.c_slow
  | Plan.Heal_slow n -> Hashtbl.remove ctl.slow n
  (* Reconfigurations that the cluster refuses (already a member, last
     member, powered off by an earlier fault) are simply skipped — a
     chaos plan's join/decommission races the crash windows around it,
     and a refusal is a legitimate interleaving, not a plan error. *)
  | Plan.Join_node n -> (
    match Cluster.join_node cl n with
    | Ok () -> count ctl ctl.c_joins
    | Error _ -> ())
  | Plan.Decommission_node n -> (
    match Cluster.decommission_node cl n with
    | Ok () -> count ctl ctl.c_decommissions
    | Error _ -> ())

(* The per-message decision consulted by the transport.  Unicast only:
   locate broadcasts and destroy notices stay reliable.  The link coin
   is flipped first and exactly as without slow nodes, so arming a
   [Slow_node] never shifts the PRNG stream feeding link faults; the
   slow-node hold (a fixed, coin-free delay charged when either end of
   the transfer is degraded) then stacks on a Pass or Delay verdict.
   A Drop loses the message regardless and a Duplicate keeps its
   immediate double transmission — the fault type cannot express
   duplicate-and-delay, and a fast duplicate only makes the tail
   harder on the cloning machinery, which is the point. *)
let decide ctl ~src ~dst =
  if not ctl.armed then Transport.Pass
  else
    match dst with
    | None -> Transport.Pass
    | Some g ->
      let verdict =
        match Hashtbl.find_opt ctl.links (src, g) with
        | None -> Transport.Pass
        | Some (kind, p) ->
          if not (Splitmix.coin ctl.rng p) then Transport.Pass
          else (
            match kind with
            | Plan.Drop ->
              count ctl ctl.c_drops;
              Transport.Drop
            | Plan.Duplicate ->
              count ctl ctl.c_dups;
              Transport.Duplicate
            | Plan.Delay d ->
              count ctl ctl.c_delays;
              Transport.Delay d)
      in
      let slow_by =
        let at n acc =
          match Hashtbl.find_opt ctl.slow n with
          | Some d -> Time.add acc d
          | None -> acc
        in
        at src (at g Time.zero)
      in
      if Time.to_ns slow_by = 0 then verdict
      else (
        match verdict with
        | Transport.Pass -> Transport.Delay slow_by
        | Transport.Delay d -> Transport.Delay (Time.add d slow_by)
        | (Transport.Drop | Transport.Duplicate) as v -> v)

let arm ?(seed = 0xFA17L) cl plan =
  let reg = Cluster.metrics cl in
  (* Instruments are created up front, in a fixed order, so the
     registry's sample set does not depend on which faults happen to
     fire — identical seeds then yield identical snapshots. *)
  let ctl =
    {
      cl;
      rng = Splitmix.create seed;
      links = Hashtbl.create 8;
      slow = Hashtbl.create 4;
      armed = true;
      n_injected = 0;
      c_injected = Metrics.counter reg "fault.injected";
      c_crashes = Metrics.counter reg "fault.node_crashes";
      c_restarts = Metrics.counter reg "fault.node_restarts";
      c_disk = Metrics.counter reg "fault.disk_failures";
      c_partitions = Metrics.counter reg "fault.partitions";
      c_drops = Metrics.counter reg "fault.link_drops";
      c_dups = Metrics.counter reg "fault.link_dups";
      c_delays = Metrics.counter reg "fault.link_delays";
      c_slow = Metrics.counter reg "fault.slow_nodes";
      c_joins = Metrics.counter reg "fault.joins";
      c_decommissions = Metrics.counter reg "fault.decommissions";
    }
  in
  Transport.set_fault_injector (Cluster.network cl)
    (Some (fun ~src ~dst -> decide ctl ~src ~dst));
  let eng = Cluster.engine cl in
  (* Plan times are relative to the instant of arming, so a plan can be
     armed after a setup phase has consumed virtual time and still mean
     what it says. *)
  let now = Engine.now eng in
  List.iter
    (fun (ev : Plan.event) ->
      let pid =
        Engine.spawn eng ~name:"fault" ~at:(Time.add now ev.at) (fun () ->
            apply ctl ev)
      in
      Engine.set_daemon eng pid)
    (Plan.events plan);
  ctl

let injected ctl = ctl.n_injected

let broken_links ctl =
  Hashtbl.fold (fun k _ acc -> k :: acc) ctl.links []
  |> List.sort compare

let slow_nodes ctl =
  Hashtbl.fold (fun n d acc -> (n, d) :: acc) ctl.slow []
  |> List.sort compare

let disarm ctl =
  ctl.armed <- false;
  Hashtbl.reset ctl.links;
  Hashtbl.reset ctl.slow;
  Transport.set_fault_injector (Cluster.network ctl.cl) None
