open Eden_util

type link_kind =
  | Drop
  | Duplicate
  | Delay of Time.t

type action =
  | Crash_node of int
  | Restart_node of { node : int; rebuild : bool }
  | Fail_disk of int
  | Heal_disk of int
  | Partition_segment of int
  | Heal_segment of int
  | Break_link of { src : int; dst : int; kind : link_kind; p : float }
  | Heal_link of { src : int; dst : int }
  | Slow_node of { node : int; by : Time.t }
  | Heal_slow of int
  | Join_node of int
  | Decommission_node of int

type event = { at : Time.t; action : action }
type t = event list

let empty = []

let make events =
  List.stable_sort (fun a b -> Time.compare a.at b.at) events

let events t = t

(* ------------------------------------------------------------------ *)
(* Printing *)

let time_to_string t =
  let n = Time.to_ns t in
  if n mod 1_000_000_000 = 0 then Printf.sprintf "%ds" (n / 1_000_000_000)
  else if n mod 1_000_000 = 0 then Printf.sprintf "%dms" (n / 1_000_000)
  else if n mod 1_000 = 0 then Printf.sprintf "%dus" (n / 1_000)
  else Printf.sprintf "%dns" n

(* 17 significant digits round-trip any double exactly, so
   [of_string (to_string p)] reproduces the plan bit-for-bit. *)
let prob_to_string p = Printf.sprintf "%.17g" p

let action_to_string = function
  | Crash_node n -> Printf.sprintf "crash %d" n
  | Restart_node { node; rebuild } ->
    Printf.sprintf "restart %d%s" node (if rebuild then " rebuild" else "")
  | Fail_disk n -> Printf.sprintf "fail-disk %d" n
  | Heal_disk n -> Printf.sprintf "heal-disk %d" n
  | Partition_segment s -> Printf.sprintf "partition %d" s
  | Heal_segment s -> Printf.sprintf "heal %d" s
  | Break_link { src; dst; kind; p } -> (
    match kind with
    | Drop -> Printf.sprintf "drop %d->%d p=%s" src dst (prob_to_string p)
    | Duplicate -> Printf.sprintf "dup %d->%d p=%s" src dst (prob_to_string p)
    | Delay d ->
      Printf.sprintf "delay %d->%d %s p=%s" src dst (time_to_string d)
        (prob_to_string p))
  | Heal_link { src; dst } -> Printf.sprintf "heal-link %d->%d" src dst
  | Slow_node { node; by } ->
    Printf.sprintf "slow %d %s" node (time_to_string by)
  | Heal_slow n -> Printf.sprintf "heal-slow %d" n
  | Join_node n -> Printf.sprintf "join %d" n
  | Decommission_node n -> Printf.sprintf "decommission %d" n

let to_string t =
  String.concat ""
    (List.map
       (fun ev ->
         Printf.sprintf "at %s %s\n" (time_to_string ev.at)
           (action_to_string ev.action))
       t)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let parse_time s =
  let num_and_unit suffix mk =
    match String.length s - String.length suffix with
    | len when len > 0 && String.sub s len (String.length suffix) = suffix
      -> (
      match int_of_string_opt (String.sub s 0 len) with
      | Some n when n >= 0 -> Some (mk n)
      | Some _ | None -> None)
    | _ -> None
  in
  (* Try the longer suffixes first: "5ms" must not parse as "5m" + "s". *)
  match num_and_unit "ns" Time.ns with
  | Some t -> Some t
  | None -> (
    match num_and_unit "us" Time.us with
    | Some t -> Some t
    | None -> (
      match num_and_unit "ms" Time.ms with
      | Some t -> Some t
      | None -> num_and_unit "s" Time.s))

let parse_link s =
  match String.index_opt s '-' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '>'
         && i > 0 -> (
    let src = String.sub s 0 i
    and dst = String.sub s (i + 2) (String.length s - i - 2) in
    match (int_of_string_opt src, int_of_string_opt dst) with
    | Some a, Some b -> Some (a, b)
    | _ -> None)
  | _ -> None

let parse_prob s =
  if String.length s > 2 && String.sub s 0 2 = "p=" then
    float_of_string_opt (String.sub s 2 (String.length s - 2))
  else None

let parse_action tokens =
  let int_tok s = int_of_string_opt s in
  match tokens with
  | [ "crash"; n ] ->
    Option.map (fun n -> Crash_node n) (int_tok n)
  | [ "restart"; n ] ->
    Option.map (fun n -> Restart_node { node = n; rebuild = false }) (int_tok n)
  | [ "restart"; n; "rebuild" ] ->
    Option.map (fun n -> Restart_node { node = n; rebuild = true }) (int_tok n)
  | [ "fail-disk"; n ] -> Option.map (fun n -> Fail_disk n) (int_tok n)
  | [ "heal-disk"; n ] -> Option.map (fun n -> Heal_disk n) (int_tok n)
  | [ "partition"; s ] -> Option.map (fun s -> Partition_segment s) (int_tok s)
  | [ "heal"; s ] -> Option.map (fun s -> Heal_segment s) (int_tok s)
  | [ "drop"; link; p ] -> (
    match (parse_link link, parse_prob p) with
    | Some (src, dst), Some p -> Some (Break_link { src; dst; kind = Drop; p })
    | _ -> None)
  | [ "dup"; link; p ] -> (
    match (parse_link link, parse_prob p) with
    | Some (src, dst), Some p ->
      Some (Break_link { src; dst; kind = Duplicate; p })
    | _ -> None)
  | [ "delay"; link; d; p ] -> (
    match (parse_link link, parse_time d, parse_prob p) with
    | Some (src, dst), Some d, Some p ->
      Some (Break_link { src; dst; kind = Delay d; p })
    | _ -> None)
  | [ "heal-link"; link ] ->
    Option.map (fun (src, dst) -> Heal_link { src; dst }) (parse_link link)
  | [ "slow"; n; d ] -> (
    match (int_tok n, parse_time d) with
    | Some node, Some by -> Some (Slow_node { node; by })
    | _ -> None)
  | [ "heal-slow"; n ] -> Option.map (fun n -> Heal_slow n) (int_tok n)
  | [ "join"; n ] -> Option.map (fun n -> Join_node n) (int_tok n)
  | [ "decommission"; n ] ->
    Option.map (fun n -> Decommission_node n) (int_tok n)
  | _ -> None

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun s -> s <> "")

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (make (List.rev acc))
    | line :: rest -> (
      match tokens_of (strip_comment line) with
      | [] -> go (lineno + 1) acc rest
      | "at" :: time :: action_tokens -> (
        match (parse_time time, parse_action action_tokens) with
        | Some at, Some action ->
          go (lineno + 1) ({ at; action } :: acc) rest
        | None, _ ->
          Error (Printf.sprintf "line %d: bad time %S" lineno time)
        | _, None ->
          Error
            (Printf.sprintf "line %d: bad action %S" lineno
               (String.concat " " action_tokens)))
      | _ -> Error (Printf.sprintf "line %d: expected 'at TIME ACTION'" lineno))
  in
  go 1 [] lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate t ~nodes ~segments =
  let check_node n what =
    if n < 0 || n >= nodes then
      Error (Printf.sprintf "%s %d out of range (nodes = %d)" what n nodes)
    else Ok ()
  in
  let check_seg s =
    if s < 0 || s >= segments then
      Error
        (Printf.sprintf "segment %d out of range (segments = %d)" s segments)
    else Ok ()
  in
  let check_prob p =
    if p < 0.0 || p > 1.0 || Float.is_nan p then
      Error (Printf.sprintf "probability %g out of [0,1]" p)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc ev ->
      let* () = acc in
      match ev.action with
      | Crash_node n | Restart_node { node = n; _ } -> check_node n "node"
      | Fail_disk n | Heal_disk n -> check_node n "node"
      | Partition_segment s | Heal_segment s -> check_seg s
      | Break_link { src; dst; p; _ } ->
        let* () = check_node src "link src" in
        let* () = check_node dst "link dst" in
        let* () = check_prob p in
        if src = dst then Error (Printf.sprintf "link %d->%d is a self-loop" src dst)
        else Ok ()
      | Heal_link { src; dst } ->
        let* () = check_node src "link src" in
        check_node dst "link dst"
      | Slow_node { node; by } ->
        let* () = check_node node "node" in
        if Time.to_ns by <= 0 then
          Error (Printf.sprintf "slow %d: delay must be positive" node)
        else Ok ()
      | Heal_slow n -> check_node n "node"
      | Join_node n | Decommission_node n -> check_node n "node")
    (Ok ()) t

(* ------------------------------------------------------------------ *)
(* Random plans *)

(* Times are drawn on a millisecond grid so plans print exactly. *)
let rand_time rng ~lo ~hi =
  let lo_ms = Time.to_ns lo / 1_000_000 and hi_ms = Time.to_ns hi / 1_000_000 in
  Time.ms (Splitmix.int_in rng lo_ms (max lo_ms hi_ms))

let frac t x = Time.mul_float t x

let random ~seed ~nodes ~segments ~horizon =
  if nodes < 2 then invalid_arg "Plan.random: need at least two nodes";
  let rng = Splitmix.create seed in
  let pick_node () = Splitmix.int_in rng 1 (nodes - 1) in
  let evs = ref [] in
  let push at action = evs := { at; action } :: !evs in
  (* One or two crash/restart windows on distinct victims. *)
  let n_crashes = 1 + Splitmix.int rng (min 2 (nodes - 1)) in
  let victims = Array.init (nodes - 1) (fun i -> i + 1) in
  Splitmix.shuffle rng victims;
  for i = 0 to n_crashes - 1 do
    let v = victims.(i) in
    let down = rand_time rng ~lo:(frac horizon 0.10) ~hi:(frac horizon 0.35) in
    let up =
      rand_time rng
        ~lo:(Time.add down (frac horizon 0.15))
        ~hi:(frac horizon 0.70)
    in
    push down (Crash_node v);
    push up (Restart_node { node = v; rebuild = true })
  done;
  (* Sometimes a disk-failure window on a (possibly crashed) victim. *)
  if Splitmix.coin rng 0.5 then begin
    let v = pick_node () in
    let fail = rand_time rng ~lo:(frac horizon 0.10) ~hi:(frac horizon 0.40) in
    let heal =
      rand_time rng
        ~lo:(Time.add fail (frac horizon 0.10))
        ~hi:(frac horizon 0.75)
    in
    push fail (Fail_disk v);
    push heal (Heal_disk v)
  end;
  (* A partition window on a non-driver segment, when there is one. *)
  if segments > 1 && Splitmix.coin rng 0.6 then begin
    let s = Splitmix.int_in rng 1 (segments - 1) in
    let cut = rand_time rng ~lo:(frac horizon 0.15) ~hi:(frac horizon 0.40) in
    let heal =
      rand_time rng
        ~lo:(Time.add cut (frac horizon 0.10))
        ~hi:(frac horizon 0.70)
    in
    push cut (Partition_segment s);
    push heal (Heal_segment s)
  end;
  (* Sometimes a slow-node window: a straggler, not an absence — the
     degradation pattern speculative cloning and hedging defend
     against. *)
  if Splitmix.coin rng 0.5 then begin
    let v = pick_node () in
    let by = Time.ms (1 + Splitmix.int rng 8) in
    let from =
      rand_time rng ~lo:(frac horizon 0.10) ~hi:(frac horizon 0.45)
    in
    let heal =
      rand_time rng
        ~lo:(Time.add from (frac horizon 0.10))
        ~hi:(frac horizon 0.80)
    in
    push from (Slow_node { node = v; by });
    push heal (Heal_slow v)
  end;
  (* A few lossy-link windows. *)
  let n_links = Splitmix.int rng 3 in
  for _ = 1 to n_links do
    let src = Splitmix.int rng nodes in
    let dst = pick_node () in
    if src <> dst then begin
      let kind =
        match Splitmix.int rng 3 with
        | 0 -> Drop
        | 1 -> Duplicate
        | _ -> Delay (Time.ms (1 + Splitmix.int rng 5))
      in
      let p = 0.1 +. Splitmix.float rng 0.4 in
      let break =
        rand_time rng ~lo:(frac horizon 0.05) ~hi:(frac horizon 0.50)
      in
      let heal =
        rand_time rng
          ~lo:(Time.add break (frac horizon 0.10))
          ~hi:(frac horizon 0.80)
      in
      push break (Break_link { src; dst; kind; p });
      push heal (Heal_link { src; dst })
    end
  done;
  make (List.rev !evs)
