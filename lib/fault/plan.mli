(** Fault plans: timed, seeded fault schedules.

    A plan is a list of events on the virtual clock — crash or restart
    a node, fail or restore a checkpoint store, cut or heal an Ethernet
    segment, degrade a point-to-point link.  Plans are pure data:
    nothing happens until a {!Controller} arms one against a cluster.

    Determinism: a plan mentions only virtual times and seeded
    probabilities, so the same (plan, cluster seed) pair always
    produces the same run.

    {2 Text format}

    One event per line, [#] starts a comment, blank lines ignored:

    {v
    at 100ms  crash 1
    at 600ms  restart 1 rebuild
    at 150ms  fail-disk 2
    at 450ms  heal-disk 2
    at 200ms  partition 1
    at 400ms  heal 1
    at 50ms   drop 0->2 p=0.5
    at 60ms   dup 0->2 p=0.25
    at 70ms   delay 0->2 2ms p=1
    at 300ms  heal-link 0->2
    at 100ms  slow 3 5ms
    at 500ms  heal-slow 3
    at 250ms  join 5
    at 800ms  decommission 2
    v}

    Times accept [ns]/[us]/[ms]/[s] suffixes.  Link faults are
    directional ([src->dst] global node addresses) and apply to each
    message on the link independently with probability [p]. *)

type link_kind =
  | Drop
  | Duplicate
  | Delay of Eden_util.Time.t

type action =
  | Crash_node of int
  | Restart_node of { node : int; rebuild : bool }
  | Fail_disk of int
  | Heal_disk of int
  | Partition_segment of int
  | Heal_segment of int
  | Break_link of { src : int; dst : int; kind : link_kind; p : float }
  | Heal_link of { src : int; dst : int }
  | Slow_node of { node : int; by : Eden_util.Time.t }
      (** degrade the node without killing it: every unicast it sends
          or receives is held back by [by].  Creates latency tails —
          the degradation chaos plans need for hedging and cloning to
          bite — where [Crash_node] only creates absence. *)
  | Heal_slow of int
  | Join_node of int
      (** admit a powered non-member (a spare) into the membership via
          {!Eden_kernel.Cluster.join_node} — reconfiguration as a
          plannable event, so joins land under whatever chaos the rest
          of the plan is injecting *)
  | Decommission_node of int
      (** drain and retire a member via
          {!Eden_kernel.Cluster.decommission_node}: evacuate its
          objects, bump the epoch, power it off.  Blocking for the
          controller's daemon process, not for the cluster — traffic
          flows throughout. *)

type event = { at : Eden_util.Time.t; action : action }

type t
(** An event schedule, sorted by time (ties keep make/parse order). *)

val empty : t

val make : event list -> t
(** Sort the events by [at] (stable). *)

val events : t -> event list

val to_string : t -> string
(** Render in the text format; [of_string (to_string p)] is [p]. *)

val of_string : string -> (t, string) result
(** Parse the text format; the error names the offending line. *)

val of_file : string -> (t, string) result

val validate : t -> nodes:int -> segments:int -> (unit, string) result
(** Check every node / segment index is in range, every probability is
    in [\[0,1\]], and no link is a self-loop. *)

val random :
  seed:int64 -> nodes:int -> segments:int -> horizon:Eden_util.Time.t -> t
(** A reproducible random plan for chaos runs: some node crash/restart
    pairs, possibly a disk-failure window and (given several segments)
    a partition window, plus a few lossy-link windows.  Node 0 is
    spared (it drives the workload), and every fault heals before
    [horizon] so recovery can be asserted at the end of the run.
    Requires [nodes >= 2]. *)
