(** A CSMA/CD local area network.

    The model follows the classic Ethernet MAC: a station with a frame
    senses the medium; transmissions that begin within one contention
    slot of each other collide, after which each collider waits a
    random number of slots drawn from a truncated binary exponential
    backoff window and tries again.  A frame is dropped after
    [max_attempts] failures.

    Each attached station owns an unbounded transmit queue drained by a
    background transmitter process, so {!send} never blocks the caller.
    Delivery invokes the receiver callback registered with
    {!on_receive} one propagation delay after the frame leaves the
    wire; the callback must not block (hand the frame to a mailbox for
    real work).

    Payloads are an arbitrary type ['a]; only [bytes] participates in
    the timing model. *)

type 'a t
type 'a station

type dest = Unicast of int | Broadcast

type 'a frame = {
  src : int;  (** address of the sending station *)
  dest : dest;
  bytes : int;  (** payload size used for the timing model *)
  payload : 'a;
  sent_at : Eden_util.Time.t;  (** when {!send} accepted the frame *)
}

val create : ?params:Params.t -> Eden_sim.Engine.t -> 'a t
(** Raises [Invalid_argument] if [params] fails {!Params.validate}. *)

val params : 'a t -> Params.t
val engine : 'a t -> Eden_sim.Engine.t

val attach : 'a t -> name:string -> 'a station
(** Join a new station to the cable.  Addresses are assigned densely
    from 0 in attachment order. *)

val address : 'a station -> int
val station_name : 'a station -> string
val station_count : 'a t -> int

val on_receive : 'a station -> ('a frame -> unit) -> unit
(** Replaces any previous callback.  Frames arriving with no callback
    registered are counted as delivered and discarded. *)

val send : 'a station -> dest:dest -> bytes:int -> 'a -> unit
(** Queue a frame for transmission.  [bytes] must lie within the frame
    limits of the LAN's {!Params.t}; large messages must be fragmented
    by the caller (the kernel's message layer does this).  Raises
    [Invalid_argument] on an out-of-range size or on sending to self. *)

(** {2 Counters}  All counters are cumulative since creation. *)

type counters = {
  frames_sent : int;  (** accepted by {!send} *)
  frames_broadcast : int;  (** subset of [frames_sent] with [dest = Broadcast] *)
  frames_delivered : int;
  frames_dropped : int;  (** exceeded [max_attempts] *)
  payload_bytes_delivered : int;
  collision_events : int;  (** collisions on the medium *)
  backoffs : int;  (** individual station back-offs *)
}

val counters : 'a t -> counters

val busy_time : 'a t -> Eden_util.Time.t
(** Total time the medium carried a successful transmission (excludes
    jams), for utilisation computations. *)

val utilisation : 'a t -> over:Eden_util.Time.t -> float

val latency_stats : 'a t -> Eden_util.Stats.t
(** Per-frame delay from {!send} to delivery, in seconds. *)

val set_trace : 'a t -> Eden_sim.Trace.t -> unit
(** Emit [Net] trace records for sends, collisions and drops. *)
