(** An internetwork of bridged Ethernet segments.

    Figure 1 of the paper shows the Eden Ethernet reaching "other
    networks" through a gateway.  This module generalises {!Msglink} to
    several CSMA/CD segments joined by a store-and-forward bridge:
    endpoints get {e global} addresses, same-segment traffic behaves
    exactly as on a single {!Lan}, and cross-segment messages traverse
    the bridge, paying both segments' MAC contention plus the bridge's
    forwarding latency.

    With [segments = 1] this is equivalent to a single {!Msglink} LAN
    (no bridge is created), so it is safe to use as the only transport
    substrate. *)

type 'a t
type 'a endpoint

val create :
  ?params:Params.t ->
  ?bridge_latency:Eden_util.Time.t ->
  Eden_sim.Engine.t ->
  segments:int ->
  size:('a -> int) ->
  'a t
(** [segments] must be >= 1.  [bridge_latency] (default 500us) is the
    store-and-forward delay per bridged hop. *)

val segment_count : 'a t -> int

val attach : 'a t -> segment:int -> name:string -> 'a endpoint
(** Global addresses are assigned densely in attachment order across
    all segments. *)

val address : 'a endpoint -> int
val segment_of_endpoint : 'a endpoint -> int

val segment_of_address : 'a t -> int -> int
(** Raises [Invalid_argument] for unknown addresses. *)

val on_message : 'a endpoint -> (src:int -> 'a -> unit) -> unit
val send : 'a endpoint -> dst:int -> 'a -> unit
(** Raises [Invalid_argument] on self-send or unknown destination. *)

val broadcast : 'a endpoint -> 'a -> unit
(** Delivered to every endpoint on every segment (except the sender);
    the bridge re-emits on remote segments. *)

val set_up : 'a endpoint -> bool -> unit
val is_up : 'a endpoint -> bool

val frames_delivered : 'a t -> int
(** LAN frames delivered, summed over all segments (bridged traffic
    counts on each segment it crosses). *)

val bridge_forwards : 'a t -> int
(** Messages the bridge carried between segments. *)

val segment_counters : 'a t -> Lan.counters array
(** Per-segment MAC counters, indexed by segment. *)
