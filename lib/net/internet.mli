(** An internetwork of bridged Ethernet segments.

    Figure 1 of the paper shows the Eden Ethernet reaching "other
    networks" through a gateway.  This module generalises {!Msglink} to
    several CSMA/CD segments joined by a store-and-forward bridge:
    endpoints get {e global} addresses, same-segment traffic behaves
    exactly as on a single {!Lan}, and cross-segment messages traverse
    the bridge, paying both segments' MAC contention plus the bridge's
    forwarding latency.

    With [segments = 1] this is equivalent to a single {!Msglink} LAN
    (no bridge is created), so it is safe to use as the only transport
    substrate. *)

type 'a t
type 'a endpoint

type coalesce = {
  co_max_bytes : int;  (** flush when queued payload bytes reach this *)
  co_max_msgs : int;  (** flush when this many messages are queued *)
  co_max_delay : Eden_util.Time.t;
      (** flush this long after the first message entered the queue *)
}
(** Budgets for unicast message coalescing.  Each endpoint keeps one
    send queue per destination; small messages accumulate there and
    leave as a single wire transfer when any budget is exhausted, when
    a {!broadcast} acts as a barrier, or on an explicit {!flush}.
    Messages of [co_max_bytes] or more bypass the queue (after
    flushing it, so per-destination FIFO order is preserved). *)

val default_coalesce : coalesce
(** 1024 bytes / 8 messages / 300us. *)

val create :
  ?params:Params.t ->
  ?bridge_latency:Eden_util.Time.t ->
  ?coalesce:coalesce ->
  Eden_sim.Engine.t ->
  segments:int ->
  size:('a -> int) ->
  'a t
(** [segments] must be >= 1.  [bridge_latency] (default 500us) is the
    store-and-forward delay per bridged hop.  Omitting [coalesce]
    (the default) sends every unicast as its own wire transfer. *)

val segment_count : 'a t -> int

val attach : 'a t -> segment:int -> name:string -> 'a endpoint
(** Global addresses are assigned densely in attachment order across
    all segments. *)

val address : 'a endpoint -> int
val segment_of_endpoint : 'a endpoint -> int

val segment_of_address : 'a t -> int -> int
(** Raises [Invalid_argument] for unknown addresses. *)

val on_message : 'a endpoint -> (src:int -> 'a -> unit) -> unit

val send : 'a endpoint -> dst:int -> 'a -> unit
(** Raises [Invalid_argument] on an unknown destination.  Sending to
    oneself loopback-delivers on the next engine step without touching
    the wire (no MAC contention, no frame counters). *)

val send_now : 'a endpoint -> dst:int -> 'a -> unit
(** Like {!send} but urgent: the message never enters the coalescing
    queue.  Anything already queued for [dst] is flushed first (so
    per-destination FIFO order is preserved), then the payload travels
    as its own wire transfer.  Built for retractions — a cancel must
    not be batched behind the very work it cancels.  Loopback and
    fault-injection behaviour match {!send}.  Raises
    [Invalid_argument] on an unknown destination. *)

val broadcast : 'a endpoint -> 'a -> unit
(** Delivered to every endpoint on every segment (except the sender);
    the bridge re-emits on remote segments.  A broadcast is a
    coalescing barrier: the sender's queues are flushed first so
    queued unicasts cannot overtake it. *)

val flush : 'a endpoint -> unit
(** Flush every per-destination coalescing queue of this endpoint
    immediately (in ascending destination order).  A no-op when
    coalescing is disabled or nothing is queued. *)

val set_up : 'a endpoint -> bool -> unit
val is_up : 'a endpoint -> bool

val queued_messages : 'a endpoint -> int
(** Messages currently parked in this endpoint's per-destination
    coalescing queues (zero when coalescing is off) — a depth gauge
    for the health plane. *)

val reassembly_pending : 'a endpoint -> int
(** Partially received messages in the endpoint's link-layer
    reassembly table. *)

val frames_delivered : 'a t -> int
(** LAN frames delivered, summed over all segments (bridged traffic
    counts on each segment it crosses). *)

val bridge_forwards : 'a t -> int
(** Messages the bridge carried between segments. *)

val bridge_drops : 'a t -> int
(** Envelopes the bridge discarded because a partition cut the path,
    counted whether the partition was up when the frame arrived or
    raised while it sat in the store-and-forward queue. *)

val coalesced_batches : 'a t -> int
(** Wire transfers that carried two or more coalesced messages. *)

val coalesced_messages : 'a t -> int
(** Messages that travelled inside those batched transfers. *)

val segment_counters : 'a t -> Lan.counters array
(** Per-segment MAC counters, indexed by segment. *)

(** {2 Fault injection}

    Hooks for a deterministic chaos layer.  Both are pure simulation
    state: they consume no wire bandwidth and perturb nothing unless
    armed. *)

val set_partitioned : 'a t -> int -> bool -> unit
(** [set_partitioned net seg cut] detaches segment [seg] from the
    bridge ([cut = true]) or heals it.  While cut, cross-segment
    traffic from or to [seg] is dropped at the bridge — including
    frames already queued for forwarding — and counted in
    {!bridge_drops}.  Same-segment traffic is unaffected.  Raises
    [Invalid_argument] for an unknown segment. *)

val partitioned : 'a t -> int -> bool

type fault =
  | Pass  (** transmit normally *)
  | Drop  (** silently discard *)
  | Duplicate  (** transmit twice *)
  | Delay of Eden_util.Time.t  (** hold back, then transmit *)

val set_fault_injector :
  'a t -> (src:int -> dst:int option -> fault) option -> unit
(** [set_fault_injector net (Some f)] consults [f] on every unicast
    wire transfer ([dst = Some g]) and {!broadcast} ([dst = None])
    before the message touches the wire.  [None] removes the hook.
    With coalescing enabled the injector is consulted {e once per
    batch}: a [Drop] verdict loses every coalesced member, [Delay]
    and [Duplicate] act on the whole transfer.  The injector must be
    deterministic given the virtual clock (seeded PRNG only) to keep
    runs reproducible. *)

(** {2 Wire event hook}

    Observability taps for things only this layer can see: injector
    verdicts that actually perturbed a transfer, and coalesced batches
    leaving a send queue.  [msgs] is the number of messages in the
    affected transfer; [dst = None] means broadcast. *)

type event =
  | Ev_drop of { src : int; dst : int option; msgs : int }
  | Ev_duplicate of { src : int; dst : int option; msgs : int }
  | Ev_delay of { src : int; dst : int option; msgs : int; by : Eden_util.Time.t }
  | Ev_coalesce of { src : int; dst : int; msgs : int }

val set_event_hook : 'a t -> (event -> unit) option -> unit
(** At most one hook; [None] removes it.  Called synchronously at the
    decision point, before any transmission it describes. *)

(** {2 Per-payload wire hook}

    The critical-path profiler needs to know {e which} payloads a
    coalescing hold or an injected delay affected — each payload
    carries its own trace context — so a second, parametric hook
    reports the payload lists.  Strictly opt-in: unset, the only cost
    is one [None] test per flush and per injector verdict. *)

type 'a wire_event =
  | Wv_depart of { src : int; dst : int; msgs : int; items : 'a list }
      (** a batch left a per-destination coalescing queue; reported
          for {e every} flush, even of a single message (that message
          spent the delay budget queued) *)
  | Wv_hold of { src : int; dst : int option; by : Eden_util.Time.t; items : 'a list }
      (** a [Delay] verdict held [items] at the sender for [by]
          before transmitting; [dst = None] means broadcast *)

val set_wire_hook : 'a t -> ('a wire_event -> unit) option -> unit
(** At most one hook; [None] removes it.  Called synchronously at the
    flush or verdict point, before the transmission it describes. *)
