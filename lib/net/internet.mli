(** An internetwork of bridged Ethernet segments.

    Figure 1 of the paper shows the Eden Ethernet reaching "other
    networks" through a gateway.  This module generalises {!Msglink} to
    several CSMA/CD segments joined by a store-and-forward bridge:
    endpoints get {e global} addresses, same-segment traffic behaves
    exactly as on a single {!Lan}, and cross-segment messages traverse
    the bridge, paying both segments' MAC contention plus the bridge's
    forwarding latency.

    With [segments = 1] this is equivalent to a single {!Msglink} LAN
    (no bridge is created), so it is safe to use as the only transport
    substrate. *)

type 'a t
type 'a endpoint

val create :
  ?params:Params.t ->
  ?bridge_latency:Eden_util.Time.t ->
  Eden_sim.Engine.t ->
  segments:int ->
  size:('a -> int) ->
  'a t
(** [segments] must be >= 1.  [bridge_latency] (default 500us) is the
    store-and-forward delay per bridged hop. *)

val segment_count : 'a t -> int

val attach : 'a t -> segment:int -> name:string -> 'a endpoint
(** Global addresses are assigned densely in attachment order across
    all segments. *)

val address : 'a endpoint -> int
val segment_of_endpoint : 'a endpoint -> int

val segment_of_address : 'a t -> int -> int
(** Raises [Invalid_argument] for unknown addresses. *)

val on_message : 'a endpoint -> (src:int -> 'a -> unit) -> unit

val send : 'a endpoint -> dst:int -> 'a -> unit
(** Raises [Invalid_argument] on an unknown destination.  Sending to
    oneself loopback-delivers on the next engine step without touching
    the wire (no MAC contention, no frame counters). *)

val broadcast : 'a endpoint -> 'a -> unit
(** Delivered to every endpoint on every segment (except the sender);
    the bridge re-emits on remote segments. *)

val set_up : 'a endpoint -> bool -> unit
val is_up : 'a endpoint -> bool

val frames_delivered : 'a t -> int
(** LAN frames delivered, summed over all segments (bridged traffic
    counts on each segment it crosses). *)

val bridge_forwards : 'a t -> int
(** Messages the bridge carried between segments. *)

val bridge_drops : 'a t -> int
(** Envelopes the bridge discarded because a partition cut the path,
    counted whether the partition was up when the frame arrived or
    raised while it sat in the store-and-forward queue. *)

val segment_counters : 'a t -> Lan.counters array
(** Per-segment MAC counters, indexed by segment. *)

(** {2 Fault injection}

    Hooks for a deterministic chaos layer.  Both are pure simulation
    state: they consume no wire bandwidth and perturb nothing unless
    armed. *)

val set_partitioned : 'a t -> int -> bool -> unit
(** [set_partitioned net seg cut] detaches segment [seg] from the
    bridge ([cut = true]) or heals it.  While cut, cross-segment
    traffic from or to [seg] is dropped at the bridge — including
    frames already queued for forwarding — and counted in
    {!bridge_drops}.  Same-segment traffic is unaffected.  Raises
    [Invalid_argument] for an unknown segment. *)

val partitioned : 'a t -> int -> bool

type fault =
  | Pass  (** transmit normally *)
  | Drop  (** silently discard *)
  | Duplicate  (** transmit twice *)
  | Delay of Eden_util.Time.t  (** hold back, then transmit *)

val set_fault_injector :
  'a t -> (src:int -> dst:int option -> fault) option -> unit
(** [set_fault_injector net (Some f)] consults [f] on every {!send}
    ([dst = Some g]) and {!broadcast} ([dst = None]) before the message
    touches the wire.  [None] removes the hook.  The injector must be
    deterministic given the virtual clock (seeded PRNG only) to keep
    runs reproducible. *)
