(* A message of size S travels as ceil(S / max_frame) fragments; only
   the last fragment carries the message value, the earlier ones model
   the wire time of their chunk.  The receiver counts fragments per
   (src, msg_id) and delivers on a complete final fragment. *)
type 'm packet = {
  pk_msg_id : int;
  pk_total : int;
  pk_content : 'm option;  (* Some on the final fragment *)
}

type 'm lan = 'm packet Lan.t

let create_lan ?params eng = Lan.create ?params eng

type key = { k_src : int; k_msg : int }

type 'm t = {
  station : 'm packet Lan.station;
  the_lan : 'm lan;
  size : 'm -> int;
  mutable up : bool;
  mutable handler : (src:int -> 'm -> unit) option;
  partial : (key, int) Hashtbl.t;
  msg_ids : Eden_util.Idgen.t;
  mutable sent : int;
  mutable received : int;
  mutable discarded : int;
}

let max_chunk lan = (Lan.params lan).Params.max_frame_bytes

let deliver tp frame =
  let p = frame.Lan.payload in
  if not tp.up then tp.discarded <- tp.discarded + 1
  else begin
    let key = { k_src = frame.Lan.src; k_msg = p.pk_msg_id } in
    let seen = Option.value ~default:0 (Hashtbl.find_opt tp.partial key) in
    match p.pk_content with
    | None -> Hashtbl.replace tp.partial key (seen + 1)
    | Some msg ->
      Hashtbl.remove tp.partial key;
      if seen = p.pk_total - 1 then begin
        tp.received <- tp.received + 1;
        match tp.handler with
        | Some f -> f ~src:frame.Lan.src msg
        | None -> ()
      end
      else tp.discarded <- tp.discarded + seen + 1
  end

let attach lan ~name ~size =
  let station = Lan.attach lan ~name in
  let tp =
    {
      station;
      the_lan = lan;
      size;
      up = true;
      handler = None;
      partial = Hashtbl.create 16;
      msg_ids = Eden_util.Idgen.create ();
      sent = 0;
      received = 0;
      discarded = 0;
    }
  in
  Lan.on_receive station (fun frame -> deliver tp frame);
  tp

let address tp = Lan.address tp.station
let on_message tp f = tp.handler <- Some f
let set_up tp up = tp.up <- up
let is_up tp = tp.up

let transmit tp ~dest msg =
  if tp.up then begin
    let size = tp.size msg in
    let chunk = max_chunk tp.the_lan in
    let total = Stdlib.max 1 ((size + chunk - 1) / chunk) in
    let msg_id = Eden_util.Idgen.next tp.msg_ids in
    tp.sent <- tp.sent + 1;
    for i = 0 to total - 1 do
      let is_last = i = total - 1 in
      let bytes = if is_last then size - ((total - 1) * chunk) else chunk in
      let payload =
        {
          pk_msg_id = msg_id;
          pk_total = total;
          pk_content = (if is_last then Some msg else None);
        }
      in
      Lan.send tp.station ~dest ~bytes payload
    done
  end

let send tp ~dst msg =
  if dst = address tp then invalid_arg "Msglink.send: destination is self";
  transmit tp ~dest:(Lan.Unicast dst) msg

let broadcast tp msg = transmit tp ~dest:Lan.Broadcast msg
let messages_sent tp = tp.sent
let messages_received tp = tp.received
let fragments_discarded tp = tp.discarded
let reassembly_pending tp = Hashtbl.length tp.partial
