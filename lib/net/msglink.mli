(** Best-effort message transport over a {!Lan}.

    Splits arbitrary-size messages into frame-sized fragments and
    reassembles them at the receiver.  If the MAC layer drops any
    fragment the whole message is silently lost — recovery belongs to
    the request layer above (timeouts).

    Polymorphic in the message type: the caller supplies the
    marshalled-size function at {!attach}. *)

type 'm packet
type 'm lan = 'm packet Lan.t

val create_lan : ?params:Params.t -> Eden_sim.Engine.t -> 'm lan

type 'm t

val attach : 'm lan -> name:string -> size:('m -> int) -> 'm t
val address : 'm t -> int

val on_message : 'm t -> (src:int -> 'm -> unit) -> unit
(** The callback must not block. *)

val send : 'm t -> dst:int -> 'm -> unit
(** Raises [Invalid_argument] when sending to self. *)

val broadcast : 'm t -> 'm -> unit

val set_up : 'm t -> bool -> unit
(** A downed endpoint neither sends nor delivers. *)

val is_up : 'm t -> bool
val messages_sent : 'm t -> int
val messages_received : 'm t -> int

val fragments_discarded : 'm t -> int
(** Fragments belonging to messages that can never complete. *)

val reassembly_pending : 'm t -> int
(** Partially received messages currently held in the reassembly
    table (a depth gauge for the health plane). *)
