open Eden_util
open Eden_sim

type dest = Unicast of int | Broadcast

type 'a frame = {
  src : int;
  dest : dest;
  bytes : int;
  payload : 'a;
  sent_at : Time.t;
}

type medium_state = Idle | Contending | Busy

type counters = {
  frames_sent : int;
  frames_broadcast : int;
  frames_delivered : int;
  frames_dropped : int;
  payload_bytes_delivered : int;
  collision_events : int;
  backoffs : int;
}

type 'a station = {
  st_lan : 'a t;
  st_addr : int;
  st_name : string;
  st_tx : 'a frame Mailbox.t;
  mutable st_receive : ('a frame -> unit) option;
}

and 'a contender = { c_addr : int; mutable c_won : bool; c_h : Engine.handle }

and 'a t = {
  eng : Engine.t;
  prm : Params.t;
  rng : Splitmix.t;
  mutable stations : 'a station array;
  idle_cond : Condition.t;
  mutable state : medium_state;
  mutable window : 'a contender list;  (** contenders in the open window *)
  mutable busy : Time.t;
  mutable c_sent : int;
  mutable c_broadcast : int;
  mutable c_delivered : int;
  mutable c_dropped : int;
  mutable c_bytes : int;
  mutable c_collisions : int;
  mutable c_backoffs : int;
  latencies : Stats.t;
  mutable trace : Trace.t option;
}

let create ?(params = Params.default) eng =
  Params.validate params;
  {
    eng;
    prm = params;
    rng = Engine.fork_rng eng;
    stations = [||];
    idle_cond = Condition.create eng;
    state = Idle;
    window = [];
    busy = Time.zero;
    c_sent = 0;
    c_broadcast = 0;
    c_delivered = 0;
    c_dropped = 0;
    c_bytes = 0;
    c_collisions = 0;
    c_backoffs = 0;
    latencies = Stats.create ();
    trace = None;
  }

let params lan = lan.prm
let engine lan = lan.eng
let address st = st.st_addr
let station_name st = st.st_name
let station_count lan = Array.length lan.stations
let on_receive st f = st.st_receive <- Some f
let set_trace lan tr = lan.trace <- Some tr

let tracef lan fmt =
  match lan.trace with
  | Some tr -> Trace.emitf tr (Engine.now lan.eng) Trace.Net fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let deliver lan frame addr =
  let st = lan.stations.(addr) in
  lan.c_delivered <- lan.c_delivered + 1;
  lan.c_bytes <- lan.c_bytes + frame.bytes;
  Stats.add_time lan.latencies (Time.diff (Engine.now lan.eng) frame.sent_at);
  match st.st_receive with None -> () | Some f -> f frame

let schedule_delivery lan frame =
  Engine.schedule lan.eng ~after:lan.prm.prop_delay (fun () ->
      match frame.dest with
      | Unicast a -> deliver lan frame a
      | Broadcast ->
        Array.iter
          (fun st -> if st.st_addr <> frame.src then deliver lan frame st.st_addr)
          lan.stations)

(* The window-close event: decide who owns the medium. *)
let close_window lan =
  let contenders = lan.window in
  lan.window <- [];
  match contenders with
  | [] ->
    (* All contenders were killed before the window closed. *)
    lan.state <- Idle;
    Condition.broadcast lan.idle_cond
  | [ c ] ->
    c.c_won <- true;
    lan.state <- Busy;
    Engine.wake lan.eng c.c_h
  | several ->
    lan.c_collisions <- lan.c_collisions + 1;
    tracef lan "collision among %d stations" (List.length several);
    lan.state <- Busy;
    Engine.schedule lan.eng ~after:lan.prm.jam (fun () ->
        lan.state <- Idle;
        Condition.broadcast lan.idle_cond);
    List.iter (fun c -> Engine.wake lan.eng c.c_h) several

(* The MAC protocol, run by a station's transmitter process for one
   frame.  Returns [true] on successful transmission. *)
let rec mac_transmit lan st frame ~attempt =
  (* Carrier sense. *)
  (match lan.state with
  | Busy ->
    ignore (Condition.await lan.idle_cond);
    ()
  | Idle | Contending -> ());
  match lan.state with
  | Busy -> mac_transmit lan st frame ~attempt (* lost the race; sense again *)
  | Idle | Contending ->
    if lan.state = Idle then begin
      lan.state <- Contending;
      Engine.schedule lan.eng ~after:lan.prm.slot (fun () -> close_window lan)
    end;
    let cell = ref None in
    (match
       Engine.suspend (fun h ->
           let c = { c_addr = st.st_addr; c_won = false; c_h = h } in
           cell := Some c;
           lan.window <- lan.window @ [ c ])
     with
    | Engine.Timed_out -> assert false (* no timeout was requested *)
    | Engine.Woken -> ());
    let won = match !cell with Some c -> c.c_won | None -> false in
    if won then begin
      (* The contention slot already elapsed; occupy the medium for the
         remainder of the frame, then release it and deliver. *)
      let ft = Params.frame_time lan.prm ~payload_bytes:frame.bytes in
      let remainder =
        if Time.(ft > lan.prm.slot) then Time.diff ft lan.prm.slot
        else Time.zero
      in
      Engine.delay remainder;
      lan.busy <- Time.add lan.busy ft;
      lan.state <- Idle;
      Condition.broadcast lan.idle_cond;
      schedule_delivery lan frame;
      true
    end
    else if attempt >= lan.prm.max_attempts then begin
      lan.c_dropped <- lan.c_dropped + 1;
      tracef lan "station %d dropped frame after %d attempts" st.st_addr
        attempt;
      false
    end
    else begin
      lan.c_backoffs <- lan.c_backoffs + 1;
      let exponent = Stdlib.min attempt lan.prm.backoff_limit in
      let window_slots = (1 lsl exponent) - 1 in
      let k = if window_slots = 0 then 0 else Splitmix.int lan.rng (window_slots + 1) in
      Engine.delay (Time.scale lan.prm.slot k);
      mac_transmit lan st frame ~attempt:(attempt + 1)
    end

let transmitter_loop lan st () =
  let rec loop () =
    match Mailbox.recv st.st_tx with
    | None -> loop () (* no timeout requested; cannot happen *)
    | Some frame ->
      ignore (mac_transmit lan st frame ~attempt:1);
      loop ()
  in
  loop ()

let attach lan ~name =
  let addr = Array.length lan.stations in
  let st =
    {
      st_lan = lan;
      st_addr = addr;
      st_name = name;
      st_tx = Mailbox.create lan.eng;
      st_receive = None;
    }
  in
  lan.stations <- Array.append lan.stations [| st |];
  let pid =
    Engine.spawn lan.eng ~name:(Printf.sprintf "tx:%s" name)
      (transmitter_loop lan st)
  in
  Engine.set_daemon lan.eng pid;
  st

let send st ~dest ~bytes payload =
  let lan = st.st_lan in
  if bytes < 0 || bytes > lan.prm.max_frame_bytes then
    invalid_arg "Lan.send: payload size out of range";
  (match dest with
  | Unicast a ->
    if a = st.st_addr then invalid_arg "Lan.send: destination is self";
    if a < 0 || a >= Array.length lan.stations then
      invalid_arg "Lan.send: no such station"
  | Broadcast -> lan.c_broadcast <- lan.c_broadcast + 1);
  lan.c_sent <- lan.c_sent + 1;
  let frame =
    { src = st.st_addr; dest; bytes; payload; sent_at = Engine.now lan.eng }
  in
  let accepted = Mailbox.try_send st.st_tx frame in
  (* The transmit queue is unbounded, so acceptance cannot fail. *)
  assert accepted

let counters lan =
  {
    frames_sent = lan.c_sent;
    frames_broadcast = lan.c_broadcast;
    frames_delivered = lan.c_delivered;
    frames_dropped = lan.c_dropped;
    payload_bytes_delivered = lan.c_bytes;
    collision_events = lan.c_collisions;
    backoffs = lan.c_backoffs;
  }

let busy_time lan = lan.busy

let utilisation lan ~over =
  if Time.is_zero over then 0.0
  else Time.to_sec lan.busy /. Time.to_sec over

let latency_stats lan = lan.latencies
