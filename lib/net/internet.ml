open Eden_util
open Eden_sim

(* Every message travels inside an envelope carrying global addressing;
   [env_bridged] stops the bridge from re-forwarding a broadcast it has
   already carried. *)
type 'a envelope = {
  env_src : int;
  env_dst : int option;  (* None = broadcast *)
  env_bridged : bool;
  env_payload : 'a;
}

type fault = Pass | Drop | Duplicate | Delay of Time.t

type 'a t = {
  eng : Engine.t;
  lans : 'a envelope Msglink.lan array;
  wrapped_size : 'a envelope -> int;
  bridge_latency : Time.t;
  (* global address -> (segment, local msglink address) *)
  mutable directory : (int * int) array;
  (* the bridge's own foot on each segment; [||] when segments = 1 *)
  mutable bridge_feet : 'a envelope Msglink.t array;
  mutable n_bridge_forwards : int;
  mutable n_bridge_drops : int;
  (* segments currently cut off from the bridge *)
  partitioned : bool array;
  mutable injector : (src:int -> dst:int option -> fault) option;
}

type 'a endpoint = {
  ep_global : int;
  ep_segment : int;
  ep_link : 'a envelope Msglink.t;
  ep_net : 'a t;
  mutable ep_handler : (src:int -> 'a -> unit) option;
}

let envelope_overhead = 12

(* The bridge received an envelope on [arrived_on]; carry it to where
   it belongs after the store-and-forward delay.  Partitioned segments
   are checked both on arrival and again when the forward fires, so a
   frame in flight across a partition is dropped, never delivered
   late. *)
let bridge_carry net ~arrived_on env =
  match env.env_dst with
  | Some g ->
    let seg, local = net.directory.(g) in
    if seg <> arrived_on then begin
      if net.partitioned.(arrived_on) || net.partitioned.(seg) then
        net.n_bridge_drops <- net.n_bridge_drops + 1
      else begin
        net.n_bridge_forwards <- net.n_bridge_forwards + 1;
        Engine.schedule net.eng ~after:net.bridge_latency (fun () ->
            if net.partitioned.(arrived_on) || net.partitioned.(seg) then
              net.n_bridge_drops <- net.n_bridge_drops + 1
            else
              Msglink.send net.bridge_feet.(seg) ~dst:local
                { env with env_bridged = true })
      end
    end
  | None ->
    if not env.env_bridged then begin
      if net.partitioned.(arrived_on) then
        net.n_bridge_drops <- net.n_bridge_drops + 1
      else begin
        net.n_bridge_forwards <- net.n_bridge_forwards + 1;
        Engine.schedule net.eng ~after:net.bridge_latency (fun () ->
            if net.partitioned.(arrived_on) then
              net.n_bridge_drops <- net.n_bridge_drops + 1
            else
              Array.iteri
                (fun seg foot ->
                  if seg <> arrived_on then
                    if net.partitioned.(seg) then
                      net.n_bridge_drops <- net.n_bridge_drops + 1
                    else Msglink.broadcast foot { env with env_bridged = true })
                net.bridge_feet)
      end
    end

let create ?params ?(bridge_latency = Time.us 500) eng ~segments ~size =
  if segments < 1 then invalid_arg "Internet.create: need a segment";
  let wrapped_size env = envelope_overhead + size env.env_payload in
  let lans = Array.init segments (fun _ -> Msglink.create_lan ?params eng) in
  let net =
    {
      eng;
      lans;
      wrapped_size;
      bridge_latency;
      directory = [||];
      bridge_feet = [||];
      n_bridge_forwards = 0;
      n_bridge_drops = 0;
      partitioned = Array.make segments false;
      injector = None;
    }
  in
  if segments > 1 then begin
    net.bridge_feet <-
      Array.mapi
        (fun i lan ->
          Msglink.attach lan ~name:(Printf.sprintf "bridge.%d" i)
            ~size:wrapped_size)
        lans;
    Array.iteri
      (fun seg foot ->
        Msglink.on_message foot (fun ~src:_ env ->
            bridge_carry net ~arrived_on:seg env))
      net.bridge_feet
  end;
  net

let segment_count net = Array.length net.lans

let attach net ~segment ~name =
  if segment < 0 || segment >= Array.length net.lans then
    invalid_arg "Internet.attach: no such segment";
  let link =
    Msglink.attach net.lans.(segment) ~name ~size:net.wrapped_size
  in
  let ep =
    {
      ep_global = Array.length net.directory;
      ep_segment = segment;
      ep_link = link;
      ep_net = net;
      ep_handler = None;
    }
  in
  net.directory <-
    Array.append net.directory [| (segment, Msglink.address link) |];
  (* Filter at the link: segment broadcasts reach every station, and
     bridged unicasts are addressed precisely; drop anything that is
     not for us or that we sent ourselves. *)
  Msglink.on_message link (fun ~src:_ env ->
      match env.env_dst with
      | Some g when g <> ep.ep_global -> ()
      | Some _ | None ->
        if env.env_src <> ep.ep_global then begin
          match ep.ep_handler with
          | Some f -> f ~src:env.env_src env.env_payload
          | None -> ()
        end);
  ep

let address ep = ep.ep_global
let segment_of_endpoint ep = ep.ep_segment

let segment_of_address net g =
  if g < 0 || g >= Array.length net.directory then
    invalid_arg "Internet.segment_of_address: unknown address"
  else fst net.directory.(g)

let on_message ep f = ep.ep_handler <- Some f

(* Every transmission funnels through the (optional) fault injector, so
   a schedule-driven chaos controller can drop, duplicate, or delay any
   link without the sender noticing. *)
let apply_fault net ~src ~dst transmit =
  match net.injector with
  | None -> transmit ()
  | Some f -> (
    match f ~src ~dst with
    | Pass -> transmit ()
    | Drop -> ()
    | Duplicate ->
      transmit ();
      transmit ()
    | Delay d -> Engine.schedule net.eng ~after:d transmit)

let send ep ~dst payload =
  let net = ep.ep_net in
  if dst < 0 || dst >= Array.length net.directory then
    invalid_arg "Internet.send: unknown destination";
  let transmit () =
    if dst = ep.ep_global then
      (* Loopback: the wire never sees the message.  Delivery is still
         asynchronous (next engine step) so callers observe the same
         send-then-return discipline as for remote destinations. *)
      Engine.schedule net.eng (fun () ->
          if Msglink.is_up ep.ep_link then
            match ep.ep_handler with
            | Some f -> f ~src:ep.ep_global payload
            | None -> ())
    else begin
      let seg, local = net.directory.(dst) in
      let env =
        { env_src = ep.ep_global; env_dst = Some dst; env_bridged = false;
          env_payload = payload }
      in
      if seg = ep.ep_segment then Msglink.send ep.ep_link ~dst:local env
      else
        Msglink.send ep.ep_link
          ~dst:(Msglink.address net.bridge_feet.(ep.ep_segment))
          env
    end
  in
  apply_fault net ~src:ep.ep_global ~dst:(Some dst) transmit

let broadcast ep payload =
  apply_fault ep.ep_net ~src:ep.ep_global ~dst:None (fun () ->
      Msglink.broadcast ep.ep_link
        { env_src = ep.ep_global; env_dst = None; env_bridged = false;
          env_payload = payload })

let set_up ep up = Msglink.set_up ep.ep_link up
let is_up ep = Msglink.is_up ep.ep_link

let frames_delivered net =
  Array.fold_left
    (fun acc lan -> acc + (Lan.counters lan).Lan.frames_delivered)
    0 net.lans

let bridge_forwards net = net.n_bridge_forwards
let bridge_drops net = net.n_bridge_drops
let segment_counters net = Array.map Lan.counters net.lans

let set_partitioned net seg cut =
  if seg < 0 || seg >= Array.length net.lans then
    invalid_arg "Internet.set_partitioned: no such segment";
  net.partitioned.(seg) <- cut

let partitioned net seg =
  if seg < 0 || seg >= Array.length net.lans then
    invalid_arg "Internet.partitioned: no such segment";
  net.partitioned.(seg)

let set_fault_injector net f = net.injector <- f
