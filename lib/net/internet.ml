open Eden_util
open Eden_sim

(* Every message travels inside an envelope carrying global addressing;
   [env_bridged] stops the bridge from re-forwarding a broadcast it has
   already carried. *)
type 'a envelope = {
  env_src : int;
  env_dst : int option;  (* None = broadcast *)
  env_bridged : bool;
  env_payload : 'a;
}

type 'a t = {
  eng : Engine.t;
  lans : 'a envelope Msglink.lan array;
  wrapped_size : 'a envelope -> int;
  bridge_latency : Time.t;
  (* global address -> (segment, local msglink address) *)
  mutable directory : (int * int) array;
  (* the bridge's own foot on each segment; [||] when segments = 1 *)
  mutable bridge_feet : 'a envelope Msglink.t array;
  mutable n_bridge_forwards : int;
}

type 'a endpoint = {
  ep_global : int;
  ep_segment : int;
  ep_link : 'a envelope Msglink.t;
  ep_net : 'a t;
  mutable ep_handler : (src:int -> 'a -> unit) option;
}

let envelope_overhead = 12

(* The bridge received an envelope on [arrived_on]; carry it to where
   it belongs after the store-and-forward delay. *)
let bridge_carry net ~arrived_on env =
  match env.env_dst with
  | Some g ->
    let seg, local = net.directory.(g) in
    if seg <> arrived_on then begin
      net.n_bridge_forwards <- net.n_bridge_forwards + 1;
      Engine.schedule net.eng ~after:net.bridge_latency (fun () ->
          Msglink.send net.bridge_feet.(seg) ~dst:local
            { env with env_bridged = true })
    end
  | None ->
    if not env.env_bridged then begin
      net.n_bridge_forwards <- net.n_bridge_forwards + 1;
      Engine.schedule net.eng ~after:net.bridge_latency (fun () ->
          Array.iteri
            (fun seg foot ->
              if seg <> arrived_on then
                Msglink.broadcast foot { env with env_bridged = true })
            net.bridge_feet)
    end

let create ?params ?(bridge_latency = Time.us 500) eng ~segments ~size =
  if segments < 1 then invalid_arg "Internet.create: need a segment";
  let wrapped_size env = envelope_overhead + size env.env_payload in
  let lans = Array.init segments (fun _ -> Msglink.create_lan ?params eng) in
  let net =
    {
      eng;
      lans;
      wrapped_size;
      bridge_latency;
      directory = [||];
      bridge_feet = [||];
      n_bridge_forwards = 0;
    }
  in
  if segments > 1 then begin
    net.bridge_feet <-
      Array.mapi
        (fun i lan ->
          Msglink.attach lan ~name:(Printf.sprintf "bridge.%d" i)
            ~size:wrapped_size)
        lans;
    Array.iteri
      (fun seg foot ->
        Msglink.on_message foot (fun ~src:_ env ->
            bridge_carry net ~arrived_on:seg env))
      net.bridge_feet
  end;
  net

let segment_count net = Array.length net.lans

let attach net ~segment ~name =
  if segment < 0 || segment >= Array.length net.lans then
    invalid_arg "Internet.attach: no such segment";
  let link =
    Msglink.attach net.lans.(segment) ~name ~size:net.wrapped_size
  in
  let ep =
    {
      ep_global = Array.length net.directory;
      ep_segment = segment;
      ep_link = link;
      ep_net = net;
      ep_handler = None;
    }
  in
  net.directory <-
    Array.append net.directory [| (segment, Msglink.address link) |];
  (* Filter at the link: segment broadcasts reach every station, and
     bridged unicasts are addressed precisely; drop anything that is
     not for us or that we sent ourselves. *)
  Msglink.on_message link (fun ~src:_ env ->
      match env.env_dst with
      | Some g when g <> ep.ep_global -> ()
      | Some _ | None ->
        if env.env_src <> ep.ep_global then begin
          match ep.ep_handler with
          | Some f -> f ~src:env.env_src env.env_payload
          | None -> ()
        end);
  ep

let address ep = ep.ep_global
let segment_of_endpoint ep = ep.ep_segment

let segment_of_address net g =
  if g < 0 || g >= Array.length net.directory then
    invalid_arg "Internet.segment_of_address: unknown address"
  else fst net.directory.(g)

let on_message ep f = ep.ep_handler <- Some f

let send ep ~dst payload =
  let net = ep.ep_net in
  if dst = ep.ep_global then invalid_arg "Internet.send: destination is self";
  if dst < 0 || dst >= Array.length net.directory then
    invalid_arg "Internet.send: unknown destination";
  let seg, local = net.directory.(dst) in
  let env =
    { env_src = ep.ep_global; env_dst = Some dst; env_bridged = false;
      env_payload = payload }
  in
  if seg = ep.ep_segment then Msglink.send ep.ep_link ~dst:local env
  else
    Msglink.send ep.ep_link
      ~dst:(Msglink.address net.bridge_feet.(ep.ep_segment))
      env

let broadcast ep payload =
  Msglink.broadcast ep.ep_link
    { env_src = ep.ep_global; env_dst = None; env_bridged = false;
      env_payload = payload }

let set_up ep up = Msglink.set_up ep.ep_link up
let is_up ep = Msglink.is_up ep.ep_link

let frames_delivered net =
  Array.fold_left
    (fun acc lan -> acc + (Lan.counters lan).Lan.frames_delivered)
    0 net.lans

let bridge_forwards net = net.n_bridge_forwards
let segment_counters net = Array.map Lan.counters net.lans
