open Eden_util
open Eden_sim

(* A wire transfer carries either one message or a coalesced batch.
   Batches exist only between [flush_to] and delivery: the receiving
   endpoint unpacks them in order, so upper layers never see cargo. *)
type 'a cargo = One of 'a | Batch of 'a list

(* Every message travels inside an envelope carrying global addressing;
   [env_bridged] stops the bridge from re-forwarding a broadcast it has
   already carried. *)
type 'a envelope = {
  env_src : int;
  env_dst : int option;  (* None = broadcast *)
  env_bridged : bool;
  env_cargo : 'a cargo;
}

type fault = Pass | Drop | Duplicate | Delay of Time.t

(* Wire-level happenings an observability layer cannot see from the
   endpoints: fault-injector verdicts that actually bit, and coalesced
   batches leaving a queue.  Reported through an optional hook so the
   net layer needs no dependency on the observability library. *)
type event =
  | Ev_drop of { src : int; dst : int option; msgs : int }
  | Ev_duplicate of { src : int; dst : int option; msgs : int }
  | Ev_delay of { src : int; dst : int option; msgs : int; by : Time.t }
  | Ev_coalesce of { src : int; dst : int; msgs : int }

(* Per-payload wire happenings for the critical-path profiler.  The
   [event] hook above reports counts only; attribution needs the
   payloads themselves (each carries its trace context) so a held or
   flushed span can be charged to the requests it delayed.  A separate
   parametric hook keeps that cost strictly opt-in. *)
type 'a wire_event =
  | Wv_depart of { src : int; dst : int; msgs : int; items : 'a list }
      (* a queued batch (possibly of one) left the coalescing queue *)
  | Wv_hold of { src : int; dst : int option; by : Time.t; items : 'a list }
      (* a Delay verdict held these payloads at the sender for [by] *)

type coalesce = {
  co_max_bytes : int;
  co_max_msgs : int;
  co_max_delay : Time.t;
}

let default_coalesce =
  { co_max_bytes = 1024; co_max_msgs = 8; co_max_delay = Time.us 300 }

(* One per-destination send queue.  [pb_gen] increments on every flush
   so a pending delay-timer can recognise that the batch it was armed
   for is already gone. *)
type 'a pending_batch = {
  mutable pb_items : 'a list;  (* newest first *)
  mutable pb_bytes : int;
  mutable pb_count : int;
  mutable pb_gen : int;
}

type 'a t = {
  eng : Engine.t;
  lans : 'a envelope Msglink.lan array;
  wrapped_size : 'a envelope -> int;
  bridge_latency : Time.t;
  coalesce : coalesce option;
  size : 'a -> int;
  (* global address -> (segment, local msglink address) *)
  mutable directory : (int * int) array;
  (* the bridge's own foot on each segment; [||] when segments = 1 *)
  mutable bridge_feet : 'a envelope Msglink.t array;
  mutable n_bridge_forwards : int;
  mutable n_bridge_drops : int;
  mutable n_coalesced_batches : int;
  mutable n_coalesced_messages : int;
  (* segments currently cut off from the bridge *)
  partitioned : bool array;
  mutable injector : (src:int -> dst:int option -> fault) option;
  mutable event_hook : (event -> unit) option;
  mutable wire_hook : ('a wire_event -> unit) option;
}

type 'a endpoint = {
  ep_global : int;
  ep_segment : int;
  ep_link : 'a envelope Msglink.t;
  ep_net : 'a t;
  ep_queues : (int, 'a pending_batch) Hashtbl.t;
  mutable ep_handler : (src:int -> 'a -> unit) option;
}

let envelope_overhead = 12
let member_overhead = 4

(* The bridge received an envelope on [arrived_on]; carry it to where
   it belongs after the store-and-forward delay.  Partitioned segments
   are checked both on arrival and again when the forward fires, so a
   frame in flight across a partition is dropped, never delivered
   late.  Batches are carried opaquely: a cut mid-flight loses every
   member at once. *)
let bridge_carry net ~arrived_on env =
  match env.env_dst with
  | Some g ->
    let seg, local = net.directory.(g) in
    if seg <> arrived_on then begin
      if net.partitioned.(arrived_on) || net.partitioned.(seg) then
        net.n_bridge_drops <- net.n_bridge_drops + 1
      else begin
        net.n_bridge_forwards <- net.n_bridge_forwards + 1;
        Engine.schedule net.eng ~after:net.bridge_latency (fun () ->
            if net.partitioned.(arrived_on) || net.partitioned.(seg) then
              net.n_bridge_drops <- net.n_bridge_drops + 1
            else
              Msglink.send net.bridge_feet.(seg) ~dst:local
                { env with env_bridged = true })
      end
    end
  | None ->
    if not env.env_bridged then begin
      if net.partitioned.(arrived_on) then
        net.n_bridge_drops <- net.n_bridge_drops + 1
      else begin
        net.n_bridge_forwards <- net.n_bridge_forwards + 1;
        Engine.schedule net.eng ~after:net.bridge_latency (fun () ->
            if net.partitioned.(arrived_on) then
              net.n_bridge_drops <- net.n_bridge_drops + 1
            else
              Array.iteri
                (fun seg foot ->
                  if seg <> arrived_on then
                    if net.partitioned.(seg) then
                      net.n_bridge_drops <- net.n_bridge_drops + 1
                    else Msglink.broadcast foot { env with env_bridged = true })
                net.bridge_feet)
      end
    end

let create ?params ?(bridge_latency = Time.us 500) ?coalesce eng ~segments
    ~size =
  if segments < 1 then invalid_arg "Internet.create: need a segment";
  (match coalesce with
  | Some co when co.co_max_bytes < 1 || co.co_max_msgs < 1 ->
    invalid_arg "Internet.create: coalesce budgets must be positive"
  | _ -> ());
  let wrapped_size env =
    envelope_overhead
    + (match env.env_cargo with
      | One p -> size p
      | Batch ps ->
        List.fold_left (fun acc p -> acc + member_overhead + size p) 0 ps)
  in
  let lans = Array.init segments (fun _ -> Msglink.create_lan ?params eng) in
  let net =
    {
      eng;
      lans;
      wrapped_size;
      bridge_latency;
      coalesce;
      size;
      directory = [||];
      bridge_feet = [||];
      n_bridge_forwards = 0;
      n_bridge_drops = 0;
      n_coalesced_batches = 0;
      n_coalesced_messages = 0;
      partitioned = Array.make segments false;
      injector = None;
      event_hook = None;
      wire_hook = None;
    }
  in
  if segments > 1 then begin
    net.bridge_feet <-
      Array.mapi
        (fun i lan ->
          Msglink.attach lan ~name:(Printf.sprintf "bridge.%d" i)
            ~size:wrapped_size)
        lans;
    Array.iteri
      (fun seg foot ->
        Msglink.on_message foot (fun ~src:_ env ->
            bridge_carry net ~arrived_on:seg env))
      net.bridge_feet
  end;
  net

let segment_count net = Array.length net.lans

let deliver ep env =
  match ep.ep_handler with
  | None -> ()
  | Some f -> (
    match env.env_cargo with
    | One p -> f ~src:env.env_src p
    | Batch ps -> List.iter (fun p -> f ~src:env.env_src p) ps)

let attach net ~segment ~name =
  if segment < 0 || segment >= Array.length net.lans then
    invalid_arg "Internet.attach: no such segment";
  let link =
    Msglink.attach net.lans.(segment) ~name ~size:net.wrapped_size
  in
  let ep =
    {
      ep_global = Array.length net.directory;
      ep_segment = segment;
      ep_link = link;
      ep_net = net;
      ep_queues = Hashtbl.create 7;
      ep_handler = None;
    }
  in
  net.directory <-
    Array.append net.directory [| (segment, Msglink.address link) |];
  (* Filter at the link: segment broadcasts reach every station, and
     bridged unicasts are addressed precisely; drop anything that is
     not for us or that we sent ourselves. *)
  Msglink.on_message link (fun ~src:_ env ->
      match env.env_dst with
      | Some g when g <> ep.ep_global -> ()
      | Some _ | None -> if env.env_src <> ep.ep_global then deliver ep env);
  ep

let address ep = ep.ep_global
let segment_of_endpoint ep = ep.ep_segment

let segment_of_address net g =
  if g < 0 || g >= Array.length net.directory then
    invalid_arg "Internet.segment_of_address: unknown address"
  else fst net.directory.(g)

let on_message ep f = ep.ep_handler <- Some f

(* Every transmission funnels through the (optional) fault injector, so
   a schedule-driven chaos controller can drop, duplicate, or delay any
   link without the sender noticing. *)
let emit net ev =
  match net.event_hook with None -> () | Some f -> f ev

let emit_wire net ev =
  match net.wire_hook with None -> () | Some f -> f ev

let apply_fault net ~src ~dst ~msgs ?(items = []) transmit =
  match net.injector with
  | None -> transmit ()
  | Some f -> (
    match f ~src ~dst with
    | Pass -> transmit ()
    | Drop -> emit net (Ev_drop { src; dst; msgs })
    | Duplicate ->
      emit net (Ev_duplicate { src; dst; msgs });
      transmit ();
      transmit ()
    | Delay d ->
      emit net (Ev_delay { src; dst; msgs; by = d });
      emit_wire net (Wv_hold { src; dst; by = d; items });
      Engine.schedule net.eng ~after:d transmit)

let transmit_unicast ep ~dst cargo =
  let net = ep.ep_net in
  let seg, local = net.directory.(dst) in
  let env =
    { env_src = ep.ep_global; env_dst = Some dst; env_bridged = false;
      env_cargo = cargo }
  in
  if seg = ep.ep_segment then Msglink.send ep.ep_link ~dst:local env
  else
    Msglink.send ep.ep_link
      ~dst:(Msglink.address net.bridge_feet.(ep.ep_segment))
      env

(* Flush the queue for [dst]: pop everything, bump the generation (so a
   pending delay-timer turns into a no-op), and put the batch on the
   wire as ONE transfer.  The fault injector is consulted once for the
   whole transfer — a Drop verdict loses every member, exactly like a
   lost fragment loses a whole message one layer down. *)
let flush_to ep dst =
  match Hashtbl.find_opt ep.ep_queues dst with
  | None -> ()
  | Some pb ->
    if pb.pb_count > 0 then begin
      let items = List.rev pb.pb_items in
      let count = pb.pb_count in
      pb.pb_items <- [];
      pb.pb_bytes <- 0;
      pb.pb_count <- 0;
      pb.pb_gen <- pb.pb_gen + 1;
      if Msglink.is_up ep.ep_link then begin
        let net = ep.ep_net in
        if count > 1 then begin
          net.n_coalesced_batches <- net.n_coalesced_batches + 1;
          net.n_coalesced_messages <- net.n_coalesced_messages + count;
          emit net (Ev_coalesce { src = ep.ep_global; dst; msgs = count })
        end;
        (* Reported for every flush, batch or not: a lone message
           released by the delay timer spent the full budget queued,
           and the profiler charges that span to the coalescer. *)
        emit_wire net
          (Wv_depart { src = ep.ep_global; dst; msgs = count; items });
        let cargo = match items with [ p ] -> One p | ps -> Batch ps in
        apply_fault net ~src:ep.ep_global ~dst:(Some dst) ~msgs:count ~items
          (fun () -> transmit_unicast ep ~dst cargo)
      end
    end

let flush ep =
  let dsts = Hashtbl.fold (fun d _ acc -> d :: acc) ep.ep_queues [] in
  List.iter (flush_to ep) (List.sort Int.compare dsts)

let send ep ~dst payload =
  let net = ep.ep_net in
  if dst < 0 || dst >= Array.length net.directory then
    invalid_arg "Internet.send: unknown destination";
  if dst = ep.ep_global then
    (* Loopback: the wire never sees the message, so the coalescing
       queue is bypassed too.  Delivery is still asynchronous (next
       engine step) so callers observe the same send-then-return
       discipline as for remote destinations. *)
    apply_fault net ~src:ep.ep_global ~dst:(Some dst) ~msgs:1
      ~items:[ payload ] (fun () ->
        Engine.schedule net.eng (fun () ->
            if Msglink.is_up ep.ep_link then
              match ep.ep_handler with
              | Some f -> f ~src:ep.ep_global payload
              | None -> ()))
  else
    match net.coalesce with
    | None ->
      apply_fault net ~src:ep.ep_global ~dst:(Some dst) ~msgs:1
        ~items:[ payload ] (fun () -> transmit_unicast ep ~dst (One payload))
    | Some co ->
      let sz = net.size payload in
      if sz >= co.co_max_bytes then begin
        (* Oversized messages travel alone; flushing first preserves
           per-destination FIFO order. *)
        flush_to ep dst;
        apply_fault net ~src:ep.ep_global ~dst:(Some dst) ~msgs:1
          ~items:[ payload ] (fun () ->
            transmit_unicast ep ~dst (One payload))
      end
      else begin
        let pb =
          match Hashtbl.find_opt ep.ep_queues dst with
          | Some pb -> pb
          | None ->
            let pb =
              { pb_items = []; pb_bytes = 0; pb_count = 0; pb_gen = 0 }
            in
            Hashtbl.replace ep.ep_queues dst pb;
            pb
        in
        pb.pb_items <- payload :: pb.pb_items;
        pb.pb_bytes <- pb.pb_bytes + sz;
        pb.pb_count <- pb.pb_count + 1;
        if pb.pb_bytes >= co.co_max_bytes || pb.pb_count >= co.co_max_msgs
        then flush_to ep dst
        else if pb.pb_count = 1 then begin
          (* First message in a fresh batch arms the delay budget. *)
          let gen = pb.pb_gen in
          Engine.schedule net.eng ~after:co.co_max_delay (fun () ->
              if pb.pb_gen = gen then flush_to ep dst)
        end
      end

(* An urgent unicast: never enters the coalescing queue.  Anything
   already queued for [dst] is flushed first so per-destination FIFO
   order still holds, then the payload goes out alone.  Exists for
   retraction-style traffic (a [Cancel]) that must not be batched
   behind — and thus delivered together with — the very work it is
   trying to cancel.  The fault injector still gets its verdict, so
   chaos plans see urgent traffic like any other unicast. *)
let send_now ep ~dst payload =
  let net = ep.ep_net in
  if dst < 0 || dst >= Array.length net.directory then
    invalid_arg "Internet.send_now: unknown destination";
  if dst = ep.ep_global then
    apply_fault net ~src:ep.ep_global ~dst:(Some dst) ~msgs:1
      ~items:[ payload ] (fun () ->
        Engine.schedule net.eng (fun () ->
            if Msglink.is_up ep.ep_link then
              match ep.ep_handler with
              | Some f -> f ~src:ep.ep_global payload
              | None -> ()))
  else begin
    flush_to ep dst;
    apply_fault net ~src:ep.ep_global ~dst:(Some dst) ~msgs:1
      ~items:[ payload ] (fun () -> transmit_unicast ep ~dst (One payload))
  end

let broadcast ep payload =
  (* A broadcast is a barrier: anything queued must not overtake it. *)
  flush ep;
  apply_fault ep.ep_net ~src:ep.ep_global ~dst:None ~msgs:1
    ~items:[ payload ] (fun () ->
      Msglink.broadcast ep.ep_link
        { env_src = ep.ep_global; env_dst = None; env_bridged = false;
          env_cargo = One payload })

let set_up ep up =
  (* Powering off loses queued-but-unflushed messages with the rest of
     the node's volatile state. *)
  if not up then
    Hashtbl.iter
      (fun _ pb ->
        pb.pb_items <- [];
        pb.pb_bytes <- 0;
        pb.pb_count <- 0;
        pb.pb_gen <- pb.pb_gen + 1)
      ep.ep_queues;
  Msglink.set_up ep.ep_link up

let is_up ep = Msglink.is_up ep.ep_link

let queued_messages ep =
  Hashtbl.fold (fun _ pb acc -> acc + pb.pb_count) ep.ep_queues 0

let reassembly_pending ep = Msglink.reassembly_pending ep.ep_link

let frames_delivered net =
  Array.fold_left
    (fun acc lan -> acc + (Lan.counters lan).Lan.frames_delivered)
    0 net.lans

let bridge_forwards net = net.n_bridge_forwards
let bridge_drops net = net.n_bridge_drops
let coalesced_batches net = net.n_coalesced_batches
let coalesced_messages net = net.n_coalesced_messages
let segment_counters net = Array.map Lan.counters net.lans

let set_partitioned net seg cut =
  if seg < 0 || seg >= Array.length net.lans then
    invalid_arg "Internet.set_partitioned: no such segment";
  net.partitioned.(seg) <- cut

let partitioned net seg =
  if seg < 0 || seg >= Array.length net.lans then
    invalid_arg "Internet.partitioned: no such segment";
  net.partitioned.(seg)

let set_fault_injector net f = net.injector <- f
let set_event_hook net f = net.event_hook <- f
let set_wire_hook net f = net.wire_hook <- f
