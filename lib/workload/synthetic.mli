(** Parameterised invocation workloads.

    The same user population can be run against an Eden cluster with
    distributed placement, an Eden cluster with centralized placement,
    or the location-dependent RPC baseline — which is what experiment
    E9 needs to compare the three points of the paper's
    integration/distribution spectrum. *)

open Eden_util
open Eden_kernel

type spec = {
  objects_per_node : int;  (** served objects "belonging" to each node *)
  users_per_node : int;
  requests_per_user : int;
  locality : float;
      (** probability a request targets one of the user's own node's
          objects (0 = always remote sharing, 1 = purely personal) *)
  payload_bytes : int;  (** request and reply payload *)
  compute_per_request : Time.t;  (** CPU demand at the target *)
  think_mean_s : float;  (** mean exponential think time, seconds *)
  timeout : Time.t option;
      (** per-attempt bound on each request (default none) — needed
          when the cluster runs under a fault plan, or a crashed
          target strands its requesters *)
  retry : Api.retry;  (** re-issue policy for timed-out requests *)
}

val default_spec : spec

type results = {
  completed : int;
  failed : int;
  latency : Stats.t;  (** per-request completion times, seconds *)
  elapsed : Time.t;  (** simulated time to drain the workload *)
  throughput : float;  (** completed requests per simulated second *)
}

val pp_results : Format.formatter -> results -> unit

val worker_type : Typemgr.t
(** The served type: operation ["work"] [Blob n] -> [Blob n] burning
    [compute] CPU (encoded in the blob size by {!run_eden}). *)

type placement = Distributed | Central_on of int

val run_eden :
  ?placement:placement ->
  ?users_on:int list ->
  Cluster.t ->
  spec ->
  results
(** Blocking-free: builds the population, runs the cluster to
    completion, returns measurements.  [placement] defaults to
    [Distributed] (each node's objects live on it); [Central_on s]
    puts every object on node [s].  [users_on] defaults to all
    nodes.  The cluster must not have been run yet. *)

val run_rpc : Eden_baseline.Rpc.t -> spec -> results
(** The same population over the RPC baseline: a "work" procedure is
    registered on every node; locality picks the caller's own node. *)
