open Eden_util
open Eden_sim
open Eden_kernel
open Api

type spec = {
  objects_per_node : int;
  users_per_node : int;
  requests_per_user : int;
  locality : float;
  payload_bytes : int;
  compute_per_request : Time.t;
  think_mean_s : float;
  timeout : Time.t option;
  retry : Api.retry;
}

let default_spec =
  {
    objects_per_node = 4;
    users_per_node = 2;
    requests_per_user = 25;
    locality = 0.8;
    payload_bytes = 256;
    compute_per_request = Time.ms 5;
    think_mean_s = 0.05;
    timeout = None;
    retry = Api.no_retry;
  }

type results = {
  completed : int;
  failed : int;
  latency : Stats.t;
  elapsed : Time.t;
  throughput : float;
}

let pp_results ppf r =
  Format.fprintf ppf
    "completed=%d failed=%d elapsed=%a throughput=%.1f/s latency{%a}"
    r.completed r.failed Time.pp r.elapsed r.throughput Stats.pp_summary
    r.latency

let worker_type =
  Typemgr.make_exn ~name:"synthetic_worker"
    ~classes:(Opclass.one_class ~name:"all" ~operations:[ "work" ] ~limit:8)
    [
      Typemgr.operation "work" ~mutates:false (fun ctx args ->
          let* a, b = arg2 args in
          let* us = int_arg b in
          ctx.compute (Time.us us);
          reply [ a ]);
    ]

type placement = Distributed | Central_on of int

let validate spec =
  if spec.objects_per_node <= 0 then invalid_arg "Synthetic: no objects";
  if spec.users_per_node <= 0 then invalid_arg "Synthetic: no users";
  if spec.requests_per_user < 0 then invalid_arg "Synthetic: negative requests";
  if spec.locality < 0.0 || spec.locality > 1.0 then
    invalid_arg "Synthetic: locality out of range"

(* Choose the target's "owner" node: the user's own node with
   probability [locality], any other node uniformly otherwise. *)
let pick_owner rng spec ~mine ~node_count =
  if node_count = 1 || Splitmix.coin rng spec.locality then mine
  else begin
    let other = Splitmix.int rng (node_count - 1) in
    if other >= mine then other + 1 else other
  end

let summarise ~eng ~started ~completed ~failed ~latency =
  let elapsed =
    let now = Engine.now eng in
    if Time.(now > started) then Time.diff now started else Time.zero
  in
  {
    completed;
    failed;
    latency;
    elapsed;
    throughput =
      (if Time.is_zero elapsed then 0.0
       else Float.of_int completed /. Time.to_sec elapsed);
  }

let run_eden ?(placement = Distributed) ?users_on cl spec =
  validate spec;
  let eng = Cluster.engine cl in
  let n = Cluster.node_count cl in
  let users_on = Option.value ~default:(List.init n Fun.id) users_on in
  Cluster.register_type cl worker_type;
  let latency = Stats.create () in
  let completed = ref 0 and failed = ref 0 in
  let started = ref Time.zero in
  let objects = Array.make_matrix n spec.objects_per_node None in
  let _ =
    Cluster.in_process cl ~name:"setup" (fun () ->
        for owner = 0 to n - 1 do
          for k = 0 to spec.objects_per_node - 1 do
            let node =
              match placement with
              | Distributed -> owner
              | Central_on s -> s
            in
            match
              Cluster.create_object cl ~node ~type_name:"synthetic_worker"
                Value.Unit
            with
            | Ok cap -> objects.(owner).(k) <- Some cap
            | Error e ->
              invalid_arg
                (Printf.sprintf "Synthetic.run_eden: create failed: %s"
                   (Error.to_string e))
          done
        done;
        (* Users start once the population exists; measure from here. *)
        started := Engine.now eng;
        List.iter
          (fun mine ->
            for u = 0 to spec.users_per_node - 1 do
              let rng = Engine.fork_rng eng in
              ignore
                (Cluster.in_process cl
                   ~name:(Printf.sprintf "user%d.%d" mine u)
                   (fun () ->
                     for _ = 1 to spec.requests_per_user do
                       Engine.delay
                         (Time.of_sec
                            (Splitmix.exponential rng spec.think_mean_s));
                       let owner = pick_owner rng spec ~mine ~node_count:n in
                       let k = Splitmix.int rng spec.objects_per_node in
                       match objects.(owner).(k) with
                       | None -> incr failed
                       | Some cap -> (
                         let t0 = Engine.now eng in
                         match
                           Cluster.invoke cl ~from:mine ?timeout:spec.timeout
                             ~retry:spec.retry cap ~op:"work"
                             [
                               Value.Blob spec.payload_bytes;
                               Value.Int
                                 (Time.to_ns spec.compute_per_request / 1_000);
                             ]
                         with
                         | Ok _ ->
                           incr completed;
                           Stats.add_time latency
                             (Time.diff (Engine.now eng) t0)
                         | Error _ -> incr failed)
                     done))
            done)
          users_on)
  in
  Cluster.run cl;
  summarise ~eng ~started:!started ~completed:!completed ~failed:!failed
    ~latency

let run_rpc fabric spec =
  validate spec;
  let module Rpc = Eden_baseline.Rpc in
  let eng = Rpc.engine fabric in
  let n = Rpc.node_count fabric in
  for node = 0 to n - 1 do
    Rpc.register fabric ~node ~proc:"work" (fun ctx args ->
        match args with
        | [ payload; Value.Int us ] ->
          ctx.Rpc.rpc_compute (Time.us us);
          Ok [ payload ]
        | _ -> Error (Error.Bad_arguments "work expects [payload; us]"))
  done;
  let latency = Stats.create () in
  let completed = ref 0 and failed = ref 0 in
  for mine = 0 to n - 1 do
    for u = 0 to spec.users_per_node - 1 do
      let rng = Engine.fork_rng eng in
      ignore
        (Rpc.in_process fabric ~name:(Printf.sprintf "user%d.%d" mine u)
           (fun () ->
             for _ = 1 to spec.requests_per_user do
               Engine.delay
                 (Time.of_sec (Splitmix.exponential rng spec.think_mean_s));
               let owner = pick_owner rng spec ~mine ~node_count:n in
               let t0 = Engine.now eng in
               match
                 Rpc.call fabric ~from:mine ~node:owner ~proc:"work"
                   [
                     Value.Blob spec.payload_bytes;
                     Value.Int (Time.to_ns spec.compute_per_request / 1_000);
                   ]
               with
               | Ok _ ->
                 incr completed;
                 Stats.add_time latency (Time.diff (Engine.now eng) t0)
               | Error _ -> incr failed
             done))
    done
  done;
  Rpc.run fabric;
  summarise ~eng ~started:Time.zero ~completed:!completed ~failed:!failed
    ~latency
